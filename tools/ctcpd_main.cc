/**
 * @file
 * ctcpd — the simulation-as-a-service daemon.
 *
 * Listens on a unix-domain socket (HTTP/1.1, see src/service/server),
 * accepts campaign matrix specs, runs them on one persistent worker
 * pool shared across submissions, streams per-job results as they
 * finish (the campaign journal is the wire format), and serves final
 * reports byte-identical to `ctcpsim --campaign` with the same spec.
 *
 * SIGTERM/SIGINT trigger a graceful shutdown: the daemon stops
 * accepting, in-flight jobs finish and are checkpointed to their
 * run's journal, queued jobs are skipped, and the process exits 0.
 * Restarting with the same --state-dir resumes every interrupted run
 * from its journal.
 */

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "campaign/campaign.hh"
#include "common/logging.hh"
#include "common/sim_error.hh"
#include "common/version.hh"
#include "service/server.hh"

namespace {

std::atomic<bool> g_stop{false};

void
onSignal(int)
{
    g_stop.store(true);
}

void
usage(const char *prog)
{
    std::printf(
        "usage: %s --socket PATH [options]\n"
        "\n"
        "  --socket PATH       unix-domain socket to listen on\n"
        "                      (required; an existing socket file is\n"
        "                      replaced)\n"
        "  --state-dir DIR     spec + journal storage (default:\n"
        "                      <socket>.state). Restarting with the\n"
        "                      same directory resumes interrupted\n"
        "                      runs from their journals\n"
        "  --workers N         persistent pool size shared by every\n"
        "                      run (default: one per hardware\n"
        "                      thread); accepts the same values as\n"
        "                      ctcpsim --jobs\n"
        "  --cache-entries N   workload setup cache capacity\n"
        "                      (default 64)\n"
        "  --io-deadline SECS  per-connection budget for reading one\n"
        "                      request and writing one response\n"
        "                      (default 30; 0 = unbounded). A stalled\n"
        "                      client is cut off instead of wedging a\n"
        "                      server thread\n"
        "  --verbose           log requests and lifecycle to stderr\n"
        "  --log-file PATH     append structured JSONL log records\n"
        "                      (one JSON object per line: timestamp,\n"
        "                      level, component, trace id, message)\n"
        "  --log-level LEVEL   debug, info, warn or error (default\n"
        "                      info); only applies to --log-file\n"
        "  --version           print the version and exit\n"
        "\n"
        "API (see README \"Running as a service\"): POST /v1/runs\n"
        "submits a campaign matrix spec; GET /v1/runs/<id>/events\n"
        "streams journal records; GET /v1/runs/<id>/report serves the\n"
        "final JSON/CSV report, byte-identical to the batch path.\n"
        "Drive it with ctcpctl.\n"
        "\n"
        "exit status:\n"
        "  0  clean shutdown (SIGTERM/SIGINT)\n"
        "  2  usage or configuration error\n",
        prog);
}

[[noreturn]] void
die(const std::string &msg)
{
    std::fprintf(stderr, "ctcpd: %s (try --help)\n", msg.c_str());
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ctcp;

    service::ServiceServer::Config config;
    unsigned long cache_entries = 64;
    std::string log_file;
    LogLevel log_level = LogLevel::Info;

    auto next_arg = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            die(std::string("missing value for ") + argv[i]);
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--version") {
            std::printf("ctcpd %s\n", CTCP_VERSION);
            return 0;
        } else if (arg == "--socket") {
            config.socketPath = next_arg(i);
        } else if (arg == "--state-dir") {
            config.registry.stateDir = next_arg(i);
        } else if (arg == "--workers") {
            // Same parser, bounds, and messages as ctcpsim --jobs.
            try {
                config.registry.workers =
                    campaign::parseWorkerCount(next_arg(i));
            } catch (const std::invalid_argument &e) {
                die(e.what());
            }
        } else if (arg == "--cache-entries") {
            char *end = nullptr;
            const char *text = next_arg(i);
            cache_entries = std::strtoul(text, &end, 10);
            if (end == text || *end != '\0' || cache_entries == 0)
                die(std::string("invalid --cache-entries '") + text +
                    "'");
        } else if (arg == "--io-deadline") {
            char *end = nullptr;
            const char *text = next_arg(i);
            config.ioDeadlineSeconds = std::strtod(text, &end);
            if (end == text || *end != '\0' ||
                config.ioDeadlineSeconds < 0.0)
                die(std::string("invalid --io-deadline '") + text +
                    "'");
        } else if (arg == "--log-file") {
            log_file = next_arg(i);
        } else if (arg == "--log-level") {
            const char *text = next_arg(i);
            if (!parseLogLevel(text, log_level))
                die(std::string("invalid --log-level '") + text + "'");
        } else if (arg == "--verbose") {
            config.verbose = true;
        } else {
            die("unknown option '" + arg + "'");
        }
    }
    if (config.socketPath.empty())
        die("--socket is required");
    if (config.registry.stateDir.empty())
        config.registry.stateDir = config.socketPath + ".state";
    config.registry.cacheEntries = cache_entries;
    if (!log_file.empty()) {
        std::string log_error;
        if (!logOpen(log_file, log_level, log_error))
            die(log_error);
    }

    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = onSignal;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
    ::signal(SIGPIPE, SIG_IGN); // a vanished client must not kill us

    try {
        const std::string socket = config.socketPath;
        const std::string state_dir = config.registry.stateDir;
        service::ServiceServer server(std::move(config));
        std::fprintf(stderr,
                     "ctcpd %s: socket %s, state %s, %u workers, "
                     "cache %lu\n",
                     CTCP_VERSION, socket.c_str(), state_dir.c_str(),
                     server.registry().workers(), cache_entries);
        logRecord(LogLevel::Info, "server", "",
                  std::string("ctcpd ") + CTCP_VERSION + " starting",
                  {{"version", CTCP_VERSION},
                   {"socket", socket},
                   {"stateDir", state_dir},
                   {"workers",
                    std::to_string(server.registry().workers())},
                   {"cacheEntries", std::to_string(cache_entries)}});
        const std::size_t resumed = server.registry().resume();
        if (resumed)
            std::fprintf(stderr,
                         "ctcpd: resumed %zu run%s from the state "
                         "directory\n",
                         resumed, resumed == 1 ? "" : "s");
        return server.serve(g_stop);
    } catch (const SimError &e) {
        die(e.what());
    } catch (const std::exception &e) {
        die(e.what());
    }
}
