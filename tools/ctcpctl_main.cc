/**
 * @file
 * ctcpctl — CLI client for the ctcpd daemon.
 *
 * Wraps the unix-socket HTTP API in subcommands: submit a campaign
 * spec, watch its event stream (the raw campaign journal), fetch the
 * final report (byte-identical to `ctcpsim --campaign`), render the
 * live HTML report, cancel, and poll daemon stats.
 *
 * Exit status: 0 success, 1 daemon-side failure (HTTP error status,
 * run ended cancelled/errored), 2 usage or transport error.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/json.hh"
#include "common/sim_error.hh"
#include "common/version.hh"
#include "service/client.hh"
#include "service/http.hh"
#include "service/shard_coordinator.hh"

namespace {

using ctcp::service::HttpResponse;

std::string g_socket;

void
usage(const char *prog)
{
    std::printf(
        "usage: %s --socket PATH COMMAND [args]\n"
        "\n"
        "commands:\n"
        "  ping                       check the daemon is alive\n"
        "  stats [--json]             pool / run / cache counters as\n"
        "                             an aligned table (--json: the\n"
        "                             daemon's raw JSON)\n"
        "  top [--interval S]         live metrics dashboard polling\n"
        "      [--iterations N]       GET /v1/metrics every S seconds\n"
        "                             (default 2; N=0 runs forever)\n"
        "  submit SPECFILE            submit a campaign matrix spec\n"
        "                             (- reads stdin); prints the run\n"
        "                             id. Options: --accounting,\n"
        "                             --max-attempts N, --deadline S\n"
        "  submit SPECFILE --shard A,B[,...]\n"
        "                             fan the campaign out across\n"
        "                             several daemons (socket paths),\n"
        "                             stream + merge their journals,\n"
        "                             and print the aggregated report\n"
        "                             (byte-identical to the batch\n"
        "                             path; --socket is not needed).\n"
        "                             Failed shards are retried with\n"
        "                             backoff, circuit-broken, and\n"
        "                             their slots reassigned. Extra\n"
        "                             options: --out FILE, --csv,\n"
        "                             --journal FILE (merged journal,\n"
        "                             resumable), --local-jobs N,\n"
        "                             --no-local-fallback,\n"
        "                             --trace-id ID (correlation id\n"
        "                             sent to every shard; generated\n"
        "                             and printed when omitted)\n"
        "  list                       status of every run\n"
        "  status ID                  status of one run\n"
        "  events ID [--follow]       print journal records from the\n"
        "                             run; --follow streams until the\n"
        "                             run finishes\n"
        "  cancel ID                  request cancellation\n"
        "  wait ID [--timeout S]      block until the run finishes\n"
        "  report ID [--csv]          final aggregated report\n"
        "         [--host-timing]     (byte-identical to the batch\n"
        "         [--out FILE]        path); 1 while not finished\n"
        "  html ID --out FILE         live HTML report snapshot\n"
        "\n"
        "--version prints the version and exits.\n"
        "exit status: 0 ok, 1 daemon-side failure, 2 usage/transport\n",
        prog);
}

[[noreturn]] void
die(const std::string &msg)
{
    std::fprintf(stderr, "ctcpctl: %s\n", msg.c_str());
    std::exit(2);
}

/** One exchange; transport failures exit 2 with a diagnostic. */
HttpResponse
request(const std::string &method, const std::string &target,
        const std::string &body = std::string())
{
    HttpResponse resp;
    std::string error;
    if (!ctcp::service::httpRequest(g_socket, method, target, body,
                                    resp, error))
        die(error);
    return resp;
}

/** Report a non-2xx response on stderr and return exit code 1. */
int
failFrom(const HttpResponse &resp)
{
    // Error bodies are {"error": "..."} — surface just the message.
    std::string message = resp.body;
    try {
        const ctcp::json::Value doc = ctcp::json::parse(resp.body);
        if (doc.isObject() && doc.find("error"))
            message = doc.str("error");
    } catch (const std::exception &) {
        // Not JSON; print the body as-is.
    }
    std::fprintf(stderr, "ctcpctl: HTTP %d: %s\n", resp.status,
                 message.c_str());
    return 1;
}

bool
writeOut(const std::string &path, const std::string &bytes)
{
    if (path.empty() || path == "-") {
        std::fwrite(bytes.data(), 1, bytes.size(), stdout);
        return true;
    }
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    out.close();
    if (!out) {
        std::fprintf(stderr, "ctcpctl: cannot write %s\n",
                     path.c_str());
        return false;
    }
    return true;
}

unsigned
parseUnsigned(const std::string &text, const std::string &what)
{
    char *end = nullptr;
    const unsigned long v = std::strtoul(text.c_str(), &end, 10);
    if (!end || *end != '\0' || text.empty())
        die("bad " + what + " '" + text + "'");
    return static_cast<unsigned>(v);
}

double
parseSeconds(const std::string &text, const std::string &what)
{
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (!end || *end != '\0' || text.empty() || v < 0)
        die("bad " + what + " '" + text + "'");
    return v;
}

/**
 * Sum every sample of @p family in a Prometheus exposition,
 * optionally keeping only lines containing @p labelFilter (e.g.
 * "state=\"running\""). Histograms are not addressable this way —
 * their sample names carry _bucket/_sum/_count suffixes.
 */
double
metricSum(const std::string &text, const std::string &family,
          const std::string &labelFilter = std::string())
{
    double total = 0.0;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        const std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.compare(0, family.size(), family) != 0 ||
            line.size() <= family.size())
            continue;
        const char next = line[family.size()];
        if (next != ' ' && next != '{')
            continue;
        if (!labelFilter.empty() &&
            line.find(labelFilter) == std::string::npos)
            continue;
        const std::size_t sp = line.rfind(' ');
        if (sp == std::string::npos)
            continue;
        total += std::strtod(line.c_str() + sp + 1, nullptr);
    }
    return total;
}

/** Live dashboard over GET /v1/metrics. */
int
cmdTop(double intervalSeconds, unsigned iterations)
{
    // Only a real terminal gets the ANSI clear, so `top --iterations 1`
    // stays greppable in scripts and CI.
    const bool tty = ::isatty(STDOUT_FILENO) != 0;
    for (unsigned frame = 0; iterations == 0 || frame < iterations;
         ++frame) {
        if (frame)
            std::this_thread::sleep_for(
                std::chrono::duration<double>(intervalSeconds));
        const HttpResponse resp = request("GET", "/v1/metrics");
        if (resp.status != 200)
            return failFrom(resp);
        const std::string &m = resp.body;
        if (tty)
            std::printf("\033[H\033[2J");
        std::printf("ctcpd @ %s\n", g_socket.c_str());
        std::printf(
            "  runs     queued %.0f  running %.0f  done %.0f  "
            "cancelled %.0f  error %.0f\n",
            metricSum(m, "ctcpd_runs", "state=\"queued\""),
            metricSum(m, "ctcpd_runs", "state=\"running\""),
            metricSum(m, "ctcpd_runs", "state=\"done\""),
            metricSum(m, "ctcpd_runs", "state=\"cancelled\""),
            metricSum(m, "ctcpd_runs", "state=\"error\""));
        std::printf(
            "  pool     %.0f/%.0f workers busy, %.0f queued, "
            "%.0f tasks executed\n",
            metricSum(m, "ctcpd_pool_busy_workers"),
            metricSum(m, "ctcpd_pool_workers"),
            metricSum(m, "ctcpd_pool_queue_depth"),
            metricSum(m, "ctcpd_pool_jobs_executed_total"));
        std::printf(
            "  jobs     %.0f completed, %.0f retried, %.0f failed\n",
            metricSum(m, "ctcpd_jobs_completed_total"),
            metricSum(m, "ctcpd_jobs_retried_total"),
            metricSum(m, "ctcpd_jobs_failed_total"));
        std::printf(
            "  cache    %.0f hits, %.0f misses, %.0f evictions, "
            "%.0f entries\n",
            metricSum(m, "ctcpd_workload_cache_hits_total"),
            metricSum(m, "ctcpd_workload_cache_misses_total"),
            metricSum(m, "ctcpd_workload_cache_evictions_total"),
            metricSum(m, "ctcpd_workload_cache_entries"));
        std::printf(
            "  http     %.0f requests, %.0f active, %.0f body bytes "
            "out\n",
            metricSum(m, "ctcpd_http_requests_total"),
            metricSum(m, "ctcpd_http_active_connections"),
            metricSum(m, "ctcpd_http_response_bytes_total"));
        std::printf("  journal  %.0f bytes\n",
                    metricSum(m, "ctcpd_journal_bytes"));
        std::fflush(stdout);
    }
    return 0;
}

/** `stats` as an aligned table (the default; --json = raw body). */
int
cmdStatsTable(const std::string &body)
{
    try {
        const ctcp::json::Value doc = ctcp::json::parse(body);
        const ctcp::json::Value *cache = doc.find("workloadCache");
        if (!doc.isObject() || !cache || !cache->isObject())
            throw std::runtime_error("not a stats object");
        const auto row = [](const char *name, double v) {
            std::printf("%-16s %llu\n", name,
                        static_cast<unsigned long long>(v));
        };
        row("workers", doc.num("workers"));
        row("runs", doc.num("runs"));
        row("cache hits", cache->num("hits"));
        row("cache misses", cache->num("misses"));
        row("cache evictions", cache->num("evictions"));
        row("cache entries", cache->num("entries"));
    } catch (const std::exception &) {
        die("malformed stats response: " + body);
    }
    return 0;
}

/** Synchronous sharded submission: coordinator, not daemon query. */
int
cmdSubmitSharded(const std::string &spec, const std::string &shards,
                 const std::string &journal, const std::string &out,
                 bool csv, bool accounting, unsigned maxAttempts,
                 double deadlineSeconds, unsigned localJobs,
                 bool localFallback, const std::string &traceId)
{
    ctcp::service::ShardOptions options;
    options.spec = spec;
    std::size_t start = 0;
    while (start <= shards.size()) {
        const std::size_t comma = shards.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? shards.size() : comma;
        if (end > start)
            options.sockets.push_back(
                shards.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    if (options.sockets.empty())
        die("--shard needs a comma-separated socket list");
    options.submit.accounting = accounting;
    options.submit.maxAttempts = maxAttempts;
    options.submit.jobDeadlineSeconds = deadlineSeconds;
    options.policy.localFallback = localFallback;
    options.policy.localWorkers = localJobs;
    options.journalPath = journal;
    options.traceId =
        traceId.empty() ? ctcp::service::makeTraceId() : traceId;
    std::fprintf(stderr, "ctcpctl: trace id %s\n",
                 options.traceId.c_str());
    options.progress = [](const std::string &line) {
        std::fprintf(stderr, "ctcpctl: %s\n", line.c_str());
    };

    try {
        const ctcp::service::ShardedReport sharded =
            ctcp::service::runShardedCampaign(options);
        for (const ctcp::service::ShardStats &s : sharded.shards)
            std::fprintf(stderr,
                         "ctcpctl: shard %s: %zu/%zu slots, "
                         "probes=%zu failures=%zu backoffs=%zu "
                         "circuit_breaks=%zu%s\n",
                         s.socket.c_str(), s.completedSlots,
                         s.assignedSlots, s.healthProbes,
                         s.transportFailures, s.backoffSleeps,
                         s.circuitBreaks,
                         s.circuitOpen ? ", circuit OPEN" : "");
        if (sharded.reassignedSlots || sharded.locallyRunSlots)
            std::fprintf(stderr,
                         "ctcpctl: %zu slot(s) reassigned, %zu run "
                         "locally\n",
                         sharded.reassignedSlots,
                         sharded.locallyRunSlots);
        const std::string body = csv
            ? sharded.report.toCsv(accounting)
            : sharded.report.toJson(false, accounting);
        if (!writeOut(out, body))
            return 2;
        return sharded.report.failed() == 0 ? 0 : 1;
    } catch (const ctcp::SimError &e) {
        std::fprintf(stderr, "ctcpctl: %s\n", e.what());
        return 2;
    }
}

int
cmdSubmit(const std::vector<std::string> &args)
{
    std::string spec_path;
    std::string query;
    std::string shards, journal, out = "-", trace_id;
    bool csv = false, accounting = false, local_fallback = true;
    unsigned max_attempts = 1, local_jobs = 0;
    double deadline_seconds = 0.0;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--accounting") {
            query += query.empty() ? "?" : "&";
            query += "accounting=1";
            accounting = true;
        } else if (args[i] == "--max-attempts" && i + 1 < args.size()) {
            query += query.empty() ? "?" : "&";
            query += "max_attempts=" + args[i + 1];
            max_attempts =
                parseUnsigned(args[++i], "--max-attempts value");
        } else if (args[i] == "--deadline" && i + 1 < args.size()) {
            query += query.empty() ? "?" : "&";
            query += "deadline=" + args[i + 1];
            deadline_seconds =
                parseSeconds(args[++i], "--deadline value");
        } else if (args[i] == "--shard" && i + 1 < args.size()) {
            shards = args[++i];
        } else if (args[i] == "--journal" && i + 1 < args.size()) {
            journal = args[++i];
        } else if (args[i] == "--trace-id" && i + 1 < args.size()) {
            trace_id = args[++i];
        } else if (args[i] == "--out" && i + 1 < args.size()) {
            out = args[++i];
        } else if (args[i] == "--csv") {
            csv = true;
        } else if (args[i] == "--local-jobs" && i + 1 < args.size()) {
            local_jobs =
                parseUnsigned(args[++i], "--local-jobs value");
        } else if (args[i] == "--no-local-fallback") {
            local_fallback = false;
        } else if (!args[i].empty() && args[i][0] == '-' &&
                   args[i] != "-") {
            die("unknown submit option '" + args[i] + "'");
        } else if (spec_path.empty()) {
            spec_path = args[i];
        } else {
            die("submit takes one spec file");
        }
    }
    if (spec_path.empty())
        die("submit needs a spec file (or - for stdin)");
    if (shards.empty() &&
        (!journal.empty() || csv || out != "-" || local_jobs ||
         !local_fallback || !trace_id.empty()))
        die("--journal/--out/--csv/--local-jobs/--no-local-fallback/"
            "--trace-id only apply with --shard");

    std::string spec;
    if (spec_path == "-") {
        std::ostringstream buffer;
        buffer << std::cin.rdbuf();
        spec = buffer.str();
    } else {
        std::ifstream in(spec_path, std::ios::binary);
        if (!in)
            die("cannot read spec file '" + spec_path + "'");
        std::ostringstream buffer;
        buffer << in.rdbuf();
        spec = buffer.str();
    }
    // Spec files may use one clause per line; the matrix grammar is
    // semicolon-separated and skips empty clauses, so newlines map
    // cleanly onto ';'. The daemon then sees the exact one-line spec
    // you would pass to `ctcpsim --campaign`.
    for (char &c : spec)
        if (c == '\n' || c == '\r')
            c = ';';

    if (!shards.empty())
        return cmdSubmitSharded(spec, shards, journal, out, csv,
                                accounting, max_attempts,
                                deadline_seconds, local_jobs,
                                local_fallback, trace_id);

    const HttpResponse resp = request("POST", "/v1/runs" + query, spec);
    if (resp.status != 201)
        return failFrom(resp);
    try {
        const ctcp::json::Value doc = ctcp::json::parse(resp.body);
        std::printf("%s\n", doc.str("id").c_str());
    } catch (const std::exception &) {
        die("malformed submit response: " + resp.body);
    }
    return 0;
}

int
cmdEvents(const std::string &id, bool follow)
{
    std::uint64_t offset = 0;
    for (;;) {
        std::string target = "/v1/runs/" + id +
            "/events?from=" + std::to_string(offset);
        if (follow)
            target += "&wait=10";
        const HttpResponse resp = request("GET", target);
        if (resp.status != 200)
            return failFrom(resp);

        std::fwrite(resp.body.data(), 1, resp.body.size(), stdout);
        std::fflush(stdout);

        std::string next, state;
        for (const auto &h : resp.headers) {
            // parseResponse lower-cases header names.
            if (h.first == "x-ctcp-next-offset")
                next = h.second;
            else if (h.first == "x-ctcp-run-state")
                state = h.second;
        }
        if (!next.empty())
            offset = std::strtoull(next.c_str(), nullptr, 10);

        const bool terminal = state == "done" || state == "cancelled" ||
            state == "error";
        if (!follow || (terminal && resp.body.empty()))
            return state == "error" || state == "cancelled" ? 1 : 0;
    }
}

int
cmdWait(const std::string &id, double timeoutSeconds)
{
    // The server caps one ?wait at its long-poll ceiling; loop client
    // side so arbitrarily long campaigns can be awaited.
    double remaining = timeoutSeconds;
    for (;;) {
        const double slice =
            timeoutSeconds <= 0 ? 10.0 : std::min(remaining, 10.0);
        const HttpResponse resp = request(
            "GET", "/v1/runs/" + id + "?wait=" + std::to_string(slice));
        if (resp.status != 200)
            return failFrom(resp);
        try {
            const ctcp::json::Value doc = ctcp::json::parse(resp.body);
            const std::string state = doc.str("state");
            if (state == "done") {
                std::printf("%s\n", resp.body.c_str());
                return 0;
            }
            if (state == "cancelled" || state == "error") {
                std::printf("%s\n", resp.body.c_str());
                return 1;
            }
        } catch (const std::exception &) {
            die("malformed status response: " + resp.body);
        }
        if (timeoutSeconds > 0) {
            remaining -= slice;
            if (remaining <= 0) {
                std::fprintf(stderr,
                             "ctcpctl: run %s still active after %g "
                             "seconds\n",
                             id.c_str(), timeoutSeconds);
                return 1;
            }
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string command;
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--version") {
            std::printf("ctcpctl %s\n", CTCP_VERSION);
            return 0;
        } else if (arg == "--socket") {
            if (i + 1 >= argc)
                die("missing value for --socket");
            g_socket = argv[++i];
        } else if (command.empty()) {
            command = arg;
        } else {
            args.push_back(arg);
        }
    }
    if (command.empty()) {
        usage(argv[0]);
        return 2;
    }
    const bool sharded_submit = command == "submit" &&
        std::find(args.begin(), args.end(), "--shard") != args.end();
    if (g_socket.empty() && !sharded_submit)
        die("--socket is required");

    auto flag = [&](const std::string &name) {
        for (const auto &a : args)
            if (a == name)
                return true;
        return false;
    };
    auto value = [&](const std::string &name,
                     const std::string &fallback) {
        for (std::size_t i = 0; i + 1 < args.size(); ++i)
            if (args[i] == name)
                return args[i + 1];
        return fallback;
    };
    auto positional = [&]() -> std::string {
        for (const auto &a : args)
            if (a.empty() || a[0] != '-')
                return a;
        return std::string();
    };

    if (command == "ping") {
        const HttpResponse resp = request("GET", "/v1/ping");
        if (resp.status != 200)
            return failFrom(resp);
        std::printf("%s\n", resp.body.c_str());
        return 0;
    }
    if (command == "stats") {
        const HttpResponse resp = request("GET", "/v1/stats");
        if (resp.status != 200)
            return failFrom(resp);
        if (flag("--json")) {
            std::printf("%s\n", resp.body.c_str());
            return 0;
        }
        return cmdStatsTable(resp.body);
    }
    if (command == "top")
        return cmdTop(parseSeconds(value("--interval", "2"),
                                   "--interval value"),
                      parseUnsigned(value("--iterations", "0"),
                                    "--iterations value"));
    if (command == "submit")
        return cmdSubmit(args);
    if (command == "list") {
        const HttpResponse resp = request("GET", "/v1/runs");
        if (resp.status != 200)
            return failFrom(resp);
        std::printf("%s\n", resp.body.c_str());
        return 0;
    }

    // Everything below addresses one run.
    const std::string id = positional();
    if (id.empty())
        die(command + " needs a run id");

    if (command == "status") {
        const HttpResponse resp = request("GET", "/v1/runs/" + id);
        if (resp.status != 200)
            return failFrom(resp);
        std::printf("%s\n", resp.body.c_str());
        return 0;
    }
    if (command == "events")
        return cmdEvents(id, flag("--follow"));
    if (command == "cancel") {
        const HttpResponse resp =
            request("POST", "/v1/runs/" + id + "/cancel");
        if (resp.status != 202)
            return failFrom(resp);
        std::printf("%s\n", resp.body.c_str());
        return 0;
    }
    if (command == "wait")
        return cmdWait(id, std::strtod(value("--timeout", "0").c_str(),
                                       nullptr));
    if (command == "report") {
        std::string target = "/v1/runs/" + id + "/report";
        target += flag("--csv") ? "?format=csv" : "?format=json";
        if (flag("--host-timing"))
            target += "&host_timing=1";
        const HttpResponse resp = request("GET", target);
        if (resp.status != 200)
            return failFrom(resp);
        return writeOut(value("--out", "-"), resp.body) ? 0 : 2;
    }
    if (command == "html") {
        const std::string out = value("--out", "");
        if (out.empty())
            die("html needs --out FILE");
        const HttpResponse resp =
            request("GET", "/v1/runs/" + id + "/html");
        if (resp.status != 200)
            return failFrom(resp);
        return writeOut(out, resp.body) ? 0 : 2;
    }

    die("unknown command '" + command + "'");
}
