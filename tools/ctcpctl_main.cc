/**
 * @file
 * ctcpctl — CLI client for the ctcpd daemon.
 *
 * Wraps the unix-socket HTTP API in subcommands: submit a campaign
 * spec, watch its event stream (the raw campaign journal), fetch the
 * final report (byte-identical to `ctcpsim --campaign`), render the
 * live HTML report, cancel, and poll daemon stats.
 *
 * Exit status: 0 success, 1 daemon-side failure (HTTP error status,
 * run ended cancelled/errored), 2 usage or transport error.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/json.hh"
#include "service/client.hh"
#include "service/http.hh"

namespace {

using ctcp::service::HttpResponse;

std::string g_socket;

void
usage(const char *prog)
{
    std::printf(
        "usage: %s --socket PATH COMMAND [args]\n"
        "\n"
        "commands:\n"
        "  ping                       check the daemon is alive\n"
        "  stats                      pool / run / cache counters\n"
        "  submit SPECFILE            submit a campaign matrix spec\n"
        "                             (- reads stdin); prints the run\n"
        "                             id. Options: --accounting,\n"
        "                             --max-attempts N, --deadline S\n"
        "  list                       status of every run\n"
        "  status ID                  status of one run\n"
        "  events ID [--follow]       print journal records from the\n"
        "                             run; --follow streams until the\n"
        "                             run finishes\n"
        "  cancel ID                  request cancellation\n"
        "  wait ID [--timeout S]      block until the run finishes\n"
        "  report ID [--csv]          final aggregated report\n"
        "         [--host-timing]     (byte-identical to the batch\n"
        "         [--out FILE]        path); 1 while not finished\n"
        "  html ID --out FILE         live HTML report snapshot\n"
        "\n"
        "exit status: 0 ok, 1 daemon-side failure, 2 usage/transport\n",
        prog);
}

[[noreturn]] void
die(const std::string &msg)
{
    std::fprintf(stderr, "ctcpctl: %s\n", msg.c_str());
    std::exit(2);
}

/** One exchange; transport failures exit 2 with a diagnostic. */
HttpResponse
request(const std::string &method, const std::string &target,
        const std::string &body = std::string())
{
    HttpResponse resp;
    std::string error;
    if (!ctcp::service::httpRequest(g_socket, method, target, body,
                                    resp, error))
        die(error);
    return resp;
}

/** Report a non-2xx response on stderr and return exit code 1. */
int
failFrom(const HttpResponse &resp)
{
    // Error bodies are {"error": "..."} — surface just the message.
    std::string message = resp.body;
    try {
        const ctcp::json::Value doc = ctcp::json::parse(resp.body);
        if (doc.isObject() && doc.find("error"))
            message = doc.str("error");
    } catch (const std::exception &) {
        // Not JSON; print the body as-is.
    }
    std::fprintf(stderr, "ctcpctl: HTTP %d: %s\n", resp.status,
                 message.c_str());
    return 1;
}

bool
writeOut(const std::string &path, const std::string &bytes)
{
    if (path.empty() || path == "-") {
        std::fwrite(bytes.data(), 1, bytes.size(), stdout);
        return true;
    }
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    out.close();
    if (!out) {
        std::fprintf(stderr, "ctcpctl: cannot write %s\n",
                     path.c_str());
        return false;
    }
    return true;
}

int
cmdSubmit(const std::vector<std::string> &args)
{
    std::string spec_path;
    std::string query;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--accounting") {
            query += query.empty() ? "?" : "&";
            query += "accounting=1";
        } else if (args[i] == "--max-attempts" && i + 1 < args.size()) {
            query += query.empty() ? "?" : "&";
            query += "max_attempts=" + args[++i];
        } else if (args[i] == "--deadline" && i + 1 < args.size()) {
            query += query.empty() ? "?" : "&";
            query += "deadline=" + args[++i];
        } else if (!args[i].empty() && args[i][0] == '-' &&
                   args[i] != "-") {
            die("unknown submit option '" + args[i] + "'");
        } else if (spec_path.empty()) {
            spec_path = args[i];
        } else {
            die("submit takes one spec file");
        }
    }
    if (spec_path.empty())
        die("submit needs a spec file (or - for stdin)");

    std::string spec;
    if (spec_path == "-") {
        std::ostringstream buffer;
        buffer << std::cin.rdbuf();
        spec = buffer.str();
    } else {
        std::ifstream in(spec_path, std::ios::binary);
        if (!in)
            die("cannot read spec file '" + spec_path + "'");
        std::ostringstream buffer;
        buffer << in.rdbuf();
        spec = buffer.str();
    }
    // Spec files may use one clause per line; the matrix grammar is
    // semicolon-separated and skips empty clauses, so newlines map
    // cleanly onto ';'. The daemon then sees the exact one-line spec
    // you would pass to `ctcpsim --campaign`.
    for (char &c : spec)
        if (c == '\n' || c == '\r')
            c = ';';

    const HttpResponse resp = request("POST", "/v1/runs" + query, spec);
    if (resp.status != 201)
        return failFrom(resp);
    try {
        const ctcp::json::Value doc = ctcp::json::parse(resp.body);
        std::printf("%s\n", doc.str("id").c_str());
    } catch (const std::exception &) {
        die("malformed submit response: " + resp.body);
    }
    return 0;
}

int
cmdEvents(const std::string &id, bool follow)
{
    std::uint64_t offset = 0;
    for (;;) {
        std::string target = "/v1/runs/" + id +
            "/events?from=" + std::to_string(offset);
        if (follow)
            target += "&wait=10";
        const HttpResponse resp = request("GET", target);
        if (resp.status != 200)
            return failFrom(resp);

        std::fwrite(resp.body.data(), 1, resp.body.size(), stdout);
        std::fflush(stdout);

        std::string next, state;
        for (const auto &h : resp.headers) {
            // parseResponse lower-cases header names.
            if (h.first == "x-ctcp-next-offset")
                next = h.second;
            else if (h.first == "x-ctcp-run-state")
                state = h.second;
        }
        if (!next.empty())
            offset = std::strtoull(next.c_str(), nullptr, 10);

        const bool terminal = state == "done" || state == "cancelled" ||
            state == "error";
        if (!follow || (terminal && resp.body.empty()))
            return state == "error" || state == "cancelled" ? 1 : 0;
    }
}

int
cmdWait(const std::string &id, double timeoutSeconds)
{
    // The server caps one ?wait at its long-poll ceiling; loop client
    // side so arbitrarily long campaigns can be awaited.
    double remaining = timeoutSeconds;
    for (;;) {
        const double slice =
            timeoutSeconds <= 0 ? 10.0 : std::min(remaining, 10.0);
        const HttpResponse resp = request(
            "GET", "/v1/runs/" + id + "?wait=" + std::to_string(slice));
        if (resp.status != 200)
            return failFrom(resp);
        try {
            const ctcp::json::Value doc = ctcp::json::parse(resp.body);
            const std::string state = doc.str("state");
            if (state == "done") {
                std::printf("%s\n", resp.body.c_str());
                return 0;
            }
            if (state == "cancelled" || state == "error") {
                std::printf("%s\n", resp.body.c_str());
                return 1;
            }
        } catch (const std::exception &) {
            die("malformed status response: " + resp.body);
        }
        if (timeoutSeconds > 0) {
            remaining -= slice;
            if (remaining <= 0) {
                std::fprintf(stderr,
                             "ctcpctl: run %s still active after %g "
                             "seconds\n",
                             id.c_str(), timeoutSeconds);
                return 1;
            }
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string command;
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--socket") {
            if (i + 1 >= argc)
                die("missing value for --socket");
            g_socket = argv[++i];
        } else if (command.empty()) {
            command = arg;
        } else {
            args.push_back(arg);
        }
    }
    if (command.empty()) {
        usage(argv[0]);
        return 2;
    }
    if (g_socket.empty())
        die("--socket is required");

    auto flag = [&](const std::string &name) {
        for (const auto &a : args)
            if (a == name)
                return true;
        return false;
    };
    auto value = [&](const std::string &name,
                     const std::string &fallback) {
        for (std::size_t i = 0; i + 1 < args.size(); ++i)
            if (args[i] == name)
                return args[i + 1];
        return fallback;
    };
    auto positional = [&]() -> std::string {
        for (const auto &a : args)
            if (a.empty() || a[0] != '-')
                return a;
        return std::string();
    };

    if (command == "ping") {
        const HttpResponse resp = request("GET", "/v1/ping");
        if (resp.status != 200)
            return failFrom(resp);
        std::printf("%s\n", resp.body.c_str());
        return 0;
    }
    if (command == "stats") {
        const HttpResponse resp = request("GET", "/v1/stats");
        if (resp.status != 200)
            return failFrom(resp);
        std::printf("%s\n", resp.body.c_str());
        return 0;
    }
    if (command == "submit")
        return cmdSubmit(args);
    if (command == "list") {
        const HttpResponse resp = request("GET", "/v1/runs");
        if (resp.status != 200)
            return failFrom(resp);
        std::printf("%s\n", resp.body.c_str());
        return 0;
    }

    // Everything below addresses one run.
    const std::string id = positional();
    if (id.empty())
        die(command + " needs a run id");

    if (command == "status") {
        const HttpResponse resp = request("GET", "/v1/runs/" + id);
        if (resp.status != 200)
            return failFrom(resp);
        std::printf("%s\n", resp.body.c_str());
        return 0;
    }
    if (command == "events")
        return cmdEvents(id, flag("--follow"));
    if (command == "cancel") {
        const HttpResponse resp =
            request("POST", "/v1/runs/" + id + "/cancel");
        if (resp.status != 202)
            return failFrom(resp);
        std::printf("%s\n", resp.body.c_str());
        return 0;
    }
    if (command == "wait")
        return cmdWait(id, std::strtod(value("--timeout", "0").c_str(),
                                       nullptr));
    if (command == "report") {
        std::string target = "/v1/runs/" + id + "/report";
        target += flag("--csv") ? "?format=csv" : "?format=json";
        if (flag("--host-timing"))
            target += "&host_timing=1";
        const HttpResponse resp = request("GET", target);
        if (resp.status != 200)
            return failFrom(resp);
        return writeOut(value("--out", "-"), resp.body) ? 0 : 2;
    }
    if (command == "html") {
        const std::string out = value("--out", "");
        if (out.empty())
            die("html needs --out FILE");
        const HttpResponse resp =
            request("GET", "/v1/runs/" + id + "/html");
        if (resp.status != 200)
            return failFrom(resp);
        return writeOut(out, resp.body) ? 0 : 2;
    }

    die("unknown command '" + command + "'");
}
