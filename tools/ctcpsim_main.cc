/**
 * @file
 * ctcpsim — command-line driver for the clustered trace cache
 * processor simulator.
 *
 * Runs one benchmark under one machine configuration and prints the
 * full statistics dump. Every Table 7 parameter that the paper varies
 * is exposed as a flag.
 */

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "campaign/campaign.hh"
#include "campaign/matrix.hh"
#include "common/atomic_file.hh"
#include "common/sim_error.hh"
#include "common/version.hh"
#include "config/presets.hh"
#include "core/simulator.hh"
#include "obs/report.hh"
#include "obs/sink.hh"
#include "stats/interval.hh"
#include "stats/table.hh"
#include "workload/workload.hh"

namespace {

void
usage(const char *prog)
{
    std::printf(
        "usage: %s [options]\n"
        "\n"
        "workload:\n"
        "  --bench NAME          benchmark to run (default gzip)\n"
        "  --list                list available benchmarks and exit\n"
        "  --instructions N      instruction budget (default 2000000)\n"
        "\n"
        "cluster assignment:\n"
        "  --strategy S          base | friendly | fdrt | issue-time |\n"
        "                        adaptive (phase-adaptive chooser; see\n"
        "                        --adaptive-interval)\n"
        "  --adaptive-interval N adaptive: cycles between phase\n"
        "                        evaluations (default 5000)\n"
        "  --issue-latency N     extra front-end stages for issue-time\n"
        "  --no-pinning          FDRT: do not pin chain leaders\n"
        "  --no-chains           FDRT: intra-trace heuristics only\n"
        "  --middle-bias         Friendly: bias toward middle clusters\n"
        "\n"
        "machine:\n"
        "  --clusters N          number of clusters (default 4); the\n"
        "                        machine width rescales to match\n"
        "  --cluster-width N     issue slots per cluster (default 4);\n"
        "                        the machine width rescales to match\n"
        "  --hop-latency N       cycles per cluster hop (default 2)\n"
        "  --topology T          linear | ring | crossbar | hier | bus\n"
        "                        (default linear)\n"
        "  --mesh                alias for --topology ring\n"
        "  --bus                 alias for --topology bus\n"
        "  --preset P            base | mesh | onecycle | twocluster |\n"
        "                        bus | eightcluster | ring | crossbar |\n"
        "                        hier\n"
        "\n"
        "output:\n"
        "  --json                print headline metrics as JSON\n"
        "  --host-timing         include host wall-clock metrics\n"
        "                        (host.*) in JSON output; off by\n"
        "                        default because they vary run to run\n"
        "  --trace FILE          write a pipeline trace of the first\n"
        "  --trace-cycles N      N cycles (default 1000) to FILE\n"
        "\n"
        "observability (src/obs):\n"
        "  --trace-events FILE   write Chrome trace_event JSON (open in\n"
        "                        chrome://tracing or Perfetto); in\n"
        "                        campaign mode FILE is a directory and\n"
        "                        each job writes <label>.trace.json\n"
        "  --trace-text FILE     compact one-line-per-event text trace\n"
        "  --trace-filter KINDS  comma-separated event kinds to record\n"
        "                        (fetch, tc-hit, tc-miss, trace-build,\n"
        "                        assign, rename, issue, execute,\n"
        "                        forward, complete, retire, flush, mem;\n"
        "                        default all)\n"
        "  --interval-stats FILE interval time series (CSV, or JSON\n"
        "                        when FILE ends in .json); in campaign\n"
        "                        mode FILE is a directory and each job\n"
        "                        writes <label>.intervals.csv\n"
        "  --interval N          sampling period in cycles for\n"
        "                        --interval-stats (default 10000)\n"
        "  --accounting          attribute every cluster issue slot to\n"
        "                        a stall taxonomy (useful, operand\n"
        "                        waits by forward hop count, FU/RS/ROB\n"
        "                        pressure, fetch starvation, idle) and\n"
        "                        record the inter-cluster forwarding\n"
        "                        matrix; adds an \"accounting\" block\n"
        "                        to --json / --out output\n"
        "  --report FILE         write a self-contained HTML report\n"
        "                        (cycle-accounting bars, forwarding\n"
        "                        heatmap, IPC sparklines when\n"
        "                        --interval-stats is set); implies\n"
        "                        --accounting\n"
        "\n"
        "campaign mode (runs a workload x config matrix instead):\n"
        "  --campaign MATRIX     submit the matrix to the concurrent\n"
        "                        campaign engine (see below)\n"
        "  --jobs N              worker threads (default: one per\n"
        "                        hardware thread); results do not\n"
        "                        depend on N\n"
        "  --out FILE            write aggregated results to FILE\n"
        "                        (CSV when FILE ends in .csv, else\n"
        "                        JSON)\n"
        "\n"
        "robustness:\n"
        "  --check-invariants    revalidate pipeline invariants every\n"
        "                        cycle (scheduler readiness, ROB order,\n"
        "                        store window, trace lines); a\n"
        "                        violation aborts the run. Slow; for\n"
        "                        debugging and CI\n"
        "  --watchdog N          abort (with a pipeline-state dump) if\n"
        "                        no instruction retires for N cycles\n"
        "                        (default 1000000; 0 disables)\n"
        "  --deadline SECS       per-run wall-clock budget; overruns\n"
        "                        fail with a timeout error (campaign\n"
        "                        mode: applies to each job)\n"
        "  --max-attempts N      campaign mode: re-run a job that\n"
        "                        fails retryably up to N times\n"
        "                        (default 1)\n"
        "  --journal FILE        campaign mode: checkpoint finished\n"
        "                        jobs to an append-only JSONL journal\n"
        "                        and resume from it after a crash\n"
        "                        (completed jobs are not re-run)\n"
        "\n"
        "ablations (Figure 5):\n"
        "  --zero-fwd            no inter-cluster forwarding latency\n"
        "  --zero-crit-fwd       critical input forwards with no latency\n"
        "  --zero-intra-fwd      intra-trace forwards with no latency\n"
        "  --zero-inter-fwd      inter-trace forwards with no latency\n"
        "  --zero-rf             no register-file read latency\n"
        "\n"
        "%s\n"
        "--version prints the version and exits.\n"
        "\n"
        "exit status:\n"
        "  0  simulation (or every campaign job) succeeded\n"
        "  1  the simulation failed, or at least one campaign job did\n"
        "  2  usage or configuration error\n",
        prog, ctcp::campaign::matrixSyntaxHelp());
}

/** Usage / configuration error: exit status 2. */
[[noreturn]] void
die(const std::string &msg)
{
    std::fprintf(stderr, "ctcpsim: %s (try --help)\n", msg.c_str());
    std::exit(2);
}

/** Robustness knobs campaign jobs inherit from the command line. */
struct RobustnessFlags
{
    unsigned checkLevel = 0;
    bool watchdogSet = false;
    std::uint64_t watchdogCycles = 0;
};

/** Render report JSON text into a self-contained HTML file. */
void
writeHtmlReport(const std::string &json_text,
                const std::string &interval_path,
                const std::string &report_path, const std::string &title)
{
    using namespace ctcp;
    try {
        report::ReportView view = report::fromJsonText(json_text);
        if (!interval_path.empty())
            report::loadIntervalSeries(interval_path, view);
        atomicWriteFile(report_path, report::renderHtml(view, title));
    } catch (const std::exception &e) {
        die(std::string("writing --report failed: ") + e.what());
    }
    std::fprintf(stderr, "wrote HTML report to %s\n",
                 report_path.c_str());
}

/** Set by the campaign-mode SIGINT handler; polled between jobs. */
std::atomic<bool> g_interrupted{false};

void
onCampaignInterrupt(int)
{
    g_interrupted.store(true);
}

/** Run a --campaign matrix and export/print the aggregated report. */
int
runCampaignMode(const std::string &matrix, ctcp::campaign::Options options,
                const std::string &out_path,
                const std::string &report_path, bool host_timing,
                const RobustnessFlags &robust)
{
    using namespace ctcp;

    std::vector<campaign::Job> queue;
    try {
        queue = campaign::parseMatrix(matrix);
    } catch (const std::invalid_argument &e) {
        die(e.what());
    }
    for (campaign::Job &job : queue) {
        if (robust.checkLevel > job.config.checkLevel)
            job.config.checkLevel = robust.checkLevel;
        if (robust.watchdogSet)
            job.config.watchdogCycles = robust.watchdogCycles;
    }

    options.progress = campaign::progressToStderr;

    // Ctrl-C checkpoints instead of killing the batch: in-flight jobs
    // finish and land in the journal, queued jobs are skipped, and
    // re-running with the same --journal resumes only the missing
    // jobs — the same drain path the ctcpd daemon uses on SIGTERM.
    options.cancelRequested = [] { return g_interrupted.load(); };
    struct sigaction sa, old_sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = onCampaignInterrupt;
    ::sigaction(SIGINT, &sa, &old_sa);

    campaign::Report report;
    try {
        report = campaign::runCampaign(queue, options);
    } catch (const SimError &e) {
        // Campaign-level SimErrors (e.g. an unopenable journal) are
        // configuration problems; per-job errors never propagate here.
        die(e.what());
    }
    ::sigaction(SIGINT, &old_sa, nullptr);
    if (g_interrupted.load()) {
        if (options.journalPath.empty())
            std::fprintf(stderr,
                         "interrupted: %zu of %zu jobs finished "
                         "(no --journal; finished work is lost)\n",
                         report.jobs.size() - report.failed(),
                         report.jobs.size());
        else
            std::fprintf(stderr,
                         "interrupted: %zu of %zu jobs checkpointed "
                         "to %s; re-run with the same --journal to "
                         "resume\n",
                         report.jobs.size() - report.failed(),
                         report.jobs.size(),
                         options.journalPath.c_str());
    }

    TextTable table({"job", "status", "cycles", "IPC", "% from TC"});
    for (const campaign::JobOutcome &job : report.jobs) {
        table.row(job.label);
        if (job.ok()) {
            table.cell("ok")
                .cell(std::to_string(job.result.cycles))
                .cell(job.result.ipc(), 3)
                .percentCell(job.result.pctFromTraceCache);
        } else {
            table.cell("FAILED: " + job.error).cell("-").cell("-")
                .cell("-");
        }
    }
    std::printf("%s", table.render().c_str());
    std::printf("\n%zu jobs, %zu failed\n", report.jobs.size(),
                report.failed());

    if (!out_path.empty()) {
        const bool csv = out_path.size() >= 4 &&
            out_path.compare(out_path.size() - 4, 4, ".csv") == 0;
        try {
            // Staged + renamed: a crash mid-export leaves any
            // previous report intact, never a truncated one.
            atomicWriteFile(
                out_path,
                csv ? report.toCsv(options.accounting)
                    : report.toJson(host_timing, options.accounting));
        } catch (const std::exception &e) {
            die(e.what());
        }
        std::fprintf(stderr, "wrote %s results to %s\n",
                     csv ? "CSV" : "JSON", out_path.c_str());
    }
    if (!report_path.empty())
        writeHtmlReport(report.toJson(host_timing, true),
                        options.intervalDir, report_path,
                        "ctcpsim campaign report");
    return report.failed() ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ctcp;

    std::string bench = "gzip";
    std::string preset = "base";
    SimConfig cfg = baseConfig();
    std::uint64_t instructions = 2'000'000;
    bool clusters_set = false;
    bool cluster_width_set = false;
    bool json = false;
    bool host_timing = false;
    unsigned clusters = 4;
    unsigned cluster_width = 4;
    std::string campaign_matrix;
    bool campaign_set = false;
    unsigned campaign_jobs = 0;
    std::string out_path;
    std::string trace_events;
    std::string trace_text;
    std::string trace_filter;
    std::string interval_stats;
    Cycle interval_cycles = 10'000;
    bool accounting = false;
    std::string report_path;
    RobustnessFlags robust;
    double deadline_seconds = 0.0;
    unsigned max_attempts = 1;
    std::string journal_path;

    auto next_arg = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            die(std::string("missing value for ") + argv[i]);
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--version") {
            std::printf("ctcpsim %s\n", CTCP_VERSION);
            return 0;
        } else if (arg == "--list") {
            for (const auto &info : workloads::all())
                std::printf("%-12s %-8s %s\n", info.name.c_str(),
                            info.suite == workloads::Suite::SpecInt
                                ? "specint" : "media",
                            info.description.c_str());
            return 0;
        } else if (arg == "--bench") {
            bench = next_arg(i);
        } else if (arg == "--instructions") {
            instructions = std::strtoull(next_arg(i), nullptr, 10);
        } else if (arg == "--strategy") {
            const std::string s = next_arg(i);
            if (s == "base")
                cfg.assign.strategy = AssignStrategy::BaseSlotOrder;
            else if (s == "friendly")
                cfg.assign.strategy = AssignStrategy::Friendly;
            else if (s == "fdrt")
                cfg.assign.strategy = AssignStrategy::Fdrt;
            else if (s == "issue-time")
                cfg.assign.strategy = AssignStrategy::IssueTime;
            else if (s == "adaptive")
                cfg.assign.strategy = AssignStrategy::Adaptive;
            else
                die("unknown strategy '" + s + "'");
        } else if (arg == "--adaptive-interval") {
            cfg.assign.adaptiveInterval =
                std::strtoull(next_arg(i), nullptr, 10);
        } else if (arg == "--issue-latency") {
            cfg.assign.issueTimeLatency = static_cast<unsigned>(
                std::strtoul(next_arg(i), nullptr, 10));
        } else if (arg == "--no-pinning") {
            cfg.assign.fdrtPinning = false;
        } else if (arg == "--no-chains") {
            cfg.assign.fdrtChains = false;
        } else if (arg == "--middle-bias") {
            cfg.assign.friendlyMiddleBias = true;
        } else if (arg == "--clusters") {
            clusters = static_cast<unsigned>(
                std::strtoul(next_arg(i), nullptr, 10));
            clusters_set = true;
        } else if (arg == "--cluster-width") {
            cluster_width = static_cast<unsigned>(
                std::strtoul(next_arg(i), nullptr, 10));
            cluster_width_set = true;
        } else if (arg == "--hop-latency") {
            cfg.cluster.hopLatency = static_cast<unsigned>(
                std::strtoul(next_arg(i), nullptr, 10));
        } else if (arg == "--topology") {
            const std::string t = next_arg(i);
            cfg.cluster.mesh = false;
            cfg.cluster.bus = false;
            if (!parseTopology(t, cfg.cluster.topology))
                die("unknown topology '" + t + "'");
        } else if (arg == "--mesh") {
            cfg.cluster.mesh = true;
        } else if (arg == "--bus") {
            cfg.cluster.bus = true;
        } else if (arg == "--preset") {
            preset = next_arg(i);
            AssignConfig keep = cfg.assign;
            if (preset == "base")
                cfg = baseConfig();
            else if (preset == "mesh")
                cfg = meshConfig();
            else if (preset == "onecycle")
                cfg = oneCycleForwardConfig();
            else if (preset == "twocluster")
                cfg = twoClusterConfig();
            else if (preset == "bus")
                cfg = busConfig();
            else if (preset == "eightcluster")
                cfg = eightClusterConfig();
            else if (preset == "ring")
                cfg = ringConfig();
            else if (preset == "crossbar")
                cfg = crossbarConfig();
            else if (preset == "hier")
                cfg = hierConfig();
            else
                die("unknown preset '" + preset + "'");
            cfg.assign.strategy = keep.strategy;
            cfg.assign.fdrtPinning = keep.fdrtPinning;
            cfg.assign.fdrtChains = keep.fdrtChains;
        } else if (arg == "--campaign") {
            campaign_matrix = next_arg(i);
            campaign_set = true;
        } else if (arg == "--jobs") {
            try {
                campaign_jobs = campaign::parseWorkerCount(next_arg(i));
            } catch (const std::invalid_argument &e) {
                die(e.what());
            }
        } else if (arg == "--out") {
            out_path = next_arg(i);
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--host-timing") {
            host_timing = true;
        } else if (arg == "--trace") {
            cfg.debug.pipelineTracePath = next_arg(i);
        } else if (arg == "--trace-cycles") {
            cfg.debug.traceCycles =
                std::strtoull(next_arg(i), nullptr, 10);
        } else if (arg == "--trace-events") {
            trace_events = next_arg(i);
        } else if (arg == "--trace-text") {
            trace_text = next_arg(i);
        } else if (arg == "--trace-filter") {
            trace_filter = next_arg(i);
            try {
                ObsSink::parseFilter(trace_filter);   // fail fast
            } catch (const std::invalid_argument &e) {
                die(e.what());
            }
        } else if (arg == "--interval-stats") {
            interval_stats = next_arg(i);
        } else if (arg == "--interval") {
            try {
                interval_cycles = parseIntervalCycles(next_arg(i));
            } catch (const std::invalid_argument &e) {
                die(e.what());
            }
        } else if (arg == "--accounting") {
            accounting = true;
        } else if (arg == "--report") {
            report_path = next_arg(i);
            accounting = true;     // a report needs the taxonomy
        } else if (arg == "--check-invariants") {
            robust.checkLevel = 1;
        } else if (arg == "--watchdog") {
            robust.watchdogCycles =
                std::strtoull(next_arg(i), nullptr, 10);
            robust.watchdogSet = true;
        } else if (arg == "--deadline") {
            char *end = nullptr;
            const char *text = next_arg(i);
            deadline_seconds = std::strtod(text, &end);
            if (end == text || *end != '\0' || deadline_seconds < 0.0)
                die(std::string("invalid --deadline '") + text + "'");
        } else if (arg == "--max-attempts") {
            max_attempts = static_cast<unsigned>(
                std::strtoul(next_arg(i), nullptr, 10));
            if (max_attempts == 0)
                die("--max-attempts must be positive");
        } else if (arg == "--journal") {
            journal_path = next_arg(i);
        } else if (arg == "--zero-fwd") {
            cfg.ablation.zeroAllForwardLatency = true;
        } else if (arg == "--zero-crit-fwd") {
            cfg.ablation.zeroCriticalForwardLatency = true;
        } else if (arg == "--zero-intra-fwd") {
            cfg.ablation.zeroIntraTraceForwardLatency = true;
        } else if (arg == "--zero-inter-fwd") {
            cfg.ablation.zeroInterTraceForwardLatency = true;
        } else if (arg == "--zero-rf") {
            cfg.ablation.zeroRegisterFileLatency = true;
        } else {
            die("unknown option '" + arg + "'");
        }
    }

    if (campaign_set) {
        campaign::Options options;
        options.jobs = campaign_jobs;
        options.traceEventsDir = trace_events;
        options.traceFilter = trace_filter;
        options.intervalDir = interval_stats;
        if (!interval_stats.empty())
            options.intervalCycles = interval_cycles;
        options.jobDeadlineSeconds = deadline_seconds;
        options.maxAttempts = max_attempts;
        options.journalPath = journal_path;
        options.accounting = accounting;
        return runCampaignMode(campaign_matrix, options, out_path,
                               report_path, host_timing, robust);
    }
    if (!journal_path.empty())
        die("--journal requires --campaign");

    if (clusters_set || cluster_width_set)
        applyMachineScale(
            cfg, clusters_set ? clusters : cfg.cluster.numClusters,
            cluster_width_set ? cluster_width
                              : cfg.cluster.clusterWidth);
    cfg.instructionLimit = instructions;
    cfg.checkLevel = robust.checkLevel;
    if (robust.watchdogSet)
        cfg.watchdogCycles = robust.watchdogCycles;
    cfg.deadlineSeconds = deadline_seconds;
    cfg.obs.traceEventsPath = trace_events;
    cfg.obs.traceTextPath = trace_text;
    cfg.obs.traceFilter = trace_filter;
    cfg.obs.intervalPath = interval_stats;
    if (!interval_stats.empty())
        cfg.obs.intervalCycles = interval_cycles;
    cfg.obs.accounting = accounting;

    if (!workloads::exists(bench))
        die("unknown benchmark '" + bench + "' (see --list)");
    try {
        cfg.validate();
    } catch (const SimError &e) {
        die(e.what());
    }

    Program prog = workloads::build(bench);
    try {
        CtcpSimulator sim(cfg, prog);
        SimResult r = sim.run();
        if (json)
            std::printf("%s",
                        r.toJson(host_timing, accounting).c_str());
        else
            std::printf("%s", r.statsText.c_str());
        if (!report_path.empty()) {
            // Sparklines need the CSV flavor of --interval-stats.
            const bool csv_intervals = !interval_stats.empty() &&
                (interval_stats.size() < 5 ||
                 interval_stats.compare(interval_stats.size() - 5, 5,
                                        ".json") != 0);
            writeHtmlReport(r.toJson(host_timing, true),
                            csv_intervals ? interval_stats : "",
                            report_path, "ctcpsim run report: " + bench);
        }
        if (host_timing && !json)
            std::fprintf(stderr,
                         "host: %.3fs, %.0f sim insts/s\n",
                         r.hostSeconds, r.simInstsPerHostSecond());
    } catch (const SimError &e) {
        if (e.category() == ErrorCategory::Config)
            die(e.what());
        std::fprintf(stderr, "ctcpsim: %s error: %s\n",
                     errorCategoryName(e.category()), e.what());
        return 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "ctcpsim: simulation failed: %s\n",
                     e.what());
        return 1;
    }
    return 0;
}
