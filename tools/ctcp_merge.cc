/**
 * @file
 * ctcp_merge — offline shard-journal merger.
 *
 * Takes the campaign spec plus any number of journal files (per-shard
 * daemon journals, a coordinator's merged journal, or a mix), merges
 * them by slot index (first-complete-wins, file order decides ties)
 * through the same service::mergeJournalFiles code path the live shard
 * coordinator uses, and replays the merged journal into the aggregated
 * report — byte-identical to `ctcpsim --campaign` over the same spec.
 *
 * This is the post-hoc recovery tool for a coordinator that died
 * mid-campaign: the per-shard journals on each daemon's state dir are
 * the source of truth, and merging them is order-independent.
 *
 * Exit status: 0 report complete and every job ok, 1 jobs failed or
 * slots missing (unless --run-missing), 2 usage/config errors.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "campaign/matrix.hh"
#include "common/sim_error.hh"
#include "service/shard_coordinator.hh"

namespace {

void
usage(const char *prog)
{
    std::printf(
        "usage: %s --campaign SPEC --merged FILE [options] "
        "JOURNAL...\n"
        "\n"
        "Merge shard campaign journals into one resumable journal at\n"
        "FILE and print the aggregated report.\n"
        "\n"
        "options:\n"
        "  --campaign SPEC   campaign matrix spec (required)\n"
        "  --merged FILE     merged journal output path (required)\n"
        "  --out FILE        report destination (default stdout)\n"
        "  --csv             CSV report instead of JSON\n"
        "  --run-missing     execute slots no journal covers locally\n"
        "                    instead of reporting them missing\n"
        "  --jobs N          worker threads for --run-missing\n"
        "\n"
        "exit status: 0 complete and all ok, 1 failed jobs or missing\n"
        "slots, 2 usage/config\n",
        prog);
}

[[noreturn]] void
die(const std::string &msg)
{
    std::fprintf(stderr, "ctcp_merge: %s\n", msg.c_str());
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string spec, merged_path, out_path = "-";
    bool csv = false, run_missing = false;
    unsigned jobs = 0;
    std::vector<std::string> inputs;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--campaign" && i + 1 < argc) {
            spec = argv[++i];
        } else if (arg == "--merged" && i + 1 < argc) {
            merged_path = argv[++i];
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--csv") {
            csv = true;
        } else if (arg == "--run-missing") {
            run_missing = true;
        } else if (arg == "--jobs" && i + 1 < argc) {
            char *end = nullptr;
            jobs = static_cast<unsigned>(
                std::strtoul(argv[++i], &end, 10));
            if (!end || *end != '\0')
                die(std::string("bad --jobs value '") + argv[i] + "'");
        } else if (!arg.empty() && arg[0] == '-') {
            die("unknown option '" + arg + "'");
        } else {
            inputs.push_back(arg);
        }
    }
    if (spec.empty())
        die("--campaign SPEC is required");
    if (merged_path.empty())
        die("--merged FILE is required");
    if (inputs.empty())
        die("at least one journal file is required");

    try {
        std::vector<std::size_t> slot_check;
        const std::vector<ctcp::campaign::Job> all =
            ctcp::campaign::parseMatrix(spec, slot_check);

        const ctcp::service::MergeResult merge =
            ctcp::service::mergeJournalFiles(inputs, all, merged_path);
        std::fprintf(stderr,
                     "ctcp_merge: %zu merged, %zu duplicate(s), %zu "
                     "mismatched record(s)\n",
                     merge.merged, merge.duplicates, merge.mismatched);
        if (!merge.missingSlots.empty())
            std::fprintf(
                stderr, "ctcp_merge: missing slot(s): %s%s\n",
                ctcp::service::formatSlotRanges(merge.missingSlots)
                    .c_str(),
                run_missing ? " (running locally)" : "");
        if (!merge.missingSlots.empty() && !run_missing)
            return 1;

        // Same merge-then-replay path as the live coordinator: a
        // complete journal replays without executing anything.
        ctcp::campaign::Options options;
        options.journalPath = merged_path;
        options.jobs = jobs;
        const ctcp::campaign::Report report =
            ctcp::campaign::runCampaign(all, options);

        const std::string body =
            csv ? report.toCsv() : report.toJson();
        if (out_path.empty() || out_path == "-") {
            std::fwrite(body.data(), 1, body.size(), stdout);
        } else {
            std::ofstream out(out_path, std::ios::binary);
            out.write(body.data(),
                      static_cast<std::streamsize>(body.size()));
            out.close();
            if (!out)
                die("cannot write " + out_path);
        }
        return report.failed() == 0 ? 0 : 1;
    } catch (const ctcp::SimError &e) {
        die(e.what());
    } catch (const std::exception &e) {
        die(e.what());
    }
}
