/**
 * @file
 * ctcp_perf_gate — simulator throughput regression gate.
 *
 * Compares a candidate BENCH_throughput.json against a baseline (the
 * checked-in one) and fails when a mode's headline throughput
 * (sim_insts_per_host_second, the median across measured reps) drops
 * by more than the allowed percentage. Made for CI: absolute
 * insts/s varies with the runner, but a large relative drop on the
 * same machine within one job is a real regression signal.
 *
 * Only regressions fail the gate; speedups and baseline modes missing
 * from the candidate (or vice versa) are reported but pass, so the
 * gate never blocks adding or renaming benchmark modes.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"

namespace {

void
usage(const char *prog)
{
    std::printf(
        "usage: %s BASELINE.json CANDIDATE.json [options]\n"
        "\n"
        "  --max-regress PCT  maximum allowed throughput drop in percent\n"
        "                     (default 15)\n"
        "  --mode NAME        gate only this mode; repeatable\n"
        "                     (default: tracing_off)\n"
        "\n"
        "exit status:\n"
        "  0  every gated mode within the allowed drop\n"
        "  1  regression beyond the threshold, or a gated mode missing\n"
        "     a usable rate in both files\n"
        "  2  usage error or unreadable/malformed input\n",
        prog);
}

[[noreturn]] void
die(const std::string &msg)
{
    std::fprintf(stderr, "ctcp_perf_gate: %s\n", msg.c_str());
    std::exit(2);
}

ctcp::json::Value
loadJson(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        die("cannot open '" + path + "'");
    std::ostringstream text;
    text << in.rdbuf();
    try {
        return ctcp::json::parse(text.str());
    } catch (const std::exception &e) {
        die("malformed '" + path + "': " + e.what());
    }
}

/** Headline rate for one mode; 0 when the mode is absent. */
double
modeRate(const ctcp::json::Value &doc, const std::string &mode_name)
{
    const ctcp::json::Value *modes = doc.find("modes");
    if (modes == nullptr || !modes->isArray())
        return 0.0;
    for (const ctcp::json::Value &m : modes->array) {
        if (m.str("name") == mode_name)
            return m.num("sim_insts_per_host_second");
    }
    return 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string base_path;
    std::string cand_path;
    double max_regress_pct = 15.0;
    std::vector<std::string> gated_modes;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-h" || arg == "--help") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--max-regress") {
            if (++i >= argc)
                die("--max-regress needs a value");
            char *end = nullptr;
            max_regress_pct = std::strtod(argv[i], &end);
            if (end == argv[i] || *end != '\0' || max_regress_pct < 0.0)
                die(std::string("invalid --max-regress value '") +
                    argv[i] + "'");
        } else if (arg == "--mode") {
            if (++i >= argc)
                die("--mode needs a name");
            gated_modes.emplace_back(argv[i]);
        } else if (!arg.empty() && arg[0] == '-') {
            die("unknown option '" + arg + "'");
        } else if (base_path.empty()) {
            base_path = arg;
        } else if (cand_path.empty()) {
            cand_path = arg;
        } else {
            die("unexpected argument '" + arg + "'");
        }
    }
    if (cand_path.empty()) {
        usage(argv[0]);
        return 2;
    }
    if (gated_modes.empty())
        gated_modes.emplace_back("tracing_off");

    const ctcp::json::Value baseline = loadJson(base_path);
    const ctcp::json::Value candidate = loadJson(cand_path);

    bool failed = false;
    for (const std::string &mode : gated_modes) {
        const double base = modeRate(baseline, mode);
        const double cand = modeRate(candidate, mode);
        if (base <= 0.0 && cand <= 0.0) {
            std::printf("%-18s missing in both files        FAIL\n",
                        mode.c_str());
            failed = true;
            continue;
        }
        if (base <= 0.0) {
            std::printf("%-18s no baseline rate (new mode)  pass\n",
                        mode.c_str());
            continue;
        }
        if (cand <= 0.0) {
            std::printf("%-18s missing from candidate       FAIL\n",
                        mode.c_str());
            failed = true;
            continue;
        }
        const double delta_pct = 100.0 * (cand - base) / base;
        const bool ok = delta_pct >= -max_regress_pct;
        std::printf("%-18s %10.0f -> %10.0f insts/s  %+6.1f%%  "
                    "(limit -%.1f%%)  %s\n",
                    mode.c_str(), base, cand, delta_pct, max_regress_pct,
                    ok ? "pass" : "FAIL");
        if (!ok)
            failed = true;
    }
    return failed ? 1 : 0;
}
