/**
 * @file
 * ctcp_report — render a run/campaign JSON report as static HTML.
 *
 * Reads a SimResult::toJson() or campaign Report::toJson() document
 * (produced with --accounting for the full picture) and writes one
 * self-contained HTML page: cycle-accounting bars, forwarding
 * heatmaps, and IPC sparklines from optional interval CSVs.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/atomic_file.hh"
#include "obs/report.hh"

namespace {

void
usage(const char *prog)
{
    std::printf(
        "usage: %s REPORT.json [options]\n"
        "\n"
        "  -o, --out FILE        output HTML path (default: REPORT\n"
        "                        path with a .html suffix)\n"
        "  --intervals PATH      interval-stats CSV file, or a\n"
        "                        directory of them (campaign\n"
        "                        --interval-stats layout), rendered\n"
        "                        as IPC sparklines\n"
        "  --title TEXT          page title (default: the input path)\n"
        "\n"
        "exit status:\n"
        "  0  report written\n"
        "  1  input unreadable or malformed\n"
        "  2  usage error\n",
        prog);
}

[[noreturn]] void
die(const std::string &msg)
{
    std::fprintf(stderr, "ctcp_report: %s (try --help)\n", msg.c_str());
    std::exit(2);
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("cannot open '" + path + "'");
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string in_path;
    std::string out_path;
    std::string intervals;
    std::string title;

    auto next_arg = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            die(std::string("missing value for ") + argv[i]);
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg == "-o" || arg == "--out") {
            out_path = next_arg(i);
        } else if (arg == "--intervals") {
            intervals = next_arg(i);
        } else if (arg == "--title") {
            title = next_arg(i);
        } else if (!arg.empty() && arg[0] == '-') {
            die("unknown option '" + arg + "'");
        } else if (in_path.empty()) {
            in_path = arg;
        } else {
            die("unexpected extra argument '" + arg + "'");
        }
    }
    if (in_path.empty())
        die("missing input report path");
    if (out_path.empty()) {
        out_path = in_path;
        const std::size_t dot = out_path.rfind('.');
        if (dot != std::string::npos && out_path.find('/', dot) ==
                std::string::npos)
            out_path.resize(dot);
        out_path += ".html";
    }
    if (title.empty())
        title = "ctcpsim report: " + in_path;

    try {
        ctcp::report::ReportView view =
            ctcp::report::fromJsonText(readFile(in_path));
        if (!intervals.empty())
            ctcp::report::loadIntervalSeries(intervals, view);
        ctcp::atomicWriteFile(out_path,
                              ctcp::report::renderHtml(view, title));
    } catch (const std::exception &e) {
        std::fprintf(stderr, "ctcp_report: %s\n", e.what());
        return 1;
    }
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
    return 0;
}
