/**
 * @file
 * ctcp_compare — campaign regression comparator.
 *
 * Diffs a candidate run/campaign JSON report against a baseline under
 * per-metric relative tolerances and prints a delta table. Exits 0
 * when every metric is within tolerance and the reports are
 * structurally identical, 1 on drift — made for CI gates against
 * committed golden reports.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/compare.hh"
#include "obs/report.hh"

namespace {

void
usage(const char *prog)
{
    std::printf(
        "usage: %s BASELINE.json CANDIDATE.json [options]\n"
        "\n"
        "  --tol PCT             default relative tolerance in percent\n"
        "                        for every metric (default 0: exact)\n"
        "  --tol-metric NAME=PCT per-metric tolerance override, e.g.\n"
        "                        --tol-metric ipc=0.5; repeatable\n"
        "  -q, --quiet           print nothing when the reports match\n"
        "\n"
        "exit status:\n"
        "  0  reports match within tolerance\n"
        "  1  metric drift or structural mismatch (table on stdout),\n"
        "     or unreadable/malformed input\n"
        "  2  usage error\n",
        prog);
}

[[noreturn]] void
die(const std::string &msg)
{
    std::fprintf(stderr, "ctcp_compare: %s (try --help)\n", msg.c_str());
    std::exit(2);
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("cannot open '" + path + "'");
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

double
parsePct(const std::string &text, const std::string &flag)
{
    char *end = nullptr;
    const double pct = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || pct < 0.0)
        die("invalid " + flag + " value '" + text +
            "' (expected a non-negative percent)");
    return pct;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string base_path;
    std::string cand_path;
    ctcp::report::Tolerances tol;
    bool quiet = false;

    auto next_arg = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            die(std::string("missing value for ") + argv[i]);
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--tol") {
            tol.defaultRelPct = parsePct(next_arg(i), "--tol");
        } else if (arg == "--tol-metric") {
            const std::string spec = next_arg(i);
            const std::size_t eq = spec.find('=');
            if (eq == std::string::npos || eq == 0)
                die("invalid --tol-metric '" + spec +
                    "' (expected NAME=PCT)");
            tol.perMetric[spec.substr(0, eq)] =
                parsePct(spec.substr(eq + 1), "--tol-metric");
        } else if (arg == "-q" || arg == "--quiet") {
            quiet = true;
        } else if (!arg.empty() && arg[0] == '-') {
            die("unknown option '" + arg + "'");
        } else if (base_path.empty()) {
            base_path = arg;
        } else if (cand_path.empty()) {
            cand_path = arg;
        } else {
            die("unexpected extra argument '" + arg + "'");
        }
    }
    if (base_path.empty() || cand_path.empty())
        die("expected a baseline and a candidate report path");

    ctcp::report::Comparison cmp;
    try {
        const ctcp::report::ReportView baseline =
            ctcp::report::fromJsonText(readFile(base_path));
        const ctcp::report::ReportView candidate =
            ctcp::report::fromJsonText(readFile(cand_path));
        cmp = ctcp::report::compareReports(baseline, candidate, tol);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "ctcp_compare: %s\n", e.what());
        return 1;
    }
    if (cmp.ok()) {
        if (!quiet)
            std::printf("%s",
                        ctcp::report::renderDeltaTable(cmp).c_str());
        return 0;
    }
    std::printf("ctcp_compare: %s vs %s\n%s", base_path.c_str(),
                cand_path.c_str(),
                ctcp::report::renderDeltaTable(cmp).c_str());
    return 1;
}
