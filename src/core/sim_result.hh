/**
 * @file
 * Aggregated results of one simulation run: everything the paper's
 * tables and figures need, plus the full raw stats dump.
 */

#ifndef CTCPSIM_CORE_SIM_RESULT_HH
#define CTCPSIM_CORE_SIM_RESULT_HH

#include <cstdint>
#include <map>
#include <string>

namespace ctcp {

/** Per-run metrics. Percentages are in [0, 100]. */
struct SimResult
{
    std::string benchmark;
    std::string strategy;

    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    // ---- Table 1 -------------------------------------------------------
    double pctFromTraceCache = 0.0;
    double meanTraceSize = 0.0;

    // ---- Figure 4 -------------------------------------------------------
    double pctCritFromRF = 0.0;
    double pctCritFromRs1 = 0.0;
    double pctCritFromRs2 = 0.0;

    // ---- Table 2 ----------------------------------------------------------
    double pctDepsCritical = 0.0;
    double pctCritInterTrace = 0.0;

    // ---- Table 3 -----------------------------------------------------------
    double repeatRs1 = 0.0;
    double repeatRs2 = 0.0;
    double repeatRs1CritInter = 0.0;
    double repeatRs2CritInter = 0.0;

    // ---- Table 8 / Table 10 --------------------------------------------------
    double pctIntraClusterFwd = 0.0;
    double meanFwdDistance = 0.0;

    // ---- Figure 7 (FDRT runs only) ----------------------------------------
    double pctOptionA = 0.0;
    double pctOptionB = 0.0;
    double pctOptionC = 0.0;
    double pctOptionD = 0.0;
    double pctOptionE = 0.0;
    double pctSkipped = 0.0;

    // ---- Table 9 ---------------------------------------------------------------
    double migrationAllPct = 0.0;
    double migrationChainPct = 0.0;

    // ---- Misc ------------------------------------------------------------------
    double bpredAccuracy = 0.0;
    double tcHitRate = 0.0;
    std::uint64_t mispredicts = 0;

    // ---- Host-side throughput ---------------------------------------------
    /** Host wall-clock seconds the run took (0 when not measured). */
    double hostSeconds = 0.0;

    /** Simulated instructions retired per host second (0 if unknown). */
    double
    simInstsPerHostSecond() const
    {
        return hostSeconds > 0.0
            ? static_cast<double>(instructions) / hostSeconds : 0.0;
    }

    /** Full aligned-text dump of every component's statistics. */
    std::string statsText;

    /**
     * Structured run telemetry: every named metric the run produced,
     * beyond the fixed headline fields above (event counts, forward
     * totals, occupancies...). Ordered, so JSON output is stable.
     * Keys prefixed "host." carry wall-clock measurements and are
     * non-deterministic across runs.
     */
    std::map<std::string, double> metrics;

    /**
     * Cycle-accounting export (empty unless ObsConfig::accounting):
     * per-cluster slot-cycle attribution (clusterC.slots.<cat>),
     * machine-wide slots.<cat>, the forwarding-hop matrix
     * (fwd_matrix.F.T) and raw migration counters. Kept apart from
     * `metrics` so the golden-stats serialization is byte-identical
     * whether accounting ran or not.
     */
    std::map<std::string, double> accounting;

    /**
     * Headline metrics as a flat JSON object (machine consumption).
     * "host."-prefixed metrics are omitted unless @p include_host_timing
     * is set: they differ run to run, and this serialization is the
     * byte-identical golden-stats / determinism contract. The
     * accounting map is likewise emitted (under "accounting") only
     * when @p include_accounting is set.
     */
    std::string toJson(bool include_host_timing = false,
                       bool include_accounting = false) const;
};

} // namespace ctcp

#endif // CTCPSIM_CORE_SIM_RESULT_HH
