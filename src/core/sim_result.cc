#include "core/sim_result.hh"

#include <cstdio>

namespace ctcp {

namespace {

void
field(std::string &out, const char *key, double value, bool last = false)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "  \"%s\": %.6f%s\n", key, value,
                  last ? "" : ",");
    out += buf;
}

void
field(std::string &out, const char *key, std::uint64_t value)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "  \"%s\": %llu,\n", key,
                  static_cast<unsigned long long>(value));
    out += buf;
}

} // namespace

namespace {

bool
isHostMetric(const std::string &name)
{
    return name.rfind("host.", 0) == 0;
}

} // namespace

std::string
SimResult::toJson(bool include_host_timing, bool include_accounting) const
{
    std::size_t included = 0;
    for (const auto &[name, value] : metrics) {
        (void)value;
        if (include_host_timing || !isHostMetric(name))
            ++included;
    }
    const bool emit_acct = include_accounting && !accounting.empty();

    std::string out = "{\n";
    out += "  \"benchmark\": \"" + benchmark + "\",\n";
    out += "  \"strategy\": \"" + strategy + "\",\n";
    field(out, "cycles", cycles);
    field(out, "instructions", instructions);
    field(out, "ipc", ipc());
    field(out, "pct_from_trace_cache", pctFromTraceCache);
    field(out, "mean_trace_size", meanTraceSize);
    field(out, "pct_crit_from_rf", pctCritFromRF);
    field(out, "pct_crit_from_rs1", pctCritFromRs1);
    field(out, "pct_crit_from_rs2", pctCritFromRs2);
    field(out, "pct_deps_critical", pctDepsCritical);
    field(out, "pct_crit_inter_trace", pctCritInterTrace);
    field(out, "pct_intra_cluster_fwd", pctIntraClusterFwd);
    field(out, "mean_fwd_distance", meanFwdDistance);
    field(out, "migration_all_pct", migrationAllPct);
    field(out, "migration_chain_pct", migrationChainPct);
    field(out, "bpred_accuracy", bpredAccuracy);
    field(out, "tc_hit_rate", tcHitRate);
    field(out, "mispredicts", mispredicts);
    field(out, "fdrt_option_a_pct", pctOptionA);
    field(out, "fdrt_option_b_pct", pctOptionB);
    field(out, "fdrt_option_c_pct", pctOptionC);
    field(out, "fdrt_option_d_pct", pctOptionD);
    field(out, "fdrt_option_e_pct", pctOptionE);
    field(out, "fdrt_skipped_pct", pctSkipped, included == 0 && !emit_acct);
    if (included > 0) {
        out += "  \"metrics\": {\n";
        std::size_t i = 0;
        for (const auto &[name, value] : metrics) {
            if (!include_host_timing && isHostMetric(name))
                continue;
            char buf[160];
            std::snprintf(buf, sizeof(buf), "    \"%s\": %.6f%s\n",
                          name.c_str(), value,
                          ++i < included ? "," : "");
            out += buf;
        }
        out += emit_acct ? "  },\n" : "  }\n";
    }
    if (emit_acct) {
        out += "  \"accounting\": {\n";
        std::size_t i = 0;
        for (const auto &[name, value] : accounting) {
            char buf[160];
            std::snprintf(buf, sizeof(buf), "    \"%s\": %.6f%s\n",
                          name.c_str(), value,
                          ++i < accounting.size() ? "," : "");
            out += buf;
        }
        out += "  }\n";
    }
    out += "}\n";
    return out;
}

} // namespace ctcp
