/**
 * @file
 * StoreWindow — the in-flight store bookkeeping used for memory
 * disambiguation and store-to-load forwarding.
 *
 * The window holds every renamed-but-not-retired store in program
 * order. Loads ask two questions per dispatch attempt:
 *
 *  - olderStoresDispatched(): have all older stores resolved their
 *    addresses? (No speculative disambiguation, Table 7 of the paper.)
 *    Answered with a lazily advanced resolved-prefix cursor — stores
 *    only ever transition to dispatched, so the prefix of the window
 *    that is fully dispatched can only grow, and the first undispatched
 *    store decides the answer for every load.
 *
 *  - forwardingStore(): the youngest older store to the same 8-byte
 *    word, if any. Answered from a per-word map of in-flight stores,
 *    each bucket kept in program order.
 *
 * Both replace full-window scans with amortized O(1) / O(bucket)
 * lookups while returning bit-identical answers.
 */

#ifndef CTCPSIM_CORE_STORE_WINDOW_HH
#define CTCPSIM_CORE_STORE_WINDOW_HH

#include <deque>
#include <unordered_map>
#include <vector>

#include "cluster/timed_inst.hh"
#include "common/types.hh"

namespace ctcp {

namespace verify {
class InvariantChecker;
} // namespace verify

/** In-flight store window with dispatch-prefix and address indexes. */
class StoreWindow
{
  public:
    /** Word granularity used for store-to-load forwarding matches. */
    static Addr wordOf(Addr addr) { return addr >> 3; }

    /** Append a renamed store (called in program order). */
    void insert(TimedInst *st);

    /**
     * The ROB head is retiring: drop it from the window if it is the
     * oldest in-flight store (no-op otherwise, matching the original
     * front-check-and-pop).
     */
    void retire(const TimedInst *head);

    /**
     * All stores older than @p load have resolved (dispatched).
     * Advances the resolved-prefix cursor as a side effect, hence
     * non-const; the answer is identical to a full window scan.
     */
    bool olderStoresDispatched(const TimedInst &load);

    /** Youngest store older than @p load to the same word, or null. */
    const TimedInst *forwardingStore(const TimedInst &load) const;

    bool empty() const { return window_.empty(); }
    std::size_t size() const { return window_.size(); }

  private:
    /** Read-only cursor/index revalidation (src/verify). */
    friend class verify::InvariantChecker;

    /** All in-flight stores, ascending dyn.seq. */
    std::deque<TimedInst *> window_;
    /** window_[0 .. resolvedPrefix_) are known dispatched. */
    std::size_t resolvedPrefix_ = 0;
    /** Same stores bucketed by 8-byte word, program order per bucket. */
    std::unordered_map<Addr, std::vector<TimedInst *>> byWord_;
};

} // namespace ctcp

#endif // CTCPSIM_CORE_STORE_WINDOW_HH
