/**
 * @file
 * Measurement infrastructure for the paper's characterization metrics.
 *
 * The Profiler is pure instrumentation (it models no hardware): it
 * observes every instruction at dispatch (when operand criticality is
 * resolved) and at retirement, and accumulates the distributions
 * behind Tables 1-3 and 8-10 and Figures 4 and 7 of the paper.
 */

#ifndef CTCPSIM_CORE_PROFILER_HH
#define CTCPSIM_CORE_PROFILER_HH

#include <array>
#include <vector>

#include "cluster/timed_inst.hh"
#include "stats/stats.hh"

namespace ctcp {

/** Collects per-run characterization statistics. */
class Profiler
{
  public:
    /** Observe an instruction at dispatch (criticality resolved). */
    void onExecute(const TimedInst &inst);

    /** Observe an instruction at retirement (cluster final). */
    void onRetire(const TimedInst &inst);

    // ---- Table 1 --------------------------------------------------------
    /** Percent of retired instructions fetched from the trace cache. */
    double pctFromTraceCache() const
    {
        return percent(retiredFromTC_.value(), retired_.value());
    }

    // ---- Figure 4 --------------------------------------------------------
    double pctCriticalFromRF() const
    {
        return percent(critFromRF_.value(), instsWithInputs_.value());
    }
    double pctCriticalFromRs1() const
    {
        return percent(critFromRs1_.value(), instsWithInputs_.value());
    }
    double pctCriticalFromRs2() const
    {
        return percent(critFromRs2_.value(), instsWithInputs_.value());
    }

    // ---- Table 2 ----------------------------------------------------------
    /** Percent of forwarded dependencies that were critical. */
    double pctDepsCritical() const
    {
        return percent(critFwdDeps_.value(), fwdDeps_.value());
    }
    /** Percent of critical forwarded dependencies that are inter-trace. */
    double pctCriticalInterTrace() const
    {
        return percent(critFwdInter_.value(), critFwdDeps_.value());
    }

    // ---- Table 3 -----------------------------------------------------------
    double repeatRs1() const
    {
        return percent(rs1Repeat_.value(), rs1Events_.value());
    }
    double repeatRs2() const
    {
        return percent(rs2Repeat_.value(), rs2Events_.value());
    }
    double repeatRs1CritInter() const
    {
        return percent(rs1CiRepeat_.value(), rs1CiEvents_.value());
    }
    double repeatRs2CritInter() const
    {
        return percent(rs2CiRepeat_.value(), rs2CiEvents_.value());
    }

    // ---- Table 8 -------------------------------------------------------------
    /** Percent of critical forwarded inputs satisfied intra-cluster. */
    double pctIntraClusterForwarding() const
    {
        return percent(critFwdIntraCluster_.value(), critFwdDeps_.value());
    }
    /** Mean cluster distance over critical forwarded inputs. */
    double meanForwardingDistance() const
    {
        return ratio(critFwdDistance_.value(), critFwdDeps_.value());
    }

    /** Mean distance over the inter-trace subset of critical inputs. */
    double meanInterTraceDistance() const
    {
        return ratio(critFwdInterDistance_.value(), critFwdInter_.value());
    }

    /** Mean distance over the intra-trace subset of critical inputs. */
    double meanIntraTraceDistance() const
    {
        return ratio(critFwdDistance_.value() -
                         critFwdInterDistance_.value(),
                     critFwdDeps_.value() - critFwdInter_.value());
    }

    /** Intra-cluster percentage among inter-trace critical inputs. */
    double pctInterTraceIntraCluster() const
    {
        return percent(critFwdInterIntraCluster_.value(),
                       critFwdInter_.value());
    }

    // ---- Table 9 ---------------------------------------------------------------
    double migrationAllPct() const
    {
        return percent(migrated_.value(), revisits_.value());
    }
    double migrationChainPct() const
    {
        return percent(chainMigrated_.value(), chainRevisits_.value());
    }

    // Raw Table 9 counters, exported by cycle accounting so strategy
    // comparisons can weigh migration rates by absolute volume.
    std::uint64_t migrationRevisits() const { return revisits_.value(); }
    std::uint64_t migrationMigrated() const { return migrated_.value(); }
    std::uint64_t chainRevisits() const { return chainRevisits_.value(); }
    std::uint64_t chainMigrated() const { return chainMigrated_.value(); }

    std::uint64_t retired() const { return retired_.value(); }

    void dumpStats(StatDump &out) const;

  private:
    // Table 1.
    Counter retired_;
    Counter retiredFromTC_;

    // Figure 4.
    Counter instsWithInputs_;
    Counter critFromRF_;
    Counter critFromRs1_;
    Counter critFromRs2_;

    // Table 2 / Table 8.
    Counter fwdDeps_;
    Counter critFwdDeps_;
    Counter critFwdInter_;
    Counter critFwdIntraCluster_;
    Counter critFwdDistance_;
    Counter critFwdInterDistance_;
    Counter critFwdInterIntraCluster_;

    // Table 3: last forwarded producer per (consumer PC, source).
    // Program PCs are dense small integers (instruction indices), so
    // the history tables are PC-indexed vectors grown on demand rather
    // than hash maps — the lookups sit on the per-instruction execute
    // and retire paths. A default-constructed entry (seen == false) is
    // exactly equivalent to the PC being absent.
    struct ProducerHistory
    {
        Addr last[2] = {0, 0};
        bool seen[2] = {false, false};
    };
    /** history(table, pc): grow-on-demand PC-indexed lookup. */
    static ProducerHistory &
    history(std::vector<ProducerHistory> &table, Addr pc)
    {
        if (pc >= table.size())
            table.resize(static_cast<std::size_t>(pc) + 1);
        return table[static_cast<std::size_t>(pc)];
    }
    std::vector<ProducerHistory> producers_;
    std::vector<ProducerHistory> critInterProducers_;
    Counter rs1Events_, rs1Repeat_;
    Counter rs2Events_, rs2Repeat_;
    Counter rs1CiEvents_, rs1CiRepeat_;
    Counter rs2CiEvents_, rs2CiRepeat_;

    // Table 9: cluster migration. An explicit seen flag (not a cluster
    // sentinel) preserves the exact absent-entry semantics of the old
    // map: the first retirement of a PC counts no revisit.
    struct LastCluster
    {
        ClusterId cluster = invalidCluster;
        bool seen = false;
    };
    std::vector<LastCluster> lastCluster_;
    Counter revisits_, migrated_;
    Counter chainRevisits_, chainMigrated_;
};

} // namespace ctcp

#endif // CTCPSIM_CORE_PROFILER_HH
