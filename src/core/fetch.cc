#include "core/fetch.hh"

#include "cluster/station.hh"
#include "common/logging.hh"
#include "obs/sink.hh"

namespace ctcp {

namespace {

// Out of line so the per-instruction fetch path carries only the
// obs_ guard branch, not the event-construction code.
[[gnu::noinline]] [[gnu::cold]] void
recordFetchEvent(ObsSink &obs, Cycle now, const DynInst &dyn, bool from_tc)
{
    ObsEvent ev;
    ev.cycle = now;
    ev.kind = ObsKind::Fetch;
    ev.seq = dyn.seq;
    ev.pc = dyn.pc;
    ev.arg0 = from_tc ? 1 : 0;
    ev.label = dyn.info().mnemonic;
    obs.record(ev);
}

} // namespace

FetchEngine::FetchEngine(const SimConfig &cfg, TraceCache &tc,
                         InstMemory &imem, BranchPredictor &bpred,
                         Executor &exec, TimedInstPool &pool)
    : cfg_(cfg), tc_(tc), imem_(imem), bpred_(bpred), exec_(exec),
      pool_(pool), plansOn_(!cfg.debug.disableDispatchPlans)
{}

const DynInst *
FetchEngine::peekSlow(std::size_t k)
{
    // Buffer a short batch past k: fetch peeks the stream one
    // instruction at a time, so running the functional simulator a few
    // steps ahead keeps the next several peeks on the inline fast
    // path. Read-ahead is invisible to timing — the buffer only holds
    // committed-stream instructions until fetch consumes them.
    const std::size_t want = k + peekAhead;
    while (buffer_.size() <= want && !execDone_) {
        DynInst d;
        const bool more = exec_.step(d);
        buffer_.push_back(d);   // the Halt itself is part of the stream
        if (!more)
            execDone_ = true;
    }
    return k < buffer_.size() ? &buffer_[k] : nullptr;
}

void
FetchEngine::consume(std::size_t n)
{
    ctcp_assert(n <= buffer_.size(), "consuming past the stream buffer");
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(n));
}

void
FetchEngine::resolveGate(InstSeqNum seq, Cycle resume_at)
{
    if (gatingSeq_ == seq) {
        gatingSeq_ = invalidSeqNum;
        resumeAt_ = resume_at;
    }
}

TimedInst *
FetchEngine::makeInst(const DynInst &dyn, Cycle now, bool from_tc,
                      std::uint64_t instance, std::uint64_t key, int slot,
                      int logical, const ChainProfile &profile)
{
    TimedInst *ti = pool_.acquire();
    ti->dyn = dyn;
    ti->fromTraceCache = from_tc;
    ti->traceInstance = instance;
    ti->traceKey = key;
    ti->slotIndex = slot;
    ti->cold().logicalIndex = logical;
    ti->profile = profile;
    ti->fetchAt = now;
    if (from_tc)
        ++fromTC_;
    else
        ++fromIC_;
    if (obs_ && obs_->enabled(ObsKind::Fetch))
        recordFetchEvent(*obs_, now, dyn, from_tc);
    return ti;
}

bool
FetchEngine::predictBranch(TimedInst &ti, bool embedded_dir_valid,
                           bool embedded_dir)
{
    const DynInst &dyn = ti.dyn;
    if (dyn.isCondBranch()) {
        ti.predictedTaken = embedded_dir_valid
            ? embedded_dir
            : bpred_.peekDirection(dyn.pc);
        ti.mispredicted = ti.predictedTaken != dyn.taken;
        return ti.mispredicted;
    }

    // Unconditional transfers are always taken.
    ti.predictedTaken = true;
    if (dyn.isCallOp())
        bpred_.pushRas(dyn.pc + 1);
    if (dyn.isReturnOp()) {
        auto [target, valid] = bpred_.popRas();
        ti.cold().predictedTarget = target;
        ti.cold().predictedTargetValid = valid;
        ti.mispredicted = !valid || target != dyn.targetPc;
        return ti.mispredicted;
    }
    if (dyn.op == Opcode::JumpReg) {
        auto [target, valid] = bpred_.peekBtb(dyn.pc);
        ti.cold().predictedTarget = target;
        ti.cold().predictedTargetValid = valid;
        ti.mispredicted = !valid || target != dyn.targetPc;
        return ti.mispredicted;
    }

    // Direct jumps and calls: the target is encodable at decode; we
    // idealize next-line prediction for them (no BTB dependence).
    ti.cold().predictedTarget = dyn.targetPc;
    ti.cold().predictedTargetValid = true;
    ti.mispredicted = false;
    return false;
}

std::optional<FetchGroup>
FetchEngine::fetchCycle(Cycle now)
{
    if (gatingSeq_ != invalidSeqNum || now < resumeAt_)
        return std::nullopt;

    const DynInst *first = peek(0);
    if (first == nullptr)
        return std::nullopt;

    FetchGroup group;

    // ---- Trace-cache path -----------------------------------------------
    const TraceLine *line = tc_.lookup(first->pc,
        [this](Addr branch_pc, unsigned) {
            return bpred_.peekDirection(branch_pc);
        },
        now);

    if (line != nullptr) {
        group.fromTraceCache = true;
        group.readyAt = now + cfg_.frontEnd.fetchStages;
        const std::uint64_t instance = nextInstance_++;
        const std::uint64_t key = line->key.hash();
        ++tcLines_;

        std::size_t delivered = 0;
        unsigned cond_seen = 0;
        for (std::size_t i = 0; i < line->insts.size(); ++i) {
            const DynInst *dyn = peek(i);
            if (dyn == nullptr)
                break;
            const TraceSlot &lslot = line->insts[i];
            ctcp_assert(dyn->pc == lslot.pc,
                        "trace line diverged from the committed stream "
                        "without a mispredicted branch");
            TimedInst *ti = makeInst(*dyn, now, true, instance, key,
                                     lslot.physSlot, static_cast<int>(i),
                                     lslot.profile);
            if (plansOn_) {
                // Memoized dispatch plan: slot routing and station
                // class computed once when the fill unit built the
                // line, replayed here as two byte copies.
                ti->plannedCluster = lslot.cluster;
                ti->stationKind = lslot.station;
            }
            bool gate = false;
            if (dyn->isBranchOp()) {
                bool embedded_valid = false;
                bool embedded = false;
                if (dyn->isCondBranch()) {
                    ctcp_assert(cond_seen < line->key.numCondBranches,
                                "more conditionals in stream than in line");
                    embedded_valid = true;
                    embedded = (line->key.condDirs >> cond_seen) & 1;
                    ++cond_seen;
                }
                gate = predictBranch(*ti, embedded_valid, embedded);
            }
            const InstSeqNum seq = ti->dyn.seq;
            group.insts.push_back(ti);
            ++delivered;
            if (gate) {
                gatingSeq_ = seq;
                ++gates_;
                break;
            }
        }
        consume(delivered);
        tcLineInsts_ += delivered;
        if (group.insts.empty())
            return std::nullopt;
        return group;
    }

    // ---- I-cache path ------------------------------------------------------
    group.fromTraceCache = false;
    const unsigned penalty =
        imem_.fetchPenalty(Program::byteAddr(first->pc));
    group.readyAt = now + cfg_.frontEnd.fetchStages + penalty;
    const std::uint64_t instance = nextInstance_++;

    std::size_t delivered = 0;
    for (unsigned i = 0; i < cfg_.frontEnd.icacheFetchWidth; ++i) {
        const DynInst *dyn = peek(i);
        if (dyn == nullptr)
            break;
        TimedInst *ti = makeInst(*dyn, now, false, instance, 0,
                                 static_cast<int>(i), static_cast<int>(i),
                                 ChainProfile{});
        if (plansOn_) {
            ti->plannedCluster = static_cast<std::uint8_t>(
                i / cfg_.cluster.clusterWidth);
            ti->stationKind =
                static_cast<std::uint8_t>(stationFor(dyn->fu()));
        }
        bool gate = false;
        bool stop = false;
        if (dyn->isBranchOp()) {
            gate = predictBranch(*ti, false, false);
            // Cannot fetch past a predicted-taken transfer this cycle.
            if (ti->predictedTaken)
                stop = true;
        }
        if (dyn->op == Opcode::Halt)
            stop = true;
        const InstSeqNum seq = ti->dyn.seq;
        group.insts.push_back(ti);
        ++delivered;
        if (gate) {
            gatingSeq_ = seq;
            ++gates_;
            break;
        }
        if (stop)
            break;
    }
    consume(delivered);
    if (group.insts.empty())
        return std::nullopt;
    return group;
}

void
FetchEngine::dumpStats(StatDump &out) const
{
    out.scalar("fetch.from_tc", fromTC_.value());
    out.scalar("fetch.from_ic", fromIC_.value());
    out.scalar("fetch.tc_lines", tcLines_.value());
    out.scalar("fetch.mean_tc_line_insts", meanFetchedTraceSize());
    out.scalar("fetch.mispredict_gates", gates_.value());
}

} // namespace ctcp
