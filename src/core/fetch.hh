/**
 * @file
 * The CTCP fetch engine.
 *
 * Fetch is trace-driven: the functional simulator supplies the
 * committed (correct-path) stream and the engine fetches along the
 * predicted path. While predictions are correct the two coincide; when
 * a delivered branch's prediction disagrees with its actual outcome,
 * fetch gates until the branch resolves in the execution core — the
 * standard execute-at-commit approximation of wrong-path fetch, which
 * charges the full redirect penalty (branch resolution plus the
 * front-end pipeline refill) without simulating wrong-path work.
 *
 * Per cycle the engine tries the trace cache first (a full multi-block
 * line of up to fetchWidth instructions) and falls back to one
 * basic-block-limited I-cache fetch of up to icacheFetchWidth
 * instructions on a trace-cache miss.
 */

#ifndef CTCPSIM_CORE_FETCH_HH
#define CTCPSIM_CORE_FETCH_HH

#include <deque>
#include <optional>

#include "bpred/predictor.hh"
#include "cluster/inst_pool.hh"
#include "cluster/timed_inst.hh"
#include "common/small_vec.hh"
#include "config/sim_config.hh"
#include "func/executor.hh"
#include "mem/dmem.hh"
#include "stats/stats.hh"
#include "tracecache/trace_cache.hh"

namespace ctcp {

class ObsSink;

/**
 * One group of instructions fetched in a single cycle. Instructions
 * are owned by the engine's TimedInstPool; rename nulls each entry as
 * it moves the instruction into the ROB, and retire returns it to the
 * pool.
 */
struct FetchGroup
{
    SmallVec<TimedInst *, traceLineMaxInsts> insts;
    /** Cycle the group becomes available to rename. */
    Cycle readyAt = 0;
    bool fromTraceCache = false;
};

/** Trace-driven fetch engine with mispredict gating. */
class FetchEngine
{
  public:
    FetchEngine(const SimConfig &cfg, TraceCache &tc, InstMemory &imem,
                BranchPredictor &bpred, Executor &exec, TimedInstPool &pool);

    /**
     * Attempt to fetch one group at cycle @p now.
     *
     * @return the fetched group, or std::nullopt when fetch is gated
     *         by an unresolved mispredict or the stream has ended.
     */
    std::optional<FetchGroup> fetchCycle(Cycle now);

    /** Fetch is currently gated by the given branch (invalidSeqNum if not). */
    InstSeqNum gatingBranch() const { return gatingSeq_; }

    /**
     * Fetch delivers nothing at @p now because of a branch redirect:
     * either gated behind an unresolved mispredict or still refilling
     * the front-end pipeline after one resolved. Mirrors the gate test
     * at the top of fetchCycle(); used by cycle accounting to split
     * fetch starvation into redirect vs cache-miss.
     */
    bool
    gatedByRedirect(Cycle now) const
    {
        return gatingSeq_ != invalidSeqNum || now < resumeAt_;
    }

    /**
     * The committed stream is fully consumed (non-mutating peek of the
     * streamEnded() condition): nothing remains to fetch, so empty
     * front-end cycles are drain, not starvation.
     */
    bool streamDrained() const { return execDone_ && buffer_.empty(); }

    /** Resolve the gating branch; fetch resumes at @p resume_at. */
    void resolveGate(InstSeqNum seq, Cycle resume_at);

    /** True once the functional stream is exhausted and buffered empty. */
    bool streamEnded() { return peek(0) == nullptr; }

    std::uint64_t instsFromTC() const { return fromTC_.value(); }
    std::uint64_t instsFromIC() const { return fromIC_.value(); }
    std::uint64_t tcLineFetches() const { return tcLines_.value(); }
    std::uint64_t tcLineInsts() const { return tcLineInsts_.value(); }

    /** Mean instructions per fetched trace-cache line (Table 1). */
    double
    meanFetchedTraceSize() const
    {
        return ratio(tcLineInsts_.value(), tcLines_.value());
    }

    void dumpStats(StatDump &out) const;

    /** Attach an observability sink (null = off, the default). */
    void setObs(ObsSink *obs) { obs_ = obs; }

  private:
    /**
     * Peek the k-th not-yet-fetched committed instruction. The fast
     * path (already buffered) stays inline — this runs once per
     * fetched instruction plus once per cycle via streamEnded().
     */
    const DynInst *
    peek(std::size_t k)
    {
        if (k < buffer_.size())
            return &buffer_[k];
        return peekSlow(k);
    }
    /** Functional-simulator read-ahead beyond the requested index. */
    static constexpr std::size_t peekAhead = 15;
    /** Advance the functional simulator until k is buffered (or EOF). */
    const DynInst *peekSlow(std::size_t k);
    void consume(std::size_t n);

    TimedInst *makeInst(const DynInst &dyn, Cycle now, bool from_tc,
                        std::uint64_t instance, std::uint64_t key, int slot,
                        int logical, const ChainProfile &profile);

    /**
     * Handle prediction for a delivered control transfer; sets the
     * prediction fields and returns true when it mispredicts (fetch
     * must gate).
     */
    bool predictBranch(TimedInst &ti, bool embedded_dir_valid,
                       bool embedded_dir);

    SimConfig cfg_;
    TraceCache &tc_;
    InstMemory &imem_;
    BranchPredictor &bpred_;
    Executor &exec_;
    TimedInstPool &pool_;
    /** Stamp memoized dispatch plans (off under disableDispatchPlans). */
    bool plansOn_ = true;

    std::deque<DynInst> buffer_;
    bool execDone_ = false;

    InstSeqNum gatingSeq_ = invalidSeqNum;
    Cycle resumeAt_ = 0;

    std::uint64_t nextInstance_ = 1;

    ObsSink *obs_ = nullptr;

    Counter fromTC_;
    Counter fromIC_;
    Counter tcLines_;
    Counter tcLineInsts_;
    Counter gates_;
};

} // namespace ctcp

#endif // CTCPSIM_CORE_FETCH_HH
