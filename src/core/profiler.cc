#include "core/profiler.hh"

namespace ctcp {

void
Profiler::onExecute(const TimedInst &inst)
{
    const TimedInstCold &cold = inst.cold();

    // ---- Figure 4: source of the most critical input -------------------
    const bool has_inputs = inst.ops[0].valid || inst.ops[1].valid;
    if (has_inputs) {
        ++instsWithInputs_;
        if (!cold.criticalForwarded)
            ++critFromRF_;
        else if (cold.criticalSrc == 1)
            ++critFromRs1_;
        else
            ++critFromRs2_;
    }

    // ---- Table 2 / Table 8: forwarded-dependency accounting -------------
    for (int s = 0; s < 2; ++s) {
        const OperandState &op = inst.ops[s];
        if (!op.valid || op.fromRF)
            continue;
        ++fwdDeps_;
        const bool critical =
            cold.criticalForwarded && cold.criticalSrc == s + 1;
        if (critical) {
            ++critFwdDeps_;
            if (cold.criticalInterTrace) {
                ++critFwdInter_;
                critFwdInterDistance_ += cold.criticalDistance;
                if (cold.criticalDistance == 0)
                    ++critFwdInterIntraCluster_;
            }
            if (cold.criticalDistance == 0)
                ++critFwdIntraCluster_;
            critFwdDistance_ += cold.criticalDistance;
        }

        // ---- Table 3: producer stability ------------------------------
        ProducerHistory &hist = history(producers_, inst.dyn.pc);
        Counter &events = s == 0 ? rs1Events_ : rs2Events_;
        Counter &repeats = s == 0 ? rs1Repeat_ : rs2Repeat_;
        ++events;
        if (hist.seen[s] && hist.last[s] == op.producerPc)
            ++repeats;
        hist.last[s] = op.producerPc;
        hist.seen[s] = true;

        if (critical && cold.criticalInterTrace) {
            ProducerHistory &ci = history(critInterProducers_, inst.dyn.pc);
            Counter &ci_events = s == 0 ? rs1CiEvents_ : rs2CiEvents_;
            Counter &ci_repeats = s == 0 ? rs1CiRepeat_ : rs2CiRepeat_;
            ++ci_events;
            if (ci.seen[s] && ci.last[s] == op.producerPc)
                ++ci_repeats;
            ci.last[s] = op.producerPc;
            ci.seen[s] = true;
        }
    }
}

void
Profiler::onRetire(const TimedInst &inst)
{
    ++retired_;
    if (inst.fromTraceCache)
        ++retiredFromTC_;

    // ---- Table 9: cluster migration --------------------------------------
    const bool chain = inst.profile.isMember();
    if (inst.dyn.pc >= lastCluster_.size())
        lastCluster_.resize(static_cast<std::size_t>(inst.dyn.pc) + 1);
    LastCluster &lc = lastCluster_[static_cast<std::size_t>(inst.dyn.pc)];
    if (lc.seen) {
        ++revisits_;
        const bool moved = lc.cluster != inst.cluster;
        if (moved)
            ++migrated_;
        if (chain) {
            ++chainRevisits_;
            if (moved)
                ++chainMigrated_;
        }
    }
    lc.cluster = inst.cluster;
    lc.seen = true;
}

void
Profiler::dumpStats(StatDump &out) const
{
    out.scalar("prof.retired", retired_.value());
    out.scalar("prof.pct_from_tc", pctFromTraceCache());
    out.scalar("prof.pct_crit_rf", pctCriticalFromRF());
    out.scalar("prof.pct_crit_rs1", pctCriticalFromRs1());
    out.scalar("prof.pct_crit_rs2", pctCriticalFromRs2());
    out.scalar("prof.pct_deps_critical", pctDepsCritical());
    out.scalar("prof.pct_crit_inter_trace", pctCriticalInterTrace());
    out.scalar("prof.repeat_rs1", repeatRs1());
    out.scalar("prof.repeat_rs2", repeatRs2());
    out.scalar("prof.repeat_rs1_crit_inter", repeatRs1CritInter());
    out.scalar("prof.repeat_rs2_crit_inter", repeatRs2CritInter());
    out.scalar("prof.pct_intra_cluster_fwd", pctIntraClusterForwarding());
    out.scalar("prof.mean_fwd_distance", meanForwardingDistance());
    out.scalar("prof.mean_inter_trace_distance", meanInterTraceDistance());
    out.scalar("prof.mean_intra_trace_distance", meanIntraTraceDistance());
    out.scalar("prof.inter_trace_intra_cluster_pct",
               pctInterTraceIntraCluster());
    out.scalar("prof.migration_all_pct", migrationAllPct());
    out.scalar("prof.migration_chain_pct", migrationChainPct());
}

} // namespace ctcp
