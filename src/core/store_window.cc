#include "core/store_window.hh"

#include "common/logging.hh"

namespace ctcp {

void
StoreWindow::insert(TimedInst *st)
{
    ctcp_assert(window_.empty() || window_.back()->dyn.seq < st->dyn.seq,
                "store window insert out of program order");
    window_.push_back(st);
    byWord_[wordOf(st->dyn.effAddr)].push_back(st);
}

void
StoreWindow::retire(const TimedInst *head)
{
    if (window_.empty() || window_.front() != head)
        return;
    auto it = byWord_.find(wordOf(head->dyn.effAddr));
    ctcp_assert(it != byWord_.end() && it->second.front() == head,
                "store window word index out of sync at retire");
    // The retiring store is the globally oldest, so it is also the
    // oldest in its word bucket.
    it->second.erase(it->second.begin());
    if (it->second.empty())
        byWord_.erase(it);
    window_.pop_front();
    if (resolvedPrefix_ > 0)
        --resolvedPrefix_;
}

bool
StoreWindow::olderStoresDispatched(const TimedInst &load)
{
    while (resolvedPrefix_ < window_.size() &&
           window_[resolvedPrefix_]->dispatched) {
        ++resolvedPrefix_;
    }
    // Everything before the cursor is dispatched; the store at the
    // cursor is the oldest unresolved one, so it alone decides.
    return resolvedPrefix_ == window_.size() ||
           window_[resolvedPrefix_]->dyn.seq >= load.dyn.seq;
}

const TimedInst *
StoreWindow::forwardingStore(const TimedInst &load) const
{
    auto it = byWord_.find(wordOf(load.dyn.effAddr));
    if (it == byWord_.end())
        return nullptr;
    // Buckets are in program order: walk from the youngest down to the
    // first store older than the load.
    const std::vector<TimedInst *> &bucket = it->second;
    for (auto rit = bucket.rbegin(); rit != bucket.rend(); ++rit) {
        if ((*rit)->dyn.seq < load.dyn.seq)
            return *rit;
    }
    return nullptr;
}

} // namespace ctcp
