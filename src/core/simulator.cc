#include "core/simulator.hh"

#include <algorithm>
#include <chrono>

#include "assign/adaptive_steering.hh"
#include "assign/base_assignment.hh"
#include "assign/fdrt_assignment.hh"
#include "assign/friendly_assignment.hh"
#include "common/logging.hh"
#include "common/sim_error.hh"
#include "obs/accounting.hh"
#include "obs/sink.hh"
#include "obs/writers.hh"
#include "stats/interval.hh"
#include "verify/invariant_checker.hh"

namespace ctcp {

namespace {

// Event construction is kept out of line so the pipeline loops carry
// only the `obs_ && enabled()` branch; inlining these bodies measurably
// slows the untraced simulator (register pressure + code bloat in the
// per-instruction loops).

[[gnu::noinline]] [[gnu::cold]] void
recordInstEvent(ObsSink &obs, ObsKind kind, Cycle cycle,
                const TimedInst &inst)
{
    ObsEvent ev;
    ev.cycle = cycle;
    ev.kind = kind;
    ev.seq = inst.dyn.seq;
    ev.pc = inst.dyn.pc;
    ev.cluster = inst.cluster;
    obs.record(ev);
}

[[gnu::noinline]] [[gnu::cold]] void
recordFlushEvent(ObsSink &obs, Cycle cycle, const TimedInst &inst,
                 Cycle resume)
{
    ObsEvent ev;
    ev.cycle = cycle;
    ev.kind = ObsKind::Flush;
    ev.seq = inst.dyn.seq;
    ev.pc = inst.dyn.pc;
    ev.cluster = inst.cluster;
    ev.arg0 = static_cast<std::int64_t>(resume);
    obs.record(ev);
}

[[gnu::noinline]] [[gnu::cold]] void
recordForwardEvent(ObsSink &obs, Cycle cycle, const TimedInst &inst,
                   unsigned hops, ClusterId producer)
{
    ObsEvent ev;
    ev.cycle = cycle;
    ev.kind = ObsKind::Forward;
    ev.seq = inst.dyn.seq;
    ev.pc = inst.dyn.pc;
    ev.cluster = inst.cluster;
    ev.arg0 = hops;
    ev.arg1 = producer;
    obs.record(ev);
}

} // namespace

CtcpSimulator::CtcpSimulator(const SimConfig &cfg, const Program &program,
                             Arena *arena)
    : cfg_(cfg), program_(program),
      ownedArena_(arena != nullptr ? nullptr : std::make_unique<Arena>()),
      pool_(arena != nullptr ? *arena : *ownedArena_),
      exec_(program), dmem_(cfg.mem),
      imem_(cfg.frontEnd, dmem_), interconnect_(cfg.cluster),
      rob_(cfg.core.robEntries),
      renameTable_(numArchRegs, nullptr)
{
    cfg_.validate();
    bpred_ = std::make_unique<BranchPredictor>(cfg_.bpred);
    tc_ = std::make_unique<TraceCache>(cfg_.frontEnd.traceCache);

    for (unsigned c = 0; c < cfg_.cluster.numClusters; ++c)
        clusters_.emplace_back(static_cast<ClusterId>(c), cfg_.cluster);

    switch (cfg_.assign.strategy) {
      case AssignStrategy::BaseSlotOrder:
        policy_ = std::make_unique<BaseSlotOrderAssignment>();
        break;
      case AssignStrategy::Friendly:
        policy_ = std::make_unique<FriendlyAssignment>(
            interconnect_, cfg_.assign.friendlyMiddleBias);
        break;
      case AssignStrategy::Fdrt: {
        auto fdrt = std::make_unique<FdrtAssignment>(
            interconnect_, cfg_.assign.fdrtPinning,
            cfg_.assign.fdrtChains);
        fdrt_ = fdrt.get();
        policy_ = std::move(fdrt);
        break;
      }
      case AssignStrategy::IssueTime:
        // The fill unit leaves traces in fetch order; clusters are
        // chosen at issue by the steering logic, whose analysis and
        // routing latency shows up as extra front-end stages.
        policy_ = std::make_unique<BaseSlotOrderAssignment>();
        steering_ = std::make_unique<IssueTimeSteering>(
            interconnect_, cfg_.cluster.clusterWidth);
        issueExtraStages_ = cfg_.assign.issueTimeLatency;
        routeToIssueQueue_ = true;
        break;
      case AssignStrategy::Adaptive: {
        // Facade over the retire-time policies plus the steering logic
        // for issue-time phases. The chooser (built with the cycle
        // accounting in setupObservability) starts in base mode, so
        // rename routes to the cluster queues until the first switch.
        auto adaptive = std::make_unique<AdaptivePolicy>(interconnect_,
                                                         cfg_.assign);
        adaptivePolicy_ = adaptive.get();
        policy_ = std::move(adaptive);
        steering_ = std::make_unique<IssueTimeSteering>(
            interconnect_, cfg_.cluster.clusterWidth);
        break;
      }
    }

    clusterQueues_.resize(cfg_.cluster.numClusters);
    if (interconnect_.isBus())
        busSchedule_ = std::make_unique<PortSchedule>(
            cfg_.cluster.busBandwidth);

    fillUnit_ = std::make_unique<FillUnit>(
        cfg_.frontEnd.traceCache, cfg_.cluster.numClusters,
        cfg_.cluster.clusterWidth, *tc_, *policy_);
    fetch_ = std::make_unique<FetchEngine>(cfg_, *tc_, imem_, *bpred_,
                                           exec_, pool_);

    if (!cfg_.debug.pipelineTracePath.empty()) {
        traceFile_ = std::fopen(cfg_.debug.pipelineTracePath.c_str(), "w");
        if (traceFile_ == nullptr)
            ctcp_fatal("cannot open pipeline trace file '%s'",
                       cfg_.debug.pipelineTracePath.c_str());
        std::fprintf(traceFile_,
                     "# cycle stage seq pc cluster slot detail\n");
    }

    if (cfg_.checkLevel > 0) {
        checker_ = std::make_unique<verify::InvariantChecker>(
            cfg_.checkLevel, cfg_.cluster.numClusters,
            cfg_.cluster.clusterWidth);
        // Also validate every trace line's slot permutation as the
        // fill unit constructs it.
        fillUnit_->setObserver(checker_.get());
    }

    setupObservability();
}

void
CtcpSimulator::setupObservability()
{
    const ObsConfig &oc = cfg_.obs;
    if (oc.tracingEnabled()) {
        obs_ = std::make_unique<ObsSink>(oc.ringCapacity);
        obs_->setFilter(ObsSink::parseFilter(oc.traceFilter));
        if (!oc.traceEventsPath.empty())
            obs_->addWriter(
                std::make_unique<ChromeTraceWriter>(oc.traceEventsPath));
        if (!oc.traceTextPath.empty())
            obs_->addWriter(
                std::make_unique<ObsTextWriter>(oc.traceTextPath));

        ObsSink *sink = obs_.get();
        fetch_->setObs(sink);
        tc_->setObs(sink);
        fillUnit_->setObs(sink);
        policy_->setObs(sink);
        dmem_.setObs(sink);
        for (Cluster &cluster : clusters_)
            cluster.setObs(sink);
    }
    // The adaptive chooser feeds on the slot taxonomy, so strategy
    // Adaptive runs the accounting layer even when no export was
    // requested (the export itself stays gated on oc.accounting).
    if (oc.accounting ||
        cfg_.assign.strategy == AssignStrategy::Adaptive) {
        acct_ = std::make_unique<CycleAccounting>(
            cfg_.cluster.numClusters, cfg_.cluster.clusterWidth,
            interconnect_);
        fwdMatrix_ = acct_->forwardMatrixData();
        fwdMatrixCols_ = acct_->numClusters();
        for (Cluster &cluster : clusters_)
            cluster.setAccounting(acct_.get());
    }
    if (adaptivePolicy_ != nullptr) {
        adaptive_ = std::make_unique<AdaptiveSteeringController>(
            cfg_.assign, *acct_);
        adaptivePolicy_->setController(adaptive_.get());
    }
    if (oc.intervalEnabled()) {
        interval_ = std::make_unique<IntervalRecorder>(oc.intervalCycles);
        interval_->addRate("ipc",
            [this] { return static_cast<double>(retired_); });
        interval_->addRatio("tc_hit_rate",
            [this] { return static_cast<double>(tc_->hits()); },
            [this] {
                return static_cast<double>(tc_->hits() + tc_->misses());
            });
        interval_->addRatio("inter_cluster_fwd_per_instr",
            [this] { return static_cast<double>(fwdInterCluster_.value()); },
            [this] { return static_cast<double>(retired_); });
        for (std::size_t c = 0; c < clusters_.size(); ++c)
            interval_->addGauge(
                "cluster" + std::to_string(c) + "_occupancy",
                [this, c] {
                    return static_cast<double>(clusters_[c].occupancy());
                });
        if (acct_) {
            // Per-interval slot mix: each category's share of the
            // interval's attributed slot-cycles (ratios of deltas).
            for (unsigned k = 0; k < numSlotCats; ++k) {
                const SlotCat cat = static_cast<SlotCat>(k);
                interval_->addRatio(
                    std::string("slots_") + slotCatName(cat),
                    [this, cat] {
                        return static_cast<double>(
                            acct_->machineSlots(cat));
                    },
                    [this] {
                        return static_cast<double>(
                            acct_->machineSlotsTotal());
                    });
            }
        }
    }
}

CtcpSimulator::~CtcpSimulator()
{
    if (traceFile_ != nullptr)
        std::fclose(traceFile_);
}

void
CtcpSimulator::traceEvent(const char *stage, const TimedInst &inst)
{
    std::fprintf(traceFile_,
                 "%llu %-8s %llu pc=%llu cluster=%d slot=%d %s%s\n",
                 static_cast<unsigned long long>(cycle_), stage,
                 static_cast<unsigned long long>(inst.dyn.seq),
                 static_cast<unsigned long long>(inst.dyn.pc),
                 static_cast<int>(inst.cluster), inst.slotIndex,
                 std::string(inst.dyn.info().mnemonic).c_str(),
                 inst.mispredicted ? " MISPRED" : "");
}

ClusterId
CtcpSimulator::slotCluster(const TimedInst &inst) const
{
    const int c = inst.slotIndex /
        static_cast<int>(cfg_.cluster.clusterWidth);
    ctcp_assert(c >= 0 && c < static_cast<int>(cfg_.cluster.numClusters),
                "slot %d maps to invalid cluster", inst.slotIndex);
    return static_cast<ClusterId>(c);
}

// ---------------------------------------------------------------------
// Operand readiness and criticality
// ---------------------------------------------------------------------

CtcpSimulator::Readiness
CtcpSimulator::operandReadiness(const TimedInst &inst) const
{
    const AblationConfig &ab = cfg_.ablation;
    Cycle eff[2] = {0, 0};
    bool forwarded[2] = {false, false};

    for (int i = 0; i < 2; ++i) {
        const OperandState &op = inst.ops[i];
        if (!op.valid)
            continue;
        if (op.fromRF) {
            eff[i] = op.rawReady;
            continue;
        }
        forwarded[i] = true;
        if (!op.producerComplete) {
            eff[i] = neverCycle;
            continue;
        }
        const bool zero_lat = ab.zeroAllForwardLatency ||
            (ab.zeroIntraTraceForwardLatency &&
             op.producerTraceInstance == inst.traceInstance) ||
            (ab.zeroInterTraceForwardLatency &&
             op.producerTraceInstance != inst.traceInstance);
        if (zero_lat) {
            eff[i] = op.rawReady;
        } else if (interconnect_.isBus() &&
                   op.producerCluster != inst.cluster) {
            // Bus: the broadcast slot + uniform bus latency, computed
            // when the producer completed.
            eff[i] = op.remoteReady;
        } else {
            eff[i] = op.rawReady + interconnect_.latency(op.producerCluster,
                                                         inst.cluster);
        }
    }

    Readiness r;
    const bool v0 = inst.ops[0].valid;
    const bool v1 = inst.ops[1].valid;
    if (v0 && v1) {
        if (eff[1] > eff[0]) {
            r.critical = 1;
        } else if (eff[0] > eff[1]) {
            r.critical = 0;
        } else {
            // Tie: a forwarded input is "more critical" than a
            // register-file read; among equals prefer RS1.
            r.critical = (forwarded[1] && !forwarded[0]) ? 1 : 0;
        }
    } else if (v0) {
        r.critical = 0;
    } else if (v1) {
        r.critical = 1;
    }

    if (r.critical >= 0 && ab.zeroCriticalForwardLatency &&
        forwarded[r.critical] &&
        inst.ops[r.critical].producerComplete) {
        // Figure 5 "No Crit Fwd Lat": only the last-arriving forwarded
        // value is delivered with zero forwarding latency.
        eff[r.critical] = inst.ops[r.critical].rawReady;
    }

    r.ready = 0;
    if (v0)
        r.ready = std::max(r.ready, eff[0]);
    if (v1)
        r.ready = std::max(r.ready, eff[1]);
    return r;
}

void
CtcpSimulator::recordCriticality(TimedInst &inst)
{
    const Readiness r = operandReadiness(inst);
    TimedInstCold &cold = inst.cold();
    cold.criticalSrc = 0;
    cold.criticalForwarded = false;
    cold.criticalInterTrace = false;
    cold.criticalDistance = 0;
    if (r.critical < 0)
        return;
    const OperandState &op = inst.ops[r.critical];
    if (op.fromRF)
        return;   // criticalSrc stays 0 (register file)
    cold.criticalSrc = r.critical + 1;
    cold.criticalForwarded = true;
    cold.criticalInterTrace =
        op.producerTraceInstance != inst.traceInstance;
    cold.criticalDistance = interconnect_.distance(op.producerCluster,
                                                   inst.cluster);
    cold.criticalProducerPc = op.producerPc;
    cold.criticalProducerProfile = op.producerProfile;
    cold.criticalProducerCluster = op.producerCluster;
    cold.criticalProducerTraceKey = op.producerTraceKey;
}

void
CtcpSimulator::cacheReadiness(TimedInst &inst)
{
    if (inst.pendingProducers > 0) {
        inst.readyAt = neverCycle;
        // Park-time snapshot of the worst incomplete producer's hop
        // distance: the attribution walk charges parked instructions
        // from this byte every cycle instead of chasing producers.
        if (acct_)
            inst.stallHops =
                static_cast<std::uint8_t>(acct_->waitingHops(inst));
        return;
    }
    const Readiness r = operandReadiness(inst);
    inst.readyAt = r.ready;
    if (!acct_)
        return;
    // Cache the critical operand's hop distance so the dispatch walk
    // can charge a stalled slot to wait_intra / wait_fwd<hops> with a
    // single byte read instead of re-deriving readiness.
    inst.stallHops = 0;
    if (r.critical < 0)
        return;
    const OperandState &op = inst.ops[r.critical];
    if (op.fromRF || op.producerCluster == invalidCluster ||
        inst.cluster == invalidCluster)
        return;
    inst.stallHops = static_cast<std::uint8_t>(
        interconnect_.distance(op.producerCluster, inst.cluster));
}

CycleAccounting::FetchState
CtcpSimulator::fetchStarvation() const
{
    if (!fetchQueue_.empty())
        return CycleAccounting::FetchState::Flowing;
    if (fetch_->gatedByRedirect(cycle_))
        return CycleAccounting::FetchState::Redirect;
    if (fetch_->streamDrained())
        return CycleAccounting::FetchState::Flowing;   // drain, not a stall
    return CycleAccounting::FetchState::TcMiss;
}

// ---------------------------------------------------------------------
// Dispatch hooks
// ---------------------------------------------------------------------

bool
CtcpSimulator::readyToDispatch(const TimedInst &inst, Cycle now_cycle)
{
    // Operand readiness is pre-checked by the cluster scheduler against
    // the cached TimedInst::readyAt; only the memory-ordering
    // constraints remain. No speculative disambiguation (Table 7): a
    // load waits until the addresses of all older stores are resolved.
    if (inst.dyn.isLoadOp()) {
        if (!storeWindow_.olderStoresDispatched(inst))
            return false;
        if (dmem_.loadQueueFull(now_cycle))
            return false;
    }
    return true;
}

Cycle
CtcpSimulator::executeInst(TimedInst &inst, Cycle now_cycle)
{
    recordCriticality(inst);
    profiler_.onExecute(inst);
    if (inst.cold().criticalForwarded && inst.cold().criticalInterTrace)
        policy_->noteCriticalForward(inst, *tc_);

    // Count forwarded (bypassed) operand deliveries and emit one
    // Forward event per bypass, with the interconnect hop count.
    for (int i = 0; i < 2; ++i) {
        const OperandState &op = inst.ops[i];
        if (!op.valid || op.fromRF)
            continue;
        ++fwdTotal_;
        // distance() == 0 iff same cluster in every topology, so the
        // counter needs only the comparison; the hop count itself is
        // computed on the traced path.
        if (op.producerCluster != inst.cluster)
            ++fwdInterCluster_;
        if (fwdMatrix_ != nullptr)
            ++fwdMatrix_[static_cast<unsigned>(op.producerCluster) *
                             fwdMatrixCols_ +
                         static_cast<unsigned>(inst.cluster)];
        if (obs_ && obs_->enabled(ObsKind::Forward))
            recordForwardEvent(*obs_, now_cycle, inst,
                               interconnect_.distance(op.producerCluster,
                                                      inst.cluster),
                               op.producerCluster);
    }

    Cycle complete = now_cycle + inst.dyn.info().execLatency;
    if (inst.dyn.isLoadOp()) {
        if (const TimedInst *st = storeWindow_.forwardingStore(inst)) {
            // In-flight store-to-load forwarding: one extra cycle past
            // the store's address/data availability.
            complete = std::max(complete, st->completeAt + 1);
        } else {
            complete = dmem_.load(inst.dyn.effAddr, complete).ready;
        }
    }
    return complete;
}

// ---------------------------------------------------------------------
// Pipeline stages (one call each per cycle)
// ---------------------------------------------------------------------

void
CtcpSimulator::doCompletions()
{
    while (!completions_.empty() &&
           completions_.top().completeAt <= cycle_) {
        TimedInst *inst = completions_.top().inst;
        completions_.pop();
        inst->completed = true;
        if (tracing())
            traceEvent("complete", *inst);
        if (obs_ && obs_->enabled(ObsKind::Complete))
            recordInstEvent(*obs_, ObsKind::Complete, cycle_, *inst);
        if (interconnect_.isBus() && inst->dyn.hasDst()) {
            // Reserve a broadcast slot on the shared result bus.
            const Cycle slot = busSchedule_->reserve(inst->completeAt);
            inst->busReadyAt = slot + cfg_.cluster.busLatency;
        }
        // Wake consumers whose last outstanding producer this was:
        // their operands are final, so the cached readiness becomes
        // exact and they move onto their cluster's schedulable list.
        inst->pushCompletion([this](TimedInst *w) {
            if (!w->issued)
                return;   // readiness is computed at issue instead
            cacheReadiness(*w);
            clusters_[static_cast<std::size_t>(w->cluster)].wake(w);
        });

        if (inst->dyn.isBranchOp()) {
            // Resolution (redirect timing) happens here; predictor
            // training is deferred to in-order retirement so that the
            // global-history register sees branches in program order
            // regardless of completion order.
            if (inst->dyn.isCondBranch()) {
                ++condResolved_;
                if (inst->mispredicted)
                    ++condMispredicted_;
            } else if (inst->dyn.isIndirectOp()) {
                ++indirectResolved_;
                if (inst->mispredicted)
                    ++indirectMispredicted_;
            }
            if (inst->mispredicted) {
                fetch_->resolveGate(inst->dyn.seq, cycle_ + 1);
                if (obs_ && obs_->enabled(ObsKind::Flush))
                    recordFlushEvent(*obs_, cycle_, *inst, cycle_ + 1);
            }
        }
    }
}

void
CtcpSimulator::doRetire()
{
    if (faultStallRetire_)
        return;   // injected retirement stall (watchdog tests)
    for (unsigned n = 0; n < cfg_.core.retireWidth && !rob_.empty(); ++n) {
        TimedInst *head = rob_.front();
        if (!head->completed)
            break;
        if (head->dyn.isStoreOp()) {
            if (!dmem_.store(head->dyn.effAddr, cycle_)) {
                ++storeRetireStalls_;
                break;   // store buffer full: retirement stalls
            }
        }

        if (head->dyn.isBranchOp())
            bpred_->update(head->dyn.pc, head->dyn.isCondBranch(),
                           head->dyn.taken, head->dyn.targetPc);

        if (tracing())
            traceEvent("retire", *head);

        if (obs_ && obs_->enabled(ObsKind::Retire))
            recordInstEvent(*obs_, ObsKind::Retire, cycle_, *head);

        fillUnit_->retire(*head, cycle_);
        profiler_.onRetire(*head);

        if (head->dyn.hasDst() &&
            renameTable_[head->dyn.dst] == head) {
            renameTable_[head->dyn.dst] = nullptr;
        }
        storeWindow_.retire(head);

        ++retired_;
        rob_.popFront();
        // Recycle the slot. Safe: the instruction has completed (its
        // completion push cleared every waiter registration), the
        // rename table no longer points at it, and consumers only
        // dereference producerPtr while producerComplete is false.
        pool_.release(head);
    }
}

void
CtcpSimulator::doDispatch()
{
    const DispatchClient client{*this};
    for (Cluster &cluster : clusters_) {
        dispatchScratch_.clear();
        cluster.dispatch(cycle_, client, dispatchScratch_);
        for (TimedInst *inst : dispatchScratch_) {
            if (tracing())
                traceEvent("dispatch", *inst);
            completions_.push({inst->completeAt, inst});
        }
    }
}

void
CtcpSimulator::doIssue()
{
    if (steering_ && !issueQueue_.empty()) {
        // Issue-time steering: the steering logic examines the whole
        // issue buffer (one machine width of instructions) in
        // parallel, so a blocked instruction does not prevent younger
        // ones from being routed to other clusters this cycle.
        //
        // Issued entries are null-marked and the queue compacted once
        // at the end of the cycle, instead of paying an O(n) erase per
        // issued instruction. The walk visits the same instructions in
        // the same order as erase-as-you-go: `failed` counts the
        // entries left buffered (what `index` used to count) and the
        // cursor position is always failed + issued.
        steering_->newCycle(cycle_);
        unsigned issued = 0;
        std::size_t failed = 0;
        std::size_t pos = 0;
        // Station kinds already reprobed for rs-full attribution since
        // the last successful issue. Station occupancy and write ports
        // only change when an issue lands, so a repeat stall of the
        // same station class cannot yield new rs-full information —
        // noteRsFull() is an idempotent OR, making the skip exact.
        unsigned rsProbedKinds = 0;
        while (pos < issueQueue_.size() &&
               failed < cfg_.core.issueWidth &&
               issued < cfg_.core.issueWidth) {
            TimedInst *inst = issueQueue_[pos];
            const Cycle issue_ready = inst->renameAt +
                cfg_.frontEnd.renameStages + issueExtraStages_;
            if (issue_ready > cycle_)
                break;   // younger entries are not ready either
            const ClusterId cluster = steering_->pick(*inst, clusters_);
            if (cluster == invalidCluster) {
                ++issueStalls_;
                if (acct_) {
                    const unsigned kind_bit = 1u << static_cast<unsigned>(
                        instStation(*inst));
                    if ((rsProbedKinds & kind_bit) == 0) {
                        rsProbedKinds |= kind_bit;
                        // Charge next cycle's empty slots to the
                        // clusters whose stations actually rejected
                        // this inst.
                        for (std::size_t c = 0; c < clusters_.size();
                             ++c)
                            if (!clusters_[c].canAccept(*inst, cycle_))
                                acct_->noteRsFull(
                                    static_cast<ClusterId>(c));
                    }
                }
                ++failed;
                ++pos;   // leave it buffered; examine the next slot
                continue;
            }
            inst->cluster = cluster;
            cacheReadiness(*inst);
            const bool ok =
                clusters_[static_cast<std::size_t>(cluster)].issue(inst,
                                                                   cycle_);
            ctcp_assert(ok, "steering picked a cluster that rejected");
            inst->issued = true;
            inst->issueAt = cycle_;
            if (tracing())
                traceEvent("issue", *inst);
            if (obs_ && obs_->enabled(ObsKind::Issue))
                recordInstEvent(*obs_, ObsKind::Issue, cycle_, *inst);
            issueQueue_[pos] = nullptr;
            ++pos;
            ++issued;
            rsProbedKinds = 0;   // occupancy changed: memo is stale
        }
        if (issued > 0) {
            issueQueue_.erase(std::remove(issueQueue_.begin(),
                                          issueQueue_.end(), nullptr),
                              issueQueue_.end());
        }
    }

    // Slot-based modes: each cluster drains its own issue-buffer slice
    // independently, up to clusterWidth per cycle. Under the adaptive
    // strategy both structures can briefly hold instructions around a
    // mode switch, so this loop runs unconditionally (it is a no-op
    // for pure issue-time steering, whose cluster queues stay empty).
    for (unsigned c = 0; c < cfg_.cluster.numClusters; ++c) {
        auto &queue = clusterQueues_[c];
        Cluster &cluster = clusters_[c];
        for (unsigned n = 0; n < cfg_.cluster.clusterWidth; ++n) {
            if (queue.empty())
                break;
            TimedInst *inst = queue.front();
            const Cycle issue_ready = inst->renameAt +
                cfg_.frontEnd.renameStages + issueExtraStages_;
            if (issue_ready > cycle_)
                break;
            inst->cluster = static_cast<ClusterId>(c);
            cacheReadiness(*inst);
            if (!cluster.issue(inst, cycle_)) {
                inst->cluster = invalidCluster;
                ++issueStalls_;
                if (acct_)
                    acct_->noteRsFull(static_cast<ClusterId>(c));
                break;   // reservation station full or out of ports
            }
            inst->issued = true;
            inst->issueAt = cycle_;
            if (tracing())
                traceEvent("issue", *inst);
            if (obs_ && obs_->enabled(ObsKind::Issue))
                recordInstEvent(*obs_, ObsKind::Issue, cycle_, *inst);
            queue.pop_front();
        }
    }
}

void
CtcpSimulator::renameOperand(TimedInst &inst, int index, RegId reg)
{
    OperandState &op = inst.ops[index];
    if (reg == invalidReg || reg == zeroReg)
        return;   // not a real data input
    op.valid = true;
    TimedInst *producer = renameTable_[reg];
    if (producer == nullptr) {
        op.fromRF = true;
        op.rawReady = cycle_ +
            (cfg_.ablation.zeroRegisterFileLatency
                 ? 0 : cfg_.core.registerFileLatency);
        return;
    }
    op.fromRF = false;
    op.producerSeq = producer->dyn.seq;
    op.producerPc = producer->dyn.pc;
    op.producerTraceInstance = producer->traceInstance;
    op.producerTraceKey = producer->traceKey;
    op.producerProfile = producer->profile;
    op.producerPtr = producer;
    if (producer->completed) {
        op.producerComplete = true;
        op.rawReady = producer->completeAt;
        op.remoteReady = producer->busReadyAt == neverCycle
            ? producer->completeAt : producer->busReadyAt;
        op.producerCluster = producer->cluster;
    } else {
        producer->waiters.push_back(&inst);
        ++inst.pendingProducers;
    }
}

void
CtcpSimulator::doRename()
{
    for (unsigned n = 0; n < cfg_.core.decodeWidth; ++n) {
        if (fetchQueue_.empty())
            break;
        FetchGroup &group = fetchQueue_.front();
        if (group.readyAt + cfg_.frontEnd.decodeStages > cycle_)
            break;
        if (rob_.full()) {
            ++robStalls_;
            if (acct_)
                acct_->noteRobFull();
            break;
        }

        TimedInst *inst = group.insts[frontGroupPos_];
        if (inst->dyn.info().readsSrc1)
            renameOperand(*inst, 0, inst->dyn.src1);
        if (inst->dyn.info().readsSrc2)
            renameOperand(*inst, 1, inst->dyn.src2);
        if (inst->dyn.hasDst())
            renameTable_[inst->dyn.dst] = inst;
        inst->renameAt = cycle_;
        if (tracing())
            traceEvent("rename", *inst);
        if (obs_ && obs_->enabled(ObsKind::Rename))
            recordInstEvent(*obs_, ObsKind::Rename, cycle_, *inst);

        rob_.pushBack(inst);
        // Hand-off: the group entry is nulled so the fetch-queue no
        // longer claims the instruction (the invariant checker relies
        // on this to tell renamed-out entries apart).
        group.insts[frontGroupPos_] = nullptr;
        if (routeToIssueQueue_) {
            issueQueue_.push_back(inst);
        } else {
            // Slot routing: replay the memoized plan byte when one was
            // stamped at fetch; derive from the slot index otherwise.
            const std::size_t c = inst->plannedCluster != 0xff
                ? inst->plannedCluster
                : static_cast<std::size_t>(slotCluster(*inst));
            clusterQueues_[c].push_back(inst);
        }
        if (inst->dyn.isStoreOp())
            storeWindow_.insert(inst);

        if (++frontGroupPos_ >= group.insts.size()) {
            fetchQueue_.pop_front();
            frontGroupPos_ = 0;
        }
    }
}

void
CtcpSimulator::doFetch()
{
    if (fetchQueue_.size() >= fetchQueueCap)
        return;
    if (auto group = fetch_->fetchCycle(cycle_)) {
        if (tracing()) {
            for (const auto &inst : group->insts)
                traceEvent(group->fromTraceCache ? "fetch-tc" : "fetch-ic",
                           *inst);
        }
        fetchQueue_.push_back(std::move(*group));
    }
}

void
CtcpSimulator::applyAdaptiveMode()
{
    const bool steer = adaptive_->mode() == AssignStrategy::IssueTime;
    routeToIssueQueue_ = steer;
    issueExtraStages_ = steer ? cfg_.assign.issueTimeLatency : 0;
}

void
CtcpSimulator::step()
{
    // Adaptive phase evaluation happens at interval boundaries before
    // this cycle's accounting opens, so the chooser sees exactly the
    // slots attributed through the end of the previous cycle.
    if (adaptive_ && adaptive_->due(cycle_) &&
        adaptive_->evaluate(cycle_))
        applyAdaptiveMode();
    if (acct_)
        acct_->beginCycle(fetchStarvation());
    doCompletions();
    doRetire();
    doDispatch();
    doIssue();
    doRename();
    doFetch();
    ++cycle_;
    if (interval_ && interval_->due(cycle_))
        interval_->sample(cycle_);
    if (checker_)
        checker_->checkCycle(*this);
}

bool
CtcpSimulator::done()
{
    if (cfg_.instructionLimit > 0 && retired_ >= cfg_.instructionLimit)
        return true;
    return fetch_->streamEnded() && fetchQueue_.empty() && rob_.empty();
}

void
CtcpSimulator::dumpPipelineSnapshot(const char *reason)
{
    ctcp_warn("pipeline snapshot (%s): cycle %llu, %llu retired, "
              "rob %zu/%zu, fetch queue %zu groups, %zu in-flight "
              "stores, %zu pending completions", reason,
              static_cast<unsigned long long>(cycle_),
              static_cast<unsigned long long>(retired_),
              rob_.size(), rob_.capacity(), fetchQueue_.size(),
              storeWindow_.size(), completions_.size());
    if (!rob_.empty()) {
        const TimedInst &head = *rob_.front();
        ctcp_warn("  rob head: seq %llu pc %llu cluster %d "
                  "issued=%d dispatched=%d completed=%d readyAt=%llu "
                  "pendingProducers=%u",
                  static_cast<unsigned long long>(head.dyn.seq),
                  static_cast<unsigned long long>(head.dyn.pc),
                  static_cast<int>(head.cluster), head.issued ? 1 : 0,
                  head.dispatched ? 1 : 0, head.completed ? 1 : 0,
                  static_cast<unsigned long long>(head.readyAt),
                  head.pendingProducers);
    }
    for (std::size_t c = 0; c < clusters_.size(); ++c)
        ctcp_warn("  cluster %zu: occupancy %zu", c,
                  clusters_[c].occupancy());

    if (!obs_)
        return;
    // The same snapshot as events, so a --trace-events file of a hung
    // run ends with the pipeline state that stopped retiring.
    auto snap = [this](const char *label, std::int64_t occupancy,
                       std::int64_t detail) {
        ObsEvent ev;
        ev.cycle = cycle_;
        ev.kind = ObsKind::Snapshot;
        ev.label = label;
        ev.arg0 = occupancy;
        ev.arg1 = detail;
        obs_->record(ev);
    };
    snap("rob", static_cast<std::int64_t>(rob_.size()),
         rob_.empty() ? 0
                      : static_cast<std::int64_t>(rob_.front()->dyn.seq));
    snap("retired", static_cast<std::int64_t>(retired_), 0);
    snap("fetch-queue", static_cast<std::int64_t>(fetchQueue_.size()), 0);
    snap("store-window", static_cast<std::int64_t>(storeWindow_.size()),
         0);
    for (std::size_t c = 0; c < clusters_.size(); ++c) {
        ObsEvent ev;
        ev.cycle = cycle_;
        ev.kind = ObsKind::Snapshot;
        ev.label = "cluster-occupancy";
        ev.cluster = static_cast<ClusterId>(c);
        ev.arg0 = static_cast<std::int64_t>(clusters_[c].occupancy());
        obs_->record(ev);
    }
    obs_->flush();
}

SimResult
CtcpSimulator::run()
{
    const auto host_start = std::chrono::steady_clock::now();
    const Cycle watchdog = cfg_.watchdogCycles;
    std::uint64_t last_retired = retired_;
    Cycle last_progress = cycle_;
    while (!done()) {
        step();
        // Forward-progress watchdog: a pipeline that stops retiring is
        // wedged (a deadlocked dependence, a scheduler bug); abort with
        // a diagnosable snapshot instead of spinning forever.
        if (retired_ != last_retired) {
            last_retired = retired_;
            last_progress = cycle_;
        } else if (watchdog > 0 && cycle_ - last_progress >= watchdog) {
            dumpPipelineSnapshot("watchdog");
            throw SimError(ErrorCategory::Hang, detail::format(
                "no instruction retired for %llu cycles (cycle %llu, "
                "%llu retired)",
                static_cast<unsigned long long>(watchdog),
                static_cast<unsigned long long>(cycle_),
                static_cast<unsigned long long>(retired_)));
        }
        // Cooperative deadline, checked every 4096 cycles so the
        // steady-clock read stays off the per-cycle path.
        if (cfg_.deadlineSeconds > 0.0 && (cycle_ & 4095u) == 0) {
            const double elapsed = std::chrono::duration<double>(
                std::chrono::steady_clock::now() - host_start).count();
            if (elapsed > cfg_.deadlineSeconds)
                throw SimError(ErrorCategory::Timeout, detail::format(
                    "run exceeded its %.3fs deadline (%.3fs elapsed, "
                    "cycle %llu, %llu retired)", cfg_.deadlineSeconds,
                    elapsed, static_cast<unsigned long long>(cycle_),
                    static_cast<unsigned long long>(retired_)));
        }
    }
    hostSeconds_ = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - host_start).count();
    return assemble();
}

SimResult
CtcpSimulator::assemble()
{
    SimResult r;
    r.benchmark = program_.name();
    r.strategy = cfg_.assign.strategy == AssignStrategy::IssueTime
                     ? "issue-time"
                     : policy_->name();
    r.cycles = cycle_;
    r.instructions = retired_;

    r.pctFromTraceCache = profiler_.pctFromTraceCache();
    r.meanTraceSize = fetch_->meanFetchedTraceSize();

    r.pctCritFromRF = profiler_.pctCriticalFromRF();
    r.pctCritFromRs1 = profiler_.pctCriticalFromRs1();
    r.pctCritFromRs2 = profiler_.pctCriticalFromRs2();

    r.pctDepsCritical = profiler_.pctDepsCritical();
    r.pctCritInterTrace = profiler_.pctCriticalInterTrace();

    r.repeatRs1 = profiler_.repeatRs1();
    r.repeatRs2 = profiler_.repeatRs2();
    r.repeatRs1CritInter = profiler_.repeatRs1CritInter();
    r.repeatRs2CritInter = profiler_.repeatRs2CritInter();

    r.pctIntraClusterFwd = profiler_.pctIntraClusterForwarding();
    r.meanFwdDistance = profiler_.meanForwardingDistance();

    if (fdrt_) {
        const FdrtOptionStats &o = fdrt_->optionStats();
        const std::uint64_t total = o.total();
        r.pctOptionA = percent(o.optionA, total);
        r.pctOptionB = percent(o.optionB, total);
        r.pctOptionC = percent(o.optionC, total);
        r.pctOptionD = percent(o.optionD, total);
        r.pctOptionE = percent(o.optionE, total);
        r.pctSkipped = percent(o.skipped, total);
    }

    r.migrationAllPct = profiler_.migrationAllPct();
    r.migrationChainPct = profiler_.migrationChainPct();

    r.bpredAccuracy =
        100.0 - percent(condMispredicted_.value(), condResolved_.value());
    r.tcHitRate = percent(tc_->hits(), tc_->hits() + tc_->misses());
    r.mispredicts = condMispredicted_.value() + indirectMispredicted_.value();

    StatDump dump;
    dump.note("benchmark", r.benchmark);
    dump.note("strategy", r.strategy);
    dump.scalar("cycles", r.cycles);
    dump.scalar("instructions", r.instructions);
    dump.scalar("ipc", r.ipc());
    dump.scalar("cond_resolved", condResolved_.value());
    dump.scalar("cond_mispredicted", condMispredicted_.value());
    dump.scalar("indirect_resolved", indirectResolved_.value());
    dump.scalar("indirect_mispredicted", indirectMispredicted_.value());
    dump.scalar("rob_stalls", robStalls_.value());
    dump.scalar("issue_stalls", issueStalls_.value());
    dump.scalar("store_retire_stalls", storeRetireStalls_.value());
    for (std::size_t c = 0; c < clusters_.size(); ++c)
        dump.scalar("cluster" + std::to_string(c) + ".dispatched",
                    clusters_[c].dispatched());
    if (fdrt_) {
        dump.scalar("fdrt.option_a_pct", r.pctOptionA);
        dump.scalar("fdrt.option_b_pct", r.pctOptionB);
        dump.scalar("fdrt.option_c_pct", r.pctOptionC);
        dump.scalar("fdrt.option_d_pct", r.pctOptionD);
        dump.scalar("fdrt.option_e_pct", r.pctOptionE);
        dump.scalar("fdrt.skipped_pct", r.pctSkipped);
        dump.scalar("fdrt.promotions", fdrt_->promotions());
        dump.scalar("fdrt.pins", static_cast<std::uint64_t>(
            fdrt_->pinCount()));
    }
    dump.scalar("fwd.total", fwdTotal_.value());
    dump.scalar("fwd.inter_cluster", fwdInterCluster_.value());
    profiler_.dumpStats(dump);
    fetch_->dumpStats(dump);
    tc_->dumpStats(dump);
    fillUnit_->dumpStats(dump);
    bpred_->dumpStats(dump);
    dmem_.dumpStats(dump);

    // ---- Structured run telemetry (SimResult::metrics) -----------------
    r.metrics["fwd.total"] = static_cast<double>(fwdTotal_.value());
    r.metrics["fwd.inter_cluster"] =
        static_cast<double>(fwdInterCluster_.value());
    r.metrics["fwd.inter_cluster_per_instr"] =
        ratio(fwdInterCluster_.value(), retired_);
    r.metrics["fetch.from_tc"] =
        static_cast<double>(fetch_->instsFromTC());
    r.metrics["fetch.from_ic"] =
        static_cast<double>(fetch_->instsFromIC());
    r.metrics["tc.hits"] = static_cast<double>(tc_->hits());
    r.metrics["tc.misses"] = static_cast<double>(tc_->misses());
    r.metrics["fill.traces_built"] =
        static_cast<double>(fillUnit_->tracesBuilt());
    r.metrics["dmem.loads"] = static_cast<double>(dmem_.loads());
    r.metrics["dmem.stores"] = static_cast<double>(dmem_.stores());
    r.metrics["rob_stalls"] = static_cast<double>(robStalls_.value());
    r.metrics["issue_stalls"] = static_cast<double>(issueStalls_.value());
    for (std::size_t c = 0; c < clusters_.size(); ++c)
        r.metrics["cluster" + std::to_string(c) + ".dispatched"] =
            static_cast<double>(clusters_[c].dispatched());

    // ---- Cycle accounting (SimResult::accounting) ----------------------
    // Deliberately a separate map from r.metrics: the golden-stats
    // contract covers the default serialization, and accounting output
    // only appears under its own flag-gated key. Strategy Adaptive
    // runs the accounting layer internally as its feedback signal, so
    // the export keeps its own gate on the user-facing flag.
    if (acct_ && cfg_.obs.accounting) {
        acct_->exportTo(r.accounting);
        r.accounting["migration.revisits"] =
            static_cast<double>(profiler_.migrationRevisits());
        r.accounting["migration.migrated"] =
            static_cast<double>(profiler_.migrationMigrated());
        r.accounting["migration.chain_revisits"] =
            static_cast<double>(profiler_.chainRevisits());
        r.accounting["migration.chain_migrated"] =
            static_cast<double>(profiler_.chainMigrated());
        dump.scalar("acct.slots.total", acct_->machineSlotsTotal());
        for (unsigned k = 0; k < numSlotCats; ++k) {
            const SlotCat cat = static_cast<SlotCat>(k);
            dump.scalar(std::string("acct.slots.") + slotCatName(cat),
                        acct_->machineSlots(cat));
        }
    }

    // ---- Adaptive chooser telemetry (strategy Adaptive only) -----------
    if (adaptive_) {
        dump.note("adaptive.final_mode",
                  assignStrategyName(adaptive_->mode()));
        dump.scalar("adaptive.switches", adaptive_->switches());
        dump.scalar("adaptive.intervals", adaptive_->intervals());
        r.metrics["adaptive.switches"] =
            static_cast<double>(adaptive_->switches());
        r.metrics["adaptive.intervals"] =
            static_cast<double>(adaptive_->intervals());
        for (const AssignStrategy mode :
             {AssignStrategy::BaseSlotOrder, AssignStrategy::Friendly,
              AssignStrategy::Fdrt, AssignStrategy::IssueTime}) {
            const std::string key = std::string("adaptive.intervals.") +
                                    assignStrategyName(mode);
            dump.scalar(key, adaptive_->intervalsIn(mode));
            r.metrics[key] =
                static_cast<double>(adaptive_->intervalsIn(mode));
        }
        // The phase trajectory itself, one "cycle:mode" token per
        // switch — small (bounded by switches()) and deterministic.
        if (!adaptive_->phaseTrace().empty()) {
            std::string trace;
            for (const auto &step : adaptive_->phaseTrace()) {
                if (!trace.empty())
                    trace += ' ';
                trace += std::to_string(step.first) + ':' +
                         assignStrategyName(step.second);
            }
            dump.note("adaptive.trace", trace);
        }
    }

    // Host-side throughput. Non-deterministic by nature, so these are
    // excluded from the default JSON serialization (the golden-stats
    // contract) and only exported when explicitly requested.
    r.hostSeconds = hostSeconds_;
    r.metrics["host.seconds"] = hostSeconds_;
    r.metrics["host.sim_insts_per_sec"] = r.simInstsPerHostSecond();

    // ---- Observability wrap-up -----------------------------------------
    if (interval_) {
        // Trailing partial interval: a run of C cycles sampled every N
        // dumps exactly ceil(C / N) rows (sample() dedups the boundary
        // case where C is a multiple of N).
        interval_->sample(cycle_);
        interval_->writeFile(cfg_.obs.intervalPath);
        r.metrics["interval.rows"] =
            static_cast<double>(interval_->rows());
    }
    if (obs_) {
        obs_->finish();
        dump.scalar("obs.events", obs_->recorded());
        for (unsigned k = 0; k < numObsKinds; ++k) {
            const auto kind = static_cast<ObsKind>(k);
            r.metrics[std::string("obs.events.") + obsKindName(kind)] =
                static_cast<double>(obs_->recorded(kind));
        }
    }

    r.statsText = dump.render();
    return r;
}

} // namespace ctcp
