/**
 * @file
 * CtcpSimulator — the public entry point of the library.
 *
 * Wires together the functional simulator, the trace-cache front end,
 * the fill unit with its retire-time assignment policy, four execution
 * clusters with the inter-cluster forwarding network, and the data
 * memory hierarchy, and advances them cycle by cycle.
 *
 * Typical use:
 * @code
 *   SimConfig cfg = baseConfig();
 *   cfg.assign.strategy = AssignStrategy::Fdrt;
 *   Program prog = workloads::build("gzip");
 *   CtcpSimulator sim(cfg, prog);
 *   SimResult r = sim.run();
 * @endcode
 */

#ifndef CTCPSIM_CORE_SIMULATOR_HH
#define CTCPSIM_CORE_SIMULATOR_HH

#include <cstdio>
#include <deque>
#include <memory>
#include <queue>
#include <vector>

#include "assign/issue_time_steering.hh"
#include "bpred/predictor.hh"
#include "cluster/cluster.hh"
#include "cluster/inst_pool.hh"
#include "cluster/interconnect.hh"
#include "common/arena.hh"
#include "common/circular_queue.hh"
#include "config/sim_config.hh"
#include "core/fetch.hh"
#include "core/profiler.hh"
#include "core/sim_result.hh"
#include "core/store_window.hh"
#include "func/executor.hh"
#include "mem/dmem.hh"
#include "prog/program.hh"
#include "tracecache/fill_unit.hh"
#include "tracecache/trace_cache.hh"

namespace ctcp {

class AdaptivePolicy;
class AdaptiveSteeringController;
class CycleAccounting;
class FdrtAssignment;
class IntervalRecorder;
class ObsSink;

namespace verify {
class FaultInjector;
class InvariantChecker;
} // namespace verify

/** Cycle-level clustered trace cache processor simulator. */
class CtcpSimulator
{
  public:
    /**
     * @param cfg      validated machine configuration
     * @param program  workload (not owned; must outlive the simulator)
     * @param arena    backing storage for per-instruction state; pass a
     *                 worker-local arena to reuse its chunks across
     *                 back-to-back runs (campaigns). Must outlive the
     *                 simulator and must only be reset after it is
     *                 destroyed. Null = the simulator owns a private
     *                 arena.
     */
    CtcpSimulator(const SimConfig &cfg, const Program &program,
                  Arena *arena = nullptr);
    ~CtcpSimulator();

    CtcpSimulator(const CtcpSimulator &) = delete;
    CtcpSimulator &operator=(const CtcpSimulator &) = delete;

    /** Run to the instruction limit (or program end) and report. */
    SimResult run();

    /** Advance exactly one cycle (exposed for tests). */
    void step();

    /** Simulation has nothing left to do. */
    bool done();

    Cycle now() const { return cycle_; }
    std::uint64_t retired() const { return retired_; }

    const Profiler &profiler() const { return profiler_; }
    const TraceCache &traceCache() const { return *tc_; }
    const BranchPredictor &branchPredictor() const { return *bpred_; }

    /** The event sink, when cfg.obs enables tracing (else null). */
    const ObsSink *obs() const { return obs_.get(); }

  private:
    // The invariant checker revalidates private derived state against
    // first principles; the fault injector corrupts it in tests.
    friend class verify::InvariantChecker;
    friend class verify::FaultInjector;

    /** Build the ObsSink / IntervalRecorder from cfg_.obs and wire
     *  every instrumented component. Throws std::runtime_error on an
     *  unwritable output path (campaign jobs fail in isolation). */
    void setupObservability();
    void doCompletions();
    void doRetire();
    void doDispatch();
    void doIssue();
    void doRename();
    void doFetch();

    void renameOperand(TimedInst &inst, int index, RegId reg);
    ClusterId slotCluster(const TimedInst &inst) const;

    /**
     * Effective readiness of both operands at the instruction's
     * cluster, with Figure 5 ablations applied, and the index of the
     * critical (last-arriving) operand (-1 when no register inputs).
     */
    struct Readiness
    {
        Cycle ready = 0;
        int critical = -1;
    };
    Readiness operandReadiness(const TimedInst &inst) const;

    bool readyToDispatch(const TimedInst &inst, Cycle now_cycle);
    Cycle executeInst(TimedInst &inst, Cycle now_cycle);
    void recordCriticality(TimedInst &inst);

    /**
     * Refresh inst.readyAt from operandReadiness (neverCycle while a
     * producer is outstanding) and, when cycle accounting is on, cache
     * the stall-explaining hop distance in inst.stallHops: the critical
     * operand's distance when schedulable, the worst incomplete
     * producer's distance when parking behind producers.
     */
    void cacheReadiness(TimedInst &inst);

    /** Classify this cycle's front-end output for cycle accounting. */
    CycleAccounting::FetchState fetchStarvation() const;

    /** Re-route rename/issue after an adaptive mode switch. */
    void applyAdaptiveMode();

    /**
     * Dispatch callbacks handed to Cluster::dispatch. A concrete type
     * (not std::function) so the per-instruction ready/execute calls
     * are direct, inlinable calls in the scheduling hot loop.
     */
    struct DispatchClient
    {
        CtcpSimulator &sim;

        bool
        ready(const TimedInst &inst, Cycle now_cycle) const
        {
            return sim.readyToDispatch(inst, now_cycle);
        }

        Cycle
        execute(TimedInst &inst, Cycle now_cycle) const
        {
            return sim.executeInst(inst, now_cycle);
        }
    };

    SimConfig cfg_;
    const Program &program_;

    /**
     * Per-instruction storage. ownedArena_ is the private fallback when
     * no external arena was supplied; pool_ carves TimedInst hot/cold
     * blocks out of whichever arena is in use. Declared before pool_
     * (and before everything that holds TimedInst pointers) so the
     * pool's destructor — which destroys every carved slot — runs
     * before the owned arena releases the chunks, never after.
     */
    std::unique_ptr<Arena> ownedArena_;
    TimedInstPool pool_;

    // Substrates.
    Executor exec_;
    DataMemorySystem dmem_;
    InstMemory imem_;
    std::unique_ptr<BranchPredictor> bpred_;
    std::unique_ptr<TraceCache> tc_;
    Interconnect interconnect_;
    std::vector<Cluster> clusters_;

    // Assignment policy (retire-time) and issue-time steering.
    std::unique_ptr<RetireAssignmentPolicy> policy_;
    FdrtAssignment *fdrt_ = nullptr;   ///< non-null when strategy is FDRT
    /** Non-null when the strategy is Adaptive (owned by policy_). */
    AdaptivePolicy *adaptivePolicy_ = nullptr;
    /** Phase-adaptive mode chooser (strategy Adaptive only). */
    std::unique_ptr<AdaptiveSteeringController> adaptive_;
    std::unique_ptr<FillUnit> fillUnit_;
    std::unique_ptr<IssueTimeSteering> steering_;
    /**
     * Rename routes new instructions into issueQueue_ (issue-time
     * steering picks their cluster) instead of the per-cluster queues.
     * Fixed true for strategy IssueTime; toggled per phase by the
     * adaptive chooser.
     */
    bool routeToIssueQueue_ = false;

    std::unique_ptr<FetchEngine> fetch_;
    Profiler profiler_;

    // Pipeline state.
    std::deque<FetchGroup> fetchQueue_;
    static constexpr std::size_t fetchQueueCap = 4;
    /** Position of the next instruction to rename in the front group. */
    std::size_t frontGroupPos_ = 0;

    /** Reorder buffer; entries are owned by pool_ (released at retire). */
    CircularQueue<TimedInst *> rob_;
    /** Issue-time steering mode: one in-order queue (steering redirects). */
    std::deque<TimedInst *> issueQueue_;
    /**
     * Slot-based modes: one FIFO per cluster, mirroring the per-cluster
     * issue-buffer slices of the CTCP (a backed-up cluster does not
     * block the others).
     */
    std::vector<std::deque<TimedInst *>> clusterQueues_;
    std::vector<TimedInst *> renameTable_;
    /** In-flight stores with disambiguation/forwarding indexes. */
    StoreWindow storeWindow_;
    /** Per-cycle dispatch output, reused across cycles and clusters. */
    std::vector<TimedInst *> dispatchScratch_;

    /**
     * Pending completion, keyed by cycle. The key is stored next to
     * the pointer so heap sifts compare inline data instead of
     * dereferencing cold TimedInst lines; comparisons resolve exactly
     * as the pointer-chasing form did (same key, same tie behavior),
     * so the pop order — and therefore every stat — is unchanged.
     */
    struct PendingComplete
    {
        Cycle completeAt;
        TimedInst *inst;
    };
    struct CompareComplete
    {
        bool
        operator()(const PendingComplete &a, const PendingComplete &b) const
        {
            return a.completeAt > b.completeAt;
        }
    };
    std::priority_queue<PendingComplete, std::vector<PendingComplete>,
                        CompareComplete> completions_;
    /** Shared result-bus broadcast slots (bus interconnect mode only). */
    std::unique_ptr<PortSchedule> busSchedule_;

    Cycle cycle_ = 0;
    std::uint64_t retired_ = 0;
    unsigned issueExtraStages_ = 0;
    /** Host wall-clock seconds spent inside run() (0 until it ends). */
    double hostSeconds_ = 0.0;

    // Observability (src/obs): null unless cfg.obs requests output.
    std::unique_ptr<ObsSink> obs_;
    std::unique_ptr<IntervalRecorder> interval_;
    /** Cycle accounting: null unless cfg.obs.accounting. */
    std::unique_ptr<CycleAccounting> acct_;
    /**
     * Cached base of acct_'s forwarding matrix (null when accounting
     * is off): the execute loop counts a forward with one indexed
     * increment instead of reaching through the accounting object.
     */
    std::uint64_t *fwdMatrix_ = nullptr;
    /** Row stride of fwdMatrix_ (the cluster count). */
    unsigned fwdMatrixCols_ = 0;

    // Robustness (src/verify): null unless cfg.checkLevel > 0.
    std::unique_ptr<verify::InvariantChecker> checker_;
    /** Test-only fault: doRetire() retires nothing while set. */
    bool faultStallRetire_ = false;

    /**
     * Describe the stuck pipeline (ROB head, cluster occupancies, fetch
     * queue, store window) to stderr and — when tracing is on — as
     * Snapshot events through the obs sink, before a Hang abort.
     */
    void dumpPipelineSnapshot(const char *reason);

    // Pipeline tracing (DebugConfig): one line per pipeline event for
    // the first debug.traceCycles cycles.
    FILE *traceFile_ = nullptr;
    bool tracing() const
    {
        return traceFile_ != nullptr && cycle_ < cfg_.debug.traceCycles;
    }
    void traceEvent(const char *stage, const TimedInst &inst);

    // Counters.
    Counter condResolved_;
    Counter condMispredicted_;
    Counter indirectResolved_;
    Counter indirectMispredicted_;
    Counter robStalls_;
    Counter issueStalls_;
    Counter storeRetireStalls_;
    /** Forwarded (bypassed) operand deliveries observed at dispatch. */
    Counter fwdTotal_;
    /** Subset that crossed a cluster boundary. */
    Counter fwdInterCluster_;

    SimResult assemble();
};

} // namespace ctcp

#endif // CTCPSIM_CORE_SIMULATOR_HH
