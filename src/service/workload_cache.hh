/**
 * @file
 * Cross-request workload setup cache for the ctcpd service.
 *
 * Building a workload's Program (code generation, data-image
 * construction) is pure and deterministic — builders seed their own
 * Rng locally, which is what the golden-stats contract already relies
 * on. A batch run pays that construction once per job; a service that
 * sees the same benchmarks in spec after spec should pay it once per
 * (benchmark, instructionLimit) key and hand each job a copy of the
 * cached image. The copy (not a shared pointer into the simulator)
 * preserves the campaign engine's isolation guarantee: jobs never
 * share mutable state.
 *
 * Bounded LRU: the full workload registry is small (~26 programs),
 * but instructionLimit is part of the key by contract, so unbounded
 * growth across many-budget campaigns is capped.
 */

#ifndef CTCPSIM_SERVICE_WORKLOAD_CACHE_HH
#define CTCPSIM_SERVICE_WORKLOAD_CACHE_HH

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>

#include "prog/program.hh"

namespace ctcp::service {

/** Thread-safe bounded LRU of built Programs. */
class WorkloadCache
{
  public:
    explicit WorkloadCache(std::size_t max_entries = 64)
        : maxEntries_(max_entries ? max_entries : 1)
    {}

    /**
     * The Program for @p benchmark under @p instructionLimit, built on
     * first use and cached after. The returned pointer stays valid
     * even if the entry is evicted (shared ownership); callers that
     * need a private copy (campaign jobs) copy the pointee.
     * @throws std::invalid_argument for an unknown benchmark — the
     *         same error (and message) a campaign builder raises, so
     *         cached and uncached failure reports match byte for byte
     */
    std::shared_ptr<const Program> get(const std::string &benchmark,
                                       std::uint64_t instructionLimit);

    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
        std::size_t entries = 0;
    };

    Stats stats() const;

  private:
    struct Entry
    {
        std::string key;
        std::shared_ptr<const Program> program;
    };

    mutable std::mutex mutex_;
    /** Front = most recently used. */
    std::list<Entry> entries_;
    std::size_t maxEntries_;
    Stats stats_;
};

} // namespace ctcp::service

#endif // CTCPSIM_SERVICE_WORKLOAD_CACHE_HH
