#include "service/server.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <stdexcept>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"
#include "common/sim_error.hh"

namespace ctcp::service {

namespace {

HttpResponse
errorResponse(int status, const std::string &message)
{
    HttpResponse resp;
    resp.status = status;
    resp.body = "{\"error\":\"" + jsonEscape(message) + "\"}\n";
    return resp;
}

std::string
runInfoJson(const RunInfo &info)
{
    std::string out = "{";
    out += "\"id\":\"" + jsonEscape(info.id) + "\",";
    out += "\"state\":\"" + std::string(runStateName(info.state)) +
        "\",";
    out += "\"spec\":\"" + jsonEscape(info.spec) + "\",";
    out += "\"jobs\":" + std::to_string(info.totalJobs) + ",";
    out += "\"done\":" + std::to_string(info.doneJobs) + ",";
    out += "\"failed\":" + std::to_string(info.failedJobs) + ",";
    out += std::string("\"accounting\":") +
        (info.accounting ? "true" : "false") + ",";
    out += "\"maxAttempts\":" + std::to_string(info.maxAttempts) + ",";
    out += std::string("\"cancelRequested\":") +
        (info.cancelRequested ? "true" : "false");
    if (!info.error.empty())
        out += ",\"error\":\"" + jsonEscape(info.error) + "\"";
    out += "}";
    return out;
}

/** Split "/v1/runs/r0001/events" into segments after "/v1/". */
std::vector<std::string>
pathSegments(const std::string &path)
{
    std::vector<std::string> out;
    std::size_t start = 1; // skip leading '/'
    while (start <= path.size()) {
        std::size_t end = path.find('/', start);
        if (end == std::string::npos)
            end = path.size();
        if (end > start)
            out.push_back(path.substr(start, end - start));
        if (end == path.size())
            break;
        start = end + 1;
    }
    return out;
}

bool
flagParam(const HttpRequest &req, const std::string &name)
{
    const std::string v = req.queryParam(name, "0");
    return v == "1" || v == "true" || v == "yes";
}

/**
 * Collapse a request path to a bounded endpoint label so the
 * per-endpoint metric families stay low-cardinality: run ids become
 * "{id}", anything unroutable becomes "other".
 */
std::string
normalizeEndpoint(const std::string &path)
{
    const std::vector<std::string> seg = pathSegments(path);
    if (seg.size() < 2 || seg[0] != "v1")
        return "other";
    if (seg.size() == 2 &&
        (seg[1] == "ping" || seg[1] == "stats" ||
         seg[1] == "metrics" || seg[1] == "runs"))
        return "/v1/" + seg[1];
    if (seg[1] != "runs")
        return "other";
    if (seg.size() == 3)
        return "/v1/runs/{id}";
    if (seg.size() == 4 &&
        (seg[3] == "events" || seg[3] == "cancel" ||
         seg[3] == "report" || seg[3] == "html"))
        return "/v1/runs/{id}/" + seg[3];
    return "other";
}

} // namespace

ServiceServer::ServiceServer(Config config)
    : config_(std::move(config)), registry_(config_.registry)
{
    // Declare every family up front so a fresh daemon's first scrape
    // (and the CI family grep) sees the whole catalogue before any
    // request or job exists.
    metrics_.declareCounter("ctcpd_http_requests_total",
                            "Requests answered, by endpoint, method "
                            "and status.");
    metrics_.declareHistogram(
        "ctcpd_http_request_seconds",
        "Wall time from parsed request to routed response.",
        obs::MetricsRegistry::defaultLatencyBuckets());
    metrics_.declareCounter("ctcpd_http_response_bytes_total",
                            "Response body bytes written, by endpoint.");
    metrics_.gauge("ctcpd_http_active_connections",
                   "Connections currently being served.");
    metrics_
        .gauge("ctcpd_pool_workers",
               "Worker threads in the shared pool.")
        .set(static_cast<double>(registry_.workers()));
    metrics_.gauge("ctcpd_pool_busy_workers",
                   "Workers executing a job right now.");
    metrics_.gauge("ctcpd_pool_queue_depth",
                   "Jobs queued and not yet picked up.");
    metrics_.counter("ctcpd_pool_jobs_executed_total",
                     "Pool tasks fully executed.");
    metrics_.counter("ctcpd_jobs_completed_total",
                     "Campaign jobs with a finalized outcome.");
    metrics_.counter("ctcpd_jobs_retried_total",
                     "Extra attempts beyond each job's first.");
    for (int c = 0; c <= static_cast<int>(ErrorCategory::Cancelled);
         ++c)
        metrics_.counter(
            "ctcpd_jobs_failed_total",
            "Failed campaign jobs, by error category.",
            {{"category",
              errorCategoryName(static_cast<ErrorCategory>(c))}});
    for (int s = 0; s <= static_cast<int>(RunState::Error); ++s)
        metrics_.gauge(
            "ctcpd_runs", "Runs in the registry, by state.",
            {{"state", runStateName(static_cast<RunState>(s))}});
    metrics_.gauge("ctcpd_journal_bytes",
                   "On-disk bytes across every run's journal.");
    metrics_.counter("ctcpd_resumed_runs_total",
                     "Runs re-submitted by startup resume.");
    metrics_.counter("ctcpd_resume_replayed_jobs_total",
                     "Journal outcomes replayed instead of re-run.");
    metrics_.counter("ctcpd_workload_cache_hits_total",
                     "Workload cache hits.");
    metrics_.counter("ctcpd_workload_cache_misses_total",
                     "Workload cache misses.");
    metrics_.counter("ctcpd_workload_cache_evictions_total",
                     "Workload cache evictions.");
    metrics_.gauge("ctcpd_workload_cache_entries",
                   "Workloads currently cached.");
}

ServiceServer::~ServiceServer() = default;

HttpResponse
ServiceServer::handle(const HttpRequest &req)
{
    HttpResponse resp = route(req);
    // Echo the correlation id so a client (or the shard coordinator)
    // can stitch this exchange into the fleet-wide trace.
    const std::string trace = req.header("x-ctcp-trace-id");
    if (!trace.empty())
        resp.headers.emplace_back(traceIdHeader, trace);
    return resp;
}

HttpResponse
ServiceServer::route(const HttpRequest &req)
{
    const std::vector<std::string> seg = pathSegments(req.path);
    if (seg.size() < 2 || seg[0] != "v1")
        return errorResponse(404, "unknown path " + req.path);

    try {
        if (seg[1] == "ping" && seg.size() == 2) {
            if (req.method != "GET")
                return errorResponse(405, "ping is GET-only");
            HttpResponse resp;
            resp.body = "{\"status\":\"ok\"}\n";
            return resp;
        }

        if (seg[1] == "stats" && seg.size() == 2) {
            if (req.method != "GET")
                return errorResponse(405, "stats is GET-only");
            const WorkloadCache::Stats cache = registry_.cacheStats();
            HttpResponse resp;
            resp.body = "{\"workers\":" +
                std::to_string(registry_.workers()) +
                ",\"runs\":" + std::to_string(registry_.runCount()) +
                ",\"workloadCache\":{\"hits\":" +
                std::to_string(cache.hits) +
                ",\"misses\":" + std::to_string(cache.misses) +
                ",\"evictions\":" + std::to_string(cache.evictions) +
                ",\"entries\":" + std::to_string(cache.entries) +
                "}}\n";
            return resp;
        }

        if (seg[1] == "metrics" && seg.size() == 2) {
            if (req.method != "GET")
                return errorResponse(405, "metrics is GET-only");
            HttpResponse resp;
            resp.contentType =
                "text/plain; version=0.0.4; charset=utf-8";
            resp.body = metricsExposition();
            return resp;
        }

        if (seg[1] != "runs")
            return errorResponse(404, "unknown path " + req.path);

        // POST /v1/runs — submit a campaign spec.
        if (seg.size() == 2 && req.method == "POST") {
            std::string spec = req.body;
            while (!spec.empty() &&
                   (spec.back() == '\n' || spec.back() == '\r' ||
                    spec.back() == ' '))
                spec.pop_back();
            if (spec.empty())
                return errorResponse(
                    400, "empty spec (send the matrix text as the "
                         "request body)");
            RunRegistry::SubmitOptions options;
            options.accounting = flagParam(req, "accounting");
            const std::string attempts =
                req.queryParam("max_attempts", "1");
            char *end = nullptr;
            const long n = std::strtol(attempts.c_str(), &end, 10);
            if (*end != '\0' || n < 1)
                return errorResponse(400, "invalid max_attempts '" +
                                              attempts + "'");
            options.maxAttempts = static_cast<unsigned>(n);
            const std::string deadline =
                req.queryParam("deadline", "0");
            options.jobDeadlineSeconds =
                std::strtod(deadline.c_str(), nullptr);
            if (options.jobDeadlineSeconds < 0.0)
                return errorResponse(400, "invalid deadline '" +
                                              deadline + "'");

            std::string id;
            try {
                id = registry_.submit(spec, options);
            } catch (const std::invalid_argument &e) {
                return errorResponse(400, e.what());
            } catch (const SimError &e) {
                return errorResponse(
                    e.category() == ErrorCategory::Cancelled ? 503
                                                             : 500,
                    e.what());
            }
            RunInfo info;
            registry_.info(id, info);
            HttpResponse resp;
            resp.status = 201;
            resp.body = "{\"id\":\"" + id + "\",\"jobs\":" +
                std::to_string(info.totalJobs) + "}\n";
            return resp;
        }

        // GET /v1/runs — list.
        if (seg.size() == 2 && req.method == "GET") {
            std::string body = "{\"runs\":[";
            bool first = true;
            for (const RunInfo &info : registry_.list()) {
                if (!first)
                    body += ",";
                first = false;
                body += runInfoJson(info);
            }
            body += "]}\n";
            HttpResponse resp;
            resp.body = body;
            return resp;
        }
        if (seg.size() == 2)
            return errorResponse(405, "runs supports GET and POST");

        const std::string &id = seg[2];

        // GET /v1/runs/<id> — status (with optional ?wait=SECS).
        if (seg.size() == 3) {
            if (req.method != "GET")
                return errorResponse(405, "run status is GET-only");
            const double wait = std::min(
                std::strtod(req.queryParam("wait", "0").c_str(),
                            nullptr),
                config_.maxWaitSeconds);
            RunInfo info;
            const bool found = wait > 0.0
                ? registry_.wait(id, wait, info)
                : registry_.info(id, info);
            if (!found)
                return errorResponse(404, "no such run '" + id + "'");
            HttpResponse resp;
            resp.body = runInfoJson(info) + "\n";
            return resp;
        }

        if (seg.size() != 4)
            return errorResponse(404, "unknown path " + req.path);
        const std::string &verb = seg[3];

        if (verb == "events") {
            if (req.method != "GET")
                return errorResponse(405, "events is GET-only");
            const std::uint64_t from = std::strtoull(
                req.queryParam("from", "0").c_str(), nullptr, 10);
            const double wait = std::min(
                std::strtod(req.queryParam("wait", "0").c_str(),
                            nullptr),
                config_.maxWaitSeconds);
            std::string bytes;
            std::uint64_t next = from;
            RunState state = RunState::Queued;
            if (!registry_.events(id, from, wait, bytes, next, state))
                return errorResponse(404, "no such run '" + id + "'");
            HttpResponse resp;
            resp.contentType = "application/x-ndjson";
            resp.headers.emplace_back("X-Ctcp-Next-Offset",
                                      std::to_string(next));
            resp.headers.emplace_back("X-Ctcp-Run-State",
                                      runStateName(state));
            resp.body = std::move(bytes);
            return resp;
        }

        if (verb == "cancel") {
            if (req.method != "POST")
                return errorResponse(405, "cancel is POST-only");
            if (!registry_.cancel(id))
                return errorResponse(404, "no such run '" + id + "'");
            HttpResponse resp;
            resp.status = 202;
            resp.body = "{\"id\":\"" + id +
                "\",\"status\":\"cancelling\"}\n";
            return resp;
        }

        if (verb == "report") {
            if (req.method != "GET")
                return errorResponse(405, "report is GET-only");
            const std::string format =
                req.queryParam("format", "json");
            if (format != "json" && format != "csv")
                return errorResponse(400, "unknown format '" + format +
                                              "' (json or csv)");
            std::string out, error;
            if (!registry_.finalReport(id, format == "csv",
                                       flagParam(req, "host_timing"),
                                       out, error)) {
                const bool missing =
                    error.compare(0, 11, "no such run") == 0;
                return errorResponse(missing ? 404 : 409, error);
            }
            HttpResponse resp;
            resp.contentType = format == "csv"
                ? "text/csv"
                : "application/json";
            resp.body = std::move(out);
            return resp;
        }

        if (verb == "html") {
            if (req.method != "GET")
                return errorResponse(405, "html is GET-only");
            std::string html;
            if (!registry_.htmlReport(id, html))
                return errorResponse(404, "no such run '" + id + "'");
            HttpResponse resp;
            resp.contentType = "text/html; charset=utf-8";
            resp.body = std::move(html);
            return resp;
        }

        return errorResponse(404, "unknown path " + req.path);
    } catch (const std::exception &e) {
        return errorResponse(500, e.what());
    }
}

std::string
ServiceServer::metricsExposition()
{
    // Scrape-time sync: sources that already keep their own monotonic
    // counts (pool, registry, workload cache) are mirrored into the
    // metrics registry here via incTo()/set(), so the campaign layer
    // never gains an obs dependency. Help strings live with the
    // declarations in the constructor; "" on re-lookup is ignored.
    const campaign::PersistentPool::Snapshot pool =
        registry_.poolSnapshot();
    metrics_.gauge("ctcpd_pool_workers", "")
        .set(static_cast<double>(pool.workers));
    metrics_.gauge("ctcpd_pool_busy_workers", "")
        .set(static_cast<double>(pool.busyWorkers));
    metrics_.gauge("ctcpd_pool_queue_depth", "")
        .set(static_cast<double>(pool.queuedTasks));
    metrics_.counter("ctcpd_pool_jobs_executed_total", "")
        .incTo(pool.executedTasks);

    const RunRegistry::JobStats jobs = registry_.jobStats();
    metrics_.counter("ctcpd_jobs_completed_total", "")
        .incTo(jobs.completed);
    metrics_.counter("ctcpd_jobs_retried_total", "")
        .incTo(jobs.retried);
    for (int c = 0; c <= static_cast<int>(ErrorCategory::Cancelled);
         ++c)
        metrics_
            .counter("ctcpd_jobs_failed_total", "",
                     {{"category", errorCategoryName(
                                       static_cast<ErrorCategory>(c))}})
            .incTo(jobs.failed[c]);
    metrics_.counter("ctcpd_resumed_runs_total", "")
        .incTo(jobs.resumedRuns);
    metrics_.counter("ctcpd_resume_replayed_jobs_total", "")
        .incTo(jobs.replayedJobs);

    std::size_t byState[static_cast<int>(RunState::Error) + 1] = {};
    for (const RunInfo &info : registry_.list())
        ++byState[static_cast<std::size_t>(info.state)];
    for (int s = 0; s <= static_cast<int>(RunState::Error); ++s)
        metrics_
            .gauge("ctcpd_runs", "",
                   {{"state", runStateName(static_cast<RunState>(s))}})
            .set(static_cast<double>(byState[s]));
    metrics_.gauge("ctcpd_journal_bytes", "")
        .set(static_cast<double>(registry_.journalBytes()));

    const WorkloadCache::Stats cache = registry_.cacheStats();
    metrics_.counter("ctcpd_workload_cache_hits_total", "")
        .incTo(cache.hits);
    metrics_.counter("ctcpd_workload_cache_misses_total", "")
        .incTo(cache.misses);
    metrics_.counter("ctcpd_workload_cache_evictions_total", "")
        .incTo(cache.evictions);
    metrics_.gauge("ctcpd_workload_cache_entries", "")
        .set(static_cast<double>(cache.entries));

    return metrics_.exposition();
}

void
ServiceServer::recordRequest(const HttpRequest &req,
                             const HttpResponse &resp, double seconds)
{
    const std::string endpoint = normalizeEndpoint(req.path);
    metrics_
        .counter("ctcpd_http_requests_total", "",
                 {{"endpoint", endpoint},
                  {"method", req.method},
                  {"status", std::to_string(resp.status)}})
        .inc();
    metrics_
        .histogram("ctcpd_http_request_seconds", "",
                   obs::MetricsRegistry::defaultLatencyBuckets(),
                   {{"endpoint", endpoint}})
        .observe(seconds);
    metrics_
        .counter("ctcpd_http_response_bytes_total", "",
                 {{"endpoint", endpoint}})
        .inc(resp.body.size());
}

void
ServiceServer::handleConnection(int fd)
{
    HttpRequest req;
    std::string error;
    HttpResponse resp;
    if (readRequest(fd, req, config_.ioDeadlineSeconds, error)) {
        // Every request carries a correlation id — the client's when
        // supplied, a fresh one otherwise — injected before routing so
        // handle() (and the log record below) always sees one.
        if (req.header("x-ctcp-trace-id").empty())
            req.headers.emplace_back("x-ctcp-trace-id", makeTraceId());
        const auto start = std::chrono::steady_clock::now();
        resp = handle(req);
        const double seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        recordRequest(req, resp, seconds);
        if (config_.verbose)
            std::fprintf(stderr, "ctcpd: %s %s -> %d\n",
                         req.method.c_str(), req.path.c_str(),
                         resp.status);
        if (logEnabled()) {
            char secs[32];
            std::snprintf(secs, sizeof(secs), "%.6f", seconds);
            logRecord(LogLevel::Info, "http",
                      req.header("x-ctcp-trace-id"),
                      req.method + " " + req.path + " -> " +
                          std::to_string(resp.status),
                      {{"method", req.method},
                       {"path", req.path},
                       {"status", std::to_string(resp.status)},
                       {"seconds", secs}});
        }
    } else {
        resp = errorResponse(400, error);
        metrics_
            .counter("ctcpd_http_requests_total", "",
                     {{"endpoint", "other"},
                      {"method", "invalid"},
                      {"status", "400"}})
            .inc();
        logRecord(LogLevel::Warn, "http", "",
                  "unreadable request: " + error);
    }
    std::string write_error;
    if (!writeAll(fd, serializeResponse(resp),
                  config_.ioDeadlineSeconds, write_error) &&
        config_.verbose)
        std::fprintf(stderr, "ctcpd: dropping reply to %s %s (%s)\n",
                     req.method.c_str(), req.path.c_str(),
                     write_error.c_str());
    ::close(fd);
}

int
ServiceServer::serve(const std::atomic<bool> &stop)
{
    std::string error;
    const int listen_fd = listenUnix(config_.socketPath, error);
    if (listen_fd < 0) {
        std::fprintf(stderr, "ctcpd: %s\n", error.c_str());
        return 2;
    }
    if (config_.verbose)
        std::fprintf(stderr, "ctcpd: listening on %s\n",
                     config_.socketPath.c_str());
    logRecord(LogLevel::Info, "server", "",
              "listening on " + config_.socketPath,
              {{"socket", config_.socketPath}});

    while (!stop.load(std::memory_order_relaxed)) {
        pollfd pfd{};
        pfd.fd = listen_fd;
        pfd.events = POLLIN;
        const int ready = ::poll(&pfd, 1, 200);
        if (ready <= 0)
            continue; // timeout, EINTR (signal) — re-check stop
        const int conn = ::accept(listen_fd, nullptr, nullptr);
        if (conn < 0)
            continue;
        {
            std::lock_guard<std::mutex> lock(connMutex_);
            ++activeConnections_;
            metrics_.gauge("ctcpd_http_active_connections", "")
                .set(static_cast<double>(activeConnections_));
        }
        std::thread([this, conn] {
            handleConnection(conn);
            std::lock_guard<std::mutex> lock(connMutex_);
            metrics_.gauge("ctcpd_http_active_connections", "")
                .set(static_cast<double>(activeConnections_ - 1));
            if (--activeConnections_ == 0)
                connIdle_.notify_all();
        }).detach();
    }

    // Graceful shutdown: stop accepting, let the registry checkpoint
    // and drain, then wait for any request still being answered.
    ::close(listen_fd);
    registry_.shutdown();
    {
        std::unique_lock<std::mutex> lock(connMutex_);
        connIdle_.wait_for(lock, std::chrono::seconds(35), [this] {
            return activeConnections_ == 0;
        });
    }
    ::unlink(config_.socketPath.c_str());
    if (config_.verbose)
        std::fprintf(stderr, "ctcpd: shut down cleanly\n");
    logRecord(LogLevel::Info, "server", "", "shut down cleanly");
    return 0;
}

} // namespace ctcp::service
