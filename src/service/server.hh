/**
 * @file
 * ctcpd's HTTP front end: routing plus the unix-socket accept loop.
 *
 * Endpoints (all JSON unless noted):
 *
 *   GET  /v1/ping                 liveness probe
 *   GET  /v1/stats                pool, runs, workload-cache counters
 *   GET  /v1/metrics              Prometheus text exposition: HTTP
 *                                 request counters + latency
 *                                 histograms, pool occupancy, runs by
 *                                 state, journal bytes, workload-cache
 *                                 counters (text/plain)
 *   POST /v1/runs                 body = matrix spec text; query:
 *                                 accounting=1, max_attempts=N,
 *                                 deadline=SECS. 201 + {"id": ...}
 *   GET  /v1/runs                 all runs' status snapshots
 *   GET  /v1/runs/<id>            one run's status snapshot
 *   GET  /v1/runs/<id>/events     journal tail from ?from=<offset>,
 *                                 long-polling up to ?wait=<secs>;
 *                                 body is raw journal JSONL and
 *                                 X-Ctcp-Next-Offset names the next
 *                                 ?from to pass
 *   POST /v1/runs/<id>/cancel     request cancellation
 *   GET  /v1/runs/<id>/report     final report, ?format=json|csv,
 *                                 ?host_timing=1; 409 until done.
 *                                 Byte-identical to the batch path.
 *   GET  /v1/runs/<id>/html       live HTML report (text/html)
 *
 * handle() is a pure HttpRequest -> HttpResponse function so every
 * route is unit-testable without sockets; serve() owns the listening
 * socket and runs one short-lived thread per connection (one request,
 * one response, close — ctcpctl reconnects per call).
 *
 * Correlation: every connection gets an X-Ctcp-Trace-Id (the client's
 * if supplied, generated otherwise), echoed in the response and
 * attached to the request's structured log record, so one campaign's
 * activity can be grepped across a whole daemon fleet's logs. Metrics,
 * logs, and trace ids are operational side channels only — they never
 * touch reports, journals, or the simulator hot path (DESIGN
 * decision 13).
 */

#ifndef CTCPSIM_SERVICE_SERVER_HH
#define CTCPSIM_SERVICE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>

#include "obs/metrics.hh"
#include "service/http.hh"
#include "service/registry.hh"

namespace ctcp::service {

class ServiceServer
{
  public:
    struct Config
    {
        std::string socketPath;
        RunRegistry::Config registry;
        /** Log one line per request to stderr. */
        bool verbose = false;
        /** Long-poll ceiling for ?wait= (seconds). */
        double maxWaitSeconds = 30.0;
        /**
         * Per-connection I/O deadline (seconds, <= 0 = none): the
         * budget for reading one request and, separately, for writing
         * one response. A client that stops sending or draining is
         * cut off instead of wedging a server thread (and stalling
         * graceful shutdown, which waits for active connections).
         * Long polls don't count against it: they run inside
         * handle(), between the request read and the response write,
         * so each side of the deadline only covers honest I/O time.
         */
        double ioDeadlineSeconds = 30.0;
    };

    /** @throws SimError (Config) when the state dir cannot be set up */
    explicit ServiceServer(Config config);
    ~ServiceServer();

    ServiceServer(const ServiceServer &) = delete;
    ServiceServer &operator=(const ServiceServer &) = delete;

    /** Route one request (pure; no socket involved). */
    HttpResponse handle(const HttpRequest &req);

    /**
     * Bind the socket and serve until @p stop becomes true (typically
     * set by a SIGTERM/SIGINT handler). On return the socket file is
     * removed and the registry has been shut down gracefully:
     * in-flight jobs journaled, queued jobs skipped.
     * @return 0 on clean shutdown, 2 when the socket cannot be bound
     */
    int serve(const std::atomic<bool> &stop);

    RunRegistry &registry() { return registry_; }
    obs::MetricsRegistry &metrics() { return metrics_; }

  private:
    void handleConnection(int fd);
    /** The routing switch handle() wraps with trace-id echoing. */
    HttpResponse route(const HttpRequest &req);
    /** Sync scrape-time families and render the Prometheus text. */
    std::string metricsExposition();
    /** Request count/latency/bytes for one answered request. */
    void recordRequest(const HttpRequest &req, const HttpResponse &resp,
                       double seconds);

    Config config_;
    RunRegistry registry_;
    obs::MetricsRegistry metrics_;

    std::mutex connMutex_;
    std::condition_variable connIdle_;
    std::size_t activeConnections_ = 0;
};

} // namespace ctcp::service

#endif // CTCPSIM_SERVICE_SERVER_HH
