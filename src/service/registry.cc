#include "service/registry.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include <dirent.h>
#include <sys/stat.h>

#include "campaign/journal.hh"
#include "campaign/matrix.hh"
#include "common/atomic_file.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/sim_error.hh"
#include "obs/report.hh"
#include "service/http.hh"

namespace ctcp::service {

namespace {

/** mkdir -p: create @p path and any missing parents. */
void
makeDirs(const std::string &path)
{
    std::string prefix;
    std::size_t start = 0;
    while (start <= path.size()) {
        std::size_t end = path.find('/', start);
        if (end == std::string::npos)
            end = path.size();
        prefix = path.substr(0, end);
        if (!prefix.empty() && prefix != "." && prefix != "..") {
            if (::mkdir(prefix.c_str(), 0777) != 0 && errno != EEXIST)
                throw SimError(ErrorCategory::Config,
                               "cannot create state directory " +
                                   prefix + ": " + std::strerror(errno));
        }
        if (end == path.size())
            break;
        start = end + 1;
    }
}

std::string
slurp(const std::string &path)
{
    std::string text;
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        return text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0)
        text.append(buf, n);
    std::fclose(file);
    return text;
}

} // namespace

const char *
runStateName(RunState state)
{
    switch (state) {
      case RunState::Queued:    return "queued";
      case RunState::Running:   return "running";
      case RunState::Done:      return "done";
      case RunState::Cancelled: return "cancelled";
      case RunState::Error:     return "error";
    }
    return "error";
}

bool
runStateTerminal(RunState state)
{
    return state == RunState::Done || state == RunState::Cancelled ||
        state == RunState::Error;
}

/** All mutable per-run state; guarded by its own mutex. */
struct RunRegistry::Run
{
    std::string id;
    std::string spec;
    SubmitOptions options;
    std::vector<campaign::Job> jobs;
    /**
     * jobs[i]'s campaign-wide slot index (identity unless the spec
     * carries a slots= shard subset). Journal records use these, so a
     * shard's journal merges into its campaign's by index.
     */
    std::vector<std::size_t> slotMap;
    std::string journalPath;

    mutable std::mutex mutex;
    mutable std::condition_variable cv;
    RunState state = RunState::Queued;
    std::size_t done = 0;
    std::size_t failed = 0;
    std::atomic<bool> cancel{false};
    campaign::Report report; ///< valid once terminal
    std::string error;       ///< valid when state == Error
    std::thread runner;
};

RunRegistry::RunRegistry(Config config)
    : config_(std::move(config)), pool_(config_.workers),
      cache_(config_.cacheEntries)
{
    if (config_.stateDir.empty())
        throw SimError(ErrorCategory::Config,
                       "run registry needs a state directory");
    makeDirs(config_.stateDir);
}

RunRegistry::~RunRegistry()
{
    shutdown();
}

std::string
RunRegistry::journalPath(const std::string &id) const
{
    return config_.stateDir + "/" + id + ".journal.jsonl";
}

std::string
RunRegistry::specPath(const std::string &id) const
{
    return config_.stateDir + "/" + id + ".spec.json";
}

RunRegistry::Run *
RunRegistry::findLocked(const std::string &id) const
{
    const auto it = runs_.find(id);
    return it == runs_.end() ? nullptr : it->second.get();
}

void
RunRegistry::startLocked(Run &run)
{
    // Jobs pull their Programs from the shared cache; the copy keeps
    // the engine's jobs-share-no-mutable-state guarantee, and the
    // cache throws the exact error a batch builder would, so failure
    // reports stay byte-identical too.
    for (campaign::Job &job : run.jobs) {
        job.builder = [this, name = job.benchmark,
                       limit = job.config.instructionLimit] {
            return Program(*cache_.get(name, limit));
        };
    }
    run.runner = std::thread(&RunRegistry::runnerMain, this, &run);
}

void
RunRegistry::runnerMain(Run *run)
{
    {
        std::lock_guard<std::mutex> lock(run->mutex);
        run->state = RunState::Running;
    }
    run->cv.notify_all();

    campaign::Options options;
    options.pool = &pool_;
    options.journalPath = run->journalPath;
    options.slotIndexMap = run->slotMap;
    options.accounting = run->options.accounting;
    options.maxAttempts = run->options.maxAttempts;
    options.jobDeadlineSeconds = run->options.jobDeadlineSeconds;
    options.cancelRequested = [this, run] {
        return run->cancel.load(std::memory_order_relaxed) ||
            shuttingDown_.load(std::memory_order_relaxed);
    };
    options.onJobFinished = [this, run](std::size_t,
                                        const campaign::JobOutcome &out) {
        {
            std::lock_guard<std::mutex> lock(run->mutex);
            ++run->done;
            if (!out.ok())
                ++run->failed;
        }
        jobStats_.completed.fetch_add(1, std::memory_order_relaxed);
        if (out.attempts > 1)
            jobStats_.retried.fetch_add(out.attempts - 1,
                                        std::memory_order_relaxed);
        if (!out.ok()) {
            const auto bucket = static_cast<std::size_t>(out.category);
            if (bucket < 7)
                jobStats_.failed[bucket].fetch_add(
                    1, std::memory_order_relaxed);
        }
        run->cv.notify_all();
    };

    try {
        campaign::Report report = campaign::runCampaign(run->jobs,
                                                        options);
        // Cancelled only when cancellation actually skipped a job: a
        // cancel that lands after the last job finished still yields
        // the complete, final report.
        bool any_cancelled = false;
        for (const campaign::JobOutcome &out : report.jobs)
            if (!out.ok() &&
                out.category == ErrorCategory::Cancelled)
                any_cancelled = true;
        std::lock_guard<std::mutex> lock(run->mutex);
        run->report = std::move(report);
        run->state = any_cancelled ? RunState::Cancelled
                                   : RunState::Done;
    } catch (const std::exception &e) {
        std::lock_guard<std::mutex> lock(run->mutex);
        run->error = e.what();
        run->state = RunState::Error;
    }
    run->cv.notify_all();
}

std::string
RunRegistry::submit(const std::string &spec, const SubmitOptions &options)
{
    if (shuttingDown_.load())
        throw SimError(ErrorCategory::Cancelled,
                       "daemon is shutting down");
    // Validate before allocating an id: a bad spec must not leave a
    // half-created run behind.
    std::vector<std::size_t> slot_map;
    std::vector<campaign::Job> jobs = campaign::parseMatrix(spec,
                                                            slot_map);

    auto run = std::make_unique<Run>();
    run->spec = spec;
    run->options = options;
    run->jobs = std::move(jobs);
    run->slotMap = std::move(slot_map);

    std::lock_guard<std::mutex> lock(mutex_);
    char id[16];
    std::snprintf(id, sizeof(id), "r%04u", nextId_++);
    run->id = id;
    run->journalPath = journalPath(run->id);

    // Persist the submission first: once submit() returns an id, a
    // daemon restart must be able to resume this run.
    std::string record = "{\"spec\":\"" + jsonEscape(spec) + "\"";
    record += ",\"accounting\":";
    record += options.accounting ? "true" : "false";
    record += ",\"maxAttempts\":" + std::to_string(options.maxAttempts);
    char deadline[64];
    std::snprintf(deadline, sizeof(deadline),
                  ",\"jobDeadlineSeconds\":%.17g}\n",
                  options.jobDeadlineSeconds);
    record += deadline;
    try {
        atomicWriteFile(specPath(run->id), record);
    } catch (const std::exception &e) {
        throw SimError(ErrorCategory::Config,
                       "cannot persist spec: " + std::string(e.what()));
    }

    Run &ref = *run;
    runs_[ref.id] = std::move(run);
    startLocked(ref);
    return ref.id;
}

std::size_t
RunRegistry::resume()
{
    static const std::string suffix = ".spec.json";
    std::vector<std::string> ids;
    if (DIR *dir = ::opendir(config_.stateDir.c_str())) {
        while (const dirent *entry = ::readdir(dir)) {
            const std::string name = entry->d_name;
            if (name.size() > suffix.size() &&
                name.compare(name.size() - suffix.size(),
                             suffix.size(), suffix) == 0)
                ids.push_back(
                    name.substr(0, name.size() - suffix.size()));
        }
        ::closedir(dir);
    }
    std::sort(ids.begin(), ids.end());

    std::size_t resumed = 0;
    for (const std::string &id : ids) {
        const std::string text = slurp(specPath(id));
        SubmitOptions options;
        std::string spec;
        try {
            const json::Value doc = json::parse(text);
            spec = doc.str("spec");
            const json::Value *acc = doc.find("accounting");
            options.accounting = acc && acc->boolean;
            options.maxAttempts = static_cast<unsigned>(
                doc.num("maxAttempts", 1.0));
            options.jobDeadlineSeconds =
                doc.num("jobDeadlineSeconds", 0.0);
        } catch (const std::exception &e) {
            ctcp_warn("state dir: cannot parse %s: %s — skipped",
                      specPath(id).c_str(), e.what());
            continue;
        }

        auto run = std::make_unique<Run>();
        run->id = id;
        run->spec = spec;
        run->options = options;
        run->journalPath = journalPath(id);
        try {
            run->jobs = campaign::parseMatrix(spec, run->slotMap);
        } catch (const std::exception &e) {
            ctcp_warn("state dir: spec of %s no longer parses: %s — "
                      "skipped", id.c_str(), e.what());
            continue;
        }

        std::lock_guard<std::mutex> lock(mutex_);
        if (runs_.count(id))
            continue;
        if (id.size() > 1 && id[0] == 'r') {
            const unsigned n = static_cast<unsigned>(
                std::strtoul(id.c_str() + 1, nullptr, 10));
            if (n >= nextId_)
                nextId_ = n + 1;
        }
        Run &ref = *run;
        runs_[id] = std::move(run);
        // Scrape-visible resume accounting: how many runs came back
        // and how many finished jobs their journals replay.
        jobStats_.resumedRuns.fetch_add(1, std::memory_order_relaxed);
        jobStats_.replayedJobs.fetch_add(
            campaign::loadJournal(ref.journalPath).size(),
            std::memory_order_relaxed);
        startLocked(ref);
        ++resumed;
    }
    return resumed;
}

RunRegistry::JobStats
RunRegistry::jobStats() const
{
    JobStats out;
    out.completed = jobStats_.completed.load(std::memory_order_relaxed);
    out.retried = jobStats_.retried.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < 7; ++i)
        out.failed[i] =
            jobStats_.failed[i].load(std::memory_order_relaxed);
    out.resumedRuns =
        jobStats_.resumedRuns.load(std::memory_order_relaxed);
    out.replayedJobs =
        jobStats_.replayedJobs.load(std::memory_order_relaxed);
    return out;
}

std::uint64_t
RunRegistry::journalBytes() const
{
    std::vector<std::string> paths;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        paths.reserve(runs_.size());
        for (const auto &[id, run] : runs_)
            paths.push_back(run->journalPath);
    }
    std::uint64_t total = 0;
    for (const std::string &path : paths) {
        struct stat st;
        if (::stat(path.c_str(), &st) == 0)
            total += static_cast<std::uint64_t>(st.st_size);
    }
    return total;
}

bool
RunRegistry::cancel(const std::string &id)
{
    Run *run;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        run = findLocked(id);
    }
    if (!run)
        return false;
    run->cancel.store(true);
    run->cv.notify_all();
    return true;
}

RunInfo
RunRegistry::snapshot(const Run &run) const
{
    std::lock_guard<std::mutex> lock(run.mutex);
    RunInfo info;
    info.id = run.id;
    info.spec = run.spec;
    info.state = run.state;
    info.totalJobs = run.jobs.size();
    info.doneJobs = run.done;
    info.failedJobs = run.failed;
    info.accounting = run.options.accounting;
    info.maxAttempts = run.options.maxAttempts;
    info.cancelRequested = run.cancel.load();
    info.error = run.error;
    return info;
}

bool
RunRegistry::info(const std::string &id, RunInfo &out) const
{
    Run *run;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        run = findLocked(id);
    }
    if (!run)
        return false;
    out = snapshot(*run);
    return true;
}

std::vector<RunInfo>
RunRegistry::list() const
{
    std::vector<Run *> runs;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        runs.reserve(runs_.size());
        for (const auto &[id, run] : runs_)
            runs.push_back(run.get());
    }
    std::vector<RunInfo> out;
    out.reserve(runs.size());
    for (const Run *run : runs)
        out.push_back(snapshot(*run));
    return out;
}

std::size_t
RunRegistry::runCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return runs_.size();
}

bool
RunRegistry::events(const std::string &id, std::uint64_t offset,
                    double waitSeconds, std::string &bytes,
                    std::uint64_t &next, RunState &state) const
{
    Run *run;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        run = findLocked(id);
    }
    if (!run)
        return false;

    using clock = std::chrono::steady_clock;
    const auto deadline = clock::now() +
        std::chrono::duration_cast<clock::duration>(
            std::chrono::duration<double>(std::max(0.0, waitSeconds)));
    while (true) {
        bytes = campaign::readJournalTail(run->journalPath, offset,
                                          next);
        std::unique_lock<std::mutex> lock(run->mutex);
        state = run->state;
        if (!bytes.empty() || runStateTerminal(state) ||
            shuttingDown_.load() || clock::now() >= deadline)
            return true;
        // Re-check the file at least every 200ms even without a
        // notification: journal appends come from pool workers that
        // only notify this run's cv, not the tail readers of others.
        run->cv.wait_until(
            lock, std::min(deadline,
                           clock::now() +
                               std::chrono::milliseconds(200)));
    }
}

bool
RunRegistry::finalReport(const std::string &id, bool csv,
                         bool host_timing, std::string &out,
                         std::string &error) const
{
    Run *run;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        run = findLocked(id);
    }
    if (!run) {
        error = "no such run '" + id + "'";
        return false;
    }
    std::lock_guard<std::mutex> lock(run->mutex);
    if (run->state != RunState::Done) {
        error = "run " + id + " is " + runStateName(run->state) +
            "; the final report requires state done";
        return false;
    }
    out = csv ? run->report.toCsv(run->options.accounting)
              : run->report.toJson(host_timing,
                                   run->options.accounting);
    return true;
}

bool
RunRegistry::htmlReport(const std::string &id, std::string &html) const
{
    Run *run;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        run = findLocked(id);
    }
    if (!run)
        return false;

    // Snapshot the run as a campaign Report: the stored one when the
    // run is over, otherwise a live view replayed from the journal
    // with not-yet-finished jobs marked pending.
    std::string json_text;
    {
        std::lock_guard<std::mutex> lock(run->mutex);
        if (runStateTerminal(run->state) &&
            run->state != RunState::Error) {
            json_text = run->report.toJson(false, true);
        } else {
            campaign::Report live;
            live.jobs.resize(run->jobs.size());
            for (std::size_t i = 0; i < run->jobs.size(); ++i) {
                live.jobs[i].label = run->jobs[i].label;
                live.jobs[i].benchmark = run->jobs[i].benchmark;
                live.jobs[i].status = campaign::JobStatus::Failed;
                live.jobs[i].error = "pending";
            }
            for (campaign::JournalRecord &rec :
                 campaign::loadJournal(run->journalPath)) {
                // Journal indices are campaign-wide; map them back to
                // this run's local job order (identity without a
                // slots= subset).
                for (std::size_t i = 0; i < run->slotMap.size(); ++i) {
                    if (run->slotMap[i] != rec.index)
                        continue;
                    if (rec.outcome.label == live.jobs[i].label)
                        live.jobs[i] = std::move(rec.outcome);
                    break;
                }
            }
            json_text = live.toJson(false, true);
        }
    }
    html = report::renderHtmlFromJson(json_text, "",
                                      "ctcpd run " + id);
    return true;
}

bool
RunRegistry::wait(const std::string &id, double waitSeconds,
                  RunInfo &out) const
{
    Run *run;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        run = findLocked(id);
    }
    if (!run)
        return false;

    using clock = std::chrono::steady_clock;
    const auto deadline = clock::now() +
        std::chrono::duration_cast<clock::duration>(
            std::chrono::duration<double>(std::max(0.0, waitSeconds)));
    {
        std::unique_lock<std::mutex> lock(run->mutex);
        while (!runStateTerminal(run->state) &&
               !shuttingDown_.load() && clock::now() < deadline)
            run->cv.wait_until(
                lock,
                std::min(deadline, clock::now() +
                                       std::chrono::milliseconds(200)));
    }
    out = snapshot(*run);
    return true;
}

void
RunRegistry::shutdown()
{
    shuttingDown_.store(true);

    std::vector<Run *> runs;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &[id, run] : runs_)
            runs.push_back(run.get());
    }
    // Wake every long-poller and cancel-check, then wait for the
    // runner threads: in-flight jobs finish (and hit the journal);
    // queued jobs drain as cancelled without running.
    for (Run *run : runs)
        run->cv.notify_all();
    for (Run *run : runs)
        if (run->runner.joinable())
            run->runner.join();
    pool_.shutdown();
}

} // namespace ctcp::service
