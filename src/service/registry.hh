/**
 * @file
 * Run registry: the ctcpd daemon's campaign lifecycle manager.
 *
 * Every submitted matrix spec becomes a Run: a journaled campaign
 * executing on the registry's one persistent worker pool, shared by
 * all runs. The registry persists two files per run under its state
 * directory —
 *
 *   <id>.spec.json       what was submitted (spec + options)
 *   <id>.journal.jsonl   the PR 4 append-only outcome journal
 *
 * — and that pair is the whole durability story: on daemon restart,
 * resume() re-submits every recorded spec and runCampaign() replays
 * the journal, so finished jobs are not re-run and the final report
 * is byte-identical to an uninterrupted campaign. The journal doubles
 * as the event stream (readJournalTail) served to clients.
 *
 * Contract: a campaign submitted here must produce a final report
 * byte-identical to `ctcpsim --campaign` with the same spec — the
 * registry only composes existing campaign-engine pieces (parseMatrix
 * jobs, runCampaign, the journal) and a workload cache whose builders
 * are observationally identical to the batch path's.
 */

#ifndef CTCPSIM_SERVICE_REGISTRY_HH
#define CTCPSIM_SERVICE_REGISTRY_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "campaign/campaign.hh"
#include "campaign/persistent_pool.hh"
#include "service/workload_cache.hh"

namespace ctcp::service {

/** Lifecycle of one submitted campaign. */
enum class RunState : std::uint8_t
{
    Queued,    ///< accepted, jobs not yet dispatched
    Running,   ///< jobs executing on the shared pool
    Done,      ///< every job has a final outcome
    Cancelled, ///< cancelled before completion; journal keeps finished jobs
    Error,     ///< the campaign itself failed (e.g. unopenable journal)
};

const char *runStateName(RunState state);
bool runStateTerminal(RunState state);

/** Status snapshot of one run (what GET /v1/runs/<id> serves). */
struct RunInfo
{
    std::string id;
    std::string spec;
    RunState state = RunState::Queued;
    std::size_t totalJobs = 0;
    std::size_t doneJobs = 0;   ///< outcomes finalized (incl. replayed)
    std::size_t failedJobs = 0; ///< non-ok outcomes so far
    bool accounting = false;
    unsigned maxAttempts = 1;
    bool cancelRequested = false;
    std::string error; ///< diagnostic when state == Error
};

/** Owns the worker pool, the workload cache, and every run. */
class RunRegistry
{
  public:
    struct Config
    {
        /** Journals + spec files live here; created if missing. */
        std::string stateDir;
        /** Shared pool size; 0 = one per hardware thread. */
        unsigned workers = 0;
        /** WorkloadCache capacity. */
        std::size_t cacheEntries = 64;
    };

    struct SubmitOptions
    {
        bool accounting = false;
        unsigned maxAttempts = 1;
        double jobDeadlineSeconds = 0.0;
    };

    /** @throws SimError (Config) when the state dir cannot be created */
    explicit RunRegistry(Config config);
    ~RunRegistry();

    RunRegistry(const RunRegistry &) = delete;
    RunRegistry &operator=(const RunRegistry &) = delete;

    /**
     * Validate @p spec (parseMatrix), persist it, and start it on the
     * pool. @return the new run id ("r0001", ...).
     * @throws std::invalid_argument on a malformed spec
     * @throws SimError when the registry is shutting down or the spec
     *         cannot be persisted
     */
    std::string submit(const std::string &spec,
                       const SubmitOptions &options);

    /**
     * Re-submit every spec recorded in the state directory (daemon
     * restart). Runs whose journal is already complete replay to Done
     * without executing anything; interrupted runs re-run only their
     * missing jobs. @return the number of resumed runs.
     */
    std::size_t resume();

    /** Request cancellation. @return false for an unknown id. */
    bool cancel(const std::string &id);

    /** Status snapshot. @return false for an unknown id. */
    bool info(const std::string &id, RunInfo &out) const;

    /** Snapshots of every run, in id order. */
    std::vector<RunInfo> list() const;

    /**
     * Journal-tail event stream: complete records from byte
     * @p offset. Blocks up to @p waitSeconds for new bytes when none
     * are immediately available and the run is still active (long
     * poll). @p next receives the offset to pass next time.
     * @return false for an unknown id
     */
    bool events(const std::string &id, std::uint64_t offset,
                double waitSeconds, std::string &bytes,
                std::uint64_t &next, RunState &state) const;

    /**
     * The final aggregated report, byte-identical to the batch path.
     * Only available once the run is Done; @return false otherwise
     * (with a diagnostic in @p error).
     */
    bool finalReport(const std::string &id, bool csv, bool host_timing,
                     std::string &out, std::string &error) const;

    /**
     * Render the live HTML report from the journal as it stands now
     * (pending jobs shown as such); works mid-run.
     * @return false for an unknown id
     */
    bool htmlReport(const std::string &id, std::string &html) const;

    /**
     * Block until @p id reaches a terminal state or @p waitSeconds
     * elapse. @return false for an unknown id.
     */
    bool wait(const std::string &id, double waitSeconds,
              RunInfo &out) const;

    /**
     * Graceful shutdown: cancel every active run (in-flight jobs
     * finish and are journaled; queued jobs are skipped), join the
     * runner threads, and drain the pool. Idempotent.
     */
    void shutdown();

    unsigned workers() const { return pool_.workers(); }
    WorkloadCache::Stats cacheStats() const { return cache_.stats(); }
    std::size_t runCount() const;

    /**
     * Monotonic job-lifecycle totals across every run, for the
     * /v1/metrics scrape (synced into Prometheus counters with
     * Counter::incTo). Plain atomics here so the campaign path gains
     * no obs dependency and no extra locking.
     */
    struct JobStats
    {
        std::uint64_t completed = 0; ///< outcomes finalized (any status)
        std::uint64_t retried = 0;   ///< extra attempts beyond the first
        /** Failed outcomes, bucketed by ErrorCategory value. */
        std::uint64_t failed[7] = {};
        std::uint64_t resumedRuns = 0;   ///< runs re-submitted by resume()
        std::uint64_t replayedJobs = 0;  ///< journal records resume() found
    };

    JobStats jobStats() const;

    /** Total on-disk bytes of every run's journal right now. */
    std::uint64_t journalBytes() const;

    /** Pool occupancy for the metrics scrape. */
    campaign::PersistentPool::Snapshot poolSnapshot() const
    {
        return pool_.snapshot();
    }

  private:
    struct Run;

    void runnerMain(Run *run);
    std::string journalPath(const std::string &id) const;
    std::string specPath(const std::string &id) const;
    void startLocked(Run &run);
    Run *findLocked(const std::string &id) const;
    RunInfo snapshot(const Run &run) const;

    Config config_;
    campaign::PersistentPool pool_;
    WorkloadCache cache_;
    std::atomic<bool> shuttingDown_{false};

    /** JobStats backing store (relaxed atomics; see jobStats()). */
    struct
    {
        std::atomic<std::uint64_t> completed{0};
        std::atomic<std::uint64_t> retried{0};
        std::atomic<std::uint64_t> failed[7] = {};
        std::atomic<std::uint64_t> resumedRuns{0};
        std::atomic<std::uint64_t> replayedJobs{0};
    } jobStats_;

    mutable std::mutex mutex_; ///< guards runs_ / nextId_
    std::map<std::string, std::unique_ptr<Run>> runs_;
    unsigned nextId_ = 1;
};

} // namespace ctcp::service

#endif // CTCPSIM_SERVICE_REGISTRY_HH
