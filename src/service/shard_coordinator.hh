/**
 * @file
 * Sharded campaign coordinator: fan one campaign matrix out across
 * several ctcpd daemons and merge their journal streams back into one
 * report byte-identical to a single-host `ctcpsim --campaign` run.
 *
 * Model (DESIGN decision 12): journals are the source of truth and
 * merging is order-independent by slot index.
 *
 *  - Each shard receives the original spec plus a `slots=` clause
 *    naming the global job indices it owns, so every journal record a
 *    shard streams back already carries its campaign-wide slot index
 *    (campaign::Options::slotIndexMap) and labels identical to the
 *    full expansion.
 *  - Slots are assigned by a deterministic FNV-1a hash of the job
 *    label over the currently-live shards.
 *  - One thread per shard submits the sub-campaign and long-polls
 *    /v1/runs/<id>/events, appending validated whole journal lines to
 *    a local merged journal. Records are deduplicated by slot index,
 *    first-complete-wins, so failover re-execution and out-of-order
 *    arrival cannot change the result.
 *  - Every exchange is bounded by connect/read/write deadlines and
 *    retried with capped exponential backoff plus deterministic
 *    jitter; a shard exceeding maxConsecutiveFailures has its circuit
 *    opened and is dropped from the round.
 *  - After each round the completed-slot bitmap (i.e. journal replay)
 *    says exactly which slots are missing; they are rehashed across
 *    the surviving shards. With no shards left, the coordinator
 *    degrades gracefully to local execution.
 *  - The final report is produced by campaign::runCampaign() over the
 *    merged journal: a pure replay when the shards delivered
 *    everything (byte-identical by the journal round-trip contract),
 *    and transparent local execution of whatever is missing otherwise.
 *
 * tools/ctcp_merge drives the same merge + replay path offline over
 * shard journal files, for post-hoc recovery when the coordinator
 * itself dies.
 */

#ifndef CTCPSIM_SERVICE_SHARD_COORDINATOR_HH
#define CTCPSIM_SERVICE_SHARD_COORDINATOR_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "campaign/journal.hh"
#include "service/registry.hh"

namespace ctcp::service {

/** Robustness knobs for every shard exchange. */
struct ShardPolicy
{
    double connectTimeoutSeconds = 5.0;
    /**
     * Read deadline for plain exchanges; event long-polls get this on
     * top of pollWaitSeconds so a healthy idle poll never times out.
     */
    double readTimeoutSeconds = 20.0;
    double writeTimeoutSeconds = 10.0;
    /** Server-side long-poll budget per events request. */
    double pollWaitSeconds = 5.0;
    /** Backoff after the k-th consecutive failure: min(cap, base*2^k),
     *  halved-to-full by deterministic jitter. */
    double backoffBaseSeconds = 0.1;
    double backoffCapSeconds = 2.0;
    /** Consecutive transport failures before the circuit opens. */
    unsigned maxConsecutiveFailures = 4;
    /** Jitter stream seed (tests pin it; any value works). */
    std::uint64_t jitterSeed = 1;
    /** Run slots no shard delivered locally instead of failing. */
    bool localFallback = true;
    /** Worker threads for the local fallback (0 = hardware threads). */
    unsigned localWorkers = 0;
};

/** Per-shard counters; each maps to one defense a test can assert. */
struct ShardStats
{
    std::string socket;
    std::size_t assignedSlots = 0;    ///< across all rounds
    std::size_t completedSlots = 0;   ///< records accepted from here
    std::size_t duplicateSlots = 0;   ///< dropped, slot already complete
    std::size_t rejectedRecords = 0;  ///< bad index/label, never merged
    std::size_t transportFailures = 0;///< failed exchanges (any cause)
    std::size_t backoffSleeps = 0;    ///< capped-backoff waits taken
    std::size_t tornChunks = 0;       ///< event bodies cut mid-record
    std::size_t healthProbes = 0;     ///< pre-batch pings attempted
    std::size_t circuitBreaks = 0;    ///< closed->open transitions
    bool circuitOpen = false;         ///< dropped after repeated failure
};

/** What runShardedCampaign() hands back. */
struct ShardedReport
{
    campaign::Report report;
    std::vector<ShardStats> shards;
    /** Slots re-hashed to surviving shards after a shard died. */
    std::size_t reassignedSlots = 0;
    /** Slots executed locally because no shard delivered them. */
    std::size_t locallyRunSlots = 0;
    /** Merged journal actually used (empty once a temp was cleaned). */
    std::string journalPath;
};

struct ShardOptions
{
    /** Campaign matrix spec; must not itself carry a slots= clause. */
    std::string spec;
    /** ctcpd unix-socket paths, one per shard (at least one). */
    std::vector<std::string> sockets;
    /** Forwarded to every shard and applied to the local fallback. */
    RunRegistry::SubmitOptions submit;
    ShardPolicy policy;
    /**
     * Merged journal path. Pre-existing records are honored (resuming
     * a died coordinator), and the file is left behind on failure for
     * tools/ctcp_merge recovery. Empty = a temporary file, removed
     * after a successful run.
     */
    std::string journalPath;
    /** Serialized progress lines ("sockB [3/8] gzip/base/fdrt: ok"). */
    std::function<void(const std::string &)> progress;
    /**
     * Correlation id sent as X-Ctcp-Trace-Id on every exchange with
     * every shard, so one campaign greps out of the whole fleet's
     * structured logs. Empty = untraced (no header sent).
     */
    std::string traceId;
};

/**
 * Run @p options.spec across the shards and aggregate the outcomes.
 * @throws SimError (Config) on a malformed spec, a spec already
 *         sharded with slots=, or no sockets; SimError (Internal)
 *         when slots remain undelivered and localFallback is off.
 */
ShardedReport runShardedCampaign(const ShardOptions &options);

// ---- Deterministic building blocks (unit-tested directly) --------------

/** FNV-1a 64-bit hash of @p label. */
std::uint64_t shardHash(const std::string &label);

/** Which of @p shardCount live shards owns the job labelled @p label. */
std::size_t shardOfLabel(const std::string &label,
                         std::size_t shardCount);

/**
 * Backoff before retry number @p failureCount (1-based): raw delay
 * min(cap, base * 2^(failureCount-1)), jittered into [raw/2, raw] by
 * an xorshift64 step of @p rngState — deterministic per seed.
 */
double shardBackoffSeconds(unsigned failureCount,
                           const ShardPolicy &policy,
                           std::uint64_t &rngState);

/** Compress sorted slot indices into a slots= value ("0-3,7,9-10"). */
std::string formatSlotRanges(const std::vector<std::size_t> &slots);

/** One event-stream chunk split into whole journal lines. */
struct ParsedChunk
{
    struct Entry
    {
        campaign::JournalRecord record;
        std::string line; ///< raw bytes incl. trailing newline
    };
    std::vector<Entry> entries;
    /** Bytes of whole lines consumed (advance the ?from offset by
     *  exactly this much — never trust a torn tail). */
    std::size_t consumedBytes = 0;
    /** Complete lines that failed to decode (corrupt, skipped). */
    std::size_t corruptLines = 0;
    /** Chunk ended mid-line: transport truncation, the server only
     *  ever sends whole newline-terminated records. */
    bool torn = false;
};

ParsedChunk parseJournalChunk(const std::string &chunk);

/** Offline shard-journal merge (the ctcp_merge core). */
struct MergeResult
{
    std::size_t merged = 0;     ///< records written to the output
    std::size_t duplicates = 0; ///< dropped, slot already merged
    std::size_t mismatched = 0; ///< dropped, index/label not in campaign
    std::vector<std::size_t> missingSlots; ///< jobs with no record
};

/**
 * Merge every record of @p inputs (in file order — first-complete-wins
 * across files) that belongs to @p jobs into a fresh journal at
 * @p outPath. Replaying that journal through runCampaign() yields the
 * merged report; missingSlots lists what such a replay would re-run.
 * @throws SimError (Config) when @p outPath cannot be written
 */
MergeResult mergeJournalFiles(const std::vector<std::string> &inputs,
                              const std::vector<campaign::Job> &jobs,
                              const std::string &outPath);

} // namespace ctcp::service

#endif // CTCPSIM_SERVICE_SHARD_COORDINATOR_HH
