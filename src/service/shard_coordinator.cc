#include "service/shard_coordinator.hh"

#include <algorithm>
#include <chrono>
#include <cctype>
#include <cstdio>
#include <mutex>
#include <thread>

#include <unistd.h>

#include "campaign/matrix.hh"
#include "common/sim_error.hh"
#include "service/client.hh"

namespace ctcp::service {

// ---- Deterministic building blocks -------------------------------------

std::uint64_t
shardHash(const std::string &label)
{
    std::uint64_t h = 14695981039346656037ull; // FNV offset basis
    for (const char c : label) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull; // FNV prime
    }
    return h;
}

std::size_t
shardOfLabel(const std::string &label, std::size_t shardCount)
{
    return shardCount <= 1
        ? 0
        : static_cast<std::size_t>(shardHash(label) % shardCount);
}

double
shardBackoffSeconds(unsigned failureCount, const ShardPolicy &policy,
                    std::uint64_t &rngState)
{
    double raw = policy.backoffBaseSeconds;
    for (unsigned k = 1; k < failureCount &&
                         raw < policy.backoffCapSeconds; ++k)
        raw *= 2.0;
    raw = std::min(raw, policy.backoffCapSeconds);
    // xorshift64: cheap, seedable, and identical on every platform —
    // the jitter stream is part of the deterministic test contract.
    std::uint64_t x = rngState ? rngState : 0x9e3779b97f4a7c15ull;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    rngState = x;
    const double unit =
        static_cast<double>(x % 1000000ull) / 1000000.0;
    return raw * (0.5 + 0.5 * unit); // [raw/2, raw]
}

std::string
formatSlotRanges(const std::vector<std::size_t> &slots)
{
    std::string out;
    std::size_t i = 0;
    while (i < slots.size()) {
        std::size_t j = i;
        while (j + 1 < slots.size() && slots[j + 1] == slots[j] + 1)
            ++j;
        if (!out.empty())
            out += ',';
        out += std::to_string(slots[i]);
        if (j > i)
            out += '-' + std::to_string(slots[j]);
        i = j + 1;
    }
    return out;
}

ParsedChunk
parseJournalChunk(const std::string &chunk)
{
    ParsedChunk out;
    std::size_t start = 0;
    while (start < chunk.size()) {
        const std::size_t nl = chunk.find('\n', start);
        if (nl == std::string::npos) {
            // The server only sends whole newline-terminated lines; a
            // trailing fragment means the transport cut the stream.
            out.torn = true;
            break;
        }
        const std::string line = chunk.substr(start, nl - start + 1);
        start = nl + 1;
        out.consumedBytes += line.size();
        ParsedChunk::Entry entry;
        if (campaign::decodeJournalRecord(line, entry.record)) {
            entry.line = line;
            out.entries.push_back(std::move(entry));
        } else {
            ++out.corruptLines;
        }
    }
    return out;
}

MergeResult
mergeJournalFiles(const std::vector<std::string> &inputs,
                  const std::vector<campaign::Job> &jobs,
                  const std::string &outPath)
{
    MergeResult result;
    std::vector<char> merged(jobs.size(), 0);
    std::FILE *out = std::fopen(outPath.c_str(), "wb");
    if (!out)
        throw SimError(ErrorCategory::Config,
                       "cannot write merged journal " + outPath);
    for (const std::string &input : inputs) {
        for (const campaign::JournalRecord &rec :
             campaign::loadJournal(input)) {
            if (rec.index >= jobs.size() ||
                rec.outcome.label != jobs[rec.index].label) {
                ++result.mismatched;
                continue;
            }
            if (merged[rec.index]) {
                ++result.duplicates;
                continue;
            }
            merged[rec.index] = 1;
            // Re-encoding is exact: the journal's %.17g round-trip
            // contract makes decode(encode(decode(x))) == decode(x).
            const std::string line =
                campaign::encodeJournalRecord(rec.index, rec.outcome);
            std::fwrite(line.data(), 1, line.size(), out);
            ++result.merged;
        }
    }
    std::fclose(out);
    for (std::size_t i = 0; i < jobs.size(); ++i)
        if (!merged[i])
            result.missingSlots.push_back(i);
    return result;
}

// ---- The coordinator ---------------------------------------------------

namespace {

using campaign::Job;

/** Pull "r0001" out of the submit response {"id":"r0001",...}. */
std::string
extractRunId(const std::string &body)
{
    static const std::string key = "\"id\":\"";
    const std::size_t at = body.find(key);
    if (at == std::string::npos)
        return {};
    const std::size_t end = body.find('"', at + key.size());
    if (end == std::string::npos)
        return {};
    return body.substr(at + key.size(), end - at - key.size());
}

class Coordinator
{
  public:
    explicit Coordinator(const ShardOptions &options)
        : options_(options)
    {}

    ShardedReport run();

  private:
    struct Shard
    {
        ShardStats stats;
        unsigned consecutive = 0; ///< failures since last success
        std::uint64_t rng = 1;
    };

    void note(const std::string &line);
    bool circuitOpen(std::size_t s);
    void noteFailure(std::size_t s, const std::string &what);
    /**
     * One exchange with retry/backoff. @return true with a response
     * of @p expectStatus; false once the shard's circuit is open.
     * @throws SimError (Config) on HTTP 400 — a rejected spec is
     * deterministic and must abort the campaign, not retry.
     */
    bool exchangeWithRetry(std::size_t s, const std::string &method,
                           const std::string &target,
                           const std::string &body, int expectStatus,
                           double readTimeout, HttpResponse &resp);
    void acceptEntry(std::size_t s, const ParsedChunk::Entry &entry);
    void runBatch(std::size_t s, const std::vector<std::size_t> &slots);

    const ShardOptions &options_;
    std::vector<Job> jobs_;
    std::vector<Shard> shards_;

    std::mutex mutex_; ///< guards everything below + shard stats
    std::vector<char> completed_;
    std::size_t completedCount_ = 0;
    std::FILE *merged_ = nullptr;
    std::string fatalError_; ///< first config-fatal error from a batch
};

void
Coordinator::note(const std::string &line)
{
    if (!options_.progress)
        return;
    // One shard thread at a time; mutex_ also orders lines with the
    // merge they describe.
    options_.progress(line);
}

bool
Coordinator::circuitOpen(std::size_t s)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return shards_[s].stats.circuitOpen;
}

void
Coordinator::noteFailure(std::size_t s, const std::string &what)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Shard &shard = shards_[s];
    ++shard.stats.transportFailures;
    ++shard.consecutive;
    if (shard.consecutive >=
            options_.policy.maxConsecutiveFailures &&
        !shard.stats.circuitOpen) {
        shard.stats.circuitOpen = true;
        ++shard.stats.circuitBreaks;
        note("shard " + shard.stats.socket + ": circuit opened after " +
             std::to_string(shard.consecutive) +
             " consecutive failures (" + what + ")");
    } else if (!shard.stats.circuitOpen) {
        note("shard " + shard.stats.socket + ": " + what + " (failure " +
             std::to_string(shard.consecutive) + "/" +
             std::to_string(options_.policy.maxConsecutiveFailures) +
             ")");
    }
}

bool
Coordinator::exchangeWithRetry(std::size_t s, const std::string &method,
                               const std::string &target,
                               const std::string &body, int expectStatus,
                               double readTimeout, HttpResponse &resp)
{
    ClientOptions copts;
    copts.connectTimeoutSeconds =
        options_.policy.connectTimeoutSeconds;
    copts.writeTimeoutSeconds = options_.policy.writeTimeoutSeconds;
    copts.readTimeoutSeconds = readTimeout;
    if (!options_.traceId.empty())
        copts.headers.emplace_back(traceIdHeader, options_.traceId);
    const std::string &socket = shards_[s].stats.socket;
    while (true) {
        if (circuitOpen(s))
            return false;
        std::string error;
        if (httpRequest(socket, method, target, body, copts, resp,
                        error)) {
            if (resp.status == expectStatus) {
                std::lock_guard<std::mutex> lock(mutex_);
                shards_[s].consecutive = 0;
                return true;
            }
            if (resp.status == 400)
                throw SimError(ErrorCategory::Config,
                               "shard " + socket + " rejected " +
                                   method + " " + target + ": " +
                                   resp.body);
            error = "HTTP " + std::to_string(resp.status) + " from " +
                method + " " + target;
        }
        noteFailure(s, error);
        unsigned failures = 0;
        double delay = 0.0;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            Shard &shard = shards_[s];
            if (shard.stats.circuitOpen)
                return false;
            failures = shard.consecutive;
            delay = shardBackoffSeconds(failures, options_.policy,
                                        shard.rng);
            ++shard.stats.backoffSleeps;
        }
        std::this_thread::sleep_for(
            std::chrono::duration<double>(delay));
    }
}

void
Coordinator::acceptEntry(std::size_t s, const ParsedChunk::Entry &entry)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Shard &shard = shards_[s];
    const std::size_t slot = entry.record.index;
    if (slot >= jobs_.size() ||
        entry.record.outcome.label != jobs_[slot].label) {
        ++shard.stats.rejectedRecords;
        return;
    }
    if (completed_[slot]) {
        // First-complete-wins: a slot re-executed after presumed shard
        // death may stream in twice; only the first record merges.
        ++shard.stats.duplicateSlots;
        return;
    }
    completed_[slot] = 1;
    ++completedCount_;
    ++shard.stats.completedSlots;
    std::fwrite(entry.line.data(), 1, entry.line.size(), merged_);
    std::fflush(merged_);
    note(shard.stats.socket + " [" + std::to_string(completedCount_) +
         "/" + std::to_string(jobs_.size()) + "] " +
         entry.record.outcome.label + ": " +
         (entry.record.outcome.ok() ? "ok" : "FAILED"));
}

void
Coordinator::runBatch(std::size_t s, const std::vector<std::size_t> &slots)
{
    try {
        const ShardPolicy &policy = options_.policy;
        HttpResponse resp;
        // Health check: don't hand jobs to a shard that can't even
        // answer a ping (counts toward its circuit like any call).
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++shards_[s].stats.healthProbes;
        }
        if (!exchangeWithRetry(s, "GET", "/v1/ping", "", 200,
                               policy.readTimeoutSeconds, resp))
            return;

        std::string target = "/v1/runs?max_attempts=" +
            std::to_string(options_.submit.maxAttempts);
        if (options_.submit.accounting)
            target += "&accounting=1";
        if (options_.submit.jobDeadlineSeconds > 0.0) {
            char buf[64];
            std::snprintf(buf, sizeof(buf), "&deadline=%.17g",
                          options_.submit.jobDeadlineSeconds);
            target += buf;
        }
        const std::string sub_spec =
            options_.spec + ";slots=" + formatSlotRanges(slots);
        if (!exchangeWithRetry(s, "POST", target, sub_spec, 201,
                               policy.readTimeoutSeconds, resp))
            return;
        const std::string id = extractRunId(resp.body);
        if (id.empty()) {
            noteFailure(s, "unparseable submit response");
            return;
        }

        // Stream the shard's journal. The offset only ever advances
        // by whole consumed lines — a truncated chunk is re-polled
        // from the last complete record, never trusted.
        std::uint64_t from = 0;
        const double event_read_timeout =
            policy.readTimeoutSeconds + policy.pollWaitSeconds;
        while (true) {
            char wait[32];
            std::snprintf(wait, sizeof(wait), "%.3f",
                          policy.pollWaitSeconds);
            const std::string events_target = "/v1/runs/" + id +
                "/events?from=" + std::to_string(from) +
                "&wait=" + wait;
            if (!exchangeWithRetry(s, "GET", events_target, "", 200,
                                   event_read_timeout, resp))
                return;
            const ParsedChunk chunk = parseJournalChunk(resp.body);
            if (chunk.torn) {
                std::lock_guard<std::mutex> lock(mutex_);
                ++shards_[s].stats.tornChunks;
            }
            if (!resp.body.empty() && chunk.consumedBytes == 0) {
                // A non-empty chunk without one whole line cannot come
                // from a healthy daemon: count it like a failed
                // exchange so a permanently-truncating path opens the
                // circuit instead of live-locking the stream.
                noteFailure(s, "torn event chunk");
                if (circuitOpen(s))
                    return;
                unsigned failures = 0;
                double delay = 0.0;
                {
                    std::lock_guard<std::mutex> lock(mutex_);
                    Shard &shard = shards_[s];
                    failures = shard.consecutive;
                    delay = shardBackoffSeconds(
                        failures, policy, shard.rng);
                    ++shard.stats.backoffSleeps;
                }
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(delay));
                continue;
            }
            for (const ParsedChunk::Entry &entry : chunk.entries)
                acceptEntry(s, entry);
            from += chunk.consumedBytes;
            // Terminal state with an empty tail = the journal is
            // complete (ctcpd journals before it flips the state); a
            // cancelled or errored shard run simply leaves its
            // missing slots to the reassignment round.
            const std::string state = [&] {
                for (const auto &[name, value] : resp.headers)
                    if (name == "x-ctcp-run-state")
                        return value;
                return std::string();
            }();
            if (resp.body.empty() &&
                (state == "done" || state == "cancelled" ||
                 state == "error"))
                return;
        }
    } catch (const SimError &e) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (fatalError_.empty())
            fatalError_ = e.what();
    }
}

ShardedReport
Coordinator::run()
{
    const ShardPolicy &policy = options_.policy;
    if (options_.sockets.empty())
        throw SimError(ErrorCategory::Config,
                       "sharded campaign needs at least one shard "
                       "socket");

    // The full, unsharded campaign; also rejects malformed specs
    // before anything is submitted anywhere. A user spec must not
    // itself be sharded: the coordinator owns the slots= clause (a
    // slots=0 subset is indistinguishable from a full campaign by
    // expansion alone, so check the clause keys, not the slot map).
    std::size_t clause_start = 0;
    const std::string &spec = options_.spec;
    while (clause_start <= spec.size()) {
        std::size_t clause_end = spec.find(';', clause_start);
        if (clause_end == std::string::npos)
            clause_end = spec.size();
        std::string key =
            spec.substr(clause_start, clause_end - clause_start);
        key.erase(std::min(key.size(), key.find('=')));
        key.erase(std::remove_if(key.begin(), key.end(),
                                 [](unsigned char c) {
                                     return std::isspace(c);
                                 }),
                  key.end());
        if (key == "slots")
            throw SimError(ErrorCategory::Config,
                           "spec already carries a slots= clause; "
                           "shard subsets are composed by the "
                           "coordinator");
        if (clause_end == spec.size())
            break;
        clause_start = clause_end + 1;
    }
    jobs_ = campaign::parseMatrix(spec);

    shards_.resize(options_.sockets.size());
    for (std::size_t s = 0; s < shards_.size(); ++s) {
        shards_[s].stats.socket = options_.sockets[s];
        shards_[s].rng = policy.jitterSeed + s + 1;
    }

    // Merged journal: the coordinator's source of truth. Honoring
    // pre-existing records resumes a previously-killed coordinator.
    std::string journal_path = options_.journalPath;
    bool temp_journal = false;
    if (journal_path.empty()) {
        char tmpl[] = "/tmp/ctcp-shard-XXXXXX";
        const int fd = ::mkstemp(tmpl);
        if (fd < 0)
            throw SimError(ErrorCategory::Config,
                           "cannot create a temporary merged journal");
        ::close(fd);
        journal_path = tmpl;
        temp_journal = true;
    }
    completed_.assign(jobs_.size(), 0);
    for (const campaign::JournalRecord &rec :
         campaign::loadJournal(journal_path)) {
        if (rec.index < jobs_.size() &&
            rec.outcome.label == jobs_[rec.index].label &&
            !completed_[rec.index]) {
            completed_[rec.index] = 1;
            ++completedCount_;
        }
    }
    merged_ = std::fopen(journal_path.c_str(), "ab");
    if (!merged_)
        throw SimError(ErrorCategory::Config,
                       "cannot open merged journal " + journal_path);

    ShardedReport result;
    result.journalPath = journal_path;

    // Assignment rounds: hash every missing slot across the live
    // shards, stream the batches, and re-hash whatever is still
    // missing across the survivors. Shards only leave the pool by
    // circuit-break, so the loop is bounded by shard count — plus a
    // no-progress guard for the degenerate all-shards-wedged case.
    std::size_t round = 0;
    while (true) {
        std::vector<std::size_t> remaining;
        std::vector<std::size_t> alive;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            for (std::size_t i = 0; i < jobs_.size(); ++i)
                if (!completed_[i])
                    remaining.push_back(i);
            for (std::size_t s = 0; s < shards_.size(); ++s)
                if (!shards_[s].stats.circuitOpen)
                    alive.push_back(s);
        }
        if (remaining.empty() || alive.empty())
            break;
        if (round > 0) {
            result.reassignedSlots += remaining.size();
            note("reassigning " + std::to_string(remaining.size()) +
                 " slot(s) across " + std::to_string(alive.size()) +
                 " surviving shard(s)");
        }

        std::vector<std::vector<std::size_t>> batches(alive.size());
        for (const std::size_t slot : remaining)
            batches[shardOfLabel(jobs_[slot].label, alive.size())]
                .push_back(slot);

        const std::size_t before_completed = completedCount_;
        const std::size_t before_alive = alive.size();
        std::vector<std::thread> threads;
        for (std::size_t k = 0; k < alive.size(); ++k) {
            if (batches[k].empty())
                continue;
            const std::size_t s = alive[k];
            {
                std::lock_guard<std::mutex> lock(mutex_);
                shards_[s].stats.assignedSlots += batches[k].size();
            }
            threads.emplace_back(&Coordinator::runBatch, this, s,
                                 batches[k]);
        }
        for (std::thread &t : threads)
            t.join();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!fatalError_.empty()) {
                std::fclose(merged_);
                throw SimError(ErrorCategory::Config, fatalError_);
            }
        }

        std::size_t now_alive = 0;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            for (const Shard &shard : shards_)
                if (!shard.stats.circuitOpen)
                    ++now_alive;
        }
        if (completedCount_ == before_completed &&
            now_alive == before_alive)
            break; // wedged: no new slots, no newly-dead shards
        ++round;
    }
    std::fclose(merged_);
    merged_ = nullptr;

    std::vector<std::size_t> missing;
    for (std::size_t i = 0; i < jobs_.size(); ++i)
        if (!completed_[i])
            missing.push_back(i);
    if (!missing.empty() && !policy.localFallback)
        throw SimError(ErrorCategory::Internal,
                       std::to_string(missing.size()) +
                           " slot(s) undelivered after shard failures "
                           "and local fallback is disabled; merged "
                           "journal kept at " + journal_path);
    if (!missing.empty())
        note("running " + std::to_string(missing.size()) +
             " undelivered slot(s) locally");
    result.locallyRunSlots = missing.size();

    // Merge-then-replay: with every slot delivered this replays the
    // merged journal without executing anything; with shards lost it
    // transparently runs the missing slots right here. Either way the
    // report is the submission-order aggregate — byte-identical to
    // the single-host batch path.
    campaign::Options local;
    local.journalPath = journal_path;
    local.jobs = policy.localWorkers;
    local.accounting = options_.submit.accounting;
    local.maxAttempts = options_.submit.maxAttempts;
    local.jobDeadlineSeconds = options_.submit.jobDeadlineSeconds;
    if (options_.progress)
        local.progress = [this](const std::string &line) {
            options_.progress("local " + line);
        };
    result.report = campaign::runCampaign(jobs_, local);

    {
        std::lock_guard<std::mutex> lock(mutex_);
        result.shards.reserve(shards_.size());
        for (const Shard &shard : shards_)
            result.shards.push_back(shard.stats);
    }
    if (temp_journal) {
        ::unlink(journal_path.c_str());
        result.journalPath.clear();
    }
    return result;
}

} // namespace

ShardedReport
runShardedCampaign(const ShardOptions &options)
{
    Coordinator coordinator(options);
    return coordinator.run();
}

} // namespace ctcp::service
