/**
 * @file
 * Hand-rolled HTTP/1.1 over unix-domain sockets for the ctcpd service.
 *
 * Like src/common/json, this is deliberately not a general
 * implementation: it parses the requests ctcpctl (and curl
 * --unix-socket) send and writes plain Content-Length responses —
 * no chunked transfer, no keep-alive (every exchange is one
 * request, one response, Connection: close), no TLS, no external
 * dependencies. The parsing half is pure string-in/struct-out so the
 * protocol is unit-testable without sockets; the fd helpers wrap the
 * blocking socket I/O both binaries share.
 */

#ifndef CTCPSIM_SERVICE_HTTP_HH
#define CTCPSIM_SERVICE_HTTP_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ctcp::service {

/** Hard caps keeping a misbehaving peer from ballooning memory. */
constexpr std::size_t maxHeaderBytes = 64 * 1024;
constexpr std::size_t maxBodyBytes = 4 * 1024 * 1024;

/** One parsed request: method, split target, headers, body. */
struct HttpRequest
{
    std::string method;               // "GET", "POST", ...
    std::string path;                 // "/v1/runs/r0001", %-decoded
    /** Query parameters in order of appearance, %-decoded. */
    std::vector<std::pair<std::string, std::string>> query;
    /** Headers in order of appearance; names lower-cased. */
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;

    /** Header value by (case-insensitive) name, "" when absent. */
    std::string header(const std::string &name) const;
    /** Query parameter value, @p fallback when absent. */
    std::string queryParam(const std::string &name,
                           const std::string &fallback = "") const;
};

/** One response to serialize. */
struct HttpResponse
{
    int status = 200;
    std::string contentType = "application/json";
    /**
     * Extra headers (e.g. X-Ctcp-Next-Offset for event paging).
     * Serialized with the casing given here; parseResponse() fills
     * names lower-cased (header names are case-insensitive, and the
     * parser is shared with the request side), so clients match
     * against "x-ctcp-next-offset".
     */
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;
};

/** Canonical reason phrase ("OK", "Not Found", ...). */
const char *statusText(int status);

/**
 * Parse a complete request (head + body) from @p raw.
 * @return false with a diagnostic in @p error on malformed input,
 *         oversized sections, or a body shorter than Content-Length
 */
bool parseRequest(const std::string &raw, HttpRequest &req,
                  std::string &error);

/** Serialize @p resp with Content-Length and Connection: close. */
std::string serializeResponse(const HttpResponse &resp);

/**
 * Parse a serialized response (the client half).
 * @return false with a diagnostic in @p error on malformed input
 */
bool parseResponse(const std::string &raw, HttpResponse &resp,
                   std::string &error);

/** Decode %xx escapes and '+' (query components). */
std::string percentDecode(const std::string &text);

/** JSON string escaping for hand-built response bodies. */
std::string jsonEscape(const std::string &text);

/**
 * A fresh correlation id for the X-Ctcp-Trace-Id header: 16 lowercase
 * hex digits, unique per process lifetime (seeded from the clock and
 * pid, advanced per call). Operational side channel only — trace ids
 * never influence run output.
 */
std::string makeTraceId();

/** The header every request/response carries once traced. */
inline constexpr const char *traceIdHeader = "X-Ctcp-Trace-Id";

// ---- Unix-socket I/O ---------------------------------------------------
//
// Every helper taking a @p timeoutSeconds applies it as an overall
// deadline for the whole operation (not per chunk); <= 0 means "no
// deadline". All socket writes use MSG_NOSIGNAL, so a peer that went
// away surfaces as a clean EPIPE error instead of killing the process
// with SIGPIPE.

/**
 * Create, bind and listen on a unix-domain socket at @p path (an
 * existing socket file is unlinked first — the daemon owns its path).
 * @return the listening fd, or -1 with a diagnostic in @p error
 */
int listenUnix(const std::string &path, std::string &error);

/**
 * Connect to the daemon's socket.
 * @return the connected fd, or -1 with a diagnostic in @p error
 */
int connectUnix(const std::string &path, std::string &error);

/** As above, but give up after @p timeoutSeconds. */
int connectUnix(const std::string &path, double timeoutSeconds,
                std::string &error);

/**
 * Read one complete request from @p fd (headers, then Content-Length
 * body bytes). @return false on EOF, I/O error, or malformed input.
 */
bool readRequest(int fd, HttpRequest &req, std::string &error);

/** As above, but fail once @p timeoutSeconds elapse mid-read. */
bool readRequest(int fd, HttpRequest &req, double timeoutSeconds,
                 std::string &error);

/** Write all of @p bytes to @p fd. @return false on error. */
bool writeAll(int fd, const std::string &bytes);

/**
 * Write all of @p bytes, failing once @p timeoutSeconds elapse — a
 * reader that stops draining its socket cannot wedge the writer.
 */
bool writeAll(int fd, const std::string &bytes, double timeoutSeconds,
              std::string &error);

/** Read until EOF (the peer closes after one response). */
std::string readAll(int fd);

/**
 * Read until EOF with a deadline. @return false (with partial bytes
 * in @p out) on timeout or I/O error.
 */
bool readAll(int fd, double timeoutSeconds, std::string &out,
             std::string &error);

} // namespace ctcp::service

#endif // CTCPSIM_SERVICE_HTTP_HH
