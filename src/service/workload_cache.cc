#include "service/workload_cache.hh"

#include <stdexcept>

#include "workload/workload.hh"

namespace ctcp::service {

std::shared_ptr<const Program>
WorkloadCache::get(const std::string &benchmark,
                   std::uint64_t instructionLimit)
{
    const std::string key =
        benchmark + "@" + std::to_string(instructionLimit);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (it->key == key) {
                ++stats_.hits;
                entries_.splice(entries_.begin(), entries_, it);
                return entries_.front().program;
            }
        }
    }
    // Build outside the lock: a slow builder must not stall every
    // worker that happens to hit a different benchmark. A racing
    // build of the same key produces an identical Program
    // (deterministic builders), so last-insert-wins is harmless.
    if (!workloads::exists(benchmark))
        throw std::invalid_argument("unknown benchmark '" + benchmark +
                                    "'");
    auto program =
        std::make_shared<const Program>(workloads::build(benchmark));
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.misses;
    entries_.push_front(Entry{key, program});
    while (entries_.size() > maxEntries_) {
        entries_.pop_back();
        ++stats_.evictions;
    }
    return program;
}

WorkloadCache::Stats
WorkloadCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Stats out = stats_;
    out.entries = entries_.size();
    return out;
}

} // namespace ctcp::service
