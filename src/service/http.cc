#include "service/http.hh"

#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace ctcp::service {

namespace {

std::string
toLower(std::string s)
{
    for (char &c : s)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return s;
}

int
hexDigit(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

/** Split "a=1&b=2" into decoded pairs. */
std::vector<std::pair<std::string, std::string>>
parseQuery(const std::string &text)
{
    std::vector<std::pair<std::string, std::string>> out;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t end = text.find('&', start);
        if (end == std::string::npos)
            end = text.size();
        const std::string item = text.substr(start, end - start);
        if (!item.empty()) {
            const std::size_t eq = item.find('=');
            if (eq == std::string::npos)
                out.emplace_back(percentDecode(item), "");
            else
                out.emplace_back(percentDecode(item.substr(0, eq)),
                                 percentDecode(item.substr(eq + 1)));
        }
        if (end == text.size())
            break;
        start = end + 1;
    }
    return out;
}

/**
 * Split the head into lines and parse "Name: value" headers into
 * @p headers. @p head excludes the blank separator line.
 */
bool
parseHeaderLines(const std::string &head, std::size_t first_line_end,
                 std::vector<std::pair<std::string, std::string>> &headers,
                 std::string &error)
{
    std::size_t pos = first_line_end;
    while (pos < head.size()) {
        std::size_t end = head.find("\r\n", pos);
        if (end == std::string::npos)
            end = head.size();
        const std::string line = head.substr(pos, end - pos);
        pos = end + 2;
        if (line.empty())
            continue;
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos) {
            error = "malformed header line '" + line + "'";
            return false;
        }
        std::string value = line.substr(colon + 1);
        std::size_t v0 = 0;
        while (v0 < value.size() &&
               (value[v0] == ' ' || value[v0] == '\t'))
            ++v0;
        std::size_t v1 = value.size();
        while (v1 > v0 &&
               (value[v1 - 1] == ' ' || value[v1 - 1] == '\t' ||
                value[v1 - 1] == '\r'))
            --v1;
        headers.emplace_back(toLower(line.substr(0, colon)),
                             value.substr(v0, v1 - v0));
    }
    return true;
}

std::size_t
contentLength(const std::vector<std::pair<std::string, std::string>> &hs)
{
    for (const auto &[name, value] : hs)
        if (name == "content-length")
            return static_cast<std::size_t>(
                std::strtoull(value.c_str(), nullptr, 10));
    return 0;
}

} // namespace

std::string
HttpRequest::header(const std::string &name) const
{
    const std::string key = toLower(name);
    for (const auto &[n, v] : headers)
        if (n == key)
            return v;
    return {};
}

std::string
HttpRequest::queryParam(const std::string &name,
                        const std::string &fallback) const
{
    for (const auto &[n, v] : query)
        if (n == name)
            return v;
    return fallback;
}

const char *
statusText(int status)
{
    switch (status) {
      case 200: return "OK";
      case 201: return "Created";
      case 202: return "Accepted";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 409: return "Conflict";
      case 413: return "Payload Too Large";
      case 500: return "Internal Server Error";
      case 503: return "Service Unavailable";
      default:  return "Unknown";
    }
}

std::string
percentDecode(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (c == '+') {
            out += ' ';
        } else if (c == '%' && i + 2 < text.size() &&
                   hexDigit(text[i + 1]) >= 0 &&
                   hexDigit(text[i + 2]) >= 0) {
            out += static_cast<char>(hexDigit(text[i + 1]) * 16 +
                                     hexDigit(text[i + 2]));
            i += 2;
        } else {
            out += c;
        }
    }
    return out;
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
makeTraceId()
{
    // splitmix64 over a process-unique seed + per-call counter: cheap,
    // collision-resistant enough for correlation ids, and free of any
    // dependency on the deterministic simulation RNGs.
    static std::atomic<std::uint64_t> counter{0};
    std::uint64_t x =
        static_cast<std::uint64_t>(
            std::chrono::steady_clock::now().time_since_epoch().count()) ^
        (static_cast<std::uint64_t>(::getpid()) << 32) ^
        (counter.fetch_add(1, std::memory_order_relaxed) * 0x9e3779b97f4a7c15ull);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(x));
    return buf;
}

bool
parseRequest(const std::string &raw, HttpRequest &req, std::string &error)
{
    const std::size_t head_end = raw.find("\r\n\r\n");
    if (head_end == std::string::npos) {
        error = "truncated request (no header terminator)";
        return false;
    }
    if (head_end > maxHeaderBytes) {
        error = "request head too large";
        return false;
    }
    const std::string head = raw.substr(0, head_end + 2);

    std::size_t line_end = head.find("\r\n");
    const std::string request_line = head.substr(0, line_end);
    const std::size_t sp1 = request_line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : request_line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
        error = "malformed request line '" + request_line + "'";
        return false;
    }
    HttpRequest parsed;
    parsed.method = request_line.substr(0, sp1);
    const std::string target =
        request_line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::string version = request_line.substr(sp2 + 1);
    if (version.compare(0, 5, "HTTP/") != 0) {
        error = "malformed request line '" + request_line + "'";
        return false;
    }
    const std::size_t qmark = target.find('?');
    if (qmark == std::string::npos) {
        parsed.path = percentDecode(target);
    } else {
        parsed.path = percentDecode(target.substr(0, qmark));
        parsed.query = parseQuery(target.substr(qmark + 1));
    }
    if (!parseHeaderLines(head, line_end + 2, parsed.headers, error))
        return false;

    const std::size_t length = contentLength(parsed.headers);
    if (length > maxBodyBytes) {
        error = "request body too large";
        return false;
    }
    if (raw.size() - (head_end + 4) < length) {
        error = "truncated request body";
        return false;
    }
    parsed.body = raw.substr(head_end + 4, length);
    req = std::move(parsed);
    return true;
}

std::string
serializeResponse(const HttpResponse &resp)
{
    std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " +
        statusText(resp.status) + "\r\n";
    out += "Content-Type: " + resp.contentType + "\r\n";
    out += "Content-Length: " + std::to_string(resp.body.size()) +
        "\r\n";
    for (const auto &[name, value] : resp.headers)
        out += name + ": " + value + "\r\n";
    out += "Connection: close\r\n\r\n";
    out += resp.body;
    return out;
}

bool
parseResponse(const std::string &raw, HttpResponse &resp,
              std::string &error)
{
    const std::size_t head_end = raw.find("\r\n\r\n");
    if (head_end == std::string::npos) {
        error = "truncated response (no header terminator)";
        return false;
    }
    const std::string head = raw.substr(0, head_end + 2);
    const std::size_t line_end = head.find("\r\n");
    const std::string status_line = head.substr(0, line_end);
    const std::size_t sp1 = status_line.find(' ');
    if (status_line.compare(0, 5, "HTTP/") != 0 ||
        sp1 == std::string::npos) {
        error = "malformed status line '" + status_line + "'";
        return false;
    }
    HttpResponse parsed;
    parsed.status =
        static_cast<int>(std::strtol(status_line.c_str() + sp1 + 1,
                                     nullptr, 10));
    if (parsed.status < 100 || parsed.status > 599) {
        error = "malformed status line '" + status_line + "'";
        return false;
    }
    if (!parseHeaderLines(head, line_end + 2, parsed.headers, error))
        return false;
    for (const auto &[name, value] : parsed.headers)
        if (name == "content-type")
            parsed.contentType = value;
    // Trust Content-Length when present (and sane); fall back to
    // everything-until-EOF, which is what Connection: close implies.
    const std::size_t length = contentLength(parsed.headers);
    const std::size_t available = raw.size() - (head_end + 4);
    parsed.body = raw.substr(head_end + 4,
                             length && length <= available ? length
                                                           : available);
    resp = std::move(parsed);
    return true;
}

// ---- Unix-socket I/O ---------------------------------------------------

namespace {

using Clock = std::chrono::steady_clock;

/**
 * One absolute deadline shared by every poll/read/send of an
 * operation; timeoutSeconds <= 0 disables it.
 */
struct Deadline
{
    bool armed = false;
    Clock::time_point when;

    explicit Deadline(double timeoutSeconds)
    {
        if (timeoutSeconds > 0.0) {
            armed = true;
            when = Clock::now() +
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(timeoutSeconds));
        }
    }

    bool expired() const { return armed && Clock::now() >= when; }

    /** Remaining budget as a poll() timeout (-1 = infinite). */
    int pollMillis() const
    {
        if (!armed)
            return -1;
        const auto left =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                when - Clock::now()).count();
        if (left <= 0)
            return 0;
        return static_cast<int>(left > 60'000 ? 60'000 : left);
    }
};

bool
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 &&
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/**
 * Wait for @p events on @p fd. @return 1 ready, 0 deadline expired,
 * -1 poll error.
 */
int
waitFd(int fd, short events, const Deadline &deadline)
{
    while (true) {
        if (deadline.expired())
            return 0;
        pollfd p{};
        p.fd = fd;
        p.events = events;
        const int r = ::poll(&p, 1, deadline.pollMillis());
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return -1;
        }
        if (r > 0)
            return 1;
        // r == 0: poll's clamped slice elapsed — loop back and
        // re-check the deadline.
    }
}

} // namespace

int
listenUnix(const std::string &path, std::string &error)
{
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path)) {
        error = "socket path too long (max " +
            std::to_string(sizeof(addr.sun_path) - 1) + " bytes): " +
            path;
        return -1;
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        error = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    ::unlink(path.c_str());
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        error = "bind " + path + ": " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    if (::listen(fd, 64) != 0) {
        error = "listen " + path + ": " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

int
connectUnix(const std::string &path, std::string &error)
{
    return connectUnix(path, 0.0, error);
}

int
connectUnix(const std::string &path, double timeoutSeconds,
            std::string &error)
{
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path)) {
        error = "socket path too long: " + path;
        return -1;
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        error = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    if (!setNonBlocking(fd)) {
        error = std::string("fcntl: ") + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (errno != EINPROGRESS && errno != EAGAIN) {
            error = "connect " + path + ": " + std::strerror(errno);
            ::close(fd);
            return -1;
        }
        const Deadline deadline(timeoutSeconds);
        const int ready = waitFd(fd, POLLOUT, deadline);
        if (ready <= 0) {
            error = "connect " + path + ": " +
                (ready == 0 ? "timed out" : std::strerror(errno));
            ::close(fd);
            return -1;
        }
        int soerr = 0;
        socklen_t len = sizeof(soerr);
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) != 0 ||
            soerr != 0) {
            error = "connect " + path + ": " +
                std::strerror(soerr ? soerr : errno);
            ::close(fd);
            return -1;
        }
    }
    // The fd stays non-blocking; readRequest/writeAll/readAll all go
    // through poll() and handle EAGAIN.
    return fd;
}

bool
readRequest(int fd, HttpRequest &req, std::string &error)
{
    return readRequest(fd, req, 0.0, error);
}

bool
readRequest(int fd, HttpRequest &req, double timeoutSeconds,
            std::string &error)
{
    setNonBlocking(fd);
    const Deadline deadline(timeoutSeconds);
    std::string raw;
    char buf[4096];
    std::size_t head_end = std::string::npos;
    std::size_t want = 0; // total bytes once the head is known
    while (true) {
        if (head_end == std::string::npos) {
            head_end = raw.find("\r\n\r\n");
            if (head_end != std::string::npos) {
                // Peek at Content-Length to know how much body to
                // expect; full validation happens in parseRequest.
                std::vector<std::pair<std::string, std::string>> hs;
                std::string ignored;
                const std::size_t line_end = raw.find("\r\n");
                parseHeaderLines(raw.substr(0, head_end + 2),
                                 line_end + 2, hs, ignored);
                const std::size_t length = contentLength(hs);
                if (length > maxBodyBytes) {
                    error = "request body too large";
                    return false;
                }
                want = head_end + 4 + length;
            } else if (raw.size() > maxHeaderBytes) {
                error = "request head too large";
                return false;
            }
        }
        if (head_end != std::string::npos && raw.size() >= want)
            break;
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                const int ready = waitFd(fd, POLLIN, deadline);
                if (ready == 1)
                    continue;
                error = ready == 0
                    ? "read: timed out"
                    : std::string("poll: ") + std::strerror(errno);
                return false;
            }
            error = std::string("read: ") + std::strerror(errno);
            return false;
        }
        if (n == 0) {
            error = raw.empty() ? "empty request"
                                : "connection closed mid-request";
            return false;
        }
        raw.append(buf, static_cast<std::size_t>(n));
    }
    return parseRequest(raw, req, error);
}

bool
writeAll(int fd, const std::string &bytes)
{
    std::string ignored;
    return writeAll(fd, bytes, 0.0, ignored);
}

bool
writeAll(int fd, const std::string &bytes, double timeoutSeconds,
         std::string &error)
{
    setNonBlocking(fd);
    const Deadline deadline(timeoutSeconds);
    std::size_t off = 0;
    while (off < bytes.size()) {
        // MSG_NOSIGNAL: a vanished reader yields EPIPE, not SIGPIPE.
        const ssize_t n = ::send(fd, bytes.data() + off,
                                 bytes.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                const int ready = waitFd(fd, POLLOUT, deadline);
                if (ready == 1)
                    continue;
                error = ready == 0
                    ? "write: timed out"
                    : std::string("poll: ") + std::strerror(errno);
                return false;
            }
            error = std::string("write: ") + std::strerror(errno);
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

std::string
readAll(int fd)
{
    std::string out;
    std::string ignored;
    readAll(fd, 0.0, out, ignored);
    return out;
}

bool
readAll(int fd, double timeoutSeconds, std::string &out,
        std::string &error)
{
    setNonBlocking(fd);
    const Deadline deadline(timeoutSeconds);
    char buf[4096];
    while (true) {
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                const int ready = waitFd(fd, POLLIN, deadline);
                if (ready == 1)
                    continue;
                error = ready == 0
                    ? "read: timed out"
                    : std::string("poll: ") + std::strerror(errno);
                return false;
            }
            error = std::string("read: ") + std::strerror(errno);
            return false;
        }
        if (n == 0)
            return true;
        out.append(buf, static_cast<std::size_t>(n));
    }
}

} // namespace ctcp::service
