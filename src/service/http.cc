#include "service/http.hh"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace ctcp::service {

namespace {

std::string
toLower(std::string s)
{
    for (char &c : s)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return s;
}

int
hexDigit(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

/** Split "a=1&b=2" into decoded pairs. */
std::vector<std::pair<std::string, std::string>>
parseQuery(const std::string &text)
{
    std::vector<std::pair<std::string, std::string>> out;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t end = text.find('&', start);
        if (end == std::string::npos)
            end = text.size();
        const std::string item = text.substr(start, end - start);
        if (!item.empty()) {
            const std::size_t eq = item.find('=');
            if (eq == std::string::npos)
                out.emplace_back(percentDecode(item), "");
            else
                out.emplace_back(percentDecode(item.substr(0, eq)),
                                 percentDecode(item.substr(eq + 1)));
        }
        if (end == text.size())
            break;
        start = end + 1;
    }
    return out;
}

/**
 * Split the head into lines and parse "Name: value" headers into
 * @p headers. @p head excludes the blank separator line.
 */
bool
parseHeaderLines(const std::string &head, std::size_t first_line_end,
                 std::vector<std::pair<std::string, std::string>> &headers,
                 std::string &error)
{
    std::size_t pos = first_line_end;
    while (pos < head.size()) {
        std::size_t end = head.find("\r\n", pos);
        if (end == std::string::npos)
            end = head.size();
        const std::string line = head.substr(pos, end - pos);
        pos = end + 2;
        if (line.empty())
            continue;
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos) {
            error = "malformed header line '" + line + "'";
            return false;
        }
        std::string value = line.substr(colon + 1);
        std::size_t v0 = 0;
        while (v0 < value.size() &&
               (value[v0] == ' ' || value[v0] == '\t'))
            ++v0;
        std::size_t v1 = value.size();
        while (v1 > v0 &&
               (value[v1 - 1] == ' ' || value[v1 - 1] == '\t' ||
                value[v1 - 1] == '\r'))
            --v1;
        headers.emplace_back(toLower(line.substr(0, colon)),
                             value.substr(v0, v1 - v0));
    }
    return true;
}

std::size_t
contentLength(const std::vector<std::pair<std::string, std::string>> &hs)
{
    for (const auto &[name, value] : hs)
        if (name == "content-length")
            return static_cast<std::size_t>(
                std::strtoull(value.c_str(), nullptr, 10));
    return 0;
}

} // namespace

std::string
HttpRequest::header(const std::string &name) const
{
    const std::string key = toLower(name);
    for (const auto &[n, v] : headers)
        if (n == key)
            return v;
    return {};
}

std::string
HttpRequest::queryParam(const std::string &name,
                        const std::string &fallback) const
{
    for (const auto &[n, v] : query)
        if (n == name)
            return v;
    return fallback;
}

const char *
statusText(int status)
{
    switch (status) {
      case 200: return "OK";
      case 201: return "Created";
      case 202: return "Accepted";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 409: return "Conflict";
      case 413: return "Payload Too Large";
      case 500: return "Internal Server Error";
      case 503: return "Service Unavailable";
      default:  return "Unknown";
    }
}

std::string
percentDecode(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (c == '+') {
            out += ' ';
        } else if (c == '%' && i + 2 < text.size() &&
                   hexDigit(text[i + 1]) >= 0 &&
                   hexDigit(text[i + 2]) >= 0) {
            out += static_cast<char>(hexDigit(text[i + 1]) * 16 +
                                     hexDigit(text[i + 2]));
            i += 2;
        } else {
            out += c;
        }
    }
    return out;
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

bool
parseRequest(const std::string &raw, HttpRequest &req, std::string &error)
{
    const std::size_t head_end = raw.find("\r\n\r\n");
    if (head_end == std::string::npos) {
        error = "truncated request (no header terminator)";
        return false;
    }
    if (head_end > maxHeaderBytes) {
        error = "request head too large";
        return false;
    }
    const std::string head = raw.substr(0, head_end + 2);

    std::size_t line_end = head.find("\r\n");
    const std::string request_line = head.substr(0, line_end);
    const std::size_t sp1 = request_line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : request_line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
        error = "malformed request line '" + request_line + "'";
        return false;
    }
    HttpRequest parsed;
    parsed.method = request_line.substr(0, sp1);
    const std::string target =
        request_line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::string version = request_line.substr(sp2 + 1);
    if (version.compare(0, 5, "HTTP/") != 0) {
        error = "malformed request line '" + request_line + "'";
        return false;
    }
    const std::size_t qmark = target.find('?');
    if (qmark == std::string::npos) {
        parsed.path = percentDecode(target);
    } else {
        parsed.path = percentDecode(target.substr(0, qmark));
        parsed.query = parseQuery(target.substr(qmark + 1));
    }
    if (!parseHeaderLines(head, line_end + 2, parsed.headers, error))
        return false;

    const std::size_t length = contentLength(parsed.headers);
    if (length > maxBodyBytes) {
        error = "request body too large";
        return false;
    }
    if (raw.size() - (head_end + 4) < length) {
        error = "truncated request body";
        return false;
    }
    parsed.body = raw.substr(head_end + 4, length);
    req = std::move(parsed);
    return true;
}

std::string
serializeResponse(const HttpResponse &resp)
{
    std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " +
        statusText(resp.status) + "\r\n";
    out += "Content-Type: " + resp.contentType + "\r\n";
    out += "Content-Length: " + std::to_string(resp.body.size()) +
        "\r\n";
    for (const auto &[name, value] : resp.headers)
        out += name + ": " + value + "\r\n";
    out += "Connection: close\r\n\r\n";
    out += resp.body;
    return out;
}

bool
parseResponse(const std::string &raw, HttpResponse &resp,
              std::string &error)
{
    const std::size_t head_end = raw.find("\r\n\r\n");
    if (head_end == std::string::npos) {
        error = "truncated response (no header terminator)";
        return false;
    }
    const std::string head = raw.substr(0, head_end + 2);
    const std::size_t line_end = head.find("\r\n");
    const std::string status_line = head.substr(0, line_end);
    const std::size_t sp1 = status_line.find(' ');
    if (status_line.compare(0, 5, "HTTP/") != 0 ||
        sp1 == std::string::npos) {
        error = "malformed status line '" + status_line + "'";
        return false;
    }
    HttpResponse parsed;
    parsed.status =
        static_cast<int>(std::strtol(status_line.c_str() + sp1 + 1,
                                     nullptr, 10));
    if (parsed.status < 100 || parsed.status > 599) {
        error = "malformed status line '" + status_line + "'";
        return false;
    }
    if (!parseHeaderLines(head, line_end + 2, parsed.headers, error))
        return false;
    for (const auto &[name, value] : parsed.headers)
        if (name == "content-type")
            parsed.contentType = value;
    // Trust Content-Length when present (and sane); fall back to
    // everything-until-EOF, which is what Connection: close implies.
    const std::size_t length = contentLength(parsed.headers);
    const std::size_t available = raw.size() - (head_end + 4);
    parsed.body = raw.substr(head_end + 4,
                             length && length <= available ? length
                                                           : available);
    resp = std::move(parsed);
    return true;
}

// ---- Blocking unix-socket I/O ------------------------------------------

int
listenUnix(const std::string &path, std::string &error)
{
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path)) {
        error = "socket path too long (max " +
            std::to_string(sizeof(addr.sun_path) - 1) + " bytes): " +
            path;
        return -1;
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        error = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    ::unlink(path.c_str());
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        error = "bind " + path + ": " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    if (::listen(fd, 64) != 0) {
        error = "listen " + path + ": " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

int
connectUnix(const std::string &path, std::string &error)
{
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path)) {
        error = "socket path too long: " + path;
        return -1;
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        error = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        error = "connect " + path + ": " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
readRequest(int fd, HttpRequest &req, std::string &error)
{
    std::string raw;
    char buf[4096];
    std::size_t head_end = std::string::npos;
    std::size_t want = 0; // total bytes once the head is known
    while (true) {
        if (head_end == std::string::npos) {
            head_end = raw.find("\r\n\r\n");
            if (head_end != std::string::npos) {
                // Peek at Content-Length to know how much body to
                // expect; full validation happens in parseRequest.
                std::vector<std::pair<std::string, std::string>> hs;
                std::string ignored;
                const std::size_t line_end = raw.find("\r\n");
                parseHeaderLines(raw.substr(0, head_end + 2),
                                 line_end + 2, hs, ignored);
                const std::size_t length = contentLength(hs);
                if (length > maxBodyBytes) {
                    error = "request body too large";
                    return false;
                }
                want = head_end + 4 + length;
            } else if (raw.size() > maxHeaderBytes) {
                error = "request head too large";
                return false;
            }
        }
        if (head_end != std::string::npos && raw.size() >= want)
            break;
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            error = std::string("read: ") + std::strerror(errno);
            return false;
        }
        if (n == 0) {
            error = raw.empty() ? "empty request"
                                : "connection closed mid-request";
            return false;
        }
        raw.append(buf, static_cast<std::size_t>(n));
    }
    return parseRequest(raw, req, error);
}

bool
writeAll(int fd, const std::string &bytes)
{
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n =
            ::write(fd, bytes.data() + off, bytes.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

std::string
readAll(int fd)
{
    std::string out;
    char buf[4096];
    while (true) {
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (n == 0)
            break;
        out.append(buf, static_cast<std::size_t>(n));
    }
    return out;
}

} // namespace ctcp::service
