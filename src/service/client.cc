#include "service/client.hh"

#include <sys/socket.h>
#include <unistd.h>

namespace ctcp::service {

bool
httpRequest(const std::string &socketPath, const std::string &method,
            const std::string &target, const std::string &body,
            const ClientOptions &options, HttpResponse &resp,
            std::string &error)
{
    const int fd =
        connectUnix(socketPath, options.connectTimeoutSeconds, error);
    if (fd < 0)
        return false;

    std::string request = method + " " + target + " HTTP/1.1\r\n";
    request += "Host: ctcpd\r\n";
    request += "Content-Length: " + std::to_string(body.size()) +
        "\r\n";
    for (const auto &[name, value] : options.headers)
        request += name + ": " + value + "\r\n";
    request += "Connection: close\r\n\r\n";
    request += body;
    std::string io_error;
    if (!writeAll(fd, request, options.writeTimeoutSeconds, io_error)) {
        error = "failed to send request to " + socketPath + " (" +
            io_error + ")";
        ::close(fd);
        return false;
    }
    ::shutdown(fd, SHUT_WR);

    std::string raw;
    const bool read_ok =
        readAll(fd, options.readTimeoutSeconds, raw, io_error);
    ::close(fd);
    if (!read_ok) {
        error = "failed to read response from " + socketPath + " (" +
            io_error + ")";
        return false;
    }
    if (raw.empty()) {
        error = "empty response from " + socketPath;
        return false;
    }
    return parseResponse(raw, resp, error);
}

bool
httpRequest(const std::string &socketPath, const std::string &method,
            const std::string &target, const std::string &body,
            HttpResponse &resp, std::string &error)
{
    return httpRequest(socketPath, method, target, body,
                       ClientOptions{}, resp, error);
}

} // namespace ctcp::service
