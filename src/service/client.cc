#include "service/client.hh"

#include <sys/socket.h>
#include <unistd.h>

namespace ctcp::service {

bool
httpRequest(const std::string &socketPath, const std::string &method,
            const std::string &target, const std::string &body,
            HttpResponse &resp, std::string &error)
{
    const int fd = connectUnix(socketPath, error);
    if (fd < 0)
        return false;

    std::string request = method + " " + target + " HTTP/1.1\r\n";
    request += "Host: ctcpd\r\n";
    request += "Content-Length: " + std::to_string(body.size()) +
        "\r\n";
    request += "Connection: close\r\n\r\n";
    request += body;
    if (!writeAll(fd, request)) {
        error = "failed to send request to " + socketPath;
        ::close(fd);
        return false;
    }
    ::shutdown(fd, SHUT_WR);

    const std::string raw = readAll(fd);
    ::close(fd);
    if (raw.empty()) {
        error = "empty response from " + socketPath;
        return false;
    }
    return parseResponse(raw, resp, error);
}

} // namespace ctcp::service
