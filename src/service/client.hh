/**
 * @file
 * Minimal blocking client for the ctcpd unix-socket API: one
 * connection per exchange (the server closes after each response),
 * shared by ctcpctl and the service end-to-end tests.
 */

#ifndef CTCPSIM_SERVICE_CLIENT_HH
#define CTCPSIM_SERVICE_CLIENT_HH

#include <string>

#include "service/http.hh"

namespace ctcp::service {

/**
 * Perform one request against the daemon at @p socketPath.
 * @return false with a transport diagnostic in @p error (cannot
 *         connect, short response, unparseable response); an HTTP
 *         error status is a *successful* exchange — check
 *         @p resp.status.
 */
bool httpRequest(const std::string &socketPath,
                 const std::string &method, const std::string &target,
                 const std::string &body, HttpResponse &resp,
                 std::string &error);

} // namespace ctcp::service

#endif // CTCPSIM_SERVICE_CLIENT_HH
