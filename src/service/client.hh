/**
 * @file
 * Minimal client for the ctcpd unix-socket API: one connection per
 * exchange (the server closes after each response), shared by
 * ctcpctl, the shard coordinator and the service end-to-end tests.
 *
 * Every exchange is bounded by connect/write/read deadlines
 * (ClientOptions) so a wedged daemon fails the call with a transport
 * error instead of hanging the client forever, and all writes use
 * MSG_NOSIGNAL so a daemon that died mid-exchange surfaces as an
 * error return rather than a SIGPIPE process death.
 */

#ifndef CTCPSIM_SERVICE_CLIENT_HH
#define CTCPSIM_SERVICE_CLIENT_HH

#include <string>
#include <utility>
#include <vector>

#include "service/http.hh"

namespace ctcp::service {

/** Per-exchange deadlines, in seconds; <= 0 disables one. */
struct ClientOptions
{
    double connectTimeoutSeconds = 10.0;
    double writeTimeoutSeconds = 30.0;
    /**
     * Overall deadline for the response. Callers long-polling
     * /v1/runs/<id>/events must leave headroom above the server-side
     * `wait` they request, or the poll looks like a dead daemon.
     */
    double readTimeoutSeconds = 120.0;
    /**
     * Extra request headers, sent verbatim after the standard ones —
     * e.g. {X-Ctcp-Trace-Id, <id>} so the daemon's logs correlate
     * this exchange with the campaign that caused it.
     */
    std::vector<std::pair<std::string, std::string>> headers;
};

/**
 * Perform one request against the daemon at @p socketPath.
 * @return false with a transport diagnostic in @p error (cannot
 *         connect, deadline exceeded, short response, unparseable
 *         response); an HTTP error status is a *successful* exchange —
 *         check @p resp.status.
 */
bool httpRequest(const std::string &socketPath,
                 const std::string &method, const std::string &target,
                 const std::string &body, const ClientOptions &options,
                 HttpResponse &resp, std::string &error);

/** As above with default ClientOptions deadlines. */
bool httpRequest(const std::string &socketPath,
                 const std::string &method, const std::string &target,
                 const std::string &body, HttpResponse &resp,
                 std::string &error);

} // namespace ctcp::service

#endif // CTCPSIM_SERVICE_CLIENT_HH
