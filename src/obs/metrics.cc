#include "obs/metrics.hh"

#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace ctcp::obs {

namespace {

/** HELP text escaping: backslash and newline. */
std::string
escapeHelp(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

/** Label value escaping: backslash, double quote, newline. */
std::string
escapeLabelValue(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '"')
            out += "\\\"";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

/** `{k1="v1",k2="v2"}`, or "" for an unlabeled child. */
std::string
renderLabels(const MetricLabels &labels)
{
    if (labels.empty())
        return {};
    std::string out = "{";
    bool first = true;
    for (const auto &[key, value] : labels) {
        if (!first)
            out += ',';
        first = false;
        out += key + "=\"" + escapeLabelValue(value) + "\"";
    }
    out += '}';
    return out;
}

/**
 * As renderLabels, but with one extra label appended (histogram `le`)
 * without mutating the child's stored label set.
 */
std::string
renderLabelsPlus(const MetricLabels &labels, const std::string &key,
                 const std::string &value)
{
    MetricLabels all = labels;
    all.emplace_back(key, value);
    return renderLabels(all);
}

/** Shortest round-trip decimal for doubles; integers stay integral. */
std::string
formatValue(double v)
{
    // Integral values render as integers ("10", not "1e+01") — the
    // conventional spelling for `le` bounds and count-like gauges.
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        std::fabs(v) < 1e15)
        return std::to_string(static_cast<long long>(v));
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    // Prefer a shorter representation when it round-trips exactly —
    // "0.25" instead of "0.25000000000000000".
    for (int precision = 1; precision < 17; ++precision) {
        char shorter[64];
        std::snprintf(shorter, sizeof(shorter), "%.*g", precision, v);
        double back = 0.0;
        std::sscanf(shorter, "%lf", &back);
        if (back == v)
            return shorter;
    }
    return buf;
}

} // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1])
{
    for (std::size_t i = 0; i <= bounds_.size(); ++i)
        buckets_[i].store(0, std::memory_order_relaxed);
    for (std::size_t i = 1; i < bounds_.size(); ++i)
        ctcp_assert(bounds_[i] > bounds_[i - 1],
                    "histogram bounds must ascend (bound %zu)", i);
}

void
Histogram::observe(double v)
{
    // First bucket whose upper bound contains v; the final slot is the
    // +Inf overflow. Linear scan: bucket lists are short (~13).
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i])
        ++i;
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double seen = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(seen, seen + v,
                                       std::memory_order_relaxed))
        ;
}

MetricsRegistry::Family &
MetricsRegistry::familyLocked(const std::string &name,
                              const std::string &help, Kind kind,
                              const std::vector<double> &bounds)
{
    for (const auto &family : families_) {
        if (family->name != name)
            continue;
        ctcp_assert(family->kind == kind,
                    "metric family '%s' re-registered as a different "
                    "kind", name.c_str());
        ctcp_assert(kind != Kind::Histogram ||
                        family->bounds == bounds,
                    "histogram family '%s' re-registered with "
                    "different bounds", name.c_str());
        return *family;
    }
    auto family = std::make_unique<Family>();
    family->name = name;
    family->help = help;
    family->kind = kind;
    family->bounds = bounds;
    families_.push_back(std::move(family));
    return *families_.back();
}

MetricsRegistry::Child &
MetricsRegistry::childLocked(Family &family, const MetricLabels &labels)
{
    for (Child &child : family.children)
        if (child.labels == labels)
            return child;
    Child child;
    child.labels = labels;
    switch (family.kind) {
      case Kind::Counter:
        child.counter = std::make_unique<Counter>();
        break;
      case Kind::Gauge:
        child.gauge = std::make_unique<Gauge>();
        break;
      case Kind::Histogram:
        child.histogram.reset(new Histogram(family.bounds));
        break;
    }
    family.children.push_back(std::move(child));
    return family.children.back();
}

Counter &
MetricsRegistry::counter(const std::string &name, const std::string &help,
                         const MetricLabels &labels)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Family &family = familyLocked(name, help, Kind::Counter, {});
    return *childLocked(family, labels).counter;
}

Gauge &
MetricsRegistry::gauge(const std::string &name, const std::string &help,
                       const MetricLabels &labels)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Family &family = familyLocked(name, help, Kind::Gauge, {});
    return *childLocked(family, labels).gauge;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           const std::string &help,
                           const std::vector<double> &bounds,
                           const MetricLabels &labels)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Family &family = familyLocked(name, help, Kind::Histogram, bounds);
    return *childLocked(family, labels).histogram;
}

void
MetricsRegistry::declareCounter(const std::string &name,
                                const std::string &help)
{
    std::lock_guard<std::mutex> lock(mutex_);
    familyLocked(name, help, Kind::Counter, {});
}

void
MetricsRegistry::declareGauge(const std::string &name,
                              const std::string &help)
{
    std::lock_guard<std::mutex> lock(mutex_);
    familyLocked(name, help, Kind::Gauge, {});
}

void
MetricsRegistry::declareHistogram(const std::string &name,
                                  const std::string &help,
                                  const std::vector<double> &bounds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    familyLocked(name, help, Kind::Histogram, bounds);
}

std::string
MetricsRegistry::exposition() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out;
    for (const auto &family : families_) {
        out += "# HELP " + family->name + " " +
            escapeHelp(family->help) + "\n";
        out += "# TYPE " + family->name + " ";
        switch (family->kind) {
          case Kind::Counter:   out += "counter\n"; break;
          case Kind::Gauge:     out += "gauge\n"; break;
          case Kind::Histogram: out += "histogram\n"; break;
        }
        for (const Child &child : family->children) {
            if (family->kind == Kind::Counter) {
                out += family->name + renderLabels(child.labels) + " " +
                    std::to_string(child.counter->value()) + "\n";
            } else if (family->kind == Kind::Gauge) {
                out += family->name + renderLabels(child.labels) + " " +
                    formatValue(child.gauge->value()) + "\n";
            } else {
                const Histogram &h = *child.histogram;
                std::uint64_t cumulative = 0;
                for (std::size_t i = 0; i < h.bounds().size(); ++i) {
                    cumulative += h.bucketCount(i);
                    out += family->name + "_bucket" +
                        renderLabelsPlus(child.labels, "le",
                                         formatValue(h.bounds()[i])) +
                        " " + std::to_string(cumulative) + "\n";
                }
                cumulative += h.bucketCount(h.bounds().size());
                out += family->name + "_bucket" +
                    renderLabelsPlus(child.labels, "le", "+Inf") + " " +
                    std::to_string(cumulative) + "\n";
                out += family->name + "_sum" +
                    renderLabels(child.labels) + " " +
                    formatValue(h.sum()) + "\n";
                out += family->name + "_count" +
                    renderLabels(child.labels) + " " +
                    std::to_string(h.count()) + "\n";
            }
        }
    }
    return out;
}

const std::vector<double> &
MetricsRegistry::defaultLatencyBuckets()
{
    static const std::vector<double> buckets = {
        0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
        0.25,  0.5,    1.0,   2.5,  5.0,   10.0};
    return buckets;
}

} // namespace ctcp::obs
