/**
 * @file
 * Typed pipeline events for the observability subsystem.
 *
 * Every instrumented component (fetch engine, trace cache, fill unit,
 * assignment policy, clusters, memory system, retire logic) describes
 * what happened as an ObsEvent and hands it to the ObsSink. Events are
 * plain data: a cycle stamp, a kind, the instruction identity when one
 * is involved, and a small kind-specific payload. Writers (Chrome
 * trace_event JSON, compact text) interpret the payload per kind.
 *
 * Payload conventions:
 *   Fetch       seq/pc/label; arg0 = 1 when fetched from the trace cache
 *   TcHit       pc = trace start PC; arg0 = instructions in the line
 *   TcMiss      pc = trace start PC
 *   TraceBuild  pc = trace start PC; arg0 = instructions; arg1 = blocks
 *   Assign      pc; opt = Table-5 option ('A'..'E', 'S'); cluster chosen
 *   Rename      seq/pc
 *   Issue       seq/pc/cluster
 *   Execute     seq/pc/cluster/label; begin = dispatch cycle; dur = latency
 *   Forward     seq/pc/cluster = consumer; arg0 = hop count;
 *               arg1 = producer cluster
 *   Complete    seq/pc/cluster
 *   Retire      seq/pc/cluster
 *   Flush       seq/pc of the mispredicted branch; arg0 = fetch resume cycle
 *   Mem         arg0 = byte address; arg1 = service level (0 = store
 *               forward, 1 = L1, 2 = L2, 3 = memory); dur = load latency
 *   Snapshot    pipeline-state dump before a watchdog abort; label names
 *               the structure ("rob", "fetch-queue", ...), arg0 = its
 *               occupancy, arg1 = structure-specific detail
 */

#ifndef CTCPSIM_OBS_EVENT_HH
#define CTCPSIM_OBS_EVENT_HH

#include <cstdint>
#include <string_view>

#include "common/types.hh"

namespace ctcp {

/** Kinds of pipeline events the sink can record. */
enum class ObsKind : std::uint8_t
{
    Fetch = 0,
    TcHit,
    TcMiss,
    TraceBuild,
    Assign,
    Rename,
    Issue,
    Execute,
    Forward,
    Complete,
    Retire,
    Flush,
    Mem,
    Snapshot,
    NumKinds,
};

inline constexpr unsigned numObsKinds =
    static_cast<unsigned>(ObsKind::NumKinds);

/** Stable lower-case name of an event kind (used in filters and output). */
const char *obsKindName(ObsKind kind);

/** One recorded pipeline event. */
struct ObsEvent
{
    Cycle cycle = 0;                   ///< emission cycle
    ObsKind kind = ObsKind::Fetch;
    ClusterId cluster = invalidCluster;
    char opt = 0;                      ///< Assign: Table-5 option letter
    InstSeqNum seq = invalidSeqNum;    ///< instruction, when one is involved
    Addr pc = 0;
    std::int64_t arg0 = 0;             ///< kind-specific (see file comment)
    std::int64_t arg1 = 0;
    Cycle begin = 0;                   ///< span start (Execute)
    Cycle dur = 0;                     ///< span duration / access latency
    /** Display label; must point at static storage (e.g. a mnemonic). */
    std::string_view label;
};

} // namespace ctcp

#endif // CTCPSIM_OBS_EVENT_HH
