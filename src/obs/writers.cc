#include "obs/writers.hh"

#include <cinttypes>
#include <stdexcept>

namespace ctcp {

namespace {

/** Chrome trace track for an event kind. */
int
tidFor(const ObsEvent &event)
{
    switch (event.kind) {
      case ObsKind::Complete:
      case ObsKind::Retire:
        return 1;
      case ObsKind::Mem:
        return 2;
      case ObsKind::Issue:
      case ObsKind::Execute:
      case ObsKind::Forward:
        return event.cluster == invalidCluster
            ? 0 : 10 + static_cast<int>(event.cluster);
      default:
        return 0;
    }
}

} // namespace

ChromeTraceWriter::ChromeTraceWriter(const std::string &path)
    : out_(path), file_(out_.stream())
{
}

ChromeTraceWriter::~ChromeTraceWriter()
{
    // Publish the trace even when the simulation threw: end() writes
    // the trailer first, so the committed file is always well-formed.
    // Only an unclean process death (SIGKILL, crash) skips this, and
    // then the uncommitted .tmp leaves the old target untouched.
    try {
        end();
    } catch (...) {
        // Commit failure during unwind: keep the previous trace.
    }
}

void
ChromeTraceWriter::begin()
{
    std::fputs("{\"traceEvents\":[\n", file_);
    std::fputs("{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
               "\"args\":{\"name\":\"ctcpsim\"}}", file_);
    first_ = false;
}

void
ChromeTraceWriter::nameThread(int tid, const char *name)
{
    if (!namedTids_.insert(tid).second)
        return;
    std::fprintf(file_,
                 ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
                 "\"name\":\"thread_name\",\"args\":{\"name\":\"%s\"}}",
                 tid, name);
    // Sort tracks in pipeline order rather than alphabetically.
    std::fprintf(file_,
                 ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
                 "\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":%d}}",
                 tid, tid);
}

void
ChromeTraceWriter::write(const ObsEvent &event)
{
    const int tid = tidFor(event);
    if (tid == 0) {
        nameThread(0, "frontend");
    } else if (tid == 1) {
        nameThread(1, "commit");
    } else if (tid == 2) {
        nameThread(2, "memory");
    } else {
        char name[32];
        std::snprintf(name, sizeof(name), "cluster %d", tid - 10);
        nameThread(tid, name);
    }

    const char *kind = obsKindName(event.kind);
    if (event.kind == ObsKind::Execute) {
        // Duration slice: one "X" event spanning dispatch..complete.
        std::fprintf(file_,
                     ",\n{\"ph\":\"X\",\"pid\":1,\"tid\":%d,"
                     "\"ts\":%" PRIu64 ",\"dur\":%" PRIu64
                     ",\"name\":\"%.*s\",\"cat\":\"%s\"",
                     tid, event.begin, event.dur ? event.dur : 1,
                     static_cast<int>(event.label.size()),
                     event.label.data(), kind);
    } else {
        std::fprintf(file_,
                     ",\n{\"ph\":\"i\",\"pid\":1,\"tid\":%d,"
                     "\"ts\":%" PRIu64 ",\"s\":\"t\",\"name\":\"%s\","
                     "\"cat\":\"%s\"",
                     tid, event.cycle, kind, kind);
    }

    std::fputs(",\"args\":{", file_);
    const char *sep = "";
    if (event.seq != invalidSeqNum) {
        std::fprintf(file_, "\"seq\":%" PRIu64, event.seq);
        sep = ",";
    }
    if (event.pc) {
        std::fprintf(file_, "%s\"pc\":%" PRIu64, sep, event.pc);
        sep = ",";
    }
    if (event.cluster != invalidCluster) {
        std::fprintf(file_, "%s\"cluster\":%d", sep,
                     static_cast<int>(event.cluster));
        sep = ",";
    }
    if (event.opt) {
        std::fprintf(file_, "%s\"option\":\"%c\"", sep, event.opt);
        sep = ",";
    }
    if (event.arg0) {
        std::fprintf(file_, "%s\"arg0\":%" PRId64, sep, event.arg0);
        sep = ",";
    }
    if (event.arg1) {
        std::fprintf(file_, "%s\"arg1\":%" PRId64, sep, event.arg1);
        sep = ",";
    }
    if (!event.label.empty() && event.kind != ObsKind::Execute)
        std::fprintf(file_, "%s\"op\":\"%.*s\"", sep,
                     static_cast<int>(event.label.size()),
                     event.label.data());
    std::fputs("}}", file_);
}

void
ChromeTraceWriter::end()
{
    if (ended_)
        return;
    ended_ = true;
    std::fputs("\n]}\n", file_);
    file_ = nullptr;
    out_.commit();
}

ObsTextWriter::ObsTextWriter(const std::string &path)
    : out_(path), file_(out_.stream())
{
}

ObsTextWriter::~ObsTextWriter()
{
    try {
        end();
    } catch (...) {
        // Commit failure during unwind: keep the previous trace.
    }
}

void
ObsTextWriter::begin()
{
}

void
ObsTextWriter::write(const ObsEvent &event)
{
    std::fprintf(file_, "%" PRIu64 " %s", event.cycle,
                 obsKindName(event.kind));
    if (event.seq != invalidSeqNum)
        std::fprintf(file_, " seq=%" PRIu64, event.seq);
    if (event.pc)
        std::fprintf(file_, " pc=0x%" PRIx64, event.pc);
    if (event.cluster != invalidCluster)
        std::fprintf(file_, " cl=%d", static_cast<int>(event.cluster));
    if (event.opt)
        std::fprintf(file_, " opt=%c", event.opt);
    if (!event.label.empty())
        std::fprintf(file_, " op=%.*s",
                     static_cast<int>(event.label.size()),
                     event.label.data());
    switch (event.kind) {
      case ObsKind::Fetch:
        if (event.arg0)
            std::fputs(" from=tc", file_);
        break;
      case ObsKind::TcHit:
      case ObsKind::TraceBuild:
        std::fprintf(file_, " insts=%" PRId64, event.arg0);
        if (event.kind == ObsKind::TraceBuild)
            std::fprintf(file_, " blocks=%" PRId64, event.arg1);
        break;
      case ObsKind::Execute:
        std::fprintf(file_, " begin=%" PRIu64 " dur=%" PRIu64,
                     event.begin, event.dur);
        break;
      case ObsKind::Forward:
        std::fprintf(file_, " hops=%" PRId64 " from_cl=%" PRId64,
                     event.arg0, event.arg1);
        break;
      case ObsKind::Flush:
        std::fprintf(file_, " resume=%" PRId64, event.arg0);
        break;
      case ObsKind::Mem:
        std::fprintf(file_,
                     " addr=0x%" PRIx64 " level=%" PRId64 " lat=%" PRIu64,
                     static_cast<std::uint64_t>(event.arg0), event.arg1,
                     event.dur);
        break;
      default:
        break;
    }
    std::fputc('\n', file_);
}

void
ObsTextWriter::end()
{
    if (ended_)
        return;
    ended_ = true;
    file_ = nullptr;
    out_.commit();
}

} // namespace ctcp
