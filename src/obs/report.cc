#include "obs/report.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/json.hh"
#include "obs/accounting.hh"

namespace ctcp::report {

namespace {

// One fixed color per slot category, indexed like SlotCat: useful,
// wait_intra, wait_fwd1/2/3, fu_busy, rs_full, rob_full,
// fetch_tc_miss, fetch_redirect, idle.
const char *const kCatColors[numSlotCats] = {
    "#2f9e44",  // useful        — green
    "#ffd43b",  // wait_intra    — yellow
    "#ffa94d",  // wait_fwd1     — light orange
    "#ff922b",  // wait_fwd2     — orange
    "#e8590c",  // wait_fwd3     — deep orange
    "#9775fa",  // fu_busy       — violet
    "#f06595",  // rs_full       — pink
    "#e64980",  // rob_full      — magenta
    "#74c0fc",  // fetch_tc_miss — light blue
    "#4dabf7",  // fetch_redirect— blue
    "#ced4da",  // idle          — gray
};

std::string
esc(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '&': out += "&amp;"; break;
          case '<': out += "&lt;"; break;
          case '>': out += "&gt;"; break;
          case '"': out += "&quot;"; break;
          default:  out += c;
        }
    }
    return out;
}

std::string
fmt(double v, int decimals = 2)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

double
acct(const RunView &run, const std::string &key)
{
    const auto it = run.accounting.find(key);
    return it != run.accounting.end() ? it->second : 0.0;
}

/** Slot counts per category, machine-wide or for one cluster. */
std::vector<double>
slotCounts(const RunView &run, int cluster = -1)
{
    const std::string prefix = cluster < 0
        ? "slots."
        : "cluster" + std::to_string(cluster) + ".slots.";
    std::vector<double> counts(numSlotCats, 0.0);
    for (unsigned k = 0; k < numSlotCats; ++k)
        counts[k] =
            acct(run, prefix + slotCatName(static_cast<SlotCat>(k)));
    return counts;
}

/** One stacked horizontal bar; fractions of @p counts' own total. */
std::string
stackedBar(const std::string &caption, const std::vector<double> &counts)
{
    double total = 0.0;
    for (double c : counts)
        total += c;
    std::string out = "<div class=\"row\"><span class=\"rowlabel\">" +
        esc(caption) + "</span><span class=\"bar\">";
    if (total > 0.0) {
        for (unsigned k = 0; k < numSlotCats; ++k) {
            const double pct = 100.0 * counts[k] / total;
            if (pct < 0.005)
                continue;
            const char *name = slotCatName(static_cast<SlotCat>(k));
            out += "<span class=\"seg\" style=\"width:" + fmt(pct) +
                   "%;background:" + kCatColors[k] + "\" title=\"" +
                   name + ": " + fmt(pct) + "%\"></span>";
        }
    }
    out += "</span></div>\n";
    return out;
}

std::string
legend()
{
    std::string out = "<div class=\"legend\">";
    for (unsigned k = 0; k < numSlotCats; ++k) {
        out += "<span class=\"key\"><span class=\"swatch\" "
               "style=\"background:";
        out += kCatColors[k];
        out += "\"></span>";
        out += slotCatName(static_cast<SlotCat>(k));
        out += "</span> ";
    }
    out += "</div>\n";
    return out;
}

std::string
forwardingHeatmap(const RunView &run)
{
    const int n = static_cast<int>(acct(run, "num_clusters"));
    if (n <= 0)
        return "";
    double peak = 0.0;
    for (int f = 0; f < n; ++f)
        for (int t = 0; t < n; ++t)
            peak = std::max(peak,
                            acct(run, "fwd_matrix." + std::to_string(f) +
                                      "." + std::to_string(t)));
    std::string out = "<table class=\"heat\"><tr><th>from \\ to</th>";
    for (int t = 0; t < n; ++t)
        out += "<th>C" + std::to_string(t) + "</th>";
    out += "</tr>\n";
    for (int f = 0; f < n; ++f) {
        out += "<tr><th>C" + std::to_string(f) + "</th>";
        for (int t = 0; t < n; ++t) {
            const double v =
                acct(run, "fwd_matrix." + std::to_string(f) + "." +
                          std::to_string(t));
            const double alpha = peak > 0.0 ? v / peak : 0.0;
            out += "<td style=\"background:rgba(37,99,235," +
                   fmt(alpha, 3) + ")" +
                   (alpha > 0.6 ? ";color:#fff" : "") + "\">" +
                   fmt(v, 0) + "</td>";
        }
        out += "</tr>\n";
    }
    out += "</table>\n";
    return out;
}

std::string
sparkline(const IntervalSeries &series)
{
    const std::size_t n = series.ipc.size();
    if (n == 0)
        return "";
    double lo = series.ipc[0], hi = series.ipc[0];
    for (double v : series.ipc) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    const double w = 260.0, h = 44.0, pad = 3.0;
    const double span = hi - lo;
    std::string points;
    for (std::size_t i = 0; i < n; ++i) {
        const double x = n > 1
            ? pad + (w - 2 * pad) * static_cast<double>(i) /
                  static_cast<double>(n - 1)
            : w / 2;
        const double y = span > 0.0
            ? pad + (h - 2 * pad) * (1.0 - (series.ipc[i] - lo) / span)
            : h / 2;
        if (i)
            points += ' ';
        points += fmt(x, 1) + "," + fmt(y, 1);
    }
    std::string out = "<div class=\"row\"><span class=\"rowlabel\">" +
        esc(series.label) + "</span><svg class=\"spark\" width=\"260\" "
        "height=\"44\" viewBox=\"0 0 260 44\">";
    out += n > 1
        ? "<polyline fill=\"none\" stroke=\"#1971c2\" "
          "stroke-width=\"1.5\" points=\"" + points + "\"/>"
        : "<circle cx=\"130\" cy=\"22\" r=\"2\" fill=\"#1971c2\"/>";
    out += "</svg><span class=\"range\">ipc " + fmt(lo) + " … " +
           fmt(hi) + "</span></div>\n";
    return out;
}

RunView
runFromMetricsObject(const json::Value &obj)
{
    RunView run;
    run.benchmark = obj.str("benchmark");
    run.strategy = obj.str("strategy");
    run.cycles = obj.num("cycles");
    run.instructions = obj.num("instructions");
    run.ipc = obj.num("ipc");
    if (const json::Value *a = obj.find("accounting");
        a && a->isObject()) {
        for (const auto &[name, value] : a->object)
            if (value.isNumber())
                run.accounting[name] = value.asNumber();
    }
    return run;
}

} // namespace

ReportView
fromJsonText(const std::string &text)
{
    const json::Value root = json::parse(text);
    if (!root.isObject())
        throw std::runtime_error("report document is not a JSON object");
    ReportView view;
    const json::Value *results = root.find("results");
    if (results && results->isArray()) {
        view.campaign = true;
        for (const json::Value &entry : results->array) {
            if (!entry.isObject())
                throw std::runtime_error(
                    "campaign results entry is not an object");
            RunView run;
            run.label = entry.str("label");
            run.ok = entry.str("status") == "ok";
            if (run.ok) {
                const json::Value *metrics = entry.find("metrics");
                if (!metrics || !metrics->isObject())
                    throw std::runtime_error(
                        "ok job '" + run.label + "' has no metrics");
                RunView decoded = runFromMetricsObject(*metrics);
                decoded.label = run.label;
                decoded.benchmark = entry.str("benchmark");
                run = decoded;
                run.ok = true;
            } else {
                run.benchmark = entry.str("benchmark");
                run.error = entry.str("error");
            }
            view.runs.push_back(std::move(run));
        }
        return view;
    }
    if (!root.find("benchmark"))
        throw std::runtime_error(
            "unrecognized report document (neither a campaign report "
            "nor a single-run result)");
    RunView run = runFromMetricsObject(root);
    run.label = run.benchmark + "/" + run.strategy;
    view.runs.push_back(std::move(run));
    return view;
}

IntervalSeries
intervalSeriesFromCsv(const std::string &label, const std::string &csv)
{
    IntervalSeries series;
    series.label = label;
    std::istringstream in(csv);
    std::string line;
    int cycle_col = -1, ipc_col = -1;
    bool header = true;
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;
        std::vector<std::string> cells;
        std::size_t start = 0;
        while (true) {
            const std::size_t comma = line.find(',', start);
            cells.push_back(line.substr(start, comma - start));
            if (comma == std::string::npos)
                break;
            start = comma + 1;
        }
        if (header) {
            for (std::size_t i = 0; i < cells.size(); ++i) {
                if (cells[i] == "cycle")
                    cycle_col = static_cast<int>(i);
                else if (cells[i] == "ipc")
                    ipc_col = static_cast<int>(i);
            }
            if (cycle_col < 0 || ipc_col < 0)
                throw std::runtime_error(
                    "interval CSV for '" + label +
                    "' has no cycle/ipc columns");
            header = false;
            continue;
        }
        const std::size_t need = static_cast<std::size_t>(
            std::max(cycle_col, ipc_col));
        if (cells.size() <= need)
            continue;   // torn trailing row
        series.cycles.push_back(
            std::strtod(cells[cycle_col].c_str(), nullptr));
        series.ipc.push_back(
            std::strtod(cells[ipc_col].c_str(), nullptr));
    }
    return series;
}

void
loadIntervalSeries(const std::string &path, ReportView &view)
{
    namespace fs = std::filesystem;
    std::vector<fs::path> files;
    if (fs::is_directory(path)) {
        for (const auto &entry : fs::directory_iterator(path))
            if (entry.is_regular_file() &&
                entry.path().extension() == ".csv")
                files.push_back(entry.path());
        std::sort(files.begin(), files.end());
    } else if (fs::exists(path)) {
        files.emplace_back(path);
    } else {
        throw std::runtime_error("interval path '" + path +
                                 "' does not exist");
    }
    for (const fs::path &file : files) {
        std::ifstream in(file);
        std::ostringstream text;
        text << in.rdbuf();
        view.intervals.push_back(
            intervalSeriesFromCsv(file.stem().string(), text.str()));
    }
}

std::string
renderHtml(const ReportView &view, const std::string &title)
{
    std::string out =
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
        "<meta charset=\"utf-8\">\n<title>" + esc(title) + "</title>\n"
        "<style>\n"
        "body{font:14px/1.5 system-ui,sans-serif;margin:2em auto;"
        "max-width:72em;padding:0 1em;color:#212529}\n"
        "h1{font-size:1.5em}h2{font-size:1.15em;margin-top:2em;"
        "border-bottom:1px solid #dee2e6;padding-bottom:.2em}\n"
        "table{border-collapse:collapse;margin:.5em 0}\n"
        "td,th{border:1px solid #dee2e6;padding:.25em .6em;"
        "text-align:right}\n"
        "th{background:#f1f3f5}td:first-child,th:first-child"
        "{text-align:left}\n"
        ".bar{display:inline-block;width:34em;height:1.1em;"
        "background:#f8f9fa;border:1px solid #dee2e6;"
        "vertical-align:middle;font-size:0;white-space:nowrap}\n"
        ".seg{display:inline-block;height:100%}\n"
        ".row{margin:.25em 0}\n"
        ".rowlabel{display:inline-block;width:16em;"
        "vertical-align:middle;overflow:hidden;white-space:nowrap;"
        "text-overflow:ellipsis}\n"
        ".legend{margin:.6em 0}\n"
        ".key{margin-right:1em;white-space:nowrap}\n"
        ".swatch{display:inline-block;width:.85em;height:.85em;"
        "margin-right:.3em;vertical-align:-.1em;"
        "border:1px solid #adb5bd}\n"
        ".heat td{min-width:3.5em}\n"
        ".spark{vertical-align:middle;background:#f8f9fa;"
        "border:1px solid #dee2e6}\n"
        ".range{margin-left:.75em;color:#868e96}\n"
        ".err{color:#c92a2a}\n"
        "</style>\n</head>\n<body>\n";
    out += "<h1>" + esc(title) + "</h1>\n";

    // ---- Overview -----------------------------------------------------
    out += "<h2>Runs</h2>\n<table>\n"
           "<tr><th>label</th><th>benchmark</th><th>strategy</th>"
           "<th>status</th><th>cycles</th><th>instructions</th>"
           "<th>IPC</th></tr>\n";
    for (const RunView &run : view.runs) {
        out += "<tr><td>" + esc(run.label) + "</td><td>" +
               esc(run.benchmark) + "</td><td>" + esc(run.strategy) +
               "</td>";
        if (run.ok) {
            out += "<td>ok</td><td>" + fmt(run.cycles, 0) + "</td><td>" +
                   fmt(run.instructions, 0) + "</td><td>" +
                   fmt(run.ipc, 4) + "</td>";
        } else {
            out += "<td class=\"err\">failed: " + esc(run.error) +
                   "</td><td></td><td></td><td></td>";
        }
        out += "</tr>\n";
    }
    out += "</table>\n";

    // ---- Cycle accounting ---------------------------------------------
    bool any_acct = false;
    for (const RunView &run : view.runs)
        any_acct = any_acct || (run.ok && run.hasAccounting());
    if (any_acct) {
        out += "<h2>Cycle accounting (issue-slot attribution)</h2>\n";
        out += legend();
        for (const RunView &run : view.runs) {
            if (!run.ok || !run.hasAccounting())
                continue;
            out += "<h3>" + esc(run.label) + "</h3>\n";
            out += stackedBar("machine", slotCounts(run));
            const int n = static_cast<int>(acct(run, "num_clusters"));
            for (int c = 0; c < n; ++c)
                out += stackedBar("cluster " + std::to_string(c),
                                  slotCounts(run, c));
        }

        // Per-strategy aggregate: slot counts summed across the ok
        // runs of each strategy (first-appearance order).
        std::vector<std::string> strategies;
        for (const RunView &run : view.runs) {
            if (!run.ok || !run.hasAccounting())
                continue;
            if (std::find(strategies.begin(), strategies.end(),
                          run.strategy) == strategies.end())
                strategies.push_back(run.strategy);
        }
        if (view.campaign && strategies.size() > 1) {
            out += "<h3>By strategy (all benchmarks pooled)</h3>\n";
            for (const std::string &strategy : strategies) {
                std::vector<double> pooled(numSlotCats, 0.0);
                for (const RunView &run : view.runs) {
                    if (!run.ok || run.strategy != strategy ||
                        !run.hasAccounting())
                        continue;
                    const std::vector<double> counts = slotCounts(run);
                    for (unsigned k = 0; k < numSlotCats; ++k)
                        pooled[k] += counts[k];
                }
                out += stackedBar(strategy, pooled);
            }
        }

        out += "<h2>Inter-cluster forwarding (producer &rarr; "
               "consumer values)</h2>\n";
        for (const RunView &run : view.runs) {
            if (!run.ok || !run.hasAccounting())
                continue;
            out += "<h3>" + esc(run.label) + "</h3>\n";
            out += forwardingHeatmap(run);
        }
    }

    // ---- IPC over time ------------------------------------------------
    if (!view.intervals.empty()) {
        out += "<h2>IPC over time (interval stats)</h2>\n";
        for (const IntervalSeries &series : view.intervals)
            out += sparkline(series);
    }

    out += "</body>\n</html>\n";
    return out;
}

std::string
renderHtmlFromJson(const std::string &json_text,
                   const std::string &interval_path,
                   const std::string &title)
{
    ReportView view = fromJsonText(json_text);
    if (!interval_path.empty())
        loadIntervalSeries(interval_path, view);
    return renderHtml(view, title);
}

} // namespace ctcp::report
