/**
 * @file
 * Standard event writers.
 *
 * ChromeTraceWriter emits the Chrome trace_event JSON array format
 * (one event object per line inside "traceEvents"), loadable in
 * chrome://tracing and Perfetto. Track layout: tid 0 is the front end
 * (fetch, trace cache, fill unit, assignment, rename, flush), tid 1 is
 * commit (complete/retire), tid 2 is the data memory system, and tid
 * 10+c is execution cluster c (issue/execute/forward). Execute events
 * are duration ("X") slices; everything else is an instant.
 *
 * ObsTextWriter emits one compact line per event:
 *
 *     <cycle> <kind> seq=<n> pc=<n> cl=<c> <kind-specific fields>
 *
 * Both open their file on construction and throw std::runtime_error on
 * failure (a campaign job with an unwritable telemetry path fails in
 * isolation instead of killing the process).
 *
 * Output is crash-safe: events are staged in "<path>.tmp" and the
 * file is renamed over the target only when end() finishes writing
 * the trailer. A process killed mid-run leaves any previous trace at
 * the target path intact instead of a truncated, unloadable one.
 */

#ifndef CTCPSIM_OBS_WRITERS_HH
#define CTCPSIM_OBS_WRITERS_HH

#include <cstdio>
#include <set>
#include <string>

#include "common/atomic_file.hh"
#include "obs/sink.hh"

namespace ctcp {

/** Chrome trace_event JSON ("traceEvents" array) writer. */
class ChromeTraceWriter : public ObsWriter
{
  public:
    explicit ChromeTraceWriter(const std::string &path);
    ~ChromeTraceWriter() override;

    void begin() override;
    void write(const ObsEvent &event) override;
    void end() override;

  private:
    void nameThread(int tid, const char *name);

    AtomicFile out_;
    std::FILE *file_; ///< out_'s staging stream
    bool first_ = true;
    bool ended_ = false;
    std::set<int> namedTids_;
};

/** Compact one-line-per-event text writer. */
class ObsTextWriter : public ObsWriter
{
  public:
    explicit ObsTextWriter(const std::string &path);
    ~ObsTextWriter() override;

    void begin() override;
    void write(const ObsEvent &event) override;
    void end() override;

  private:
    AtomicFile out_;
    std::FILE *file_; ///< out_'s staging stream
    bool ended_ = false;
};

} // namespace ctcp

#endif // CTCPSIM_OBS_WRITERS_HH
