/**
 * @file
 * The event sink: a bounded staging ring of ObsEvents drained into
 * pluggable writers, with a runtime kind filter.
 *
 * Overhead contract: every instrumented component holds a raw
 * `ObsSink *` that is null when observability is off, and each emission
 * site is guarded as
 *
 *     if (obs_ && obs_->enabled(ObsKind::X)) { ... record ... }
 *
 * so a disabled build path costs one predictable branch and no event
 * construction. The sink itself is single-threaded by design: one
 * simulator owns one sink (campaign jobs each get their own).
 */

#ifndef CTCPSIM_OBS_SINK_HH
#define CTCPSIM_OBS_SINK_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/event.hh"

namespace ctcp {

/** Destination for drained events (one per output format). */
class ObsWriter
{
  public:
    virtual ~ObsWriter() = default;
    /** Called once before the first event. */
    virtual void begin() {}
    /** Called for every event, in record order. */
    virtual void write(const ObsEvent &event) = 0;
    /** Called once after the last event (flush/close the output). */
    virtual void end() {}
};

/** Ring-buffered, filtered event sink. */
class ObsSink
{
  public:
    /** @param ring_capacity events staged between writer drains */
    explicit ObsSink(std::size_t ring_capacity = 8192);
    ~ObsSink();

    ObsSink(const ObsSink &) = delete;
    ObsSink &operator=(const ObsSink &) = delete;

    /** Attach a writer (sink takes ownership; begin() is called now). */
    void addWriter(std::unique_ptr<ObsWriter> writer);

    /** Bitmask with every kind enabled. */
    static constexpr std::uint32_t
    allKinds()
    {
        return (1u << numObsKinds) - 1;
    }

    /**
     * Parse a filter spec: a comma-separated list of kind names
     * ("fetch,tc-hit,retire"), or "all" / "" for everything.
     * @throws std::invalid_argument on an unknown kind name
     */
    static std::uint32_t parseFilter(const std::string &spec);

    void setFilter(std::uint32_t mask) { mask_ = mask; }

    /** Recording @p kind right now? (Inline: this is the hot gate.) */
    bool
    enabled(ObsKind kind) const
    {
        return (mask_ >> static_cast<unsigned>(kind)) & 1u;
    }

    /** Record one event (caller must have checked enabled()). */
    void
    record(const ObsEvent &event)
    {
        if (!enabled(event.kind))
            return;
        ++recordedPerKind_[static_cast<std::size_t>(event.kind)];
        ring_.push_back(event);
        if (ring_.size() >= capacity_)
            flush();
    }

    /** Drain staged events into every writer. */
    void flush();

    /** Flush and end() every writer; idempotent. */
    void finish();

    /** Total events recorded (post-filter). */
    std::uint64_t recorded() const;

    /** Events recorded of one kind. */
    std::uint64_t
    recorded(ObsKind kind) const
    {
        return recordedPerKind_[static_cast<std::size_t>(kind)];
    }

  private:
    std::size_t capacity_;
    std::vector<ObsEvent> ring_;
    std::vector<std::unique_ptr<ObsWriter>> writers_;
    std::uint32_t mask_ = allKinds();
    std::uint64_t recordedPerKind_[numObsKinds] = {};
    bool finished_ = false;
};

} // namespace ctcp

#endif // CTCPSIM_OBS_SINK_HH
