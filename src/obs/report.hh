/**
 * @file
 * Self-contained HTML run/campaign reports.
 *
 * Consumes the JSON the simulator already writes — a single-run
 * SimResult::toJson() document or a campaign Report::toJson() document
 * (ideally produced with accounting enabled) plus optional interval
 * CSV time series — and renders one static HTML page: per-cluster and
 * per-strategy stacked cycle-accounting bars, the inter-cluster
 * forwarding heatmap, and IPC-over-time sparklines. The page embeds
 * all styling and SVG inline: no scripts, no external assets, no
 * network fetches, and deterministic bytes for identical inputs.
 */

#ifndef CTCPSIM_OBS_REPORT_HH
#define CTCPSIM_OBS_REPORT_HH

#include <map>
#include <string>
#include <vector>

namespace ctcp::report {

/** One interval time series (from an --interval-stats CSV). */
struct IntervalSeries
{
    std::string label;
    std::vector<double> cycles;
    std::vector<double> ipc;
};

/** One run (a whole single-run report, or one campaign job). */
struct RunView
{
    std::string label;
    std::string benchmark;
    std::string strategy;
    bool ok = true;
    std::string error;

    double cycles = 0.0;
    double instructions = 0.0;
    double ipc = 0.0;

    /** The run's accounting block (empty when it ran without it). */
    std::map<std::string, double> accounting;

    bool hasAccounting() const { return !accounting.empty(); }
};

/** Everything renderHtml() needs, decoded from report JSON. */
struct ReportView
{
    /** Campaign report (vs a bare single-run document). */
    bool campaign = false;
    std::vector<RunView> runs;
    std::vector<IntervalSeries> intervals;
};

/**
 * Decode a report document: either campaign Report::toJson() output
 * (recognized by its "results" array) or a single SimResult::toJson()
 * document.
 * @throws std::runtime_error on malformed input
 */
ReportView fromJsonText(const std::string &text);

/**
 * Decode one IntervalRecorder CSV (needs the "cycle" and "ipc"
 * columns; rows with neither are skipped).
 * @throws std::runtime_error when the CSV has no ipc column
 */
IntervalSeries intervalSeriesFromCsv(const std::string &label,
                                     const std::string &csv);

/**
 * Load interval series into @p view from @p path: a single CSV file,
 * or a directory whose *.csv files are loaded in sorted name order
 * (the campaign --interval-stats layout).
 * @throws std::runtime_error when the path does not exist
 */
void loadIntervalSeries(const std::string &path, ReportView &view);

/** Render the full self-contained HTML page. */
std::string renderHtml(const ReportView &view, const std::string &title);

/**
 * One-call render-to-string: decode @p json_text (single-run or
 * campaign report JSON), optionally merge interval series from
 * @p interval_path (file or directory; "" skips), and render the HTML
 * page. This is what ctcpd's GET /v1/runs/<id>/html serves — no file
 * round-trip, deterministic bytes for identical inputs.
 * @throws std::runtime_error on malformed input
 */
std::string renderHtmlFromJson(const std::string &json_text,
                               const std::string &interval_path,
                               const std::string &title);

} // namespace ctcp::report

#endif // CTCPSIM_OBS_REPORT_HH
