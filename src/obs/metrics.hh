/**
 * @file
 * Dependency-free, thread-safe metrics registry with Prometheus
 * text-format exposition — the operator-facing half of the ctcpd
 * service (GET /v1/metrics).
 *
 * Three instrument kinds, mirroring the Prometheus data model:
 *
 *   Counter   — monotonically increasing 64-bit total. inc() for
 *               inline instrumentation; incTo() raises the counter to
 *               an externally-tracked monotonic total (scrape-time
 *               sync from sources like WorkloadCache::Stats that
 *               already keep their own counts).
 *   Gauge     — a double that goes up and down (queue depth, busy
 *               workers, runs by state).
 *   Histogram — fixed bucket bounds decided at family registration;
 *               exposition renders the cumulative _bucket/_sum/_count
 *               triplet Prometheus expects.
 *
 * Families are identified by name; children by their label set.
 * counter()/gauge()/histogram() get-or-create under one registry
 * mutex and return references that stay valid for the registry's
 * lifetime, so hot paths touch only the instrument's own atomics —
 * never the registry lock. Everything here is an operational side
 * channel: nothing in this file may feed back into simulation results
 * (DESIGN decision 13).
 */

#ifndef CTCPSIM_OBS_METRICS_HH
#define CTCPSIM_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace ctcp::obs {

/** Label set of one child, in presentation order. */
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/** Monotonic event total. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    /**
     * Raise the counter to @p total when larger (no-op otherwise):
     * scrape-time sync from a source that keeps its own monotonic
     * count. Mixing inc() and incTo() on one counter is a usage bug.
     */
    void incTo(std::uint64_t total)
    {
        std::uint64_t seen = value_.load(std::memory_order_relaxed);
        while (seen < total &&
               !value_.compare_exchange_weak(seen, total,
                                             std::memory_order_relaxed))
            ;
    }

    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** A value that can go up and down. */
class Gauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }

    void add(double d)
    {
        double seen = value_.load(std::memory_order_relaxed);
        while (!value_.compare_exchange_weak(seen, seen + d,
                                             std::memory_order_relaxed))
            ;
    }

    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/** Fixed-bucket distribution (latencies, sizes). */
class Histogram
{
  public:
    void observe(double v);

    std::uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    double sum() const { return sum_.load(std::memory_order_relaxed); }

    const std::vector<double> &bounds() const { return bounds_; }

    /** Non-cumulative count of bucket @p i (bounds().size() = +Inf). */
    std::uint64_t bucketCount(std::size_t i) const
    {
        return buckets_[i].load(std::memory_order_relaxed);
    }

  private:
    friend class MetricsRegistry;
    explicit Histogram(std::vector<double> bounds);

    std::vector<double> bounds_; ///< ascending upper bounds
    /** bounds_.size() + 1 slots; the last is the +Inf overflow. */
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
    std::atomic<double> sum_{0.0};
    std::atomic<std::uint64_t> count_{0};
};

/**
 * Named families of counters/gauges/histograms with text exposition.
 * All registration calls are thread-safe; re-registering a name with a
 * different kind (or different histogram bounds) is a programming bug
 * and panics.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** Get or create the child of family @p name with @p labels. */
    Counter &counter(const std::string &name, const std::string &help,
                     const MetricLabels &labels = {});
    Gauge &gauge(const std::string &name, const std::string &help,
                 const MetricLabels &labels = {});
    /** @p bounds must be ascending; fixed for the family's lifetime. */
    Histogram &histogram(const std::string &name,
                         const std::string &help,
                         const std::vector<double> &bounds,
                         const MetricLabels &labels = {});

    /**
     * Register a family without creating a child, so labeled families
     * appear in the exposition (# HELP / # TYPE) before first use —
     * scrapers can discover every family on a fresh daemon.
     */
    void declareCounter(const std::string &name,
                        const std::string &help);
    void declareGauge(const std::string &name, const std::string &help);
    void declareHistogram(const std::string &name,
                          const std::string &help,
                          const std::vector<double> &bounds);

    /**
     * Prometheus text format (0.0.4): families in registration order,
     * children in creation order, HELP text and label values escaped.
     */
    std::string exposition() const;

    /** Request-latency buckets, 1ms .. 10s. */
    static const std::vector<double> &defaultLatencyBuckets();

  private:
    enum class Kind : std::uint8_t { Counter, Gauge, Histogram };

    struct Child
    {
        MetricLabels labels;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    struct Family
    {
        std::string name;
        std::string help;
        Kind kind = Kind::Counter;
        std::vector<double> bounds; ///< histograms only
        std::vector<Child> children;
    };

    Family &familyLocked(const std::string &name,
                         const std::string &help, Kind kind,
                         const std::vector<double> &bounds);
    Child &childLocked(Family &family, const MetricLabels &labels);

    mutable std::mutex mutex_;
    /** unique_ptr keeps Family addresses stable across growth. */
    std::vector<std::unique_ptr<Family>> families_;
};

} // namespace ctcp::obs

#endif // CTCPSIM_OBS_METRICS_HH
