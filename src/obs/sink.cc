#include "obs/sink.hh"

#include <numeric>
#include <stdexcept>

namespace ctcp {

const char *
obsKindName(ObsKind kind)
{
    switch (kind) {
      case ObsKind::Fetch:      return "fetch";
      case ObsKind::TcHit:      return "tc-hit";
      case ObsKind::TcMiss:     return "tc-miss";
      case ObsKind::TraceBuild: return "trace-build";
      case ObsKind::Assign:     return "assign";
      case ObsKind::Rename:     return "rename";
      case ObsKind::Issue:      return "issue";
      case ObsKind::Execute:    return "execute";
      case ObsKind::Forward:    return "forward";
      case ObsKind::Complete:   return "complete";
      case ObsKind::Retire:     return "retire";
      case ObsKind::Flush:      return "flush";
      case ObsKind::Mem:        return "mem";
      case ObsKind::Snapshot:   return "snapshot";
      case ObsKind::NumKinds:   break;
    }
    return "unknown";
}

ObsSink::ObsSink(std::size_t ring_capacity)
    : capacity_(ring_capacity ? ring_capacity : 1)
{
    ring_.reserve(capacity_);
}

ObsSink::~ObsSink()
{
    finish();
}

void
ObsSink::addWriter(std::unique_ptr<ObsWriter> writer)
{
    writer->begin();
    writers_.push_back(std::move(writer));
}

std::uint32_t
ObsSink::parseFilter(const std::string &spec)
{
    if (spec.empty() || spec == "all")
        return allKinds();
    std::uint32_t mask = 0;
    std::size_t start = 0;
    while (start <= spec.size()) {
        std::size_t end = spec.find(',', start);
        if (end == std::string::npos)
            end = spec.size();
        const std::string name = spec.substr(start, end - start);
        bool found = false;
        for (unsigned k = 0; k < numObsKinds; ++k) {
            if (name == obsKindName(static_cast<ObsKind>(k))) {
                mask |= 1u << k;
                found = true;
                break;
            }
        }
        if (!found) {
            // Build the valid-kind list from the name table itself, so
            // the message can never drift from the actual taxonomy.
            std::string kinds;
            for (unsigned k = 0; k < numObsKinds; ++k) {
                if (k)
                    kinds += ", ";
                kinds += obsKindName(static_cast<ObsKind>(k));
            }
            throw std::invalid_argument(
                "unknown trace event kind '" + name + "' (kinds: " +
                kinds + ")");
        }
        start = end + 1;
        if (end == spec.size())
            break;
    }
    return mask;
}

void
ObsSink::flush()
{
    for (const ObsEvent &event : ring_)
        for (const auto &writer : writers_)
            writer->write(event);
    ring_.clear();
}

void
ObsSink::finish()
{
    if (finished_)
        return;
    finished_ = true;
    flush();
    for (const auto &writer : writers_)
        writer->end();
}

std::uint64_t
ObsSink::recorded() const
{
    return std::accumulate(recordedPerKind_,
                           recordedPerKind_ + numObsKinds,
                           std::uint64_t{0});
}

} // namespace ctcp
