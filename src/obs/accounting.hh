/**
 * @file
 * Top-down cycle accounting: every cycle, every cluster issue slot is
 * attributed to exactly one category of a closed taxonomy.
 *
 * The taxonomy answers the question the paper's figures pose — *where
 * do the cycles go* under each steering strategy: doing useful work,
 * waiting for an operand inside the cluster, waiting for a value to
 * cross the interconnect (split by hop count, the quantity FDRT
 * steering exists to reduce), contending for a functional unit, backed
 * up behind a full reservation station or ROB, starved by the front end
 * (trace-cache miss vs mispredict redirect), or simply idle.
 *
 * Attribution happens at dispatch/wakeup, not retire: a slot that goes
 * unused *this* cycle is explained by the oldest instructions that
 * could not fill it *this* cycle, which is the event the steering
 * strategies actually influence (see DESIGN decision 8).
 *
 * Conservation is structural: per cluster, the attributed slot-cycles
 * sum to cycles × issue_width by construction, and a unit test pins it
 * across all four strategies.
 *
 * The layer follows the observability zero-cost pattern: a raw pointer
 * that is null by default, guarded increments, all storage allocated at
 * construction — nothing on the hot path allocates, and with the
 * pointer null the simulation is bit-identical to a build without it.
 */

#ifndef CTCPSIM_OBS_ACCOUNTING_HH
#define CTCPSIM_OBS_ACCOUNTING_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"

namespace ctcp {

class Interconnect;
struct TimedInst;

/** Where one cluster issue slot went for one cycle. */
enum class SlotCat : std::uint8_t
{
    /** An instruction dispatched to a functional unit. */
    Useful = 0,
    /** Oldest blocker waits on an operand produced in this cluster. */
    WaitIntra,
    /** Oldest blocker waits on a 1-hop inter-cluster forward. */
    WaitFwd1,
    /** ... a 2-hop forward. */
    WaitFwd2,
    /** ... a 3-or-more-hop forward. */
    WaitFwd3,
    /** Operands ready but no functional unit of the class was free. */
    FuBusy,
    /** The cluster's reservation station rejected an issue this cycle. */
    RsFull,
    /** Rename stalled on a full ROB this cycle. */
    RobFull,
    /** Front end delivered nothing: trace-cache / I-cache refill. */
    FetchTcMiss,
    /** Front end delivered nothing: gated behind a branch redirect. */
    FetchRedirect,
    /** Nothing in flight wanted the slot. */
    Idle,

    NumCats,
};

constexpr unsigned numSlotCats = static_cast<unsigned>(SlotCat::NumCats);

/** Stable snake-case name used in exports and report keys. */
const char *slotCatName(SlotCat cat);

/**
 * Per-cluster slot-cycle attribution, inter-cluster forwarding-hop
 * matrix, and the supporting per-cycle back-pressure flags.
 *
 * Protocol per cycle (driven by the simulator):
 *  1. beginCycle(fetch) at the top of step() rotates the back-pressure
 *     flags (full conditions observed during cycle N explain empty
 *     slots in cycle N+1 — the pipeline phases inside one step() run
 *     completions-first, so "full" is only known after dispatch ran).
 *  2. Each cluster's dispatch walk calls addSlot()/addSlots() and
 *     finally addEmptySlots() so exactly `width` slots are attributed.
 *  3. noteRsFull()/noteRobFull() mark back-pressure for the next cycle;
 *     noteForward() records each operand forward at execute.
 */
class CycleAccounting
{
  public:
    /** Why the front end delivered nothing this cycle. */
    enum class FetchState : std::uint8_t { Flowing, TcMiss, Redirect };

    CycleAccounting(unsigned num_clusters, unsigned cluster_width,
                    const Interconnect &icn);

    /**
     * Rotate back-pressure flags; called once at the top of step().
     * Inline and register-only — this runs every simulated cycle.
     */
    void
    beginCycle(FetchState fetch)
    {
        ++cycles_;
        rsFullPrev_ = rsFullCur_;
        rsFullCur_ = 0;
        robFullPrev_ = robFullCur_;
        robFullCur_ = false;
        fetch_ = fetch;
    }

    // ---- Hot-path increments (inline, no branches beyond bounds) ----
    void
    addSlot(ClusterId c, SlotCat cat)
    {
        ++slots_[static_cast<unsigned>(c) * numSlotCats +
                 static_cast<unsigned>(cat)];
    }

    void
    addSlots(ClusterId c, SlotCat cat, unsigned n)
    {
        slots_[static_cast<unsigned>(c) * numSlotCats +
               static_cast<unsigned>(cat)] += n;
    }

    /**
     * Attribute @p n unexplained empty slots on cluster @p c using the
     * back-pressure priority RsFull > RobFull > Redirect > TcMiss >
     * Idle (most specific machine condition wins). Inline — it runs
     * per cluster per cycle at the tail of the attribution walk.
     */
    void
    addEmptySlots(ClusterId c, unsigned n)
    {
        if (n == 0)
            return;
        SlotCat cat = SlotCat::Idle;
        if (rsFullPrev_ >> static_cast<unsigned>(c) & 1u)
            cat = SlotCat::RsFull;
        else if (robFullPrev_)
            cat = SlotCat::RobFull;
        else if (fetch_ == FetchState::Redirect)
            cat = SlotCat::FetchRedirect;
        else if (fetch_ == FetchState::TcMiss)
            cat = SlotCat::FetchTcMiss;
        addSlots(c, cat, n);
    }

    /** Cluster @p c rejected an issue (reservation station full). */
    void noteRsFull(ClusterId c) { rsFullCur_ |= 1u << static_cast<unsigned>(c); }

    /** Rename stalled on a full ROB. */
    void noteRobFull() { robFullCur_ = true; }

    /** One operand value forwarded from @p from to @p to at execute. */
    void
    noteForward(ClusterId from, ClusterId to)
    {
        ++fwd_[static_cast<unsigned>(from) * numClusters_ +
               static_cast<unsigned>(to)];
    }

    /**
     * Row-major forwarding-matrix storage (numClusters × numClusters),
     * exposed so the execute loop can cache the base pointer once and
     * count a forward with a single indexed increment instead of
     * re-loading the accounting object's internals per operand.
     */
    std::uint64_t *forwardMatrixData() { return fwd_.data(); }

    /**
     * Map a cached hop distance to its wait category. Branchless —
     * WaitIntra..WaitFwd3 are contiguous enum values, so this is a
     * clamp and an offset; it runs per scanned instruction inside the
     * accounted dispatch walk.
     */
    static SlotCat
    waitCategory(unsigned hops)
    {
        const unsigned h = hops < 3u ? hops : 3u;
        return static_cast<SlotCat>(
            static_cast<unsigned>(SlotCat::WaitIntra) + h);
    }

    /**
     * Hop distance of the worst (most-hops) incomplete producer of an
     * instruction about to park with outstanding producers: that
     * producer bounds the wake-up, so it explains the wait. 0 (intra)
     * when no producer has a cluster yet.
     *
     * Called once at issue — the result is cached in
     * TimedInst::stallHops so the per-cycle attribution walk never
     * chases producer pointers (see DESIGN decision 8). Producers
     * steered or completed after the consumer parks are not re-read;
     * the cached classification is a park-time snapshot.
     */
    unsigned waitingHops(const TimedInst &inst) const;

    // ---- Queries ------------------------------------------------------
    unsigned numClusters() const { return numClusters_; }
    unsigned clusterWidth() const { return width_; }
    std::uint64_t cycles() const { return cycles_; }

    std::uint64_t
    slots(unsigned cluster, SlotCat cat) const
    {
        return slots_[cluster * numSlotCats + static_cast<unsigned>(cat)];
    }

    /** Sum of one category across all clusters. */
    std::uint64_t machineSlots(SlotCat cat) const;

    /** Total attributed slot-cycles across the machine. */
    std::uint64_t machineSlotsTotal() const;

    std::uint64_t
    forwards(unsigned from, unsigned to) const
    {
        return fwd_[from * numClusters_ + to];
    }

    /**
     * Export everything into a flat metric map (SimResult::accounting):
     * slots.<cat>, clusterC.slots.<cat>, fwd_matrix.F.T, plus the
     * geometry needed to interpret them.
     */
    void exportTo(std::map<std::string, double> &out) const;

  private:
    const Interconnect &icn_;
    unsigned numClusters_;
    unsigned width_;
    std::uint64_t cycles_ = 0;

    /** numClusters × numSlotCats slot-cycle counters. */
    std::vector<std::uint64_t> slots_;
    /** numClusters × numClusters forwarding counts (row = producer). */
    std::vector<std::uint64_t> fwd_;

    // Back-pressure flags: *Cur_ collected during this cycle, *Prev_
    // consumed by addEmptySlots (rotated by beginCycle). Per-cluster
    // RS-full flags are one bit each so the per-cycle rotation is two
    // register moves, not vector traffic (clusters capped at 32).
    std::uint32_t rsFullCur_ = 0;
    std::uint32_t rsFullPrev_ = 0;
    bool robFullCur_ = false;
    bool robFullPrev_ = false;
    FetchState fetch_ = FetchState::Flowing;
};

} // namespace ctcp

#endif // CTCPSIM_OBS_ACCOUNTING_HH
