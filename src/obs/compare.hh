/**
 * @file
 * Campaign regression comparator.
 *
 * Diffs two campaign (or single-run) report JSON documents metric by
 * metric under relative tolerances. Jobs are matched by label; every
 * headline number, metrics entry, and accounting entry becomes one
 * named metric. The comparator reports structural mismatches (missing
 * jobs, ok-vs-failed status flips) and out-of-tolerance deltas, and
 * renders a human-readable delta table for CI logs.
 */

#ifndef CTCPSIM_OBS_COMPARE_HH
#define CTCPSIM_OBS_COMPARE_HH

#include <map>
#include <string>
#include <vector>

namespace ctcp::report {

struct ReportView;

/** Relative tolerances (percent) used by compareReports(). */
struct Tolerances
{
    /** Allowed relative drift for any metric without its own entry. */
    double defaultRelPct = 0.0;

    /**
     * Per-metric overrides, keyed by bare metric name (e.g. "ipc",
     * "slots.useful") — applied to that metric in every job.
     */
    std::map<std::string, double> perMetric;

    double toleranceFor(const std::string &metric) const;
};

/** One out-of-tolerance (or just noteworthy) metric difference. */
struct Delta
{
    std::string job;        ///< job label ("" for single-run docs)
    std::string metric;
    double baseline = 0.0;
    double candidate = 0.0;
    double relPct = 0.0;    ///< |a-b| / max(|a|,|b|) * 100
    double tolPct = 0.0;
    bool withinTol = true;
};

/** Full comparison outcome. */
struct Comparison
{
    /** Jobs missing on one side, or ok/failed status flips. */
    std::vector<std::string> structural;

    /** Every compared metric that differs at all (worst first). */
    std::vector<Delta> deltas;

    bool ok() const;

    /** Count of deltas exceeding their tolerance. */
    std::size_t violations() const;
};

/**
 * Compare @p candidate against @p baseline. Both sides should come
 * from report::fromJsonText(). Metrics present on only one side are
 * structural findings, not deltas.
 */
Comparison compareReports(const ReportView &baseline,
                          const ReportView &candidate,
                          const Tolerances &tol);

/**
 * Render @p cmp as a fixed-width table (structural findings first,
 * then one row per delta with a PASS/FAIL verdict column). Returns
 * "reports match.\n" when there is nothing to show.
 */
std::string renderDeltaTable(const Comparison &cmp);

} // namespace ctcp::report

#endif // CTCPSIM_OBS_COMPARE_HH
