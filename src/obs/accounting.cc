#include "obs/accounting.hh"

#include <algorithm>

#include "cluster/interconnect.hh"
#include "cluster/timed_inst.hh"
#include "common/logging.hh"

namespace ctcp {

const char *
slotCatName(SlotCat cat)
{
    switch (cat) {
      case SlotCat::Useful:        return "useful";
      case SlotCat::WaitIntra:     return "wait_intra";
      case SlotCat::WaitFwd1:      return "wait_fwd1";
      case SlotCat::WaitFwd2:      return "wait_fwd2";
      case SlotCat::WaitFwd3:      return "wait_fwd3";
      case SlotCat::FuBusy:        return "fu_busy";
      case SlotCat::RsFull:        return "rs_full";
      case SlotCat::RobFull:       return "rob_full";
      case SlotCat::FetchTcMiss:   return "fetch_tc_miss";
      case SlotCat::FetchRedirect: return "fetch_redirect";
      case SlotCat::Idle:          return "idle";
      case SlotCat::NumCats:       break;
    }
    ctcp_panic("invalid slot category %u", static_cast<unsigned>(cat));
}

CycleAccounting::CycleAccounting(unsigned num_clusters,
                                 unsigned cluster_width,
                                 const Interconnect &icn)
    : icn_(icn), numClusters_(num_clusters), width_(cluster_width),
      slots_(num_clusters * numSlotCats, 0),
      fwd_(num_clusters * num_clusters, 0)
{
    ctcp_assert(num_clusters > 0 && cluster_width > 0,
                "cycle accounting needs a real machine shape");
    ctcp_assert(num_clusters <= 32,
                "RS-full flags are a 32-bit mask (%u clusters)",
                num_clusters);
}

unsigned
CycleAccounting::waitingHops(const TimedInst &inst) const
{
    // The parking instruction still has incomplete producers; the most
    // distant one bounds when it can wake, so it explains the wait.
    // producerPtr is only dereferenced while producerComplete is false
    // (the push protocol's liveness guarantee).
    unsigned worst = 0;
    for (const OperandState &op : inst.ops) {
        if (!op.valid || op.fromRF || op.producerComplete)
            continue;
        const TimedInst *prod = op.producerPtr;
        if (prod == nullptr || prod->cluster == invalidCluster)
            continue;   // producer not steered yet: no hop distance
        worst = std::max(worst, icn_.distance(prod->cluster, inst.cluster));
    }
    return worst;
}

std::uint64_t
CycleAccounting::machineSlots(SlotCat cat) const
{
    std::uint64_t total = 0;
    for (unsigned c = 0; c < numClusters_; ++c)
        total += slots(c, cat);
    return total;
}

std::uint64_t
CycleAccounting::machineSlotsTotal() const
{
    std::uint64_t total = 0;
    for (std::uint64_t v : slots_)
        total += v;
    return total;
}

void
CycleAccounting::exportTo(std::map<std::string, double> &out) const
{
    out["cycles"] = static_cast<double>(cycles_);
    out["num_clusters"] = static_cast<double>(numClusters_);
    out["cluster_width"] = static_cast<double>(width_);
    out["slots.total"] = static_cast<double>(machineSlotsTotal());
    for (unsigned k = 0; k < numSlotCats; ++k) {
        const SlotCat cat = static_cast<SlotCat>(k);
        out[std::string("slots.") + slotCatName(cat)] =
            static_cast<double>(machineSlots(cat));
    }
    for (unsigned c = 0; c < numClusters_; ++c) {
        const std::string prefix =
            "cluster" + std::to_string(c) + ".slots.";
        for (unsigned k = 0; k < numSlotCats; ++k) {
            const SlotCat cat = static_cast<SlotCat>(k);
            out[prefix + slotCatName(cat)] =
                static_cast<double>(slots(c, cat));
        }
    }
    std::uint64_t total_forwards = 0;
    for (unsigned f = 0; f < numClusters_; ++f)
        for (unsigned t = 0; t < numClusters_; ++t) {
            out["fwd_matrix." + std::to_string(f) + "." +
                std::to_string(t)] = static_cast<double>(forwards(f, t));
            total_forwards += forwards(f, t);
        }
    out["forwards.total"] = static_cast<double>(total_forwards);
}

} // namespace ctcp
