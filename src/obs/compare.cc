#include "obs/compare.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/report.hh"

namespace ctcp::report {

namespace {

/** Flatten one run into named metrics (headline + accounting). */
std::map<std::string, double>
flattenRun(const RunView &run)
{
    std::map<std::string, double> metrics;
    metrics["cycles"] = run.cycles;
    metrics["instructions"] = run.instructions;
    metrics["ipc"] = run.ipc;
    for (const auto &[name, value] : run.accounting)
        metrics[name] = value;
    return metrics;
}

double
relDiffPct(double a, double b)
{
    if (a == b)
        return 0.0;
    const double scale = std::max(std::fabs(a), std::fabs(b));
    return scale > 0.0 ? 100.0 * std::fabs(a - b) / scale : 0.0;
}

std::string
fmtNum(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

} // namespace

double
Tolerances::toleranceFor(const std::string &metric) const
{
    const auto it = perMetric.find(metric);
    return it != perMetric.end() ? it->second : defaultRelPct;
}

bool
Comparison::ok() const
{
    return structural.empty() && violations() == 0;
}

std::size_t
Comparison::violations() const
{
    std::size_t n = 0;
    for (const Delta &d : deltas)
        if (!d.withinTol)
            ++n;
    return n;
}

Comparison
compareReports(const ReportView &baseline, const ReportView &candidate,
               const Tolerances &tol)
{
    Comparison cmp;
    for (const RunView &base : baseline.runs) {
        const auto it = std::find_if(
            candidate.runs.begin(), candidate.runs.end(),
            [&](const RunView &r) { return r.label == base.label; });
        if (it == candidate.runs.end()) {
            cmp.structural.push_back("job '" + base.label +
                                     "' missing from candidate report");
            continue;
        }
        const RunView &cand = *it;
        if (base.ok != cand.ok) {
            cmp.structural.push_back(
                "job '" + base.label + "' is " +
                (base.ok ? "ok" : "failed") + " in baseline but " +
                (cand.ok ? "ok" : "failed") + " in candidate");
            continue;
        }
        if (!base.ok)
            continue;
        const std::map<std::string, double> a = flattenRun(base);
        const std::map<std::string, double> b = flattenRun(cand);
        for (const auto &[metric, av] : a) {
            const auto bit = b.find(metric);
            if (bit == b.end()) {
                cmp.structural.push_back(
                    "job '" + base.label + "' metric '" + metric +
                    "' missing from candidate report");
                continue;
            }
            const double rel = relDiffPct(av, bit->second);
            if (rel == 0.0)
                continue;
            Delta d;
            d.job = base.label;
            d.metric = metric;
            d.baseline = av;
            d.candidate = bit->second;
            d.relPct = rel;
            d.tolPct = tol.toleranceFor(metric);
            d.withinTol = rel <= d.tolPct;
            cmp.deltas.push_back(std::move(d));
        }
        for (const auto &[metric, bv] : b) {
            (void)bv;
            if (a.find(metric) == a.end())
                cmp.structural.push_back(
                    "job '" + base.label + "' metric '" + metric +
                    "' missing from baseline report");
        }
    }
    for (const RunView &cand : candidate.runs) {
        const bool known = std::any_of(
            baseline.runs.begin(), baseline.runs.end(),
            [&](const RunView &r) { return r.label == cand.label; });
        if (!known)
            cmp.structural.push_back("job '" + cand.label +
                                     "' missing from baseline report");
    }
    // Worst offenders first; ties broken by (job, metric) so the
    // table is deterministic.
    std::stable_sort(cmp.deltas.begin(), cmp.deltas.end(),
                     [](const Delta &x, const Delta &y) {
                         if (x.withinTol != y.withinTol)
                             return !x.withinTol;
                         if (x.relPct != y.relPct)
                             return x.relPct > y.relPct;
                         if (x.job != y.job)
                             return x.job < y.job;
                         return x.metric < y.metric;
                     });
    return cmp;
}

std::string
renderDeltaTable(const Comparison &cmp)
{
    if (cmp.structural.empty() && cmp.deltas.empty())
        return "reports match.\n";
    std::string out;
    for (const std::string &finding : cmp.structural)
        out += "STRUCTURAL: " + finding + "\n";
    if (cmp.deltas.empty())
        return out;

    std::vector<std::vector<std::string>> rows;
    rows.push_back(
        {"job", "metric", "baseline", "candidate", "rel%", "tol%",
         "verdict"});
    for (const Delta &d : cmp.deltas)
        rows.push_back({d.job, d.metric, fmtNum(d.baseline),
                        fmtNum(d.candidate), fmtNum(d.relPct),
                        fmtNum(d.tolPct),
                        d.withinTol ? "PASS" : "FAIL"});
    std::vector<std::size_t> widths(rows[0].size(), 0);
    for (const auto &row : rows)
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
        std::string line;
        for (std::size_t i = 0; i < rows[r].size(); ++i) {
            std::string cell = rows[r][i];
            cell.resize(widths[i], ' ');
            line += cell;
            if (i + 1 < rows[r].size())
                line += "  ";
        }
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        out += line + "\n";
        if (r == 0) {
            std::string rule;
            for (std::size_t i = 0; i < widths.size(); ++i) {
                rule.append(widths[i], '-');
                if (i + 1 < widths.size())
                    rule += "  ";
            }
            out += rule + "\n";
        }
    }
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "%zu metric(s) out of tolerance, %zu within.\n",
                  cmp.violations(), cmp.deltas.size() - cmp.violations());
    out += buf;
    return out;
}

} // namespace ctcp::report
