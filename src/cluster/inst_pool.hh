/**
 * @file
 * Arena-backed pool of TimedInst records.
 *
 * The fetch engine allocates one TimedInst per simulated instruction
 * and the retire stage frees it a few hundred cycles later — a
 * perfectly LIFO-ish churn that used to hit malloc/free once per
 * instruction. The pool carves blocks of hot records plus their
 * parallel cold array out of a per-run Arena, placement-constructs each
 * slot exactly once, and recycles freed slots through an intrusive free
 * list threaded via schedNext (unused while an instruction is free).
 *
 * Recycling preserves two expensive-to-rebuild resources: the cold
 * pointer wired at carve time, and the waiters SmallVec's heap spill
 * buffer (if it ever grew past inline capacity, the capacity survives
 * reinitialisation, so steady state performs no allocation at all).
 *
 * The pool must be destroyed (or clear() called) before the Arena it
 * draws from is reset: the destructor runs ~TimedInst on every carved
 * slot to release any SmallVec spill buffers.
 */

#ifndef CTCPSIM_CLUSTER_INST_POOL_HH
#define CTCPSIM_CLUSTER_INST_POOL_HH

#include <cstddef>
#include <new>
#include <utility>
#include <vector>

#include "cluster/timed_inst.hh"
#include "common/arena.hh"

namespace ctcp {

/** Fixed-block TimedInst allocator over an Arena. */
class TimedInstPool
{
  public:
    /** @param arena backing storage; must outlive the pool. */
    explicit TimedInstPool(Arena &arena) : arena_(arena) {}

    TimedInstPool(const TimedInstPool &) = delete;
    TimedInstPool &operator=(const TimedInstPool &) = delete;

    ~TimedInstPool() { clear(); }

    /** A freshly default-initialised instruction (cold slot wired). */
    TimedInst *
    acquire()
    {
        if (free_ == nullptr)
            carveBlock();
        TimedInst *inst = free_;
        free_ = inst->schedNext;
        // Reinitialise in place, keeping the slot's cold pointer and
        // the waiters vector's grown capacity across reuse.
        auto saved_waiters = std::move(inst->waiters);
        TimedInstCold *cold = inst->coldSlot;
        *inst = TimedInst{};
        saved_waiters.clear();
        inst->waiters = std::move(saved_waiters);
        inst->coldSlot = cold;
        *cold = TimedInstCold{};
        return inst;
    }

    /** Return @p inst to the free list. No pointers to it may remain. */
    void
    release(TimedInst *inst)
    {
        inst->schedNext = free_;
        free_ = inst;
    }

    /**
     * Destroy every carved slot and drop all block references. Call
     * before resetting the backing Arena; every instruction must
     * already be released (or at least no longer referenced).
     */
    void
    clear()
    {
        for (const Block &block : blocks_) {
            for (std::size_t i = 0; i < blockSize; ++i)
                block.hot[i].~TimedInst();
        }
        blocks_.clear();
        free_ = nullptr;
    }

    /** Slots carved so far (live + free). */
    std::size_t capacity() const { return blocks_.size() * blockSize; }

  private:
    static constexpr std::size_t blockSize = 64;

    struct Block
    {
        TimedInst *hot = nullptr;
        TimedInstCold *cold = nullptr;
    };

    void
    carveBlock()
    {
        Block block;
        block.hot = arena_.allocate<TimedInst>(blockSize);
        block.cold = arena_.allocate<TimedInstCold>(blockSize);
        for (std::size_t i = 0; i < blockSize; ++i) {
            TimedInst *inst = new (&block.hot[i]) TimedInst{};
            inst->coldSlot = new (&block.cold[i]) TimedInstCold{};
            inst->schedNext = free_;
            free_ = inst;
        }
        blocks_.push_back(block);
    }

    Arena &arena_;
    TimedInst *free_ = nullptr;
    std::vector<Block> blocks_;
};

} // namespace ctcp

#endif // CTCPSIM_CLUSTER_INST_POOL_HH
