/**
 * @file
 * Reservation-station classes and the functional-unit → station
 * routing table, split out of cluster.hh so the fill unit and the
 * fetch engine can precompute an instruction's station class (part of
 * a trace line's memoized dispatch plan) without depending on the
 * whole cluster model.
 */

#ifndef CTCPSIM_CLUSTER_STATION_HH
#define CTCPSIM_CLUSTER_STATION_HH

#include <array>
#include <cstdint>

#include "isa/opcodes.hh"

namespace ctcp {

/** Reservation-station classes within a cluster. */
enum class StationKind : std::uint8_t
{
    Mem = 0,
    Branch = 1,
    Complex = 2,
    Simple0 = 3,
    Simple1 = 4,
    NumStations = 5,
};

inline constexpr unsigned numStations =
    static_cast<unsigned>(StationKind::NumStations);

/** Sentinel for TimedInst::stationKind when no plan was stamped. */
inline constexpr std::uint8_t noStationPlan = 0xff;

/** Routing from functional-unit class to reservation-station class. */
inline constexpr std::array<StationKind,
    static_cast<std::size_t>(FuKind::NumKinds)> fuStationTable = {
    StationKind::Simple0,   // IntAlu (caller picks Simple0 vs Simple1)
    StationKind::Mem,       // IntMem
    StationKind::Branch,    // Branch
    StationKind::Complex,   // IntComplex
    StationKind::Simple0,   // FpBasic
    StationKind::Complex,   // FpComplex
    StationKind::Mem,       // FpMem
};

inline StationKind
stationFor(FuKind kind)
{
    return fuStationTable[static_cast<std::size_t>(kind)];
}

} // namespace ctcp

#endif // CTCPSIM_CLUSTER_STATION_HH
