#include "cluster/interconnect.hh"

namespace ctcp {

namespace {

/** Hop count between two clusters under @p topo (from != to). */
unsigned
hopCount(Topology topo, int n, int from, int to, unsigned group_size)
{
    const unsigned linear =
        static_cast<unsigned>(std::abs(from - to));
    switch (topo) {
      case Topology::LinearChain:
        return linear;
      case Topology::Ring:
        return std::min(linear, static_cast<unsigned>(n) - linear);
      case Topology::Crossbar:
      case Topology::Bus:
        // Every remote cluster is directly reachable: one hop, so bus
        // (and crossbar) waits land in wait_fwd1 by construction.
        return 1;
      case Topology::Hierarchical:
        return static_cast<unsigned>(from) / group_size ==
                       static_cast<unsigned>(to) / group_size
                   ? 1 : 2;
    }
    return linear;
}

} // namespace

Interconnect::Interconnect(const ClusterConfig &cfg)
    : numClusters_(static_cast<int>(cfg.numClusters)),
      hopLatency_(cfg.hopLatency), topo_(cfg.effectiveTopology()),
      busLatency_(cfg.busLatency)
{
    ctcp_assert(numClusters_ > 0, "interconnect needs clusters");
    const unsigned n = static_cast<unsigned>(numClusters_);
    const unsigned group_size =
        cfg.hierGroupSize > 0 ? cfg.hierGroupSize : 1;
    dist_.assign(n * n, 0);
    lat_.assign(n * n, 0);
    for (int from = 0; from < numClusters_; ++from) {
        for (int to = 0; to < numClusters_; ++to) {
            if (from == to)
                continue;   // same cluster: zero hops, zero cycles
            const unsigned hops =
                hopCount(topo_, numClusters_, from, to, group_size);
            unsigned cycles = 0;
            switch (topo_) {
              case Topology::Bus:
                // Uniform broadcast latency; the bandwidth limit is
                // modelled by the simulator's PortSchedule.
                cycles = busLatency_;
                break;
              case Topology::Hierarchical:
                cycles = hops * hopLatency_ +
                         (hops > 1 ? cfg.hierGroupLatency : 0);
                break;
              default:
                cycles = hops * hopLatency_;
                break;
            }
            const unsigned i = static_cast<unsigned>(from) * n +
                               static_cast<unsigned>(to);
            dist_[i] = hops;
            lat_[i] = cycles;
            maxDistance_ = std::max(maxDistance_, hops);
        }
    }
    buildCentrality();
}

} // namespace ctcp
