/**
 * @file
 * One execution cluster: five 8-entry reservation stations feeding
 * eight special-purpose functional units (Figure 3 of the paper).
 *
 * Station layout:
 *   Mem      — integer and FP memory operations
 *   Branch   — all control transfers
 *   Complex  — integer mul/div and FP mul/div/sqrt
 *   Simple0  — simple integer ALU and basic FP (first copy)
 *   Simple1  — simple integer ALU and basic FP (second copy)
 *
 * Functional units: 2x simple integer, 1x integer memory, 1x branch,
 * 1x complex integer, 1x basic FP, 1x complex FP, 1x FP memory.
 * Reservation stations accept at most rsWritePorts new instructions
 * per cycle and select ready instructions out of order (oldest first).
 *
 * Scheduling is event-driven: resident instructions live on one of two
 * intrusive lists. Instructions with an outstanding producer sit on a
 * waiting list the dispatch loop never touches; the producer's
 * completion push wakes them onto the age-ordered schedulable list,
 * where selection is a single integer compare against the cached
 * TimedInst::readyAt. Stations track occupancy by count only — an
 * instruction records its station, so removal at dispatch is O(1).
 */

#ifndef CTCPSIM_CLUSTER_CLUSTER_HH
#define CTCPSIM_CLUSTER_CLUSTER_HH

#include <array>
#include <vector>

#include "cluster/timed_inst.hh"
#include "common/logging.hh"
#include "config/sim_config.hh"
#include "isa/opcodes.hh"
#include "obs/accounting.hh"
#include "stats/stats.hh"

namespace ctcp {

class ObsSink;

namespace verify {
class FaultInjector;
class InvariantChecker;
} // namespace verify

/** Reservation-station classes within a cluster. */
enum class StationKind : std::uint8_t
{
    Mem = 0,
    Branch = 1,
    Complex = 2,
    Simple0 = 3,
    Simple1 = 4,
    NumStations = 5,
};

inline constexpr unsigned numStations =
    static_cast<unsigned>(StationKind::NumStations);

/**
 * One out-of-order-selectable reservation station. Tracks occupancy
 * and per-cycle write ports by count; residency itself lives on the
 * owning cluster's scheduler lists.
 */
class ReservationStation
{
  public:
    ReservationStation(unsigned entries, unsigned write_ports)
        : capacity_(entries), writePorts_(write_ports)
    {}

    /** Free entries right now. */
    unsigned freeEntries() const { return capacity_ - size_; }

    bool full() const { return size_ >= capacity_; }
    std::size_t occupancy() const { return size_; }

    /**
     * Try to insert @p inst during cycle @p now, respecting capacity
     * and per-cycle write-port limits. Records the station on the
     * instruction so removal is O(1).
     */
    bool tryInsert(TimedInst *inst, Cycle now);

    /**
     * Would tryInsert succeed at @p now (capacity and ports)? Inline:
     * issue-time steering probes every cluster through this on each
     * pick, and the accounted rs-full attribution re-probes on stalls.
     */
    bool
    canInsert(Cycle now) const
    {
        if (full())
            return false;
        return portCycle_ != now || portsUsed_ < writePorts_;
    }

    /** Remove a dispatched instruction. */
    void remove(TimedInst *inst);

  private:
    unsigned capacity_;
    unsigned writePorts_;
    unsigned size_ = 0;
    Cycle portCycle_ = neverCycle;
    unsigned portsUsed_ = 0;
};

/** Pool of special-purpose functional units with issue-latency tracking. */
class FuPool
{
  public:
    FuPool();

    /**
     * A claimed-but-not-yet-booked functional unit. Produced by
     * tryReserve(); discarding it leaves the pool untouched, commit()
     * books the unit. Lets the dispatch loop locate a unit in one scan
     * and still back out when the instruction turns out not to be
     * dispatchable this cycle.
     */
    class Slot
    {
      public:
        explicit operator bool() const { return busyUntil_ != nullptr; }

        /** Book the claimed unit until @p now + @p issue_latency. */
        void
        commit(Cycle now, unsigned issue_latency)
        {
            *busyUntil_ = now + issue_latency;
        }

      private:
        friend class FuPool;
        Cycle *busyUntil_ = nullptr;
    };

    /**
     * Single-scan reserve: locate a unit of @p kind free at @p now.
     * @return a falsy Slot when every unit is busy.
     */
    Slot tryReserve(FuKind kind, Cycle now);

  private:
    /** busy-until cycle per unit, grouped by kind. */
    std::array<std::vector<Cycle>, static_cast<std::size_t>(FuKind::NumKinds)>
        units_;
};

/** Routing from functional-unit class to reservation-station class. */
inline StationKind
stationFor(FuKind kind)
{
    switch (kind) {
      case FuKind::IntMem:
      case FuKind::FpMem:
        return StationKind::Mem;
      case FuKind::Branch:
        return StationKind::Branch;
      case FuKind::IntComplex:
      case FuKind::FpComplex:
        return StationKind::Complex;
      case FuKind::IntAlu:
      case FuKind::FpBasic:
        return StationKind::Simple0;   // caller picks Simple0 vs Simple1
      default:
        ctcp_panic("no station for FU kind %u",
                   static_cast<unsigned>(kind));
    }
}

/**
 * Intrusive doubly-linked list of resident instructions (linkage lives
 * in TimedInst::schedPrev/schedNext). An instruction is on at most one
 * SchedList at a time.
 */
struct SchedList
{
    TimedInst *head = nullptr;
    TimedInst *tail = nullptr;

    bool empty() const { return head == nullptr; }

    void pushBack(TimedInst *inst);

    /**
     * Insert keeping ascending dyn.seq order, walking from the tail —
     * O(1) for the common in-order arrival, short walk otherwise.
     */
    void insertByAge(TimedInst *inst);

    void unlink(TimedInst *inst);
};

/** One execution cluster. */
class Cluster
{
  public:
    Cluster(ClusterId id, const ClusterConfig &cfg);

    ClusterId id() const { return id_; }

    /**
     * Issue @p inst into the appropriate reservation station.
     * Simple operations pick the emptier of the two simple stations.
     * The caller must have set inst->readyAt (neverCycle while a
     * producer is outstanding): it selects the scheduler list.
     *
     * @return false when the station is full or out of write ports.
     */
    bool issue(TimedInst *inst, Cycle now);

    /**
     * True when @p inst could be issued at @p now (non-mutating).
     * Inline: issue-time steering calls this for every cluster on
     * every pick.
     */
    bool
    canAccept(const TimedInst &inst, Cycle now) const
    {
        StationKind kind = stationFor(inst.dyn.fu());
        if (kind == StationKind::Simple0) {
            return station(StationKind::Simple0).canInsert(now) ||
                   station(StationKind::Simple1).canInsert(now);
        }
        return station(kind).canInsert(now);
    }

    /**
     * Producer completion resolved @p inst's last outstanding operand:
     * move it from the waiting list onto the schedulable list. The
     * caller must have refreshed inst->readyAt first.
     */
    void wake(TimedInst *inst);

    /**
     * Select and dispatch ready instructions, oldest first, up to the
     * cluster width, honoring FU availability. Appends the dispatched
     * instructions to @p out in selection order.
     *
     * @p hooks supplies `bool ready(const TimedInst &, Cycle)` — the
     * core-side constraints beyond operand readiness (memory ordering,
     * load-queue space) — and `Cycle execute(TimedInst &, Cycle)`,
     * which performs the dispatch and returns the completion cycle.
     * The hooks type is a template parameter so the per-instruction
     * calls compile to direct (inlinable) calls in the hot loop.
     */
    template <typename Hooks>
    void
    dispatch(Cycle now, Hooks &&hooks, std::vector<TimedInst *> &out)
    {
        if (acct_ == nullptr)
            dispatchImpl<false>(now, hooks, out);
        else
            dispatchImpl<true>(now, hooks, out);
    }

    /** Total instructions currently waiting in this cluster's stations. */
    std::size_t occupancy() const;

    std::uint64_t dispatched() const { return dispatchCount_.value(); }

    /** Attach an observability sink (null = off, the default). */
    void setObs(ObsSink *obs) { obs_ = obs; }

    /** Attach the cycle-accounting layer (null = off, the default). */
    void setAccounting(CycleAccounting *acct) { acct_ = acct; }

  private:
    /**
     * Upper bound on the blocked-reason scratch array (stack-resident:
     * the accounting layer is allocation-free on the hot path).
     * Recording stops at min(width, acctScanCap) because attribution
     * can only ever charge the first `width - dispatched` reasons —
     * scanning a long schedulable list must not keep writing reasons
     * that can never be charged.
     */
    static constexpr unsigned acctScanCap = 64;

    /**
     * The dispatch loop proper. The Accounted variant additionally
     * records why each resident instruction could not fill a slot and
     * settles the cluster's slot attribution for this cycle; the
     * selection behavior is identical in both instantiations.
     */
    template <bool Accounted, typename Hooks>
    void
    dispatchImpl(Cycle now, Hooks &&hooks, std::vector<TimedInst *> &out)
    {
        [[maybe_unused]] SlotCat blocked[acctScanCap];
        [[maybe_unused]] unsigned nblocked = 0;
        [[maybe_unused]] unsigned acct_cap = 0;
        if constexpr (Accounted)
            acct_cap = width_ < acctScanCap ? width_ : acctScanCap;
        unsigned dispatched = 0;
        TimedInst *next = nullptr;
        for (TimedInst *inst = ready_.head; inst != nullptr; inst = next) {
            if (dispatched >= width_)
                break;
            next = inst->schedNext;
            if (inst->readyAt > now) {
                if constexpr (Accounted) {
                    if (nblocked < acct_cap)
                        blocked[nblocked++] =
                            CycleAccounting::waitCategory(inst->stallHops);
                }
                continue;
            }
            FuPool::Slot unit = fus_.tryReserve(inst->dyn.fu(), now);
            if (!unit) {
                if constexpr (Accounted) {
                    if (nblocked < acct_cap)
                        blocked[nblocked++] = SlotCat::FuBusy;
                }
                continue;
            }
            if (!hooks.ready(*inst, now)) {
                // Memory-ordering / load-queue holds: the value the
                // instruction waits for is local, so charge wait_intra.
                if constexpr (Accounted) {
                    if (nblocked < acct_cap)
                        blocked[nblocked++] = SlotCat::WaitIntra;
                }
                continue;
            }
            unit.commit(now, inst->dyn.info().issueLatency);
            inst->dispatched = true;
            inst->dispatchAt = now;
            inst->completeAt = hooks.execute(*inst, now);
            finishDispatch(inst, now);
            out.push_back(inst);
            ++dispatched;
        }
        if constexpr (Accounted)
            attributeSlots(dispatched, blocked, nblocked);
    }

    /**
     * Settle this cycle's `width` slot attributions for the cluster.
     * Inline so the accounted dispatch walk absorbs it — it runs per
     * cluster per cycle whenever accounting is on.
     */
    void
    attributeSlots(unsigned dispatched, const SlotCat *blocked,
                   unsigned nblocked)
    {
        // Exactly width_ slots leave here attributed every cycle — that
        // is the conservation property the accounting tests pin.
        acct_->addSlots(id_, SlotCat::Useful, dispatched);
        unsigned remaining = width_ - dispatched;
        const unsigned take = remaining < nblocked ? remaining : nblocked;
        for (unsigned i = 0; i < take; ++i)
            acct_->addSlot(id_, blocked[i]);
        remaining -= take;
        // Slots the schedulable walk could not explain: charge the
        // oldest parked instructions (producer still outstanding) by
        // the hop distance of their worst incomplete producer, cached
        // in stallHops at park time so this per-cycle walk never
        // chases producers.
        for (TimedInst *w = waiting_.head; w != nullptr && remaining > 0;
             w = w->schedNext) {
            acct_->addSlot(id_,
                           CycleAccounting::waitCategory(w->stallHops));
            --remaining;
        }
        if (remaining > 0)
            acct_->addEmptySlots(id_, remaining);
    }
    // The invariant checker walks the scheduler lists read-only; the
    // fault injector corrupts resident instructions in tests.
    friend class verify::InvariantChecker;
    friend class verify::FaultInjector;

    /** Record/unlink/count bookkeeping after a successful dispatch. */
    void finishDispatch(TimedInst *inst, Cycle now);

    ReservationStation &station(StationKind k)
    {
        return stations_[static_cast<std::size_t>(k)];
    }
    const ReservationStation &station(StationKind k) const
    {
        return stations_[static_cast<std::size_t>(k)];
    }

    ClusterId id_;
    unsigned width_;
    std::vector<ReservationStation> stations_;
    FuPool fus_;
    /** Operands resolved: schedulable, ascending dyn.seq. */
    SchedList ready_;
    /** Producer outstanding: parked until the completion push wakes it. */
    SchedList waiting_;
    Counter dispatchCount_;
    ObsSink *obs_ = nullptr;
    CycleAccounting *acct_ = nullptr;
};

} // namespace ctcp

#endif // CTCPSIM_CLUSTER_CLUSTER_HH
