/**
 * @file
 * One execution cluster: five 8-entry reservation stations feeding
 * eight special-purpose functional units (Figure 3 of the paper).
 *
 * Station layout:
 *   Mem      — integer and FP memory operations
 *   Branch   — all control transfers
 *   Complex  — integer mul/div and FP mul/div/sqrt
 *   Simple0  — simple integer ALU and basic FP (first copy)
 *   Simple1  — simple integer ALU and basic FP (second copy)
 *
 * Functional units: 2x simple integer, 1x integer memory, 1x branch,
 * 1x complex integer, 1x basic FP, 1x complex FP, 1x FP memory.
 * Reservation stations accept at most rsWritePorts new instructions
 * per cycle and select ready instructions out of order (oldest first).
 *
 * Scheduling is event-driven: resident instructions live on one of two
 * intrusive lists. Instructions with an outstanding producer sit on a
 * waiting list the dispatch loop never touches; the producer's
 * completion push wakes them onto the age-ordered schedulable list,
 * where selection is a single integer compare against the cached
 * TimedInst::readyAt. Stations track occupancy by count only — an
 * instruction records its station, so removal at dispatch is O(1).
 */

#ifndef CTCPSIM_CLUSTER_CLUSTER_HH
#define CTCPSIM_CLUSTER_CLUSTER_HH

#include <array>
#include <vector>

#include "cluster/station.hh"
#include "cluster/timed_inst.hh"
#include "common/logging.hh"
#include "config/sim_config.hh"
#include "isa/opcodes.hh"
#include "obs/accounting.hh"
#include "stats/stats.hh"

namespace ctcp {

class ObsSink;

namespace verify {
class FaultInjector;
class InvariantChecker;
} // namespace verify

/**
 * Station class for @p inst: the plan byte stamped at fetch when a
 * dispatch plan exists, the FU routing table otherwise (I-cache
 * fetches with plans disabled, or test-constructed instructions).
 */
inline StationKind
instStation(const TimedInst &inst)
{
    if (inst.stationKind != noStationPlan)
        return static_cast<StationKind>(inst.stationKind);
    return stationFor(inst.dyn.fu());
}

/**
 * One out-of-order-selectable reservation station. Tracks occupancy
 * and per-cycle write ports by count; residency itself lives on the
 * owning cluster's scheduler lists.
 */
class ReservationStation
{
  public:
    ReservationStation(unsigned entries, unsigned write_ports)
        : capacity_(entries), writePorts_(write_ports)
    {}

    /** Free entries right now. */
    unsigned freeEntries() const { return capacity_ - size_; }

    bool full() const { return size_ >= capacity_; }
    std::size_t occupancy() const { return size_; }

    /**
     * Try to insert @p inst during cycle @p now, respecting capacity
     * and per-cycle write-port limits. Records the station on the
     * instruction so removal is O(1). Inline: runs once per issued
     * instruction from the rename loop.
     */
    bool
    tryInsert(TimedInst *inst, Cycle now)
    {
        if (full())
            return false;
        if (portCycle_ != now) {
            portCycle_ = now;
            portsUsed_ = 0;
        }
        if (portsUsed_ >= writePorts_)
            return false;
        ++portsUsed_;
        ++size_;
        inst->station = this;
        return true;
    }

    /**
     * Would tryInsert succeed at @p now (capacity and ports)? Inline:
     * issue-time steering probes every cluster through this on each
     * pick, and the accounted rs-full attribution re-probes on stalls.
     */
    bool
    canInsert(Cycle now) const
    {
        if (full())
            return false;
        return portCycle_ != now || portsUsed_ < writePorts_;
    }

    /** Remove a dispatched instruction. */
    void
    remove(TimedInst *inst)
    {
        ctcp_assert(inst->station == this && size_ > 0,
                    "removing instruction not in station");
        --size_;
        inst->station = nullptr;
    }

  private:
    unsigned capacity_;
    unsigned writePorts_;
    unsigned size_ = 0;
    Cycle portCycle_ = neverCycle;
    unsigned portsUsed_ = 0;
};

/** Pool of special-purpose functional units with issue-latency tracking. */
class FuPool
{
  public:
    FuPool();

    /**
     * A claimed-but-not-yet-booked functional unit. Produced by
     * tryReserve(); discarding it leaves the pool untouched, commit()
     * books the unit. Lets the dispatch loop locate a unit in one scan
     * and still back out when the instruction turns out not to be
     * dispatchable this cycle.
     */
    class Slot
    {
      public:
        explicit operator bool() const { return busyUntil_ != nullptr; }

        /** Book the claimed unit until @p now + @p issue_latency. */
        void
        commit(Cycle now, unsigned issue_latency)
        {
            *busyUntil_ = now + issue_latency;
        }

      private:
        friend class FuPool;
        Cycle *busyUntil_ = nullptr;
    };

    /**
     * Single-scan reserve: locate a unit of @p kind free at @p now.
     * Inline: the dispatch loop probes this for every schedulable
     * instruction every cycle.
     * @return a falsy Slot when every unit is busy.
     */
    Slot
    tryReserve(FuKind kind, Cycle now)
    {
        Slot slot;
        for (Cycle &busy_until : units_[static_cast<std::size_t>(kind)]) {
            if (busy_until <= now) {
                slot.busyUntil_ = &busy_until;
                break;
            }
        }
        return slot;
    }

  private:
    /** busy-until cycle per unit, grouped by kind. */
    std::array<std::vector<Cycle>, static_cast<std::size_t>(FuKind::NumKinds)>
        units_;
};

/**
 * Intrusive doubly-linked list of resident instructions (linkage lives
 * in TimedInst::schedPrev/schedNext). An instruction is on at most one
 * SchedList at a time.
 */
struct SchedList
{
    TimedInst *head = nullptr;
    TimedInst *tail = nullptr;

    bool empty() const { return head == nullptr; }

    void
    pushBack(TimedInst *inst)
    {
        inst->schedPrev = tail;
        inst->schedNext = nullptr;
        if (tail != nullptr)
            tail->schedNext = inst;
        else
            head = inst;
        tail = inst;
    }

    /**
     * Insert keeping ascending dyn.seq order, walking from the tail —
     * O(1) for the common in-order arrival, short walk otherwise.
     */
    void
    insertByAge(TimedInst *inst)
    {
        TimedInst *after = tail;
        while (after != nullptr && after->dyn.seq > inst->dyn.seq)
            after = after->schedPrev;
        if (after == nullptr) {
            // Oldest resident: new head.
            inst->schedPrev = nullptr;
            inst->schedNext = head;
            if (head != nullptr)
                head->schedPrev = inst;
            else
                tail = inst;
            head = inst;
            return;
        }
        inst->schedPrev = after;
        inst->schedNext = after->schedNext;
        if (after->schedNext != nullptr)
            after->schedNext->schedPrev = inst;
        else
            tail = inst;
        after->schedNext = inst;
    }

    void
    unlink(TimedInst *inst)
    {
        if (inst->schedPrev != nullptr)
            inst->schedPrev->schedNext = inst->schedNext;
        else
            head = inst->schedNext;
        if (inst->schedNext != nullptr)
            inst->schedNext->schedPrev = inst->schedPrev;
        else
            tail = inst->schedPrev;
        inst->schedPrev = nullptr;
        inst->schedNext = nullptr;
    }
};

/** One execution cluster. */
class Cluster
{
  public:
    Cluster(ClusterId id, const ClusterConfig &cfg);

    ClusterId id() const { return id_; }

    /**
     * Issue @p inst into the appropriate reservation station.
     * Simple operations pick the emptier of the two simple stations.
     * The caller must have set inst->readyAt (neverCycle while a
     * producer is outstanding): it selects the scheduler list.
     *
     * @return false when the station is full or out of write ports.
     * Inline: runs once per renamed instruction.
     */
    bool
    issue(TimedInst *inst, Cycle now)
    {
        StationKind kind = instStation(*inst);
        bool inserted;
        if (kind == StationKind::Simple0) {
            // Pick the emptier of the two simple stations; on a tie or
            // failure, try the other as well.
            ReservationStation &s0 = station(StationKind::Simple0);
            ReservationStation &s1 = station(StationKind::Simple1);
            ReservationStation &first =
                s1.freeEntries() > s0.freeEntries() ? s1 : s0;
            ReservationStation &second = &first == &s0 ? s1 : s0;
            inserted =
                first.tryInsert(inst, now) || second.tryInsert(inst, now);
        } else {
            inserted = station(kind).tryInsert(inst, now);
        }
        if (!inserted)
            return false;
        ++occupancy_;
        // Park behind outstanding producers, or straight onto the
        // schedulable list. Issue can happen out of seq order (steering
        // skips), so keep the schedulable list age-ordered.
        if (inst->pendingProducers > 0) {
            waiting_.pushBack(inst);
        } else {
            ready_.insertByAge(inst);
            nextDispatchAttempt_ = 0;
        }
        return true;
    }

    /**
     * True when @p inst could be issued at @p now (non-mutating).
     * Inline: issue-time steering calls this for every cluster on
     * every pick.
     */
    bool
    canAccept(const TimedInst &inst, Cycle now) const
    {
        StationKind kind = instStation(inst);
        if (kind == StationKind::Simple0) {
            return station(StationKind::Simple0).canInsert(now) ||
                   station(StationKind::Simple1).canInsert(now);
        }
        return station(kind).canInsert(now);
    }

    /**
     * Producer completion resolved @p inst's last outstanding operand:
     * move it from the waiting list onto the schedulable list. The
     * caller must have refreshed inst->readyAt first.
     */
    void
    wake(TimedInst *inst)
    {
        ctcp_assert(inst->pendingProducers == 0, "waking a non-ready inst");
        waiting_.unlink(inst);
        ready_.insertByAge(inst);
        nextDispatchAttempt_ = 0;
    }

    /**
     * Select and dispatch ready instructions, oldest first, up to the
     * cluster width, honoring FU availability. Appends the dispatched
     * instructions to @p out in selection order.
     *
     * @p hooks supplies `bool ready(const TimedInst &, Cycle)` — the
     * core-side constraints beyond operand readiness (memory ordering,
     * load-queue space) — and `Cycle execute(TimedInst &, Cycle)`,
     * which performs the dispatch and returns the completion cycle.
     * The hooks type is a template parameter so the per-instruction
     * calls compile to direct (inlinable) calls in the hot loop.
     */
    template <typename Hooks>
    void
    dispatch(Cycle now, Hooks &&hooks, std::vector<TimedInst *> &out)
    {
        if (acct_ == nullptr)
            dispatchImpl<false>(now, hooks, out);
        else
            dispatchImpl<true>(now, hooks, out);
    }

    /**
     * Total instructions currently waiting in this cluster's stations.
     * Counter-tracked (issue/dispatch), O(1): issue-time steering reads
     * this for every cluster on every pick.
     */
    std::size_t occupancy() const { return occupancy_; }

    std::uint64_t dispatched() const { return dispatchCount_.value(); }

    /** Attach an observability sink (null = off, the default). */
    void setObs(ObsSink *obs) { obs_ = obs; }

    /** Attach the cycle-accounting layer (null = off, the default). */
    void setAccounting(CycleAccounting *acct) { acct_ = acct; }

  private:
    /**
     * Upper bound on the blocked-reason scratch array (stack-resident:
     * the accounting layer is allocation-free on the hot path).
     * Recording stops at min(width, acctScanCap) because attribution
     * can only ever charge the first `width - dispatched` reasons —
     * scanning a long schedulable list must not keep writing reasons
     * that can never be charged.
     */
    static constexpr unsigned acctScanCap = 64;

    /**
     * The dispatch loop proper. The Accounted variant additionally
     * records why each resident instruction could not fill a slot and
     * settles the cluster's slot attribution for this cycle; the
     * selection behavior is identical in both instantiations.
     */
    template <bool Accounted, typename Hooks>
    void
    dispatchImpl(Cycle now, Hooks &&hooks, std::vector<TimedInst *> &out)
    {
        // Event-driven fast-out: a walk that found nothing attemptable
        // (every schedulable readyAt in the future) computed the cycle
        // the earliest one matures; until then — or until an issue or
        // wakeup adds a new schedulable instruction, which resets the
        // bound — re-walking the list cannot select anything. Only
        // valid without accounting: the accounted walk must attribute
        // this cycle's empty slots either way.
        if constexpr (!Accounted) {
            if (now < nextDispatchAttempt_)
                return;
        }
        [[maybe_unused]] SlotCat blocked[acctScanCap];
        [[maybe_unused]] unsigned nblocked = 0;
        [[maybe_unused]] unsigned acct_cap = 0;
        if constexpr (Accounted)
            acct_cap = width_ < acctScanCap ? width_ : acctScanCap;
        [[maybe_unused]] bool attempted = false;
        [[maybe_unused]] Cycle earliest = neverCycle;
        unsigned dispatched = 0;
        TimedInst *next = nullptr;
        for (TimedInst *inst = ready_.head; inst != nullptr; inst = next) {
            if (dispatched >= width_)
                break;
            next = inst->schedNext;
            if (inst->readyAt > now) {
                if constexpr (Accounted) {
                    if (nblocked < acct_cap)
                        blocked[nblocked++] =
                            CycleAccounting::waitCategory(inst->stallHops);
                } else {
                    if (inst->readyAt < earliest)
                        earliest = inst->readyAt;
                }
                continue;
            }
            if constexpr (!Accounted)
                attempted = true;
            FuPool::Slot unit = fus_.tryReserve(inst->dyn.fu(), now);
            if (!unit) {
                if constexpr (Accounted) {
                    if (nblocked < acct_cap)
                        blocked[nblocked++] = SlotCat::FuBusy;
                }
                continue;
            }
            if (!hooks.ready(*inst, now)) {
                // Memory-ordering / load-queue holds: the value the
                // instruction waits for is local, so charge wait_intra.
                if constexpr (Accounted) {
                    if (nblocked < acct_cap)
                        blocked[nblocked++] = SlotCat::WaitIntra;
                }
                continue;
            }
            unit.commit(now, inst->dyn.info().issueLatency);
            inst->dispatched = true;
            inst->dispatchAt = now;
            inst->completeAt = hooks.execute(*inst, now);
            finishDispatch(inst, now);
            out.push_back(inst);
            ++dispatched;
        }
        if constexpr (Accounted) {
            attributeSlots(dispatched, blocked, nblocked);
        } else {
            // FU conflicts and memory-ordering holds (attempted) must
            // retry next cycle; a walk of pure future readiness can
            // sleep until the earliest instruction matures.
            nextDispatchAttempt_ = attempted ? 0 : earliest;
        }
    }

    /**
     * Settle this cycle's `width` slot attributions for the cluster.
     * Inline so the accounted dispatch walk absorbs it — it runs per
     * cluster per cycle whenever accounting is on.
     */
    void
    attributeSlots(unsigned dispatched, const SlotCat *blocked,
                   unsigned nblocked)
    {
        // Exactly width_ slots leave here attributed every cycle — that
        // is the conservation property the accounting tests pin.
        acct_->addSlots(id_, SlotCat::Useful, dispatched);
        unsigned remaining = width_ - dispatched;
        const unsigned take = remaining < nblocked ? remaining : nblocked;
        for (unsigned i = 0; i < take; ++i)
            acct_->addSlot(id_, blocked[i]);
        remaining -= take;
        // Slots the schedulable walk could not explain: charge the
        // oldest parked instructions (producer still outstanding) by
        // the hop distance of their worst incomplete producer, cached
        // in stallHops at park time so this per-cycle walk never
        // chases producers.
        for (TimedInst *w = waiting_.head; w != nullptr && remaining > 0;
             w = w->schedNext) {
            acct_->addSlot(id_,
                           CycleAccounting::waitCategory(w->stallHops));
            --remaining;
        }
        if (remaining > 0)
            acct_->addEmptySlots(id_, remaining);
    }
    // The invariant checker walks the scheduler lists read-only; the
    // fault injector corrupts resident instructions in tests.
    friend class verify::InvariantChecker;
    friend class verify::FaultInjector;

    /** Record/unlink/count bookkeeping after a successful dispatch. */
    void
    finishDispatch(TimedInst *inst, Cycle now)
    {
        if (obs_ != nullptr)
            maybeRecordExecute(*inst, now);
        ready_.unlink(inst);
        inst->station->remove(inst);
        --occupancy_;
        ++dispatchCount_;
    }

    /** Cold tracing tail of finishDispatch (out of line in cluster.cc). */
    void maybeRecordExecute(const TimedInst &inst, Cycle now) const;

    ReservationStation &station(StationKind k)
    {
        return stations_[static_cast<std::size_t>(k)];
    }
    const ReservationStation &station(StationKind k) const
    {
        return stations_[static_cast<std::size_t>(k)];
    }

    ClusterId id_;
    unsigned width_;
    std::vector<ReservationStation> stations_;
    FuPool fus_;
    /** Operands resolved: schedulable, ascending dyn.seq. */
    SchedList ready_;
    /** Producer outstanding: parked until the completion push wakes it. */
    SchedList waiting_;
    /** Instructions resident across all five stations (O(1) occupancy). */
    std::size_t occupancy_ = 0;
    /**
     * Earliest cycle the next non-accounted dispatch walk can select
     * anything (0 = walk every cycle). Set by an empty-handed walk to
     * the earliest future readyAt it saw; cleared whenever issue() or
     * wake() adds a schedulable instruction.
     */
    Cycle nextDispatchAttempt_ = 0;
    Counter dispatchCount_;
    ObsSink *obs_ = nullptr;
    CycleAccounting *acct_ = nullptr;
};

} // namespace ctcp

#endif // CTCPSIM_CLUSTER_CLUSTER_HH
