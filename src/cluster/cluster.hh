/**
 * @file
 * One execution cluster: five 8-entry reservation stations feeding
 * eight special-purpose functional units (Figure 3 of the paper).
 *
 * Station layout:
 *   Mem      — integer and FP memory operations
 *   Branch   — all control transfers
 *   Complex  — integer mul/div and FP mul/div/sqrt
 *   Simple0  — simple integer ALU and basic FP (first copy)
 *   Simple1  — simple integer ALU and basic FP (second copy)
 *
 * Functional units: 2x simple integer, 1x integer memory, 1x branch,
 * 1x complex integer, 1x basic FP, 1x complex FP, 1x FP memory.
 * Reservation stations accept at most rsWritePorts new instructions
 * per cycle and select ready instructions out of order (oldest first).
 */

#ifndef CTCPSIM_CLUSTER_CLUSTER_HH
#define CTCPSIM_CLUSTER_CLUSTER_HH

#include <array>
#include <functional>
#include <vector>

#include "cluster/timed_inst.hh"
#include "config/sim_config.hh"
#include "isa/opcodes.hh"
#include "stats/stats.hh"

namespace ctcp {

class ObsSink;

/** Reservation-station classes within a cluster. */
enum class StationKind : std::uint8_t
{
    Mem = 0,
    Branch = 1,
    Complex = 2,
    Simple0 = 3,
    Simple1 = 4,
    NumStations = 5,
};

inline constexpr unsigned numStations =
    static_cast<unsigned>(StationKind::NumStations);

/** One out-of-order-selectable reservation station. */
class ReservationStation
{
  public:
    ReservationStation(unsigned entries, unsigned write_ports)
        : capacity_(entries), writePorts_(write_ports)
    {}

    /** Free entries right now. */
    unsigned freeEntries() const
    {
        return capacity_ - static_cast<unsigned>(entries_.size());
    }

    bool full() const { return entries_.size() >= capacity_; }
    std::size_t occupancy() const { return entries_.size(); }

    /**
     * Try to insert @p inst during cycle @p now, respecting capacity
     * and per-cycle write-port limits.
     */
    bool tryInsert(TimedInst *inst, Cycle now);

    /** Would tryInsert succeed at @p now (capacity and ports)? */
    bool canInsert(Cycle now) const;

    /** All resident instructions (selection order handled by caller). */
    const std::vector<TimedInst *> &entries() const { return entries_; }

    /** Remove a dispatched instruction. */
    void remove(TimedInst *inst);

  private:
    unsigned capacity_;
    unsigned writePorts_;
    std::vector<TimedInst *> entries_;
    Cycle portCycle_ = neverCycle;
    unsigned portsUsed_ = 0;
};

/** Pool of special-purpose functional units with issue-latency tracking. */
class FuPool
{
  public:
    FuPool();

    /** A unit of @p kind can start a new op at @p now. */
    bool available(FuKind kind, Cycle now) const;

    /** Reserve a unit for an op with the given issue latency. */
    void reserve(FuKind kind, Cycle now, unsigned issue_latency);

  private:
    /** busy-until cycle per unit, grouped by kind. */
    std::array<std::vector<Cycle>, static_cast<std::size_t>(FuKind::NumKinds)>
        units_;
};

/** Routing from functional-unit class to reservation-station class. */
StationKind stationFor(FuKind kind);

/** Hooks the core supplies to the structural dispatch loop. */
struct DispatchHooks
{
    /** All data/memory constraints satisfied at @p now? */
    std::function<bool(const TimedInst &, Cycle)> ready;
    /**
     * Perform the dispatch: compute and return the completion cycle
     * (memory latency included for loads).
     */
    std::function<Cycle(TimedInst &, Cycle)> execute;
};

/** One execution cluster. */
class Cluster
{
  public:
    Cluster(ClusterId id, const ClusterConfig &cfg);

    ClusterId id() const { return id_; }

    /**
     * Issue @p inst into the appropriate reservation station.
     * Simple operations pick the emptier of the two simple stations.
     *
     * @return false when the station is full or out of write ports.
     */
    bool issue(TimedInst *inst, Cycle now);

    /** True when @p inst could be issued at @p now (non-mutating). */
    bool canAccept(const TimedInst &inst, Cycle now) const;

    /**
     * Select and dispatch ready instructions, oldest first, up to the
     * cluster width, honoring FU availability.
     *
     * @return instructions dispatched this cycle.
     */
    std::vector<TimedInst *> dispatch(Cycle now, const DispatchHooks &hooks);

    /** Total instructions currently waiting in this cluster's stations. */
    std::size_t occupancy() const;

    std::uint64_t dispatched() const { return dispatchCount_.value(); }

    /** Attach an observability sink (null = off, the default). */
    void setObs(ObsSink *obs) { obs_ = obs; }

  private:
    ReservationStation &station(StationKind k)
    {
        return stations_[static_cast<std::size_t>(k)];
    }
    const ReservationStation &station(StationKind k) const
    {
        return stations_[static_cast<std::size_t>(k)];
    }

    ClusterId id_;
    unsigned width_;
    std::vector<ReservationStation> stations_;
    FuPool fus_;
    Counter dispatchCount_;
    ObsSink *obs_ = nullptr;
};

} // namespace ctcp

#endif // CTCPSIM_CLUSTER_CLUSTER_HH
