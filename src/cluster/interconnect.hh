/**
 * @file
 * Inter-cluster data-forwarding network model.
 *
 * The baseline is a linear point-to-point network: forwarding to an
 * adjacent cluster costs hopLatency cycles, and each additional cluster
 * hop adds hopLatency more. The end clusters do not communicate
 * directly. The mesh variant (Figure 8) closes the ring so the end
 * clusters become adjacent, eliminating three-cluster trips.
 * Intra-cluster forwarding is free (same cycle as dispatch).
 */

#ifndef CTCPSIM_CLUSTER_INTERCONNECT_HH
#define CTCPSIM_CLUSTER_INTERCONNECT_HH

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "config/sim_config.hh"

namespace ctcp {

/** Computes forwarding distances and latencies between clusters. */
class Interconnect
{
  public:
    explicit Interconnect(const ClusterConfig &cfg)
        : numClusters_(static_cast<int>(cfg.numClusters)),
          hopLatency_(cfg.hopLatency), mesh_(cfg.mesh), bus_(cfg.bus),
          busLatency_(cfg.busLatency)
    {
        ctcp_assert(numClusters_ > 0, "interconnect needs clusters");
    }

    /** Number of cluster hops between @p from and @p to (0 if equal). */
    unsigned
    distance(ClusterId from, ClusterId to) const
    {
        ctcp_assert(from >= 0 && from < numClusters_ &&
                    to >= 0 && to < numClusters_,
                    "distance between invalid clusters %d and %d",
                    static_cast<int>(from), static_cast<int>(to));
        if (bus_)
            return from == to ? 0 : 1;   // every remote cluster is one hop
        const unsigned linear =
            static_cast<unsigned>(std::abs(static_cast<int>(from) -
                                           static_cast<int>(to)));
        if (!mesh_)
            return linear;
        const unsigned wrapped = static_cast<unsigned>(numClusters_) - linear;
        return std::min(linear, wrapped);
    }

    /** Forwarding latency in cycles from @p from to @p to. */
    unsigned
    latency(ClusterId from, ClusterId to) const
    {
        if (bus_)
            return from == to ? 0 : busLatency_;
        return distance(from, to) * hopLatency_;
    }

    /** True when the two clusters are the same or directly connected. */
    bool
    adjacent(ClusterId a, ClusterId b) const
    {
        return distance(a, b) <= 1;
    }

    int numClusters() const { return numClusters_; }
    unsigned hopLatency() const { return hopLatency_; }
    bool isMesh() const { return mesh_; }
    bool isBus() const { return bus_; }
    unsigned busLatency() const { return busLatency_; }

    /**
     * Clusters sorted by centrality: middle clusters first. Used by the
     * FDRT strategy to funnel producers toward the middle and keep
     * worst-case forwarding distances short.
     */
    std::vector<ClusterId>
    byCentrality() const
    {
        std::vector<ClusterId> order;
        for (int c = 0; c < numClusters_; ++c)
            order.push_back(static_cast<ClusterId>(c));
        const double mid = (numClusters_ - 1) / 2.0;
        std::stable_sort(order.begin(), order.end(),
            [mid](ClusterId a, ClusterId b) {
                return std::abs(a - mid) < std::abs(b - mid);
            });
        return order;
    }

  private:
    int numClusters_;
    unsigned hopLatency_;
    bool mesh_;
    bool bus_ = false;
    unsigned busLatency_ = 3;
};

} // namespace ctcp

#endif // CTCPSIM_CLUSTER_INTERCONNECT_HH
