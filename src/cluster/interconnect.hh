/**
 * @file
 * Inter-cluster data-forwarding network model.
 *
 * Every topology — the paper's baseline linear chain, the Figure 8
 * ring ("mesh"), a full crossbar, a two-level hierarchy and the shared
 * broadcast bus — is expressed as a pair of NxN matrices precomputed
 * at construction: `distance` (cluster hops, what the accounting
 * taxonomy and the steering heuristics reason about) and `latency`
 * (cycles, what the scheduler adds to operand readiness). The hot
 * paths are therefore one indexed load regardless of topology, and
 * the forwarding-hop matrix in obs/accounting and the scheduler's
 * TimedInst::stallHops cache consume the same numbers every topology.
 *
 * The bus is the one topology with semantics beyond its matrices:
 * distance is uniformly one hop (so bus waits bin as wait_fwd1) and
 * latency uniformly busLatency, but bandwidth contention is modelled
 * separately by the simulator's PortSchedule using busReadyAt.
 * Intra-cluster forwarding is free (same cycle as dispatch) in every
 * topology.
 */

#ifndef CTCPSIM_CLUSTER_INTERCONNECT_HH
#define CTCPSIM_CLUSTER_INTERCONNECT_HH

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "config/sim_config.hh"

namespace ctcp {

/** Computes forwarding distances and latencies between clusters. */
class Interconnect
{
  public:
    explicit Interconnect(const ClusterConfig &cfg);

    /** Number of cluster hops between @p from and @p to (0 if equal). */
    unsigned
    distance(ClusterId from, ClusterId to) const
    {
        ctcp_assert(from >= 0 && from < numClusters_ &&
                    to >= 0 && to < numClusters_,
                    "distance between invalid clusters %d and %d",
                    static_cast<int>(from), static_cast<int>(to));
        return dist_[static_cast<unsigned>(from) *
                         static_cast<unsigned>(numClusters_) +
                     static_cast<unsigned>(to)];
    }

    /** Forwarding latency in cycles from @p from to @p to. */
    unsigned
    latency(ClusterId from, ClusterId to) const
    {
        ctcp_assert(from >= 0 && from < numClusters_ &&
                    to >= 0 && to < numClusters_,
                    "latency between invalid clusters %d and %d",
                    static_cast<int>(from), static_cast<int>(to));
        return lat_[static_cast<unsigned>(from) *
                        static_cast<unsigned>(numClusters_) +
                    static_cast<unsigned>(to)];
    }

    /** True when the two clusters are the same or directly connected. */
    bool
    adjacent(ClusterId a, ClusterId b) const
    {
        return distance(a, b) <= 1;
    }

    int numClusters() const { return numClusters_; }
    unsigned hopLatency() const { return hopLatency_; }
    Topology topology() const { return topo_; }
    bool isMesh() const { return topo_ == Topology::Ring; }
    bool isBus() const { return topo_ == Topology::Bus; }
    unsigned busLatency() const { return busLatency_; }

    /**
     * Largest entry of the distance matrix: the topology's reachable-
     * hop support. Slot categories wait_fwd<h> with h beyond this (and
     * beyond the taxonomy's 3-hop clamp) must stay zero — the property
     * the design-space conservation test pins.
     */
    unsigned maxDistance() const { return maxDistance_; }

    /**
     * Clusters sorted by centrality: middle clusters first. Used by the
     * FDRT strategy to funnel producers toward the middle and keep
     * worst-case forwarding distances short. For the symmetric
     * topologies (ring, crossbar, bus) every cluster is equivalent and
     * this is simply a stable deterministic order. Precomputed at
     * construction — issue-time steering walks it on every fallback
     * pick, so it must not allocate or sort per call.
     */
    const std::vector<ClusterId> &byCentrality() const { return central_; }

  private:
    /** Build the centrality order (constructor helper). */
    void
    buildCentrality()
    {
        for (int c = 0; c < numClusters_; ++c)
            central_.push_back(static_cast<ClusterId>(c));
        const double mid = (numClusters_ - 1) / 2.0;
        std::stable_sort(central_.begin(), central_.end(),
            [mid](ClusterId a, ClusterId b) {
                return std::abs(a - mid) < std::abs(b - mid);
            });
    }

    int numClusters_;
    unsigned hopLatency_;
    Topology topo_;
    unsigned busLatency_;
    unsigned maxDistance_ = 0;
    /** Row-major NxN hop counts. */
    std::vector<unsigned> dist_;
    /** Row-major NxN forwarding latencies in cycles. */
    std::vector<unsigned> lat_;
    /** Middle-first cluster order (see byCentrality()). */
    std::vector<ClusterId> central_;
};

} // namespace ctcp

#endif // CTCPSIM_CLUSTER_INTERCONNECT_HH
