#include "cluster/cluster.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/sink.hh"

namespace ctcp {

namespace {

// Out of line so the dispatch loop carries only the obs_ guard branch,
// not the event-construction code.
[[gnu::noinline]] [[gnu::cold]] void
recordExecuteEvent(ObsSink &obs, Cycle now, const TimedInst &inst,
                   ClusterId cluster)
{
    ObsEvent ev;
    ev.cycle = now;
    ev.kind = ObsKind::Execute;
    ev.seq = inst.dyn.seq;
    ev.pc = inst.dyn.pc;
    ev.cluster = cluster;
    ev.begin = now;
    ev.dur = inst.completeAt - now;
    ev.label = inst.dyn.info().mnemonic;
    obs.record(ev);
}

} // namespace

bool
ReservationStation::tryInsert(TimedInst *inst, Cycle now)
{
    if (full())
        return false;
    if (portCycle_ != now) {
        portCycle_ = now;
        portsUsed_ = 0;
    }
    if (portsUsed_ >= writePorts_)
        return false;
    ++portsUsed_;
    entries_.push_back(inst);
    return true;
}

bool
ReservationStation::canInsert(Cycle now) const
{
    if (full())
        return false;
    return portCycle_ != now || portsUsed_ < writePorts_;
}

void
ReservationStation::remove(TimedInst *inst)
{
    auto it = std::find(entries_.begin(), entries_.end(), inst);
    ctcp_assert(it != entries_.end(), "removing instruction not in station");
    entries_.erase(it);
}

FuPool::FuPool()
{
    auto setCount = [this](FuKind kind, unsigned count) {
        units_[static_cast<std::size_t>(kind)].assign(count, 0);
    };
    // Figure 3: eight special-purpose units per cluster.
    setCount(FuKind::IntAlu, 2);
    setCount(FuKind::IntMem, 1);
    setCount(FuKind::Branch, 1);
    setCount(FuKind::IntComplex, 1);
    setCount(FuKind::FpBasic, 1);
    setCount(FuKind::FpComplex, 1);
    setCount(FuKind::FpMem, 1);
}

bool
FuPool::available(FuKind kind, Cycle now) const
{
    for (Cycle busy_until : units_[static_cast<std::size_t>(kind)])
        if (busy_until <= now)
            return true;
    return false;
}

void
FuPool::reserve(FuKind kind, Cycle now, unsigned issue_latency)
{
    for (Cycle &busy_until : units_[static_cast<std::size_t>(kind)]) {
        if (busy_until <= now) {
            busy_until = now + issue_latency;
            return;
        }
    }
    ctcp_panic("reserve on a %s unit with none available",
               std::string(fuKindName(kind)).c_str());
}

StationKind
stationFor(FuKind kind)
{
    switch (kind) {
      case FuKind::IntMem:
      case FuKind::FpMem:
        return StationKind::Mem;
      case FuKind::Branch:
        return StationKind::Branch;
      case FuKind::IntComplex:
      case FuKind::FpComplex:
        return StationKind::Complex;
      case FuKind::IntAlu:
      case FuKind::FpBasic:
        return StationKind::Simple0;   // caller picks Simple0 vs Simple1
      default:
        ctcp_panic("no station for FU kind %u",
                   static_cast<unsigned>(kind));
    }
}

Cluster::Cluster(ClusterId id, const ClusterConfig &cfg)
    : id_(id), width_(cfg.clusterWidth)
{
    for (unsigned s = 0; s < numStations; ++s)
        stations_.emplace_back(cfg.rsEntries, cfg.rsWritePorts);
}

bool
Cluster::issue(TimedInst *inst, Cycle now)
{
    StationKind kind = stationFor(inst->dyn.fu());
    if (kind == StationKind::Simple0) {
        // Pick the emptier of the two simple stations; on a tie or
        // failure, try the other as well.
        ReservationStation &s0 = station(StationKind::Simple0);
        ReservationStation &s1 = station(StationKind::Simple1);
        ReservationStation &first =
            s1.freeEntries() > s0.freeEntries() ? s1 : s0;
        ReservationStation &second = &first == &s0 ? s1 : s0;
        return first.tryInsert(inst, now) || second.tryInsert(inst, now);
    }
    return station(kind).tryInsert(inst, now);
}

bool
Cluster::canAccept(const TimedInst &inst, Cycle now) const
{
    StationKind kind = stationFor(inst.dyn.fu());
    if (kind == StationKind::Simple0) {
        return station(StationKind::Simple0).canInsert(now) ||
               station(StationKind::Simple1).canInsert(now);
    }
    return station(kind).canInsert(now);
}

std::vector<TimedInst *>
Cluster::dispatch(Cycle now, const DispatchHooks &hooks)
{
    // Gather all resident instructions oldest-first across stations.
    std::vector<TimedInst *> candidates;
    for (const ReservationStation &st : stations_)
        candidates.insert(candidates.end(), st.entries().begin(),
                          st.entries().end());
    std::sort(candidates.begin(), candidates.end(),
              [](const TimedInst *a, const TimedInst *b) {
                  return a->dyn.seq < b->dyn.seq;
              });

    std::vector<TimedInst *> done;
    for (TimedInst *inst : candidates) {
        if (done.size() >= width_)
            break;
        const FuKind fu = inst->dyn.fu();
        if (!fus_.available(fu, now))
            continue;
        if (!hooks.ready(*inst, now))
            continue;
        fus_.reserve(fu, now, inst->dyn.info().issueLatency);
        inst->dispatched = true;
        inst->dispatchAt = now;
        inst->completeAt = hooks.execute(*inst, now);
        if (obs_ && obs_->enabled(ObsKind::Execute))
            recordExecuteEvent(*obs_, now, *inst, id_);
        // Remove from whichever station holds it.
        for (ReservationStation &st : stations_) {
            const auto &es = st.entries();
            if (std::find(es.begin(), es.end(), inst) != es.end()) {
                st.remove(inst);
                break;
            }
        }
        ++dispatchCount_;
        done.push_back(inst);
    }
    return done;
}

std::size_t
Cluster::occupancy() const
{
    std::size_t n = 0;
    for (const ReservationStation &st : stations_)
        n += st.occupancy();
    return n;
}

} // namespace ctcp
