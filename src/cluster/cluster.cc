#include "cluster/cluster.hh"

#include "common/logging.hh"
#include "obs/sink.hh"

namespace ctcp {

FuPool::FuPool()
{
    auto setCount = [this](FuKind kind, unsigned count) {
        units_[static_cast<std::size_t>(kind)].assign(count, 0);
    };
    // Figure 3: eight special-purpose units per cluster.
    setCount(FuKind::IntAlu, 2);
    setCount(FuKind::IntMem, 1);
    setCount(FuKind::Branch, 1);
    setCount(FuKind::IntComplex, 1);
    setCount(FuKind::FpBasic, 1);
    setCount(FuKind::FpComplex, 1);
    setCount(FuKind::FpMem, 1);
}

Cluster::Cluster(ClusterId id, const ClusterConfig &cfg)
    : id_(id), width_(cfg.clusterWidth)
{
    for (unsigned s = 0; s < numStations; ++s)
        stations_.emplace_back(cfg.rsEntries, cfg.rsWritePorts);
}

// Out of line so the inline dispatch bookkeeping carries only the obs_
// guard branch, not the event-construction code.
void
Cluster::maybeRecordExecute(const TimedInst &inst, Cycle now) const
{
    if (!obs_->enabled(ObsKind::Execute))
        return;
    ObsEvent ev;
    ev.cycle = now;
    ev.kind = ObsKind::Execute;
    ev.seq = inst.dyn.seq;
    ev.pc = inst.dyn.pc;
    ev.cluster = id_;
    ev.begin = now;
    ev.dur = inst.completeAt - now;
    ev.label = inst.dyn.info().mnemonic;
    obs_->record(ev);
}

} // namespace ctcp
