#include "cluster/cluster.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/sink.hh"

namespace ctcp {

namespace {

// Out of line so the dispatch loop carries only the obs_ guard branch,
// not the event-construction code.
[[gnu::noinline]] [[gnu::cold]] void
recordExecuteEvent(ObsSink &obs, Cycle now, const TimedInst &inst,
                   ClusterId cluster)
{
    ObsEvent ev;
    ev.cycle = now;
    ev.kind = ObsKind::Execute;
    ev.seq = inst.dyn.seq;
    ev.pc = inst.dyn.pc;
    ev.cluster = cluster;
    ev.begin = now;
    ev.dur = inst.completeAt - now;
    ev.label = inst.dyn.info().mnemonic;
    obs.record(ev);
}

} // namespace

bool
ReservationStation::tryInsert(TimedInst *inst, Cycle now)
{
    if (full())
        return false;
    if (portCycle_ != now) {
        portCycle_ = now;
        portsUsed_ = 0;
    }
    if (portsUsed_ >= writePorts_)
        return false;
    ++portsUsed_;
    ++size_;
    inst->station = this;
    return true;
}

void
ReservationStation::remove(TimedInst *inst)
{
    ctcp_assert(inst->station == this && size_ > 0,
                "removing instruction not in station");
    --size_;
    inst->station = nullptr;
}

FuPool::FuPool()
{
    auto setCount = [this](FuKind kind, unsigned count) {
        units_[static_cast<std::size_t>(kind)].assign(count, 0);
    };
    // Figure 3: eight special-purpose units per cluster.
    setCount(FuKind::IntAlu, 2);
    setCount(FuKind::IntMem, 1);
    setCount(FuKind::Branch, 1);
    setCount(FuKind::IntComplex, 1);
    setCount(FuKind::FpBasic, 1);
    setCount(FuKind::FpComplex, 1);
    setCount(FuKind::FpMem, 1);
}

FuPool::Slot
FuPool::tryReserve(FuKind kind, Cycle now)
{
    Slot slot;
    for (Cycle &busy_until : units_[static_cast<std::size_t>(kind)]) {
        if (busy_until <= now) {
            slot.busyUntil_ = &busy_until;
            break;
        }
    }
    return slot;
}

void
SchedList::pushBack(TimedInst *inst)
{
    inst->schedPrev = tail;
    inst->schedNext = nullptr;
    if (tail != nullptr)
        tail->schedNext = inst;
    else
        head = inst;
    tail = inst;
}

void
SchedList::insertByAge(TimedInst *inst)
{
    TimedInst *after = tail;
    while (after != nullptr && after->dyn.seq > inst->dyn.seq)
        after = after->schedPrev;
    if (after == nullptr) {
        // Oldest resident: new head.
        inst->schedPrev = nullptr;
        inst->schedNext = head;
        if (head != nullptr)
            head->schedPrev = inst;
        else
            tail = inst;
        head = inst;
        return;
    }
    inst->schedPrev = after;
    inst->schedNext = after->schedNext;
    if (after->schedNext != nullptr)
        after->schedNext->schedPrev = inst;
    else
        tail = inst;
    after->schedNext = inst;
}

void
SchedList::unlink(TimedInst *inst)
{
    if (inst->schedPrev != nullptr)
        inst->schedPrev->schedNext = inst->schedNext;
    else
        head = inst->schedNext;
    if (inst->schedNext != nullptr)
        inst->schedNext->schedPrev = inst->schedPrev;
    else
        tail = inst->schedPrev;
    inst->schedPrev = nullptr;
    inst->schedNext = nullptr;
}

Cluster::Cluster(ClusterId id, const ClusterConfig &cfg)
    : id_(id), width_(cfg.clusterWidth)
{
    for (unsigned s = 0; s < numStations; ++s)
        stations_.emplace_back(cfg.rsEntries, cfg.rsWritePorts);
}

bool
Cluster::issue(TimedInst *inst, Cycle now)
{
    StationKind kind = stationFor(inst->dyn.fu());
    bool inserted;
    if (kind == StationKind::Simple0) {
        // Pick the emptier of the two simple stations; on a tie or
        // failure, try the other as well.
        ReservationStation &s0 = station(StationKind::Simple0);
        ReservationStation &s1 = station(StationKind::Simple1);
        ReservationStation &first =
            s1.freeEntries() > s0.freeEntries() ? s1 : s0;
        ReservationStation &second = &first == &s0 ? s1 : s0;
        inserted = first.tryInsert(inst, now) || second.tryInsert(inst, now);
    } else {
        inserted = station(kind).tryInsert(inst, now);
    }
    if (!inserted)
        return false;
    // Park behind outstanding producers, or straight onto the
    // schedulable list. Issue can happen out of seq order (steering
    // skips), so keep the schedulable list age-ordered.
    if (inst->pendingProducers > 0)
        waiting_.pushBack(inst);
    else
        ready_.insertByAge(inst);
    return true;
}

void
Cluster::wake(TimedInst *inst)
{
    ctcp_assert(inst->pendingProducers == 0, "waking a non-ready inst");
    waiting_.unlink(inst);
    ready_.insertByAge(inst);
}

void
Cluster::finishDispatch(TimedInst *inst, Cycle now)
{
    if (obs_ && obs_->enabled(ObsKind::Execute))
        recordExecuteEvent(*obs_, now, *inst, id_);
    ready_.unlink(inst);
    inst->station->remove(inst);
    ++dispatchCount_;
}

std::size_t
Cluster::occupancy() const
{
    std::size_t n = 0;
    for (const ReservationStation &st : stations_)
        n += st.occupancy();
    return n;
}

} // namespace ctcp
