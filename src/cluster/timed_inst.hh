/**
 * @file
 * The in-flight (timed) instruction: a committed DynInst annotated with
 * everything the CTCP pipeline learns about it — fetch source and trace
 * instance, FDRT profile fields carried from the trace cache, cluster
 * assignment, per-stage timestamps, and operand provenance used for
 * criticality analysis.
 *
 * Producer/consumer linkage uses a push protocol that avoids dangling
 * pointers: a consumer registers itself with an incomplete producer at
 * rename; when the producer completes it pushes (completion cycle,
 * cluster) into each waiter. Consumers never dereference the producer
 * pointer afterwards. Because retirement is in order, a producer always
 * completes before any of its consumers can retire, so waiter pointers
 * are always live when the push happens.
 *
 * The record is split hot/cold: fields the scheduler and dispatch loop
 * touch every cycle live in TimedInst itself (packed toward the front
 * so the wakeup/dispatch walk stays within the first cache lines),
 * while fields that are only read at retirement or by the accounting
 * layers (branch-target bookkeeping, criticality attribution) live in a
 * TimedInstCold side record reached through coldSlot. Pool-allocated
 * instructions point into a parallel cold array; stack-constructed ones
 * (tests, benches) use OwnedTimedInst, which embeds its own cold slot.
 */

#ifndef CTCPSIM_CLUSTER_TIMED_INST_HH
#define CTCPSIM_CLUSTER_TIMED_INST_HH

#include <cstdint>
#include <utility>

#include "common/small_vec.hh"
#include "common/types.hh"
#include "func/dyninst.hh"

namespace ctcp {

class ReservationStation;

/** FDRT leader/follower states stored in trace-cache profile fields. */
enum class ChainRole : std::uint8_t
{
    None = 0,
    Leader = 1,
    Follower = 2,
};

/** Per-instruction FDRT profile carried in a trace-cache line slot. */
struct ChainProfile
{
    ChainRole role = ChainRole::None;
    /** Suggested chain cluster; invalidCluster when not a chain member. */
    ClusterId chainCluster = invalidCluster;

    bool isMember() const
    {
        return role != ChainRole::None && chainCluster != invalidCluster;
    }
};

/** Provenance and readiness of one source operand. */
struct OperandState
{
    /** The instruction reads this operand at all. */
    bool valid = false;
    /** Value comes from the register file (no in-flight producer). */
    bool fromRF = true;
    /** Cycle the raw value exists at its producer's output (or in RF). */
    Cycle rawReady = neverCycle;
    /**
     * Cycle the value is visible to OTHER clusters. On the
     * point-to-point network this equals rawReady (per-hop latency is
     * added by the consumer); on a bus it includes the broadcast slot
     * and the bus latency.
     */
    Cycle remoteReady = neverCycle;

    // Producer snapshot (meaningful when !fromRF).
    InstSeqNum producerSeq = invalidSeqNum;
    Addr producerPc = 0;
    ClusterId producerCluster = invalidCluster;
    std::uint64_t producerTraceInstance = ~0ull;
    /** Trace-cache line the producer was fetched from (0 = I-cache). */
    std::uint64_t producerTraceKey = 0;
    ChainProfile producerProfile;
    /** Producer's dispatch had already completed at our rename. */
    bool producerComplete = false;
    /**
     * Raw producer pointer, valid until the producer retires. Because
     * retirement is in order and a producer always completes (and
     * pushes its completion) before retiring, this pointer must only
     * be dereferenced while producerComplete is false — after the
     * push it is never needed again.
     */
    struct TimedInst *producerPtr = nullptr;
};

/**
 * Cold side record of a TimedInst: fields written once and read only at
 * retirement (fill unit, profiler) or by tracing/accounting consumers,
 * never by the per-cycle scheduler walk. Kept out of TimedInst so the
 * hot record stays dense in the cache during wakeup and dispatch.
 */
struct TimedInstCold
{
    // ---- Branch prediction bookkeeping --------------------------------
    bool predictedTargetValid = false;
    Addr predictedTarget = 0;

    /** Logical (program-order) index within the fetched group. */
    int logicalIndex = 0;

    // ---- Criticality analysis (filled at dispatch) --------------------
    /** 0 = register file, 1 = src1 producer, 2 = src2 producer. */
    int criticalSrc = 0;
    /** Critical input was satisfied by data forwarding. */
    bool criticalForwarded = false;
    /** Critical forwarded input crossed trace instances. */
    bool criticalInterTrace = false;
    /** Forwarding distance (cluster hops) of the critical input. */
    unsigned criticalDistance = 0;
    ChainProfile criticalProducerProfile;
    Addr criticalProducerPc = 0;
    ClusterId criticalProducerCluster = invalidCluster;
    /** TC line the critical producer was fetched from (0 = I-cache). */
    std::uint64_t criticalProducerTraceKey = 0;
};

/** One in-flight dynamic instruction (hot record). */
struct TimedInst
{
    // ---- Event-driven scheduler state (hottest; keep first) ------------
    /**
     * Cached cycle at which every source operand is available at this
     * instruction's cluster (forwarding latency included), filled by
     * the core at issue and on the last producer's completion push.
     * neverCycle while a producer is outstanding. The dispatch loop
     * compares this integer instead of re-deriving readiness.
     */
    Cycle readyAt = 0;
    /** Intrusive linkage for the cluster's scheduler lists. */
    TimedInst *schedPrev = nullptr;
    TimedInst *schedNext = nullptr;
    /** Reservation station currently holding us (null outside one). */
    ReservationStation *station = nullptr;
    /**
     * Outstanding waiter registrations on still-incomplete producers
     * (one per source operand renamed against an in-flight producer).
     * Decremented by the producer's completion push; operand readiness
     * is only computable — and constant — once it reaches zero.
     */
    unsigned pendingProducers = 0;
    /**
     * Hop distance explaining why this instruction stalls a slot,
     * cached for cycle accounting when the layer is on (0 otherwise).
     * While schedulable it is the critical operand's hop distance;
     * while parked it is a park-time snapshot of the worst incomplete
     * producer's distance. Either way the attribution walk charges
     * wait_intra / wait_fwd<hops> from this byte without re-deriving
     * readiness or chasing producer pointers.
     */
    std::uint8_t stallHops = 0;

    // ---- Cluster assignment -------------------------------------------
    ClusterId cluster = invalidCluster;
    /**
     * Memoized dispatch plan stamped at fetch from the trace line's
     * precomputed slot routing (or the I-cache slot table): the cluster
     * this slot maps to and the reservation-station class of the
     * instruction's FU. 0xff = no plan (fall back to deriving both).
     */
    std::uint8_t plannedCluster = 0xff;
    std::uint8_t stationKind = 0xff;

    bool issued = false;
    bool dispatched = false;
    bool completed = false;

    // ---- Pipeline timestamps ------------------------------------------
    Cycle dispatchAt = neverCycle;
    Cycle completeAt = neverCycle;
    /** Bus mode: cycle this result's broadcast reaches remote clusters. */
    Cycle busReadyAt = neverCycle;
    Cycle fetchAt = 0;
    Cycle renameAt = 0;
    Cycle issueAt = 0;

    DynInst dyn;

    // ---- Fetch annotations --------------------------------------------
    bool fromTraceCache = false;
    /** Resolves as a direction/target misprediction (known at fetch). */
    bool mispredicted = false;
    /** Branch predicted taken (direction prediction, known at fetch). */
    bool predictedTaken = false;
    /** Physical issue-buffer slot (determines cluster in slot steering). */
    int slotIndex = 0;
    /** Unique id per delivered fetch group / trace-line instance. */
    std::uint64_t traceInstance = 0;
    /** Identity of the TC line fetched from (0 when from the I-cache). */
    std::uint64_t traceKey = 0;
    /** FDRT profile fields fetched with the instruction. */
    ChainProfile profile;

    // ---- Operand provenance -------------------------------------------
    OperandState ops[2];
    /** Consumers waiting for our completion push. */
    SmallVec<TimedInst *, 4> waiters;

    /**
     * Cold side record (retire/accounting-only fields). Pool-allocated
     * instructions point into the pool's parallel cold array;
     * OwnedTimedInst embeds its own. Never null for a live instruction.
     */
    TimedInstCold *coldSlot = nullptr;

    TimedInstCold &cold() { return *coldSlot; }
    const TimedInstCold &cold() const { return *coldSlot; }

    /**
     * Notify waiters that the result exists at this cluster.
     *
     * @p on_ready is invoked for each waiter whose last outstanding
     * producer this was (pendingProducers reached zero) — the wakeup
     * hook the event-driven scheduler uses to move the consumer onto
     * its cluster's schedulable list.
     */
    template <typename OnReady>
    void
    pushCompletion(OnReady &&on_ready)
    {
        for (TimedInst *w : waiters) {
            for (OperandState &op : w->ops) {
                if (op.valid && !op.fromRF && op.producerSeq == dyn.seq) {
                    op.rawReady = completeAt;
                    op.remoteReady =
                        busReadyAt == neverCycle ? completeAt : busReadyAt;
                    op.producerCluster = cluster;
                    op.producerComplete = true;
                }
            }
            if (w->pendingProducers > 0 && --w->pendingProducers == 0)
                on_ready(w);
        }
        waiters.clear();
    }

    void
    pushCompletion()
    {
        pushCompletion([](TimedInst *) {});
    }
};

/**
 * A TimedInst with its cold record embedded — for stack or container
 * construction outside the pool (tests, benches, tools). Copy and move
 * keep coldSlot pointing at the member.
 */
struct OwnedTimedInst : TimedInst
{
    TimedInstCold coldStorage;

    OwnedTimedInst() { coldSlot = &coldStorage; }

    OwnedTimedInst(const OwnedTimedInst &other)
        : TimedInst(other), coldStorage(other.coldStorage)
    {
        coldSlot = &coldStorage;
    }

    OwnedTimedInst(OwnedTimedInst &&other)
        : TimedInst(std::move(other)), coldStorage(other.coldStorage)
    {
        coldSlot = &coldStorage;
    }

    OwnedTimedInst &
    operator=(const OwnedTimedInst &other)
    {
        TimedInst::operator=(other);
        coldStorage = other.coldStorage;
        coldSlot = &coldStorage;
        return *this;
    }

    OwnedTimedInst &
    operator=(OwnedTimedInst &&other)
    {
        TimedInst::operator=(std::move(other));
        coldStorage = other.coldStorage;
        coldSlot = &coldStorage;
        return *this;
    }
};

} // namespace ctcp

#endif // CTCPSIM_CLUSTER_TIMED_INST_HH
