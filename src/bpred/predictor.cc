#include "bpred/predictor.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace ctcp {

BranchPredictor::BranchPredictor(const BranchPredictorConfig &cfg)
    : cfg_(cfg),
      gshare_(cfg.gshareEntries),
      bimodal_(cfg.bimodalEntries),
      chooser_(cfg.chooserEntries),
      btb_(cfg.btbEntries),
      ras_(cfg.rasEntries, 0)
{
    ctcp_assert(isPowerOfTwo(cfg.gshareEntries) &&
                isPowerOfTwo(cfg.bimodalEntries) &&
                isPowerOfTwo(cfg.chooserEntries),
                "predictor tables must be power-of-two sized");
    ctcp_assert(cfg.btbEntries % cfg.btbAssoc == 0,
                "BTB entries must divide evenly into ways");
    ctcp_assert(cfg.rasEntries > 0, "RAS needs at least one entry");
}

unsigned
BranchPredictor::gshareIndex(Addr pc) const
{
    const std::uint64_t hist_mask = (1ull << cfg_.historyBits) - 1;
    return static_cast<unsigned>((pc ^ (history_ & hist_mask)) &
                                 (cfg_.gshareEntries - 1));
}

unsigned
BranchPredictor::bimodalIndex(Addr pc) const
{
    return static_cast<unsigned>(pc & (cfg_.bimodalEntries - 1));
}

unsigned
BranchPredictor::chooserIndex(Addr pc) const
{
    return static_cast<unsigned>(pc & (cfg_.chooserEntries - 1));
}

BranchPredictor::BtbEntry *
BranchPredictor::btbFind(Addr pc)
{
    const unsigned sets = cfg_.btbEntries / cfg_.btbAssoc;
    const unsigned set = static_cast<unsigned>(pc) & (sets - 1);
    BtbEntry *base = &btb_[static_cast<std::size_t>(set) * cfg_.btbAssoc];
    for (unsigned w = 0; w < cfg_.btbAssoc; ++w)
        if (base[w].valid && base[w].pc == pc)
            return &base[w];
    return nullptr;
}

void
BranchPredictor::btbInsert(Addr pc, Addr target)
{
    const unsigned sets = cfg_.btbEntries / cfg_.btbAssoc;
    const unsigned set = static_cast<unsigned>(pc) & (sets - 1);
    BtbEntry *base = &btb_[static_cast<std::size_t>(set) * cfg_.btbAssoc];
    BtbEntry *victim = &base[0];
    for (unsigned w = 0; w < cfg_.btbAssoc; ++w) {
        if (base[w].valid && base[w].pc == pc) { victim = &base[w]; break; }
        if (!base[w].valid) { victim = &base[w]; break; }
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    victim->pc = pc;
    victim->target = target;
    victim->valid = true;
    victim->lastUse = ++btbClock_;
}

bool
BranchPredictor::peekDirection(Addr pc) const
{
    const bool g = gshare_[gshareIndex(pc)].taken();
    const bool b = bimodal_[bimodalIndex(pc)].taken();
    return chooser_[chooserIndex(pc)].taken() ? g : b;
}

void
BranchPredictor::pushRas(Addr return_pc)
{
    ras_[rasTop_] = return_pc;
    rasTop_ = (rasTop_ + 1) % ras_.size();
    if (rasDepth_ < ras_.size())
        ++rasDepth_;
}

std::pair<Addr, bool>
BranchPredictor::popRas()
{
    if (rasDepth_ == 0)
        return {0, false};
    rasTop_ = (rasTop_ + ras_.size() - 1) % ras_.size();
    --rasDepth_;
    return {ras_[rasTop_], true};
}

std::pair<Addr, bool>
BranchPredictor::peekBtb(Addr pc) const
{
    const unsigned sets = cfg_.btbEntries / cfg_.btbAssoc;
    const unsigned set = static_cast<unsigned>(pc) & (sets - 1);
    const BtbEntry *base = &btb_[static_cast<std::size_t>(set) * cfg_.btbAssoc];
    for (unsigned w = 0; w < cfg_.btbAssoc; ++w)
        if (base[w].valid && base[w].pc == pc)
            return {base[w].target, true};
    return {0, false};
}

BranchPrediction
BranchPredictor::predict(Addr pc, bool is_cond, bool is_call,
                         bool is_return, Addr fallthrough)
{
    BranchPrediction pred;

    if (is_cond) {
        ++condLookups_;
        pred.taken = peekDirection(pc);
    } else {
        pred.taken = true;
    }

    if (pred.taken) {
        if (is_return) {
            auto [target, valid] = popRas();
            pred.target = target;
            pred.targetValid = valid;
        } else {
            ++btbLookups_;
            if (BtbEntry *e = btbFind(pc)) {
                e->lastUse = ++btbClock_;
                pred.target = e->target;
                pred.targetValid = true;
            } else {
                ++btbMisses_;
            }
        }
    }

    if (is_call)
        pushRas(fallthrough);

    return pred;
}

void
BranchPredictor::update(Addr pc, bool is_cond, bool taken, Addr target)
{
    if (is_cond) {
        TwoBitCounter &g = gshare_[gshareIndex(pc)];
        TwoBitCounter &b = bimodal_[bimodalIndex(pc)];
        TwoBitCounter &c = chooser_[chooserIndex(pc)];
        const bool g_correct = g.taken() == taken;
        const bool b_correct = b.taken() == taken;
        if (g_correct != b_correct)
            c.update(g_correct);
        g.update(taken);
        b.update(taken);
        history_ = (history_ << 1) | (taken ? 1u : 0u);
    }
    if (taken)
        btbInsert(pc, target);
}

void
BranchPredictor::notePrediction(bool correct)
{
    if (!correct)
        ++condWrong_;
}

void
BranchPredictor::dumpStats(StatDump &out) const
{
    out.scalar("bpred.cond_lookups", condLookups_.value());
    out.scalar("bpred.cond_mispredicts", condWrong_.value());
    out.scalar("bpred.accuracy_pct",
               100.0 - percent(condWrong_.value(), condLookups_.value()));
    out.scalar("bpred.btb_lookups", btbLookups_.value());
    out.scalar("bpred.btb_misses", btbMisses_.value());
}

} // namespace ctcp
