/**
 * @file
 * Branch direction and target prediction: a 16k-entry gshare/bimodal
 * hybrid (per Table 7), a 512-entry 4-way BTB, and a return-address
 * stack.
 *
 * The trace-cache fetch engine asks for several predictions per cycle
 * (one per embedded branch); this model serves them serially, which is
 * the standard idealization for multiple-branch prediction studies.
 */

#ifndef CTCPSIM_BPRED_PREDICTOR_HH
#define CTCPSIM_BPRED_PREDICTOR_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "config/sim_config.hh"
#include "common/types.hh"
#include "stats/stats.hh"

namespace ctcp {

/** Saturating 2-bit counter helper. */
class TwoBitCounter
{
  public:
    explicit TwoBitCounter(std::uint8_t initial = 2) : value_(initial) {}

    bool taken() const { return value_ >= 2; }

    void
    update(bool outcome)
    {
        if (outcome && value_ < 3)
            ++value_;
        else if (!outcome && value_ > 0)
            --value_;
    }

    std::uint8_t raw() const { return value_; }

  private:
    std::uint8_t value_;
};

/** Prediction for one control-transfer instruction. */
struct BranchPrediction
{
    bool taken = false;
    /** Predicted target (valid when taken && targetValid). */
    Addr target = 0;
    /** False when a taken branch had no BTB/RAS target available. */
    bool targetValid = false;
};

/** gshare/bimodal hybrid with chooser, BTB and RAS. */
class BranchPredictor
{
  public:
    explicit BranchPredictor(const BranchPredictorConfig &cfg);

    /**
     * Predict the branch at word PC @p pc.
     *
     * @param is_cond      conditional branch (direction predicted)?
     * @param is_call      pushes a return address?
     * @param is_return    pops the RAS?
     * @param fallthrough  pc+1, pushed for calls
     */
    BranchPrediction predict(Addr pc, bool is_cond, bool is_call,
                             bool is_return, Addr fallthrough);

    /**
     * Train on the resolved outcome.
     *
     * @param taken   actual direction
     * @param target  actual taken target
     */
    void update(Addr pc, bool is_cond, bool taken, Addr target);

    // Fine-grained interface used by the trace-cache fetch engine,
    // which needs to probe directions during path-associative lookup
    // without disturbing predictor state.

    /** Predicted direction for the conditional at @p pc (no update). */
    bool peekDirection(Addr pc) const;

    /** Push a return address (call fetched). */
    void pushRas(Addr return_pc);

    /**
     * Pop the return-address stack.
     * @return (target, valid); invalid when the stack is empty.
     */
    std::pair<Addr, bool> popRas();

    /** BTB target for @p pc. @return (target, valid). */
    std::pair<Addr, bool> peekBtb(Addr pc) const;

    /** Conditional-direction accuracy bookkeeping (for stats). */
    void notePrediction(bool correct);

    std::uint64_t condPredictions() const { return condLookups_.value(); }
    std::uint64_t condMispredictions() const { return condWrong_.value(); }

    void dumpStats(StatDump &out) const;

  private:
    unsigned gshareIndex(Addr pc) const;
    unsigned bimodalIndex(Addr pc) const;
    unsigned chooserIndex(Addr pc) const;

    BranchPredictorConfig cfg_;
    std::vector<TwoBitCounter> gshare_;
    std::vector<TwoBitCounter> bimodal_;
    /** Chooser: taken state means "trust gshare". */
    std::vector<TwoBitCounter> chooser_;
    std::uint64_t history_ = 0;

    struct BtbEntry
    {
        Addr pc = 0;
        Addr target = 0;
        bool valid = false;
        std::uint64_t lastUse = 0;
    };
    std::vector<BtbEntry> btb_;
    std::uint64_t btbClock_ = 0;

    std::vector<Addr> ras_;
    std::size_t rasTop_ = 0;
    std::size_t rasDepth_ = 0;

    Counter condLookups_;
    Counter condWrong_;
    Counter btbLookups_;
    Counter btbMisses_;

    BtbEntry *btbFind(Addr pc);
    void btbInsert(Addr pc, Addr target);
};

} // namespace ctcp

#endif // CTCPSIM_BPRED_PREDICTOR_HH
