#include "assign/fdrt_assignment.hh"

#include "assign/friendly_assignment.hh"
#include "common/logging.hh"
#include "obs/sink.hh"
#include "tracecache/trace_cache.hh"

namespace ctcp {

FdrtAssignment::FdrtAssignment(const Interconnect &interconnect, bool pinning,
                               bool chains)
    : interconnect_(interconnect), pinning_(pinning), chains_(chains)
{}

void
FdrtAssignment::noteCriticalForward(const TimedInst &consumer, TraceCache &tc)
{
    const TimedInstCold &cold = consumer.cold();
    if (!cold.criticalForwarded || !cold.criticalInterTrace)
        return;
    if (cold.criticalProducerCluster == invalidCluster)
        return;

    const Addr producer_pc = cold.criticalProducerPc;

    // Suggested destination cluster for a NEW chain: rotate across
    // the clusters so that concurrent chains spread out instead of
    // piling onto one cluster's four per-trace slots (the paper
    // leaves the suggestion heuristic open). A pinned leader keeps
    // its first suggestion forever; without pinning the suggestion
    // tracks wherever the producer happened to execute this time
    // (the moving-target behaviour of Section 4.4).
    ClusterId suggested;
    if (pinning_) {
        auto it = pins_.find(producer_pc);
        if (it == pins_.end()) {
            it = pins_.emplace(producer_pc, nextSuggestion_).first;
            nextSuggestion_ = static_cast<ClusterId>(
                (nextSuggestion_ + 1) % interconnect_.numClusters());
        }
        suggested = it->second;
    } else {
        suggested = cold.criticalProducerCluster;
    }

    if (cold.criticalProducerProfile.role == ChainRole::None) {
        // Refresh the resident line so runtime inheritance sees the
        // membership before the producer's trace is next rebuilt.
        ChainProfile prof;
        prof.role = ChainRole::Leader;
        prof.chainCluster = suggested;
        tc.updateProfile(cold.criticalProducerTraceKey, producer_pc,
                         prof);
    }

    if (pendingPromotions_.size() >= maxPending)
        pendingPromotions_.clear();   // bounded hardware buffer overflows
    pendingPromotions_[producer_pc] = suggested;
    ++promotions_;
}

ChainProfile
FdrtAssignment::updateChainState(const DraftInst &inst)
{
    // Membership is re-derived from the latest dynamic behaviour at
    // every trace construction; only the chain *cluster* is sticky
    // (the pin table). This keeps chain membership tracking the
    // current inter-trace data flow instead of monotonically
    // absorbing every instruction that ever saw a jittery critical
    // input.
    ChainProfile prof;   // role None
    if (!chains_)
        return prof;   // intra-trace-only ablation (Section 5.3)

    // Follower (Table 4): critical input forwarded from a different
    // trace by a chain member; inherits the chain cluster the
    // producer forwarded along with its result.
    const bool producer_is_member =
        inst.criticalForwarded && inst.criticalInterTrace &&
        inst.criticalProducerProfile.isMember();
    if (producer_is_member) {
        prof.role = ChainRole::Follower;
        prof.chainCluster = inst.criticalProducerProfile.chainCluster;
        return prof;
    }

    // Leader: some consumer reported receiving our result across a
    // trace boundary as its last-arriving input (promotion feedback).
    auto it = pendingPromotions_.find(inst.pc);
    if (it != pendingPromotions_.end()) {
        prof.role = ChainRole::Leader;
        prof.chainCluster = it->second;
        pendingPromotions_.erase(it);
        if (pinning_) {
            auto pin = pins_.find(inst.pc);
            if (pin != pins_.end())
                prof.chainCluster = pin->second;   // leaders never move
        }
    }
    return prof;
}

bool
FdrtAssignment::tryPlace(TraceDraft &draft, DraftInst &inst,
                         ClusterId cluster, std::vector<unsigned> &used,
                         std::vector<int> &next_slot)
{
    if (cluster == invalidCluster)
        return false;
    const auto c = static_cast<std::size_t>(cluster);
    if (c >= used.size() || used[c] >= draft.slotsPerCluster)
        return false;
    inst.physSlot = next_slot[c]++;
    ++used[c];
    return true;
}

bool
FdrtAssignment::tryNeighbors(TraceDraft &draft, DraftInst &inst,
                             ClusterId cluster, std::vector<unsigned> &used,
                             std::vector<int> &next_slot)
{
    if (cluster == invalidCluster)
        return false;
    // Adjacent clusters, emptier first so parallel chains spread
    // instead of caravanning, bending toward the middle on ties.
    ClusterId best = invalidCluster;
    unsigned best_used = ~0u;
    for (ClusterId n : interconnect_.byCentrality()) {
        if (n == cluster || interconnect_.distance(cluster, n) != 1)
            continue;
        const unsigned u = used[static_cast<std::size_t>(n)];
        if (u < draft.slotsPerCluster && u < best_used) {
            best_used = u;
            best = n;
        }
    }
    return best != invalidCluster &&
           tryPlace(draft, inst, best, used, next_slot);
}

void
FdrtAssignment::assign(TraceDraft &draft)
{
    const unsigned clusters = draft.numClusters;
    std::vector<unsigned> used(clusters, 0);
    std::vector<int> next_slot(clusters);
    for (unsigned c = 0; c < clusters; ++c)
        next_slot[c] = static_cast<int>(c * draft.slotsPerCluster);

    for (DraftInst &d : draft.insts) {
        d.physSlot = -1;
        d.newProfile = updateChainState(d);
    }

    auto placed_cluster = [&](int logical) -> ClusterId {
        const DraftInst &p = draft.insts[static_cast<std::size_t>(logical)];
        return p.physSlot >= 0 ? draft.clusterOfSlot(p.physSlot)
                               : invalidCluster;
    };

    // First pass: Table 5, oldest to youngest in logical order.
    for (DraftInst &d : draft.insts) {
        const bool has_intra = d.intraProducer >= 0;
        const bool is_chain = d.newProfile.isMember();

        if (has_intra && !is_chain) {
            // Option A: producer's cluster, then its neighbors.
            ++options_.optionA;
            d.fdrtOption = 'A';
            const ClusterId prod = placed_cluster(d.intraProducer);
            if (!tryPlace(draft, d, prod, used, next_slot) &&
                !tryNeighbors(draft, d, prod, used, next_slot)) {
                --options_.optionA;
                ++options_.skipped;
                d.fdrtOption = 'S';
            }
        } else if (!has_intra && is_chain) {
            // Option B: chain cluster, then its neighbors.
            ++options_.optionB;
            d.fdrtOption = 'B';
            const ClusterId chain = d.newProfile.chainCluster;
            if (!tryPlace(draft, d, chain, used, next_slot) &&
                !tryNeighbors(draft, d, chain, used, next_slot)) {
                --options_.optionB;
                ++options_.skipped;
                d.fdrtOption = 'S';
            }
        } else if (has_intra && is_chain) {
            // Option C: chain first, then producer, then neighbors.
            ++options_.optionC;
            d.fdrtOption = 'C';
            const ClusterId chain = d.newProfile.chainCluster;
            const ClusterId prod = placed_cluster(d.intraProducer);
            if (!tryPlace(draft, d, chain, used, next_slot) &&
                !tryPlace(draft, d, prod, used, next_slot) &&
                !tryNeighbors(draft, d, chain, used, next_slot)) {
                --options_.optionC;
                ++options_.skipped;
                d.fdrtOption = 'S';
            }
        } else if (d.hasIntraConsumer) {
            // Option D: pure producer — funnel toward the middle, but
            // spread parallel producers by load so their dependence
            // chains get disjoint clusters to grow in.
            ++options_.optionD;
            d.fdrtOption = 'D';
            ClusterId best = invalidCluster;
            unsigned best_used = ~0u;
            for (ClusterId c : interconnect_.byCentrality()) {
                const unsigned u = used[static_cast<std::size_t>(c)];
                if (u < draft.slotsPerCluster && u < best_used) {
                    best_used = u;
                    best = c;
                }
            }
            if (best == invalidCluster ||
                !tryPlace(draft, d, best, used, next_slot)) {
                --options_.optionD;
                ++options_.skipped;
                d.fdrtOption = 'S';
            }
        } else {
            // Option E: nothing identifiable — leave to the second pass.
            ++options_.optionE;
            d.fdrtOption = 'E';
        }
    }

    // Second pass: place the remainder with Friendly's slot-centric
    // method over the slots that are still free.
    std::vector<int> free_slots;
    for (unsigned c = 0; c < clusters; ++c)
        for (unsigned s = used[c]; s < draft.slotsPerCluster; ++s)
            free_slots.push_back(
                static_cast<int>(c * draft.slotsPerCluster + s));
    FriendlyAssignment::fillSlots(draft, free_slots);


    for ([[maybe_unused]] const DraftInst &d : draft.insts)
        ctcp_assert(d.physSlot >= 0, "FDRT left an instruction unplaced");

    // One assignment-decision event per instruction, recording which
    // Table-5 option drove the placement and the cluster chosen.
    if (obs_ && obs_->enabled(ObsKind::Assign)) {
        for (const DraftInst &d : draft.insts) {
            ObsEvent ev;
            ev.cycle = obsCycle_;
            ev.kind = ObsKind::Assign;
            ev.pc = d.pc;
            ev.opt = d.fdrtOption;
            ev.cluster = draft.clusterOfSlot(d.physSlot);
            obs_->record(ev);
        }
    }
}

} // namespace ctcp
