/**
 * @file
 * Baseline retire-time "assignment": instructions keep their logical
 * order as the physical slot order, so cluster assignment is purely a
 * function of fetch position (the paper's base machine).
 */

#ifndef CTCPSIM_ASSIGN_BASE_ASSIGNMENT_HH
#define CTCPSIM_ASSIGN_BASE_ASSIGNMENT_HH

#include "tracecache/assignment.hh"

namespace ctcp {

/** Identity slot assignment (slot = logical index). */
class BaseSlotOrderAssignment : public RetireAssignmentPolicy
{
  public:
    void
    assign(TraceDraft &draft) override
    {
        for (std::size_t i = 0; i < draft.insts.size(); ++i) {
            draft.insts[i].physSlot = static_cast<int>(i);
            draft.insts[i].newProfile = draft.insts[i].carriedProfile;
        }
    }

    const char *name() const override { return "base"; }
};

} // namespace ctcp

#endif // CTCPSIM_ASSIGN_BASE_ASSIGNMENT_HH
