/**
 * @file
 * Feedback-directed retire-time (FDRT) cluster assignment — the
 * paper's contribution (Section 4).
 *
 * Two cooperating mechanisms:
 *
 * 1. Cluster chains (Table 4). When a consumer's last-arriving input
 *    is forwarded across a trace boundary from a producer that is not
 *    yet a chain member, the producer is promoted to chain *leader*
 *    with a suggested destination cluster; the promotion is written
 *    into the producer's resident trace-cache line profile fields (and
 *    remembered in a small pending buffer so the next reconstruction
 *    of the producer's trace picks it up even if the line has been
 *    replaced). A consumer whose critical input is forwarded
 *    inter-trace by a leader or follower becomes a *follower*,
 *    inheriting the chain cluster that the producer forwarded along
 *    with its result. With pinning enabled (Section 4.4) a leader's
 *    suggested cluster is fixed on first promotion and never changes.
 *
 * 2. Slot assignment (Table 5). At trace construction the fill unit
 *    walks the instructions in logical order and applies options A-E:
 *    intra-trace consumers near their producers, chain members on
 *    their chain cluster, pure producers funneled to the middle
 *    clusters, everything unplaceable deferred to a Friendly-style
 *    second pass over the remaining slots.
 */

#ifndef CTCPSIM_ASSIGN_FDRT_ASSIGNMENT_HH
#define CTCPSIM_ASSIGN_FDRT_ASSIGNMENT_HH

#include <cstdint>
#include <unordered_map>

#include "cluster/interconnect.hh"
#include "stats/stats.hh"
#include "tracecache/assignment.hh"

namespace ctcp {

/** Per-option outcome counters for Figure 7. */
struct FdrtOptionStats
{
    std::uint64_t optionA = 0;   ///< intra-trace producer only
    std::uint64_t optionB = 0;   ///< chain member only
    std::uint64_t optionC = 0;   ///< chain member with intra producer
    std::uint64_t optionD = 0;   ///< producer-only (intra consumer)
    std::uint64_t optionE = 0;   ///< no identifiable relations
    std::uint64_t skipped = 0;   ///< A-D failed to find a nearby slot

    std::uint64_t
    total() const
    {
        return optionA + optionB + optionC + optionD + optionE + skipped;
    }
};

/** The FDRT retire-time assignment policy. */
class FdrtAssignment : public RetireAssignmentPolicy
{
  public:
    /**
     * @param interconnect  cluster topology
     * @param pinning       pin chain members to their first cluster
     * @param chains        enable inter-trace chains (false isolates
     *                      the intra-trace heuristics, Section 5.3)
     */
    FdrtAssignment(const Interconnect &interconnect, bool pinning,
                   bool chains = true);

    void assign(TraceDraft &draft) override;

    /** Leader promotion on an observed critical inter-trace forward. */
    void noteCriticalForward(const TimedInst &consumer,
                             TraceCache &tc) override;

    const char *name() const override { return "fdrt"; }

    const FdrtOptionStats &optionStats() const { return options_; }

    /** Leader pins currently recorded (pinning mode only). */
    std::size_t pinCount() const { return pins_.size(); }
    std::uint64_t promotions() const { return promotions_.value(); }

  private:
    /** Chain-membership update for one instruction (Table 4). */
    ChainProfile updateChainState(const DraftInst &inst);

    /** Try to place on @p cluster; true on success. */
    bool tryPlace(TraceDraft &draft, DraftInst &inst, ClusterId cluster,
                  std::vector<unsigned> &used,
                  std::vector<int> &next_slot);

    /** Try the neighbors of @p cluster, most central first. */
    bool tryNeighbors(TraceDraft &draft, DraftInst &inst, ClusterId cluster,
                      std::vector<unsigned> &used,
                      std::vector<int> &next_slot);

    const Interconnect &interconnect_;
    bool pinning_;
    bool chains_;

    /** Permanent leader-cluster pins (pinning mode). */
    std::unordered_map<Addr, ClusterId> pins_;
    /**
     * Pending leader promotions awaiting the producer's next trace
     * reconstruction (covers replaced lines and I-cache fetches).
     * Bounded; models a small fill-unit-side buffer.
     */
    std::unordered_map<Addr, ClusterId> pendingPromotions_;
    static constexpr std::size_t maxPending = 4096;

    FdrtOptionStats options_;
    Counter promotions_;
    /** Round-robin cursor for new chain-cluster suggestions. */
    ClusterId nextSuggestion_ = 0;
};

} // namespace ctcp

#endif // CTCPSIM_ASSIGN_FDRT_ASSIGNMENT_HH
