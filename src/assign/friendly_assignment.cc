#include "assign/friendly_assignment.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ctcp {

void
FriendlyAssignment::fillSlots(TraceDraft &draft,
                              const std::vector<int> &slot_order)
{
    const std::size_t n = draft.insts.size();

    // Cluster each already-placed instruction occupies (second-pass use).
    auto placed_cluster = [&](std::size_t i) -> ClusterId {
        const DraftInst &d = draft.insts[i];
        return d.physSlot >= 0 ? draft.clusterOfSlot(d.physSlot)
                               : invalidCluster;
    };

    // Per the paper's description of the Friendly scheme: "for each
    // issue slot, each instruction is checked for an intra-trace input
    // dependency for the respective cluster" — i.e. a slot takes the
    // oldest unplaced instruction whose producer already landed on the
    // slot's cluster, falling back to the oldest unplaced instruction.
    for (int slot : slot_order) {
        const ClusterId cluster = draft.clusterOfSlot(slot);

        int match = -1;   // intra-trace producer placed on `cluster`
        int any = -1;     // fallback: oldest unplaced
        for (std::size_t i = 0; i < n; ++i) {
            DraftInst &d = draft.insts[i];
            if (d.physSlot >= 0)
                continue;
            if (any < 0)
                any = static_cast<int>(i);
            if (d.intraProducer >= 0 &&
                placed_cluster(static_cast<std::size_t>(d.intraProducer)) ==
                    cluster) {
                match = static_cast<int>(i);
                break;
            }
        }

        const int pick = match >= 0 ? match : any;
        if (pick < 0)
            break;   // all instructions placed
        draft.insts[static_cast<std::size_t>(pick)].physSlot = slot;
    }
}

void
FriendlyAssignment::assign(TraceDraft &draft)
{
    for (DraftInst &d : draft.insts) {
        d.physSlot = -1;
        d.newProfile = d.carriedProfile;
    }

    std::vector<int> order;
    if (middleBias_) {
        // Visit slots cluster-by-cluster, middle clusters first.
        for (ClusterId c : interconnect_.byCentrality())
            for (unsigned s = 0; s < draft.slotsPerCluster; ++s)
                order.push_back(static_cast<int>(c) *
                                    static_cast<int>(draft.slotsPerCluster) +
                                static_cast<int>(s));
    } else {
        for (unsigned s = 0; s < draft.totalSlots(); ++s)
            order.push_back(static_cast<int>(s));
    }

    fillSlots(draft, order);

    for ([[maybe_unused]] const DraftInst &d : draft.insts)
        ctcp_assert(d.physSlot >= 0, "Friendly pass left an unplaced inst");
}

} // namespace ctcp
