/**
 * @file
 * Dynamic issue-time cluster steering (Section 2.3 "Issue Time").
 *
 * Instructions are distributed to the cluster where one or more of
 * their data inputs are known to be generated; at most
 * slotsPerCluster instructions go to each cluster per cycle, which
 * both simplifies the hardware and balances cluster workloads. Both
 * inter-trace and intra-trace dependencies are visible here. The
 * latency cost of the dependency analysis, steering and routing is
 * modelled as extra front-end stages configured separately
 * (AssignConfig::issueTimeLatency).
 */

#ifndef CTCPSIM_ASSIGN_ISSUE_TIME_STEERING_HH
#define CTCPSIM_ASSIGN_ISSUE_TIME_STEERING_HH

#include <vector>

#include "cluster/cluster.hh"
#include "cluster/interconnect.hh"
#include "cluster/timed_inst.hh"

namespace ctcp {

/** Issue-time dependency-based steering with per-cycle cluster caps. */
class IssueTimeSteering
{
  public:
    IssueTimeSteering(const Interconnect &interconnect,
                      unsigned per_cluster_per_cycle)
        : interconnect_(interconnect),
          cap_(per_cluster_per_cycle),
          counts_(static_cast<std::size_t>(interconnect.numClusters()), 0)
    {}

    /** Reset the per-cycle steering caps. */
    void
    newCycle(Cycle now)
    {
        if (now != cycle_) {
            cycle_ = now;
            std::fill(counts_.begin(), counts_.end(), 0u);
        }
    }

    /**
     * Pick an execution cluster for @p inst.
     *
     * Preference order: the cluster of a not-yet-complete producer
     * (that is the input the instruction will wait on), then the
     * cluster of any producer, then the least-occupied cluster. Only
     * clusters under the per-cycle cap that can structurally accept
     * the instruction are eligible.
     *
     * @return the chosen cluster, or invalidCluster when every
     *         eligible cluster is capped/full (issue must stall).
     */
    ClusterId
    pick(const TimedInst &inst, const std::vector<Cluster> &clusters)
    {
        auto eligible = [&](ClusterId c) {
            const auto i = static_cast<std::size_t>(c);
            return counts_[i] < cap_ && clusters[i].canAccept(inst, cycle_);
        };

        // Producer clusters: prefer the operand still in flight.
        ClusterId preferred[2] = {invalidCluster, invalidCluster};
        int n = 0;
        for (const OperandState &op : inst.ops) {
            if (!op.valid || op.fromRF)
                continue;
            const ClusterId pc = op.producerComplete
                ? op.producerCluster
                : (op.producerPtr ? op.producerPtr->cluster
                                  : invalidCluster);
            if (pc == invalidCluster)
                continue;
            if (!op.producerComplete && n > 0) {
                // In-flight producer outranks a completed one.
                preferred[1] = preferred[0];
                preferred[0] = pc;
                ++n;
            } else {
                preferred[n++] = pc;
            }
        }
        // Workload balance (the second half of the paper's policy): a
        // producer's cluster is only honoured while its backlog is not
        // grossly out of line with the least-loaded cluster, otherwise
        // dependence-following would funnel whole chains onto one
        // cluster's single memory/branch unit.
        std::size_t min_load = ~std::size_t{0};
        for (int c = 0; c < interconnect_.numClusters(); ++c) {
            min_load = std::min(min_load,
                clusters[static_cast<std::size_t>(c)].occupancy());
        }
        bool wanted = false;
        for (int i = 0; i < n; ++i) {
            if (preferred[i] == invalidCluster)
                continue;
            const std::size_t load =
                clusters[static_cast<std::size_t>(preferred[i])].occupancy();
            if (load > min_load + balanceSlack)
                continue;
            wanted = true;
            if (!eligible(preferred[i]))
                continue;
            ++counts_[static_cast<std::size_t>(preferred[i])];
            return preferred[i];
        }
        if (wanted) {
            // The dependence cluster exists but cannot accept this
            // cycle: waiting a cycle is cheaper than paying the
            // inter-cluster forwarding latency on a dependence chain.
            return invalidCluster;
        }

        // Fall back to the least-loaded eligible cluster (workload
        // balance), breaking ties toward the middle.
        ClusterId best = invalidCluster;
        std::size_t best_load = ~std::size_t{0};
        for (ClusterId c : interconnect_.byCentrality()) {
            if (!eligible(c))
                continue;
            const std::size_t load =
                clusters[static_cast<std::size_t>(c)].occupancy() +
                counts_[static_cast<std::size_t>(c)];
            if (load < best_load) {
                best_load = load;
                best = c;
            }
        }
        if (best != invalidCluster)
            ++counts_[static_cast<std::size_t>(best)];
        return best;
    }

  private:
    /** Occupancy headroom before balance overrides dependence. */
    static constexpr std::size_t balanceSlack = 12;

    const Interconnect &interconnect_;
    unsigned cap_;
    std::vector<unsigned> counts_;
    Cycle cycle_ = neverCycle;
};

} // namespace ctcp

#endif // CTCPSIM_ASSIGN_ISSUE_TIME_STEERING_HH
