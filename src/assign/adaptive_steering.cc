#include "assign/adaptive_steering.hh"

namespace ctcp {

AdaptiveSteeringController::AdaptiveSteeringController(
    const AssignConfig &cfg, const CycleAccounting &acct)
    : cfg_(cfg), acct_(acct), nextEval_(cfg.adaptiveInterval)
{}

bool
AdaptiveSteeringController::evaluate(Cycle now)
{
    nextEval_ += cfg_.adaptiveInterval;
    ++intervals_;
    // The interval that just ended ran under the current mode; charge
    // it before any switch below takes effect.
    ++perMode_[static_cast<unsigned>(mode_)];

    std::uint64_t delta[numSlotCats];
    std::uint64_t total = 0;
    for (unsigned k = 0; k < numSlotCats; ++k) {
        const std::uint64_t cur =
            acct_.machineSlots(static_cast<SlotCat>(k));
        delta[k] = cur - prev_[k];
        prev_[k] = cur;
        total += delta[k];
    }
    if (total == 0)
        return false;

    const std::uint64_t fwd =
        delta[static_cast<unsigned>(SlotCat::WaitFwd1)] +
        delta[static_cast<unsigned>(SlotCat::WaitFwd2)] +
        delta[static_cast<unsigned>(SlotCat::WaitFwd3)];
    const std::uint64_t redirect =
        delta[static_cast<unsigned>(SlotCat::FetchRedirect)];

    // Top-down ladder over integer per-mille shares: with >= at every
    // rung, an exact tie resolves to the earlier (more specialized)
    // rung, giving a deterministic total order over outcomes.
    AssignStrategy want;
    if (fwd * 1000 >= cfg_.adaptiveFwdHiPermille * total) {
        want = redirect * 1000 > cfg_.adaptiveRedirectHiPermille * total
                   ? AssignStrategy::Fdrt
                   : AssignStrategy::IssueTime;
    } else if (fwd * 1000 >= cfg_.adaptiveFwdLoPermille * total) {
        want = AssignStrategy::Fdrt;
    } else if (fwd * 1000 >= cfg_.adaptiveFwdMinPermille * total) {
        want = AssignStrategy::Friendly;
    } else {
        want = AssignStrategy::BaseSlotOrder;
    }

    if (want == mode_) {
        pendingWins_ = 0;
        return false;
    }
    if (want == pending_ && pendingWins_ > 0)
        ++pendingWins_;
    else {
        pending_ = want;
        pendingWins_ = 1;
    }
    if (pendingWins_ < cfg_.adaptiveHysteresis)
        return false;

    mode_ = want;
    pendingWins_ = 0;
    ++switches_;
    trace_.emplace_back(now, want);
    return true;
}

AdaptivePolicy::AdaptivePolicy(const Interconnect &interconnect,
                               const AssignConfig &cfg)
    : friendly_(interconnect, cfg.friendlyMiddleBias),
      fdrt_(interconnect, cfg.fdrtPinning, cfg.fdrtChains)
{}

RetireAssignmentPolicy &
AdaptivePolicy::current()
{
    if (ctrl_ == nullptr)
        return base_;
    switch (ctrl_->mode()) {
      case AssignStrategy::Friendly:
        return friendly_;
      case AssignStrategy::Fdrt:
        return fdrt_;
      default:
        // BaseSlotOrder keeps fetch order; so does IssueTime mode,
        // where clusters are picked at issue by the steering logic.
        return base_;
    }
}

void
AdaptivePolicy::assign(TraceDraft &draft)
{
    RetireAssignmentPolicy &sub = current();
    sub.setObs(obs_);
    sub.setObsCycle(obsCycle_);
    sub.assign(draft);
}

void
AdaptivePolicy::noteCriticalForward(const TimedInst &consumer,
                                    TraceCache &tc)
{
    // Always feed FDRT so its chain state is warm when a phase switches
    // to it; delivery is deterministic simulation state in every mode.
    fdrt_.setObs(obs_);
    fdrt_.setObsCycle(obsCycle_);
    fdrt_.noteCriticalForward(consumer, tc);
}

} // namespace ctcp
