/**
 * @file
 * Phase-adaptive strategy selection (AssignStrategy::Adaptive).
 *
 * No single static assignment policy wins everywhere: FDRT pays off
 * when critical values cross clusters, Friendly when intra-trace
 * locality suffices, issue-time steering when phases are predictable
 * enough to amortize its extra front-end stages, and plain slot order
 * when the bottleneck is not forwarding at all. The adaptive chooser
 * runs the cycle-accounting slot taxonomy (obs/accounting) as its
 * feedback signal and re-decides the active policy at a fixed cycle
 * interval from the *shares* of the interval's attributed slots:
 *
 *   wait_fwd share >= Hi   forwarding-bound phase: issue-time steering
 *                          when redirects are rare, FDRT when the
 *                          phase also mispredicts (the extra steering
 *                          stages would stretch every redirect);
 *   in [Lo, Hi)            FDRT;
 *   in [Min, Lo)           Friendly;
 *   below Min              base slot order (nothing to fix).
 *
 * Determinism rules (DESIGN decision 9): thresholds are integer
 * per-mille of the interval's slot total and every comparison is exact
 * 64-bit arithmetic; the ladder is evaluated top-down so exact ties
 * resolve to the more specialized policy; a challenger must win
 * `adaptiveHysteresis` consecutive intervals before the switch lands.
 * All inputs are architectural simulation state, so decisions are
 * byte-identical across worker counts and host machines.
 *
 * Mechanically the strategy is two cooperating pieces:
 *  - AdaptiveSteeringController: owns the interval sampling and the
 *    mode state machine; the simulator consults it once per interval
 *    boundary and re-routes rename/issue when the mode changes.
 *  - AdaptivePolicy: a RetireAssignmentPolicy facade over the three
 *    retire-time policies; each trace construction delegates to the
 *    policy of the current mode (issue-time mode leaves traces in
 *    fetch order and lets IssueTimeSteering pick clusters at issue).
 */

#ifndef CTCPSIM_ASSIGN_ADAPTIVE_STEERING_HH
#define CTCPSIM_ASSIGN_ADAPTIVE_STEERING_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "assign/base_assignment.hh"
#include "assign/fdrt_assignment.hh"
#include "assign/friendly_assignment.hh"
#include "common/types.hh"
#include "config/sim_config.hh"
#include "obs/accounting.hh"

namespace ctcp {

/**
 * Interval-driven mode chooser. The mode vocabulary is the four static
 * strategies, so AssignStrategy doubles as the mode type (Adaptive
 * itself is never a mode).
 */
class AdaptiveSteeringController
{
  public:
    AdaptiveSteeringController(const AssignConfig &cfg,
                               const CycleAccounting &acct);

    /** True exactly at interval boundaries (one compare per cycle). */
    bool due(Cycle now) const { return now == nextEval_; }

    /**
     * Sample the taxonomy for the interval that just ended and run the
     * decision ladder. Returns true when the active mode switched (the
     * simulator then re-routes rename/issue).
     */
    bool evaluate(Cycle now);

    AssignStrategy mode() const { return mode_; }

    // ---- Stats ------------------------------------------------------
    std::uint64_t switches() const { return switches_; }
    std::uint64_t intervals() const { return intervals_; }

    /** Evaluation intervals spent running @p mode. */
    std::uint64_t
    intervalsIn(AssignStrategy mode) const
    {
        return perMode_[static_cast<unsigned>(mode)];
    }

    /** Phase trace: (boundary cycle, mode switched to). */
    const std::vector<std::pair<Cycle, AssignStrategy>> &
    phaseTrace() const
    {
        return trace_;
    }

  private:
    const AssignConfig cfg_;
    const CycleAccounting &acct_;

    Cycle nextEval_;
    AssignStrategy mode_ = AssignStrategy::BaseSlotOrder;
    /** Challenger mode and its consecutive-interval win count. */
    AssignStrategy pending_ = AssignStrategy::BaseSlotOrder;
    unsigned pendingWins_ = 0;

    /** Cumulative machine slot counts at the previous boundary. */
    std::uint64_t prev_[numSlotCats] = {};

    std::uint64_t switches_ = 0;
    std::uint64_t intervals_ = 0;
    std::uint64_t perMode_[4] = {};
    std::vector<std::pair<Cycle, AssignStrategy>> trace_;
};

/**
 * Retire-time facade: delegates each trace construction to the policy
 * of the controller's current mode. FDRT's chain feedback keeps
 * flowing in every mode so its state is warm whenever a phase switches
 * to it — feedback delivery is deterministic simulation state either
 * way.
 */
class AdaptivePolicy : public RetireAssignmentPolicy
{
  public:
    AdaptivePolicy(const Interconnect &interconnect,
                   const AssignConfig &cfg);

    void assign(TraceDraft &draft) override;
    void noteCriticalForward(const TimedInst &consumer,
                             TraceCache &tc) override;
    const char *name() const override { return "adaptive"; }

    void
    setController(const AdaptiveSteeringController *ctrl)
    {
        ctrl_ = ctrl;
    }

  private:
    RetireAssignmentPolicy &current();

    BaseSlotOrderAssignment base_;
    FriendlyAssignment friendly_;
    FdrtAssignment fdrt_;
    const AdaptiveSteeringController *ctrl_ = nullptr;
};

} // namespace ctcp

#endif // CTCPSIM_ASSIGN_ADAPTIVE_STEERING_HH
