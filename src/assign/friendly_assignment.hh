/**
 * @file
 * Friendly et al.'s retire-time reordering (MICRO-31), as described in
 * Section 2.3 of the paper: a slot-centric pass that, for each issue
 * slot in turn, looks for an instruction with an intra-trace input
 * dependency on the slot's cluster.
 *
 * The optional middle-bias variant (Section 5.3's "minor adjustment")
 * visits slots of the middle clusters first so that the majority of
 * instructions land where worst-case forwarding distances are short.
 */

#ifndef CTCPSIM_ASSIGN_FRIENDLY_ASSIGNMENT_HH
#define CTCPSIM_ASSIGN_FRIENDLY_ASSIGNMENT_HH

#include "cluster/interconnect.hh"
#include "tracecache/assignment.hh"

namespace ctcp {

/** Friendly-style intra-trace slot-centric reordering. */
class FriendlyAssignment : public RetireAssignmentPolicy
{
  public:
    /**
     * @param interconnect  cluster topology (for the middle-bias order)
     * @param middle_bias   visit middle-cluster slots first
     */
    FriendlyAssignment(const Interconnect &interconnect, bool middle_bias)
        : interconnect_(interconnect), middleBias_(middle_bias)
    {}

    void assign(TraceDraft &draft) override;

    const char *name() const override
    {
        return middleBias_ ? "friendly-mid" : "friendly";
    }

    /**
     * Shared slot-filling pass: fill every slot in @p slot_order with
     * the best unplaced instruction (placed-producer match first, then
     * dependency-free, then oldest). Used by FriendlyAssignment and as
     * the FDRT second pass.
     */
    static void fillSlots(TraceDraft &draft,
                          const std::vector<int> &slot_order);

  private:
    const Interconnect &interconnect_;
    bool middleBias_;
};

} // namespace ctcp

#endif // CTCPSIM_ASSIGN_FRIENDLY_ASSIGNMENT_HH
