#include "func/executor.hh"

#include <bit>
#include <cmath>

#include "common/logging.hh"

namespace ctcp {

namespace {

double
asDouble(std::int64_t bits)
{
    return std::bit_cast<double>(bits);
}

std::int64_t
asBits(double value)
{
    return std::bit_cast<std::int64_t>(value);
}

// Two's-complement wrapping arithmetic: several workloads iterate
// transforms in place and rely on defined overflow behaviour.
std::int64_t
wrapAdd(std::int64_t a, std::int64_t b)
{
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                     static_cast<std::uint64_t>(b));
}

std::int64_t
wrapSub(std::int64_t a, std::int64_t b)
{
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                     static_cast<std::uint64_t>(b));
}

std::int64_t
wrapMul(std::int64_t a, std::int64_t b)
{
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) *
                                     static_cast<std::uint64_t>(b));
}

std::int64_t
wrapShl(std::int64_t a, unsigned sh)
{
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) << sh);
}

} // namespace

Executor::Executor(const Program &program)
    : program_(program), pc_(program.entry())
{
    reset();
}

void
Executor::reset()
{
    regs_.fill(0);
    mem_ = SparseMemory();
    for (const DataBlock &block : program_.data()) {
        Addr addr = block.base;
        for (std::int64_t word : block.words) {
            mem_.write(addr, word);
            addr += 8;
        }
    }
    pc_ = program_.entry();
    nextSeq_ = 0;
    halted_ = false;
}

std::int64_t
Executor::readReg(RegId r) const
{
    if (r == zeroReg || r == invalidReg)
        return 0;
    ctcp_assert(r < numArchRegs, "register id %u out of range",
                static_cast<unsigned>(r));
    return regs_[r];
}

void
Executor::writeReg(RegId r, std::int64_t value)
{
    if (r == zeroReg || r == invalidReg)
        return;
    ctcp_assert(r < numArchRegs, "register id %u out of range",
                static_cast<unsigned>(r));
    regs_[r] = value;
}

bool
Executor::step(DynInst &out)
{
    ctcp_assert(!halted_, "step() after Halt");

    const Instruction &inst = program_.fetch(pc_);
    const std::int64_t a = readReg(inst.src1);
    const std::int64_t b = readReg(inst.src2);

    out = DynInst();
    out.seq = nextSeq_++;
    out.pc = pc_;
    out.op = inst.op;
    out.dst = inst.dst;
    out.src1 = inst.src1;
    out.src2 = inst.src2;

    Addr next_pc = pc_ + 1;
    std::int64_t result = 0;
    bool has_result = inst.info().writesDst;

    switch (inst.op) {
      case Opcode::Add:  result = wrapAdd(a, b); break;
      case Opcode::Sub:  result = wrapSub(a, b); break;
      case Opcode::And:  result = a & b; break;
      case Opcode::Or:   result = a | b; break;
      case Opcode::Xor:  result = a ^ b; break;
      case Opcode::Sll:  result = wrapShl(a, b & 63); break;
      case Opcode::Srl:
        result = static_cast<std::int64_t>(
            static_cast<std::uint64_t>(a) >> (b & 63));
        break;
      case Opcode::Sra:  result = a >> (b & 63); break;
      case Opcode::Slt:  result = a < b ? 1 : 0; break;
      case Opcode::Sltu:
        result = static_cast<std::uint64_t>(a) < static_cast<std::uint64_t>(b)
            ? 1 : 0;
        break;
      case Opcode::AddI: result = wrapAdd(a, inst.imm); break;
      case Opcode::AndI: result = a & inst.imm; break;
      case Opcode::OrI:  result = a | inst.imm; break;
      case Opcode::XorI: result = a ^ inst.imm; break;
      case Opcode::SllI: result = wrapShl(a, inst.imm & 63); break;
      case Opcode::SrlI:
        result = static_cast<std::int64_t>(
            static_cast<std::uint64_t>(a) >> (inst.imm & 63));
        break;
      case Opcode::SltI: result = a < inst.imm ? 1 : 0; break;
      case Opcode::MovI: result = inst.imm; break;
      case Opcode::Mov:  result = a; break;

      case Opcode::Mul:  result = wrapMul(a, b); break;
      case Opcode::Div:  result = b == 0 ? 0 : a / b; break;
      case Opcode::Rem:  result = b == 0 ? 0 : a % b; break;

      case Opcode::Load:
        out.effAddr = static_cast<Addr>(a + inst.imm) & ~Addr(7);
        result = mem_.read(out.effAddr);
        break;
      case Opcode::Store:
        out.effAddr = static_cast<Addr>(a + inst.imm) & ~Addr(7);
        mem_.write(out.effAddr, b);
        break;
      case Opcode::FLoad:
        out.effAddr = static_cast<Addr>(a + inst.imm) & ~Addr(7);
        result = mem_.read(out.effAddr);
        break;
      case Opcode::FStore:
        out.effAddr = static_cast<Addr>(a + inst.imm) & ~Addr(7);
        mem_.write(out.effAddr, b);
        break;

      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge: {
        bool taken = false;
        switch (inst.op) {
          case Opcode::Beq: taken = a == b; break;
          case Opcode::Bne: taken = a != b; break;
          case Opcode::Blt: taken = a < b; break;
          case Opcode::Bge: taken = a >= b; break;
          default: break;
        }
        out.taken = taken;
        out.targetPc = static_cast<Addr>(inst.imm);
        if (taken)
            next_pc = out.targetPc;
        break;
      }
      case Opcode::Jump:
        out.taken = true;
        out.targetPc = static_cast<Addr>(inst.imm);
        next_pc = out.targetPc;
        break;
      case Opcode::JumpReg:
        out.taken = true;
        out.targetPc = static_cast<Addr>(a);
        next_pc = out.targetPc;
        break;
      case Opcode::Call:
        out.taken = true;
        out.targetPc = static_cast<Addr>(inst.imm);
        result = static_cast<std::int64_t>(pc_ + 1);
        next_pc = out.targetPc;
        break;
      case Opcode::Ret:
        out.taken = true;
        out.targetPc = static_cast<Addr>(a);
        next_pc = out.targetPc;
        break;

      case Opcode::FAdd:   result = asBits(asDouble(a) + asDouble(b)); break;
      case Opcode::FSub:   result = asBits(asDouble(a) - asDouble(b)); break;
      case Opcode::FNeg:   result = asBits(-asDouble(a)); break;
      case Opcode::FCmpLt: result = asDouble(a) < asDouble(b) ? 1 : 0; break;
      case Opcode::FCvtIF: result = asBits(static_cast<double>(a)); break;
      case Opcode::FCvtFI: {
        const double v = asDouble(a);
        result = (std::isfinite(v) && v > -9.0e18 && v < 9.0e18)
            ? static_cast<std::int64_t>(v) : 0;
        break;
      }
      case Opcode::FMul:   result = asBits(asDouble(a) * asDouble(b)); break;
      case Opcode::FDiv:
        result = asDouble(b) == 0.0 ? 0
            : asBits(asDouble(a) / asDouble(b));
        break;
      case Opcode::FSqrt: {
        const double v = asDouble(a);
        result = v < 0.0 ? 0 : asBits(std::sqrt(v));
        break;
      }

      case Opcode::Nop:
        break;
      case Opcode::Halt:
        halted_ = true;
        break;

      default:
        ctcp_panic("unhandled opcode %u in executor",
                   static_cast<unsigned>(inst.op));
    }

    if (has_result)
        writeReg(inst.dst, result);

    out.nextPc = next_pc;
    pc_ = next_pc;
    return !halted_;
}

} // namespace ctcp
