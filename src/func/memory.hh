/**
 * @file
 * Sparse 64-bit-word memory for the functional simulator.
 *
 * Backed by 4 KiB pages allocated on first touch; untouched memory
 * reads as zero, matching how SimpleScalar's functional memory behaves
 * for BSS-like regions.
 */

#ifndef CTCPSIM_FUNC_MEMORY_HH
#define CTCPSIM_FUNC_MEMORY_HH

#include <array>
#include <cstdint>
#include <unordered_map>

#include "common/types.hh"

namespace ctcp {

/** Sparse, zero-initialized, word-granular memory image. */
class SparseMemory
{
  public:
    /** Read the 64-bit word containing byte address @p addr. */
    std::int64_t
    read(Addr addr) const
    {
        const Addr word = addr >> 3;
        auto it = pages_.find(word >> wordsPerPageLog2);
        if (it == pages_.end())
            return 0;
        return it->second[word & (wordsPerPage - 1)];
    }

    /** Write the 64-bit word containing byte address @p addr. */
    void
    write(Addr addr, std::int64_t value)
    {
        const Addr word = addr >> 3;
        pages_[word >> wordsPerPageLog2][word & (wordsPerPage - 1)] = value;
    }

    /** Number of resident 4 KiB pages (for footprint reporting). */
    std::size_t residentPages() const { return pages_.size(); }

  private:
    static constexpr unsigned wordsPerPageLog2 = 9; // 512 words = 4 KiB
    static constexpr Addr wordsPerPage = 1ull << wordsPerPageLog2;

    std::unordered_map<Addr, std::array<std::int64_t, wordsPerPage>> pages_;
};

} // namespace ctcp

#endif // CTCPSIM_FUNC_MEMORY_HH
