/**
 * @file
 * Functional simulator: architecturally executes a Program, producing
 * the committed DynInst stream that drives the timing model.
 *
 * This plays the role SimpleScalar's sim-fast plays in the paper's
 * methodology: a fast ISA-level interpreter whose committed stream is
 * consumed by the detailed cycle-level model.
 */

#ifndef CTCPSIM_FUNC_EXECUTOR_HH
#define CTCPSIM_FUNC_EXECUTOR_HH

#include <array>
#include <cstdint>

#include "func/dyninst.hh"
#include "func/memory.hh"
#include "prog/program.hh"

namespace ctcp {

/** ISA-level interpreter over a Program. */
class Executor
{
  public:
    /** Binds to @p program (not owned; must outlive the executor). */
    explicit Executor(const Program &program);

    /**
     * Execute one instruction.
     *
     * @param out filled with the committed instruction record.
     * @return false once Halt has executed (out is still valid for the
     *         Halt itself on the call that executes it).
     */
    bool step(DynInst &out);

    /** True once Halt has been executed. */
    bool halted() const { return halted_; }

    /** Instructions committed so far. */
    InstSeqNum committed() const { return nextSeq_; }

    /** Current architectural PC (word index). */
    Addr pc() const { return pc_; }

    /** Architectural register read (r0 reads as zero). */
    std::int64_t readReg(RegId r) const;

    /** Architectural register write (writes to r0 are discarded). */
    void writeReg(RegId r, std::int64_t value);

    /** Direct access to simulated memory (used by tests/workload init). */
    SparseMemory &memory() { return mem_; }
    const SparseMemory &memory() const { return mem_; }

    /** Reset architectural state and restart at the entry point. */
    void reset();

  private:
    const Program &program_;
    SparseMemory mem_;
    std::array<std::int64_t, numArchRegs> regs_{};
    Addr pc_;
    InstSeqNum nextSeq_ = 0;
    bool halted_ = false;
};

} // namespace ctcp

#endif // CTCPSIM_FUNC_EXECUTOR_HH
