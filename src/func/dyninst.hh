/**
 * @file
 * Committed dynamic-instruction record.
 *
 * The functional simulator emits one DynInst per architecturally
 * executed instruction; the timing model consumes this stream
 * (trace-driven, execute-at-commit). A DynInst carries everything the
 * CTCP pipeline needs: operands, FU class, effective address, and the
 * resolved control-flow outcome used to evaluate the branch predictor.
 */

#ifndef CTCPSIM_FUNC_DYNINST_HH
#define CTCPSIM_FUNC_DYNINST_HH

#include "common/types.hh"
#include "isa/instruction.hh"

namespace ctcp {

/** One committed dynamic instruction. */
struct DynInst
{
    InstSeqNum seq = 0;
    /** Word PC of this instruction. */
    Addr pc = 0;
    Opcode op = Opcode::Nop;

    RegId dst = invalidReg;
    RegId src1 = invalidReg;
    RegId src2 = invalidReg;

    /** Byte effective address (memory ops only). */
    Addr effAddr = 0;

    /** Actual next word PC (fall-through or taken target). */
    Addr nextPc = 0;
    /** Taken target (branches only; == nextPc when taken). */
    Addr targetPc = 0;
    /** Branch outcome (branches only). */
    bool taken = false;

    const OpcodeInfo &info() const { return opcodeInfo(op); }
    FuKind fu() const { return info().fu; }

    bool isBranchOp() const { return ctcp::isBranch(op); }
    bool isCondBranch() const { return isConditionalBranch(op); }
    bool isIndirectOp() const { return isIndirect(op); }
    bool isCallOp() const { return isCall(op); }
    bool isReturnOp() const { return isReturn(op); }
    bool isLoadOp() const { return isLoad(op); }
    bool isStoreOp() const { return isStore(op); }
    bool isMem() const { return isMemOp(op); }

    bool hasDst() const { return info().writesDst && dst != zeroReg; }
    bool hasSrc1() const { return info().readsSrc1 && src1 != invalidReg; }
    bool hasSrc2() const { return info().readsSrc2 && src2 != invalidReg; }
};

} // namespace ctcp

#endif // CTCPSIM_FUNC_DYNINST_HH
