/**
 * @file
 * Synthetic workload registry.
 *
 * Each benchmark is a hand-written kernel in the ctcpsim ISA that
 * mimics the dominant loop structure, dependency mix, branch behaviour
 * and memory-access pattern of the corresponding SPEC CPU2000 integer
 * or MediaBench program (see DESIGN.md for the substitution rationale).
 * All workloads loop over their input for an effectively unbounded
 * iteration count; simulations stop at the configured instruction
 * limit, exactly like the paper's 100M-instruction methodology.
 */

#ifndef CTCPSIM_WORKLOAD_WORKLOAD_HH
#define CTCPSIM_WORKLOAD_WORKLOAD_HH

#include <string>
#include <vector>

#include "prog/program.hh"

namespace ctcp::workloads {

/** Which suite a benchmark belongs to. */
enum class Suite
{
    SpecInt,
    Media,
};

/** Registry entry. */
struct BenchmarkInfo
{
    std::string name;
    Suite suite;
    /** What the kernel models (one line, for docs/tools). */
    std::string description;
};

/** All registered benchmarks. */
const std::vector<BenchmarkInfo> &all();

/** Names in a given suite, in canonical order. */
std::vector<std::string> names(Suite suite);

/**
 * The six SPECint benchmarks the paper selects for in-depth analysis
 * (most sensitive to data forwarding latency).
 */
const std::vector<std::string> &selectedSix();

/** True when @p name is registered. */
bool exists(const std::string &name);

/** Build the named benchmark program. fatal()s on unknown names. */
Program build(const std::string &name);

} // namespace ctcp::workloads

#endif // CTCPSIM_WORKLOAD_WORKLOAD_HH
