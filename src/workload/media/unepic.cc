/**
 * @file
 * unepic analogue: inverse wavelet reconstruction.
 *
 * The decoder upsamples and interpolates coarse coefficients back to
 * full resolution: even outputs copy scaled coefficients, odd outputs
 * average neighbours — an alternating-branch pattern plus short MAC
 * chains, growing extents level by level.
 */

#include "workload/kernels.hh"

namespace ctcp::workloads {

Program
buildUnepic()
{
    using namespace detail;

    constexpr Addr coef_base = 0x10000;
    constexpr Addr out_base = 0x50000;
    constexpr std::int64_t full_len = 2048;

    ProgramBuilder b("unepic");
    b.data(coef_base, randomWords(0xe91c0002, full_len, 512));

    const RegId iter = intReg(1);
    const RegId level = intReg(2);
    const RegId extent = intReg(3);
    const RegId cb = intReg(4);
    const RegId ob = intReg(5);
    const RegId i = intReg(6);
    const RegId c0 = intReg(7);
    const RegId c1 = intReg(8);
    const RegId v = intReg(9);
    const RegId addr = intReg(10);
    const RegId tmp = intReg(11);

    b.movi(iter, outerIterations);
    b.movi(cb, coef_base);
    b.movi(ob, out_base);

    b.label("outer");
    b.movi(level, 0);
    b.movi(extent, 256);

    b.label("levels");
    b.movi(i, 0);
    b.label("upsample");
    // Load neighbouring coarse coefficients.
    b.slli(addr, i, 3);
    b.add(addr, addr, cb);
    b.load(c0, addr, 0);
    b.load(c1, addr, 8);
    // Even sample: pass-through; odd: interpolate (i's parity).
    b.andi(tmp, i, 1);
    b.beq(tmp, zeroReg, "even");
    b.add(v, c0, c1);
    b.sra(v, v, tmp);                 // tmp == 1: average
    b.jump("write");
    b.label("even");
    b.mov(v, c0);
    b.label("write");
    b.slli(addr, i, 4);               // stride-2 output
    b.add(addr, addr, ob);
    b.store(v, addr, 0);
    b.store(v, addr, 8);
    b.addi(i, i, 1);
    b.slt(tmp, i, extent);
    b.bne(tmp, zeroReg, "upsample");

    b.slli(extent, extent, 1);
    b.addi(level, level, 1);
    b.slti(tmp, level, 3);
    b.bne(tmp, zeroReg, "levels");

    b.addi(iter, iter, -1);
    b.bne(iter, zeroReg, "outer");
    b.halt();
    return b.build();
}

} // namespace ctcp::workloads
