/**
 * @file
 * pegwit_dec analogue: modular reduction with table-driven unwhitening.
 *
 * The decoder mixes the same modular arithmetic as the encoder with
 * an S-box-style table lookup per word, trading some complex-unit
 * pressure for scattered loads.
 */

#include "workload/kernels.hh"

namespace ctcp::workloads {

Program
buildPegwitDec()
{
    using namespace detail;

    constexpr Addr ct_base = 0x10000;     // ciphertext words
    constexpr Addr sbox_base = 0x20000;   // 256-entry substitution table
    constexpr Addr out_base = 0x30000;
    constexpr std::int64_t num_words = 1024;
    constexpr std::int64_t prime = 2147483647;

    ProgramBuilder b("pegwit_dec");
    b.data(ct_base, randomWords(0x9e9e0d01, num_words, prime));
    b.data(sbox_base, randomWords(0x9e9e0d02, 256, prime));

    const RegId iter = intReg(1);
    const RegId i = intReg(2);
    const RegId cb = intReg(3);
    const RegId sbx = intReg(4);
    const RegId ob = intReg(5);
    const RegId c = intReg(6);
    const RegId s = intReg(7);
    const RegId acc = intReg(8);
    const RegId p = intReg(9);
    const RegId addr = intReg(10);
    const RegId tmp = intReg(11);

    b.movi(iter, outerIterations);
    b.movi(i, 0);
    b.movi(cb, ct_base);
    b.movi(sbx, sbox_base);
    b.movi(ob, out_base);
    b.movi(p, prime);
    b.movi(acc, 13);

    b.label("loop");
    b.slli(addr, i, 3);
    b.add(addr, addr, cb);
    b.load(c, addr, 0);

    // S-box lookup indexed by the low byte of the accumulator.
    b.andi(tmp, acc, 255);
    b.slli(tmp, tmp, 3);
    b.add(tmp, tmp, sbx);
    b.load(s, tmp, 0);

    // acc = (acc * s + c) mod p  (serial complex-unit chain).
    b.mul(acc, acc, s);
    b.add(acc, acc, c);
    b.rem(acc, acc, p);
    b.bge(acc, zeroReg, "pos");
    b.sub(acc, zeroReg, acc);
    b.label("pos");

    // Unwhiten and emit.
    b.xor_(tmp, c, acc);
    b.slli(addr, i, 3);
    b.add(addr, addr, ob);
    b.store(tmp, addr, 0);

    b.addi(i, i, 1);
    b.andi(i, i, num_words - 1);
    b.addi(iter, iter, -1);
    b.bne(iter, zeroReg, "loop");
    b.halt();
    return b.build();
}

} // namespace ctcp::workloads
