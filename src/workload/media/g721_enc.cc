/**
 * @file
 * g721_enc analogue: G.721 ADPCM encoder predictor update.
 *
 * G.721's kernel updates a 2-pole/6-zero adaptive predictor per
 * sample: a short dot product over delayed signals plus coefficient
 * leakage updates — MAC-style integer arithmetic with one
 * data-dependent sign branch per tap.
 */

#include "workload/kernels.hh"

namespace ctcp::workloads {

Program
buildG721Enc()
{
    using namespace detail;

    constexpr Addr pcm_base = 0x10000;
    constexpr Addr dq_base = 0x20000;     // delayed quantized diffs (6)
    constexpr Addr bcoef_base = 0x20100;  // zero coefficients (6)
    constexpr std::int64_t num_samples = 2048;

    ProgramBuilder b("g721_enc");
    b.data(pcm_base, randomWords(0x97210e01, num_samples, 16384));
    b.data(dq_base, randomWords(0x97210e02, 6, 512));
    b.data(bcoef_base, randomWords(0x97210e03, 6, 256));

    const RegId iter = intReg(1);
    const RegId i = intReg(2);
    const RegId pcm = intReg(3);
    const RegId dqb = intReg(4);
    const RegId bcb = intReg(5);
    const RegId k = intReg(6);
    const RegId sez = intReg(7);      // zero-predictor output
    const RegId dq = intReg(8);
    const RegId bk = intReg(9);
    const RegId sample = intReg(10);
    const RegId diff = intReg(11);
    const RegId addr = intReg(12);
    const RegId tmp = intReg(13);
    const RegId y = intReg(14);       // scale factor (loop-carried)

    b.movi(iter, outerIterations);
    b.movi(i, 0);
    b.movi(pcm, pcm_base);
    b.movi(dqb, dq_base);
    b.movi(bcb, bcoef_base);
    b.movi(y, 544);

    b.label("loop");
    b.slli(addr, i, 3);
    b.add(addr, addr, pcm);
    b.load(sample, addr, 0);

    // sez = sum(bk[k] * dq[k]) >> 8 over 6 taps.
    b.movi(sez, 0);
    b.movi(k, 0);
    b.label("taps");
    b.slli(addr, k, 3);
    b.add(tmp, addr, dqb);
    b.load(dq, tmp, 0);
    b.add(tmp, addr, bcb);
    b.load(bk, tmp, 0);
    b.mul(tmp, bk, dq);
    b.add(sez, sez, tmp);
    b.addi(k, k, 1);
    b.slti(tmp, k, 6);
    b.bne(tmp, zeroReg, "taps");
    b.srli(sez, sez, 8);

    // Quantize diff against the adaptive scale factor y.
    b.sub(diff, sample, sez);
    b.bge(diff, zeroReg, "dpos");
    b.sub(diff, zeroReg, diff);
    b.label("dpos");
    // y adapts toward the magnitude (fast/slow leak).
    b.sub(tmp, diff, y);
    b.sra(tmp, tmp, k);   // k == 6 here: 1/64 leak
    b.add(y, y, tmp);
    b.bge(y, zeroReg, "y_ok");
    b.movi(y, 1);
    b.label("y_ok");

    // Coefficient leakage update per tap (sign-sensitive).
    b.movi(k, 0);
    b.label("leak");
    b.slli(addr, k, 3);
    b.add(tmp, addr, bcb);
    b.load(bk, tmp, 0);
    b.srli(dq, bk, 5);
    b.sub(bk, bk, dq);            // bk -= bk >> 5 (leak)
    b.blt(diff, y, "no_boost");
    b.addi(bk, bk, 8);            // boost on large differences
    b.label("no_boost");
    b.store(bk, tmp, 0);
    b.addi(k, k, 1);
    b.slti(tmp, k, 6);
    b.bne(tmp, zeroReg, "leak");

    // Shift the delay line: dq[i] -> dq[i+1], dq[0] = diff & 511.
    b.movi(k, 4);
    b.label("shift");
    b.slli(addr, k, 3);
    b.add(tmp, addr, dqb);
    b.load(dq, tmp, 0);
    b.store(dq, tmp, 8);
    b.addi(k, k, -1);
    b.bge(k, zeroReg, "shift");
    b.andi(dq, diff, 511);
    b.store(dq, dqb, 0);

    b.addi(i, i, 1);
    b.andi(i, i, num_samples - 1);
    b.addi(iter, iter, -1);
    b.bne(iter, zeroReg, "loop");
    b.halt();
    return b.build();
}

} // namespace ctcp::workloads
