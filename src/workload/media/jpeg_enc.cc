/**
 * @file
 * jpeg_enc analogue: 8x8 integer forward DCT (AAN flavor).
 *
 * cjpeg's hot loop runs a separable butterfly DCT over 8x8 blocks:
 * straight-line add/sub/shift/mult butterflies over rows then columns
 * with no data-dependent control — wide ILP, deep value reuse.
 */

#include "workload/kernels.hh"

namespace ctcp::workloads {

namespace {

/** Emit a 1-D 8-point butterfly over regs v0..v7 (in place). */
void
emitButterfly(ProgramBuilder &b, const RegId v[8], RegId t0, RegId t1,
              RegId c)
{
    // Even part: sums and differences.
    b.add(t0, v[0], v[7]);
    b.sub(t1, v[0], v[7]);
    b.mov(v[0], t0);
    b.mov(v[7], t1);
    b.add(t0, v[1], v[6]);
    b.sub(t1, v[1], v[6]);
    b.mov(v[1], t0);
    b.mov(v[6], t1);
    b.add(t0, v[2], v[5]);
    b.sub(t1, v[2], v[5]);
    b.mov(v[2], t0);
    b.mov(v[5], t1);
    b.add(t0, v[3], v[4]);
    b.sub(t1, v[3], v[4]);
    b.mov(v[3], t0);
    b.mov(v[4], t1);
    // Rotation approximations: multiply by fixed-point constants.
    b.movi(c, 362);                   // ~sqrt(2)/2 in Q9
    b.mul(t0, v[5], c);
    b.srli(t0, t0, 9);
    b.add(v[5], v[6], t0);
    b.mul(t1, v[4], c);
    b.srli(t1, t1, 9);
    b.sub(v[4], v[7], t1);
    b.movi(c, 473);                   // cos(pi/8) in Q9
    b.mul(t0, v[2], c);
    b.srli(t0, t0, 9);
    b.add(v[2], v[2], t0);
    b.mul(t1, v[1], c);
    b.srli(t1, t1, 9);
    b.sub(v[1], v[1], t1);
    b.add(v[0], v[0], v[3]);
    b.sub(v[3], v[0], v[3]);
}

} // namespace

Program
buildJpegEnc()
{
    using namespace detail;

    constexpr Addr img_base = 0x10000;    // 64 blocks of 64 pixels
    constexpr Addr out_base = 0x60000;
    constexpr std::int64_t num_blocks = 64;

    ProgramBuilder b("jpeg_enc");
    b.data(img_base, randomWords(0x63e90e01, num_blocks * 64, 256));

    const RegId iter = intReg(1);
    const RegId blk = intReg(2);
    const RegId base = intReg(3);
    const RegId row = intReg(4);
    const RegId addr = intReg(5);
    const RegId t0 = intReg(6);
    const RegId t1 = intReg(7);
    const RegId c = intReg(8);
    const RegId outb = intReg(9);
    const RegId tmp = intReg(10);
    const RegId v[8] = {intReg(20), intReg(21), intReg(22), intReg(23),
                        intReg(24), intReg(25), intReg(26), intReg(27)};

    b.movi(iter, outerIterations);
    b.movi(blk, 0);
    b.movi(outb, out_base);

    b.label("outer");
    // base = img + blk*64*8
    b.slli(base, blk, 9);
    b.addi(base, base, img_base);

    // Row pass: 8 rows of 8.
    b.movi(row, 0);
    b.label("rows");
    b.slli(addr, row, 6);
    b.add(addr, addr, base);
    for (int x = 0; x < 8; ++x)
        b.load(v[x], addr, x * 8);
    emitButterfly(b, v, t0, t1, c);
    for (int x = 0; x < 8; ++x)
        b.store(v[x], addr, x * 8);
    b.addi(row, row, 1);
    b.slti(tmp, row, 8);
    b.bne(tmp, zeroReg, "rows");

    // Column pass: 8 columns, strided loads.
    b.movi(row, 0);
    b.label("cols");
    b.slli(addr, row, 3);
    b.add(addr, addr, base);
    for (int y = 0; y < 8; ++y)
        b.load(v[y], addr, y * 64);
    emitButterfly(b, v, t0, t1, c);
    for (int y = 0; y < 8; ++y)
        b.store(v[y], addr, y * 64);
    b.addi(row, row, 1);
    b.slti(tmp, row, 8);
    b.bne(tmp, zeroReg, "cols");

    // Write the DC coefficient to the output stream.
    b.load(t0, base, 0);
    b.slli(addr, blk, 3);
    b.add(addr, addr, outb);
    b.store(t0, addr, 0);

    b.addi(blk, blk, 1);
    b.andi(blk, blk, num_blocks - 1);
    b.addi(iter, iter, -1);
    b.bne(iter, zeroReg, "outer");
    b.halt();
    return b.build();
}

} // namespace ctcp::workloads
