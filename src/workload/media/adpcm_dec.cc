/**
 * @file
 * adpcm_dec analogue (MediaBench rawdaudio): IMA ADPCM decoding.
 *
 * The decoder reconstructs samples from 4-bit codes: step-table
 * lookup, a shift/add inverse quantizer, predictor accumulation with
 * clamping — a tight loop-carried dependence through the predictor.
 */

#include "workload/kernels.hh"

namespace ctcp::workloads {

Program
buildAdpcmDec()
{
    using namespace detail;

    constexpr Addr codes_base = 0x10000;
    constexpr Addr step_base = 0x30000;
    constexpr Addr out_base = 0x40000;
    constexpr std::int64_t num_codes = 2048;

    ProgramBuilder b("adpcm_dec");
    b.data(codes_base, randomWords(0xadc30e02, num_codes, 16));
    {
        std::vector<std::int64_t> steps(89);
        double s = 7.0;
        for (auto &v : steps) {
            v = static_cast<std::int64_t>(s);
            s *= 1.1;
        }
        b.data(step_base, steps);
    }

    const RegId iter = intReg(1);
    const RegId i = intReg(2);
    const RegId cb = intReg(3);
    const RegId stb = intReg(4);
    const RegId outb = intReg(5);
    const RegId pred = intReg(6);
    const RegId index = intReg(7);
    const RegId code = intReg(8);
    const RegId step = intReg(9);
    const RegId delta = intReg(10);
    const RegId addr = intReg(11);
    const RegId tmp = intReg(12);

    b.movi(iter, outerIterations);
    b.movi(i, 0);
    b.movi(cb, codes_base);
    b.movi(stb, step_base);
    b.movi(outb, out_base);
    b.movi(pred, 0);
    b.movi(index, 0);

    b.label("loop");
    b.slli(addr, i, 3);
    b.add(addr, addr, cb);
    b.load(code, addr, 0);
    b.slli(addr, index, 3);
    b.add(addr, addr, stb);
    b.load(step, addr, 0);

    // Inverse quantizer: delta = step/8 + step/4*b0 + step/2*b1 + step*b2.
    b.srli(delta, step, 3);
    b.andi(tmp, code, 1);
    b.beq(tmp, zeroReg, "no_b0");
    b.srli(tmp, step, 2);
    b.add(delta, delta, tmp);
    b.label("no_b0");
    b.andi(tmp, code, 2);
    b.beq(tmp, zeroReg, "no_b1");
    b.srli(tmp, step, 1);
    b.add(delta, delta, tmp);
    b.label("no_b1");
    b.andi(tmp, code, 4);
    b.beq(tmp, zeroReg, "no_b2");
    b.add(delta, delta, step);
    b.label("no_b2");
    // Sign bit.
    b.andi(tmp, code, 8);
    b.beq(tmp, zeroReg, "pos");
    b.sub(pred, pred, delta);
    b.jump("clamp");
    b.label("pos");
    b.add(pred, pred, delta);
    b.label("clamp");
    b.movi(tmp, 32767);
    b.blt(pred, tmp, "hi_ok");
    b.mov(pred, tmp);
    b.label("hi_ok");
    b.movi(tmp, -32768);
    b.bge(pred, tmp, "lo_ok");
    b.mov(pred, tmp);
    b.label("lo_ok");

    // Index update.
    b.andi(tmp, code, 7);
    b.addi(tmp, tmp, -3);
    b.add(index, index, tmp);
    b.bge(index, zeroReg, "ilo_ok");
    b.movi(index, 0);
    b.label("ilo_ok");
    b.slti(tmp, index, 88);
    b.bne(tmp, zeroReg, "ihi_ok");
    b.movi(index, 88);
    b.label("ihi_ok");

    b.slli(addr, i, 3);
    b.add(addr, addr, outb);
    b.store(pred, addr, 0);

    b.addi(i, i, 1);
    b.andi(i, i, num_codes - 1);
    b.addi(iter, iter, -1);
    b.bne(iter, zeroReg, "loop");
    b.halt();
    return b.build();
}

} // namespace ctcp::workloads
