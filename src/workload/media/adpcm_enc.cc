/**
 * @file
 * adpcm_enc analogue (MediaBench rawcaudio): IMA ADPCM encoding.
 *
 * Per sample: compute the prediction difference, quantize it into a
 * 4-bit code through a chain of compare/subtract steps, update the
 * predictor and step index with clamping — serial integer work with
 * several data-dependent (but skewed) branches per sample.
 */

#include "workload/kernels.hh"

namespace ctcp::workloads {

Program
buildAdpcmEnc()
{
    using namespace detail;

    constexpr Addr pcm_base = 0x10000;     // input samples
    constexpr Addr step_base = 0x30000;    // 89-entry step table
    constexpr Addr out_base = 0x40000;     // encoded nibbles
    constexpr std::int64_t num_samples = 2048;

    ProgramBuilder b("adpcm_enc");
    b.data(pcm_base, randomWords(0xadc30e01, num_samples, 65536));
    {
        // The real IMA step table grows ~1.1x per entry.
        std::vector<std::int64_t> steps(89);
        double s = 7.0;
        for (auto &v : steps) {
            v = static_cast<std::int64_t>(s);
            s *= 1.1;
        }
        b.data(step_base, steps);
    }

    const RegId iter = intReg(1);
    const RegId i = intReg(2);
    const RegId pcm = intReg(3);
    const RegId stb = intReg(4);
    const RegId outb = intReg(5);
    const RegId pred = intReg(6);     // predictor (loop-carried)
    const RegId index = intReg(7);    // step index (loop-carried)
    const RegId sample = intReg(8);
    const RegId diff = intReg(9);
    const RegId step = intReg(10);
    const RegId code = intReg(11);
    const RegId addr = intReg(12);
    const RegId tmp = intReg(13);
    const RegId sign = intReg(14);

    b.movi(iter, outerIterations);
    b.movi(i, 0);
    b.movi(pcm, pcm_base);
    b.movi(stb, step_base);
    b.movi(outb, out_base);
    b.movi(pred, 0);
    b.movi(index, 0);

    b.label("loop");
    b.slli(addr, i, 3);
    b.add(addr, addr, pcm);
    b.load(sample, addr, 0);
    b.addi(sample, sample, -32768);
    b.sub(diff, sample, pred);
    // sign/magnitude split.
    b.movi(sign, 0);
    b.bge(diff, zeroReg, "positive");
    b.sub(diff, zeroReg, diff);
    b.movi(sign, 8);
    b.label("positive");
    // step = table[index]
    b.slli(addr, index, 3);
    b.add(addr, addr, stb);
    b.load(step, addr, 0);
    // Quantize: code bits from three compare/subtract stages.
    b.movi(code, 0);
    b.blt(diff, step, "q1");
    b.ori(code, code, 4);
    b.sub(diff, diff, step);
    b.label("q1");
    b.srli(step, step, 1);
    b.blt(diff, step, "q2");
    b.ori(code, code, 2);
    b.sub(diff, diff, step);
    b.label("q2");
    b.srli(step, step, 1);
    b.blt(diff, step, "q3");
    b.ori(code, code, 1);
    b.label("q3");
    b.or_(code, code, sign);
    // Predictor update: pred += stepdelta (approximate inverse).
    b.slli(tmp, code, 2);
    b.mul(tmp, tmp, step);
    b.srli(tmp, tmp, 2);
    b.beq(sign, zeroReg, "addpred");
    b.sub(pred, pred, tmp);
    b.jump("clamp");
    b.label("addpred");
    b.add(pred, pred, tmp);
    b.label("clamp");
    // Clamp predictor to 16-bit range.
    b.movi(tmp, 32767);
    b.blt(pred, tmp, "no_hi");
    b.mov(pred, tmp);
    b.label("no_hi");
    b.movi(tmp, -32768);
    b.bge(pred, tmp, "no_lo");
    b.mov(pred, tmp);
    b.label("no_lo");
    // Step-index update with clamping (indexTable flavor).
    b.andi(tmp, code, 7);
    b.addi(tmp, tmp, -3);
    b.add(index, index, tmp);
    b.bge(index, zeroReg, "idx_lo_ok");
    b.movi(index, 0);
    b.label("idx_lo_ok");
    b.slti(tmp, index, 88);
    b.bne(tmp, zeroReg, "idx_hi_ok");
    b.movi(index, 88);
    b.label("idx_hi_ok");
    // Store the code nibble.
    b.slli(addr, i, 3);
    b.add(addr, addr, outb);
    b.store(code, addr, 0);

    b.addi(i, i, 1);
    b.andi(i, i, num_samples - 1);
    b.addi(iter, iter, -1);
    b.bne(iter, zeroReg, "loop");
    b.halt();
    return b.build();
}

} // namespace ctcp::workloads
