/**
 * @file
 * mpeg2_enc analogue: block-SAD motion estimation.
 *
 * The encoder's dominant kernel computes sums of absolute differences
 * between a current 16x16 block and candidate positions in the
 * reference frame, keeping the best: dense loads, branch-free abs
 * (sign-mask trick), an early-exit compare per row, and a running
 * minimum across candidates.
 */

#include "workload/kernels.hh"

namespace ctcp::workloads {

Program
buildMpeg2Enc()
{
    using namespace detail;

    constexpr Addr cur_base = 0x10000;   // current block 16x16
    constexpr Addr ref_base = 0x20000;   // reference window 64x64
    constexpr std::int64_t ref_dim = 64;

    ProgramBuilder b("mpeg2_enc");
    b.data(cur_base, randomWords(0x39e20e01, 16 * 16, 256));
    b.data(ref_base, randomWords(0x39e20e02, ref_dim * ref_dim, 256));

    const RegId iter = intReg(1);
    const RegId cand = intReg(2);     // candidate index (0..255 -> 16x16)
    const RegId cb = intReg(3);
    const RegId rb = intReg(4);
    const RegId row = intReg(5);
    const RegId col = intReg(6);
    const RegId sad = intReg(7);
    const RegId best = intReg(8);
    const RegId caddr = intReg(9);
    const RegId raddr = intReg(10);
    const RegId d = intReg(13);
    const RegId tmp = intReg(14);
    const RegId c63 = intReg(15);
    const RegId cx = intReg(16);
    const RegId cy = intReg(17);

    b.movi(c63, 63);
    b.movi(iter, outerIterations);
    b.movi(cb, cur_base);
    b.movi(rb, ref_base);
    b.movi(best, 1 << 30);
    b.movi(cand, 0);

    b.label("outer");
    // Candidate offset (cx, cy) in the reference window.
    b.andi(cx, cand, 15);
    b.srli(cy, cand, 4);
    b.andi(cy, cy, 15);

    b.movi(sad, 0);
    b.movi(row, 0);
    b.label("rows");
    b.movi(col, 0);
    // caddr = cur + row*16*8; raddr = ref + ((row+cy)*64 + cx)*8
    b.slli(caddr, row, 7);
    b.add(caddr, caddr, cb);
    b.add(raddr, row, cy);
    b.slli(raddr, raddr, 6);
    b.add(raddr, raddr, cx);
    b.slli(raddr, raddr, 3);
    b.add(raddr, raddr, rb);
    b.label("cols");
    // Four columns per pass as interleaved branch-free strands with
    // separate partial SADs (how mpeg2enc's dist1() unrolls).
    b.beginStrands(4);
    for (unsigned st = 0; st < 4; ++st) {
        const RegId cvx = intReg(18 + st);
        const RegId rvx = intReg(22 + st);
        const RegId dx = intReg(26 + st);
        b.strand(st);
        b.load(cvx, caddr, static_cast<std::int64_t>(st) * 8);
        b.load(rvx, raddr, static_cast<std::int64_t>(st) * 8);
        b.sub(dx, cvx, rvx);
        b.sra(rvx, dx, c63);
        b.xor_(dx, dx, rvx);
        b.sub(dx, dx, rvx);
    }
    b.weave();
    b.add(d, intReg(26), intReg(27));
    b.add(tmp, intReg(28), intReg(29));
    b.add(d, d, tmp);
    b.add(sad, sad, d);
    b.addi(caddr, caddr, 32);
    b.addi(raddr, raddr, 32);
    b.addi(col, col, 4);
    b.slti(tmp, col, 16);
    b.bne(tmp, zeroReg, "cols");
    // Early exit when this candidate already exceeds the best.
    b.blt(sad, best, "keep_going");
    b.jump("next_cand");
    b.label("keep_going");
    b.addi(row, row, 1);
    b.slti(tmp, row, 16);
    b.bne(tmp, zeroReg, "rows");
    // Completed all rows with sad < best: new winner.
    b.mov(best, sad);
    b.label("next_cand");

    b.addi(cand, cand, 1);
    b.andi(cand, cand, 255);
    b.bne(cand, zeroReg, "no_reset");
    b.movi(best, 1 << 30);            // new search: reset the minimum
    b.label("no_reset");
    b.addi(iter, iter, -1);
    b.bne(iter, zeroReg, "outer");
    b.halt();
    return b.build();
}

} // namespace ctcp::workloads
