/**
 * @file
 * epic analogue: wavelet (QMF) analysis filtering.
 *
 * EPIC's encoder convolves the image with short symmetric filters and
 * downsamples, level by level. The kernel runs a 9-tap filter over a
 * 1-D signal with stride-2 output — regular MAC loops over shrinking
 * extents, exactly the pyramid shape of the original.
 */

#include "workload/kernels.hh"

namespace ctcp::workloads {

Program
buildEpic()
{
    using namespace detail;

    constexpr Addr sig_base = 0x10000;    // 4096-sample signal
    constexpr Addr filt_base = 0x40000;   // 9 filter taps
    constexpr Addr out_base = 0x50000;
    constexpr std::int64_t signal_len = 4096;

    ProgramBuilder b("epic");
    b.data(sig_base, randomWords(0xe91c0001, signal_len, 256));
    b.data(filt_base, {3, -12, 19, 61, 87, 61, 19, -12, 3});

    const RegId iter = intReg(1);
    const RegId level = intReg(2);    // pyramid level (extent >>= 1)
    const RegId extent = intReg(3);
    const RegId sb = intReg(4);
    const RegId fb = intReg(5);
    const RegId ob = intReg(6);
    const RegId i = intReg(7);
    const RegId k = intReg(8);
    const RegId acc = intReg(9);
    const RegId s = intReg(10);
    const RegId f = intReg(11);
    const RegId addr = intReg(12);
    const RegId tmp = intReg(13);
    const RegId c7 = intReg(14);      // descale shift amount

    b.movi(c7, 7);
    b.movi(iter, outerIterations);
    b.movi(sb, sig_base);
    b.movi(fb, filt_base);
    b.movi(ob, out_base);

    b.label("outer");
    b.movi(level, 0);
    b.movi(extent, signal_len / 2);

    b.label("levels");
    b.movi(i, 0);
    const RegId acc2 = intReg(15);
    const RegId addr2 = intReg(16);
    const RegId f2 = intReg(17);
    const RegId s2 = intReg(18);
    const RegId t1 = intReg(19);
    const RegId t2 = intReg(20);

    b.label("convolve");
    // Two output points per pass with woven tap loops:
    // acc  = sum_k f[k] * sig[2*i + k]
    // acc2 = sum_k f[k] * sig[2*(i+1) + k]
    b.movi(acc, 0);
    b.movi(acc2, 0);
    b.movi(k, 0);
    b.slli(addr, i, 4);               // 2*i words -> *16 bytes
    b.add(addr, addr, sb);
    b.addi(addr2, addr, 16);
    b.label("taps");
    b.beginStrands(2);
    b.strand(0);
    b.slli(t1, k, 3);
    b.add(f, t1, fb);
    b.load(f, f, 0);
    b.add(t1, t1, addr);
    b.load(s, t1, 0);
    b.mul(t1, f, s);
    b.add(acc, acc, t1);
    b.strand(1);
    b.slli(t2, k, 3);
    b.add(f2, t2, fb);
    b.load(f2, f2, 0);
    b.add(t2, t2, addr2);
    b.load(s2, t2, 0);
    b.mul(t2, f2, s2);
    b.add(acc2, acc2, t2);
    b.weave();
    b.addi(k, k, 1);
    b.slti(tmp, k, 9);
    b.bne(tmp, zeroReg, "taps");
    // Descale and write both coarse coefficients back for level reuse.
    b.sra(acc, acc, c7);
    b.sra(acc2, acc2, c7);
    b.slli(tmp, i, 3);
    b.add(tmp, tmp, sb);
    b.store(acc, tmp, 0);
    b.store(acc2, tmp, 8);
    b.slli(tmp, i, 3);
    b.add(tmp, tmp, ob);
    b.store(acc, tmp, 0);
    b.store(acc2, tmp, 8);
    b.addi(i, i, 2);
    b.slt(tmp, i, extent);
    b.bne(tmp, zeroReg, "convolve");

    b.srli(extent, extent, 1);
    b.addi(level, level, 1);
    b.slti(tmp, level, 4);
    b.bne(tmp, zeroReg, "levels");

    b.addi(iter, iter, -1);
    b.bne(iter, zeroReg, "outer");
    b.halt();
    return b.build();
}

} // namespace ctcp::workloads
