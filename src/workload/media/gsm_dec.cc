/**
 * @file
 * gsm_dec analogue: GSM 06.10 short-term synthesis filter.
 *
 * The decoder runs a lattice (reflection-coefficient) filter per
 * sample: eight serially dependent multiply/add/shift stages whose
 * state words carry across samples — long serial chains, few branches.
 */

#include "workload/kernels.hh"

namespace ctcp::workloads {

Program
buildGsmDec()
{
    using namespace detail;

    constexpr Addr res_base = 0x10000;    // residual input samples
    constexpr Addr rc_base = 0x20000;     // 8 reflection coefficients
    constexpr Addr v_base = 0x20100;      // 8 lattice state words
    constexpr Addr out_base = 0x30000;
    constexpr std::int64_t num_samples = 2048;

    ProgramBuilder b("gsm_dec");
    b.data(res_base, randomWords(0x95600d01, num_samples, 4096));
    b.data(rc_base, randomWords(0x95600d02, 8, 16384));

    const RegId iter = intReg(1);
    const RegId i = intReg(2);
    const RegId rb = intReg(3);
    const RegId rcb = intReg(4);
    const RegId vb = intReg(5);
    const RegId outb = intReg(6);
    const RegId k = intReg(7);
    const RegId sri = intReg(8);      // through-signal
    const RegId rc = intReg(9);
    const RegId v = intReg(10);
    const RegId addr = intReg(11);
    const RegId tmp = intReg(12);
    const RegId tmp2 = intReg(13);
    const RegId c15 = intReg(14);     // Q15 shift amount

    b.movi(c15, 15);
    b.movi(iter, outerIterations);
    b.movi(i, 0);
    b.movi(rb, res_base);
    b.movi(rcb, rc_base);
    b.movi(vb, v_base);
    b.movi(outb, out_base);

    b.label("loop");
    b.slli(addr, i, 3);
    b.add(addr, addr, rb);
    b.load(sri, addr, 0);

    // Eight lattice stages, high index to low.
    b.movi(k, 7);
    b.label("stage");
    b.slli(addr, k, 3);
    b.add(tmp, addr, rcb);
    b.load(rc, tmp, 0);
    b.add(tmp2, addr, vb);
    b.load(v, tmp2, 0);
    // sri = sri - (rc * v >> 15); v' = v + (rc * sri >> 15)
    b.mul(tmp, rc, v);
    b.sra(tmp, tmp, c15);
    b.sub(sri, sri, tmp);
    b.mul(tmp, rc, sri);
    b.sra(tmp, tmp, c15);
    b.add(v, v, tmp);
    b.store(v, tmp2, 8);              // v[k+1] = v' (delay line shift)
    b.addi(k, k, -1);
    b.bge(k, zeroReg, "stage");
    b.store(sri, vb, 0);              // v[0] = output sample

    b.slli(addr, i, 3);
    b.add(addr, addr, outb);
    b.store(sri, addr, 0);

    b.addi(i, i, 1);
    b.andi(i, i, num_samples - 1);
    b.addi(iter, iter, -1);
    b.bne(iter, zeroReg, "loop");
    b.halt();
    return b.build();
}

} // namespace ctcp::workloads
