/**
 * @file
 * jpeg_dec analogue: 8x8 inverse DCT with dequantization and final
 * saturation to pixel range.
 *
 * djpeg pairs the butterfly arithmetic of the encoder with a
 * dequantization multiply per coefficient and a clamp per output
 * pixel, adding a (predictable) pair of compare branches per sample.
 * Each output pixel here is a weighted sum of its row's dequantized
 * coefficients — the same load/multiply/accumulate shape as the
 * row-pass of the real IDCT.
 */

#include "workload/kernels.hh"

namespace ctcp::workloads {

Program
buildJpegDec()
{
    using namespace detail;

    constexpr Addr coef_base = 0x10000;   // 64 blocks of coefficients
    constexpr Addr quant_base = 0x50000;  // 64-entry quant table
    constexpr Addr pix_base = 0x60000;
    constexpr std::int64_t num_blocks = 64;

    ProgramBuilder b("jpeg_dec");
    b.data(coef_base, randomWords(0x63e90d01, num_blocks * 64, 2048));
    b.data(quant_base, randomWords(0x63e90d02, 64, 31));

    const RegId iter = intReg(1);
    const RegId blk = intReg(2);
    const RegId base = intReg(3);
    const RegId qb = intReg(4);
    const RegId i = intReg(5);       // pixel index within block (0..63)
    const RegId addr = intReg(6);
    const RegId qaddr = intReg(7);
    const RegId coef = intReg(8);
    const RegId q = intReg(9);
    const RegId acc = intReg(10);
    const RegId tmp = intReg(11);
    const RegId pb = intReg(12);
    const RegId paddr = intReg(13);

    b.movi(iter, outerIterations);
    b.movi(blk, 0);
    b.movi(qb, quant_base);
    b.movi(pb, pix_base);

    b.label("outer");
    b.slli(base, blk, 9);                 // 64 words x 8 bytes per block
    b.addi(base, base, coef_base);

    b.movi(i, 0);
    b.label("pixels");
    b.movi(acc, 0);
    // Row start address: (i & ~7) words into the block.
    b.andi(addr, i, ~7ll);
    b.slli(addr, addr, 3);
    b.add(addr, addr, base);
    b.andi(qaddr, i, ~7ll);
    b.slli(qaddr, qaddr, 3);
    b.add(qaddr, qaddr, qb);
    // Unrolled 8-tap weighted sum with two parallel accumulators
    // (dequantize then accumulate; merged at the end).
    const RegId acc2 = intReg(14);
    const RegId coef2 = intReg(15);
    const RegId q2 = intReg(16);
    const RegId tmp2 = intReg(17);
    b.movi(acc2, 0);
    for (int x = 0; x < 8; x += 2) {
        b.load(coef, addr, x * 8);
        b.load(coef2, addr, (x + 1) * 8);
        b.load(q, qaddr, x * 8);
        b.load(q2, qaddr, (x + 1) * 8);
        b.addi(q, q, 1);                  // quant factors are 1..31
        b.addi(q2, q2, 1);
        b.mul(tmp, coef, q);
        b.mul(tmp2, coef2, q2);
        b.srli(tmp2, tmp2, 1 + ((x + 1) & 3));
        b.add(acc, acc, tmp);
        b.add(acc2, acc2, tmp2);
    }
    b.add(acc, acc, acc2);
    // Descale and saturate to [0, 255].
    b.srli(acc, acc, 6);
    b.andi(acc, acc, 1023);
    b.slti(tmp, acc, 256);
    b.bne(tmp, zeroReg, "no_sat");
    b.movi(acc, 255);
    b.label("no_sat");
    // Store the pixel.
    b.slli(paddr, blk, 9);
    b.add(paddr, paddr, pb);
    b.slli(tmp, i, 3);
    b.add(paddr, paddr, tmp);
    b.store(acc, paddr, 0);

    b.addi(i, i, 1);
    b.slti(tmp, i, 64);
    b.bne(tmp, zeroReg, "pixels");

    b.addi(blk, blk, 1);
    b.andi(blk, blk, num_blocks - 1);
    b.addi(iter, iter, -1);
    b.bne(iter, zeroReg, "outer");
    b.halt();
    return b.build();
}

} // namespace ctcp::workloads
