/**
 * @file
 * mpeg2_dec analogue: motion compensation with saturation.
 *
 * The decoder forms predictions by averaging two reference blocks
 * (half-pel interpolation), adds the residual, and saturates to pixel
 * range — load-heavy with two predictable clamp branches per pixel.
 */

#include "workload/kernels.hh"

namespace ctcp::workloads {

Program
buildMpeg2Dec()
{
    using namespace detail;

    constexpr Addr ref_base = 0x10000;    // reference frame 64x64
    constexpr Addr res_base = 0x30000;    // residuals
    constexpr Addr out_base = 0x50000;
    constexpr std::int64_t ref_dim = 64;

    ProgramBuilder b("mpeg2_dec");
    b.data(ref_base, randomWords(0x39e20d01, ref_dim * ref_dim, 256));
    b.data(res_base, randomWords(0x39e20d02, ref_dim * ref_dim, 64));

    const RegId iter = intReg(1);
    const RegId blkv = intReg(2);     // motion vector selector
    const RegId rb = intReg(3);
    const RegId sb = intReg(4);
    const RegId ob = intReg(5);
    const RegId i = intReg(6);
    const RegId p0 = intReg(7);
    const RegId p1 = intReg(8);
    const RegId res = intReg(9);
    const RegId pix = intReg(10);
    const RegId tmp = intReg(12);
    const RegId off = intReg(13);
    const RegId c63x = intReg(22);    // shift amount for sign masks

    b.movi(c63x, 63);
    b.movi(iter, outerIterations);
    b.movi(blkv, 0);
    b.movi(rb, ref_base);
    b.movi(sb, res_base);
    b.movi(ob, out_base);

    b.label("outer");
    // Motion offset derived from the selector.
    b.andi(off, blkv, 63);

    const RegId p2 = intReg(14);
    const RegId p3 = intReg(15);
    const RegId pix2 = intReg(16);
    const RegId res2 = intReg(17);
    const RegId a1 = intReg(18);
    const RegId a2 = intReg(19);
    const RegId t1 = intReg(20);
    const RegId t2 = intReg(21);

    b.movi(i, 0);
    b.label("pixels");
    // Two pixels per pass, woven; the second pixel saturates with a
    // branch-free clamp while the first keeps the decoder's branchy
    // clamp flavour.
    b.beginStrands(2);
    b.strand(0);
    b.add(a1, i, off);
    b.andi(a1, a1, ref_dim * ref_dim - 1);
    b.slli(a1, a1, 3);
    b.add(a1, a1, rb);
    b.load(p0, a1, 0);
    b.load(p1, a1, 8);
    b.add(pix, p0, p1);
    b.addi(pix, pix, 1);
    b.srli(pix, pix, 1);
    b.slli(a1, i, 3);
    b.add(a1, a1, sb);
    b.load(res, a1, 0);
    b.addi(res, res, -32);
    b.add(pix, pix, res);
    b.strand(1);
    b.addi(a2, i, 1);
    b.add(a2, a2, off);
    b.andi(a2, a2, ref_dim * ref_dim - 1);
    b.slli(a2, a2, 3);
    b.add(a2, a2, rb);
    b.load(p2, a2, 0);
    b.load(p3, a2, 8);
    b.add(pix2, p2, p3);
    b.addi(pix2, pix2, 1);
    b.srli(pix2, pix2, 1);
    b.addi(a2, i, 1);
    b.slli(a2, a2, 3);
    b.add(a2, a2, sb);
    b.load(res2, a2, 0);
    b.addi(res2, res2, -32);
    b.add(pix2, pix2, res2);
    // Branch-free clamp to [0, 255]: max(0, .) then min(255, .).
    b.sra(t2, pix2, c63x);
    b.xor_(t2, t2, pix2);
    b.sub(pix2, t2, zeroReg);
    b.slti(t2, pix2, 256);
    b.addi(t2, t2, -1);               // 0 if <256, -1 otherwise
    b.or_(pix2, pix2, t2);
    b.andi(pix2, pix2, 255);
    b.weave();
    // Branchy clamp for pixel 0.
    b.bge(pix, zeroReg, "lo_ok");
    b.movi(pix, 0);
    b.label("lo_ok");
    b.slti(tmp, pix, 256);
    b.bne(tmp, zeroReg, "hi_ok");
    b.movi(pix, 255);
    b.label("hi_ok");
    // Store both pixels.
    b.slli(t1, i, 3);
    b.add(t1, t1, ob);
    b.store(pix, t1, 0);
    b.store(pix2, t1, 8);

    b.addi(i, i, 2);
    b.andi(i, i, 255);                // 256-pixel macroblock
    b.bne(i, zeroReg, "pixels");

    b.addi(blkv, blkv, 1);
    b.addi(iter, iter, -1);
    b.bne(iter, zeroReg, "outer");
    b.halt();
    return b.build();
}

} // namespace ctcp::workloads
