/**
 * @file
 * g721_dec analogue: G.721 inverse adaptive quantizer.
 *
 * Reconstructs differences from codes using a log-domain table, scales
 * by the adaptive factor, and accumulates the signal estimate — serial
 * integer dependence through the reconstruction state.
 */

#include "workload/kernels.hh"

namespace ctcp::workloads {

Program
buildG721Dec()
{
    using namespace detail;

    constexpr Addr codes_base = 0x10000;
    constexpr Addr dqln_base = 0x20000;   // 16-entry log table
    constexpr Addr out_base = 0x30000;
    constexpr std::int64_t num_codes = 2048;

    ProgramBuilder b("g721_dec");
    b.data(codes_base, randomWords(0x97210d01, num_codes, 16));
    b.data(dqln_base, {-2048, 4, 135, 213, 273, 323, 373, 425,
                       425, 373, 323, 273, 213, 135, 4, -2048});

    const RegId iter = intReg(1);
    const RegId i = intReg(2);
    const RegId cb = intReg(3);
    const RegId tb = intReg(4);
    const RegId outb = intReg(5);
    const RegId code = intReg(6);
    const RegId dql = intReg(7);
    const RegId dq = intReg(8);
    const RegId se = intReg(9);       // signal estimate (loop-carried)
    const RegId y = intReg(10);       // scale factor
    const RegId addr = intReg(11);
    const RegId tmp = intReg(12);
    const RegId shift = intReg(13);

    b.movi(iter, outerIterations);
    b.movi(i, 0);
    b.movi(cb, codes_base);
    b.movi(tb, dqln_base);
    b.movi(outb, out_base);
    b.movi(se, 0);
    b.movi(y, 544);

    b.label("loop");
    b.slli(addr, i, 3);
    b.add(addr, addr, cb);
    b.load(code, addr, 0);
    b.slli(addr, code, 3);
    b.add(addr, addr, tb);
    b.load(dql, addr, 0);

    // dq = antilog((dql + y) >> 2), approximated by a variable shift.
    b.add(tmp, dql, y);
    b.bge(tmp, zeroReg, "mag_ok");
    b.movi(tmp, 0);
    b.label("mag_ok");
    b.srli(shift, tmp, 7);
    b.andi(shift, shift, 15);
    b.andi(dq, tmp, 127);
    b.ori(dq, dq, 128);
    b.sll(dq, dq, shift);
    b.srli(dq, dq, 7);

    // Sign from the code's top bit.
    b.andi(tmp, code, 8);
    b.beq(tmp, zeroReg, "plus");
    b.sub(se, se, dq);
    b.jump("sat");
    b.label("plus");
    b.add(se, se, dq);
    b.label("sat");
    b.movi(tmp, 32767);
    b.blt(se, tmp, "hi_ok");
    b.mov(se, tmp);
    b.label("hi_ok");
    b.movi(tmp, -32768);
    b.bge(se, tmp, "lo_ok");
    b.mov(se, tmp);
    b.label("lo_ok");

    // Scale-factor adaptation.
    b.srli(tmp, y, 5);
    b.sub(y, y, tmp);
    b.add(y, y, dql);
    b.bge(y, zeroReg, "y_ok");
    b.movi(y, 1);
    b.label("y_ok");

    b.slli(addr, i, 3);
    b.add(addr, addr, outb);
    b.store(se, addr, 0);

    b.addi(i, i, 1);
    b.andi(i, i, num_codes - 1);
    b.addi(iter, iter, -1);
    b.bne(iter, zeroReg, "loop");
    b.halt();
    return b.build();
}

} // namespace ctcp::workloads
