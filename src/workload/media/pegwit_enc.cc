/**
 * @file
 * pegwit_enc analogue: elliptic-curve-style modular arithmetic.
 *
 * pegwit's cost is dominated by GF arithmetic: modular multiplication
 * and reduction chains with complex-integer (mul/rem) operations and
 * very long serial dependences through the accumulator — the FU-class
 * mix that stresses the single complex unit per cluster.
 */

#include "workload/kernels.hh"

namespace ctcp::workloads {

Program
buildPegwitEnc()
{
    using namespace detail;

    constexpr Addr msg_base = 0x10000;    // message words
    constexpr Addr key_base = 0x20000;    // key schedule
    constexpr Addr out_base = 0x30000;
    constexpr std::int64_t num_words = 1024;
    constexpr std::int64_t prime = 2147483647;   // 2^31 - 1

    ProgramBuilder b("pegwit_enc");
    b.data(msg_base, randomWords(0x9e9e0e01, num_words, prime));
    b.data(key_base, randomWords(0x9e9e0e02, 64, prime));

    const RegId iter = intReg(1);
    const RegId i = intReg(2);
    const RegId mb = intReg(3);
    const RegId kb = intReg(4);
    const RegId ob = intReg(5);
    const RegId m = intReg(6);
    const RegId k = intReg(7);
    const RegId acc = intReg(8);      // running point accumulator
    const RegId p = intReg(9);        // modulus
    const RegId addr = intReg(10);
    const RegId tmp = intReg(11);
    const RegId round = intReg(12);

    b.movi(iter, outerIterations);
    b.movi(i, 0);
    b.movi(mb, msg_base);
    b.movi(kb, key_base);
    b.movi(ob, out_base);
    b.movi(p, prime);
    b.movi(acc, 7);

    b.label("loop");
    b.slli(addr, i, 3);
    b.add(addr, addr, mb);
    b.load(m, addr, 0);
    b.andi(tmp, i, 63);
    b.slli(tmp, tmp, 3);
    b.add(tmp, tmp, kb);
    b.load(k, tmp, 0);

    // Three square-and-multiply rounds mod p (serial mul/rem chain).
    b.movi(round, 0);
    b.label("rounds");
    b.mul(acc, acc, acc);
    b.rem(acc, acc, p);
    b.andi(tmp, m, 1);
    b.beq(tmp, zeroReg, "no_mult");
    b.mul(acc, acc, k);
    b.rem(acc, acc, p);
    b.label("no_mult");
    b.srli(m, m, 1);
    b.addi(round, round, 1);
    b.slti(tmp, round, 3);
    b.bne(tmp, zeroReg, "rounds");

    // Whiten with the message word and emit.
    b.xor_(tmp, acc, m);
    b.slli(addr, i, 3);
    b.add(addr, addr, ob);
    b.store(tmp, addr, 0);

    b.addi(i, i, 1);
    b.andi(i, i, num_words - 1);
    b.addi(iter, iter, -1);
    b.bne(iter, zeroReg, "loop");
    b.halt();
    return b.build();
}

} // namespace ctcp::workloads
