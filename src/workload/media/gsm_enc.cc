/**
 * @file
 * gsm_enc analogue: GSM 06.10 long-term-prediction correlation.
 *
 * The encoder's dominant kernel cross-correlates the current
 * subsegment against a 3-sample-stepped history window to find the
 * LTP lag: dense multiply-accumulate inner loops with a running
 * maximum compare — regular, highly predictable, MAC-bound.
 */

#include "workload/kernels.hh"

namespace ctcp::workloads {

Program
buildGsmEnc()
{
    using namespace detail;

    constexpr Addr hist_base = 0x10000;   // 256-sample history
    constexpr Addr seg_base = 0x20000;    // 40-sample subsegment

    ProgramBuilder b("gsm_enc");
    b.data(hist_base, randomWords(0x95600e01, 256, 8192));
    b.data(seg_base, randomWords(0x95600e02, 40, 8192));

    const RegId iter = intReg(1);
    const RegId lag = intReg(2);
    const RegId hb = intReg(3);
    const RegId sb = intReg(4);
    const RegId k = intReg(5);
    const RegId acc = intReg(6);
    const RegId h = intReg(7);
    const RegId s = intReg(8);
    const RegId best = intReg(9);
    const RegId bestlag = intReg(10);
    const RegId addr = intReg(11);
    const RegId tmp = intReg(12);
    const RegId haddr = intReg(13);

    b.movi(iter, outerIterations);
    b.movi(hb, hist_base);
    b.movi(sb, seg_base);

    b.label("outer");
    b.movi(best, -1);
    b.movi(bestlag, 0);
    b.movi(lag, 40);
    const RegId acc2 = intReg(14);
    const RegId haddr2 = intReg(15);
    const RegId s2 = intReg(16);
    const RegId h2 = intReg(17);
    const RegId a1 = intReg(18);
    const RegId a2 = intReg(19);
    const RegId t1 = intReg(20);
    const RegId t2 = intReg(21);

    b.label("lags");
    // Correlate 40 samples at two adjacent lags, woven (the real
    // encoder's lag loop is software-pipelined the same way).
    b.movi(acc, 0);
    b.movi(acc2, 0);
    b.movi(k, 0);
    b.sub(haddr, zeroReg, lag);
    b.slli(haddr, haddr, 3);
    b.addi(haddr, haddr, 256 * 8);
    b.add(haddr, haddr, hb);          // &hist[256 - lag]
    b.addi(haddr2, haddr, -8);        // &hist[256 - lag - 1]
    b.label("mac");
    b.beginStrands(2);
    b.strand(0);
    b.slli(a1, k, 3);
    b.add(t1, a1, sb);
    b.load(s, t1, 0);
    b.add(t1, a1, haddr);
    b.load(h, t1, 0);
    b.mul(t1, s, h);
    b.add(acc, acc, t1);
    b.strand(1);
    b.slli(a2, k, 3);
    b.add(t2, a2, sb);
    b.load(s2, t2, 0);
    b.add(t2, a2, haddr2);
    b.load(h2, t2, 0);
    b.mul(t2, s2, h2);
    b.add(acc2, acc2, t2);
    b.weave();
    b.addi(k, k, 1);
    b.slti(tmp, k, 40);
    b.bne(tmp, zeroReg, "mac");
    // Running maxima over both lags (rarely taken after warmup).
    b.blt(acc, best, "no_max");
    b.mov(best, acc);
    b.mov(bestlag, lag);
    b.label("no_max");
    b.blt(acc2, best, "no_max2");
    b.mov(best, acc2);
    b.addi(bestlag, lag, 1);
    b.label("no_max2");
    b.addi(lag, lag, 3);
    b.slti(tmp, lag, 121);
    b.bne(tmp, zeroReg, "lags");

    // Fold the winning lag back into the history (one store).
    b.slli(addr, bestlag, 3);
    b.add(addr, addr, hb);
    b.store(best, addr, 0);

    b.addi(iter, iter, -1);
    b.bne(iter, zeroReg, "outer");
    b.halt();
    return b.build();
}

} // namespace ctcp::workloads
