/**
 * @file
 * Forward declarations of every workload kernel builder plus the small
 * helpers they share. Each kernel lives in its own translation unit
 * under spec/ or media/.
 */

#ifndef CTCPSIM_WORKLOAD_KERNELS_HH
#define CTCPSIM_WORKLOAD_KERNELS_HH

#include <bit>

#include "common/random.hh"
#include "prog/builder.hh"
#include "prog/program.hh"

namespace ctcp::workloads {

// SPEC CPU2000 integer analogues.
Program buildBzip2();
Program buildCrafty();
Program buildEon();
Program buildGap();
Program buildGcc();
Program buildGzip();
Program buildMcf();
Program buildParser();
Program buildPerlbmk();
Program buildTwolf();
Program buildVortex();
Program buildVpr();

// MediaBench analogues.
Program buildAdpcmEnc();
Program buildAdpcmDec();
Program buildEpic();
Program buildUnepic();
Program buildG721Enc();
Program buildG721Dec();
Program buildGsmEnc();
Program buildGsmDec();
Program buildJpegEnc();
Program buildJpegDec();
Program buildMpeg2Enc();
Program buildMpeg2Dec();
Program buildPegwitEnc();
Program buildPegwitDec();

namespace detail {

/** Outer-loop trip count: effectively unbounded at simulated budgets. */
inline constexpr std::int64_t outerIterations = 1'000'000'000;

/** Fill a data block with @p words uniform values in [0, modulo). */
inline std::vector<std::int64_t>
randomWords(std::uint64_t seed, std::size_t words, std::int64_t modulo)
{
    Rng rng(seed);
    std::vector<std::int64_t> out(words);
    for (auto &w : out)
        w = static_cast<std::int64_t>(rng.below(
            static_cast<std::uint64_t>(modulo)));
    return out;
}

/** Fill a data block with IEEE doubles in [lo, hi). */
inline std::vector<std::int64_t>
randomDoubles(std::uint64_t seed, std::size_t words, double lo, double hi)
{
    Rng rng(seed);
    std::vector<std::int64_t> out(words);
    for (auto &w : out) {
        const double v = lo + rng.uniform() * (hi - lo);
        w = std::bit_cast<std::int64_t>(v);
    }
    return out;
}

} // namespace detail

} // namespace ctcp::workloads

#endif // CTCPSIM_WORKLOAD_KERNELS_HH
