#include "workload/workload.hh"

#include <algorithm>

#include "common/logging.hh"
#include "workload/kernels.hh"

namespace ctcp::workloads {

namespace {

struct Entry
{
    BenchmarkInfo info;
    Program (*build)();
};

const std::vector<Entry> &
registry()
{
    static const std::vector<Entry> entries = {
        // SPEC CPU2000 integer analogues.
        {{"bzip2", Suite::SpecInt,
          "block-sort compression: counting sort + RLE passes"},
         buildBzip2},
        {{"crafty", Suite::SpecInt,
          "chess bitboards: shift/mask move generation"}, buildCrafty},
        {{"eon", Suite::SpecInt,
          "probabilistic ray tracing: FP intersection kernels"}, buildEon},
        {{"gap", Suite::SpecInt,
          "computational group theory: bignum arithmetic"}, buildGap},
        {{"gcc", Suite::SpecInt,
          "compiler: many small blocks with switch dispatch"}, buildGcc},
        {{"gzip", Suite::SpecInt,
          "LZ77 compression: hash-chain match loops"}, buildGzip},
        {{"mcf", Suite::SpecInt,
          "network simplex: pointer-chasing over arcs"}, buildMcf},
        {{"parser", Suite::SpecInt,
          "link grammar: dictionary search and string compares"},
         buildParser},
        {{"perlbmk", Suite::SpecInt,
          "perl interpreter: bytecode dispatch via indirect jumps"},
         buildPerlbmk},
        {{"twolf", Suite::SpecInt,
          "place-and-route: simulated annealing accept/reject"},
         buildTwolf},
        {{"vortex", Suite::SpecInt,
          "object database: call-heavy record traversal"}, buildVortex},
        {{"vpr", Suite::SpecInt,
          "FPGA placement: annealing over a routing cost grid"},
         buildVpr},

        // MediaBench analogues.
        {{"adpcm_enc", Suite::Media,
          "ADPCM speech encoder: quantize/clamp bit twiddling"},
         buildAdpcmEnc},
        {{"adpcm_dec", Suite::Media,
          "ADPCM speech decoder: step-size reconstruction"},
         buildAdpcmDec},
        {{"epic", Suite::Media,
          "EPIC image coder: wavelet filter pyramid"}, buildEpic},
        {{"unepic", Suite::Media,
          "EPIC decoder: inverse wavelet reconstruction"}, buildUnepic},
        {{"g721_enc", Suite::Media,
          "G.721 ADPCM encoder: adaptive predictor update"},
         buildG721Enc},
        {{"g721_dec", Suite::Media,
          "G.721 ADPCM decoder: inverse quantizer"}, buildG721Dec},
        {{"gsm_enc", Suite::Media,
          "GSM 06.10 encoder: LTP correlation MACs"}, buildGsmEnc},
        {{"gsm_dec", Suite::Media,
          "GSM 06.10 decoder: short-term synthesis filter"},
         buildGsmDec},
        {{"jpeg_enc", Suite::Media,
          "JPEG encoder: 8x8 integer forward DCT"}, buildJpegEnc},
        {{"jpeg_dec", Suite::Media,
          "JPEG decoder: 8x8 integer inverse DCT"}, buildJpegDec},
        {{"mpeg2_enc", Suite::Media,
          "MPEG-2 encoder: block-SAD motion estimation"}, buildMpeg2Enc},
        {{"mpeg2_dec", Suite::Media,
          "MPEG-2 decoder: motion compensation + saturation"},
         buildMpeg2Dec},
        {{"pegwit_enc", Suite::Media,
          "Pegwit encryption: modular multiply chains"}, buildPegwitEnc},
        {{"pegwit_dec", Suite::Media,
          "Pegwit decryption: modular reduce + table lookups"},
         buildPegwitDec},
    };
    return entries;
}

} // namespace

const std::vector<BenchmarkInfo> &
all()
{
    static const std::vector<BenchmarkInfo> infos = [] {
        std::vector<BenchmarkInfo> v;
        for (const Entry &e : registry())
            v.push_back(e.info);
        return v;
    }();
    return infos;
}

std::vector<std::string>
names(Suite suite)
{
    std::vector<std::string> out;
    for (const Entry &e : registry())
        if (e.info.suite == suite)
            out.push_back(e.info.name);
    return out;
}

const std::vector<std::string> &
selectedSix()
{
    static const std::vector<std::string> six = {
        "bzip2", "eon", "gzip", "perlbmk", "twolf", "vpr",
    };
    return six;
}

bool
exists(const std::string &name)
{
    const auto &r = registry();
    return std::any_of(r.begin(), r.end(), [&](const Entry &e) {
        return e.info.name == name;
    });
}

Program
build(const std::string &name)
{
    for (const Entry &e : registry())
        if (e.info.name == name)
            return e.build();
    ctcp_fatal("unknown benchmark '%s'", name.c_str());
}

} // namespace ctcp::workloads
