/**
 * @file
 * parser analogue: dictionary search with string comparison.
 *
 * parser's hot paths hash words into a dictionary and run
 * character-compare loops with early exits — short, data-dependent
 * inner loops and mispredict-prone exit branches.
 */

#include "workload/kernels.hh"

namespace ctcp::workloads {

Program
buildParser()
{
    using namespace detail;

    constexpr Addr words_base = 0x10000;   // 512 words x 8 "chars"
    constexpr Addr dict_base = 0x40000;    // 256 dictionary slots x 8
    constexpr std::int64_t num_words = 512;

    ProgramBuilder b("parser");
    b.data(words_base, randomWords(0x9a25e101, num_words * 8, 26));
    b.data(dict_base, randomWords(0x9a25e102, 256 * 8, 26));

    const RegId iter = intReg(1);
    const RegId wi = intReg(2);       // word index
    const RegId wb = intReg(3);
    const RegId db = intReg(4);
    const RegId waddr = intReg(5);
    const RegId daddr = intReg(6);
    const RegId hash = intReg(7);
    const RegId c1 = intReg(8);
    const RegId c2 = intReg(9);
    const RegId k = intReg(10);
    const RegId tmp = intReg(11);
    const RegId found = intReg(12);
    const RegId probes = intReg(13);

    b.movi(iter, outerIterations);
    b.movi(wi, 0);
    b.movi(wb, words_base);
    b.movi(db, dict_base);
    b.movi(found, 0);

    const RegId waddr2 = intReg(14);
    const RegId hash2 = intReg(15);
    const RegId c3 = intReg(16);
    const RegId c4 = intReg(17);

    b.label("outer");
    // Hash two words' leading characters as interleaved strands (the
    // second word's hash seeds the next iteration's starting probe,
    // giving useful lookahead work like parser's batched lookups).
    b.beginStrands(2);
    b.strand(0);
    b.slli(waddr, wi, 6);
    b.add(waddr, waddr, wb);
    b.load(c1, waddr, 0);
    b.load(c2, waddr, 8);
    b.slli(hash, c1, 3);
    b.add(hash, hash, c2);
    b.andi(hash, hash, 255);
    b.strand(1);
    b.addi(waddr2, wi, 1);
    b.andi(waddr2, waddr2, num_words - 1);
    b.slli(waddr2, waddr2, 6);
    b.add(waddr2, waddr2, wb);
    b.load(c3, waddr2, 0);
    b.load(c4, waddr2, 8);
    b.slli(hash2, c3, 3);
    b.add(hash2, hash2, c4);
    b.andi(hash2, hash2, 255);
    b.weave();
    b.add(found, found, hash2);
    b.andi(found, found, 0xffff);

    // Probe up to 4 dictionary slots (open addressing).
    b.movi(probes, 0);
    b.label("probe");
    b.slli(daddr, hash, 6);
    b.add(daddr, daddr, db);
    // Compare up to 8 chars with early exit.
    b.movi(k, 0);
    b.label("cmp");
    b.slli(tmp, k, 3);
    b.add(tmp, tmp, waddr);
    b.load(c1, tmp, 0);
    b.slli(tmp, k, 3);
    b.add(tmp, tmp, daddr);
    b.load(c2, tmp, 0);
    b.bne(c1, c2, "mismatch");
    b.addi(k, k, 1);
    b.slti(tmp, k, 8);
    b.bne(tmp, zeroReg, "cmp");
    // Full match.
    b.addi(found, found, 1);
    b.jump("advance");
    b.label("mismatch");
    b.addi(hash, hash, 1);
    b.andi(hash, hash, 255);
    b.addi(probes, probes, 1);
    b.slti(tmp, probes, 4);
    b.bne(tmp, zeroReg, "probe");

    b.label("advance");
    b.addi(wi, wi, 1);
    b.andi(wi, wi, num_words - 1);
    b.addi(iter, iter, -1);
    b.bne(iter, zeroReg, "outer");
    b.halt();
    return b.build();
}

} // namespace ctcp::workloads
