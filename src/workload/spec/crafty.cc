/**
 * @file
 * crafty analogue: bitboard move generation.
 *
 * crafty manipulates 64-bit bitboards with long shift/and/or/xor
 * chains and SWAR population counts — almost pure simple-integer work.
 * Two squares' attack sets are generated per pass with their streams
 * interleaved, and the branch-free SWAR popcount mirrors crafty's
 * PopCnt().
 */

#include "workload/kernels.hh"

namespace ctcp::workloads {

Program
buildCrafty()
{
    using namespace detail;

    constexpr Addr attack_base = 0x10000;   // 256 attack masks

    ProgramBuilder b("crafty");
    {
        Rng rng(0xc4af7701);
        std::vector<std::int64_t> masks(256);
        for (auto &m : masks)
            m = static_cast<std::int64_t>(rng.next());
        b.data(attack_base, masks);
    }

    const RegId iter = intReg(1);
    const RegId occ = intReg(2);
    const RegId own = intReg(3);
    const RegId sq = intReg(4);
    const RegId tbl = intReg(5);
    const RegId score = intReg(6);
    const RegId tmp = intReg(7);
    const RegId m55 = intReg(8);    // SWAR constants
    const RegId m33 = intReg(9);
    const RegId m0f = intReg(10);
    // Two attack-generation strands.
    const RegId mask[2] = {intReg(11), intReg(12)};
    const RegId mv[2] = {intReg(13), intReg(14)};
    const RegId t[2] = {intReg(15), intReg(16)};
    const RegId u[2] = {intReg(17), intReg(18)};

    b.movi(iter, outerIterations);
    b.movi(occ, 0x123456789abcdef0ll);
    b.movi(own, 0x0f0f00ff00f0f0f0ll);
    b.movi(tbl, attack_base);
    b.movi(score, 0);
    b.movi(sq, 0);
    b.movi(m55, 0x5555555555555555ll);
    b.movi(m33, 0x3333333333333333ll);
    b.movi(m0f, 0x0f0f0f0f0f0f0f0fll);

    b.label("outer");
    b.beginStrands(2);
    for (unsigned s = 0; s < 2; ++s) {
        b.strand(s);
        // Attack-table index from an occupancy hash of this square.
        b.srli(t[s], occ, s ? 17 : 32);
        b.xor_(t[s], t[s], occ);
        b.add(t[s], t[s], sq);
        b.andi(t[s], t[s], 255);
        b.slli(t[s], t[s], 3);
        b.add(t[s], t[s], tbl);
        b.load(mask[s], t[s], 0);
        // moves = mask & ~own
        b.movi(u[s], -1);
        b.xor_(u[s], own, u[s]);
        b.and_(mv[s], mask[s], u[s]);
        // SWAR popcount of the move set.
        b.srli(t[s], mv[s], 1);
        b.and_(t[s], t[s], m55);
        b.sub(mv[s], mv[s], t[s]);
        b.and_(t[s], mv[s], m33);
        b.srli(u[s], mv[s], 2);
        b.and_(u[s], u[s], m33);
        b.add(mv[s], t[s], u[s]);
        b.srli(t[s], mv[s], 4);
        b.add(mv[s], mv[s], t[s]);
        b.and_(mv[s], mv[s], m0f);
        b.srli(t[s], mv[s], 32);
        b.add(mv[s], mv[s], t[s]);
        b.srli(t[s], mv[s], 16);
        b.add(mv[s], mv[s], t[s]);
        b.srli(t[s], mv[s], 8);
        b.add(mv[s], mv[s], t[s]);
        b.andi(mv[s], mv[s], 127);
    }
    b.weave();
    b.add(score, score, mv[0]);
    b.add(score, score, mv[1]);

    // Evolve the board state (serial, loop-carried).
    b.slli(tmp, occ, 1);
    b.srli(t[0], occ, 63);
    b.or_(occ, tmp, t[0]);
    b.xor_(own, own, mask[0]);
    b.and_(own, own, occ);

    // A material-balance branch (data dependent, skewed).
    b.andi(tmp, score, 31);
    b.bne(tmp, zeroReg, "no_eval");
    b.xor_(own, own, mask[1]);
    b.label("no_eval");

    b.addi(sq, sq, 2);
    b.andi(sq, sq, 63);
    b.addi(iter, iter, -1);
    b.bne(iter, zeroReg, "outer");
    b.halt();
    return b.build();
}

} // namespace ctcp::workloads
