/**
 * @file
 * twolf analogue: standard-cell placement by simulated annealing.
 *
 * twolf's inner loop proposes a cell swap, recomputes the wirelength
 * delta of the nets touching both cells, and accepts or rejects based
 * on the delta — a data-dependent branch that mispredicts often. The
 * cost recomputation over the four net endpoints is evaluated with
 * branch-free absolute values and the four endpoints' instruction
 * streams interleaved, the way a list scheduler would emit them.
 */

#include "workload/kernels.hh"

namespace ctcp::workloads {

Program
buildTwolf()
{
    using namespace detail;

    constexpr Addr pos_base = 0x10000;    // 1024 cell positions
    constexpr Addr net_base = 0x30000;    // 4 net endpoints per cell
    constexpr std::int64_t num_cells = 1024;
    constexpr unsigned taps = 4;

    ProgramBuilder b("twolf");
    b.data(pos_base, randomWords(0x2f011701, num_cells, 4096));
    b.data(net_base, randomWords(0x2f011702, num_cells * taps, num_cells));

    const RegId iter = intReg(1);
    const RegId seed = intReg(2);
    const RegId posb = intReg(3);
    const RegId netb = intReg(4);
    const RegId ca = intReg(5);
    const RegId cb = intReg(6);
    const RegId pa = intReg(7);
    const RegId pb = intReg(8);
    const RegId aaddr = intReg(9);
    const RegId baddr = intReg(10);
    const RegId thresh = intReg(11);
    const RegId c63 = intReg(12);
    const RegId accept = intReg(13);
    const RegId tmp = intReg(14);
    // Per-tap strand registers.
    const RegId np[taps] = {intReg(15), intReg(16), intReg(17), intReg(18)};
    const RegId d1[taps] = {intReg(19), intReg(20), intReg(21), intReg(22)};
    const RegId d2[taps] = {intReg(23), intReg(24), intReg(25), intReg(26)};
    const RegId sg[taps] = {intReg(27), intReg(28), intReg(29), intReg(30)};

    b.movi(c63, 63);
    b.movi(iter, outerIterations);
    b.movi(seed, 12345);
    b.movi(posb, pos_base);
    b.movi(netb, net_base);
    b.movi(thresh, 64);

    b.label("outer");
    // LCG proposal (complex-int multiply feeding everything below).
    b.movi(tmp, 1103515245);
    b.mul(seed, seed, tmp);
    b.addi(seed, seed, 12345);
    b.srli(ca, seed, 8);
    b.andi(ca, ca, num_cells - 1);
    b.srli(cb, seed, 20);
    b.andi(cb, cb, num_cells - 1);

    b.slli(aaddr, ca, 3);
    b.add(aaddr, aaddr, posb);
    b.load(pa, aaddr, 0);
    b.slli(baddr, cb, 3);
    b.add(baddr, baddr, posb);
    b.load(pb, baddr, 0);

    // Four net endpoints, evaluated as interleaved branch-free strands:
    // old cost |pa - np| and new cost |pb - np| per endpoint.
    b.beginStrands(taps);
    for (unsigned k = 0; k < taps; ++k) {
        b.strand(k);
        b.slli(np[k], ca, 5);                          // &net[ca][k]
        b.add(np[k], np[k], netb);
        b.load(np[k], np[k],
               static_cast<std::int64_t>(k) * 8);
        b.slli(np[k], np[k], 3);
        b.add(np[k], np[k], posb);
        b.load(np[k], np[k], 0);                        // neighbour pos
        b.sub(d1[k], pa, np[k]);
        b.sra(sg[k], d1[k], c63);
        b.xor_(d1[k], d1[k], sg[k]);
        b.sub(d1[k], d1[k], sg[k]);                     // |pa - np|
        b.sub(d2[k], pb, np[k]);
        b.sra(sg[k], d2[k], c63);
        b.xor_(d2[k], d2[k], sg[k]);
        b.sub(d2[k], d2[k], sg[k]);                     // |pb - np|
        b.sub(d2[k], d2[k], d1[k]);                     // per-tap delta
    }
    b.weave();

    // Reduce the four deltas (short tree) and run the accept test.
    b.add(d2[0], d2[0], d2[1]);
    b.add(d2[2], d2[2], d2[3]);
    b.add(accept, d2[0], d2[2]);
    b.blt(accept, thresh, "do_swap");
    b.jump("next");
    b.label("do_swap");
    b.store(pb, aaddr, 0);
    b.store(pa, baddr, 0);
    b.label("next");

    b.addi(iter, iter, -1);
    b.bne(iter, zeroReg, "outer");
    b.halt();
    return b.build();
}

} // namespace ctcp::workloads
