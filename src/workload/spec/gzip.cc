/**
 * @file
 * gzip analogue: LZ77 hash-chain matching.
 *
 * The hot loop of gzip's deflate hashes the next three input bytes,
 * probes the hash head table for a previous occurrence, then runs a
 * data-dependent match-extension loop. Like compiled code scheduled
 * for a four-wide machine, the kernel processes four independent
 * window positions per iteration with their instruction streams
 * interleaved (ProgramBuilder strands), then runs the branchy
 * match-extension loop for the leading position.
 */

#include "workload/kernels.hh"

namespace ctcp::workloads {

Program
buildGzip()
{
    using namespace detail;

    constexpr Addr window_base = 0x10000;   // 4096-word input window
    constexpr Addr hash_base = 0x50000;     // 1024-entry hash head table
    constexpr std::int64_t window_words = 4096;
    constexpr std::int64_t hash_mask = 1023;
    constexpr unsigned strands = 4;

    ProgramBuilder b("gzip");
    b.data(window_base, randomWords(0x675a1b01, window_words, 19));
    b.data(hash_base,
           randomWords(0x675a1b02, hash_mask + 1, window_words - 16));

    const RegId pos = intReg(1);
    const RegId win = intReg(2);
    const RegId hsh = intReg(3);
    const RegId iter = intReg(4);
    // Per-strand working registers.
    const RegId t[strands] = {intReg(5), intReg(6), intReg(7), intReg(8)};
    const RegId u[strands] = {intReg(9), intReg(10), intReg(11), intReg(12)};
    const RegId h[strands] = {intReg(13), intReg(14), intReg(15), intReg(16)};
    const RegId c[strands] = {intReg(17), intReg(18), intReg(19), intReg(20)};
    const RegId acc[strands] = {intReg(21), intReg(22), intReg(23),
                                intReg(24)};
    // Match-loop registers (reused each iteration).
    const RegId len = intReg(25);
    const RegId caddr = intReg(26);
    const RegId waddr = intReg(27);
    const RegId cw = intReg(28);
    const RegId ww = intReg(29);
    const RegId tmp = intReg(30);

    b.movi(pos, 0);
    b.movi(win, window_base);
    b.movi(hsh, hash_base);
    b.movi(iter, outerIterations);
    for (unsigned k = 0; k < strands; ++k)
        b.movi(acc[k], 0);

    b.label("outer");

    // Four hash/probe streams over positions pos, pos+512, pos+1024,
    // pos+1536, interleaved as a scheduler would emit them.
    b.beginStrands(strands);
    for (unsigned k = 0; k < strands; ++k) {
        b.strand(k);
        b.addi(t[k], pos, static_cast<std::int64_t>(k) * 512);
        b.andi(t[k], t[k], 2047);
        b.slli(u[k], t[k], 3);
        b.add(u[k], u[k], win);
        b.load(c[k], u[k], 0);
        b.load(h[k], u[k], 8);
        b.slli(h[k], h[k], 3);
        b.slli(c[k], c[k], 5);
        b.xor_(h[k], h[k], c[k]);
        b.load(c[k], u[k], 16);
        b.xor_(h[k], h[k], c[k]);
        b.andi(h[k], h[k], hash_mask);
        b.slli(c[k], h[k], 3);
        b.add(c[k], c[k], hsh);
        b.load(h[k], c[k], 0);        // candidate position
        b.store(t[k], c[k], 0);       // head[hash] = our position
        b.add(acc[k], acc[k], h[k]);
    }
    b.weave();

    // Match extension for the leading stream's candidate (data
    // dependent, mispredict-prone exit).
    b.movi(len, 0);
    b.slli(caddr, h[0], 3);
    b.add(caddr, caddr, win);
    b.slli(waddr, t[0], 3);
    b.add(waddr, waddr, win);
    b.label("match");
    b.load(cw, caddr, 0);
    b.load(ww, waddr, 0);
    b.bne(cw, ww, "match_done");
    b.addi(len, len, 1);
    b.addi(caddr, caddr, 8);
    b.addi(waddr, waddr, 8);
    b.slti(tmp, len, 8);
    b.bne(tmp, zeroReg, "match");
    b.label("match_done");
    b.add(acc[0], acc[0], len);

    b.addi(pos, pos, 1);
    b.andi(pos, pos, 511);
    b.addi(iter, iter, -1);
    b.bne(iter, zeroReg, "outer");
    b.halt();
    return b.build();
}

} // namespace ctcp::workloads
