/**
 * @file
 * vortex analogue: object-database record traversal.
 *
 * vortex is call/return heavy: each transaction invokes small lookup
 * and validation routines against object records. The kernel issues
 * direct calls to three helper routines per transaction (exercising
 * the return-address stack) and touches record fields with loads and
 * stores.
 */

#include "workload/kernels.hh"

namespace ctcp::workloads {

Program
buildVortex()
{
    using namespace detail;

    constexpr Addr recs_base = 0x10000;   // 1024 records x 4 fields
    constexpr std::int64_t num_recs = 1024;

    ProgramBuilder b("vortex");
    b.data(recs_base, randomWords(0x40e7e201, num_recs * 4, 100000));

    const RegId iter = intReg(1);
    const RegId id = intReg(2);       // transaction record id
    const RegId rb = intReg(3);
    const RegId addr = intReg(4);     // record address (callee argument)
    const RegId f0 = intReg(5);
    const RegId f1 = intReg(6);
    const RegId acc = intReg(7);
    const RegId tmp = intReg(8);
    const RegId seed = intReg(9);

    b.movi(iter, outerIterations);
    b.movi(id, 0);
    b.movi(rb, recs_base);
    b.movi(acc, 0);
    b.movi(seed, 31337);
    b.jump("main");

    // ---- Subroutines ----------------------------------------------------
    b.label("fn_hash");               // acc ^= hash(record fields)
    b.load(f0, addr, 0);
    b.load(f1, addr, 8);
    b.slli(tmp, f0, 7);
    b.xor_(tmp, tmp, f1);
    b.xor_(acc, acc, tmp);
    b.ret();

    b.label("fn_validate");           // bounds-check two fields
    b.load(f0, addr, 16);
    b.slti(tmp, f0, 100000);
    b.beq(tmp, zeroReg, "clamp");
    b.ret();
    b.label("clamp");
    b.movi(f0, 99999);
    b.store(f0, addr, 16);
    b.ret();

    b.label("fn_update");             // read-modify-write a field
    b.load(f1, addr, 24);
    b.add(f1, f1, acc);
    b.andi(f1, f1, 0xfffff);
    b.store(f1, addr, 24);
    b.ret();

    // ---- Transaction loop -------------------------------------------------
    b.label("main");
    b.movi(tmp, 2654435761ll);
    b.mul(seed, seed, tmp);
    b.addi(seed, seed, 1);
    b.srli(id, seed, 12);
    b.andi(id, id, num_recs - 1);
    b.slli(addr, id, 5);
    b.add(addr, addr, rb);
    b.call("fn_hash");
    b.call("fn_validate");
    b.call("fn_update");
    b.addi(iter, iter, -1);
    b.bne(iter, zeroReg, "main");
    b.halt();
    return b.build();
}

} // namespace ctcp::workloads
