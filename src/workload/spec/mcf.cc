/**
 * @file
 * mcf analogue: network-simplex pointer chasing.
 *
 * mcf walks linked arc/node structures whose next pointers come from
 * memory, producing serial load-load dependence chains and poor cache
 * locality. Two independent chases run with their instruction streams
 * interleaved — the memory-level parallelism real mcf exposes across
 * arcs — while each chase stays strictly serial.
 */

#include "workload/kernels.hh"

namespace ctcp::workloads {

Program
buildMcf()
{
    using namespace detail;

    constexpr Addr next_base = 0x10000;   // successor indices
    constexpr Addr cost_base = 0x80000;   // per-node potentials
    constexpr std::int64_t num_nodes = 16384;   // larger than L1D

    ProgramBuilder b("mcf");
    b.data(next_base, randomWords(0x3c0f0001, num_nodes, num_nodes));
    b.data(cost_base, randomWords(0x3c0f0002, num_nodes, 10000));

    const RegId iter = intReg(1);
    const RegId nxtb = intReg(2);
    const RegId cstb = intReg(3);
    const RegId k = intReg(4);
    const RegId tmp = intReg(5);
    // Two chase strands.
    const RegId node[2] = {intReg(6), intReg(7)};
    const RegId addr[2] = {intReg(8), intReg(9)};
    const RegId cost[2] = {intReg(10), intReg(11)};
    const RegId acc[2] = {intReg(12), intReg(13)};

    b.movi(iter, outerIterations);
    b.movi(node[0], 1);
    b.movi(node[1], 4097);
    b.movi(nxtb, next_base);
    b.movi(cstb, cost_base);
    b.movi(acc[0], 0);
    b.movi(acc[1], 0);

    b.label("outer");
    b.movi(k, 0);
    b.label("chase");
    b.beginStrands(2);
    for (unsigned s = 0; s < 2; ++s) {
        b.strand(s);
        b.slli(addr[s], node[s], 3);
        b.add(addr[s], addr[s], nxtb);
        b.load(node[s], addr[s], 0);       // node = next[node]
        b.slli(addr[s], node[s], 3);
        b.add(addr[s], addr[s], cstb);
        b.load(cost[s], addr[s], 0);
        b.add(acc[s], acc[s], cost[s]);
    }
    b.weave();
    b.addi(k, k, 1);
    b.slti(tmp, k, 16);
    b.bne(tmp, zeroReg, "chase");

    // Occasional potential update along the first walked path.
    b.andi(tmp, acc[0], 7);
    b.bne(tmp, zeroReg, "no_update");
    b.addi(cost[0], cost[0], 1);
    b.store(cost[0], addr[0], 0);
    b.label("no_update");

    b.addi(iter, iter, -1);
    b.bne(iter, zeroReg, "outer");
    b.halt();
    return b.build();
}

} // namespace ctcp::workloads
