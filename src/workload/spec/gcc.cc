/**
 * @file
 * gcc analogue: IR walking with switch dispatch.
 *
 * gcc spends its time walking tree/RTL nodes and switching on node
 * codes: many tiny basic blocks, an indirect dispatch, and field loads
 * off a node pointer. Node codes are skewed (some cases dominate),
 * like real IR distributions.
 */

#include "workload/kernels.hh"

namespace ctcp::workloads {

Program
buildGcc()
{
    using namespace detail;

    constexpr Addr nodes_base = 0x10000;   // 1024 nodes x 4 fields
    constexpr Addr table_base = 0x60000;   // dispatch table
    constexpr std::int64_t num_nodes = 1024;

    ProgramBuilder b("gcc");
    {
        // Field 0: node code 0..5 (skewed); field 1..2: operand node
        // ids; field 3: scratch value.
        Rng rng(0x9cc00001);
        std::vector<std::int64_t> nodes(num_nodes * 4);
        for (std::int64_t n = 0; n < num_nodes; ++n) {
            const std::uint64_t r = rng.below(10);
            nodes[n * 4 + 0] = static_cast<std::int64_t>(
                r < 4 ? 0 : r < 7 ? 1 : r - 5);   // codes 0,1,2,3,4
            nodes[n * 4 + 1] = static_cast<std::int64_t>(
                rng.below(num_nodes));
            nodes[n * 4 + 2] = static_cast<std::int64_t>(
                rng.below(num_nodes));
            nodes[n * 4 + 3] = static_cast<std::int64_t>(rng.below(997));
        }
        b.data(nodes_base, nodes);
    }

    const RegId iter = intReg(1);
    const RegId cur = intReg(2);      // current node id
    const RegId nb = intReg(3);
    const RegId tb = intReg(4);
    const RegId addr = intReg(5);
    const RegId code = intReg(6);
    const RegId op1 = intReg(7);
    const RegId op2 = intReg(8);
    const RegId val = intReg(9);
    const RegId acc = intReg(10);
    const RegId target = intReg(11);
    const RegId tmp = intReg(12);

    b.movi(iter, outerIterations);
    b.movi(cur, 0);
    b.movi(nb, nodes_base);
    b.movi(tb, table_base);
    b.movi(acc, 0);
    b.jump("walk");

    std::vector<std::int64_t> table;

    table.push_back(static_cast<std::int64_t>(b.here()));
    b.label("case_plus");             // acc += val; descend op1
    b.add(acc, acc, val);
    b.mov(cur, op1);
    b.jump("next");

    table.push_back(static_cast<std::int64_t>(b.here()));
    b.label("case_reg");              // acc ^= val; descend op2
    b.xor_(acc, acc, val);
    b.mov(cur, op2);
    b.jump("next");

    table.push_back(static_cast<std::int64_t>(b.here()));
    b.label("case_mem");              // extra load off op1's node
    b.slli(addr, op1, 5);
    b.add(addr, addr, nb);
    b.load(tmp, addr, 24);
    b.add(acc, acc, tmp);
    b.mov(cur, op2);
    b.jump("next");

    table.push_back(static_cast<std::int64_t>(b.here()));
    b.label("case_mult");             // complex-int work
    b.mul(tmp, val, acc);
    b.andi(acc, tmp, 0xfffff);
    b.mov(cur, op1);
    b.jump("next");

    table.push_back(static_cast<std::int64_t>(b.here()));
    b.label("case_store");            // write back a folded constant
    b.add(tmp, val, acc);
    b.store(tmp, addr, 24);
    b.mov(cur, op2);
    b.jump("next");

    b.data(table_base, table);

    b.label("walk");
    // Load node fields: addr = nb + cur*32.
    b.slli(addr, cur, 5);
    b.add(addr, addr, nb);
    b.load(code, addr, 0);
    b.load(op1, addr, 8);
    b.load(op2, addr, 16);
    b.load(val, addr, 24);
    b.slli(tmp, code, 3);
    b.add(tmp, tmp, tb);
    b.load(target, tmp, 0);
    b.jumpReg(target);

    b.label("next");
    b.addi(iter, iter, -1);
    b.bne(iter, zeroReg, "walk");
    b.halt();
    return b.build();
}

} // namespace ctcp::workloads
