/**
 * @file
 * vpr analogue: FPGA placement cost evaluation.
 *
 * vpr's placer evaluates bounding-box routing cost over a 2-D grid:
 * block coordinates load from two arrays, min/max folds form the
 * half-perimeter, and the result updates a grid occupancy array. Six
 * pseudo-net neighbours are folded two at a time with their loads and
 * branch-free compare-selects interleaved; a couple of data-dependent
 * branches (in-bounds check, occupancy saturation) keep vpr's branchy
 * flavour.
 */

#include "workload/kernels.hh"

namespace ctcp::workloads {

namespace {

/**
 * Emit branch-free d = min(d, v) or max into the active strand.
 * mask = (v < d) ? -1 : 0;  d = d + ((v - d) & mask)  selects v when
 * v < d (min); for max the compare is flipped.
 */
void
emitSelect(ProgramBuilder &b, RegId d, RegId v, RegId t0, RegId t1,
           bool is_min)
{
    if (is_min)
        b.slt(t0, v, d);
    else
        b.slt(t0, d, v);
    b.sub(t0, zeroReg, t0);    // 0 or -1
    b.sub(t1, v, d);
    b.and_(t1, t1, t0);
    b.add(d, d, t1);
}

} // namespace

Program
buildVpr()
{
    using namespace detail;

    constexpr Addr xs_base = 0x10000;
    constexpr Addr ys_base = 0x20000;
    constexpr Addr grid_base = 0x30000;
    constexpr std::int64_t num_blocks = 512;

    ProgramBuilder b("vpr");
    b.data(xs_base, randomWords(0x0f9a0001, num_blocks, 64));
    b.data(ys_base, randomWords(0x0f9a0002, num_blocks, 64));
    b.data(grid_base, randomWords(0x0f9a0003, 64 * 64, 3));

    const RegId iter = intReg(1);
    const RegId seed = intReg(2);
    const RegId xsb = intReg(3);
    const RegId ysb = intReg(4);
    const RegId grd = intReg(5);
    const RegId blk = intReg(6);
    const RegId k = intReg(7);
    const RegId x0 = intReg(8);
    const RegId y0 = intReg(9);
    const RegId xmin = intReg(10);
    const RegId xmax = intReg(11);
    const RegId ymin = intReg(12);
    const RegId ymax = intReg(13);
    const RegId cost = intReg(14);
    const RegId addr = intReg(15);
    const RegId tmp = intReg(16);
    const RegId occ = intReg(17);
    // Two-neighbour strand registers.
    const RegId nx[2] = {intReg(18), intReg(19)};
    const RegId ny[2] = {intReg(20), intReg(21)};
    const RegId na[2] = {intReg(22), intReg(23)};
    const RegId t0s[2] = {intReg(24), intReg(25)};
    const RegId t1s[2] = {intReg(26), intReg(27)};
    const RegId xmn[2] = {intReg(28), intReg(29)};

    b.movi(iter, outerIterations);
    b.movi(seed, 777);
    b.movi(xsb, xs_base);
    b.movi(ysb, ys_base);
    b.movi(grd, grid_base);

    b.label("outer");
    b.movi(tmp, 6364136223846793005ll);
    b.mul(seed, seed, tmp);
    b.addi(seed, seed, 1442695040888963407ll);
    b.srli(blk, seed, 17);
    b.andi(blk, blk, num_blocks - 1);

    b.slli(addr, blk, 3);
    b.add(tmp, addr, xsb);
    b.load(x0, tmp, 0);
    b.add(tmp, addr, ysb);
    b.load(y0, tmp, 0);
    b.mov(xmin, x0);
    b.mov(xmax, x0);
    b.mov(ymin, y0);
    b.mov(ymax, y0);
    // Per-strand partial minima start at the block's own coordinates.
    b.mov(xmn[0], x0);
    b.mov(xmn[1], x0);

    // Fold 6 neighbours, two per loop pass, as interleaved strands.
    b.movi(k, 0);
    b.label("bbox");
    b.beginStrands(2);
    for (unsigned s = 0; s < 2; ++s) {
        b.strand(s);
        // Neighbour id: hash of blk and (k + s).
        b.addi(na[s], k, static_cast<std::int64_t>(s));
        b.add(na[s], na[s], blk);
        b.slli(t0s[s], na[s], 4);
        b.add(na[s], na[s], t0s[s]);
        b.addi(na[s], na[s], 13);
        b.andi(na[s], na[s], num_blocks - 1);
        b.slli(na[s], na[s], 3);
        b.add(t0s[s], na[s], xsb);
        b.load(nx[s], t0s[s], 0);
        b.add(t1s[s], na[s], ysb);
        b.load(ny[s], t1s[s], 0);
        emitSelect(b, xmn[s], nx[s], t0s[s], t1s[s], true);
        emitSelect(b, xmax, nx[s], t0s[s], t1s[s], false);
        emitSelect(b, ymin, ny[s], t0s[s], t1s[s], true);
        emitSelect(b, ymax, ny[s], t0s[s], t1s[s], false);
    }
    b.weave();
    b.addi(k, k, 2);
    b.slti(tmp, k, 6);
    b.bne(tmp, zeroReg, "bbox");
    // Merge the two xmin strands (branchy, like vpr's get_bb exit).
    b.bge(xmn[1], xmn[0], "xmin_done");
    b.mov(xmn[0], xmn[1]);
    b.label("xmin_done");
    b.mov(xmin, xmn[0]);

    // Half-perimeter cost and a saturating occupancy update.
    b.sub(cost, xmax, xmin);
    b.sub(tmp, ymax, ymin);
    b.add(cost, cost, tmp);
    b.slli(addr, y0, 6);
    b.add(addr, addr, x0);
    b.slli(addr, addr, 3);
    b.add(addr, addr, grd);
    b.load(occ, addr, 0);
    b.add(occ, occ, cost);
    b.slti(tmp, occ, 0x10000);
    b.bne(tmp, zeroReg, "no_sat");
    b.movi(occ, 0);
    b.label("no_sat");
    b.store(occ, addr, 0);

    b.addi(iter, iter, -1);
    b.bne(iter, zeroReg, "outer");
    b.halt();
    return b.build();
}

} // namespace ctcp::workloads
