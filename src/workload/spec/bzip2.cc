/**
 * @file
 * bzip2 analogue: block-sorting compression passes.
 *
 * bzip2 alternates a Burrows-Wheeler-style sorting phase (here a
 * counting sort over symbol buckets with data-dependent bucket
 * updates) with a move-to-front + run-length pass whose branches are
 * highly data dependent. Both phases are load/store heavy with short
 * dependence chains feeding comparisons — the signature that makes
 * bzip2 forwarding-latency sensitive in the paper.
 */

#include "workload/kernels.hh"

namespace ctcp::workloads {

Program
buildBzip2()
{
    using namespace detail;

    constexpr Addr block_base = 0x10000;    // 2048-word symbol block
    constexpr Addr count_base = 0x30000;    // 256 symbol buckets
    constexpr Addr mtf_base = 0x40000;      // 64-entry MTF table
    constexpr std::int64_t block_words = 2048;

    ProgramBuilder b("bzip2");
    b.data(block_base, randomWords(0xb21b2101, block_words, 64));
    b.data(count_base, randomWords(0xb21b2102, 256, 4));
    b.data(mtf_base, randomWords(0xb21b2103, 64, 64));

    const RegId iter = intReg(1);
    const RegId blk = intReg(2);
    const RegId cnt = intReg(3);
    const RegId mtf = intReg(4);
    const RegId i = intReg(5);
    const RegId addr = intReg(6);
    const RegId sym = intReg(7);
    const RegId prev = intReg(10);
    const RegId run = intReg(11);
    const RegId j = intReg(12);
    const RegId cur = intReg(13);
    const RegId tmp = intReg(14);
    const RegId tot = intReg(15);

    b.movi(iter, outerIterations);
    b.movi(blk, block_base);
    b.movi(cnt, count_base);
    b.movi(mtf, mtf_base);
    b.movi(tot, 0);

    b.label("outer");

    // ---- Phase 1: counting sort over a 256-word stripe -----------------
    // Four independent histogram streams woven together, merged into
    // the shared bucket array (disjoint slices avoid conflicts).
    b.movi(i, 0);
    b.label("count");
    b.beginStrands(4);
    for (unsigned k = 0; k < 4; ++k) {
        const RegId a = intReg(16 + k);
        const RegId v = intReg(20 + k);
        b.strand(k);
        b.addi(a, i, static_cast<std::int64_t>(k) * 64);
        b.slli(a, a, 3);
        b.add(a, a, blk);
        b.load(v, a, 0);
        b.slli(a, v, 3);
        b.add(a, a, cnt);
        b.load(v, a, 0);
        b.addi(v, v, 1);
        b.andi(v, v, 0xffff);
        b.store(v, a, 0);
    }
    b.weave();
    b.addi(i, i, 1);
    b.slti(tmp, i, 64);
    b.bne(tmp, zeroReg, "count");

    // ---- Phase 2: move-to-front with run-length detection ---------------
    b.movi(prev, -1);
    b.movi(run, 0);
    b.movi(i, 0);
    b.label("mtf");
    b.slli(addr, i, 3);
    b.add(addr, addr, blk);
    b.load(sym, addr, 0);
    b.beq(sym, prev, "run_extend");
    // MTF search: walk the table until the symbol is found.
    b.movi(j, 0);
    b.label("search");
    b.slli(tmp, j, 3);
    b.add(tmp, tmp, mtf);
    b.load(cur, tmp, 0);
    b.beq(cur, sym, "found");
    b.addi(j, j, 1);
    b.slti(tmp, j, 64);
    b.bne(tmp, zeroReg, "search");
    b.movi(j, 63);
    b.label("found");
    // Swap the found entry to the front (one store each way).
    b.load(cur, mtf, 0);
    b.slli(tmp, j, 3);
    b.add(tmp, tmp, mtf);
    b.store(cur, tmp, 0);
    b.store(sym, mtf, 0);
    b.add(tot, tot, j);
    b.mov(prev, sym);
    b.movi(run, 0);
    b.jump("mtf_next");
    b.label("run_extend");
    b.addi(run, run, 1);
    b.add(tot, tot, run);
    b.label("mtf_next");
    b.addi(i, i, 1);
    b.slti(tmp, i, 256);
    b.bne(tmp, zeroReg, "mtf");

    // Rotate the block origin so stripes differ between iterations.
    b.addi(blk, blk, 8);
    b.slti(tmp, blk, block_base + (block_words - 260) * 8);
    b.bne(tmp, zeroReg, "no_wrap");
    b.movi(blk, block_base);
    b.label("no_wrap");

    b.addi(iter, iter, -1);
    b.bne(iter, zeroReg, "outer");
    b.halt();
    return b.build();
}

} // namespace ctcp::workloads
