/**
 * @file
 * perlbmk analogue: bytecode interpreter dispatch.
 *
 * Perl's runloop fetches an op, indirect-jumps to its handler, runs a
 * short handler body touching the interpreter stack, and loops. The
 * indirect jump is the classic hard-to-predict branch, and the stack
 * pointer / accumulator create long loop-carried (inter-trace)
 * dependence chains — exactly the feedback FDRT chains exploit.
 */

#include "workload/kernels.hh"

namespace ctcp::workloads {

Program
buildPerlbmk()
{
    using namespace detail;

    constexpr Addr bytecode_base = 0x10000;   // 512-op program, values 0..7
    constexpr Addr stack_base = 0x30000;      // interpreter stack
    constexpr Addr table_base = 0x50000;      // handler jump table
    constexpr std::int64_t num_ops = 512;

    ProgramBuilder b("perlbmk");
    b.data(bytecode_base, randomWords(0x9e271001, num_ops, 8));
    b.data(stack_base, randomWords(0x9e271002, 256, 1000));

    const RegId iter = intReg(1);
    const RegId ip = intReg(2);       // bytecode index
    const RegId sp = intReg(3);       // stack index (0..63)
    const RegId acc = intReg(4);      // interpreter accumulator
    const RegId code = intReg(5);
    const RegId tbl = intReg(6);
    const RegId stk = intReg(7);
    const RegId op = intReg(8);
    const RegId target = intReg(9);
    const RegId addr = intReg(10);
    const RegId val = intReg(11);
    const RegId tmp = intReg(12);

    b.movi(iter, outerIterations);
    b.movi(ip, 0);
    b.movi(sp, 0);
    b.movi(acc, 1);
    b.movi(code, bytecode_base);
    b.movi(tbl, table_base);
    b.movi(stk, stack_base);
    b.jump("dispatch");

    // ---- Handlers (positions captured for the jump table) --------------
    std::vector<std::int64_t> table;

    auto next = [&](const char *label) {
        b.label(label);
    };

    table.push_back(static_cast<std::int64_t>(b.here()));
    next("op_add");                       // acc += pop()
    b.slli(addr, sp, 3);
    b.add(addr, addr, stk);
    b.load(val, addr, 0);
    b.add(acc, acc, val);
    b.jump("advance");

    table.push_back(static_cast<std::int64_t>(b.here()));
    next("op_sub");                       // acc -= pop()
    b.slli(addr, sp, 3);
    b.add(addr, addr, stk);
    b.load(val, addr, 0);
    b.sub(acc, acc, val);
    b.jump("advance");

    table.push_back(static_cast<std::int64_t>(b.here()));
    next("op_push");                      // push(acc)
    b.addi(sp, sp, 1);
    b.andi(sp, sp, 63);
    b.slli(addr, sp, 3);
    b.add(addr, addr, stk);
    b.store(acc, addr, 0);
    b.jump("advance");

    table.push_back(static_cast<std::int64_t>(b.here()));
    next("op_pop");                       // acc = pop()
    b.slli(addr, sp, 3);
    b.add(addr, addr, stk);
    b.load(acc, addr, 0);
    b.addi(sp, sp, -1);
    b.andi(sp, sp, 63);
    b.jump("advance");

    table.push_back(static_cast<std::int64_t>(b.here()));
    next("op_mul");                       // acc = (acc * top) & mask
    b.slli(addr, sp, 3);
    b.add(addr, addr, stk);
    b.load(val, addr, 0);
    b.mul(acc, acc, val);
    b.andi(acc, acc, 0xffffff);
    b.jump("advance");

    table.push_back(static_cast<std::int64_t>(b.here()));
    next("op_cmp");                       // acc = acc < top
    b.slli(addr, sp, 3);
    b.add(addr, addr, stk);
    b.load(val, addr, 0);
    b.slt(acc, acc, val);
    b.jump("advance");

    table.push_back(static_cast<std::int64_t>(b.here()));
    next("op_dup");                       // stack[sp+1] = stack[sp]
    b.slli(addr, sp, 3);
    b.add(addr, addr, stk);
    b.load(val, addr, 0);
    b.store(val, addr, 8);
    b.addi(sp, sp, 1);
    b.andi(sp, sp, 63);
    b.jump("advance");

    table.push_back(static_cast<std::int64_t>(b.here()));
    next("op_jnz");                       // conditional skip over next op
    b.beq(acc, zeroReg, "advance");
    b.addi(ip, ip, 1);
    b.jump("advance");

    b.data(table_base, table);

    // ---- Dispatch loop ----------------------------------------------------
    b.label("advance");
    b.addi(ip, ip, 1);
    b.andi(ip, ip, num_ops - 1);
    b.addi(iter, iter, -1);
    b.beq(iter, zeroReg, "finish");
    b.label("dispatch");
    b.slli(addr, ip, 3);
    b.add(addr, addr, code);
    b.load(op, addr, 0);
    b.slli(tmp, op, 3);
    b.add(tmp, tmp, tbl);
    b.load(target, tmp, 0);
    b.jumpReg(target);

    b.label("finish");
    b.halt();
    return b.build();
}

} // namespace ctcp::workloads
