/**
 * @file
 * eon analogue: probabilistic ray tracing.
 *
 * eon is the only FP-leaning program among the paper's six: its hot
 * path intersects rays against surfaces (dot products, a discriminant,
 * a square root, a division) with only a few well-predicted branches.
 * Two spheres are intersected per pass with their FP pipelines
 * interleaved (as compiled intersection loops unroll), followed by a
 * mostly-taken miss branch per sphere.
 */

#include "workload/kernels.hh"

namespace ctcp::workloads {

Program
buildEon()
{
    using namespace detail;

    constexpr Addr rays_base = 0x10000;      // 256 rays x 6 doubles
    constexpr Addr spheres_base = 0x30000;   // 64 spheres x 4 doubles
    constexpr std::int64_t num_rays = 256;
    constexpr std::int64_t num_spheres = 64;

    ProgramBuilder b("eon");
    b.data(rays_base, randomDoubles(0xe0e0e001, num_rays * 6, -1.0, 1.0));
    b.data(spheres_base,
           randomDoubles(0xe0e0e002, num_spheres * 4, 0.5, 4.0));

    const RegId iter = intReg(1);
    const RegId ray = intReg(2);
    const RegId sph = intReg(3);
    const RegId raddr = intReg(4);
    const RegId tmp = intReg(5);
    const RegId hit = intReg(6);
    const RegId cmp0 = intReg(7);
    const RegId cmp1 = intReg(8);
    const RegId sa[2] = {intReg(9), intReg(10)};

    const RegId ox = fpReg(0), oy = fpReg(1), oz = fpReg(2);
    const RegId dx = fpReg(3), dy = fpReg(4), dz = fpReg(5);
    const RegId fzero = fpReg(6);
    const RegId acc = fpReg(7);
    // Per-sphere strand FP registers.
    const RegId lx[2] = {fpReg(8), fpReg(9)};
    const RegId ly[2] = {fpReg(10), fpReg(11)};
    const RegId lz[2] = {fpReg(12), fpReg(13)};
    const RegId bq[2] = {fpReg(14), fpReg(15)};
    const RegId cq[2] = {fpReg(16), fpReg(17)};
    const RegId ds[2] = {fpReg(18), fpReg(19)};
    const RegId ft[2] = {fpReg(20), fpReg(21)};
    const RegId rt[2] = {fpReg(22), fpReg(23)};

    b.movi(iter, outerIterations);
    b.movi(ray, 0);
    b.movi(hit, 0);
    b.fcvtif(fzero, zeroReg);
    b.fcvtif(acc, zeroReg);

    b.label("outer");
    b.slli(raddr, ray, 5);
    b.slli(tmp, ray, 4);
    b.add(raddr, raddr, tmp);
    b.addi(raddr, raddr, rays_base);
    b.fload(ox, raddr, 0);
    b.fload(oy, raddr, 8);
    b.fload(oz, raddr, 16);
    b.fload(dx, raddr, 24);
    b.fload(dy, raddr, 32);
    b.fload(dz, raddr, 40);

    b.movi(sph, 0);
    b.label("spheres");
    // Two spheres per pass, interleaved.
    b.beginStrands(2);
    for (unsigned s = 0; s < 2; ++s) {
        b.strand(s);
        b.addi(sa[s], sph, static_cast<std::int64_t>(s));
        b.slli(sa[s], sa[s], 5);
        b.addi(sa[s], sa[s], spheres_base);
        b.fload(lx[s], sa[s], 0);
        b.fload(ly[s], sa[s], 8);
        b.fload(lz[s], sa[s], 16);
        b.fload(ft[s], sa[s], 24);        // radius
        b.fsub(lx[s], lx[s], ox);
        b.fsub(ly[s], ly[s], oy);
        b.fsub(lz[s], lz[s], oz);
        b.fmul(bq[s], lx[s], dx);
        b.fmul(rt[s], ly[s], dy);
        b.fadd(bq[s], bq[s], rt[s]);
        b.fmul(rt[s], lz[s], dz);
        b.fadd(bq[s], bq[s], rt[s]);      // b = L . D
        b.fmul(cq[s], lx[s], lx[s]);
        b.fmul(rt[s], ly[s], ly[s]);
        b.fadd(cq[s], cq[s], rt[s]);
        b.fmul(rt[s], lz[s], lz[s]);
        b.fadd(cq[s], cq[s], rt[s]);      // L . L
        b.fmul(ft[s], ft[s], ft[s]);
        b.fsub(cq[s], cq[s], ft[s]);      // c = L.L - r^2
        b.fmul(ds[s], bq[s], bq[s]);
        b.fsub(ds[s], ds[s], cq[s]);      // discriminant
    }
    b.weave();
    b.fcmplt(cmp0, ds[0], fzero);
    b.fcmplt(cmp1, ds[1], fzero);

    b.bne(cmp0, zeroReg, "miss0");
    b.fsqrt(rt[0], ds[0]);
    b.fsub(ft[0], bq[0], rt[0]);
    b.fadd(acc, acc, ft[0]);
    b.addi(hit, hit, 1);
    b.label("miss0");
    b.bne(cmp1, zeroReg, "miss1");
    b.fsqrt(rt[1], ds[1]);
    b.fsub(ft[1], bq[1], rt[1]);
    b.fadd(acc, acc, ft[1]);
    b.addi(hit, hit, 1);
    b.label("miss1");

    b.addi(sph, sph, 2);
    b.slti(tmp, sph, num_spheres);
    b.bne(tmp, zeroReg, "spheres");

    b.addi(ray, ray, 1);
    b.andi(ray, ray, num_rays - 1);
    b.addi(iter, iter, -1);
    b.bne(iter, zeroReg, "outer");
    b.halt();
    return b.build();
}

} // namespace ctcp::workloads
