/**
 * @file
 * gap analogue: multi-precision (bignum) arithmetic.
 *
 * gap's group-theory computations reduce to long carry-propagating
 * addition/multiplication loops over digit arrays: serial dependence
 * through the carry register crossing trace boundaries every few
 * instructions — prime territory for inter-trace chains.
 */

#include "workload/kernels.hh"

namespace ctcp::workloads {

Program
buildGap()
{
    using namespace detail;

    constexpr Addr a_base = 0x10000;    // operand digits (base 2^30)
    constexpr Addr b_base = 0x20000;
    constexpr Addr r_base = 0x30000;
    constexpr std::int64_t digits = 64;

    ProgramBuilder b("gap");
    b.data(a_base, randomWords(0x9a901001, digits, 1ll << 30));
    b.data(b_base, randomWords(0x9a901002, digits, 1ll << 30));

    const RegId iter = intReg(1);
    const RegId ab = intReg(2);
    const RegId bb = intReg(3);
    const RegId rb = intReg(4);
    const RegId i = intReg(5);
    const RegId da = intReg(6);
    const RegId dbv = intReg(7);
    const RegId sum = intReg(8);
    const RegId carry = intReg(9);
    const RegId addr = intReg(10);
    const RegId tmp = intReg(11);
    const RegId scal = intReg(12);    // small scalar multiplier
    const RegId prod = intReg(13);

    b.movi(iter, outerIterations);
    b.movi(ab, a_base);
    b.movi(bb, b_base);
    b.movi(rb, r_base);
    b.movi(scal, 77773);

    b.label("outer");

    // Two independent carry-propagating adds over the digit halves,
    // woven: each strand is strictly serial through its carry register
    // (gap's signature), but the two halves overlap.
    const RegId carry2 = intReg(14);
    const RegId da2 = intReg(15);
    const RegId db2 = intReg(16);
    const RegId sum2 = intReg(17);
    const RegId addr2 = intReg(18);
    const RegId t2 = intReg(19);
    b.movi(carry, 0);
    b.movi(carry2, 0);
    b.movi(i, 0);
    b.label("addloop");
    b.beginStrands(2);
    b.strand(0);
    b.slli(addr, i, 3);
    b.add(tmp, addr, ab);
    b.load(da, tmp, 0);
    b.add(tmp, addr, bb);
    b.load(dbv, tmp, 0);
    b.add(sum, da, dbv);
    b.add(sum, sum, carry);
    b.srli(carry, sum, 30);
    b.andi(sum, sum, (1ll << 30) - 1);
    b.add(tmp, addr, rb);
    b.store(sum, tmp, 0);
    b.strand(1);
    b.addi(addr2, i, digits / 2);
    b.slli(addr2, addr2, 3);
    b.add(t2, addr2, ab);
    b.load(da2, t2, 0);
    b.add(t2, addr2, bb);
    b.load(db2, t2, 0);
    b.add(sum2, da2, db2);
    b.add(sum2, sum2, carry2);
    b.srli(carry2, sum2, 30);
    b.andi(sum2, sum2, (1ll << 30) - 1);
    b.add(t2, addr2, rb);
    b.store(sum2, t2, 0);
    b.weave();
    b.addi(i, i, 1);
    b.slti(tmp, i, digits / 2);
    b.bne(tmp, zeroReg, "addloop");

    // a = r * scal (single-digit multiply with carry).
    b.movi(carry, 0);
    b.movi(i, 0);
    b.label("mulloop");
    b.slli(addr, i, 3);
    b.add(tmp, addr, rb);
    b.load(da, tmp, 0);
    b.mul(prod, da, scal);
    b.add(prod, prod, carry);
    b.srli(carry, prod, 30);
    b.andi(prod, prod, (1ll << 30) - 1);
    b.add(tmp, addr, ab);
    b.store(prod, tmp, 0);
    b.addi(i, i, 1);
    b.slti(tmp, i, digits);
    b.bne(tmp, zeroReg, "mulloop");

    b.addi(iter, iter, -1);
    b.bne(iter, zeroReg, "outer");
    b.halt();
    return b.build();
}

} // namespace ctcp::workloads
