#include "stats/stats.hh"

#include <algorithm>
#include <cstdio>
#include <numeric>

namespace ctcp {

double
harmonicMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double denom = 0.0;
    for (double v : values) {
        ctcp_assert(v > 0.0, "harmonic mean requires positive values");
        denom += 1.0 / v;
    }
    return static_cast<double>(values.size()) / denom;
}

double
arithmeticMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    return std::accumulate(values.begin(), values.end(), 0.0) /
        static_cast<double>(values.size());
}

void
StatDump::scalar(const std::string &name, std::uint64_t value)
{
    entries_.push_back({name, std::to_string(value)});
}

void
StatDump::scalar(const std::string &name, double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.4f", value);
    entries_.push_back({name, buf});
}

void
StatDump::note(const std::string &name, const std::string &text)
{
    entries_.push_back({name, text});
}

void
StatGroup::addCounter(const std::string &name, const Counter &counter)
{
    Item item;
    item.name = name;
    item.counter = &counter;
    items_.push_back(std::move(item));
}

void
StatGroup::addHistogram(const std::string &name, const Histogram &histogram)
{
    Item item;
    item.name = name;
    item.histogram = &histogram;
    items_.push_back(std::move(item));
}

void
StatGroup::addFormula(const std::string &name, std::function<double()> formula)
{
    Item item;
    item.name = name;
    item.formula = std::move(formula);
    items_.push_back(std::move(item));
}

void
StatGroup::dump(StatDump &out) const
{
    for (const Item &item : items_) {
        const std::string full = name_ + "." + item.name;
        if (item.counter) {
            out.scalar(full, item.counter->value());
        } else if (item.histogram) {
            out.scalar(full + ".samples", item.histogram->samples());
            out.scalar(full + ".mean", item.histogram->mean());
            out.scalar(full + ".overflow", item.histogram->overflow());
        } else if (item.formula) {
            out.scalar(full, item.formula());
        }
    }
}

std::string
StatGroup::render() const
{
    StatDump dump;
    this->dump(dump);
    return dump.render();
}

std::string
StatDump::render() const
{
    std::size_t width = 0;
    for (const auto &e : entries_)
        width = std::max(width, e.name.size());
    std::string out;
    for (const auto &e : entries_) {
        out += e.name;
        out.append(width - e.name.size() + 2, ' ');
        out += e.value;
        out += '\n';
    }
    return out;
}

} // namespace ctcp
