/**
 * @file
 * Text-table renderer for the bench harnesses.
 *
 * Every reproduced paper table/figure is printed through this class so
 * the output format is uniform: a header row, a separator, and one row
 * per benchmark, with right-aligned numeric columns.
 */

#ifndef CTCPSIM_STATS_TABLE_HH
#define CTCPSIM_STATS_TABLE_HH

#include <string>
#include <vector>

namespace ctcp {

/** Builder for an aligned plain-text table. */
class TextTable
{
  public:
    /** @param headers column titles; fixes the column count. */
    explicit TextTable(std::vector<std::string> headers);

    /** Begin a new row; subsequent cell() calls fill it left to right. */
    TextTable &row(const std::string &first_cell);

    /** Append a preformatted cell to the current row. */
    TextTable &cell(const std::string &text);

    /** Append a numeric cell with @p decimals fraction digits. */
    TextTable &cell(double value, int decimals = 2);

    /** Append a percentage cell rendered as "12.34%". */
    TextTable &percentCell(double value, int decimals = 2);

    /** Render the whole table. */
    std::string render() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace ctcp

#endif // CTCPSIM_STATS_TABLE_HH
