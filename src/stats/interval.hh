/**
 * @file
 * Interval (epoch) statistics: periodic snapshots of simulator counters
 * turned into a time series.
 *
 * An IntervalRecorder owns a list of named columns, each backed by a
 * probe (a callable returning the current cumulative value of some
 * counter). Every N cycles the simulator calls sample(), which turns
 * the probes into one row:
 *
 *   - gauge columns report the probe value as-is (e.g. occupancy),
 *   - rate columns report the probe's delta divided by the elapsed
 *     cycles (e.g. IPC),
 *   - ratio columns report delta(numerator) / delta(denominator)
 *     (e.g. trace-cache hit rate, forwards per instruction).
 *
 * Rows accumulate in memory and render as CSV or JSON at end of run.
 * A run of C cycles sampled every N produces exactly ceil(C / N) rows:
 * one per full interval plus one trailing partial row. Output is
 * deterministic: identical runs produce byte-identical files.
 */

#ifndef CTCPSIM_STATS_INTERVAL_HH
#define CTCPSIM_STATS_INTERVAL_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hh"

namespace ctcp {

/**
 * Parse and validate an interval period argument (--interval): a
 * positive cycle count. Rejects zero, negative values, junk, and
 * periods above 1e12 cycles.
 * @throws std::invalid_argument with a usable message
 */
Cycle parseIntervalCycles(const std::string &text);

/** Fixed-cadence counter snapshotter producing a CSV/JSON time series. */
class IntervalRecorder
{
  public:
    /** Returns the current cumulative value of some statistic. */
    using Probe = std::function<double()>;

    /** @param interval sampling period in cycles (must be positive) */
    explicit IntervalRecorder(Cycle interval);

    /** Instantaneous value column (reported as sampled). */
    void addGauge(const std::string &name, Probe probe);

    /** Per-cycle rate column: delta(probe) / elapsed cycles. */
    void addRate(const std::string &name, Probe probe);

    /** Delta-ratio column: delta(num) / delta(den); 0 when flat. */
    void addRatio(const std::string &name, Probe num, Probe den);

    Cycle interval() const { return interval_; }

    /** Is a sample due at @p now? (now is the post-increment cycle.) */
    bool due(Cycle now) const { return now % interval_ == 0; }

    /**
     * Append one row stamped @p now. Ignored if @p now was already
     * sampled, so the end-of-run trailing sample cannot double-count
     * a run whose length is a multiple of the interval.
     */
    void sample(Cycle now);

    std::size_t rows() const { return rows_.size(); }

    /** Header plus one line per row. */
    std::string toCsv() const;

    /** {"interval":N,"columns":[...],"rows":[[cycle,...],...]} */
    std::string toJson() const;

    /**
     * Render to @p path — JSON when the path ends in ".json", CSV
     * otherwise. @throws std::runtime_error if the file cannot open.
     */
    void writeFile(const std::string &path) const;

  private:
    enum class Kind { Gauge, Rate, Ratio };

    struct Column
    {
        std::string name;
        Kind kind;
        Probe a;
        Probe b;        // denominator (Ratio only)
        double prevA = 0.0;
        double prevB = 0.0;
    };

    struct Row
    {
        Cycle cycle;
        std::vector<double> values;
    };

    Cycle interval_;
    Cycle lastSampled_ = 0;
    bool sampledYet_ = false;
    std::vector<Column> columns_;
    std::vector<Row> rows_;
};

} // namespace ctcp

#endif // CTCPSIM_STATS_INTERVAL_HH
