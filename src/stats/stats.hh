/**
 * @file
 * Lightweight statistics package used by every simulated structure.
 *
 * Models register named scalar counters, ratio formulas and bounded
 * histograms into a StatGroup; benches and examples render groups as
 * aligned text tables. The design intentionally mirrors the shape (not
 * the implementation) of the gem5/SimpleScalar stats packages: stats are
 * owned by the model that increments them, and groups provide uniform
 * dumping.
 */

#ifndef CTCPSIM_STATS_STATS_HH
#define CTCPSIM_STATS_STATS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace ctcp {

/** A named monotonically increasing scalar statistic. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Bounded histogram with fixed-width buckets plus an overflow bucket. */
class Histogram
{
  public:
    /**
     * @param buckets  number of regular buckets
     * @param bucket_width  width of each bucket in sample units
     */
    Histogram(std::size_t buckets, std::uint64_t bucket_width)
        : counts_(buckets + 1, 0), width_(bucket_width)
    {
        ctcp_assert(buckets > 0 && bucket_width > 0,
                    "Histogram needs positive geometry");
    }

    void
    sample(std::uint64_t value, std::uint64_t count = 1)
    {
        std::size_t idx = value / width_;
        if (idx >= counts_.size() - 1)
            idx = counts_.size() - 1;
        counts_[idx] += count;
        total_ += count;
        sum_ += value * count;
    }

    std::uint64_t bucketCount(std::size_t i) const { return counts_.at(i); }
    std::size_t buckets() const { return counts_.size() - 1; }
    std::uint64_t overflow() const { return counts_.back(); }
    std::uint64_t samples() const { return total_; }

    /** Arithmetic mean of all samples; 0 when empty. */
    double
    mean() const
    {
        return total_ ? static_cast<double>(sum_) / static_cast<double>(total_)
                      : 0.0;
    }

    void
    reset()
    {
        std::fill(counts_.begin(), counts_.end(), 0);
        total_ = 0;
        sum_ = 0;
    }

  private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t width_;
    std::uint64_t total_ = 0;
    std::uint64_t sum_ = 0;
};

/** Percentage of @p num over @p den; 0 when the denominator is zero. */
inline double
percent(std::uint64_t num, std::uint64_t den)
{
    return den ? 100.0 * static_cast<double>(num) / static_cast<double>(den)
               : 0.0;
}

/** Plain ratio of @p num over @p den; 0 when the denominator is zero. */
inline double
ratio(std::uint64_t num, std::uint64_t den)
{
    return den ? static_cast<double>(num) / static_cast<double>(den) : 0.0;
}

/** Harmonic mean of a list of speedups (the paper's averaging rule). */
double harmonicMean(const std::vector<double> &values);

/** Arithmetic mean; 0 when empty. */
double arithmeticMean(const std::vector<double> &values);

/**
 * A named (name, value) listing for pretty-printing a model's stats.
 * Models expose `void dumpStats(StatDump &out) const`.
 */
class StatDump
{
  public:
    void scalar(const std::string &name, std::uint64_t value);
    void scalar(const std::string &name, double value);
    void note(const std::string &name, const std::string &text);

    /** Render as "name  value" lines with aligned columns. */
    std::string render() const;

  private:
    struct Entry
    {
        std::string name;
        std::string value;
    };
    std::vector<Entry> entries_;
};

/**
 * A named collection of registered statistics that dumps with a common
 * prefix. Stats remain owned by the model that increments them; the
 * group only holds pointers, so registration costs nothing on the hot
 * path. Histograms render as samples/mean/overflow and are safe to
 * render while empty.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    void addCounter(const std::string &name, const Counter &counter);
    void addHistogram(const std::string &name, const Histogram &histogram);
    /** Derived value computed at dump time (e.g. a hit rate). */
    void addFormula(const std::string &name, std::function<double()> formula);

    const std::string &name() const { return name_; }

    /** Append every registered stat to @p out as "<group>.<stat>". */
    void dump(StatDump &out) const;

    /** Convenience: dump into a fresh StatDump and render it. */
    std::string render() const;

  private:
    struct Item
    {
        std::string name;
        const Counter *counter = nullptr;
        const Histogram *histogram = nullptr;
        std::function<double()> formula;
    };

    std::string name_;
    std::vector<Item> items_;
};

} // namespace ctcp

#endif // CTCPSIM_STATS_STATS_HH
