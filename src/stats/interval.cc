#include "stats/interval.hh"

#include <cinttypes>
#include <cstdio>
#include <stdexcept>

#include "common/atomic_file.hh"
#include "common/logging.hh"

namespace ctcp {

namespace {

/** Fixed-precision value formatting so reruns are byte-identical. */
std::string
fmtValue(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    return buf;
}

} // namespace

Cycle
parseIntervalCycles(const std::string &text)
{
    std::size_t pos = 0;
    long long value = 0;
    try {
        value = std::stoll(text, &pos);
    } catch (const std::exception &) {
        throw std::invalid_argument("invalid interval '" + text +
                                    "' (expected a positive cycle count)");
    }
    if (pos != text.size())
        throw std::invalid_argument("invalid interval '" + text +
                                    "' (expected a positive cycle count)");
    if (value <= 0)
        throw std::invalid_argument(
            "interval must be a positive cycle count, got " + text);
    if (value > 1000000000000ll)
        throw std::invalid_argument(
            "interval " + text + " is unreasonably large (max 1e12)");
    return static_cast<Cycle>(value);
}

IntervalRecorder::IntervalRecorder(Cycle interval)
    : interval_(interval)
{
    ctcp_assert(interval_ > 0, "IntervalRecorder needs a positive interval");
}

void
IntervalRecorder::addGauge(const std::string &name, Probe probe)
{
    columns_.push_back({name, Kind::Gauge, std::move(probe), {}, 0.0, 0.0});
}

void
IntervalRecorder::addRate(const std::string &name, Probe probe)
{
    columns_.push_back({name, Kind::Rate, std::move(probe), {}, 0.0, 0.0});
}

void
IntervalRecorder::addRatio(const std::string &name, Probe num, Probe den)
{
    columns_.push_back(
        {name, Kind::Ratio, std::move(num), std::move(den), 0.0, 0.0});
}

void
IntervalRecorder::sample(Cycle now)
{
    if (sampledYet_ && now <= lastSampled_)
        return;
    const double elapsed =
        static_cast<double>(now - (sampledYet_ ? lastSampled_ : 0));
    Row row;
    row.cycle = now;
    row.values.reserve(columns_.size());
    for (Column &col : columns_) {
        const double a = col.a();
        double value = 0.0;
        switch (col.kind) {
          case Kind::Gauge:
            value = a;
            break;
          case Kind::Rate:
            value = elapsed > 0.0 ? (a - col.prevA) / elapsed : 0.0;
            break;
          case Kind::Ratio: {
            const double b = col.b();
            const double db = b - col.prevB;
            value = db != 0.0 ? (a - col.prevA) / db : 0.0;
            col.prevB = b;
            break;
          }
        }
        col.prevA = a;
        row.values.push_back(value);
    }
    rows_.push_back(std::move(row));
    lastSampled_ = now;
    sampledYet_ = true;
}

std::string
IntervalRecorder::toCsv() const
{
    std::string out = "cycle";
    for (const Column &col : columns_) {
        out += ',';
        out += col.name;
    }
    out += '\n';
    for (const Row &row : rows_) {
        out += std::to_string(row.cycle);
        for (double v : row.values) {
            out += ',';
            out += fmtValue(v);
        }
        out += '\n';
    }
    return out;
}

std::string
IntervalRecorder::toJson() const
{
    std::string out = "{\n  \"interval\": " + std::to_string(interval_) +
        ",\n  \"columns\": [\"cycle\"";
    for (const Column &col : columns_)
        out += ", \"" + col.name + "\"";
    out += "],\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
        out += "    [" + std::to_string(rows_[i].cycle);
        for (double v : rows_[i].values)
            out += ", " + fmtValue(v);
        out += i + 1 < rows_.size() ? "],\n" : "]\n";
    }
    out += "  ]\n}\n";
    return out;
}

void
IntervalRecorder::writeFile(const std::string &path) const
{
    const bool json = path.size() >= 5 &&
        path.compare(path.size() - 5, 5, ".json") == 0;
    // Staged + renamed: an interrupted run never leaves a truncated
    // stats file at the target path.
    atomicWriteFile(path, json ? toJson() : toCsv());
}

} // namespace ctcp
