#include "stats/table.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"

namespace ctcp {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    ctcp_assert(!headers_.empty(), "TextTable needs at least one column");
}

TextTable &
TextTable::row(const std::string &first_cell)
{
    rows_.emplace_back();
    rows_.back().push_back(first_cell);
    return *this;
}

TextTable &
TextTable::cell(const std::string &text)
{
    ctcp_assert(!rows_.empty(), "cell() before row()");
    ctcp_assert(rows_.back().size() < headers_.size(),
                "row has more cells than headers");
    rows_.back().push_back(text);
    return *this;
}

TextTable &
TextTable::cell(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return cell(std::string(buf));
}

TextTable &
TextTable::percentCell(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, value);
    return cell(std::string(buf));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &r : rows_)
        for (std::size_t c = 0; c < r.size(); ++c)
            widths[c] = std::max(widths[c], r[c].size());

    auto emit_row = [&](const std::vector<std::string> &cells,
                        std::string &out) {
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            const std::string text = c < cells.size() ? cells[c] : "";
            if (c == 0) {
                // Left-align the label column.
                out += text;
                out.append(widths[c] - text.size(), ' ');
            } else {
                out += "  ";
                out.append(widths[c] - text.size(), ' ');
                out += text;
            }
        }
        out += '\n';
    };

    std::string out;
    emit_row(headers_, out);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c ? 2 : 0);
    out.append(total, '-');
    out += '\n';
    for (const auto &r : rows_)
        emit_row(r, out);
    return out;
}

} // namespace ctcp
