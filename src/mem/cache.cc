#include "mem/cache.hh"

namespace ctcp {

SetAssocCache::SetAssocCache(unsigned sets, unsigned assoc,
                             unsigned line_bytes)
    : sets_(sets), assoc_(assoc), lineBytes_(line_bytes)
{
    ctcp_assert(isPowerOfTwo(sets) && isPowerOfTwo(line_bytes),
                "cache sets and line size must be powers of two");
    ctcp_assert(assoc > 0, "cache associativity must be positive");
    lineShift_ = floorLog2(line_bytes);
    setsLog2_ = floorLog2(sets);
    ways_.resize(static_cast<std::size_t>(sets) * assoc);
}

bool
SetAssocCache::access(Addr addr, bool allocate)
{
    const Addr line = lineAddr(addr);
    const unsigned set = setIndex(line);
    const Addr tag = tagOf(line);
    Way *base = &ways_[static_cast<std::size_t>(set) * assoc_];

    ++useClock_;
    for (unsigned w = 0; w < assoc_; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            base[w].lastUse = useClock_;
            ++hits_;
            return true;
        }
    }
    ++misses_;
    if (allocate) {
        Way *victim = &base[0];
        for (unsigned w = 1; w < assoc_; ++w) {
            if (!base[w].valid) { victim = &base[w]; break; }
            if (base[w].lastUse < victim->lastUse && victim->valid)
                victim = &base[w];
        }
        victim->valid = true;
        victim->tag = tag;
        victim->lastUse = useClock_;
    }
    return false;
}

bool
SetAssocCache::probe(Addr addr) const
{
    const Addr line = lineAddr(addr);
    const unsigned set = setIndex(line);
    const Addr tag = tagOf(line);
    const Way *base = &ways_[static_cast<std::size_t>(set) * assoc_];
    for (unsigned w = 0; w < assoc_; ++w)
        if (base[w].valid && base[w].tag == tag)
            return true;
    return false;
}

void
SetAssocCache::invalidate(Addr addr)
{
    const Addr line = lineAddr(addr);
    const unsigned set = setIndex(line);
    const Addr tag = tagOf(line);
    Way *base = &ways_[static_cast<std::size_t>(set) * assoc_];
    for (unsigned w = 0; w < assoc_; ++w)
        if (base[w].valid && base[w].tag == tag)
            base[w].valid = false;
}

void
SetAssocCache::reset()
{
    for (Way &w : ways_)
        w.valid = false;
    useClock_ = 0;
    hits_.reset();
    misses_.reset();
}

} // namespace ctcp
