#include "mem/dmem.hh"

#include <algorithm>

#include "obs/sink.hh"

namespace ctcp {

namespace {

/** Mem-event payload: the level that serviced the load. */
std::int64_t
serviceLevel(const DataMemorySystem::LoadResult &res)
{
    if (res.forwarded)
        return 0;
    if (res.l1Hit)
        return 1;
    if (res.l2Hit)
        return 2;
    return 3;
}

} // namespace

Cycle
PortSchedule::reserve(Cycle now)
{
    // Drop bookings for cycles that have passed.
    while (!booked_.empty() && booked_.front().first < now)
        booked_.pop_front();

    Cycle candidate = now;
    while (true) {
        auto it = std::find_if(booked_.begin(), booked_.end(),
            [candidate](const auto &p) { return p.first == candidate; });
        if (it == booked_.end()) {
            booked_.emplace_back(candidate, 1u);
            return candidate;
        }
        if (it->second < ports_) {
            ++it->second;
            return candidate;
        }
        ++candidate;
    }
}

DataMemorySystem::DataMemorySystem(const MemConfig &cfg)
    : cfg_(cfg),
      l1d_(cfg.l1dSets, cfg.l1dAssoc, cfg.l1dLineBytes),
      l2_(cfg.l2Sets, cfg.l2Assoc, cfg.l2LineBytes),
      dtlb_(cfg.dtlbEntries / cfg.dtlbAssoc, cfg.dtlbAssoc, 1),
      mshrs_(cfg.mshrs),
      ports_(cfg.cachePorts)
{}

void
DataMemorySystem::drainStores(Cycle now)
{
    while (!storeBuffer_.empty() && storeBuffer_.front().drained <= now)
        storeBuffer_.pop_front();
}

void
DataMemorySystem::expireLoads(Cycle now)
{
    std::erase_if(loadQueue_, [now](Cycle done) { return done <= now; });
}

bool
DataMemorySystem::loadQueueFull(Cycle now)
{
    expireLoads(now);
    const bool full = loadQueue_.size() >= cfg_.loadQueueEntries;
    if (full)
        ++loadQueueStalls_;
    return full;
}

bool
DataMemorySystem::storeBufferFull(Cycle now)
{
    drainStores(now);
    const bool full = storeBuffer_.size() >= cfg_.storeBufferEntries;
    if (full)
        ++storeBufferStalls_;
    return full;
}

DataMemorySystem::LoadResult
DataMemorySystem::load(Addr addr, Cycle now)
{
    ++loads_;
    expireLoads(now);
    ctcp_assert(loadQueue_.size() < cfg_.loadQueueEntries,
                "load issued with a full load queue");

    LoadResult res;

    // D-TLB first; a miss serializes before the cache access.
    const Addr page = addr / cfg_.pageBytes;
    res.tlbHit = dtlb_.access(page);
    Cycle start = now + (res.tlbHit ? cfg_.dtlbHitLatency
                                    : cfg_.dtlbMissLatency);
    if (!res.tlbHit)
        ++tlbMisses_;

    // Store-to-load forwarding from the committed-store buffer.
    drainStores(now);
    const Addr word = addr >> 3;
    for (const PendingStore &st : storeBuffer_) {
        if (st.wordAddr == word) {
            res.forwarded = true;
            ++forwards_;
            res.ready = start + 1;
            loadQueue_.push_back(res.ready);
            if (obs_ && obs_->enabled(ObsKind::Mem))
                recordLoad(addr, now, res);
            return res;
        }
    }

    start = ports_.reserve(start);

    res.l1Hit = l1d_.access(addr);
    if (res.l1Hit) {
        res.ready = start + cfg_.l1dHitLatency;
        // The tag may be present while its fill is still in flight
        // (allocate-on-miss): such a "hit" completes with the fill.
        mshrs_.expire(start);
        const Cycle pending = mshrs_.outstanding(l1d_.lineAddr(addr));
        if (pending != neverCycle) {
            mshrs_.noteMerge();
            res.ready = std::max(res.ready, pending);
        }
    } else {
        const Addr line = l1d_.lineAddr(addr);
        mshrs_.expire(start);
        const Cycle pending = mshrs_.outstanding(line);
        if (pending != neverCycle) {
            // Secondary miss merges into the outstanding fill.
            mshrs_.noteMerge();
            res.ready = pending;
        } else {
            res.l2Hit = l2_.access(addr);
            Cycle fill = start + cfg_.l1dHitLatency + cfg_.l2ExtraLatency;
            if (!res.l2Hit)
                fill += cfg_.memLatency;
            if (mshrs_.full()) {
                // Wait for the earliest outstanding fill to free an entry.
                const Cycle free_at = mshrs_.earliestReady();
                ctcp_assert(free_at != neverCycle,
                            "full MSHR file with no outstanding fills");
                fill += free_at > start ? free_at - start : 0;
                mshrs_.expire(free_at);
            }
            mshrs_.allocate(line, fill);
            res.ready = fill;
        }
    }
    loadQueue_.push_back(res.ready);
    if (obs_ && obs_->enabled(ObsKind::Mem))
        recordLoad(addr, now, res);
    return res;
}

void
DataMemorySystem::recordLoad(Addr addr, Cycle now,
                             const LoadResult &res) const
{
    ObsEvent ev;
    ev.cycle = now;
    ev.kind = ObsKind::Mem;
    ev.arg0 = static_cast<std::int64_t>(addr);
    ev.arg1 = serviceLevel(res);
    ev.dur = res.ready - now;
    obs_->record(ev);
}

bool
DataMemorySystem::store(Addr addr, Cycle now)
{
    drainStores(now);
    if (storeBuffer_.size() >= cfg_.storeBufferEntries) {
        ++storeBufferStalls_;
        return false;
    }
    ++stores_;
    // Stores drain in order, one per cycle, at L1 occupancy. A store
    // miss allocates (write-allocate) with the usual fill latency but
    // does not block the buffer slot beyond the drain point.
    const Cycle slot = std::max(now, lastStoreDrain_ + 1);
    const Cycle port = ports_.reserve(slot);
    const bool l1_hit = l1d_.access(addr);
    Cycle drained = port + cfg_.l1dHitLatency;
    if (!l1_hit) {
        const bool l2_hit = l2_.access(addr);
        drained += cfg_.l2ExtraLatency + (l2_hit ? 0 : cfg_.memLatency);
    }
    lastStoreDrain_ = slot;
    storeBuffer_.push_back({addr >> 3, drained});
    return true;
}

void
DataMemorySystem::dumpStats(StatDump &out) const
{
    out.scalar("dmem.loads", loads_.value());
    out.scalar("dmem.stores", stores_.value());
    out.scalar("dmem.store_forwards", forwards_.value());
    out.scalar("dmem.l1d_hits", l1d_.hits());
    out.scalar("dmem.l1d_misses", l1d_.misses());
    out.scalar("dmem.l2_hits", l2_.hits());
    out.scalar("dmem.l2_misses", l2_.misses());
    out.scalar("dmem.dtlb_misses", tlbMisses_.value());
    out.scalar("dmem.mshr_merges", mshrs_.merges());
    out.scalar("dmem.load_queue_stalls", loadQueueStalls_.value());
    out.scalar("dmem.store_buffer_stalls", storeBufferStalls_.value());
}

InstMemory::InstMemory(const FrontEndConfig &cfg, DataMemorySystem &dmem)
    : l1i_(cfg.icacheSets, cfg.icacheAssoc, cfg.icacheLineBytes),
      dmem_(dmem)
{}

unsigned
InstMemory::fetchPenalty(Addr addr)
{
    if (l1i_.access(addr))
        return 0;
    const bool l2_hit = dmem_.sharedL2().access(addr);
    return dmem_.l2ExtraLatency() + (l2_hit ? 0 : dmem_.memLatency());
}

} // namespace ctcp
