#include "mem/mshr.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ctcp {

MshrFile::MshrFile(unsigned entries)
    : capacity_(entries)
{
    ctcp_assert(entries > 0, "MSHR file needs at least one entry");
}

void
MshrFile::expire(Cycle now)
{
    std::erase_if(entries_, [now](const Entry &e) { return e.ready <= now; });
}

Cycle
MshrFile::outstanding(Addr line) const
{
    for (const Entry &e : entries_)
        if (e.line == line)
            return e.ready;
    return neverCycle;
}

void
MshrFile::allocate(Addr line, Cycle ready)
{
    ctcp_assert(!full(), "allocate on a full MSHR file");
    ctcp_assert(outstanding(line) == neverCycle,
                "duplicate MSHR allocation for one line");
    entries_.push_back({line, ready});
}

Cycle
MshrFile::earliestReady() const
{
    Cycle best = neverCycle;
    for (const Entry &e : entries_)
        best = std::min(best, e.ready);
    return best;
}

} // namespace ctcp
