/**
 * @file
 * Generic set-associative tag array with true-LRU replacement.
 *
 * Used for L1D, unified L2, L1I and (over page numbers) the D-TLB.
 * This is a timing model only — data contents live in the functional
 * simulator's SparseMemory — so the cache tracks tags, not bytes.
 */

#ifndef CTCPSIM_MEM_CACHE_HH
#define CTCPSIM_MEM_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "common/types.hh"
#include "stats/stats.hh"

namespace ctcp {

/** Tag-only set-associative cache with LRU replacement. */
class SetAssocCache
{
  public:
    /**
     * @param sets        number of sets (power of two)
     * @param assoc       ways per set
     * @param line_bytes  bytes per line (power of two)
     */
    SetAssocCache(unsigned sets, unsigned assoc, unsigned line_bytes);

    /**
     * Look up @p addr; on a miss, optionally allocate (evicting LRU).
     *
     * @return true on hit.
     */
    bool access(Addr addr, bool allocate = true);

    /** Look up without changing any state (for tests and probes). */
    bool probe(Addr addr) const;

    /** Invalidate the line containing @p addr if present. */
    void invalidate(Addr addr);

    /** Drop all lines. */
    void reset();

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }

    unsigned sets() const { return sets_; }
    unsigned assoc() const { return assoc_; }
    unsigned lineBytes() const { return lineBytes_; }

    /** Line-aligned address (identifies a cache line). */
    Addr lineAddr(Addr addr) const { return addr >> lineShift_; }

  private:
    struct Way
    {
        Addr tag = 0;
        bool valid = false;
        std::uint64_t lastUse = 0;
    };

    unsigned setIndex(Addr line) const { return line & (sets_ - 1); }
    Addr tagOf(Addr line) const { return line >> setsLog2_; }

    unsigned sets_;
    unsigned assoc_;
    unsigned lineBytes_;
    unsigned lineShift_;
    unsigned setsLog2_;
    std::vector<Way> ways_;   ///< sets_ * assoc_, row-major by set
    std::uint64_t useClock_ = 0;
    Counter hits_;
    Counter misses_;
};

} // namespace ctcp

#endif // CTCPSIM_MEM_CACHE_HH
