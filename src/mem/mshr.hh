/**
 * @file
 * Miss-status holding registers: track outstanding cache-line fills so
 * that misses to the same line merge, and so the miss count in flight
 * is bounded (16 MSHRs in the paper's configuration).
 */

#ifndef CTCPSIM_MEM_MSHR_HH
#define CTCPSIM_MEM_MSHR_HH

#include <vector>

#include "common/types.hh"
#include "stats/stats.hh"

namespace ctcp {

/** Fixed-size MSHR file keyed by cache-line address. */
class MshrFile
{
  public:
    explicit MshrFile(unsigned entries);

    /**
     * Reclaim entries whose fill completed at or before @p now.
     * Call once per request before allocate/lookup.
     */
    void expire(Cycle now);

    /** Fill-completion cycle of an outstanding miss, or neverCycle. */
    Cycle outstanding(Addr line) const;

    /** True if no free entry remains (after expire()). */
    bool full() const { return entries_.size() >= capacity_; }

    /**
     * Track a new outstanding fill.
     * @pre !full() and no entry for @p line exists.
     */
    void allocate(Addr line, Cycle ready);

    /** Earliest completion among outstanding fills (neverCycle if none). */
    Cycle earliestReady() const;

    std::size_t inFlight() const { return entries_.size(); }
    std::uint64_t merges() const { return merges_.value(); }

    /** Count a merged (secondary) miss; bookkeeping for stats. */
    void noteMerge() { ++merges_; }

  private:
    struct Entry
    {
        Addr line;
        Cycle ready;
    };

    unsigned capacity_;
    std::vector<Entry> entries_;
    Counter merges_;
};

} // namespace ctcp

#endif // CTCPSIM_MEM_MSHR_HH
