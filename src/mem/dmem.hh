/**
 * @file
 * Data-memory subsystem: D-TLB, L1D, unified L2, MSHRs, store buffer
 * with store-to-load forwarding, load queue and cache-port arbitration.
 *
 * This is a latency model: the timing core asks "a load to address A
 * issues now; when is its data ready?". Data values come from the
 * functional simulator. The component structure and parameters follow
 * Table 7 of the paper (32 KB 4-way L1D at 2 cycles, 1 MB 4-way L2 at
 * +8, 128-entry D-TLB at 1/30 cycles, 32-entry store buffer with load
 * forwarding, 32-entry load queue, 16 MSHRs, 4 ports, +65 cycles to
 * main memory).
 */

#ifndef CTCPSIM_MEM_DMEM_HH
#define CTCPSIM_MEM_DMEM_HH

#include <deque>
#include <vector>

#include "config/sim_config.hh"
#include "mem/cache.hh"
#include "mem/mshr.hh"
#include "stats/stats.hh"

namespace ctcp {

class ObsSink;

/** Arbitrates a fixed number of access ports per cycle. */
class PortSchedule
{
  public:
    explicit PortSchedule(unsigned ports_per_cycle)
        : ports_(ports_per_cycle)
    {
        ctcp_assert(ports_per_cycle > 0, "need at least one port");
    }

    /** Earliest cycle >= @p now with a free port; books the port. */
    Cycle reserve(Cycle now);

  private:
    unsigned ports_;
    /** (cycle, ports already booked) for current and future cycles. */
    std::deque<std::pair<Cycle, unsigned>> booked_;
};

/** The complete data-side memory hierarchy. */
class DataMemorySystem
{
  public:
    explicit DataMemorySystem(const MemConfig &cfg);

    /** Outcome of a timed load access. */
    struct LoadResult
    {
        Cycle ready = 0;        ///< cycle the data is available
        bool forwarded = false; ///< satisfied by the store buffer
        bool l1Hit = false;
        bool l2Hit = false;
        bool tlbHit = false;
    };

    /**
     * Issue a load whose effective address is resolved at @p now.
     * @pre !loadQueueFull()
     */
    LoadResult load(Addr addr, Cycle now);

    /**
     * Insert a committed store into the store buffer.
     * @return false when the buffer is full (caller must stall retire).
     */
    bool store(Addr addr, Cycle now);

    /** True when no load-queue entry is free (after expiry at @p now). */
    bool loadQueueFull(Cycle now);

    /** True when no store-buffer entry is free (after draining). */
    bool storeBufferFull(Cycle now);

    /** Per-level statistics. */
    void dumpStats(StatDump &out) const;

    /** Attach an observability sink (null = off, the default). */
    void setObs(ObsSink *obs) { obs_ = obs; }

    std::uint64_t loads() const { return loads_.value(); }
    std::uint64_t stores() const { return stores_.value(); }
    std::uint64_t forwards() const { return forwards_.value(); }
    const SetAssocCache &l1d() const { return l1d_; }
    const SetAssocCache &l2() const { return l2_; }

    /** The unified L2 is shared with the instruction side. */
    SetAssocCache &sharedL2() { return l2_; }
    unsigned l2ExtraLatency() const { return cfg_.l2ExtraLatency; }
    unsigned memLatency() const { return cfg_.memLatency; }

  private:
    void drainStores(Cycle now);
    void expireLoads(Cycle now);
    /** Cold path: caller checks obs_ && enabled(ObsKind::Mem) first. */
    [[gnu::noinline]] [[gnu::cold]] void
    recordLoad(Addr addr, Cycle now, const LoadResult &res) const;

    MemConfig cfg_;
    SetAssocCache l1d_;
    SetAssocCache l2_;
    SetAssocCache dtlb_;   ///< indexed by page number
    MshrFile mshrs_;
    PortSchedule ports_;
    ObsSink *obs_ = nullptr;

    struct PendingStore
    {
        Addr wordAddr;
        Cycle drained;   ///< cycle it leaves the buffer
    };
    std::deque<PendingStore> storeBuffer_;
    Cycle lastStoreDrain_ = 0;

    std::vector<Cycle> loadQueue_;   ///< completion cycles of in-flight loads

    Counter loads_;
    Counter stores_;
    Counter forwards_;
    Counter tlbMisses_;
    Counter loadQueueStalls_;
    Counter storeBufferStalls_;
};

/** Instruction-side memory: L1I backed by the shared unified L2. */
class InstMemory
{
  public:
    InstMemory(const FrontEndConfig &cfg, DataMemorySystem &dmem);

    /**
     * Extra fetch latency (beyond the pipelined fetch stages) for the
     * line containing byte address @p addr: 0 on an L1I hit.
     */
    unsigned fetchPenalty(Addr addr);

    const SetAssocCache &l1i() const { return l1i_; }

  private:
    SetAssocCache l1i_;
    DataMemorySystem &dmem_;
};

} // namespace ctcp

#endif // CTCPSIM_MEM_DMEM_HH
