/**
 * @file
 * Bump-pointer arena for per-run simulator working state.
 *
 * A campaign worker runs thousands of simulator jobs back to back;
 * each job allocates the same transient per-instruction state
 * (TimedInst slots, their cold side arrays) and frees it all at once
 * when the job ends. The arena turns that churn into pointer bumps
 * over a set of retained chunks: reset() rewinds the bump cursor
 * without returning memory to the OS, so the steady state of a
 * campaign performs no malloc/free on the simulation hot path at all.
 *
 * The arena hands out raw storage only — it never runs constructors
 * or destructors. Owners of non-trivial objects placed in arena
 * storage (e.g. TimedInstPool) must destroy them before reset().
 */

#ifndef CTCPSIM_COMMON_ARENA_HH
#define CTCPSIM_COMMON_ARENA_HH

#include <cstddef>
#include <memory>
#include <vector>

namespace ctcp {

/** Chunked bump allocator with O(1) whole-arena reset. */
class Arena
{
  public:
    /** @param chunk_bytes capacity of each chunk (oversize requests
     *         get a dedicated chunk of their own size). */
    explicit Arena(std::size_t chunk_bytes = 1u << 16)
        : chunkBytes_(chunk_bytes)
    {}

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /** Aligned storage for @p bytes; never returns null (throws
     *  std::bad_alloc like operator new). */
    void *allocate(std::size_t bytes, std::size_t align);

    /** Typed convenience: storage for @p n objects of T (no ctors). */
    template <typename T>
    T *
    allocate(std::size_t n)
    {
        return static_cast<T *>(allocate(n * sizeof(T), alignof(T)));
    }

    /**
     * Rewind to empty, retaining every chunk for reuse. All storage
     * handed out so far becomes invalid.
     */
    void reset();

    /** Bytes currently handed out (since construction or reset). */
    std::size_t used() const { return used_; }

    /** Total chunk capacity held (high-water mark across resets). */
    std::size_t capacity() const;

    std::size_t chunks() const { return chunks_.size(); }

  private:
    struct Chunk
    {
        std::unique_ptr<std::byte[]> data;
        std::size_t size = 0;
    };

    std::size_t chunkBytes_;
    std::vector<Chunk> chunks_;
    /** Chunk the bump cursor sits in (== chunks_.size() when empty). */
    std::size_t cur_ = 0;
    /** Bump offset within the current chunk. */
    std::size_t offset_ = 0;
    std::size_t used_ = 0;
};

} // namespace ctcp

#endif // CTCPSIM_COMMON_ARENA_HH
