#include "common/sim_error.hh"

namespace ctcp {

const char *
errorCategoryName(ErrorCategory category)
{
    switch (category) {
      case ErrorCategory::Config:    return "config";
      case ErrorCategory::Workload:  return "workload";
      case ErrorCategory::Timeout:   return "timeout";
      case ErrorCategory::Hang:      return "hang";
      case ErrorCategory::Invariant: return "invariant";
      case ErrorCategory::Internal:  return "internal";
      case ErrorCategory::Cancelled: return "cancelled";
    }
    return "internal";
}

ErrorCategory
errorCategoryFromName(const std::string &name)
{
    if (name == "config")    return ErrorCategory::Config;
    if (name == "workload")  return ErrorCategory::Workload;
    if (name == "timeout")   return ErrorCategory::Timeout;
    if (name == "hang")      return ErrorCategory::Hang;
    if (name == "invariant") return ErrorCategory::Invariant;
    if (name == "cancelled") return ErrorCategory::Cancelled;
    return ErrorCategory::Internal;
}

} // namespace ctcp
