#include "common/arena.hh"

#include <cstdint>

namespace ctcp {

void *
Arena::allocate(std::size_t bytes, std::size_t align)
{
    if (bytes == 0)
        bytes = 1;
    // Walk forward through retained chunks until one fits; after a
    // reset this reuses the chunks allocated by earlier runs.
    while (cur_ < chunks_.size()) {
        Chunk &chunk = chunks_[cur_];
        const std::uintptr_t base =
            reinterpret_cast<std::uintptr_t>(chunk.data.get());
        const std::size_t aligned =
            (base + offset_ + (align - 1)) & ~(std::uintptr_t{align} - 1);
        const std::size_t start = aligned - base;
        if (start + bytes <= chunk.size) {
            offset_ = start + bytes;
            used_ += bytes;
            return chunk.data.get() + start;
        }
        ++cur_;
        offset_ = 0;
    }
    // No retained chunk fits: grow. Oversize requests get a chunk of
    // their own so chunkBytes_ stays the steady-state granularity.
    const std::size_t size =
        bytes + align > chunkBytes_ ? bytes + align : chunkBytes_;
    Chunk chunk;
    chunk.data = std::make_unique<std::byte[]>(size);
    chunk.size = size;
    chunks_.push_back(std::move(chunk));
    cur_ = chunks_.size() - 1;
    offset_ = 0;
    return allocate(bytes, align);
}

void
Arena::reset()
{
    cur_ = 0;
    offset_ = 0;
    used_ = 0;
}

std::size_t
Arena::capacity() const
{
    std::size_t total = 0;
    for (const Chunk &chunk : chunks_)
        total += chunk.size;
    return total;
}

} // namespace ctcp
