/**
 * @file
 * Fixed-capacity FIFO used for pipeline latches, the ROB, the load queue
 * and the store buffer.
 *
 * Entries keep stable indices while resident, supporting "squash all
 * entries younger than X" which out-of-order structures need.
 */

#ifndef CTCPSIM_COMMON_CIRCULAR_QUEUE_HH
#define CTCPSIM_COMMON_CIRCULAR_QUEUE_HH

#include <cstddef>
#include <vector>

#include "common/logging.hh"

namespace ctcp {

/**
 * Bounded circular FIFO.
 *
 * @tparam T element type; must be movable.
 */
template <typename T>
class CircularQueue
{
  public:
    explicit CircularQueue(std::size_t capacity)
        : storage_(capacity), head_(0), count_(0)
    {
        ctcp_assert(capacity > 0, "CircularQueue capacity must be positive");
    }

    std::size_t capacity() const { return storage_.size(); }
    std::size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }
    bool full() const { return count_ == storage_.size(); }

    /** Append to the tail. @pre !full(). */
    void
    pushBack(T value)
    {
        ctcp_assert(!full(), "pushBack on a full CircularQueue");
        storage_[physical(count_)] = std::move(value);
        ++count_;
    }

    /** Remove the head element. @pre !empty(). */
    void
    popFront()
    {
        ctcp_assert(!empty(), "popFront on an empty CircularQueue");
        head_ = (head_ + 1) % storage_.size();
        --count_;
    }

    /** Drop the newest @p n elements from the tail. @pre n <= size(). */
    void
    popBack(std::size_t n = 1)
    {
        ctcp_assert(n <= count_, "popBack past the head");
        count_ -= n;
    }

    /** Head (oldest) element. @pre !empty(). */
    T &front() { ctcp_assert(!empty(), "front of empty queue"); return storage_[head_]; }
    const T &front() const { ctcp_assert(!empty(), "front of empty queue"); return storage_[head_]; }

    /** Tail (youngest) element. @pre !empty(). */
    T &back() { ctcp_assert(!empty(), "back of empty queue"); return storage_[physical(count_ - 1)]; }
    const T &back() const { ctcp_assert(!empty(), "back of empty queue"); return storage_[physical(count_ - 1)]; }

    /** Element @p i positions behind the head (0 == oldest). */
    T &
    at(std::size_t i)
    {
        ctcp_assert(i < count_, "CircularQueue index out of range");
        return storage_[physical(i)];
    }

    const T &
    at(std::size_t i) const
    {
        ctcp_assert(i < count_, "CircularQueue index out of range");
        return storage_[physical(i)];
    }

    void
    clear()
    {
        head_ = 0;
        count_ = 0;
    }

  private:
    std::size_t physical(std::size_t logical) const
    {
        return (head_ + logical) % storage_.size();
    }

    std::vector<T> storage_;
    std::size_t head_;
    std::size_t count_;
};

} // namespace ctcp

#endif // CTCPSIM_COMMON_CIRCULAR_QUEUE_HH
