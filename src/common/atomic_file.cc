#include "common/atomic_file.hh"

#include <stdexcept>

namespace ctcp {

AtomicFile::AtomicFile(std::string path)
    : path_(std::move(path)), tmpPath_(path_ + ".tmp")
{
    file_ = std::fopen(tmpPath_.c_str(), "w");
    if (!file_)
        throw std::runtime_error("cannot open '" + tmpPath_ +
                                 "' for writing");
}

AtomicFile::~AtomicFile()
{
    if (committed_)
        return;
    if (file_)
        std::fclose(file_);
    std::remove(tmpPath_.c_str());
}

void
AtomicFile::write(const void *data, std::size_t size)
{
    if (size > 0)
        std::fwrite(data, 1, size, file_);
}

void
AtomicFile::commit()
{
    const bool flushed = std::fflush(file_) == 0;
    std::fclose(file_);
    file_ = nullptr;
    if (!flushed) {
        std::remove(tmpPath_.c_str());
        throw std::runtime_error("error writing '" + tmpPath_ + "'");
    }
    if (std::rename(tmpPath_.c_str(), path_.c_str()) != 0) {
        std::remove(tmpPath_.c_str());
        throw std::runtime_error("cannot rename '" + tmpPath_ +
                                 "' to '" + path_ + "'");
    }
    committed_ = true;
}

void
atomicWriteFile(const std::string &path, const std::string &payload)
{
    AtomicFile file(path);
    file.write(payload);
    file.commit();
}

} // namespace ctcp
