/**
 * @file
 * Crash-safe file writing: stage the content in "<path>.tmp", then
 * rename() over the target on commit. An interrupted writer (crash,
 * kill, exception before commit) leaves the previous version of the
 * target untouched — consumers never observe a truncated file.
 */

#ifndef CTCPSIM_COMMON_ATOMIC_FILE_HH
#define CTCPSIM_COMMON_ATOMIC_FILE_HH

#include <cstdio>
#include <string>

namespace ctcp {

/**
 * A file whose content only becomes visible at commit(). Write through
 * stream() (or write()); destroying the object without committing
 * removes the temporary and leaves any existing target file as it was.
 */
class AtomicFile
{
  public:
    /** @throws std::runtime_error when the staging file cannot be opened */
    explicit AtomicFile(std::string path);
    ~AtomicFile();

    AtomicFile(const AtomicFile &) = delete;
    AtomicFile &operator=(const AtomicFile &) = delete;

    /** The staging stream; valid until commit() or destruction. */
    std::FILE *stream() { return file_; }

    void write(const void *data, std::size_t size);
    void write(const std::string &text) { write(text.data(), text.size()); }

    /**
     * Flush, close, and rename the staging file over the target.
     * @throws std::runtime_error when flushing or renaming fails
     */
    void commit();

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::string tmpPath_;
    std::FILE *file_ = nullptr;
    bool committed_ = false;
};

/** One-shot atomic write of @p payload to @p path. */
void atomicWriteFile(const std::string &path, const std::string &payload);

} // namespace ctcp

#endif // CTCPSIM_COMMON_ATOMIC_FILE_HH
