/**
 * @file
 * Small bit-manipulation helpers used by the cache, predictor and trace
 * cache indexing logic.
 */

#ifndef CTCPSIM_COMMON_BITUTIL_HH
#define CTCPSIM_COMMON_BITUTIL_HH

#include <bit>
#include <cstdint>

namespace ctcp {

/** True iff @p v is a power of two (0 is not). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)). @pre v > 0. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/** ceil(log2(v)). @pre v > 0. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return isPowerOfTwo(v) ? floorLog2(v) : floorLog2(v) + 1;
}

/** Extract bits [lo, lo+count) of @p v. */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned lo, unsigned count)
{
    return (v >> lo) & ((count >= 64) ? ~0ull : ((1ull << count) - 1));
}

/** Fold the upper bits of an address into @p width low bits (XOR hash). */
constexpr std::uint64_t
foldAddress(std::uint64_t v, unsigned width)
{
    std::uint64_t result = 0;
    while (v != 0) {
        result ^= bits(v, 0, width);
        v >>= width;
    }
    return result;
}

} // namespace ctcp

#endif // CTCPSIM_COMMON_BITUTIL_HH
