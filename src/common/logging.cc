#include "common/logging.hh"

#include <cerrno>
#include <cstdarg>
#include <cstring>
#include <ctime>
#include <mutex>
#include <vector>

#include <sys/time.h>

namespace ctcp {

// ---- Structured JSONL sink ---------------------------------------------

namespace {

struct LogSink
{
    std::mutex mutex;
    std::FILE *file = nullptr;
    LogLevel level = LogLevel::Info;
};

LogSink &
sink()
{
    static LogSink s;
    return s;
}

/** Minimal JSON string escaping (logging must not depend on json.hh). */
std::string
jsonEscapeLog(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** UTC timestamp with millisecond precision, RFC 3339. */
std::string
logTimestamp()
{
    timeval tv{};
    ::gettimeofday(&tv, nullptr);
    std::tm tm{};
    const time_t secs = tv.tv_sec;
    ::gmtime_r(&secs, &tm);
    char buf[48];
    std::snprintf(buf, sizeof(buf),
                  "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                  tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday,
                  tm.tm_hour, tm.tm_min, tm.tm_sec,
                  static_cast<int>(tv.tv_usec / 1000) % 1000);
    return buf;
}

} // namespace

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info:  return "info";
      case LogLevel::Warn:  return "warn";
      case LogLevel::Error: return "error";
    }
    return "info";
}

bool
parseLogLevel(const std::string &text, LogLevel &out)
{
    if (text == "debug")
        out = LogLevel::Debug;
    else if (text == "info")
        out = LogLevel::Info;
    else if (text == "warn" || text == "warning")
        out = LogLevel::Warn;
    else if (text == "error")
        out = LogLevel::Error;
    else
        return false;
    return true;
}

bool
logOpen(const std::string &path, LogLevel level, std::string &error)
{
    std::FILE *file = std::fopen(path.c_str(), "ab");
    if (!file) {
        error = "cannot open log file " + path + ": " +
            std::strerror(errno);
        return false;
    }
    LogSink &s = sink();
    std::lock_guard<std::mutex> lock(s.mutex);
    if (s.file)
        std::fclose(s.file);
    s.file = file;
    s.level = level;
    return true;
}

void
logClose()
{
    LogSink &s = sink();
    std::lock_guard<std::mutex> lock(s.mutex);
    if (s.file) {
        std::fclose(s.file);
        s.file = nullptr;
    }
}

bool
logEnabled()
{
    LogSink &s = sink();
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.file != nullptr;
}

void
logRecord(LogLevel level, const std::string &component,
          const std::string &traceId, const std::string &msg,
          const LogFields &fields)
{
    LogSink &s = sink();
    std::lock_guard<std::mutex> lock(s.mutex);
    if (!s.file || level < s.level)
        return;
    std::string line = "{\"ts\":\"" + logTimestamp() + "\",\"level\":\"";
    line += logLevelName(level);
    line += "\",\"component\":\"" + jsonEscapeLog(component) + "\"";
    if (!traceId.empty())
        line += ",\"trace\":\"" + jsonEscapeLog(traceId) + "\"";
    line += ",\"msg\":\"" + jsonEscapeLog(msg) + "\"";
    for (const auto &[key, value] : fields)
        line += ",\"" + jsonEscapeLog(key) + "\":\"" +
            jsonEscapeLog(value) + "\"";
    line += "}\n";
    std::fwrite(line.data(), 1, line.size(), s.file);
    // One flush per record, like the campaign journal: a crashed
    // daemon may tear the final line but never loses earlier ones.
    std::fflush(s.file);
}

namespace detail {

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (needed < 0) {
        va_end(args_copy);
        return fmt;
    }
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
    va_end(args_copy);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

} // namespace detail

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    logRecord(LogLevel::Error, "core", "",
              "panic: " + msg + " (" + file + ":" +
                  std::to_string(line) + ")");
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    logRecord(LogLevel::Error, "core", "",
              "fatal: " + msg + " (" + file + ":" +
                  std::to_string(line) + ")");
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
    logRecord(LogLevel::Warn, "core", "", msg);
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
    logRecord(LogLevel::Info, "core", "", msg);
}

} // namespace ctcp
