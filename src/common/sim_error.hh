/**
 * @file
 * Structured simulation errors.
 *
 * Everything that can go wrong in a run or a campaign job is classified
 * into a small taxonomy so callers (the campaign retry policy, the
 * journal, the CLI exit code) can react by category instead of string
 * matching:
 *
 *   Config    — the machine configuration is invalid. Not retryable;
 *               rerunning the same setup fails identically.
 *   Workload  — the workload could not be built (unknown benchmark,
 *               throwing builder). Retryable: builders may touch
 *               external state.
 *   Timeout   — the job exceeded its cooperative wall-clock deadline.
 *               Retryable (the host may simply have been loaded).
 *   Hang      — the forward-progress watchdog fired: no instruction
 *               retired for the configured number of cycles. Retryable
 *               in the campaign sense, though a deterministic hang will
 *               recur.
 *   Invariant — the invariant checker caught derived state (cached
 *               readyAt, scheduler lists, store window, trace-line
 *               permutations...) diverging from first principles. A
 *               simulator bug; never retried, so the report keeps the
 *               first observed corruption.
 *   Internal  — any other exception escaping the simulation proper.
 *   Cancelled — the job never ran: its campaign was cancelled (SIGINT
 *               on a batch run, shutdown or an explicit cancel in
 *               ctcpd) before the job started. Never retried within
 *               the cancelled campaign and never journaled, so a
 *               resume re-runs it from scratch.
 */

#ifndef CTCPSIM_COMMON_SIM_ERROR_HH
#define CTCPSIM_COMMON_SIM_ERROR_HH

#include <cstdint>
#include <stdexcept>
#include <string>

namespace ctcp {

/** Failure taxonomy for runs and campaign jobs. */
enum class ErrorCategory : std::uint8_t
{
    Config = 0,
    Workload,
    Timeout,
    Hang,
    Invariant,
    Internal,
    Cancelled,
};

/** Stable lower-case name ("config", "workload", ...). */
const char *errorCategoryName(ErrorCategory category);

/**
 * Parse a category name back (journal replay). Returns Internal for
 * unrecognized text, so a journal from a newer build still loads.
 */
ErrorCategory errorCategoryFromName(const std::string &name);

/** Is a failure of this category worth retrying (Options::maxAttempts)? */
constexpr bool
errorCategoryRetryable(ErrorCategory category)
{
    return category != ErrorCategory::Config &&
           category != ErrorCategory::Invariant &&
           category != ErrorCategory::Cancelled;
}

/** An error with a failure category attached. */
class SimError : public std::runtime_error
{
  public:
    SimError(ErrorCategory category, const std::string &what)
        : std::runtime_error(what), category_(category)
    {}

    ErrorCategory category() const { return category_; }

  private:
    ErrorCategory category_;
};

} // namespace ctcp

#endif // CTCPSIM_COMMON_SIM_ERROR_HH
