/**
 * @file
 * Error-reporting helpers in the gem5 spirit.
 *
 * panic()  — an internal simulator invariant was violated (a bug in
 *            ctcpsim itself); aborts.
 * fatal()  — the simulation cannot continue because of a user error
 *            (bad configuration, unknown benchmark name); exits(1).
 * warn()   — something questionable happened but simulation continues.
 * inform() — plain status output.
 */

#ifndef CTCPSIM_COMMON_LOGGING_HH
#define CTCPSIM_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace ctcp {

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

namespace detail {

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace detail

} // namespace ctcp

#define ctcp_panic(...) \
    ::ctcp::panicImpl(__FILE__, __LINE__, ::ctcp::detail::format(__VA_ARGS__))

#define ctcp_fatal(...) \
    ::ctcp::fatalImpl(__FILE__, __LINE__, ::ctcp::detail::format(__VA_ARGS__))

#define ctcp_warn(...) \
    ::ctcp::warnImpl(::ctcp::detail::format(__VA_ARGS__))

#define ctcp_inform(...) \
    ::ctcp::informImpl(::ctcp::detail::format(__VA_ARGS__))

/**
 * Invariant check that stays on in release builds. Use for simulator
 * self-consistency conditions whose violation means a ctcpsim bug.
 */
#define ctcp_assert(cond, ...)                                        \
    do {                                                              \
        if (!(cond)) {                                                \
            ::ctcp::panicImpl(__FILE__, __LINE__,                     \
                std::string("assertion failed: " #cond " — ") +       \
                ::ctcp::detail::format(__VA_ARGS__));                 \
        }                                                             \
    } while (0)

#endif // CTCPSIM_COMMON_LOGGING_HH
