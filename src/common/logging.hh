/**
 * @file
 * Error-reporting helpers in the gem5 spirit, plus the leveled
 * structured JSONL logger the ctcpd fleet writes through.
 *
 * panic()  — an internal simulator invariant was violated (a bug in
 *            ctcpsim itself); aborts.
 * fatal()  — the simulation cannot continue because of a user error
 *            (bad configuration, unknown benchmark name); exits(1).
 * warn()   — something questionable happened but simulation continues.
 * inform() — plain status output.
 *
 * Structured logging (ctcpd --log-file / --log-level): logOpen()
 * configures one process-global JSONL sink; logRecord() appends one
 * object per line — ts (UTC, millisecond), level, component, optional
 * trace id, msg, optional extra string fields — under an internal
 * mutex, so records from concurrent server threads never interleave.
 * Once a sink is configured, warn()/inform() additionally route their
 * messages into it (component "core"), so existing call sites show up
 * in the fleet's logs without being touched. Logging is an
 * operational side channel only: nothing here may influence
 * simulation output (DESIGN decision 13).
 */

#ifndef CTCPSIM_COMMON_LOGGING_HH
#define CTCPSIM_COMMON_LOGGING_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace ctcp {

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

// ---- Structured JSONL logging ------------------------------------------

enum class LogLevel : std::uint8_t
{
    Debug = 0,
    Info,
    Warn,
    Error,
};

/** Stable lower-case name ("debug", "info", "warn", "error"). */
const char *logLevelName(LogLevel level);

/** Parse a level name. @return false for unrecognized text. */
bool parseLogLevel(const std::string &text, LogLevel &out);

/** Extra key/value string fields appended to one record. */
using LogFields = std::vector<std::pair<std::string, std::string>>;

/**
 * Open (append) the process-global structured log sink. Records below
 * @p level are dropped. Replaces any previously-open sink.
 * @return false with a diagnostic in @p error when the file cannot be
 *         opened
 */
bool logOpen(const std::string &path, LogLevel level,
             std::string &error);

/** Flush and close the sink; further records are dropped. Idempotent. */
void logClose();

/** Is a sink configured (regardless of level)? */
bool logEnabled();

/**
 * Append one record: {"ts":...,"level":...,"component":...,
 * ["trace":...,] "msg":..., extras...}. No-op when no sink is
 * configured or @p level is below the configured threshold. @p traceId
 * is omitted when empty. Thread-safe.
 */
void logRecord(LogLevel level, const std::string &component,
               const std::string &traceId, const std::string &msg,
               const LogFields &fields = {});

namespace detail {

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace detail

} // namespace ctcp

#define ctcp_panic(...) \
    ::ctcp::panicImpl(__FILE__, __LINE__, ::ctcp::detail::format(__VA_ARGS__))

#define ctcp_fatal(...) \
    ::ctcp::fatalImpl(__FILE__, __LINE__, ::ctcp::detail::format(__VA_ARGS__))

#define ctcp_warn(...) \
    ::ctcp::warnImpl(::ctcp::detail::format(__VA_ARGS__))

#define ctcp_inform(...) \
    ::ctcp::informImpl(::ctcp::detail::format(__VA_ARGS__))

/**
 * Invariant check that stays on in release builds. Use for simulator
 * self-consistency conditions whose violation means a ctcpsim bug.
 */
#define ctcp_assert(cond, ...)                                        \
    do {                                                              \
        if (!(cond)) {                                                \
            ::ctcp::panicImpl(__FILE__, __LINE__,                     \
                std::string("assertion failed: " #cond " — ") +       \
                ::ctcp::detail::format(__VA_ARGS__));                 \
        }                                                             \
    } while (0)

#endif // CTCPSIM_COMMON_LOGGING_HH
