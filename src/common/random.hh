/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * All synthetic workload data in ctcpsim is generated through this
 * xorshift64* generator so that every simulation (and therefore every
 * reproduced table) is bit-for-bit repeatable across runs and hosts.
 * std::mt19937 is deliberately avoided in workload code because its
 * distribution adaptors are not guaranteed identical across standard
 * library implementations.
 */

#ifndef CTCPSIM_COMMON_RANDOM_HH
#define CTCPSIM_COMMON_RANDOM_HH

#include <cstdint>

#include "common/logging.hh"

namespace ctcp {

/** xorshift64* PRNG with deterministic, implementation-defined-free output. */
class Rng
{
  public:
    /** @param seed Any value; 0 is remapped to a fixed odd constant. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state_(seed ? seed : 0x9e3779b97f4a7c15ull)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = state_;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state_ = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Uniform value in [0, bound). @pre bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        ctcp_assert(bound > 0, "Rng::below requires a positive bound");
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. @pre lo <= hi. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        ctcp_assert(lo <= hi, "Rng::range requires lo <= hi");
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo) + 1));
    }

    /** Bernoulli draw: true with probability num/den. */
    bool
    chance(std::uint64_t num, std::uint64_t den)
    {
        return below(den) < num;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

  private:
    std::uint64_t state_;
};

} // namespace ctcp

#endif // CTCPSIM_COMMON_RANDOM_HH
