/**
 * @file
 * SmallVec — a vector with inline storage for the first N elements.
 *
 * Designed for the simulator's per-instruction bookkeeping (e.g. the
 * completion-waiter lists), where the common case holds one or two
 * pointers and a std::vector would pay one heap allocation per
 * instruction. Elements must be trivially copyable; growth past N
 * falls back to a heap buffer, and clear() keeps whatever capacity has
 * been acquired so a reused object stays allocation-free.
 */

#ifndef CTCPSIM_COMMON_SMALL_VEC_HH
#define CTCPSIM_COMMON_SMALL_VEC_HH

#include <cstring>
#include <type_traits>
#include <utility>

namespace ctcp {

/** Vector with inline storage for the first @p N elements. */
template <typename T, unsigned N>
class SmallVec
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "SmallVec holds trivially copyable elements only");
    static_assert(N > 0, "SmallVec needs at least one inline slot");

  public:
    SmallVec() = default;

    SmallVec(const SmallVec &other) { assign(other); }

    SmallVec(SmallVec &&other) noexcept { steal(other); }

    SmallVec &
    operator=(const SmallVec &other)
    {
        if (this != &other) {
            size_ = 0;
            assign(other);
        }
        return *this;
    }

    SmallVec &
    operator=(SmallVec &&other) noexcept
    {
        if (this != &other) {
            release();
            steal(other);
        }
        return *this;
    }

    ~SmallVec() { release(); }

    void
    push_back(T value)
    {
        if (size_ == capacity_)
            grow();
        data_[size_++] = value;
    }

    /** Drop all elements; keeps the acquired capacity for reuse. */
    void clear() { size_ = 0; }

    unsigned size() const { return size_; }
    bool empty() const { return size_ == 0; }
    unsigned capacity() const { return capacity_; }
    /** Elements still live in the inline buffer (no heap allocation). */
    bool inlined() const { return data_ == inline_; }

    T &operator[](unsigned i) { return data_[i]; }
    const T &operator[](unsigned i) const { return data_[i]; }

    T &front() { return data_[0]; }
    const T &front() const { return data_[0]; }
    T &back() { return data_[size_ - 1]; }
    const T &back() const { return data_[size_ - 1]; }

    T *begin() { return data_; }
    T *end() { return data_ + size_; }
    const T *begin() const { return data_; }
    const T *end() const { return data_ + size_; }

  private:
    void
    grow()
    {
        const unsigned cap = capacity_ * 2;
        T *heap = new T[cap];
        std::memcpy(heap, data_, size_ * sizeof(T));
        if (data_ != inline_)
            delete[] data_;
        data_ = heap;
        capacity_ = cap;
    }

    void
    assign(const SmallVec &other)
    {
        if (other.size_ > capacity_) {
            T *heap = new T[other.size_];
            if (data_ != inline_)
                delete[] data_;
            data_ = heap;
            capacity_ = other.size_;
        }
        std::memcpy(data_, other.data_, other.size_ * sizeof(T));
        size_ = other.size_;
    }

    /** Take @p other's heap buffer (or copy its inline one); empties it. */
    void
    steal(SmallVec &other) noexcept
    {
        if (other.data_ != other.inline_) {
            data_ = other.data_;
            capacity_ = other.capacity_;
            size_ = other.size_;
            other.data_ = other.inline_;
            other.capacity_ = N;
        } else {
            data_ = inline_;
            capacity_ = N;
            size_ = other.size_;
            std::memcpy(data_, other.data_, size_ * sizeof(T));
        }
        other.size_ = 0;
    }

    void
    release()
    {
        if (data_ != inline_) {
            delete[] data_;
            data_ = inline_;
            capacity_ = N;
        }
    }

    T inline_[N];
    T *data_ = inline_;
    unsigned size_ = 0;
    unsigned capacity_ = N;
};

} // namespace ctcp

#endif // CTCPSIM_COMMON_SMALL_VEC_HH
