#include "common/json.hh"

#include <cstdlib>
#include <stdexcept>

namespace ctcp::json {

const Value *
Value::find(const std::string &key) const
{
    for (const auto &[k, v] : object)
        if (k == key)
            return &v;
    return nullptr;
}

double
Value::asNumber() const
{
    return kind == Kind::Number ? std::strtod(number.c_str(), nullptr)
                                : 0.0;
}

double
Value::num(const std::string &key, double fallback) const
{
    const Value *v = find(key);
    return v && v->isNumber() ? v->asNumber() : fallback;
}

std::string
Value::str(const std::string &key) const
{
    const Value *v = find(key);
    return v && v->isString() ? v->string : std::string();
}

namespace {

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Value
    parseDocument()
    {
        Value out = parseValue();
        skipSpace();
        if (pos_ != text_.size())
            fail("trailing data after the document");
        return out;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw std::runtime_error("JSON parse error at byte " +
                                 std::to_string(pos_) + ": " + what);
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        skipSpace();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" +
                 text_[pos_] + "'");
        ++pos_;
    }

    bool
    consumeIf(char c)
    {
        if (peek() != c)
            return false;
        ++pos_;
        return true;
    }

    bool
    consumeWord(const char *word)
    {
        const std::size_t len = std::char_traits<char>::length(word);
        if (text_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }

    Value
    parseValue()
    {
        const char c = peek();
        Value out;
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"') {
            out.kind = Value::Kind::String;
            out.string = parseString();
            return out;
        }
        if (c == '-' || (c >= '0' && c <= '9'))
            return parseNumber();
        if (consumeWord("true")) {
            out.kind = Value::Kind::Bool;
            out.boolean = true;
            return out;
        }
        if (consumeWord("false")) {
            out.kind = Value::Kind::Bool;
            return out;
        }
        if (consumeWord("null"))
            return out;
        fail(std::string("unexpected character '") + c + "'");
    }

    Value
    parseObject()
    {
        expect('{');
        Value out;
        out.kind = Value::Kind::Object;
        if (consumeIf('}'))
            return out;
        while (true) {
            if (peek() != '"')
                fail("expected a string key");
            std::string key = parseString();
            expect(':');
            out.object.emplace_back(std::move(key), parseValue());
            if (consumeIf(','))
                continue;
            expect('}');
            return out;
        }
    }

    Value
    parseArray()
    {
        expect('[');
        Value out;
        out.kind = Value::Kind::Array;
        if (consumeIf(']'))
            return out;
        while (true) {
            out.array.push_back(parseValue());
            if (consumeIf(','))
                continue;
            expect(']');
            return out;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':  out += '"'; break;
              case '\\': out += '\\'; break;
              case '/':  out += '/'; break;
              case 'n':  out += '\n'; break;
              case 'r':  out += '\r'; break;
              case 't':  out += '\t'; break;
              case 'b':  out += '\b'; break;
              case 'f':  out += '\f'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("invalid \\u escape digit");
                }
                // Our writers only emit \u00xx (control characters).
                out += static_cast<char>(code & 0xff);
                break;
              }
              default:
                fail(std::string("invalid escape '\\") + esc + "'");
            }
        }
    }

    Value
    parseNumber()
    {
        const std::size_t start = pos_;
        if (text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if ((c >= '0' && c <= '9') || c == '.' || c == 'e' ||
                c == 'E' || c == '+' || c == '-')
                ++pos_;
            else
                break;
        }
        if (pos_ == start)
            fail("malformed number");
        Value out;
        out.kind = Value::Kind::Number;
        out.number = text_.substr(start, pos_ - start);
        return out;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

Value
parse(const std::string &text)
{
    return Parser(text).parseDocument();
}

} // namespace ctcp::json
