/**
 * @file
 * Fundamental scalar types shared by every ctcpsim module.
 *
 * The simulator follows SimpleScalar/gem5 conventions: addresses and
 * cycle counts are unsigned 64-bit, dynamic instructions carry a
 * monotonically increasing sequence number, and architectural registers
 * are small integer ids.
 */

#ifndef CTCPSIM_COMMON_TYPES_HH
#define CTCPSIM_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace ctcp {

/** Byte address in the simulated machine's flat address space. */
using Addr = std::uint64_t;

/** Simulated clock cycle. Cycle 0 is the first simulated cycle. */
using Cycle = std::uint64_t;

/** Monotonic id assigned to each committed dynamic instruction. */
using InstSeqNum = std::uint64_t;

/** Architectural register id (integer and FP share one flat space). */
using RegId = std::uint8_t;

/** Execution cluster index (0-based; the paper numbers them 1..4). */
using ClusterId = std::int8_t;

/** Sentinel for "no cluster assigned / unknown". */
inline constexpr ClusterId invalidCluster = -1;

/** Sentinel for "no register" (e.g. an absent second source operand). */
inline constexpr RegId invalidReg = 0xff;

/** Sentinel cycle meaning "never" / "not yet scheduled". */
inline constexpr Cycle neverCycle = std::numeric_limits<Cycle>::max();

/** Sentinel sequence number meaning "no producer / from register file". */
inline constexpr InstSeqNum invalidSeqNum =
    std::numeric_limits<InstSeqNum>::max();

} // namespace ctcp

#endif // CTCPSIM_COMMON_TYPES_HH
