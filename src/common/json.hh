/**
 * @file
 * Minimal JSON document parser for the report/compare tooling.
 *
 * Parses the JSON this repository writes (campaign reports, single-run
 * metrics, interval time series) into an ordered DOM. Object member
 * order is preserved, so anything rendered from a parsed document is as
 * deterministic as the document itself. This is a reader for our own
 * well-formed output, not a general validator: numbers are kept as raw
 * text and converted on demand, and \u escapes outside Latin-1 are not
 * decoded (the writers never emit them).
 *
 * The campaign journal keeps its own stripped-down parser on purpose:
 * it must tolerate torn records byte-by-byte and never throw.
 */

#ifndef CTCPSIM_COMMON_JSON_HH
#define CTCPSIM_COMMON_JSON_HH

#include <string>
#include <utility>
#include <vector>

namespace ctcp::json {

/** One parsed JSON value (recursive). */
struct Value
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    /** Raw numeric text (exact round-trip; convert with asNumber()). */
    std::string number;
    std::string string;
    std::vector<Value> array;
    /** Members in document order. */
    std::vector<std::pair<std::string, Value>> object;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }

    /** Member lookup; null when absent or this is not an object. */
    const Value *find(const std::string &key) const;

    /** Numeric conversion (0.0 unless this is a Number). */
    double asNumber() const;

    /** Member as a number, or @p fallback when absent/non-numeric. */
    double num(const std::string &key, double fallback = 0.0) const;

    /** Member as a string, or "" when absent/non-string. */
    std::string str(const std::string &key) const;
};

/**
 * Parse one complete JSON document.
 * @throws std::runtime_error with position info on malformed input
 */
Value parse(const std::string &text);

} // namespace ctcp::json

#endif // CTCPSIM_COMMON_JSON_HH
