/**
 * @file
 * Deterministic fault injection for the robustness test suite.
 *
 * Each injector corrupts exactly the redundant state one of the
 * engine's defenses guards, so tests can prove the defense fires:
 *
 *   corruptReadyAt     -> invariant checker (cached readiness)
 *   scrambleTraceLine  -> invariant checker (slot permutation)
 *   stallRetirement    -> forward-progress watchdog (SimError, hang)
 *   flakyBuilder       -> campaign retry policy (workload errors)
 *   truncateFileTail   -> journal partial-record tolerance on resume
 *
 * All injectors are seeded/parameterized, never random: the same test
 * run trips the same defense on the same instruction every time.
 */

#ifndef CTCPSIM_VERIFY_FAULT_HH
#define CTCPSIM_VERIFY_FAULT_HH

#include <cstdint>
#include <functional>
#include <string>

#include "prog/program.hh"

namespace ctcp {

class CtcpSimulator;

namespace verify {

/** Targeted corruptions of simulator-internal derived state. */
class FaultInjector
{
  public:
    /**
     * Corrupt the cached readyAt of one instruction currently on a
     * cluster's ready list (picked by @p seed, shifted by a
     * seed-derived amount). The next checked cycle must report an
     * invariant failure.
     *
     * @return false when no instruction was resident to corrupt
     */
    static bool corruptReadyAt(CtcpSimulator &sim, std::uint64_t seed);

    /**
     * Duplicate a physical slot inside the most recently used resident
     * trace line with at least two instructions, breaking its
     * slot->cluster permutation.
     *
     * @return false when no such line exists yet
     */
    static bool scrambleTraceLine(CtcpSimulator &sim);

    /** Suppress (or re-enable) retirement, starving forward progress. */
    static void stallRetirement(CtcpSimulator &sim, bool stalled);

    /**
     * Chop @p bytes off the end of @p path (journal mid-record
     * truncation). @return false when the file is missing or shorter
     */
    static bool truncateFileTail(const std::string &path,
                                 std::size_t bytes);
};

/**
 * A campaign Job builder that throws for its first @p failures
 * invocations, then delegates to @p inner. Call counts are shared
 * across copies of the returned std::function (campaign workers copy
 * builders), so "fails N times, then succeeds" survives retries.
 */
std::function<Program()> flakyBuilder(unsigned failures,
                                      std::function<Program()> inner);

} // namespace verify
} // namespace ctcp

#endif // CTCPSIM_VERIFY_FAULT_HH
