/**
 * @file
 * Deterministic network fault injection for the service test suite.
 *
 * NetFaultProxy is a unix-socket relay placed between an HTTP client
 * (ctcpctl, the shard coordinator) and a ctcpd daemon. Its Plan maps
 * one distributed failure mode to one client-side defense, mirroring
 * how src/verify/fault maps simulator corruptions to single-host
 * defenses:
 *
 *   refuseConnections   -> retry with capped exponential backoff
 *   responseDelaySeconds-> client read deadlines (a slow daemon is
 *                          indistinguishable from a dead one)
 *   truncateResponseBytes -> whole-line journal consumption + torn
 *                          chunk re-poll (and, when permanent,
 *                          circuit-breaking + slot reassignment)
 *
 * Counter-driven, never random: the Nth connection through the proxy
 * sees the same fault on every test run. The proxy exploits the
 * service protocol's strict shape — one request (client half-closes),
 * one response, close — so it can pump each direction sequentially.
 */

#ifndef CTCPSIM_VERIFY_NET_FAULT_HH
#define CTCPSIM_VERIFY_NET_FAULT_HH

#include <atomic>
#include <cstddef>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ctcp::verify {

/** Relay between listenPath and upstreamPath with injected faults. */
class NetFaultProxy
{
  public:
    struct Plan
    {
        /** Refuse (accept + immediately close) the next N connections. */
        unsigned refuseConnections = 0;
        /**
         * Apply the delay/truncation faults below to the next N
         * responses (after any refused connections); 0 disables both.
         */
        unsigned faultedResponses = 0;
        /** Sleep before relaying a faulted response (deadline tests). */
        double responseDelaySeconds = 0.0;
        /**
         * Forward only this many bytes of a faulted response, then
         * close both sides — a connection killed mid-stream. < 0
         * relays faulted responses in full (delay only).
         */
        long truncateResponseBytes = -1;
    };

    struct Stats
    {
        std::size_t accepted = 0; ///< connections taken off the listener
        std::size_t refused = 0;  ///< closed without relaying
        std::size_t faulted = 0;  ///< responses delayed and/or truncated
        std::size_t relayed = 0;  ///< responses forwarded (even if cut)
    };

    NetFaultProxy(std::string listenPath, std::string upstreamPath);
    ~NetFaultProxy();

    NetFaultProxy(const NetFaultProxy &) = delete;
    NetFaultProxy &operator=(const NetFaultProxy &) = delete;

    /** Bind listenPath and start the accept thread. */
    bool start(std::string &error);

    /** Stop accepting, join every relay thread, unlink the socket. */
    void stop();

    /** Swap the active fault plan (applies to future connections). */
    void setPlan(const Plan &plan);

    Stats stats() const;

    /**
     * Raw bytes of every client request relayed upstream, one string
     * per connection in completion order — lets a test assert what
     * actually crossed the wire (e.g. that an X-Ctcp-Trace-Id header
     * reached this shard).
     */
    std::vector<std::string> capturedRequests() const;

    const std::string &listenPath() const { return listenPath_; }

  private:
    void acceptLoop();
    void relay(int client);

    std::string listenPath_;
    std::string upstreamPath_;
    int listenFd_ = -1;
    std::atomic<bool> stopping_{false};
    std::thread acceptor_;
    std::vector<std::thread> relays_;

    mutable std::mutex mutex_; ///< guards plan_, stats_, relays_,
                               ///< requests_
    Plan plan_;
    Stats stats_;
    std::vector<std::string> requests_;
};

} // namespace ctcp::verify

#endif // CTCPSIM_VERIFY_NET_FAULT_HH
