#include "verify/net_fault.hh"

#include <cerrno>
#include <chrono>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "service/http.hh"

namespace ctcp::verify {

NetFaultProxy::NetFaultProxy(std::string listenPath,
                             std::string upstreamPath)
    : listenPath_(std::move(listenPath)),
      upstreamPath_(std::move(upstreamPath))
{}

NetFaultProxy::~NetFaultProxy()
{
    stop();
}

bool
NetFaultProxy::start(std::string &error)
{
    listenFd_ = service::listenUnix(listenPath_, error);
    if (listenFd_ < 0)
        return false;
    acceptor_ = std::thread(&NetFaultProxy::acceptLoop, this);
    return true;
}

void
NetFaultProxy::stop()
{
    if (stopping_.exchange(true))
        return;
    if (acceptor_.joinable())
        acceptor_.join();
    std::vector<std::thread> relays;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        relays.swap(relays_);
    }
    for (std::thread &t : relays)
        if (t.joinable())
            t.join();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    ::unlink(listenPath_.c_str());
}

void
NetFaultProxy::setPlan(const Plan &plan)
{
    std::lock_guard<std::mutex> lock(mutex_);
    plan_ = plan;
}

NetFaultProxy::Stats
NetFaultProxy::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

std::vector<std::string>
NetFaultProxy::capturedRequests() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return requests_;
}

void
NetFaultProxy::acceptLoop()
{
    while (!stopping_.load(std::memory_order_relaxed)) {
        pollfd pfd{};
        pfd.fd = listenFd_;
        pfd.events = POLLIN;
        const int ready = ::poll(&pfd, 1, 100);
        if (ready <= 0)
            continue; // timeout or EINTR — re-check stopping_
        const int conn = ::accept(listenFd_, nullptr, nullptr);
        if (conn < 0)
            continue;
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.accepted;
        if (plan_.refuseConnections > 0) {
            --plan_.refuseConnections;
            ++stats_.refused;
            ::close(conn);
            continue;
        }
        relays_.emplace_back(&NetFaultProxy::relay, this, conn);
    }
}

namespace {

/** Wait for @p events, returning false when @p stopping turns true. */
bool
waitReady(int fd, short events, const std::atomic<bool> &stopping)
{
    while (!stopping.load(std::memory_order_relaxed)) {
        pollfd pfd{};
        pfd.fd = fd;
        pfd.events = events;
        const int r = ::poll(&pfd, 1, 100);
        if (r > 0)
            return true;
        if (r < 0 && errno != EINTR)
            return false;
    }
    return false;
}

/** Write all of @p take bytes, tolerating non-blocking fds. */
bool
sendAll(int to, const char *buf, std::size_t take,
        const std::atomic<bool> &stopping)
{
    std::size_t off = 0;
    while (off < take) {
        const ssize_t n =
            ::send(to, buf + off, take - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if ((errno == EAGAIN || errno == EWOULDBLOCK) &&
                waitReady(to, POLLOUT, stopping))
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

/**
 * Pump @p from to @p to until EOF; cap forwarded bytes when >= 0.
 * Handles non-blocking fds on either side (connectUnix returns them).
 * When @p capture is non-null, every forwarded byte is appended to it.
 */
void
pump(int from, int to, long cap, const std::atomic<bool> &stopping,
     std::string *capture = nullptr)
{
    char buf[4096];
    long sent = 0;
    while (true) {
        const ssize_t n = ::read(from, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if ((errno == EAGAIN || errno == EWOULDBLOCK) &&
                waitReady(from, POLLIN, stopping))
                continue;
            return;
        }
        if (n == 0)
            return;
        std::size_t take = static_cast<std::size_t>(n);
        if (cap >= 0 && sent + n > cap)
            take = static_cast<std::size_t>(cap - sent);
        if (take > 0 && !sendAll(to, buf, take, stopping))
            return;
        if (capture)
            capture->append(buf, take);
        sent += static_cast<long>(take);
        if (cap >= 0 && sent >= cap)
            return; // budget exhausted: cut the stream mid-flight
    }
}

} // namespace

void
NetFaultProxy::relay(int client)
{
    // Take this connection's fault decision up front so a concurrent
    // setPlan() cannot split one response between two plans.
    bool faulted = false;
    double delay = 0.0;
    long cap = -1;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (plan_.faultedResponses > 0) {
            --plan_.faultedResponses;
            faulted = true;
            delay = plan_.responseDelaySeconds;
            cap = plan_.truncateResponseBytes;
            ++stats_.faulted;
        }
    }

    std::string error;
    const int upstream = service::connectUnix(upstreamPath_, error);
    if (upstream < 0) {
        ::close(client);
        return;
    }

    // Request: the client writes then half-closes, so EOF marks the
    // end; the server still sees a half-open connection it can answer.
    std::string request;
    pump(client, upstream, -1, stopping_, &request);
    ::shutdown(upstream, SHUT_WR);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        requests_.push_back(std::move(request));
    }

    if (faulted && delay > 0.0)
        std::this_thread::sleep_for(
            std::chrono::duration<double>(delay));
    pump(upstream, client, faulted ? cap : -1, stopping_);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.relayed;
    }
    ::close(upstream);
    ::close(client);
}

} // namespace ctcp::verify
