#include "verify/invariant_checker.hh"

#include <unordered_set>
#include <vector>

#include "common/logging.hh"
#include "common/sim_error.hh"
#include "core/simulator.hh"
#include "isa/instruction.hh"

namespace ctcp::verify {

namespace {

[[noreturn]] void
fail(const std::string &msg)
{
    throw SimError(ErrorCategory::Invariant,
                   "invariant violation: " + msg);
}

unsigned long long
ull(std::uint64_t v)
{
    return static_cast<unsigned long long>(v);
}

} // namespace

InvariantChecker::InvariantChecker(unsigned level, unsigned num_clusters,
                                   unsigned cluster_width)
    : level_(level), numClusters_(num_clusters),
      clusterWidth_(cluster_width)
{
    ctcp_assert(level_ > 0, "checker constructed with checks off");
}

void
InvariantChecker::checkCycle(const CtcpSimulator &sim)
{
    ++cyclesChecked_;
    checkRob(sim);
    checkClusters(sim);
    checkStoreWindow(sim);
    checkFetchQueue(sim);
}

void
InvariantChecker::onTraceConstructed(const TraceDraft &,
                                     const TraceLine &line)
{
    checkTraceLine(line);
}

void
InvariantChecker::checkTraceLine(const TraceLine &line) const
{
    const unsigned width = numClusters_ * clusterWidth_;
    if (line.insts.size() > width)
        fail(detail::format(
            "trace line at pc %llu holds %zu instructions, machine "
            "width is %u", ull(line.key.startPc), line.insts.size(),
            width));
    std::vector<char> used(width, 0);
    for (const TraceSlot &slot : line.insts) {
        if (slot.physSlot >= width)
            fail(detail::format(
                "trace line at pc %llu assigns pc %llu to physical "
                "slot %u outside machine width %u",
                ull(line.key.startPc), ull(slot.pc), slot.physSlot,
                width));
        if (used[slot.physSlot])
            fail(detail::format(
                "trace line at pc %llu assigns physical slot %u "
                "(cluster %u) twice — slot permutation scrambled",
                ull(line.key.startPc), slot.physSlot,
                slot.physSlot / clusterWidth_));
        used[slot.physSlot] = 1;
        // The memoized dispatch plan must agree with the slot it was
        // derived from — a stale or scrambled plan byte would silently
        // reroute dispatch.
        if (slot.cluster != noStationPlan &&
            slot.cluster != slot.physSlot / clusterWidth_)
            fail(detail::format(
                "trace line at pc %llu caches dispatch plan cluster %u "
                "for physical slot %u (expected cluster %u)",
                ull(line.key.startPc), unsigned{slot.cluster},
                slot.physSlot, slot.physSlot / clusterWidth_));
        if (slot.station != noStationPlan &&
            slot.station >= numStations)
            fail(detail::format(
                "trace line at pc %llu caches invalid station plan %u",
                ull(line.key.startPc), unsigned{slot.station}));
    }
}

void
InvariantChecker::checkRob(const CtcpSimulator &sim) const
{
    const Cycle now = sim.cycle_;
    std::unordered_set<const TimedInst *> resident;
    resident.reserve(sim.rob_.size());
    InstSeqNum prev_seq = 0;
    for (std::size_t i = 0; i < sim.rob_.size(); ++i) {
        const TimedInst *inst = sim.rob_.at(i);
        resident.insert(inst);
        if (i > 0 && inst->dyn.seq <= prev_seq)
            fail(detail::format(
                "cycle %llu: ROB age order violated at entry %zu "
                "(seq %llu after seq %llu)", ull(now), i,
                ull(inst->dyn.seq), ull(prev_seq)));
        prev_seq = inst->dyn.seq;
        if (inst->dispatched && !inst->issued)
            fail(detail::format(
                "cycle %llu: seq %llu dispatched without issuing",
                ull(now), ull(inst->dyn.seq)));
        if (inst->completed && inst->completeAt > now)
            fail(detail::format(
                "cycle %llu: seq %llu marked complete before its "
                "completion cycle %llu", ull(now), ull(inst->dyn.seq),
                ull(inst->completeAt)));
    }
    for (unsigned r = 0; r < numArchRegs; ++r) {
        const TimedInst *producer = sim.renameTable_[r];
        if (producer == nullptr)
            continue;
        if (resident.find(producer) == resident.end())
            fail(detail::format(
                "cycle %llu: rename table entry for r%u points outside "
                "the ROB", ull(now), r));
        if (!producer->dyn.hasDst() ||
            producer->dyn.dst != static_cast<RegId>(r))
            fail(detail::format(
                "cycle %llu: rename table entry for r%u names seq %llu, "
                "which does not write r%u", ull(now), r,
                ull(producer->dyn.seq), r));
    }
}

void
InvariantChecker::checkClusters(const CtcpSimulator &sim) const
{
    for (const Cluster &cluster : sim.clusters_) {
        checkSchedList(sim, cluster, cluster.ready_, true);
        checkSchedList(sim, cluster, cluster.waiting_, false);
    }
}

void
InvariantChecker::checkSchedList(const CtcpSimulator &sim,
                                 const Cluster &cluster,
                                 const SchedList &list,
                                 bool ready_list) const
{
    const Cycle now = sim.cycle_;
    const int cid = static_cast<int>(cluster.id_);
    const char *name = ready_list ? "ready" : "waiting";
    const TimedInst *prev = nullptr;
    for (const TimedInst *inst = list.head; inst != nullptr;
         inst = inst->schedNext) {
        if (inst->schedPrev != prev)
            fail(detail::format(
                "cycle %llu cluster %d: %s-list back link of seq %llu "
                "is inconsistent", ull(now), cid, name,
                ull(inst->dyn.seq)));
        if (static_cast<int>(inst->cluster) != cid)
            fail(detail::format(
                "cycle %llu cluster %d: %s list holds seq %llu assigned "
                "to cluster %d", ull(now), cid, name, ull(inst->dyn.seq),
                static_cast<int>(inst->cluster)));
        if (inst->station == nullptr)
            fail(detail::format(
                "cycle %llu cluster %d: %s list holds seq %llu outside "
                "any reservation station", ull(now), cid, name,
                ull(inst->dyn.seq)));
        if (inst->dispatched)
            fail(detail::format(
                "cycle %llu cluster %d: %s list holds already-dispatched "
                "seq %llu", ull(now), cid, name, ull(inst->dyn.seq)));
        if (ready_list) {
            if (prev != nullptr && inst->dyn.seq <= prev->dyn.seq)
                fail(detail::format(
                    "cycle %llu cluster %d: ready-list age order "
                    "violated (seq %llu after seq %llu)", ull(now), cid,
                    ull(inst->dyn.seq), ull(prev->dyn.seq)));
            if (inst->pendingProducers != 0)
                fail(detail::format(
                    "cycle %llu cluster %d: ready list holds seq %llu "
                    "with %u outstanding producers", ull(now), cid,
                    ull(inst->dyn.seq), inst->pendingProducers));
            // The load-bearing check: the dispatch loop trusts this
            // cached integer instead of re-deriving readiness.
            const Cycle recomputed = sim.operandReadiness(*inst).ready;
            if (inst->readyAt != recomputed)
                fail(detail::format(
                    "cycle %llu cluster %d: cached readyAt %llu of seq "
                    "%llu (pc %llu) != recomputed operand readiness "
                    "%llu", ull(now), cid, ull(inst->readyAt),
                    ull(inst->dyn.seq), ull(inst->dyn.pc),
                    ull(recomputed)));
        } else if (inst->pendingProducers == 0) {
            fail(detail::format(
                "cycle %llu cluster %d: waiting list holds seq %llu "
                "with no outstanding producers", ull(now), cid,
                ull(inst->dyn.seq)));
        }
        prev = inst;
    }
    if (list.tail != prev)
        fail(detail::format(
            "cycle %llu cluster %d: %s-list tail pointer does not match "
            "the last reachable node", ull(now), cid, name));
}

void
InvariantChecker::checkStoreWindow(const CtcpSimulator &sim) const
{
    const Cycle now = sim.cycle_;
    const StoreWindow &sw = sim.storeWindow_;

    std::unordered_set<const TimedInst *> in_window;
    in_window.reserve(sw.window_.size());
    InstSeqNum prev_seq = 0;
    for (std::size_t i = 0; i < sw.window_.size(); ++i) {
        const TimedInst *st = sw.window_[i];
        in_window.insert(st);
        if (i > 0 && st->dyn.seq <= prev_seq)
            fail(detail::format(
                "cycle %llu: store window order violated at entry %zu "
                "(seq %llu after seq %llu)", ull(now), i,
                ull(st->dyn.seq), ull(prev_seq)));
        prev_seq = st->dyn.seq;
    }

    if (sw.resolvedPrefix_ > sw.window_.size())
        fail(detail::format(
            "cycle %llu: store-window resolved prefix %zu exceeds "
            "window size %zu", ull(now), sw.resolvedPrefix_,
            sw.window_.size()));
    for (std::size_t i = 0; i < sw.resolvedPrefix_; ++i) {
        const TimedInst *st = sw.window_[i];
        if (!st->dispatched)
            fail(detail::format(
                "cycle %llu: store seq %llu sits below the resolved "
                "prefix but has not dispatched — the cursor ran ahead",
                ull(now), ull(st->dyn.seq)));
    }

    std::size_t bucketed = 0;
    for (const auto &[word, bucket] : sw.byWord_) {
        const TimedInst *prev = nullptr;
        for (const TimedInst *st : bucket) {
            ++bucketed;
            if (in_window.find(st) == in_window.end())
                fail(detail::format(
                    "cycle %llu: forwarding map holds store seq %llu "
                    "that left the window", ull(now), ull(st->dyn.seq)));
            if (StoreWindow::wordOf(st->dyn.effAddr) != word)
                fail(detail::format(
                    "cycle %llu: store seq %llu filed under the wrong "
                    "forwarding word", ull(now), ull(st->dyn.seq)));
            if (prev != nullptr && st->dyn.seq <= prev->dyn.seq)
                fail(detail::format(
                    "cycle %llu: forwarding bucket order violated "
                    "(seq %llu after seq %llu)", ull(now),
                    ull(st->dyn.seq), ull(prev->dyn.seq)));
            prev = st;
        }
    }
    if (bucketed != sw.window_.size())
        fail(detail::format(
            "cycle %llu: forwarding map holds %zu stores, window holds "
            "%zu", ull(now), bucketed, sw.window_.size()));
}

void
InvariantChecker::checkFetchQueue(const CtcpSimulator &sim) const
{
    const Cycle now = sim.cycle_;
    const unsigned width = numClusters_ * clusterWidth_;
    std::vector<char> used(width, 0);
    for (const FetchGroup &group : sim.fetchQueue_) {
        used.assign(width, 0);
        for (const auto &inst : group.insts) {
            if (!inst)
                continue; // already renamed out of the group
            if (inst->slotIndex < 0 ||
                inst->slotIndex >= static_cast<int>(width))
                fail(detail::format(
                    "cycle %llu: fetched seq %llu sits in slot %d "
                    "outside machine width %u", ull(now),
                    ull(inst->dyn.seq), inst->slotIndex, width));
            if (used[inst->slotIndex])
                fail(detail::format(
                    "cycle %llu: fetched group assigns slot %d "
                    "(cluster %d) twice — seq %llu collides", ull(now),
                    inst->slotIndex,
                    inst->slotIndex / static_cast<int>(clusterWidth_),
                    ull(inst->dyn.seq)));
            used[inst->slotIndex] = 1;
        }
    }
}

} // namespace ctcp::verify
