/**
 * @file
 * Per-cycle invariant checker (opt-in via SimConfig::checkLevel).
 *
 * The event-driven scheduler (PR 3) runs on derived state: cached
 * operand-ready cycles, intrusive ready/waiting lists, a resolved-prefix
 * cursor and a per-word forwarding map in the store window, and
 * physically reordered trace-line slots. A silent corruption in any of
 * them no longer hangs or crashes the simulator — it quietly skews the
 * paper-reproduction numbers. When enabled, this checker revalidates
 * all of that redundant state against first principles after every
 * cycle and throws a structured SimError (category Invariant) naming
 * the cycle, cluster, and instruction on the first divergence.
 *
 * With checkLevel == 0 the simulator carries a null checker pointer and
 * the only cost is one branch per cycle.
 *
 * Checks performed each cycle:
 *  - ROB: ascending sequence numbers (retirement age order), stage-flag
 *    sanity (dispatched implies issued, completed implies completeAt in
 *    the past), rename-table entries point at ROB-resident producers
 *    with the matching destination register.
 *  - Per-cluster scheduler lists: intrusive linkage consistency,
 *    ascending age order on the ready list, membership (ready list
 *    holds only instructions with no outstanding producers, waiting
 *    list only instructions with some), and the load-bearing one —
 *    every cached TimedInst::readyAt on a ready list must equal the
 *    readiness recomputed from producer completion times.
 *  - StoreWindow: program order, resolved-prefix monotonicity (every
 *    store below the cursor is dispatched), and forwarding-map
 *    consistency (buckets partition the window, each bucket in program
 *    order under the right word key).
 *  - Fetch queue: each group's physical slots are unique and within the
 *    machine width (a scrambled trace-line permutation surfaces here).
 *
 * The checker also registers as the FillUnit's observer and validates
 * every freshly constructed trace line's slot->cluster permutation
 * (retire-time reordering, Table 5 options).
 */

#ifndef CTCPSIM_VERIFY_INVARIANT_CHECKER_HH
#define CTCPSIM_VERIFY_INVARIANT_CHECKER_HH

#include <cstdint>

#include "tracecache/fill_unit.hh"

namespace ctcp {

class Cluster;
class CtcpSimulator;
struct SchedList;

namespace verify {

/** Revalidates scheduler-derived state against first principles. */
class InvariantChecker : public FillUnitObserver
{
  public:
    InvariantChecker(unsigned level, unsigned num_clusters,
                     unsigned cluster_width);

    /**
     * Run every per-cycle check against @p sim's current state.
     * @throws SimError (category Invariant) on the first divergence
     */
    void checkCycle(const CtcpSimulator &sim);

    /** FillUnitObserver: validate a just-constructed line. */
    void onTraceConstructed(const TraceDraft &draft,
                            const TraceLine &line) override;

    /**
     * Slot->cluster permutation validity of one trace line: physical
     * slots unique and within numClusters * clusterWidth.
     * @throws SimError (category Invariant) when violated
     */
    void checkTraceLine(const TraceLine &line) const;

    std::uint64_t cyclesChecked() const { return cyclesChecked_; }

  private:
    void checkRob(const CtcpSimulator &sim) const;
    void checkClusters(const CtcpSimulator &sim) const;
    void checkSchedList(const CtcpSimulator &sim, const Cluster &cluster,
                        const SchedList &list, bool ready_list) const;
    void checkStoreWindow(const CtcpSimulator &sim) const;
    void checkFetchQueue(const CtcpSimulator &sim) const;

    unsigned level_;
    unsigned numClusters_;
    unsigned clusterWidth_;
    std::uint64_t cyclesChecked_ = 0;
};

} // namespace verify
} // namespace ctcp

#endif // CTCPSIM_VERIFY_INVARIANT_CHECKER_HH
