#include "verify/fault.hh"

#include <cstdio>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/simulator.hh"
#include "tracecache/trace_cache.hh"

namespace ctcp::verify {

bool
FaultInjector::corruptReadyAt(CtcpSimulator &sim, std::uint64_t seed)
{
    std::vector<TimedInst *> resident;
    for (Cluster &cluster : sim.clusters_)
        for (TimedInst *inst = cluster.ready_.head; inst != nullptr;
             inst = inst->schedNext)
            resident.push_back(inst);
    if (resident.empty())
        return false;
    TimedInst *victim = resident[seed % resident.size()];
    victim->readyAt += 1 + seed % 7;
    return true;
}

bool
FaultInjector::scrambleTraceLine(CtcpSimulator &sim)
{
    TraceCache &tc = *sim.tc_;
    TraceLine *victim = nullptr;
    for (TraceLine &line : tc.lines_) {
        if (!line.valid || line.insts.size() < 2)
            continue;
        if (victim == nullptr || line.lastUse > victim->lastUse)
            victim = &line;
    }
    if (victim == nullptr)
        return false;
    victim->insts[1].physSlot = victim->insts[0].physSlot;
    return true;
}

void
FaultInjector::stallRetirement(CtcpSimulator &sim, bool stalled)
{
    sim.faultStallRetire_ = stalled;
}

bool
FaultInjector::truncateFileTail(const std::string &path, std::size_t bytes)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        return false;
    std::fseek(file, 0, SEEK_END);
    const long size = std::ftell(file);
    if (size < 0 || static_cast<std::size_t>(size) < bytes) {
        std::fclose(file);
        return false;
    }
    const std::size_t keep = static_cast<std::size_t>(size) - bytes;
    std::vector<char> head(keep);
    std::fseek(file, 0, SEEK_SET);
    const std::size_t got = keep ? std::fread(head.data(), 1, keep, file)
                                 : 0;
    std::fclose(file);
    if (got != keep)
        return false;
    std::FILE *out = std::fopen(path.c_str(), "wb");
    if (!out)
        return false;
    if (keep)
        std::fwrite(head.data(), 1, keep, out);
    std::fclose(out);
    return true;
}

std::function<Program()>
flakyBuilder(unsigned failures, std::function<Program()> inner)
{
    auto remaining = std::make_shared<unsigned>(failures);
    return [remaining, inner = std::move(inner)]() -> Program {
        if (*remaining > 0) {
            --*remaining;
            throw std::runtime_error("injected builder fault");
        }
        return inner();
    };
}

} // namespace ctcp::verify
