/**
 * @file
 * Opcode and functional-unit-class definitions for the ctcpsim ISA.
 *
 * The ISA is a minimal load/store RISC designed so that the dynamic
 * stream carries exactly the information the clustered trace cache
 * processor cares about: up to two register sources, at most one
 * register destination, a functional-unit class, and control-flow
 * semantics. Functional-unit classes match Figure 3 / Table 7 of the
 * paper: two simple integer ALUs, one integer memory unit, one branch
 * unit (shared by integer and FP branches), one complex integer unit,
 * one basic FP unit, one complex FP unit and one FP memory unit per
 * cluster.
 */

#ifndef CTCPSIM_ISA_OPCODES_HH
#define CTCPSIM_ISA_OPCODES_HH

#include <array>
#include <cstdint>
#include <string_view>

#include "common/logging.hh"

namespace ctcp {

/** Functional-unit classes (one reservation-station routing class each). */
enum class FuKind : std::uint8_t
{
    IntAlu,     ///< simple integer: add/sub/logic/shift/compare/moves
    IntMem,     ///< integer loads and stores (address generation)
    Branch,     ///< all control transfers (integer and FP conditions)
    IntComplex, ///< integer multiply/divide/remainder
    FpBasic,    ///< FP add/sub/compare/convert
    FpComplex,  ///< FP multiply/divide/sqrt
    FpMem,      ///< FP loads and stores
    NumKinds,
};

/** All machine opcodes. */
enum class Opcode : std::uint8_t
{
    // Simple integer (FuKind::IntAlu).
    Add, Sub, And, Or, Xor, Sll, Srl, Sra, Slt, Sltu,
    AddI, AndI, OrI, XorI, SllI, SrlI, SltI,
    MovI,   ///< dst = imm
    Mov,    ///< dst = src1

    // Complex integer (FuKind::IntComplex).
    Mul, Div, Rem,

    // Integer memory (FuKind::IntMem).
    Load,   ///< dst = mem[src1 + imm]
    Store,  ///< mem[src1 + imm] = src2

    // Control transfers (FuKind::Branch).
    Beq, Bne, Blt, Bge,   ///< conditional, compare src1 vs src2
    Jump,                  ///< unconditional direct
    JumpReg,               ///< unconditional indirect through src1
    Call,                  ///< direct call; dst receives return address
    Ret,                   ///< indirect return through src1

    // Basic FP (FuKind::FpBasic). Operands are IEEE double bit patterns.
    FAdd, FSub, FNeg, FCmpLt, FCvtIF, FCvtFI,

    // Complex FP (FuKind::FpComplex).
    FMul, FDiv, FSqrt,

    // FP memory (FuKind::FpMem).
    FLoad, FStore,

    // Pseudo-ops.
    Nop,    ///< no effect (FuKind::IntAlu)
    Halt,   ///< terminates the program (FuKind::IntAlu)

    NumOpcodes,
};

/** Static per-opcode properties. */
struct OpcodeInfo
{
    std::string_view mnemonic;
    FuKind fu;
    /** Execution latency in cycles (memory ops: address generation only). */
    std::uint8_t execLatency;
    /** Cycles before the FU can accept another op (1 == fully pipelined). */
    std::uint8_t issueLatency;
    bool readsSrc1;
    bool readsSrc2;
    bool writesDst;
    bool hasImmediate;
};

namespace detail {

inline constexpr std::size_t numOpcodes =
    static_cast<std::size_t>(Opcode::NumOpcodes);

// Latencies follow Table 7 of the paper: simple integer 1/1, integer
// mul 3/1, integer div 20/19, FP mul 3/1, FP div 12/12, FP sqrt 24/24.
// Memory opcodes model address generation here (1 cycle); cache access
// latency is added by the memory subsystem. Lives in the header so the
// pipeline's per-instruction property lookups (DynInst::fu()/info(),
// several per instruction per stage) inline to one indexed load.
inline constexpr std::array<OpcodeInfo, numOpcodes> opcodeTable = {{
    //                 mnemonic  fu                   exec issue s1     s2     dst    imm
    /* Add    */ {"add",    FuKind::IntAlu,     1,  1, true,  true,  true,  false},
    /* Sub    */ {"sub",    FuKind::IntAlu,     1,  1, true,  true,  true,  false},
    /* And    */ {"and",    FuKind::IntAlu,     1,  1, true,  true,  true,  false},
    /* Or     */ {"or",     FuKind::IntAlu,     1,  1, true,  true,  true,  false},
    /* Xor    */ {"xor",    FuKind::IntAlu,     1,  1, true,  true,  true,  false},
    /* Sll    */ {"sll",    FuKind::IntAlu,     1,  1, true,  true,  true,  false},
    /* Srl    */ {"srl",    FuKind::IntAlu,     1,  1, true,  true,  true,  false},
    /* Sra    */ {"sra",    FuKind::IntAlu,     1,  1, true,  true,  true,  false},
    /* Slt    */ {"slt",    FuKind::IntAlu,     1,  1, true,  true,  true,  false},
    /* Sltu   */ {"sltu",   FuKind::IntAlu,     1,  1, true,  true,  true,  false},
    /* AddI   */ {"addi",   FuKind::IntAlu,     1,  1, true,  false, true,  true},
    /* AndI   */ {"andi",   FuKind::IntAlu,     1,  1, true,  false, true,  true},
    /* OrI    */ {"ori",    FuKind::IntAlu,     1,  1, true,  false, true,  true},
    /* XorI   */ {"xori",   FuKind::IntAlu,     1,  1, true,  false, true,  true},
    /* SllI   */ {"slli",   FuKind::IntAlu,     1,  1, true,  false, true,  true},
    /* SrlI   */ {"srli",   FuKind::IntAlu,     1,  1, true,  false, true,  true},
    /* SltI   */ {"slti",   FuKind::IntAlu,     1,  1, true,  false, true,  true},
    /* MovI   */ {"movi",   FuKind::IntAlu,     1,  1, false, false, true,  true},
    /* Mov    */ {"mov",    FuKind::IntAlu,     1,  1, true,  false, true,  false},

    /* Mul    */ {"mul",    FuKind::IntComplex, 3,  1, true,  true,  true,  false},
    /* Div    */ {"div",    FuKind::IntComplex, 20, 19, true, true,  true,  false},
    /* Rem    */ {"rem",    FuKind::IntComplex, 20, 19, true, true,  true,  false},

    /* Load   */ {"ld",     FuKind::IntMem,     1,  1, true,  false, true,  true},
    /* Store  */ {"st",     FuKind::IntMem,     1,  1, true,  true,  false, true},

    /* Beq    */ {"beq",    FuKind::Branch,     1,  1, true,  true,  false, true},
    /* Bne    */ {"bne",    FuKind::Branch,     1,  1, true,  true,  false, true},
    /* Blt    */ {"blt",    FuKind::Branch,     1,  1, true,  true,  false, true},
    /* Bge    */ {"bge",    FuKind::Branch,     1,  1, true,  true,  false, true},
    /* Jump   */ {"j",      FuKind::Branch,     1,  1, false, false, false, true},
    /* JumpReg*/ {"jr",     FuKind::Branch,     1,  1, true,  false, false, false},
    /* Call   */ {"call",   FuKind::Branch,     1,  1, false, false, true,  true},
    /* Ret    */ {"ret",    FuKind::Branch,     1,  1, true,  false, false, false},

    /* FAdd   */ {"fadd",   FuKind::FpBasic,    2,  1, true,  true,  true,  false},
    /* FSub   */ {"fsub",   FuKind::FpBasic,    2,  1, true,  true,  true,  false},
    /* FNeg   */ {"fneg",   FuKind::FpBasic,    2,  1, true,  false, true,  false},
    /* FCmpLt */ {"fcmplt", FuKind::FpBasic,    2,  1, true,  true,  true,  false},
    /* FCvtIF */ {"fcvtif", FuKind::FpBasic,    2,  1, true,  false, true,  false},
    /* FCvtFI */ {"fcvtfi", FuKind::FpBasic,    2,  1, true,  false, true,  false},

    /* FMul   */ {"fmul",   FuKind::FpComplex,  3,  1, true,  true,  true,  false},
    /* FDiv   */ {"fdiv",   FuKind::FpComplex, 12, 12, true,  true,  true,  false},
    /* FSqrt  */ {"fsqrt",  FuKind::FpComplex, 24, 24, true,  false, true,  false},

    /* FLoad  */ {"fld",    FuKind::FpMem,      1,  1, true,  false, true,  true},
    /* FStore */ {"fst",    FuKind::FpMem,      1,  1, true,  true,  false, true},

    /* Nop    */ {"nop",    FuKind::IntAlu,     1,  1, false, false, false, false},
    /* Halt   */ {"halt",   FuKind::IntAlu,     1,  1, false, false, false, false},
}};

} // namespace detail

/** Table lookup for a given opcode's static properties. */
inline const OpcodeInfo &
opcodeInfo(Opcode op)
{
    auto idx = static_cast<std::size_t>(op);
    ctcp_assert(idx < detail::numOpcodes,
                "opcodeInfo on invalid opcode %zu", idx);
    return detail::opcodeTable[idx];
}

/** Convenience predicates. */
inline bool
isBranch(Opcode op)
{
    return opcodeInfo(op).fu == FuKind::Branch;
}

inline bool
isConditionalBranch(Opcode op)
{
    switch (op) {
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
        return true;
      default:
        return false;
    }
}

inline bool
isIndirect(Opcode op)
{
    return op == Opcode::JumpReg || op == Opcode::Ret;
}

inline bool isCall(Opcode op) { return op == Opcode::Call; }
inline bool isReturn(Opcode op) { return op == Opcode::Ret; }

inline bool
isLoad(Opcode op)
{
    return op == Opcode::Load || op == Opcode::FLoad;
}

inline bool
isStore(Opcode op)
{
    return op == Opcode::Store || op == Opcode::FStore;
}

inline bool isMemOp(Opcode op) { return isLoad(op) || isStore(op); }

/** Human-readable FU class name (for stats and disassembly). */
std::string_view fuKindName(FuKind kind);

} // namespace ctcp

#endif // CTCPSIM_ISA_OPCODES_HH
