/**
 * @file
 * Opcode and functional-unit-class definitions for the ctcpsim ISA.
 *
 * The ISA is a minimal load/store RISC designed so that the dynamic
 * stream carries exactly the information the clustered trace cache
 * processor cares about: up to two register sources, at most one
 * register destination, a functional-unit class, and control-flow
 * semantics. Functional-unit classes match Figure 3 / Table 7 of the
 * paper: two simple integer ALUs, one integer memory unit, one branch
 * unit (shared by integer and FP branches), one complex integer unit,
 * one basic FP unit, one complex FP unit and one FP memory unit per
 * cluster.
 */

#ifndef CTCPSIM_ISA_OPCODES_HH
#define CTCPSIM_ISA_OPCODES_HH

#include <cstdint>
#include <string_view>

namespace ctcp {

/** Functional-unit classes (one reservation-station routing class each). */
enum class FuKind : std::uint8_t
{
    IntAlu,     ///< simple integer: add/sub/logic/shift/compare/moves
    IntMem,     ///< integer loads and stores (address generation)
    Branch,     ///< all control transfers (integer and FP conditions)
    IntComplex, ///< integer multiply/divide/remainder
    FpBasic,    ///< FP add/sub/compare/convert
    FpComplex,  ///< FP multiply/divide/sqrt
    FpMem,      ///< FP loads and stores
    NumKinds,
};

/** All machine opcodes. */
enum class Opcode : std::uint8_t
{
    // Simple integer (FuKind::IntAlu).
    Add, Sub, And, Or, Xor, Sll, Srl, Sra, Slt, Sltu,
    AddI, AndI, OrI, XorI, SllI, SrlI, SltI,
    MovI,   ///< dst = imm
    Mov,    ///< dst = src1

    // Complex integer (FuKind::IntComplex).
    Mul, Div, Rem,

    // Integer memory (FuKind::IntMem).
    Load,   ///< dst = mem[src1 + imm]
    Store,  ///< mem[src1 + imm] = src2

    // Control transfers (FuKind::Branch).
    Beq, Bne, Blt, Bge,   ///< conditional, compare src1 vs src2
    Jump,                  ///< unconditional direct
    JumpReg,               ///< unconditional indirect through src1
    Call,                  ///< direct call; dst receives return address
    Ret,                   ///< indirect return through src1

    // Basic FP (FuKind::FpBasic). Operands are IEEE double bit patterns.
    FAdd, FSub, FNeg, FCmpLt, FCvtIF, FCvtFI,

    // Complex FP (FuKind::FpComplex).
    FMul, FDiv, FSqrt,

    // FP memory (FuKind::FpMem).
    FLoad, FStore,

    // Pseudo-ops.
    Nop,    ///< no effect (FuKind::IntAlu)
    Halt,   ///< terminates the program (FuKind::IntAlu)

    NumOpcodes,
};

/** Static per-opcode properties. */
struct OpcodeInfo
{
    std::string_view mnemonic;
    FuKind fu;
    /** Execution latency in cycles (memory ops: address generation only). */
    std::uint8_t execLatency;
    /** Cycles before the FU can accept another op (1 == fully pipelined). */
    std::uint8_t issueLatency;
    bool readsSrc1;
    bool readsSrc2;
    bool writesDst;
    bool hasImmediate;
};

/** Table lookup for a given opcode's static properties. */
const OpcodeInfo &opcodeInfo(Opcode op);

/** Convenience predicates. */
bool isBranch(Opcode op);
bool isConditionalBranch(Opcode op);
bool isIndirect(Opcode op);
bool isCall(Opcode op);
bool isReturn(Opcode op);
bool isLoad(Opcode op);
bool isStore(Opcode op);
bool isMemOp(Opcode op);

/** Human-readable FU class name (for stats and disassembly). */
std::string_view fuKindName(FuKind kind);

} // namespace ctcp

#endif // CTCPSIM_ISA_OPCODES_HH
