#include "isa/opcodes.hh"

#include "common/logging.hh"

namespace ctcp {

std::string_view
fuKindName(FuKind kind)
{
    switch (kind) {
      case FuKind::IntAlu:     return "int-alu";
      case FuKind::IntMem:     return "int-mem";
      case FuKind::Branch:     return "branch";
      case FuKind::IntComplex: return "int-complex";
      case FuKind::FpBasic:    return "fp-basic";
      case FuKind::FpComplex:  return "fp-complex";
      case FuKind::FpMem:      return "fp-mem";
      default:
        ctcp_panic("fuKindName on invalid FuKind");
    }
}

} // namespace ctcp
