#include "isa/opcodes.hh"

#include <array>

#include "common/logging.hh"

namespace ctcp {

namespace {

constexpr std::size_t numOpcodes = static_cast<std::size_t>(Opcode::NumOpcodes);

// Latencies follow Table 7 of the paper: simple integer 1/1, integer
// mul 3/1, integer div 20/19, FP mul 3/1, FP div 12/12, FP sqrt 24/24.
// Memory opcodes model address generation here (1 cycle); cache access
// latency is added by the memory subsystem.
constexpr std::array<OpcodeInfo, numOpcodes> opcodeTable = {{
    //                 mnemonic  fu                   exec issue s1     s2     dst    imm
    /* Add    */ {"add",    FuKind::IntAlu,     1,  1, true,  true,  true,  false},
    /* Sub    */ {"sub",    FuKind::IntAlu,     1,  1, true,  true,  true,  false},
    /* And    */ {"and",    FuKind::IntAlu,     1,  1, true,  true,  true,  false},
    /* Or     */ {"or",     FuKind::IntAlu,     1,  1, true,  true,  true,  false},
    /* Xor    */ {"xor",    FuKind::IntAlu,     1,  1, true,  true,  true,  false},
    /* Sll    */ {"sll",    FuKind::IntAlu,     1,  1, true,  true,  true,  false},
    /* Srl    */ {"srl",    FuKind::IntAlu,     1,  1, true,  true,  true,  false},
    /* Sra    */ {"sra",    FuKind::IntAlu,     1,  1, true,  true,  true,  false},
    /* Slt    */ {"slt",    FuKind::IntAlu,     1,  1, true,  true,  true,  false},
    /* Sltu   */ {"sltu",   FuKind::IntAlu,     1,  1, true,  true,  true,  false},
    /* AddI   */ {"addi",   FuKind::IntAlu,     1,  1, true,  false, true,  true},
    /* AndI   */ {"andi",   FuKind::IntAlu,     1,  1, true,  false, true,  true},
    /* OrI    */ {"ori",    FuKind::IntAlu,     1,  1, true,  false, true,  true},
    /* XorI   */ {"xori",   FuKind::IntAlu,     1,  1, true,  false, true,  true},
    /* SllI   */ {"slli",   FuKind::IntAlu,     1,  1, true,  false, true,  true},
    /* SrlI   */ {"srli",   FuKind::IntAlu,     1,  1, true,  false, true,  true},
    /* SltI   */ {"slti",   FuKind::IntAlu,     1,  1, true,  false, true,  true},
    /* MovI   */ {"movi",   FuKind::IntAlu,     1,  1, false, false, true,  true},
    /* Mov    */ {"mov",    FuKind::IntAlu,     1,  1, true,  false, true,  false},

    /* Mul    */ {"mul",    FuKind::IntComplex, 3,  1, true,  true,  true,  false},
    /* Div    */ {"div",    FuKind::IntComplex, 20, 19, true, true,  true,  false},
    /* Rem    */ {"rem",    FuKind::IntComplex, 20, 19, true, true,  true,  false},

    /* Load   */ {"ld",     FuKind::IntMem,     1,  1, true,  false, true,  true},
    /* Store  */ {"st",     FuKind::IntMem,     1,  1, true,  true,  false, true},

    /* Beq    */ {"beq",    FuKind::Branch,     1,  1, true,  true,  false, true},
    /* Bne    */ {"bne",    FuKind::Branch,     1,  1, true,  true,  false, true},
    /* Blt    */ {"blt",    FuKind::Branch,     1,  1, true,  true,  false, true},
    /* Bge    */ {"bge",    FuKind::Branch,     1,  1, true,  true,  false, true},
    /* Jump   */ {"j",      FuKind::Branch,     1,  1, false, false, false, true},
    /* JumpReg*/ {"jr",     FuKind::Branch,     1,  1, true,  false, false, false},
    /* Call   */ {"call",   FuKind::Branch,     1,  1, false, false, true,  true},
    /* Ret    */ {"ret",    FuKind::Branch,     1,  1, true,  false, false, false},

    /* FAdd   */ {"fadd",   FuKind::FpBasic,    2,  1, true,  true,  true,  false},
    /* FSub   */ {"fsub",   FuKind::FpBasic,    2,  1, true,  true,  true,  false},
    /* FNeg   */ {"fneg",   FuKind::FpBasic,    2,  1, true,  false, true,  false},
    /* FCmpLt */ {"fcmplt", FuKind::FpBasic,    2,  1, true,  true,  true,  false},
    /* FCvtIF */ {"fcvtif", FuKind::FpBasic,    2,  1, true,  false, true,  false},
    /* FCvtFI */ {"fcvtfi", FuKind::FpBasic,    2,  1, true,  false, true,  false},

    /* FMul   */ {"fmul",   FuKind::FpComplex,  3,  1, true,  true,  true,  false},
    /* FDiv   */ {"fdiv",   FuKind::FpComplex, 12, 12, true,  true,  true,  false},
    /* FSqrt  */ {"fsqrt",  FuKind::FpComplex, 24, 24, true,  false, true,  false},

    /* FLoad  */ {"fld",    FuKind::FpMem,      1,  1, true,  false, true,  true},
    /* FStore */ {"fst",    FuKind::FpMem,      1,  1, true,  true,  false, true},

    /* Nop    */ {"nop",    FuKind::IntAlu,     1,  1, false, false, false, false},
    /* Halt   */ {"halt",   FuKind::IntAlu,     1,  1, false, false, false, false},
}};

} // namespace

const OpcodeInfo &
opcodeInfo(Opcode op)
{
    auto idx = static_cast<std::size_t>(op);
    ctcp_assert(idx < numOpcodes, "opcodeInfo on invalid opcode %zu", idx);
    return opcodeTable[idx];
}

bool
isBranch(Opcode op)
{
    return opcodeInfo(op).fu == FuKind::Branch;
}

bool
isConditionalBranch(Opcode op)
{
    switch (op) {
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
        return true;
      default:
        return false;
    }
}

bool
isIndirect(Opcode op)
{
    return op == Opcode::JumpReg || op == Opcode::Ret;
}

bool
isCall(Opcode op)
{
    return op == Opcode::Call;
}

bool
isReturn(Opcode op)
{
    return op == Opcode::Ret;
}

bool
isLoad(Opcode op)
{
    return op == Opcode::Load || op == Opcode::FLoad;
}

bool
isStore(Opcode op)
{
    return op == Opcode::Store || op == Opcode::FStore;
}

bool
isMemOp(Opcode op)
{
    return isLoad(op) || isStore(op);
}

std::string_view
fuKindName(FuKind kind)
{
    switch (kind) {
      case FuKind::IntAlu:     return "int-alu";
      case FuKind::IntMem:     return "int-mem";
      case FuKind::Branch:     return "branch";
      case FuKind::IntComplex: return "int-complex";
      case FuKind::FpBasic:    return "fp-basic";
      case FuKind::FpComplex:  return "fp-complex";
      case FuKind::FpMem:      return "fp-mem";
      default:
        ctcp_panic("fuKindName on invalid FuKind");
    }
}

} // namespace ctcp
