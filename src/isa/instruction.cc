#include "isa/instruction.hh"

#include <cstdio>

namespace ctcp {

namespace {

std::string
regName(RegId r)
{
    if (r == invalidReg)
        return "-";
    char buf[8];
    if (r < numIntRegs)
        std::snprintf(buf, sizeof(buf), "r%u", static_cast<unsigned>(r));
    else
        std::snprintf(buf, sizeof(buf), "f%u",
                      static_cast<unsigned>(r) - numIntRegs);
    return buf;
}

} // namespace

std::string
disassemble(const Instruction &inst)
{
    const OpcodeInfo &info = inst.info();
    std::string out(info.mnemonic);
    bool first = true;
    auto sep = [&]() -> const char * {
        const char *s = first ? " " : ", ";
        first = false;
        return s;
    };
    if (info.writesDst)
        out += sep() + regName(inst.dst);
    if (info.readsSrc1)
        out += sep() + regName(inst.src1);
    if (info.readsSrc2)
        out += sep() + regName(inst.src2);
    if (info.hasImmediate)
        out += sep() + std::to_string(inst.imm);
    return out;
}

} // namespace ctcp
