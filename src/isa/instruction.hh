/**
 * @file
 * Static instruction representation and register-file layout.
 *
 * The machine has 32 integer registers (r0 hardwired to zero, r31 the
 * conventional link register) and 32 FP registers (ids 32..63). RegId
 * is a flat 0..63 space so dependency tracking never needs to care
 * which file a register lives in.
 */

#ifndef CTCPSIM_ISA_INSTRUCTION_HH
#define CTCPSIM_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "isa/opcodes.hh"

namespace ctcp {

/** Number of integer architectural registers. */
inline constexpr unsigned numIntRegs = 32;
/** Number of FP architectural registers. */
inline constexpr unsigned numFpRegs = 32;
/** Total architectural registers (flat id space). */
inline constexpr unsigned numArchRegs = numIntRegs + numFpRegs;

/** Integer register id helper (0..31). */
constexpr RegId
intReg(unsigned n)
{
    return static_cast<RegId>(n);
}

/** FP register id helper (0..31 -> flat 32..63). */
constexpr RegId
fpReg(unsigned n)
{
    return static_cast<RegId>(numIntRegs + n);
}

/** The hardwired zero register. */
inline constexpr RegId zeroReg = 0;
/** The conventional link register used by Call/Ret. */
inline constexpr RegId linkReg = 31;

/** Instruction word size in bytes (PCs advance by this amount). */
inline constexpr Addr instBytes = 4;

/**
 * One static instruction. Branch targets are stored as absolute
 * instruction indices (word PCs), resolved by ProgramBuilder.
 */
struct Instruction
{
    Opcode op = Opcode::Nop;
    RegId dst = invalidReg;
    RegId src1 = invalidReg;
    RegId src2 = invalidReg;
    /** Immediate operand, memory displacement, or branch target index. */
    std::int64_t imm = 0;

    const OpcodeInfo &info() const { return opcodeInfo(op); }

    bool hasDst() const { return info().writesDst && dst != zeroReg; }
    bool hasSrc1() const { return info().readsSrc1 && src1 != invalidReg; }
    bool hasSrc2() const { return info().readsSrc2 && src2 != invalidReg; }
};

/** Disassemble one instruction (labels rendered as absolute indices). */
std::string disassemble(const Instruction &inst);

} // namespace ctcp

#endif // CTCPSIM_ISA_INSTRUCTION_HH
