/**
 * @file
 * The trace cache proper: a set-associative store of TraceLines with
 * path-associative lookup (start PC plus predicted conditional-branch
 * directions must match a line's embedded directions).
 */

#ifndef CTCPSIM_TRACECACHE_TRACE_CACHE_HH
#define CTCPSIM_TRACECACHE_TRACE_CACHE_HH

#include <functional>
#include <vector>

#include "config/sim_config.hh"
#include "stats/stats.hh"
#include "tracecache/trace_line.hh"

namespace ctcp {

class ObsSink;

namespace verify {
class FaultInjector;
} // namespace verify

/**
 * Direction oracle used during lookup: returns the predicted direction
 * for the @p index-th embedded conditional branch (at @p branch_pc) of
 * a candidate line. Must not mutate predictor state.
 */
using DirPredictFn = std::function<bool(Addr branch_pc, unsigned index)>;

/** Set-associative, path-associative trace cache. */
class TraceCache
{
  public:
    explicit TraceCache(const TraceCacheConfig &cfg);

    /**
     * Find a valid line starting at @p start_pc whose embedded branch
     * directions all match @p predict. Lines still in flight from the
     * fill unit (available after @p now) do not hit.
     *
     * @return the matching line, or nullptr on a trace-cache miss.
     */
    const TraceLine *lookup(Addr start_pc, const DirPredictFn &predict,
                            Cycle now = neverCycle);

    /**
     * Insert a newly constructed line; a line with the same key is
     * overwritten in place (trace reconstruction), otherwise the LRU
     * way of the set is evicted. The line becomes fetchable at
     * @p available_at (models the fill-unit latency).
     */
    void insert(TraceLine line, Cycle available_at = 0);

    /**
     * Update the FDRT profile of every slot holding @p pc inside the
     * resident line identified by @p key_hash (leader promotion).
     *
     * @return true when the line was resident and a slot matched.
     */
    bool updateProfile(std::uint64_t key_hash, Addr pc,
                       const ChainProfile &profile);

    /** Resident line by key hash (tests and the fill unit). */
    const TraceLine *findByHash(std::uint64_t key_hash) const;

    void dumpStats(StatDump &out) const;

    /** Attach an observability sink (null = off, the default). */
    void setObs(ObsSink *obs) { obs_ = obs; }

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    std::uint64_t insertions() const { return inserts_.value(); }
    std::uint64_t evictions() const { return evicts_.value(); }

  private:
    /** Corrupts resident lines for the robustness tests (src/verify). */
    friend class verify::FaultInjector;

    unsigned setOf(Addr start_pc) const { return start_pc & (sets_ - 1); }
    TraceLine *wayArray(unsigned set)
    {
        return &lines_[static_cast<std::size_t>(set) * assoc_];
    }

    unsigned sets_;
    unsigned assoc_;
    std::vector<TraceLine> lines_;
    std::uint64_t useClock_ = 0;
    ObsSink *obs_ = nullptr;

    Counter hits_;
    Counter misses_;
    Counter inserts_;
    Counter updates_;
    Counter evicts_;
    Counter profileUpdates_;
};

} // namespace ctcp

#endif // CTCPSIM_TRACECACHE_TRACE_CACHE_HH
