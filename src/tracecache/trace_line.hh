/**
 * @file
 * Trace-cache line representation.
 *
 * A trace holds up to 16 instructions spanning up to three basic
 * blocks. Its identity (TraceKey) is the start PC plus the embedded
 * directions of its conditional branches — path associativity in the
 * Rotenberg style. The fill unit physically reorders instructions into
 * issue slots (slot s feeds cluster s / clusterWidth) while the logical
 * program order is marked per slot; ctcpsim stores slots in logical
 * order with an explicit physical-slot field, which is the same
 * information transposed.
 *
 * Each slot also carries the paper's two FDRT profile fields: the
 * two-bit chain cluster and the two-bit leader/follower state.
 */

#ifndef CTCPSIM_TRACECACHE_TRACE_LINE_HH
#define CTCPSIM_TRACECACHE_TRACE_LINE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "cluster/timed_inst.hh"
#include "common/types.hh"

namespace ctcp {

/** Maximum instructions representable in one line (config may use fewer). */
inline constexpr unsigned traceLineMaxInsts = 16;
/** Maximum conditional branches whose directions a key can embed. */
inline constexpr unsigned traceLineMaxBranches = 8;

/** Path-associative trace identity. */
struct TraceKey
{
    Addr startPc = 0;
    /** Bit i = embedded direction of the i-th conditional branch. */
    std::uint32_t condDirs = 0;
    std::uint8_t numCondBranches = 0;

    bool
    operator==(const TraceKey &o) const
    {
        return startPc == o.startPc && condDirs == o.condDirs &&
               numCondBranches == o.numCondBranches;
    }

    /** Stable non-zero hash (used as the TimedInst::traceKey handle). */
    std::uint64_t
    hash() const
    {
        std::uint64_t h = startPc * 0x9e3779b97f4a7c15ull;
        h ^= (static_cast<std::uint64_t>(condDirs) << 8) | numCondBranches;
        h *= 0xff51afd7ed558ccdull;
        return h | 1;   // never zero (zero marks "no trace")
    }
};

/** One instruction's entry in a trace line. */
struct TraceSlot
{
    /** Word PC of the instruction. */
    Addr pc = 0;
    /** Physical issue-buffer slot assigned by the fill unit. */
    std::uint8_t physSlot = 0;
    /**
     * Memoized dispatch plan, computed once when the fill unit builds
     * the line: the cluster physSlot maps to under slot routing, and
     * the reservation-station class of the instruction's FU. Fetch
     * stamps these straight into the TimedInst instead of re-deriving
     * slot→cluster and FU→station per delivered instruction. Replaced
     * wholesale with the slot on line overwrite/eviction, so plans can
     * never outlive the line that produced them.
     */
    std::uint8_t cluster = 0xff;
    std::uint8_t station = 0xff;
    /** FDRT dynamic-profile fields. */
    ChainProfile profile;
};

/** A constructed trace line. */
struct TraceLine
{
    TraceKey key;
    /** Instructions in logical (program) order. */
    std::vector<TraceSlot> insts;
    /** PCs of the embedded conditional branches, in order. */
    std::vector<Addr> condBranchPcs;
    std::uint8_t numBlocks = 0;
    /** Trace ends with an indirect transfer (successor unpredictable). */
    bool endsWithIndirect = false;
    /** Next fetch PC along the embedded path (invalid for indirect). */
    Addr successorPc = 0;

    bool valid = false;
    std::uint64_t lastUse = 0;
    /** Cycle the line becomes fetchable (fill-unit latency). */
    Cycle availableAt = 0;

    std::size_t size() const { return insts.size(); }
};

} // namespace ctcp

#endif // CTCPSIM_TRACECACHE_TRACE_LINE_HH
