#include "tracecache/trace_cache.hh"

#include <algorithm>

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "obs/sink.hh"

namespace ctcp {

namespace {

// Out of line so the lookup path carries only the obs_ guard branch.
[[gnu::noinline]] [[gnu::cold]] void
recordTcEvent(ObsSink &obs, ObsKind kind, Cycle now, Addr start_pc,
              std::int64_t insts)
{
    ObsEvent ev;
    ev.cycle = now;
    ev.kind = kind;
    ev.pc = start_pc;
    ev.arg0 = insts;
    obs.record(ev);
}

} // namespace

TraceCache::TraceCache(const TraceCacheConfig &cfg)
    : sets_(cfg.entries / cfg.assoc), assoc_(cfg.assoc)
{
    ctcp_assert(isPowerOfTwo(sets_), "trace cache sets must be 2^n");
    lines_.resize(static_cast<std::size_t>(sets_) * assoc_);
}

const TraceLine *
TraceCache::lookup(Addr start_pc, const DirPredictFn &predict, Cycle now)
{
    TraceLine *ways = wayArray(setOf(start_pc));
    for (unsigned w = 0; w < assoc_; ++w) {
        TraceLine &line = ways[w];
        if (!line.valid || line.key.startPc != start_pc)
            continue;
        if (now != neverCycle && line.availableAt > now)
            continue;   // still in flight from the fill unit
        bool match = true;
        for (unsigned b = 0; b < line.key.numCondBranches; ++b) {
            const bool embedded = (line.key.condDirs >> b) & 1;
            if (predict(line.condBranchPcs[b], b) != embedded) {
                match = false;
                break;
            }
        }
        if (match) {
            line.lastUse = ++useClock_;
            ++hits_;
            // Probe lookups (tests, fill unit) pass neverCycle; only
            // real fetch-path lookups are timestamped events.
            if (obs_ && now != neverCycle &&
                obs_->enabled(ObsKind::TcHit)) {
                recordTcEvent(*obs_, ObsKind::TcHit, now, start_pc,
                              static_cast<std::int64_t>(
                                  line.insts.size()));
            }
            return &line;
        }
    }
    ++misses_;
    if (obs_ && now != neverCycle && obs_->enabled(ObsKind::TcMiss))
        recordTcEvent(*obs_, ObsKind::TcMiss, now, start_pc, 0);
    return nullptr;
}

void
TraceCache::insert(TraceLine line, Cycle available_at)
{
    ctcp_assert(!line.insts.empty(), "inserting an empty trace line");
    line.valid = true;
    line.lastUse = ++useClock_;
    line.availableAt = available_at;

    TraceLine *ways = wayArray(setOf(line.key.startPc));
    // Same identity: overwrite in place (trace reconstruction). The
    // resident copy keeps serving fetches while the refreshed one is
    // in flight, so availability never regresses — this is what makes
    // large fill-unit latencies nearly free (Section 4 of the paper):
    // only brand-new lines pay the latency.
    for (unsigned w = 0; w < assoc_; ++w) {
        if (ways[w].valid && ways[w].key == line.key) {
            line.availableAt = std::min(line.availableAt,
                                        ways[w].availableAt);
            ways[w] = std::move(line);
            ++updates_;
            return;
        }
    }
    // Otherwise fill an invalid way or evict true-LRU.
    TraceLine *victim = &ways[0];
    for (unsigned w = 0; w < assoc_; ++w) {
        if (!ways[w].valid) { victim = &ways[w]; break; }
        if (ways[w].lastUse < victim->lastUse)
            victim = &ways[w];
    }
    if (victim->valid)
        ++evicts_;
    *victim = std::move(line);
    ++inserts_;
}

bool
TraceCache::updateProfile(std::uint64_t key_hash, Addr pc,
                          const ChainProfile &profile)
{
    if (key_hash == 0)   // instruction was fetched from the I-cache
        return false;
    // The key hash does not localize the set, so scan; the trace cache
    // is small (1K lines) and promotions are rare relative to fetches.
    for (TraceLine &line : lines_) {
        if (!line.valid || line.key.hash() != key_hash)
            continue;
        bool any = false;
        for (TraceSlot &slot : line.insts) {
            if (slot.pc == pc && slot.profile.role == ChainRole::None) {
                slot.profile = profile;
                any = true;
            }
        }
        if (any)
            ++profileUpdates_;
        return any;
    }
    return false;
}

const TraceLine *
TraceCache::findByHash(std::uint64_t key_hash) const
{
    for (const TraceLine &line : lines_)
        if (line.valid && line.key.hash() == key_hash)
            return &line;
    return nullptr;
}

void
TraceCache::dumpStats(StatDump &out) const
{
    out.scalar("tc.hits", hits_.value());
    out.scalar("tc.misses", misses_.value());
    out.scalar("tc.hit_rate_pct",
               percent(hits_.value(), hits_.value() + misses_.value()));
    out.scalar("tc.insertions", inserts_.value());
    out.scalar("tc.updates", updates_.value());
    out.scalar("tc.evictions", evicts_.value());
    out.scalar("tc.profile_updates", profileUpdates_.value());
}

} // namespace ctcp
