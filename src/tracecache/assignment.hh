/**
 * @file
 * Retire-time cluster-assignment interface.
 *
 * The fill unit prepares a TraceDraft — the logical instruction list of
 * a newly constructed trace together with the intra-trace dependency
 * analysis and the dynamic feedback gathered during execution — and a
 * RetireAssignmentPolicy fills in the physical slot of every
 * instruction (slot s issues to cluster s / slotsPerCluster).
 * Policy implementations live in src/assign/.
 */

#ifndef CTCPSIM_TRACECACHE_ASSIGNMENT_HH
#define CTCPSIM_TRACECACHE_ASSIGNMENT_HH

#include <vector>

#include "cluster/timed_inst.hh"
#include "common/types.hh"

namespace ctcp {

class ObsSink;
class TraceCache;

/** Per-instruction input/output record for retire-time assignment. */
struct DraftInst
{
    // ---- Static identity ------------------------------------------------
    Addr pc = 0;
    RegId dst = invalidReg;
    RegId src1 = invalidReg;
    RegId src2 = invalidReg;
    bool writesDst = false;

    // ---- Dynamic feedback from this retirement ---------------------------
    /** 0 = register file, 1 = src1 producer, 2 = src2 producer. */
    int criticalSrc = 0;
    bool criticalForwarded = false;
    /** Critical input crossed the fetch-time trace boundary. */
    bool criticalInterTrace = false;
    Addr criticalProducerPc = 0;
    ChainProfile criticalProducerProfile;
    /** Profile fields the instruction carried through the pipeline. */
    ChainProfile carriedProfile;

    // ---- Fill-unit intra-trace analysis (within the NEW trace) ----------
    /** Logical index of the critical input's intra-trace producer, or -1. */
    int intraProducer = -1;
    /** Some later instruction in this trace consumes our result. */
    bool hasIntraConsumer = false;

    // ---- Assignment outputs ----------------------------------------------
    /** Physical issue slot; policies must set this for every inst. */
    int physSlot = -1;
    /** Profile fields to store in the new line (chain updates applied). */
    ChainProfile newProfile;
    /**
     * FDRT bookkeeping for Figure 7: 'A'..'E' per Table 5, 'S' for an
     * instruction skipped in the first pass, '-' for other policies.
     */
    char fdrtOption = '-';
};

/** A trace under construction, in logical order. */
struct TraceDraft
{
    std::vector<DraftInst> insts;
    unsigned numClusters = 4;
    unsigned slotsPerCluster = 4;

    unsigned totalSlots() const { return numClusters * slotsPerCluster; }

    ClusterId
    clusterOfSlot(int slot) const
    {
        return static_cast<ClusterId>(slot / static_cast<int>(slotsPerCluster));
    }
};

/** Retire-time cluster-assignment strategy. */
class RetireAssignmentPolicy
{
  public:
    virtual ~RetireAssignmentPolicy() = default;

    /** Fill in physSlot (and newProfile) for every draft instruction. */
    virtual void assign(TraceDraft &draft) = 0;

    /**
     * Hook invoked when a consumer's critical input arrives via
     * inter-trace forwarding; FDRT uses this for leader promotion.
     * Default: no feedback.
     */
    virtual void
    noteCriticalForward(const TimedInst &consumer, TraceCache &tc)
    {
        (void)consumer;
        (void)tc;
    }

    virtual const char *name() const = 0;

    /** Attach an observability sink (null = off, the default). */
    void setObs(ObsSink *obs) { obs_ = obs; }

    /**
     * Current cycle for events emitted inside assign(). The fill unit
     * sets this before each assign() call; assignment itself is not a
     * timed pipeline stage, so the policy cannot know the cycle
     * otherwise.
     */
    void setObsCycle(Cycle now) { obsCycle_ = now; }

  protected:
    ObsSink *obs_ = nullptr;
    Cycle obsCycle_ = 0;
};

} // namespace ctcp

#endif // CTCPSIM_TRACECACHE_ASSIGNMENT_HH
