/**
 * @file
 * The fill unit: constructs trace lines from the retiring instruction
 * stream, performs intra-trace dependency analysis, invokes the
 * retire-time cluster-assignment policy, and inserts the finished line
 * into the trace cache.
 *
 * Trace construction rules (Section 2.1 of the paper): a trace holds
 * up to maxInsts instructions and up to maxBlocks basic blocks; every
 * control transfer ends a basic block; an indirect transfer ends the
 * trace (its successor is not path-predictable).
 *
 * Because trace construction is deterministic in the retired stream,
 * refetching a line and retiring it reconstructs the same trace
 * identity, which is what lets the FDRT profile fields accumulate.
 */

#ifndef CTCPSIM_TRACECACHE_FILL_UNIT_HH
#define CTCPSIM_TRACECACHE_FILL_UNIT_HH

#include <vector>

#include "cluster/timed_inst.hh"
#include "config/sim_config.hh"
#include "stats/stats.hh"
#include "tracecache/assignment.hh"
#include "tracecache/trace_cache.hh"

namespace ctcp {

/** Observer interface for per-trace-construction instrumentation. */
class FillUnitObserver
{
  public:
    virtual ~FillUnitObserver() = default;
    /** Called after assignment, before the line is inserted. */
    virtual void onTraceConstructed(const TraceDraft &draft,
                                    const TraceLine &line) = 0;
};

/** Builds traces from the retire stream. */
class FillUnit
{
  public:
    FillUnit(const TraceCacheConfig &cfg, unsigned num_clusters,
             unsigned slots_per_cluster, TraceCache &tc,
             RetireAssignmentPolicy &policy);

    /**
     * Feed one retiring instruction (call in retirement order).
     * @param now retirement cycle (drives the configured fill latency)
     */
    void retire(const TimedInst &inst, Cycle now = 0);

    /** Finalize any partial trace (end of simulation). */
    void flush();

    /** Attach an instrumentation observer (not owned; may be null). */
    void setObserver(FillUnitObserver *observer) { observer_ = observer; }

    /** Attach an observability sink (null = off, the default). */
    void setObs(ObsSink *obs) { obs_ = obs; }

    std::uint64_t tracesBuilt() const { return traces_.value(); }

    /** Mean instructions per constructed trace. */
    double
    meanTraceSize() const
    {
        return ratio(instsInTraces_.value(), traces_.value());
    }

    void dumpStats(StatDump &out) const;

  private:
    struct PendingInst
    {
        DraftInst draft;
        Opcode op = Opcode::Nop;
        bool taken = false;
        Addr nextPc = 0;
    };

    void finalize(Cycle now);
    void analyzeIntraTrace(TraceDraft &draft) const;

    TraceCacheConfig cfg_;
    unsigned numClusters_;
    unsigned slotsPerCluster_;
    TraceCache &tc_;
    RetireAssignmentPolicy &policy_;
    FillUnitObserver *observer_ = nullptr;
    ObsSink *obs_ = nullptr;

    std::vector<PendingInst> pending_;
    unsigned blocks_ = 0;
    /**
     * Draft scratch reused across finalize() calls so the per-trace
     * analysis buffer stops paying an allocation per constructed trace
     * (one trace completes every few retired instructions).
     */
    TraceDraft draftScratch_;

    Counter traces_;
    Counter instsInTraces_;
};

} // namespace ctcp

#endif // CTCPSIM_TRACECACHE_FILL_UNIT_HH
