#include "tracecache/fill_unit.hh"

#include "cluster/station.hh"
#include "common/logging.hh"
#include "obs/sink.hh"

namespace ctcp {

FillUnit::FillUnit(const TraceCacheConfig &cfg, unsigned num_clusters,
                   unsigned slots_per_cluster, TraceCache &tc,
                   RetireAssignmentPolicy &policy)
    : cfg_(cfg), numClusters_(num_clusters),
      slotsPerCluster_(slots_per_cluster), tc_(tc), policy_(policy)
{
    ctcp_assert(num_clusters * slots_per_cluster == cfg.maxInsts,
                "trace line size must equal total issue slots");
}

void
FillUnit::retire(const TimedInst &inst, Cycle now)
{
    PendingInst p;
    p.op = inst.dyn.op;
    p.taken = inst.dyn.taken;
    p.nextPc = inst.dyn.nextPc;

    DraftInst &d = p.draft;
    d.pc = inst.dyn.pc;
    d.dst = inst.dyn.dst;
    d.src1 = inst.dyn.src1;
    d.src2 = inst.dyn.src2;
    d.writesDst = inst.dyn.hasDst();
    const TimedInstCold &cold = inst.cold();
    d.criticalSrc = cold.criticalSrc;
    d.criticalForwarded = cold.criticalForwarded;
    d.criticalInterTrace = cold.criticalInterTrace;
    d.criticalProducerPc = cold.criticalProducerPc;
    d.criticalProducerProfile = cold.criticalProducerProfile;
    d.carriedProfile = inst.profile;
    d.newProfile = inst.profile;   // policies may refine

    pending_.push_back(p);

    bool done = false;
    if (isBranch(p.op)) {
        ++blocks_;
        if (isIndirect(p.op) || blocks_ >= cfg_.maxBlocks)
            done = true;
        // A backward taken branch (loop-closing edge) also ends the
        // trace. This aligns trace boundaries to loop bodies so that a
        // loop reconstructs the same trace identities every iteration,
        // which is what lets the FDRT profile fields accumulate
        // meaningful history instead of phase-shifted noise.
        if (inst.dyn.taken && inst.dyn.targetPc <= inst.dyn.pc)
            done = true;
    }
    if (pending_.size() >= cfg_.maxInsts || p.op == Opcode::Halt)
        done = true;
    if (done)
        finalize(now);
}

void
FillUnit::flush()
{
    if (!pending_.empty())
        finalize(0);
}

void
FillUnit::analyzeIntraTrace(TraceDraft &draft) const
{
    const std::size_t n = draft.insts.size();
    // Critical intra-trace producer: last earlier writer of the
    // dynamically critical source register.
    for (std::size_t i = 0; i < n; ++i) {
        DraftInst &d = draft.insts[i];
        d.intraProducer = -1;
        if (d.criticalSrc == 0)
            continue;
        const RegId reg = d.criticalSrc == 1 ? d.src1 : d.src2;
        if (reg == invalidReg || reg == zeroReg)
            continue;
        for (std::size_t j = i; j-- > 0;) {
            if (draft.insts[j].writesDst && draft.insts[j].dst == reg) {
                d.intraProducer = static_cast<int>(j);
                break;
            }
        }
    }
    // Intra-trace consumer: someone later reads our destination before
    // it is redefined.
    for (std::size_t i = 0; i < n; ++i) {
        DraftInst &d = draft.insts[i];
        d.hasIntraConsumer = false;
        if (!d.writesDst)
            continue;
        for (std::size_t j = i + 1; j < n; ++j) {
            const DraftInst &c = draft.insts[j];
            if ((c.src1 == d.dst) || (c.src2 == d.dst)) {
                d.hasIntraConsumer = true;
                break;
            }
            if (c.writesDst && c.dst == d.dst)
                break;   // redefined before any use
        }
    }
}

void
FillUnit::finalize(Cycle now)
{
    ctcp_assert(!pending_.empty(), "finalize with no pending instructions");

    TraceDraft &draft = draftScratch_;
    draft.numClusters = numClusters_;
    draft.slotsPerCluster = slotsPerCluster_;
    draft.insts.clear();
    draft.insts.reserve(pending_.size());
    for (const PendingInst &p : pending_)
        draft.insts.push_back(p.draft);

    analyzeIntraTrace(draft);
    policy_.setObsCycle(now);
    policy_.assign(draft);

    TraceLine line;
    line.key.startPc = pending_.front().draft.pc;
    unsigned blocks = 0;
    for (const PendingInst &p : pending_) {
        if (isBranch(p.op)) {
            ++blocks;
            if (isConditionalBranch(p.op)) {
                ctcp_assert(line.key.numCondBranches < traceLineMaxBranches,
                            "too many conditional branches in one trace");
                if (p.taken)
                    line.key.condDirs |=
                        1u << line.key.numCondBranches;
                line.condBranchPcs.push_back(p.draft.pc);
                ++line.key.numCondBranches;
            }
            if (isIndirect(p.op))
                line.endsWithIndirect = true;
        }
    }
    line.numBlocks = static_cast<std::uint8_t>(blocks);
    line.successorPc = pending_.back().nextPc;

    line.insts.reserve(draft.insts.size());
    for (std::size_t i = 0; i < draft.insts.size(); ++i) {
        const DraftInst &d = draft.insts[i];
        ctcp_assert(d.physSlot >= 0 &&
                    d.physSlot < static_cast<int>(draft.totalSlots()),
                    "policy left an instruction without a physical slot");
        TraceSlot slot;
        slot.pc = d.pc;
        slot.physSlot = static_cast<std::uint8_t>(d.physSlot);
        // Memoized dispatch plan: this line's slot→cluster routing and
        // the instruction's station class are fixed once the policy
        // has placed it, so compute them here — fetch replays the two
        // bytes instead of re-deriving them per delivered instruction.
        slot.cluster =
            static_cast<std::uint8_t>(slot.physSlot / slotsPerCluster_);
        slot.station = static_cast<std::uint8_t>(
            stationFor(opcodeInfo(pending_[i].op).fu));
        slot.profile = d.newProfile;
        line.insts.push_back(slot);
    }

    if (observer_)
        observer_->onTraceConstructed(draft, line);
    if (obs_ && obs_->enabled(ObsKind::TraceBuild)) {
        ObsEvent ev;
        ev.cycle = now;
        ev.kind = ObsKind::TraceBuild;
        ev.pc = line.key.startPc;
        ev.arg0 = static_cast<std::int64_t>(draft.insts.size());
        ev.arg1 = line.numBlocks;
        obs_->record(ev);
    }

    ++traces_;
    instsInTraces_ += pending_.size();
    tc_.insert(std::move(line), now + cfg_.fillLatency);

    pending_.clear();
    blocks_ = 0;
}

void
FillUnit::dumpStats(StatDump &out) const
{
    out.scalar("fill.traces_built", traces_.value());
    out.scalar("fill.mean_trace_size", meanTraceSize());
}

} // namespace ctcp
