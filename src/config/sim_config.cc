#include "config/sim_config.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace ctcp {

const char *
assignStrategyName(AssignStrategy s)
{
    switch (s) {
      case AssignStrategy::BaseSlotOrder: return "base";
      case AssignStrategy::Friendly:      return "friendly";
      case AssignStrategy::Fdrt:          return "fdrt";
      case AssignStrategy::IssueTime:     return "issue-time";
    }
    return "unknown";
}

void
SimConfig::validate() const
{
    if (cluster.numClusters == 0 || cluster.numClusters > 8)
        ctcp_fatal("numClusters must be in 1..8 (got %u)",
                   cluster.numClusters);
    if (cluster.clusterWidth == 0)
        ctcp_fatal("clusterWidth must be positive");
    if (cluster.rsEntries == 0 || cluster.rsWritePorts == 0)
        ctcp_fatal("reservation stations need entries and write ports");
    if (cluster.bus && cluster.busBandwidth == 0)
        ctcp_fatal("bus interconnect needs bandwidth of at least one");
    if (cluster.bus && cluster.mesh)
        ctcp_fatal("bus and mesh interconnects are mutually exclusive");
    if (frontEnd.fetchWidth != machineWidth())
        ctcp_fatal("fetchWidth (%u) must equal numClusters*clusterWidth (%u)",
                   frontEnd.fetchWidth, machineWidth());
    if (frontEnd.traceCache.maxInsts != frontEnd.fetchWidth)
        ctcp_fatal("trace line size (%u) must equal fetchWidth (%u)",
                   frontEnd.traceCache.maxInsts, frontEnd.fetchWidth);
    if (!isPowerOfTwo(frontEnd.traceCache.entries) ||
        frontEnd.traceCache.assoc == 0 ||
        frontEnd.traceCache.entries % frontEnd.traceCache.assoc != 0)
        ctcp_fatal("trace cache geometry invalid");
    if (!isPowerOfTwo(mem.l1dSets) || !isPowerOfTwo(mem.l2Sets))
        ctcp_fatal("cache set counts must be powers of two");
    if (!isPowerOfTwo(bpred.gshareEntries) ||
        !isPowerOfTwo(bpred.bimodalEntries) ||
        !isPowerOfTwo(bpred.chooserEntries))
        ctcp_fatal("predictor table sizes must be powers of two");
    if (core.robEntries == 0 || core.retireWidth == 0)
        ctcp_fatal("ROB and retire width must be positive");
    if (mem.storeBufferEntries == 0 || mem.loadQueueEntries == 0)
        ctcp_fatal("store buffer and load queue must be non-empty");
    if (frontEnd.traceCache.maxBlocks == 0)
        ctcp_fatal("trace lines must allow at least one basic block");
}

} // namespace ctcp
