#include "config/sim_config.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "common/sim_error.hh"

namespace ctcp {

const char *
assignStrategyName(AssignStrategy s)
{
    switch (s) {
      case AssignStrategy::BaseSlotOrder: return "base";
      case AssignStrategy::Friendly:      return "friendly";
      case AssignStrategy::Fdrt:          return "fdrt";
      case AssignStrategy::IssueTime:     return "issue-time";
      case AssignStrategy::Adaptive:      return "adaptive";
    }
    return "unknown";
}

const char *
topologyName(Topology t)
{
    switch (t) {
      case Topology::LinearChain:  return "linear";
      case Topology::Ring:         return "ring";
      case Topology::Crossbar:     return "crossbar";
      case Topology::Hierarchical: return "hier";
      case Topology::Bus:          return "bus";
    }
    return "unknown";
}

bool
parseTopology(const std::string &name, Topology &out)
{
    if (name == "linear")
        out = Topology::LinearChain;
    else if (name == "ring" || name == "mesh")
        out = Topology::Ring;
    else if (name == "crossbar")
        out = Topology::Crossbar;
    else if (name == "hier")
        out = Topology::Hierarchical;
    else if (name == "bus")
        out = Topology::Bus;
    else
        return false;
    return true;
}

// Configuration errors throw (SimError, category Config) instead of
// exiting: a campaign job with a bad config must fail in isolation, and
// the CLI maps the category to exit code 2.
#define config_error(...) \
    throw SimError(ErrorCategory::Config, ::ctcp::detail::format(__VA_ARGS__))

void
SimConfig::validate() const
{
    if (cluster.numClusters == 0 || cluster.numClusters > 8)
        config_error("numClusters must be in 1..8 (got %u)",
                     cluster.numClusters);
    if (cluster.clusterWidth == 0)
        config_error("clusterWidth must be positive");
    if (cluster.rsEntries == 0 || cluster.rsWritePorts == 0)
        config_error("reservation stations need entries and write ports");
    if (cluster.effectiveTopology() == Topology::Bus &&
        cluster.busBandwidth == 0)
        config_error("bus interconnect needs bandwidth of at least one");
    if (cluster.bus && cluster.mesh)
        config_error("bus and mesh interconnects are mutually exclusive");
    if ((cluster.bus || cluster.mesh) &&
        cluster.topology != Topology::LinearChain)
        config_error("legacy mesh/bus flags cannot be combined with "
                     "topology '%s'; set cluster.topology instead",
                     topologyName(cluster.topology));
    if (cluster.effectiveTopology() == Topology::Hierarchical &&
        cluster.hierGroupSize == 0)
        config_error("hierarchical topology needs hierGroupSize >= 1");
    if (assign.strategy == AssignStrategy::Adaptive) {
        if (assign.adaptiveInterval == 0)
            config_error("adaptive strategy needs a positive interval");
        if (assign.adaptiveHysteresis == 0)
            config_error("adaptive hysteresis must be at least one");
        if (assign.adaptiveFwdHiPermille > 1000 ||
            assign.adaptiveFwdLoPermille > assign.adaptiveFwdHiPermille ||
            assign.adaptiveFwdMinPermille > assign.adaptiveFwdLoPermille)
            config_error("adaptive thresholds must satisfy "
                         "min <= lo <= hi <= 1000 per-mille");
    }
    if (frontEnd.fetchWidth != machineWidth())
        config_error("fetchWidth (%u) must equal numClusters*clusterWidth (%u)",
                     frontEnd.fetchWidth, machineWidth());
    if (frontEnd.traceCache.maxInsts != frontEnd.fetchWidth)
        config_error("trace line size (%u) must equal fetchWidth (%u)",
                     frontEnd.traceCache.maxInsts, frontEnd.fetchWidth);
    if (!isPowerOfTwo(frontEnd.traceCache.entries) ||
        frontEnd.traceCache.assoc == 0 ||
        frontEnd.traceCache.entries % frontEnd.traceCache.assoc != 0)
        config_error("trace cache geometry invalid");
    if (!isPowerOfTwo(mem.l1dSets) || !isPowerOfTwo(mem.l2Sets))
        config_error("cache set counts must be powers of two");
    if (!isPowerOfTwo(bpred.gshareEntries) ||
        !isPowerOfTwo(bpred.bimodalEntries) ||
        !isPowerOfTwo(bpred.chooserEntries))
        config_error("predictor table sizes must be powers of two");
    if (core.robEntries == 0 || core.retireWidth == 0)
        config_error("ROB and retire width must be positive");
    if (mem.storeBufferEntries == 0 || mem.loadQueueEntries == 0)
        config_error("store buffer and load queue must be non-empty");
    if (frontEnd.traceCache.maxBlocks == 0)
        config_error("trace lines must allow at least one basic block");
    if (deadlineSeconds < 0.0)
        config_error("deadlineSeconds must be non-negative");
}

} // namespace ctcp
