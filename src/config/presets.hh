/**
 * @file
 * Named machine configurations used throughout the evaluation.
 *
 * baseConfig() is Table 7; the other three are the Figure 8 variants
 * (mesh interconnect, one-cycle forwarding, and the eight-wide
 * two-cluster machine).
 */

#ifndef CTCPSIM_CONFIG_PRESETS_HH
#define CTCPSIM_CONFIG_PRESETS_HH

#include "config/sim_config.hh"

namespace ctcp {

/** The paper's baseline: 16-wide, 4 clusters, 2-cycle hops, linear. */
SimConfig baseConfig();

/** Figure 8, group 1: mesh interconnect (end clusters adjacent). */
SimConfig meshConfig();

/** Figure 8, group 2: one-cycle inter-cluster forwarding per hop. */
SimConfig oneCycleForwardConfig();

/**
 * Figure 8, group 3: eight-wide machine with two four-wide clusters
 * (half the execution resources; caches/predictor/TLB unchanged;
 * issue-time steering latency drops to two cycles).
 */
SimConfig twoClusterConfig();

/**
 * Ablation: shared-bus result interconnect (uniform 3-cycle broadcast,
 * one broadcast per cycle) instead of the point-to-point network —
 * the alternative Parcerisa et al. argue against.
 */
SimConfig busConfig();

/**
 * Forward-looking scaling point: eight four-wide clusters (32-wide
 * machine). Not evaluated in the paper; used by the scaling example
 * and ablation benches.
 */
SimConfig eightClusterConfig();

/** Baseline machine on a ring interconnect (topology = Ring). */
SimConfig ringConfig();

/** Baseline machine on a full crossbar (every remote cluster 1 hop). */
SimConfig crossbarConfig();

/**
 * Baseline machine on a two-level hierarchy: groups of two clusters,
 * one hop inside a group, two hops across groups.
 */
SimConfig hierConfig();

/**
 * Rescale @p cfg to @p num_clusters clusters of @p cluster_width slots:
 * recompute the fetch/decode/issue/retire widths, the trace-line size
 * and the width-proportional core resources (ROB = 8 x machine width;
 * 32-wide traces get a fourth basic block) the way the two- and
 * eight-cluster presets do. Shared by the presets, the CLI --clusters /
 * --cluster-width flags and the campaign-matrix clusters= axis so every
 * entry point derives the same machine.
 */
void applyMachineScale(SimConfig &cfg, unsigned num_clusters,
                       unsigned cluster_width);

} // namespace ctcp

#endif // CTCPSIM_CONFIG_PRESETS_HH
