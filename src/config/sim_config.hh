/**
 * @file
 * Complete machine configuration for the CTCP model.
 *
 * Defaults reproduce Table 7 of the paper (the baseline 16-wide,
 * four-cluster configuration). Presets for the Figure 8 architecture
 * variants live in config/presets.hh.
 */

#ifndef CTCPSIM_CONFIG_SIM_CONFIG_HH
#define CTCPSIM_CONFIG_SIM_CONFIG_HH

#include <cstdint>
#include <string>

namespace ctcp {

/** Dynamic cluster assignment strategies evaluated in the paper. */
enum class AssignStrategy : std::uint8_t
{
    /** Slot-position assignment as fetched (the paper's base machine). */
    BaseSlotOrder,
    /** Friendly et al. retire-time intra-trace reordering (MICRO-31). */
    Friendly,
    /** The paper's feedback-directed retire-time assignment. */
    Fdrt,
    /** Issue-time dependency steering (latency set separately). */
    IssueTime,
    /**
     * Phase-adaptive chooser: samples the cycle-accounting slot
     * taxonomy every interval and switches among the four strategies
     * above per program phase (src/assign/adaptive_steering).
     */
    Adaptive,
};

/** Human-readable strategy name. */
const char *assignStrategyName(AssignStrategy s);

/**
 * Inter-cluster forwarding-network topology. Every topology is
 * expressed as an NxN distance matrix (cluster hops) plus an NxN
 * latency matrix (cycles); the simulator, the accounting layer and the
 * steering policies consume only those matrices.
 */
enum class Topology : std::uint8_t
{
    /** Point-to-point chain; end clusters do not talk directly. */
    LinearChain,
    /** Chain with the ends joined (the paper's Figure 8 "mesh"). */
    Ring,
    /** Full point-to-point crossbar: every remote cluster is one hop. */
    Crossbar,
    /**
     * Two-level hierarchy: clusters form groups of hierGroupSize; one
     * hop inside a group, two hops (plus hierGroupLatency extra
     * cycles) across groups.
     */
    Hierarchical,
    /** Shared broadcast bus: uniform latency, limited bandwidth. */
    Bus,
};

/** Stable topology name used by the CLI and campaign-matrix specs. */
const char *topologyName(Topology t);

/** Parse a topology name; returns false on an unknown name. */
bool parseTopology(const std::string &name, Topology &out);

/** Execution-cluster geometry and interconnect. */
struct ClusterConfig
{
    unsigned numClusters = 4;
    /** Issue slots (and FU pipes) per cluster per cycle. */
    unsigned clusterWidth = 4;
    /** Entries per reservation station (five stations per cluster). */
    unsigned rsEntries = 8;
    /** New instructions a reservation station accepts per cycle. */
    unsigned rsWritePorts = 2;
    /** Inter-cluster forwarding latency per cluster hop, in cycles. */
    unsigned hopLatency = 2;
    /** Forwarding-network topology (Table 7 baseline: linear chain). */
    Topology topology = Topology::LinearChain;
    /** Hierarchical: clusters per first-level group. */
    unsigned hierGroupSize = 2;
    /** Hierarchical: extra cycles on top of two hops across groups. */
    unsigned hierGroupLatency = 0;
    /**
     * Legacy alias for topology = Ring, kept so existing presets and
     * flags keep meaning exactly what they meant. Must not be combined
     * with a non-linear `topology`.
     */
    bool mesh = false;
    /**
     * Legacy alias for topology = Bus: inter-cluster results broadcast
     * over a shared bus with uniform latency and limited bandwidth,
     * instead of the point-to-point network (the alternative Parcerisa
     * et al. argue against, modelled here for the ablation benches).
     */
    bool bus = false;
    /** Bus transfer latency (producer to any other cluster). */
    unsigned busLatency = 3;
    /** Broadcasts the bus can start per cycle. */
    unsigned busBandwidth = 1;

    /**
     * The topology after resolving the legacy mesh/bus aliases; the
     * single source of truth the Interconnect is built from.
     */
    Topology
    effectiveTopology() const
    {
        if (bus)
            return Topology::Bus;
        if (mesh)
            return Topology::Ring;
        return topology;
    }
};

/** Trace cache geometry (2-way, 1K-entry, 3-cycle access in the paper). */
struct TraceCacheConfig
{
    unsigned entries = 1024;
    unsigned assoc = 2;
    /** Maximum instructions per trace line. */
    unsigned maxInsts = 16;
    /** Maximum basic blocks (embedded conditional branches + 1). */
    unsigned maxBlocks = 3;
    /**
     * Fill-unit latency: cycles between trace construction at
     * retirement and the line becoming fetchable. The paper reports
     * that even 1000 cycles barely matters (Section 4); default 0.
     */
    unsigned fillLatency = 0;
};

/** Front-end (fetch/decode/rename) configuration. */
struct FrontEndConfig
{
    unsigned fetchWidth = 16;
    /** Pipeline stages for fetch (trace cache access time). */
    unsigned fetchStages = 3;
    unsigned decodeStages = 1;
    unsigned renameStages = 1;
    TraceCacheConfig traceCache;
    /** L1 I-cache: 4-way, 4 KB, 2-cycle (modelled as hit/miss tags). */
    unsigned icacheSets = 32;
    unsigned icacheAssoc = 4;
    unsigned icacheLineBytes = 32;
    unsigned icacheHitLatency = 2;
    /** Instructions fetchable from the I-cache per cycle (one block). */
    unsigned icacheFetchWidth = 4;
};

/** Branch predictor configuration (16k gshare/bimodal hybrid, 512x4 BTB). */
struct BranchPredictorConfig
{
    unsigned gshareEntries = 16384;
    unsigned bimodalEntries = 16384;
    unsigned chooserEntries = 16384;
    unsigned historyBits = 14;
    unsigned btbEntries = 512;
    unsigned btbAssoc = 4;
    unsigned rasEntries = 32;
};

/** Data-memory subsystem (Table 7 values). */
struct MemConfig
{
    unsigned l1dSets = 256;         ///< 4-way, 32 KB, 32 B lines
    unsigned l1dAssoc = 4;
    unsigned l1dLineBytes = 32;
    unsigned l1dHitLatency = 2;
    unsigned l2Sets = 8192;         ///< 4-way, 1 MB
    unsigned l2Assoc = 4;
    unsigned l2LineBytes = 32;
    unsigned l2ExtraLatency = 8;    ///< added to an L1 miss
    unsigned dtlbEntries = 128;
    unsigned dtlbAssoc = 4;
    unsigned dtlbHitLatency = 1;
    unsigned dtlbMissLatency = 30;
    unsigned pageBytes = 4096;
    unsigned storeBufferEntries = 32;
    unsigned loadQueueEntries = 32;
    unsigned mshrs = 16;
    unsigned cachePorts = 4;
    unsigned memLatency = 65;       ///< main memory, added to an L2 miss
};

/** Out-of-order core resources. */
struct CoreConfig
{
    unsigned robEntries = 128;
    unsigned decodeWidth = 16;
    unsigned issueWidth = 16;
    unsigned retireWidth = 16;
    unsigned registerFileLatency = 2;
};

/** Cluster-assignment policy selection and knobs. */
struct AssignConfig
{
    AssignStrategy strategy = AssignStrategy::BaseSlotOrder;
    /** Extra front-end stages for issue-time steering (0 = idealized). */
    unsigned issueTimeLatency = 4;
    /** FDRT: pin chain members permanently to their first cluster. */
    bool fdrtPinning = true;
    /**
     * FDRT: use inter-trace chains. Disabling isolates the intra-trace
     * heuristics (the Section 5.3 ablation).
     */
    bool fdrtChains = true;
    /**
     * Friendly-variant knob: bias unconstrained instructions toward the
     * middle clusters (the "minor adjustment" of Section 5.3).
     */
    bool friendlyMiddleBias = false;

    // ---- Adaptive strategy knobs (AssignStrategy::Adaptive) ---------
    /**
     * Cycles per evaluation interval: the chooser samples the
     * cycle-accounting slot taxonomy at every multiple of this.
     */
    std::uint64_t adaptiveInterval = 5000;
    /**
     * Consecutive intervals a challenger mode must win before the
     * chooser actually switches (hysteresis against phase jitter).
     */
    unsigned adaptiveHysteresis = 2;
    /**
     * Decision thresholds, in per-mille of the interval's attributed
     * slot-cycles. Integer so every comparison is exact 64-bit
     * arithmetic — the determinism contract (DESIGN decision 9).
     * wait_fwd share >= Hi: forwarding-bound, steer at issue time
     * (clean phases) or with FDRT (redirect-heavy phases);
     * in [Lo, Hi): FDRT; in [Min, Lo): Friendly; below Min: base.
     */
    unsigned adaptiveFwdHiPermille = 220;
    unsigned adaptiveFwdLoPermille = 60;
    unsigned adaptiveFwdMinPermille = 15;
    /** Redirect share above which issue-time's extra stages hurt. */
    unsigned adaptiveRedirectHiPermille = 80;
};

/**
 * Latency-ablation switches implementing the "No X Lat" experiments of
 * Figure 5. All default off (realistic latencies).
 */
struct AblationConfig
{
    bool zeroAllForwardLatency = false;
    bool zeroCriticalForwardLatency = false;
    bool zeroIntraTraceForwardLatency = false;
    bool zeroInterTraceForwardLatency = false;
    bool zeroRegisterFileLatency = false;
};

/** Debug/observability switches. */
struct DebugConfig
{
    /**
     * When non-empty, write a per-event pipeline trace (fetch, rename,
     * issue, dispatch, complete, retire) for the first `traceCycles`
     * cycles to this file path.
     */
    std::string pipelineTracePath;
    /** Cycles of pipeline trace to record. */
    std::uint64_t traceCycles = 1000;
    /**
     * Ignore the memoized per-trace-line dispatch plans and re-derive
     * slot→cluster / FU→station routing per fetched instruction, as if
     * the plan cache did not exist. Timing-neutral by construction;
     * exists so tests can prove cached and uncached runs produce
     * byte-identical stats.
     */
    bool disableDispatchPlans = false;
};

/**
 * Observability subsystem configuration (src/obs). All paths default
 * empty = off; a simulator with observability off carries a null
 * ObsSink pointer and pays one branch per instrumented site.
 */
struct ObsConfig
{
    /** Chrome trace_event JSON output path ("" = off). */
    std::string traceEventsPath;
    /** Compact per-event text output path ("" = off). */
    std::string traceTextPath;
    /** Event-kind filter spec for ObsSink::parseFilter ("" = all). */
    std::string traceFilter;
    /** Interval time-series output path ("" = off; .json for JSON). */
    std::string intervalPath;
    /** Interval sampling period in cycles (0 = off). */
    std::uint64_t intervalCycles = 0;
    /** Events staged in the sink ring between writer drains. */
    std::size_t ringCapacity = 8192;
    /**
     * Cycle-accounting layer (obs/accounting): attribute every cluster
     * issue slot each cycle to the closed stall taxonomy and collect
     * the forwarding-hop matrix. Fills SimResult::accounting; never
     * changes timing or the default (golden) exports.
     */
    bool accounting = false;

    /** Is any event tracing requested? */
    bool
    tracingEnabled() const
    {
        return !traceEventsPath.empty() || !traceTextPath.empty();
    }

    /** Is interval recording requested? */
    bool
    intervalEnabled() const
    {
        return !intervalPath.empty() && intervalCycles > 0;
    }
};

/** Top-level simulation configuration. */
struct SimConfig
{
    ClusterConfig cluster;
    FrontEndConfig frontEnd;
    BranchPredictorConfig bpred;
    MemConfig mem;
    CoreConfig core;
    AssignConfig assign;
    AblationConfig ablation;
    DebugConfig debug;
    ObsConfig obs;

    /** Stop after this many committed instructions (0 = run to Halt). */
    std::uint64_t instructionLimit = 2'000'000;

    /**
     * Invariant-checker level (src/verify): 0 = off (no per-cycle cost
     * beyond one null-pointer test), >= 1 = revalidate the scheduler's
     * derived state against first principles every cycle and throw
     * SimError(Invariant) on the first divergence.
     */
    unsigned checkLevel = 0;

    /**
     * Forward-progress watchdog: if no instruction retires for this
     * many cycles, the run dumps a pipeline snapshot and throws
     * SimError(Hang). 0 disables the watchdog entirely.
     */
    std::uint64_t watchdogCycles = 1'000'000;

    /**
     * Cooperative wall-clock deadline for one run, checked at cycle
     * boundaries; exceeding it throws SimError(Timeout). 0 = none.
     */
    double deadlineSeconds = 0.0;

    /**
     * Consistency-check the configuration.
     * @throws SimError (category Config) on invalid setups
     */
    void validate() const;

    /** Total issue slots per cycle (numClusters * clusterWidth). */
    unsigned machineWidth() const
    {
        return cluster.numClusters * cluster.clusterWidth;
    }
};

} // namespace ctcp

#endif // CTCPSIM_CONFIG_SIM_CONFIG_HH
