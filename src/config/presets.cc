#include "config/presets.hh"

namespace ctcp {

SimConfig
baseConfig()
{
    SimConfig cfg;   // defaults are Table 7
    cfg.validate();
    return cfg;
}

SimConfig
meshConfig()
{
    SimConfig cfg = baseConfig();
    cfg.cluster.mesh = true;
    cfg.validate();
    return cfg;
}

SimConfig
oneCycleForwardConfig()
{
    SimConfig cfg = baseConfig();
    cfg.cluster.hopLatency = 1;
    cfg.validate();
    return cfg;
}

SimConfig
busConfig()
{
    SimConfig cfg = baseConfig();
    cfg.cluster.bus = true;
    cfg.validate();
    return cfg;
}

SimConfig
eightClusterConfig()
{
    SimConfig cfg = baseConfig();
    cfg.cluster.numClusters = 8;
    cfg.frontEnd.fetchWidth = 32;
    cfg.frontEnd.traceCache.maxInsts = 32;
    cfg.frontEnd.traceCache.maxBlocks = 4;
    cfg.core.decodeWidth = 32;
    cfg.core.issueWidth = 32;
    cfg.core.retireWidth = 32;
    cfg.core.robEntries = 256;
    cfg.validate();
    return cfg;
}

SimConfig
twoClusterConfig()
{
    SimConfig cfg = baseConfig();
    cfg.cluster.numClusters = 2;
    cfg.frontEnd.fetchWidth = 8;
    cfg.frontEnd.traceCache.maxInsts = 8;
    cfg.core.decodeWidth = 8;
    cfg.core.issueWidth = 8;
    cfg.core.retireWidth = 8;
    cfg.core.robEntries = 64;
    cfg.assign.issueTimeLatency = 2;
    cfg.validate();
    return cfg;
}

} // namespace ctcp
