#include "config/presets.hh"

namespace ctcp {

SimConfig
baseConfig()
{
    SimConfig cfg;   // defaults are Table 7
    cfg.validate();
    return cfg;
}

SimConfig
meshConfig()
{
    SimConfig cfg = baseConfig();
    cfg.cluster.mesh = true;
    cfg.validate();
    return cfg;
}

SimConfig
oneCycleForwardConfig()
{
    SimConfig cfg = baseConfig();
    cfg.cluster.hopLatency = 1;
    cfg.validate();
    return cfg;
}

SimConfig
busConfig()
{
    SimConfig cfg = baseConfig();
    cfg.cluster.bus = true;
    cfg.validate();
    return cfg;
}

SimConfig
eightClusterConfig()
{
    SimConfig cfg = baseConfig();
    applyMachineScale(cfg, 8, 4);
    cfg.validate();
    return cfg;
}

SimConfig
twoClusterConfig()
{
    SimConfig cfg = baseConfig();
    applyMachineScale(cfg, 2, 4);
    cfg.assign.issueTimeLatency = 2;
    cfg.validate();
    return cfg;
}

SimConfig
ringConfig()
{
    SimConfig cfg = baseConfig();
    cfg.cluster.topology = Topology::Ring;
    cfg.validate();
    return cfg;
}

SimConfig
crossbarConfig()
{
    SimConfig cfg = baseConfig();
    cfg.cluster.topology = Topology::Crossbar;
    cfg.validate();
    return cfg;
}

SimConfig
hierConfig()
{
    SimConfig cfg = baseConfig();
    cfg.cluster.topology = Topology::Hierarchical;
    cfg.cluster.hierGroupSize = 2;
    cfg.validate();
    return cfg;
}

void
applyMachineScale(SimConfig &cfg, unsigned num_clusters,
                  unsigned cluster_width)
{
    cfg.cluster.numClusters = num_clusters;
    cfg.cluster.clusterWidth = cluster_width;
    const unsigned width = num_clusters * cluster_width;
    cfg.frontEnd.fetchWidth = width;
    cfg.frontEnd.traceCache.maxInsts = width;
    cfg.frontEnd.traceCache.maxBlocks = width >= 32 ? 4 : 3;
    cfg.core.decodeWidth = width;
    cfg.core.issueWidth = width;
    cfg.core.retireWidth = width;
    cfg.core.robEntries = 8 * width;
}

} // namespace ctcp
