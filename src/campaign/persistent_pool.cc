#include "campaign/persistent_pool.hh"

#include "campaign/work_queue.hh"

namespace ctcp::campaign {

PersistentPool::PersistentPool(unsigned workers)
{
    const unsigned n = workers ? workers : hardwareWorkers();
    threads_.reserve(n);
    for (unsigned w = 0; w < n; ++w)
        threads_.emplace_back([this] { workerLoop(); });
}

PersistentPool::~PersistentPool()
{
    shutdown();
}

void
PersistentPool::workerLoop()
{
    while (true) {
        Task task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock,
                       [this] { return stopping_ || !tasks_.empty(); });
            if (tasks_.empty())
                return; // stopping_ and drained
            task = tasks_.front();
            tasks_.pop_front();
            ++busy_;
        }
        (*task.batch->body)(task.index);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --busy_;
            ++executed_;
            if (--task.batch->remaining == 0)
                task.batch->done.notify_all();
        }
    }
}

void
PersistentPool::run(std::size_t njobs,
                    const std::function<void(std::size_t)> &body)
{
    if (njobs == 0)
        return;

    Batch batch;
    batch.body = &body;
    batch.remaining = njobs;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (stopping_) {
            // Teardown fallback: run the batch inline rather than
            // queueing jobs no worker will ever pop.
            lock.unlock();
            for (std::size_t i = 0; i < njobs; ++i) {
                body(i);
                std::lock_guard<std::mutex> relock(mutex_);
                ++executed_;
            }
            return;
        }
        for (std::size_t i = 0; i < njobs; ++i)
            tasks_.push_back(Task{&batch, i});
    }
    wake_.notify_all();

    std::unique_lock<std::mutex> lock(mutex_);
    batch.done.wait(lock, [&batch] { return batch.remaining == 0; });
}

PersistentPool::Snapshot
PersistentPool::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Snapshot snap;
    snap.workers = static_cast<unsigned>(threads_.size());
    snap.busyWorkers = busy_;
    snap.queuedTasks = tasks_.size();
    snap.executedTasks = executed_;
    return snap;
}

void
PersistentPool::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_ && threads_.empty())
            return;
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread &t : threads_)
        if (t.joinable())
            t.join();
    threads_.clear();
}

} // namespace ctcp::campaign
