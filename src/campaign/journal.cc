#include "campaign/journal.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"
#include "common/sim_error.hh"

namespace ctcp::campaign {

namespace {

// ---- Encoding ----------------------------------------------------------

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
put(std::string &out, const char *key, const std::string &value)
{
    out += '"';
    out += key;
    out += "\":\"";
    out += escape(value);
    out += "\",";
}

void
put(std::string &out, const char *key, std::uint64_t value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "\"%s\":%llu,", key,
                  static_cast<unsigned long long>(value));
    out += buf;
}

// %.17g is enough digits for an exact double round-trip, so a journal
// replay reproduces the original report bytes.
void
put(std::string &out, const char *key, double value)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "\"%s\":%.17g,", key, value);
    out += buf;
}

std::string
encodeResult(const SimResult &r)
{
    std::string out = "{";
    put(out, "benchmark", r.benchmark);
    put(out, "strategy", r.strategy);
    put(out, "cycles", r.cycles);
    put(out, "instructions", r.instructions);
    put(out, "pctFromTraceCache", r.pctFromTraceCache);
    put(out, "meanTraceSize", r.meanTraceSize);
    put(out, "pctCritFromRF", r.pctCritFromRF);
    put(out, "pctCritFromRs1", r.pctCritFromRs1);
    put(out, "pctCritFromRs2", r.pctCritFromRs2);
    put(out, "pctDepsCritical", r.pctDepsCritical);
    put(out, "pctCritInterTrace", r.pctCritInterTrace);
    put(out, "repeatRs1", r.repeatRs1);
    put(out, "repeatRs2", r.repeatRs2);
    put(out, "repeatRs1CritInter", r.repeatRs1CritInter);
    put(out, "repeatRs2CritInter", r.repeatRs2CritInter);
    put(out, "pctIntraClusterFwd", r.pctIntraClusterFwd);
    put(out, "meanFwdDistance", r.meanFwdDistance);
    put(out, "pctOptionA", r.pctOptionA);
    put(out, "pctOptionB", r.pctOptionB);
    put(out, "pctOptionC", r.pctOptionC);
    put(out, "pctOptionD", r.pctOptionD);
    put(out, "pctOptionE", r.pctOptionE);
    put(out, "pctSkipped", r.pctSkipped);
    put(out, "migrationAllPct", r.migrationAllPct);
    put(out, "migrationChainPct", r.migrationChainPct);
    put(out, "bpredAccuracy", r.bpredAccuracy);
    put(out, "tcHitRate", r.tcHitRate);
    put(out, "mispredicts", r.mispredicts);
    put(out, "hostSeconds", r.hostSeconds);
    put(out, "statsText", r.statsText);
    out += "\"metrics\":{";
    bool first = true;
    for (const auto &[name, value] : r.metrics) {
        if (!first)
            out += ',';
        first = false;
        char buf[192];
        std::snprintf(buf, sizeof(buf), "\"%s\":%.17g",
                      escape(name).c_str(), value);
        out += buf;
    }
    out += "}";
    // Only present for accounting-enabled runs, so journals written by
    // older builds decode unchanged and plain runs keep their exact
    // record bytes.
    if (!r.accounting.empty()) {
        out += ",\"accounting\":{";
        first = true;
        for (const auto &[name, value] : r.accounting) {
            if (!first)
                out += ',';
            first = false;
            char buf[192];
            std::snprintf(buf, sizeof(buf), "\"%s\":%.17g",
                          escape(name).c_str(), value);
            out += buf;
        }
        out += "}";
    }
    out += "}";
    return out;
}

// ---- Decoding ----------------------------------------------------------
//
// Minimal recursive-descent JSON parser, sufficient for the records
// this file writes (objects, strings, numbers). Any deviation —
// including a line truncated by a crash mid-append — makes a parse
// function return false, and the caller skips the record.

struct JsonValue
{
    enum class Kind : std::uint8_t { Null, Number, String, Object };

    Kind kind = Kind::Null;
    /** Raw numeric text; lets integers convert without a double trip. */
    std::string number;
    std::string str;
    std::vector<std::pair<std::string, JsonValue>> object;

    const JsonValue *
    find(const char *key) const
    {
        for (const auto &[k, v] : object)
            if (k == key)
                return &v;
        return nullptr;
    }
};

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    bool
    parse(JsonValue &out)
    {
        skipSpace();
        if (!parseValue(out))
            return false;
        skipSpace();
        return pos_ == text_.size();
    }

  private:
    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char c)
    {
        skipSpace();
        if (pos_ >= text_.size() || text_[pos_] != c)
            return false;
        ++pos_;
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        skipSpace();
        if (pos_ >= text_.size())
            return false;
        const char c = text_[pos_];
        if (c == '{')
            return parseObject(out);
        if (c == '"') {
            out.kind = JsonValue::Kind::String;
            return parseString(out.str);
        }
        if (c == '-' || (c >= '0' && c <= '9'))
            return parseNumber(out);
        return false;
    }

    bool
    parseObject(JsonValue &out)
    {
        if (!consume('{'))
            return false;
        out.kind = JsonValue::Kind::Object;
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            std::string key;
            if (!parseString(key))
                return false;
            if (!consume(':'))
                return false;
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.object.emplace_back(std::move(key), std::move(value));
            skipSpace();
            if (pos_ >= text_.size())
                return false;
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return false;
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':  out += '"'; break;
              case '\\': out += '\\'; break;
              case '/':  out += '/'; break;
              case 'n':  out += '\n'; break;
              case 'r':  out += '\r'; break;
              case 't':  out += '\t'; break;
              case 'b':  out += '\b'; break;
              case 'f':  out += '\f'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return false;
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= h - '0';
                    else if (h >= 'a' && h <= 'f')
                        code |= h - 'a' + 10;
                    else if (h >= 'A' && h <= 'F')
                        code |= h - 'A' + 10;
                    else
                        return false;
                }
                // The encoder only emits \u00xx (control characters).
                out += static_cast<char>(code & 0xff);
                break;
              }
              default:
                return false;
            }
        }
        return false; // unterminated (truncated record)
    }

    bool
    parseNumber(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if ((c >= '0' && c <= '9') || c == '.' || c == 'e' ||
                c == 'E' || c == '+' || c == '-')
                ++pos_;
            else
                break;
        }
        if (pos_ == start)
            return false;
        out.kind = JsonValue::Kind::Number;
        out.number = text_.substr(start, pos_ - start);
        return true;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

bool
getString(const JsonValue &obj, const char *key, std::string &out)
{
    const JsonValue *v = obj.find(key);
    if (!v || v->kind != JsonValue::Kind::String)
        return false;
    out = v->str;
    return true;
}

bool
getU64(const JsonValue &obj, const char *key, std::uint64_t &out)
{
    const JsonValue *v = obj.find(key);
    if (!v || v->kind != JsonValue::Kind::Number)
        return false;
    out = std::strtoull(v->number.c_str(), nullptr, 10);
    return true;
}

bool
getDouble(const JsonValue &obj, const char *key, double &out)
{
    const JsonValue *v = obj.find(key);
    if (!v || v->kind != JsonValue::Kind::Number)
        return false;
    out = std::strtod(v->number.c_str(), nullptr);
    return true;
}

bool
decodeResult(const JsonValue &obj, SimResult &r)
{
    bool ok = getString(obj, "benchmark", r.benchmark) &&
        getString(obj, "strategy", r.strategy) &&
        getU64(obj, "cycles", r.cycles) &&
        getU64(obj, "instructions", r.instructions) &&
        getDouble(obj, "pctFromTraceCache", r.pctFromTraceCache) &&
        getDouble(obj, "meanTraceSize", r.meanTraceSize) &&
        getDouble(obj, "pctCritFromRF", r.pctCritFromRF) &&
        getDouble(obj, "pctCritFromRs1", r.pctCritFromRs1) &&
        getDouble(obj, "pctCritFromRs2", r.pctCritFromRs2) &&
        getDouble(obj, "pctDepsCritical", r.pctDepsCritical) &&
        getDouble(obj, "pctCritInterTrace", r.pctCritInterTrace) &&
        getDouble(obj, "repeatRs1", r.repeatRs1) &&
        getDouble(obj, "repeatRs2", r.repeatRs2) &&
        getDouble(obj, "repeatRs1CritInter", r.repeatRs1CritInter) &&
        getDouble(obj, "repeatRs2CritInter", r.repeatRs2CritInter) &&
        getDouble(obj, "pctIntraClusterFwd", r.pctIntraClusterFwd) &&
        getDouble(obj, "meanFwdDistance", r.meanFwdDistance) &&
        getDouble(obj, "pctOptionA", r.pctOptionA) &&
        getDouble(obj, "pctOptionB", r.pctOptionB) &&
        getDouble(obj, "pctOptionC", r.pctOptionC) &&
        getDouble(obj, "pctOptionD", r.pctOptionD) &&
        getDouble(obj, "pctOptionE", r.pctOptionE) &&
        getDouble(obj, "pctSkipped", r.pctSkipped) &&
        getDouble(obj, "migrationAllPct", r.migrationAllPct) &&
        getDouble(obj, "migrationChainPct", r.migrationChainPct) &&
        getDouble(obj, "bpredAccuracy", r.bpredAccuracy) &&
        getDouble(obj, "tcHitRate", r.tcHitRate) &&
        getU64(obj, "mispredicts", r.mispredicts) &&
        getDouble(obj, "hostSeconds", r.hostSeconds) &&
        getString(obj, "statsText", r.statsText);
    if (!ok)
        return false;
    const JsonValue *metrics = obj.find("metrics");
    if (!metrics || metrics->kind != JsonValue::Kind::Object)
        return false;
    r.metrics.clear();
    for (const auto &[name, value] : metrics->object) {
        if (value.kind != JsonValue::Kind::Number)
            return false;
        r.metrics[name] = std::strtod(value.number.c_str(), nullptr);
    }
    // Optional: only accounting-enabled runs write this block.
    r.accounting.clear();
    if (const JsonValue *acct = obj.find("accounting")) {
        if (acct->kind != JsonValue::Kind::Object)
            return false;
        for (const auto &[name, value] : acct->object) {
            if (value.kind != JsonValue::Kind::Number)
                return false;
            r.accounting[name] =
                std::strtod(value.number.c_str(), nullptr);
        }
    }
    return true;
}

} // namespace

std::string
encodeJournalRecord(std::size_t index, const JobOutcome &outcome)
{
    std::string out = "{";
    put(out, "index", static_cast<std::uint64_t>(index));
    put(out, "label", outcome.label);
    put(out, "benchmark", outcome.benchmark);
    put(out, "status", std::string(outcome.ok() ? "ok" : "failed"));
    put(out, "category",
        std::string(errorCategoryName(outcome.category)));
    put(out, "attempts", static_cast<std::uint64_t>(outcome.attempts));
    put(out, "error", outcome.error);
    if (outcome.ok()) {
        out += "\"result\":";
        out += encodeResult(outcome.result);
    } else {
        out.pop_back(); // trailing comma
    }
    out += "}\n";
    return out;
}

bool
decodeJournalRecord(const std::string &line, JournalRecord &record)
{
    JsonValue root;
    if (!Parser(line).parse(root) ||
        root.kind != JsonValue::Kind::Object)
        return false;

    JournalRecord parsed;
    std::uint64_t index = 0;
    std::string status;
    std::string category;
    std::uint64_t attempts = 0;
    if (!getU64(root, "index", index) ||
        !getString(root, "label", parsed.outcome.label) ||
        !getString(root, "benchmark", parsed.outcome.benchmark) ||
        !getString(root, "status", status) ||
        !getString(root, "category", category) ||
        !getU64(root, "attempts", attempts) ||
        !getString(root, "error", parsed.outcome.error))
        return false;
    if (status != "ok" && status != "failed")
        return false;
    parsed.index = static_cast<std::size_t>(index);
    parsed.outcome.status =
        status == "ok" ? JobStatus::Ok : JobStatus::Failed;
    parsed.outcome.category = errorCategoryFromName(category);
    parsed.outcome.attempts =
        attempts ? static_cast<unsigned>(attempts) : 1;
    if (parsed.outcome.ok()) {
        const JsonValue *result = root.find("result");
        if (!result || result->kind != JsonValue::Kind::Object ||
            !decodeResult(*result, parsed.outcome.result))
            return false;
    }
    record = std::move(parsed);
    return true;
}

std::vector<JournalRecord>
loadJournal(const std::string &path)
{
    std::vector<JournalRecord> records;
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        return records; // no journal yet: fresh campaign
    std::string line;
    char buf[4096];
    std::size_t skipped = 0;
    auto flushLine = [&] {
        if (line.empty())
            return;
        JournalRecord record;
        if (decodeJournalRecord(line, record))
            records.push_back(std::move(record));
        else
            ++skipped;
        line.clear();
    };
    while (std::fgets(buf, sizeof(buf), file)) {
        line += buf;
        if (!line.empty() && line.back() == '\n') {
            line.pop_back();
            flushLine();
        }
    }
    flushLine(); // trailing data without a newline (crash mid-append)
    std::fclose(file);
    if (skipped)
        ctcp_warn("journal %s: skipped %zu undecodable record%s "
                  "(interrupted write?)",
                  path.c_str(), skipped, skipped == 1 ? "" : "s");
    return records;
}

std::string
readJournalTail(const std::string &path, std::uint64_t offset,
                std::uint64_t &next)
{
    next = offset;
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        return {}; // nothing appended yet
    std::string bytes;
    if (std::fseek(file, static_cast<long>(offset), SEEK_SET) == 0) {
        char buf[4096];
        std::size_t n;
        while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0)
            bytes.append(buf, n);
    }
    std::fclose(file);
    // Only hand out whole lines: drop any torn tail (an append still
    // in flight, or the remnant of a crash) back into the stream for
    // the next poll.
    const std::size_t last_newline = bytes.rfind('\n');
    if (last_newline == std::string::npos)
        return {};
    bytes.resize(last_newline + 1);
    next = offset + bytes.size();
    return bytes;
}

JournalWriter::JournalWriter(std::string path)
    : path_(std::move(path))
{
    file_ = std::fopen(path_.c_str(), "ab");
    if (!file_)
        throw SimError(ErrorCategory::Config,
                       "cannot open journal " + path_ + ": " +
                           std::strerror(errno));
}

JournalWriter::~JournalWriter()
{
    if (file_)
        std::fclose(file_);
}

void
JournalWriter::append(std::size_t index, const JobOutcome &outcome)
{
    const std::string record = encodeJournalRecord(index, outcome);
    std::lock_guard<std::mutex> lock(mutex_);
    if (std::fwrite(record.data(), 1, record.size(), file_) !=
        record.size() ||
        std::fflush(file_) != 0)
        ctcp_warn("journal %s: write failed: %s (resume may re-run "
                  "this job)",
                  path_.c_str(), std::strerror(errno));
}

} // namespace ctcp::campaign
