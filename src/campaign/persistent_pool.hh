/**
 * @file
 * Long-lived worker pool shared across campaigns.
 *
 * WorkStealingPool (work_queue.hh) spins up threads per runCampaign()
 * call and joins them at the end — the right shape for a batch process
 * that runs one campaign and exits. A service that accepts campaign
 * submissions over its lifetime needs the opposite: one set of worker
 * threads that outlives any single campaign, onto which concurrently
 * submitted campaigns enqueue their jobs. PersistentPool is that pool:
 * run() blocks the calling thread (a per-run dispatcher in ctcpd)
 * until its batch finishes, while the batch's jobs interleave with
 * other batches' jobs on the shared workers.
 *
 * Scheduling order across batches is nondeterministic, exactly like
 * the work-stealing pool's order within a batch — which is fine for
 * the same reason: the campaign layer writes every outcome into a
 * slot preassigned by submission index, so reports never depend on
 * execution order.
 */

#ifndef CTCPSIM_CAMPAIGN_PERSISTENT_POOL_HH
#define CTCPSIM_CAMPAIGN_PERSISTENT_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ctcp::campaign {

/**
 * Fixed set of worker threads executing indexed jobs from any number
 * of concurrent run() calls. Threads start in the constructor and are
 * joined by shutdown() (or the destructor).
 */
class PersistentPool
{
  public:
    /** @param workers thread count; 0 = one per hardware thread */
    explicit PersistentPool(unsigned workers = 0);
    ~PersistentPool();

    PersistentPool(const PersistentPool &) = delete;
    PersistentPool &operator=(const PersistentPool &) = delete;

    unsigned workers() const { return static_cast<unsigned>(threads_.size()); }

    /**
     * Point-in-time occupancy counters, maintained under the pool's
     * own mutex so observers (the ctcpd /v1/metrics scrape) add no
     * dependency and no new synchronization to the job path.
     */
    struct Snapshot
    {
        unsigned workers = 0;          ///< thread count
        std::size_t busyWorkers = 0;   ///< currently executing a job
        std::size_t queuedTasks = 0;   ///< enqueued, not yet started
        std::uint64_t executedTasks = 0; ///< jobs completed, ever
    };

    Snapshot snapshot() const;

    /**
     * Run @p body(i) for every i in [0, njobs) on the pool's workers
     * and block until all have finished. Safe to call from multiple
     * threads at once; the batches' jobs interleave. @p body must not
     * throw (same contract as WorkStealingPool::run).
     *
     * After shutdown() the batch runs inline on the calling thread, so
     * a race between a late submission and service teardown degrades
     * to serial execution instead of hanging.
     */
    void run(std::size_t njobs, const std::function<void(std::size_t)> &body);

    /** Stop the workers once the queue drains, and join them. */
    void shutdown();

  private:
    /** One run() call: its body and completion accounting. */
    struct Batch
    {
        const std::function<void(std::size_t)> *body = nullptr;
        std::size_t remaining = 0;
        std::condition_variable done;
    };

    /** One queued job: which batch, which index. */
    struct Task
    {
        Batch *batch = nullptr;
        std::size_t index = 0;
    };

    void workerLoop();

    mutable std::mutex mutex_;
    std::condition_variable wake_;
    std::deque<Task> tasks_;
    bool stopping_ = false;
    std::size_t busy_ = 0;           ///< workers inside a job body
    std::uint64_t executed_ = 0;     ///< jobs completed, ever
    std::vector<std::thread> threads_;
};

} // namespace ctcp::campaign

#endif // CTCPSIM_CAMPAIGN_PERSISTENT_POOL_HH
