/**
 * @file
 * Crash-safe campaign checkpointing: an append-only JSONL journal of
 * completed job outcomes.
 *
 * Every finished job (ok or failed) is appended as one self-contained
 * JSON line and flushed immediately, so a killed campaign loses at
 * most the jobs that were still in flight. On restart with the same
 * journal path, recorded outcomes are replayed into their submission
 * slots and only the remaining jobs run — the final report is
 * byte-identical to an uninterrupted run.
 *
 * The format tolerates a crash mid-append: a partial or corrupt
 * trailing line fails to decode and is skipped on load (that job
 * simply re-runs). Records whose index or label does not match the
 * campaign being resumed are ignored with a warning, so a stale
 * journal cannot inject foreign results.
 */

#ifndef CTCPSIM_CAMPAIGN_JOURNAL_HH
#define CTCPSIM_CAMPAIGN_JOURNAL_HH

#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "campaign/campaign.hh"

namespace ctcp::campaign {

/** One journal entry: a completed outcome and its submission index. */
struct JournalRecord
{
    std::size_t index = 0;
    JobOutcome outcome;
};

/**
 * Serialize one completed job as a single newline-terminated JSON
 * line. Doubles round-trip exactly (%.17g), so a replayed SimResult
 * reproduces the original report bytes.
 */
std::string encodeJournalRecord(std::size_t index,
                                const JobOutcome &outcome);

/**
 * Parse one journal line. @return false (leaving @p record
 * untouched) when the line is truncated or corrupt.
 */
bool decodeJournalRecord(const std::string &line, JournalRecord &record);

/**
 * Load every decodable record from @p path. A missing file yields an
 * empty vector (fresh campaign); undecodable lines are skipped.
 */
std::vector<JournalRecord> loadJournal(const std::string &path);

/**
 * Tail-read the journal as a stream of complete records: returns the
 * bytes of every newline-terminated line starting at byte @p offset
 * verbatim (newlines included) and sets @p next to the offset just
 * past the last complete line, i.e. the @p offset to pass on the next
 * call. A torn trailing line (append in progress, or a crash
 * mid-write) is never consumed, so readers only ever see whole
 * records; a missing file or an offset at or past the last newline
 * yields "" and next == offset.
 *
 * This is the wire format of ctcpd's GET /v1/runs/<id>/events
 * endpoint: the journal bytes ARE the event stream, so a client that
 * concatenates every chunk it receives holds exactly the journal —
 * and can decode it with decodeJournalRecord line by line.
 */
std::string readJournalTail(const std::string &path, std::uint64_t offset,
                            std::uint64_t &next);

/** Appends records to the journal file; safe from worker threads. */
class JournalWriter
{
  public:
    /**
     * Opens @p path for appending (existing records are preserved —
     * that is the resume contract).
     * @throws SimError (category Config) when the file cannot be opened
     */
    explicit JournalWriter(std::string path);
    ~JournalWriter();

    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    /** Append one outcome and flush it to the OS before returning. */
    void append(std::size_t index, const JobOutcome &outcome);

  private:
    std::string path_;
    std::FILE *file_ = nullptr;
    std::mutex mutex_;
};

} // namespace ctcp::campaign

#endif // CTCPSIM_CAMPAIGN_JOURNAL_HH
