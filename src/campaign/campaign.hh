/**
 * @file
 * Campaign engine: run an arbitrary matrix of independent
 * (workload x configuration) simulations across a work-stealing thread
 * pool with deterministic aggregation.
 *
 * Guarantees:
 *  - Determinism: every job builds its own Program inside its worker
 *    (workload builders seed their own Rng locally, so no RNG state is
 *    shared between jobs) and runs its own CtcpSimulator. Results are
 *    written into a slot preassigned by submission index, so the
 *    aggregated report — including its JSON/CSV serializations — is
 *    byte-identical for any worker count.
 *  - Failure isolation: a job whose builder or simulation throws is
 *    recorded as a per-job error in the report; the remaining jobs
 *    still run to completion. Failures carry an ErrorCategory, and
 *    retryable ones can be re-attempted (Options::maxAttempts).
 *  - Crash safety: with Options::journalPath set, completed outcomes
 *    are checkpointed to an append-only journal and replayed on
 *    restart (campaign/journal.hh), so a killed campaign resumes
 *    without re-running finished jobs.
 */

#ifndef CTCPSIM_CAMPAIGN_CAMPAIGN_HH
#define CTCPSIM_CAMPAIGN_CAMPAIGN_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/sim_error.hh"
#include "config/sim_config.hh"
#include "core/sim_result.hh"
#include "prog/program.hh"

namespace ctcp::campaign {

class PersistentPool;

/** One independent simulation in a campaign. */
struct Job
{
    /** Display label, e.g. "gzip/fdrt". Used in reports and exports. */
    std::string label;
    /** Workload name (informational; echoed into the report). */
    std::string benchmark;
    /** Machine configuration (instructionLimit included). */
    SimConfig config;
    /**
     * Builds the job's Program inside the worker thread. When empty,
     * the engine uses workloads::build(benchmark). A throwing builder
     * fails this job only.
     */
    std::function<Program()> builder;
};

/** Convenience: a job that simulates a registered benchmark. */
Job makeJob(std::string label, std::string benchmark, SimConfig config);

/** Terminal state of one job. */
enum class JobStatus : std::uint8_t
{
    Ok,
    Failed,
};

/** Per-job outcome, in submission order. */
struct JobOutcome
{
    std::string label;
    std::string benchmark;
    JobStatus status = JobStatus::Failed;
    /** Valid when status == Ok. */
    SimResult result;
    /** Diagnostic when status == Failed. */
    std::string error;
    /** Failure taxonomy bucket (meaningful when status == Failed). */
    ErrorCategory category = ErrorCategory::Internal;
    /** How many times the job ran (> 1 after a retried failure). */
    unsigned attempts = 1;

    bool ok() const { return status == JobStatus::Ok; }
};

/** Aggregated results of a campaign, in submission order. */
struct Report
{
    std::vector<JobOutcome> jobs;

    std::size_t failed() const;

    /** Outcome for @p label; fatal()s when no such job exists. */
    const JobOutcome &at(const std::string &label) const;

    /**
     * JSON array of per-job objects (label, benchmark, status, error,
     * and the headline metrics of successful runs). Byte-identical
     * across worker counts. Pass @p include_host_timing to also export
     * each job's "host." wall-clock metrics — those vary run to run,
     * so they are off by default (determinism/golden contract).
     * @p include_accounting likewise gates each job's cycle-accounting
     * block (SimResult::accounting) behind an explicit opt-in.
     */
    std::string toJson(bool include_host_timing = false,
                       bool include_accounting = false) const;

    /**
     * CSV with one row per job (headline metrics; empty on failure).
     * With @p include_accounting, appends one percentage column per
     * slot-accounting category (share of attributed slot-cycles).
     */
    std::string toCsv(bool include_accounting = false) const;
};

/** Execution knobs for runCampaign(). */
struct Options
{
    /** Worker threads; 0 = one per hardware thread. */
    unsigned jobs = 0;
    /**
     * Progress callback, invoked from worker threads as jobs finish
     * ("[done/total] label: ok|FAILED"). Completion order is
     * scheduling-dependent — progress is observability, not output.
     * Invocations are serialized; null disables reporting.
     */
    std::function<void(const std::string &line)> progress;

    // ---- Per-job telemetry (src/obs) -----------------------------------
    /**
     * When non-empty, every job additionally writes Chrome trace_event
     * JSON to <traceEventsDir>/<jobFileStem>.trace.json. A job whose
     * config already names a trace path keeps it.
     */
    std::string traceEventsDir;
    /** Event-kind filter applied with traceEventsDir (see ObsSink). */
    std::string traceFilter;
    /**
     * When non-empty (and intervalCycles > 0), every job writes an
     * interval CSV to <intervalDir>/<jobFileStem>.intervals.csv.
     */
    std::string intervalDir;
    /** Interval sampling period for intervalDir output. */
    std::uint64_t intervalCycles = 0;
    /**
     * Enable cycle accounting (ObsConfig::accounting) on every job, so
     * each successful outcome carries SimResult::accounting. Off by
     * default: the default exports stay golden-identical either way,
     * but the layer costs a few percent of throughput.
     */
    bool accounting = false;

    // ---- Robustness ----------------------------------------------------
    /**
     * Cooperative per-job wall-clock deadline in seconds (0 = none).
     * Applied to jobs whose config sets no deadline of its own; an
     * overrunning job fails with category Timeout.
     */
    double jobDeadlineSeconds = 0.0;
    /**
     * Total attempts per job (>= 1). A job that fails with a
     * retryable category (see errorCategoryRetryable) is re-run —
     * with a freshly built Program — up to this many times; the
     * report records the last outcome and the attempt count.
     */
    unsigned maxAttempts = 1;
    /**
     * When non-empty, completed outcomes are appended to this JSONL
     * journal as they finish, and outcomes already recorded there are
     * replayed (their jobs skipped) on start — see campaign/journal.hh.
     */
    std::string journalPath;
    /**
     * Optional mapping from local job index to campaign-wide slot
     * index, used when `jobs` is a shard of a larger campaign (a
     * `slots=` matrix subset). Journal records are written with
     * slotIndexMap[i] instead of i, and replay accepts records by
     * their global index, so journals from different shards of one
     * campaign merge into a single resumable file. Empty = identity.
     * When set, its size must equal jobs.size().
     */
    std::vector<std::size_t> slotIndexMap;

    // ---- Service integration (src/service) -----------------------------
    /**
     * External long-lived worker pool to run jobs on instead of a
     * private WorkStealingPool; `jobs` is ignored when set. The ctcpd
     * daemon shares one pool across every submitted campaign. Reports
     * remain byte-identical either way: outcomes land in slots
     * preassigned by submission index regardless of which threads run
     * the jobs or in what order.
     */
    PersistentPool *pool = nullptr;
    /**
     * Cooperative cancellation, polled before each not-yet-run job
     * starts. Once it returns true, pending jobs are recorded as
     * Failed with category Cancelled and are NOT journaled, so a later
     * run with the same journal re-runs exactly those jobs — that is
     * the checkpoint half of graceful shutdown. Jobs already in
     * flight run to completion and are journaled normally.
     */
    std::function<bool()> cancelRequested;
    /**
     * Invoked from worker threads after each job's outcome is final —
     * freshly run, replayed from the journal, or cancelled — with the
     * submission index and the outcome. Unlike `progress` this is not
     * serialized; callers synchronize their own state. Observability
     * only: it must not mutate the outcome.
     */
    std::function<void(std::size_t index, const JobOutcome &outcome)>
        onJobFinished;
};

/**
 * Parse and validate a worker-count argument. Accepts positive
 * integers and 0 ("one worker per hardware thread"); rejects negative
 * values, junk, and counts above 4096.
 * @throws std::invalid_argument with a usable message
 */
unsigned parseWorkerCount(const std::string &text);

/** Filesystem-safe form of a job label ('/' and friends become '_'). */
std::string sanitizeLabel(const std::string &label);

/**
 * Per-job output-file stem: the sanitized label suffixed with the
 * submission index. Distinct jobs always get distinct stems, even
 * when sanitization makes their labels collide (e.g. "gzip/fdrt" and
 * "gzip_fdrt" both sanitize to "gzip_fdrt").
 */
std::string jobFileStem(const std::string &label, std::size_t index);

/**
 * Write "[k/n] label: ok" lines to stderr (an Options::progress).
 * Serialized by an internal mutex: runCampaign() serializes progress
 * calls within one campaign, but concurrent campaigns (ctcpd runs
 * many on one shared pool) would otherwise interleave their lines.
 */
void progressToStderr(const std::string &line);

/** Run every job and aggregate the outcomes in submission order. */
Report runCampaign(const std::vector<Job> &jobs,
                   const Options &options = {});

} // namespace ctcp::campaign

#endif // CTCPSIM_CAMPAIGN_CAMPAIGN_HH
