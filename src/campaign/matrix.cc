#include "campaign/matrix.hh"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "config/presets.hh"
#include "workload/workload.hh"

namespace ctcp::campaign {

namespace {

[[noreturn]] void
bad(const std::string &msg)
{
    throw std::invalid_argument("campaign matrix: " + msg);
}

std::vector<std::string>
split(const std::string &text, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t end = text.find(sep, start);
        if (end == std::string::npos) {
            out.push_back(text.substr(start));
            break;
        }
        out.push_back(text.substr(start, end - start));
        start = end + 1;
    }
    return out;
}

std::vector<std::string>
expandBenches(const std::vector<std::string> &values)
{
    std::vector<std::string> out;
    auto append = [&](const std::vector<std::string> &names) {
        out.insert(out.end(), names.begin(), names.end());
    };
    for (const std::string &v : values) {
        if (v == "six") {
            append(workloads::selectedSix());
        } else if (v == "specint") {
            append(workloads::names(workloads::Suite::SpecInt));
        } else if (v == "media") {
            append(workloads::names(workloads::Suite::Media));
        } else if (v == "all") {
            append(workloads::names(workloads::Suite::SpecInt));
            append(workloads::names(workloads::Suite::Media));
        } else if (workloads::exists(v)) {
            out.push_back(v);
        } else {
            bad("unknown benchmark or group '" + v + "'");
        }
    }
    return out;
}

struct StrategySpec
{
    std::string label;
    AssignStrategy strategy;
    bool latencySet = false;
    unsigned latency = 0;
};

StrategySpec
parseStrategy(const std::string &value)
{
    StrategySpec spec;
    spec.label = value;
    std::string name = value;
    const std::size_t colon = value.find(':');
    if (colon != std::string::npos) {
        name = value.substr(0, colon);
        const std::string lat = value.substr(colon + 1);
        if (lat.empty() ||
            lat.find_first_not_of("0123456789") != std::string::npos)
            bad("bad issue-time latency in '" + value + "'");
        spec.latencySet = true;
        spec.latency = static_cast<unsigned>(
            std::strtoul(lat.c_str(), nullptr, 10));
    }
    if (name == "base")
        spec.strategy = AssignStrategy::BaseSlotOrder;
    else if (name == "friendly")
        spec.strategy = AssignStrategy::Friendly;
    else if (name == "fdrt")
        spec.strategy = AssignStrategy::Fdrt;
    else if (name == "issue-time")
        spec.strategy = AssignStrategy::IssueTime;
    else if (name == "adaptive")
        spec.strategy = AssignStrategy::Adaptive;
    else
        bad("unknown strategy '" + name + "'");
    return spec;
}

/**
 * A topology=... value, or the pass-through entry used when the clause
 * is absent (keeps labels and configs untouched so existing specs
 * expand to byte-identical campaigns).
 */
struct TopologySpec
{
    std::string label;
    bool set = false;
    Topology topology = Topology::LinearChain;
};

TopologySpec
parseTopologyValue(const std::string &value)
{
    TopologySpec spec;
    spec.label = value;
    spec.set = true;
    if (!parseTopology(value, spec.topology))
        bad("unknown topology '" + value +
            "' (expected linear, ring, crossbar, hier or bus)");
    return spec;
}

/** A clusters=... value (0 = clause absent, leave the preset alone). */
unsigned
parseClusterCount(const std::string &value)
{
    if (value.empty() ||
        value.find_first_not_of("0123456789") != std::string::npos)
        bad("bad cluster count '" + value + "'");
    const unsigned n =
        static_cast<unsigned>(std::strtoul(value.c_str(), nullptr, 10));
    if (n == 0 || n > 8)
        bad("cluster count must be in 1..8 (got '" + value + "')");
    return n;
}

struct PresetSpec
{
    std::string label;
    SimConfig (*make)();
};

PresetSpec
parsePreset(const std::string &value)
{
    if (value == "base")
        return {value, baseConfig};
    if (value == "mesh")
        return {value, meshConfig};
    if (value == "onecycle")
        return {value, oneCycleForwardConfig};
    if (value == "twocluster")
        return {value, twoClusterConfig};
    if (value == "bus")
        return {value, busConfig};
    if (value == "eightcluster")
        return {value, eightClusterConfig};
    if (value == "ring")
        return {value, ringConfig};
    if (value == "crossbar")
        return {value, crossbarConfig};
    if (value == "hier")
        return {value, hierConfig};
    bad("unknown preset '" + value + "'");
}

std::uint64_t
parseBudget(const std::string &value)
{
    if (value.empty() ||
        value.find_first_not_of("0123456789") != std::string::npos)
        bad("bad instruction budget '" + value + "'");
    const std::uint64_t budget =
        std::strtoull(value.c_str(), nullptr, 10);
    if (budget == 0)
        bad("instruction budget must be positive");
    return budget;
}

std::size_t
parseSlotIndex(const std::string &value)
{
    if (value.empty() ||
        value.find_first_not_of("0123456789") != std::string::npos)
        bad("bad slot index '" + value + "'");
    return static_cast<std::size_t>(
        std::strtoull(value.c_str(), nullptr, 10));
}

/** Expand "0,2,5-7" into a sorted, deduplicated index list. */
std::vector<std::size_t>
expandSlotValues(const std::vector<std::string> &values)
{
    std::vector<std::size_t> out;
    for (const std::string &v : values) {
        const std::size_t dash = v.find('-');
        if (dash == std::string::npos) {
            out.push_back(parseSlotIndex(v));
            continue;
        }
        const std::size_t lo = parseSlotIndex(v.substr(0, dash));
        const std::size_t hi = parseSlotIndex(v.substr(dash + 1));
        if (hi < lo)
            bad("bad slot range '" + v + "'");
        for (std::size_t i = lo; i <= hi; ++i)
            out.push_back(i);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

} // namespace

std::vector<Job>
parseMatrix(const std::string &spec)
{
    std::vector<std::size_t> ignored;
    return parseMatrix(spec, ignored);
}

std::vector<Job>
parseMatrix(const std::string &spec,
            std::vector<std::size_t> &slotIndices)
{
    std::vector<std::string> bench_values = {"six"};
    std::vector<std::string> strategy_values = {"base"};
    std::vector<std::string> preset_values = {"base"};
    std::vector<std::string> budget_values = {"300000"};
    std::vector<std::string> topology_values;
    std::vector<std::string> cluster_values;
    std::vector<std::string> slot_values;

    for (const std::string &clause : split(spec, ';')) {
        if (clause.empty())
            continue;
        const std::size_t eq = clause.find('=');
        if (eq == std::string::npos)
            bad("expected key=v1,v2,... in '" + clause + "'");
        const std::string key = clause.substr(0, eq);
        const std::vector<std::string> values =
            split(clause.substr(eq + 1), ',');
        if (values.empty() || values.front().empty())
            bad("empty value list for '" + key + "'");
        if (key == "bench")
            bench_values = values;
        else if (key == "strategy")
            strategy_values = values;
        else if (key == "preset")
            preset_values = values;
        else if (key == "budget")
            budget_values = values;
        else if (key == "topology")
            topology_values = values;
        else if (key == "clusters")
            cluster_values = values;
        else if (key == "slots")
            slot_values = values;
        else
            bad("unknown key '" + key +
                "' (expected bench, strategy, preset, topology, "
                "clusters, budget or slots)");
    }

    const std::vector<std::string> benches = expandBenches(bench_values);
    std::vector<StrategySpec> strategies;
    for (const std::string &v : strategy_values)
        strategies.push_back(parseStrategy(v));
    std::vector<PresetSpec> presets;
    for (const std::string &v : preset_values)
        presets.push_back(parsePreset(v));
    std::vector<std::uint64_t> budgets;
    for (const std::string &v : budget_values)
        budgets.push_back(parseBudget(v));
    // Absent topology/clusters clauses contribute one pass-through
    // entry each, so pre-existing specs expand to identical jobs with
    // identical labels.
    std::vector<TopologySpec> topologies;
    if (topology_values.empty())
        topologies.push_back(TopologySpec{});
    else
        for (const std::string &v : topology_values)
            topologies.push_back(parseTopologyValue(v));
    std::vector<unsigned> cluster_counts;
    if (cluster_values.empty())
        cluster_counts.push_back(0);
    else
        for (const std::string &v : cluster_values)
            cluster_counts.push_back(parseClusterCount(v));

    std::vector<Job> jobs;
    jobs.reserve(benches.size() * presets.size() * strategies.size() *
                 topologies.size() * cluster_counts.size() *
                 budgets.size());
    for (const std::string &bench : benches) {
        for (const PresetSpec &preset : presets) {
            for (const StrategySpec &strategy : strategies) {
                for (const TopologySpec &topo : topologies) {
                    for (const unsigned clusters : cluster_counts) {
                        for (const std::uint64_t budget : budgets) {
                            SimConfig cfg = preset.make();
                            cfg.assign.strategy = strategy.strategy;
                            if (strategy.latencySet)
                                cfg.assign.issueTimeLatency =
                                    strategy.latency;
                            if (topo.set) {
                                cfg.cluster.mesh = false;
                                cfg.cluster.bus = false;
                                cfg.cluster.topology = topo.topology;
                            }
                            if (clusters != 0)
                                applyMachineScale(
                                    cfg, clusters,
                                    cfg.cluster.clusterWidth);
                            cfg.instructionLimit = budget;
                            std::string label = bench + "/" +
                                                preset.label + "/" +
                                                strategy.label;
                            if (topo.set)
                                label += "/" + topo.label;
                            if (clusters != 0)
                                label += "/c" +
                                         std::to_string(clusters);
                            if (budgets.size() > 1)
                                label += "@" + std::to_string(budget);
                            jobs.push_back(makeJob(std::move(label),
                                                   bench,
                                                   std::move(cfg)));
                        }
                    }
                }
            }
        }
    }

    slotIndices.clear();
    if (slot_values.empty()) {
        slotIndices.reserve(jobs.size());
        for (std::size_t i = 0; i < jobs.size(); ++i)
            slotIndices.push_back(i);
        return jobs;
    }
    slotIndices = expandSlotValues(slot_values);
    for (const std::size_t slot : slotIndices)
        if (slot >= jobs.size())
            bad("slot " + std::to_string(slot) +
                " out of range (campaign expands to " +
                std::to_string(jobs.size()) + " jobs)");
    std::vector<Job> selected;
    selected.reserve(slotIndices.size());
    for (const std::size_t slot : slotIndices)
        selected.push_back(jobs[slot]);
    return selected;
}

const char *
matrixSyntaxHelp()
{
    return
        "MATRIX is a semicolon-separated list of key=v1,v2,... clauses;\n"
        "the campaign is the cross product of all dimensions:\n"
        "  bench=...     names and/or groups six|specint|media|all\n"
        "                (default six)\n"
        "  strategy=...  base|friendly|fdrt|issue-time[:LAT]|adaptive\n"
        "                (default base)\n"
        "  preset=...    base|mesh|onecycle|twocluster|bus|eightcluster\n"
        "                |ring|crossbar|hier (default base)\n"
        "  topology=...  linear|ring|crossbar|hier|bus, overriding the\n"
        "                preset's interconnect (absent = leave preset)\n"
        "  clusters=...  cluster counts 1..8; rescales the machine\n"
        "                width accordingly (absent = leave preset)\n"
        "  budget=...    instructions per run (default 300000)\n"
        "  slots=...     global job indices or a-b ranges into the\n"
        "                expanded cross product; yields only those\n"
        "                jobs, labels unchanged (sharding subsets)\n"
        "example: --campaign \"bench=gzip,twolf;strategy=base,fdrt\"";
}

} // namespace ctcp::campaign
