#include "campaign/campaign.hh"

#include <atomic>
#include <cstdio>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "campaign/journal.hh"
#include "campaign/persistent_pool.hh"
#include "campaign/work_queue.hh"
#include "common/logging.hh"
#include "core/simulator.hh"
#include "obs/accounting.hh"
#include "workload/workload.hh"

namespace ctcp::campaign {

namespace {

/** JSON string escaping (quotes, backslashes, control characters). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Re-indent an embedded JSON block: prefix every line but the first. */
std::string
indentBlock(std::string block, const std::string &indent)
{
    while (!block.empty() &&
           (block.back() == '\n' || block.back() == ' '))
        block.pop_back();
    std::string out;
    out.reserve(block.size());
    for (const char c : block) {
        out += c;
        if (c == '\n')
            out += indent;
    }
    return out;
}

/** CSV field quoting: wrap when the text contains , " or newline. */
std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

std::string
csvDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    return buf;
}

} // namespace

unsigned
parseWorkerCount(const std::string &text)
{
    std::size_t pos = 0;
    long long value = 0;
    try {
        value = std::stoll(text, &pos);
    } catch (const std::exception &) {
        throw std::invalid_argument("invalid worker count '" + text +
                                    "' (expected a non-negative integer)");
    }
    if (pos != text.size())
        throw std::invalid_argument("invalid worker count '" + text +
                                    "' (expected a non-negative integer)");
    if (value < 0)
        throw std::invalid_argument(
            "worker count must be >= 0 (0 = one per hardware thread), "
            "got " + text);
    if (value > 4096)
        throw std::invalid_argument("worker count " + text +
                                    " is unreasonably large (max 4096)");
    return static_cast<unsigned>(value);
}

std::string
sanitizeLabel(const std::string &label)
{
    std::string out;
    out.reserve(label.size());
    for (const char c : label) {
        const bool safe = (c >= 'a' && c <= 'z') ||
            (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
            c == '-' || c == '.' || c == '_';
        out += safe ? c : '_';
    }
    return out.empty() ? "job" : out;
}

std::string
jobFileStem(const std::string &label, std::size_t index)
{
    return sanitizeLabel(label) + "-" + std::to_string(index);
}

Job
makeJob(std::string label, std::string benchmark, SimConfig config)
{
    Job job;
    job.label = std::move(label);
    job.benchmark = std::move(benchmark);
    job.config = std::move(config);
    job.builder = [name = job.benchmark] {
        // workloads::build() fatal()s on unknown names, which would
        // kill the whole campaign; throw instead so only this job
        // fails.
        if (!workloads::exists(name))
            throw std::invalid_argument("unknown benchmark '" + name +
                                        "'");
        return workloads::build(name);
    };
    return job;
}

std::size_t
Report::failed() const
{
    std::size_t n = 0;
    for (const JobOutcome &out : jobs)
        if (!out.ok())
            ++n;
    return n;
}

const JobOutcome &
Report::at(const std::string &label) const
{
    for (const JobOutcome &out : jobs)
        if (out.label == label)
            return out;
    ctcp_fatal("no campaign job labelled '%s'", label.c_str());
}

std::string
Report::toJson(bool include_host_timing, bool include_accounting) const
{
    std::string out = "{\n";
    out += "  \"campaign\": {\n";
    out += "    \"jobs\": " + std::to_string(jobs.size()) + ",\n";
    out += "    \"failed\": " + std::to_string(failed()) + "\n";
    out += "  },\n";
    out += "  \"results\": [";
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const JobOutcome &job = jobs[i];
        out += i ? ",\n" : "\n";
        out += "    {\n";
        out += "      \"label\": \"" + jsonEscape(job.label) + "\",\n";
        out += "      \"benchmark\": \"" + jsonEscape(job.benchmark) +
               "\",\n";
        if (job.ok()) {
            out += "      \"status\": \"ok\",\n";
            // Only emitted when a retry happened: first-try successes
            // keep the exact bytes of the pre-retry format (the
            // golden-stats contract).
            if (job.attempts > 1)
                out += "      \"attempts\": " +
                       std::to_string(job.attempts) + ",\n";
            out += "      \"metrics\": " +
                   indentBlock(job.result.toJson(include_host_timing,
                                                 include_accounting),
                               "      ") + "\n";
        } else {
            out += "      \"status\": \"failed\",\n";
            out += "      \"category\": \"";
            out += errorCategoryName(job.category);
            out += "\",\n";
            out += "      \"attempts\": " +
                   std::to_string(job.attempts) + ",\n";
            out += "      \"error\": \"" + jsonEscape(job.error) +
                   "\"\n";
        }
        out += "    }";
    }
    out += "\n  ]\n}\n";
    return out;
}

std::string
Report::toCsv(bool include_accounting) const
{
    std::string out =
        "label,benchmark,strategy,status,error,cycles,instructions,ipc,"
        "pct_from_trace_cache,tc_hit_rate,pct_intra_cluster_fwd,"
        "mean_fwd_distance,bpred_accuracy,mispredicts";
    if (include_accounting) {
        for (unsigned k = 0; k < numSlotCats; ++k)
            out += std::string(",slots_") +
                   slotCatName(static_cast<SlotCat>(k)) + "_pct";
    }
    out += '\n';
    for (const JobOutcome &job : jobs) {
        out += csvField(job.label) + ',' + csvField(job.benchmark) + ',';
        if (job.ok()) {
            const SimResult &r = job.result;
            out += csvField(r.strategy) + ",ok,,";
            out += std::to_string(r.cycles) + ',';
            out += std::to_string(r.instructions) + ',';
            out += csvDouble(r.ipc()) + ',';
            out += csvDouble(r.pctFromTraceCache) + ',';
            out += csvDouble(r.tcHitRate) + ',';
            out += csvDouble(r.pctIntraClusterFwd) + ',';
            out += csvDouble(r.meanFwdDistance) + ',';
            out += csvDouble(r.bpredAccuracy) + ',';
            out += std::to_string(r.mispredicts);
            if (include_accounting) {
                const auto total_it = r.accounting.find("slots.total");
                const double total = total_it != r.accounting.end()
                    ? total_it->second : 0.0;
                for (unsigned k = 0; k < numSlotCats; ++k) {
                    out += ',';
                    const auto it = r.accounting.find(
                        std::string("slots.") +
                        slotCatName(static_cast<SlotCat>(k)));
                    if (it != r.accounting.end() && total > 0.0)
                        out += csvDouble(100.0 * it->second / total);
                }
            }
        } else {
            out += ",failed," + csvField(job.error) + ",,,,,,,,,";
            if (include_accounting)
                out.append(numSlotCats, ',');
        }
        out += '\n';
    }
    return out;
}

void
progressToStderr(const std::string &line)
{
    // Cross-campaign serialization: each runCampaign() serializes its
    // own progress calls, but the service runs several campaigns on
    // one shared pool and their callbacks fire concurrently.
    static std::mutex mutex;
    std::lock_guard<std::mutex> lock(mutex);
    std::fprintf(stderr, "%s\n", line.c_str());
}

namespace {

/** One simulation attempt; fills @p out with the outcome. */
void
runAttempt(const Job &job, std::size_t index, const Options &options,
           JobOutcome &out)
{
    // "Building" distinguishes workload faults (bad benchmark, a
    // throwing builder) from simulator faults when a generic
    // exception carries no category of its own.
    bool building = true;
    try {
        // The Program is built inside the worker — and rebuilt on
        // every retry: builders seed their own Rng locally, so jobs
        // share no RNG state and an attempt starts from scratch.
        Program program = job.builder
            ? job.builder()
            : workloads::build(job.benchmark);
        building = false;
        // Per-job telemetry: overlay the campaign-wide output
        // directories onto the job's own config (which wins when
        // it already names a path).
        SimConfig config = job.config;
        const std::string stem = jobFileStem(job.label, index);
        if (!options.traceEventsDir.empty() &&
            config.obs.traceEventsPath.empty()) {
            config.obs.traceEventsPath =
                options.traceEventsDir + "/" + stem + ".trace.json";
            if (config.obs.traceFilter.empty())
                config.obs.traceFilter = options.traceFilter;
        }
        if (!options.intervalDir.empty() &&
            options.intervalCycles > 0 &&
            config.obs.intervalPath.empty()) {
            config.obs.intervalPath =
                options.intervalDir + "/" + stem + ".intervals.csv";
            config.obs.intervalCycles = options.intervalCycles;
        }
        if (options.accounting)
            config.obs.accounting = true;
        // Campaign-wide deadline; a job-level deadline wins.
        if (config.deadlineSeconds <= 0.0 &&
            options.jobDeadlineSeconds > 0.0)
            config.deadlineSeconds = options.jobDeadlineSeconds;
        // Worker-local arena: chunks allocated by the first job on
        // this thread are reset and reused by every later job, so the
        // steady-state cycle loop of a long campaign never touches
        // malloc. Reset happens before the simulator is built and the
        // simulator is destroyed before the next reset, satisfying the
        // Arena lifetime contract.
        thread_local Arena arena;
        arena.reset();
        CtcpSimulator sim(config, program, &arena);
        out.result = sim.run();
        out.status = JobStatus::Ok;
        out.error.clear();
    } catch (const SimError &e) {
        out.status = JobStatus::Failed;
        out.category = e.category();
        out.error = e.what();
    } catch (const std::exception &e) {
        out.status = JobStatus::Failed;
        out.category = building ? ErrorCategory::Workload
                                : ErrorCategory::Internal;
        out.error = e.what();
    } catch (...) {
        out.status = JobStatus::Failed;
        out.category = building ? ErrorCategory::Workload
                                : ErrorCategory::Internal;
        out.error = "unknown exception";
    }
}

} // namespace

Report
runCampaign(const std::vector<Job> &jobs, const Options &options)
{
    Report report;
    report.jobs.resize(jobs.size());

    // Shard support: journal records carry the campaign-wide slot
    // index (slotIndexMap[i]), not the local one, so journals written
    // by different shards of one campaign merge by index.
    const std::vector<std::size_t> &slot_map = options.slotIndexMap;
    if (!slot_map.empty() && slot_map.size() != jobs.size())
        throw std::invalid_argument(
            "campaign: slotIndexMap size " +
            std::to_string(slot_map.size()) + " != job count " +
            std::to_string(jobs.size()));
    const auto journal_index = [&](std::size_t i) {
        return slot_map.empty() ? i : slot_map[i];
    };
    // Global journal index -> local job index (identity when unmapped).
    const auto local_index = [&](std::size_t global, std::size_t &local) {
        if (slot_map.empty()) {
            local = global;
            return global < jobs.size();
        }
        for (std::size_t i = 0; i < slot_map.size(); ++i) {
            if (slot_map[i] == global) {
                local = i;
                return true;
            }
        }
        return false;
    };

    // Checkpoint/resume: replay outcomes an earlier (killed) run of
    // the same campaign already journalled, then append new ones.
    // First-complete-wins: after a failover re-execution two shards
    // may both have journalled one slot; the first record is kept and
    // later duplicates are ignored (deterministic simulation makes
    // them byte-identical anyway).
    std::vector<char> replayed(jobs.size(), 0);
    std::unique_ptr<JournalWriter> journal;
    if (!options.journalPath.empty()) {
        for (JournalRecord &rec : loadJournal(options.journalPath)) {
            std::size_t local = 0;
            if (!local_index(rec.index, local) ||
                rec.outcome.label != jobs[local].label) {
                ctcp_warn("journal %s: record '%s' (index %zu) does "
                          "not match this campaign; ignored",
                          options.journalPath.c_str(),
                          rec.outcome.label.c_str(), rec.index);
                continue;
            }
            if (replayed[local])
                continue;
            report.jobs[local] = std::move(rec.outcome);
            replayed[local] = 1;
        }
        journal = std::make_unique<JournalWriter>(options.journalPath);
    }

    const unsigned max_attempts = options.maxAttempts ?
        options.maxAttempts : 1;

    std::atomic<std::size_t> finished{0};
    std::mutex progress_mutex;

    const auto body = [&](std::size_t i) {
        const Job &job = jobs[i];
        JobOutcome &out = report.jobs[i];
        const bool from_journal = replayed[i];
        if (!from_journal) {
            out.label = job.label;
            out.benchmark = job.benchmark;
            if (options.cancelRequested && options.cancelRequested()) {
                // Checkpoint semantics: a cancelled job is reported
                // but never journaled, so resuming with the same
                // journal re-runs exactly the jobs that did not
                // finish (see Options::cancelRequested).
                out.status = JobStatus::Failed;
                out.category = ErrorCategory::Cancelled;
                out.error = "cancelled before start";
            } else {
                for (unsigned attempt = 1; ; ++attempt) {
                    out.attempts = attempt;
                    runAttempt(job, i, options, out);
                    if (out.ok() || attempt >= max_attempts ||
                        !errorCategoryRetryable(out.category))
                        break;
                }
                if (journal)
                    journal->append(journal_index(i), out);
            }
        }
        if (options.onJobFinished)
            options.onJobFinished(i, out);
        const std::size_t done =
            finished.fetch_add(1, std::memory_order_acq_rel) + 1;
        if (options.progress) {
            std::lock_guard<std::mutex> lock(progress_mutex);
            options.progress(
                "[" + std::to_string(done) + "/" +
                std::to_string(jobs.size()) + "] " + out.label + ": " +
                (out.ok()
                     ? (from_journal ? "ok (journal)" : "ok")
                     : "FAILED (" + out.error + ")"));
        }
    };

    if (options.pool) {
        options.pool->run(jobs.size(), body);
    } else {
        WorkStealingPool pool(options.jobs);
        pool.run(jobs.size(), body);
    }
    return report;
}

} // namespace ctcp::campaign
