/**
 * @file
 * Textual campaign-matrix specifications.
 *
 * A matrix spec is a semicolon-separated list of `key=v1,v2,...`
 * clauses; the campaign is the full cross product of the listed
 * dimensions, submitted bench-major (bench, then preset, then
 * strategy, then budget) so job order — and therefore the aggregated
 * report — is independent of how the spec is executed.
 *
 *   bench     benchmark names, and/or the groups
 *             six | specint | media | all        (default: six)
 *   strategy  base | friendly | fdrt | issue-time[:LAT] | adaptive
 *             (LAT overrides the extra issue-time front-end stages;
 *             default list: base)
 *   preset    base | mesh | onecycle | twocluster | bus | eightcluster
 *             | ring | crossbar | hier (default: base)
 *   topology  linear | ring | crossbar | hier | bus — overrides the
 *             preset's interconnect; when absent the dimension
 *             contributes nothing (no label suffix, preset untouched)
 *   clusters  cluster counts in 1..8 — rescales the machine via
 *             applyMachineScale; absent = dimension contributes
 *             nothing
 *   budget    instruction budgets per run (default: 300000)
 *   slots     global job indices (single values or a-b ranges) into
 *             the expanded cross product; the spec then yields only
 *             those jobs, with labels and configs unchanged.  Used by
 *             the shard coordinator to hand each daemon a subset of
 *             one campaign while journal records keep their global
 *             slot index (absent = all jobs)
 *
 * Example: "bench=gzip,twolf;strategy=base,fdrt,issue-time:0;budget=200000"
 * expands to 6 jobs labelled "<bench>/<preset>/<strategy>"; listed
 * topology/clusters values append "/<topology>" and "/c<clusters>"
 * label segments in that order.
 */

#ifndef CTCPSIM_CAMPAIGN_MATRIX_HH
#define CTCPSIM_CAMPAIGN_MATRIX_HH

#include <cstddef>
#include <string>
#include <vector>

#include "campaign/campaign.hh"

namespace ctcp::campaign {

/**
 * Expand @p spec into the cross product of its dimensions.
 * @throws std::invalid_argument on syntax errors, unknown keys,
 *         benchmarks, strategies or presets.
 */
std::vector<Job> parseMatrix(const std::string &spec);

/**
 * As above, and report each returned job's global slot index in the
 * full cross product: @p slotIndices[i] is the index job i would have
 * had without a `slots=` clause.  Without the clause this is the
 * identity mapping; with it, the sorted, deduplicated clause values.
 * Journals written against the map merge cleanly across shards because
 * every record carries its campaign-wide index.
 */
std::vector<Job> parseMatrix(const std::string &spec,
                             std::vector<std::size_t> &slotIndices);

/** One-paragraph syntax reference for CLI help text. */
const char *matrixSyntaxHelp();

} // namespace ctcp::campaign

#endif // CTCPSIM_CAMPAIGN_MATRIX_HH
