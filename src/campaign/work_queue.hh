/**
 * @file
 * Work-stealing scheduler for independent, indexed jobs.
 *
 * Job indices are dealt round-robin onto one deque per worker; each
 * worker drains its own deque from the front and steals from the back
 * of a victim's deque when it runs dry. Scheduling order is therefore
 * nondeterministic, which is why the campaign layer above writes every
 * result into a slot preassigned by submission index: aggregated output
 * never depends on which worker ran a job or when it finished.
 */

#ifndef CTCPSIM_CAMPAIGN_WORK_QUEUE_HH
#define CTCPSIM_CAMPAIGN_WORK_QUEUE_HH

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ctcp::campaign {

/** Worker count to use when the caller passes 0 ("auto"). */
inline unsigned
hardwareWorkers()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

/**
 * Run @p body(i) for every i in [0, njobs) across @p workers threads
 * (0 = one per hardware thread). Blocks until every job has finished.
 *
 * @p body must not throw: jobs are independent and a failure in one
 * must not tear down its worker, so callers (the campaign engine)
 * catch per job and record the error instead.
 */
class WorkStealingPool
{
  public:
    explicit WorkStealingPool(unsigned workers = 0)
        : workers_(workers ? workers : hardwareWorkers())
    {}

    unsigned workers() const { return workers_; }

    void
    run(std::size_t njobs, const std::function<void(std::size_t)> &body)
    {
        if (njobs == 0)
            return;
        const unsigned nw =
            static_cast<unsigned>(std::min<std::size_t>(workers_, njobs));
        if (nw <= 1) {
            // Serial fast path: no threads, identical job order.
            for (std::size_t i = 0; i < njobs; ++i)
                body(i);
            return;
        }

        std::vector<Shard> shards(nw);
        for (std::size_t i = 0; i < njobs; ++i)
            shards[i % nw].jobs.push_back(i);
        std::atomic<std::size_t> remaining{njobs};

        auto worker = [&](unsigned self) {
            while (remaining.load(std::memory_order_acquire) > 0) {
                std::size_t job;
                if (popOwn(shards[self], job) ||
                    steal(shards, self, job)) {
                    body(job);
                    remaining.fetch_sub(1, std::memory_order_acq_rel);
                } else {
                    // Everything is claimed but still in flight.
                    std::this_thread::yield();
                }
            }
        };

        std::vector<std::thread> threads;
        threads.reserve(nw - 1);
        for (unsigned w = 1; w < nw; ++w)
            threads.emplace_back(worker, w);
        worker(0);
        for (std::thread &t : threads)
            t.join();
    }

  private:
    struct Shard
    {
        std::mutex mutex;
        std::deque<std::size_t> jobs;
    };

    static bool
    popOwn(Shard &shard, std::size_t &job)
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        if (shard.jobs.empty())
            return false;
        job = shard.jobs.front();
        shard.jobs.pop_front();
        return true;
    }

    static bool
    steal(std::vector<Shard> &shards, unsigned self, std::size_t &job)
    {
        const std::size_t nw = shards.size();
        for (std::size_t k = 1; k < nw; ++k) {
            Shard &victim = shards[(self + k) % nw];
            std::lock_guard<std::mutex> lock(victim.mutex);
            if (!victim.jobs.empty()) {
                job = victim.jobs.back();
                victim.jobs.pop_back();
                return true;
            }
        }
        return false;
    }

    unsigned workers_;
};

} // namespace ctcp::campaign

#endif // CTCPSIM_CAMPAIGN_WORK_QUEUE_HH
