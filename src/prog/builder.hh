/**
 * @file
 * Embedded assembler DSL for authoring synthetic workloads.
 *
 * ProgramBuilder accumulates instructions, resolves symbolic labels to
 * absolute instruction indices at build() time, and carries initial
 * data blocks. Workload kernels (src/workload/) are written entirely
 * against this interface.
 *
 * Example:
 * @code
 *   ProgramBuilder b("loop-demo");
 *   b.movi(intReg(1), 0);
 *   b.label("top");
 *   b.addi(intReg(1), intReg(1), 1);
 *   b.slti(intReg(2), intReg(1), 100);
 *   b.bne(intReg(2), zeroReg, "top");
 *   b.halt();
 *   Program p = b.build();
 * @endcode
 */

#ifndef CTCPSIM_PROG_BUILDER_HH
#define CTCPSIM_PROG_BUILDER_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "prog/program.hh"

namespace ctcp {

/** Incremental builder producing a validated Program. */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(std::string name);

    // ---- Labels -------------------------------------------------------

    /** Define @p name at the current code position. Names are unique. */
    ProgramBuilder &label(const std::string &name);

    /** Current instruction index (useful for computed jump tables). */
    Addr here() const { return code_.size(); }

    // ---- Simple integer ------------------------------------------------

    ProgramBuilder &add(RegId d, RegId a, RegId b);
    ProgramBuilder &sub(RegId d, RegId a, RegId b);
    ProgramBuilder &and_(RegId d, RegId a, RegId b);
    ProgramBuilder &or_(RegId d, RegId a, RegId b);
    ProgramBuilder &xor_(RegId d, RegId a, RegId b);
    ProgramBuilder &sll(RegId d, RegId a, RegId b);
    ProgramBuilder &srl(RegId d, RegId a, RegId b);
    ProgramBuilder &sra(RegId d, RegId a, RegId b);
    ProgramBuilder &slt(RegId d, RegId a, RegId b);
    ProgramBuilder &sltu(RegId d, RegId a, RegId b);
    ProgramBuilder &addi(RegId d, RegId a, std::int64_t imm);
    ProgramBuilder &andi(RegId d, RegId a, std::int64_t imm);
    ProgramBuilder &ori(RegId d, RegId a, std::int64_t imm);
    ProgramBuilder &xori(RegId d, RegId a, std::int64_t imm);
    ProgramBuilder &slli(RegId d, RegId a, std::int64_t imm);
    ProgramBuilder &srli(RegId d, RegId a, std::int64_t imm);
    ProgramBuilder &slti(RegId d, RegId a, std::int64_t imm);
    ProgramBuilder &movi(RegId d, std::int64_t imm);
    ProgramBuilder &mov(RegId d, RegId a);
    ProgramBuilder &nop();

    // ---- Complex integer ----------------------------------------------

    ProgramBuilder &mul(RegId d, RegId a, RegId b);
    ProgramBuilder &div(RegId d, RegId a, RegId b);
    ProgramBuilder &rem(RegId d, RegId a, RegId b);

    // ---- Integer memory -------------------------------------------------

    /** d = mem64[a + offset] */
    ProgramBuilder &load(RegId d, RegId a, std::int64_t offset = 0);
    /** mem64[a + offset] = v */
    ProgramBuilder &store(RegId v, RegId a, std::int64_t offset = 0);

    // ---- Control flow ----------------------------------------------------

    ProgramBuilder &beq(RegId a, RegId b, const std::string &target);
    ProgramBuilder &bne(RegId a, RegId b, const std::string &target);
    ProgramBuilder &blt(RegId a, RegId b, const std::string &target);
    ProgramBuilder &bge(RegId a, RegId b, const std::string &target);
    ProgramBuilder &jump(const std::string &target);
    ProgramBuilder &jumpReg(RegId a);
    /** Direct call; the return address lands in @p link. */
    ProgramBuilder &call(const std::string &target, RegId link = linkReg);
    /** Indirect return through @p link. */
    ProgramBuilder &ret(RegId link = linkReg);
    ProgramBuilder &halt();

    // ---- Floating point --------------------------------------------------

    ProgramBuilder &fadd(RegId d, RegId a, RegId b);
    ProgramBuilder &fsub(RegId d, RegId a, RegId b);
    ProgramBuilder &fneg(RegId d, RegId a);
    ProgramBuilder &fcmplt(RegId d, RegId a, RegId b);
    ProgramBuilder &fcvtif(RegId d, RegId a);
    ProgramBuilder &fcvtfi(RegId d, RegId a);
    ProgramBuilder &fmul(RegId d, RegId a, RegId b);
    ProgramBuilder &fdiv(RegId d, RegId a, RegId b);
    ProgramBuilder &fsqrt(RegId d, RegId a);
    ProgramBuilder &fload(RegId d, RegId a, std::int64_t offset = 0);
    ProgramBuilder &fstore(RegId v, RegId a, std::int64_t offset = 0);

    // ---- Strand weaving ----------------------------------------------------
    //
    // Real compilers schedule independent computations so that their
    // instructions interleave (software pipelining / list scheduling
    // for a multi-issue machine). Kernels express that by emitting
    // each independent computation into a *strand* and weaving them:
    //
    //   b.beginStrands(2);
    //   b.strand(0).load(a0, p0).add(s0, s0, a0);
    //   b.strand(1).load(a1, p1).add(s1, s1, a1);
    //   b.weave();   // emits: load a0; load a1; add s0; add s1
    //
    // Strands must be branch-free (weaving would not preserve
    // control-flow semantics); emitting a branch inside a strand is a
    // fatal error.

    /** Start collecting @p count branch-free strands. */
    ProgramBuilder &beginStrands(unsigned count);

    /** Select the strand subsequent instructions append to. */
    ProgramBuilder &strand(unsigned index);

    /** Interleave the collected strands round-robin into the program. */
    ProgramBuilder &weave();

    // ---- Data -------------------------------------------------------------

    /** Attach an initialized data block at byte address @p base. */
    ProgramBuilder &data(Addr base, std::vector<std::int64_t> words);

    // ---- Finish -----------------------------------------------------------

    /**
     * Resolve all label references and produce the Program.
     * fatal()s on undefined or duplicate labels.
     */
    Program build();

  private:
    ProgramBuilder &emit(Instruction inst);
    ProgramBuilder &emitBranch(Opcode op, RegId a, RegId b,
                               const std::string &target);

    std::string name_;
    std::vector<Instruction> code_;
    std::vector<DataBlock> data_;
    std::unordered_map<std::string, Addr> labels_;
    /** (instruction index, label) pairs awaiting resolution. */
    std::vector<std::pair<std::size_t, std::string>> fixups_;
    /** Strand buffers while weaving (empty when not in strand mode). */
    std::vector<std::vector<Instruction>> strands_;
    int activeStrand_ = -1;
    bool built_ = false;
};

} // namespace ctcp

#endif // CTCPSIM_PROG_BUILDER_HH
