#include "prog/builder.hh"

#include "common/logging.hh"

namespace ctcp {

ProgramBuilder::ProgramBuilder(std::string name)
    : name_(std::move(name))
{}

ProgramBuilder &
ProgramBuilder::emit(Instruction inst)
{
    ctcp_assert(!built_, "emit after build()");
    if (activeStrand_ >= 0) {
        strands_[static_cast<std::size_t>(activeStrand_)].push_back(inst);
        return *this;
    }
    code_.push_back(inst);
    return *this;
}

ProgramBuilder &
ProgramBuilder::beginStrands(unsigned count)
{
    ctcp_assert(activeStrand_ < 0, "beginStrands while already weaving");
    ctcp_assert(count > 0, "need at least one strand");
    strands_.assign(count, {});
    activeStrand_ = 0;
    return *this;
}

ProgramBuilder &
ProgramBuilder::strand(unsigned index)
{
    ctcp_assert(activeStrand_ >= 0, "strand() outside beginStrands");
    ctcp_assert(index < strands_.size(), "strand index out of range");
    activeStrand_ = static_cast<int>(index);
    return *this;
}

ProgramBuilder &
ProgramBuilder::weave()
{
    ctcp_assert(activeStrand_ >= 0, "weave() outside beginStrands");
    activeStrand_ = -1;
    std::size_t remaining = 0;
    for (const auto &s : strands_)
        remaining += s.size();
    std::vector<std::size_t> pos(strands_.size(), 0);
    while (remaining > 0) {
        for (std::size_t k = 0; k < strands_.size(); ++k) {
            if (pos[k] < strands_[k].size()) {
                code_.push_back(strands_[k][pos[k]++]);
                --remaining;
            }
        }
    }
    strands_.clear();
    return *this;
}

ProgramBuilder &
ProgramBuilder::label(const std::string &name)
{
    ctcp_assert(activeStrand_ < 0, "labels are not allowed in strands");
    auto [it, inserted] = labels_.emplace(name, code_.size());
    (void)it;
    if (!inserted)
        ctcp_fatal("duplicate label '%s' in program '%s'",
                   name.c_str(), name_.c_str());
    return *this;
}

// Three-register ALU helper macro keeps the emitter table readable.
#define CTCP_RRR(method, opcode)                                        \
    ProgramBuilder &                                                    \
    ProgramBuilder::method(RegId d, RegId a, RegId b)                   \
    {                                                                   \
        return emit({Opcode::opcode, d, a, b, 0});                      \
    }

#define CTCP_RRI(method, opcode)                                        \
    ProgramBuilder &                                                    \
    ProgramBuilder::method(RegId d, RegId a, std::int64_t imm)          \
    {                                                                   \
        return emit({Opcode::opcode, d, a, invalidReg, imm});           \
    }

#define CTCP_RR(method, opcode)                                         \
    ProgramBuilder &                                                    \
    ProgramBuilder::method(RegId d, RegId a)                            \
    {                                                                   \
        return emit({Opcode::opcode, d, a, invalidReg, 0});             \
    }

CTCP_RRR(add, Add)
CTCP_RRR(sub, Sub)
CTCP_RRR(and_, And)
CTCP_RRR(or_, Or)
CTCP_RRR(xor_, Xor)
CTCP_RRR(sll, Sll)
CTCP_RRR(srl, Srl)
CTCP_RRR(sra, Sra)
CTCP_RRR(slt, Slt)
CTCP_RRR(sltu, Sltu)
CTCP_RRI(addi, AddI)
CTCP_RRI(andi, AndI)
CTCP_RRI(ori, OrI)
CTCP_RRI(xori, XorI)
CTCP_RRI(slli, SllI)
CTCP_RRI(srli, SrlI)
CTCP_RRI(slti, SltI)
CTCP_RR(mov, Mov)
CTCP_RRR(mul, Mul)
CTCP_RRR(div, Div)
CTCP_RRR(rem, Rem)
CTCP_RRR(fadd, FAdd)
CTCP_RRR(fsub, FSub)
CTCP_RR(fneg, FNeg)
CTCP_RRR(fcmplt, FCmpLt)
CTCP_RR(fcvtif, FCvtIF)
CTCP_RR(fcvtfi, FCvtFI)
CTCP_RRR(fmul, FMul)
CTCP_RRR(fdiv, FDiv)
CTCP_RR(fsqrt, FSqrt)

#undef CTCP_RRR
#undef CTCP_RRI
#undef CTCP_RR

ProgramBuilder &
ProgramBuilder::movi(RegId d, std::int64_t imm)
{
    return emit({Opcode::MovI, d, invalidReg, invalidReg, imm});
}

ProgramBuilder &
ProgramBuilder::nop()
{
    return emit({Opcode::Nop, invalidReg, invalidReg, invalidReg, 0});
}

ProgramBuilder &
ProgramBuilder::load(RegId d, RegId a, std::int64_t offset)
{
    return emit({Opcode::Load, d, a, invalidReg, offset});
}

ProgramBuilder &
ProgramBuilder::store(RegId v, RegId a, std::int64_t offset)
{
    return emit({Opcode::Store, invalidReg, a, v, offset});
}

ProgramBuilder &
ProgramBuilder::fload(RegId d, RegId a, std::int64_t offset)
{
    return emit({Opcode::FLoad, d, a, invalidReg, offset});
}

ProgramBuilder &
ProgramBuilder::fstore(RegId v, RegId a, std::int64_t offset)
{
    return emit({Opcode::FStore, invalidReg, a, v, offset});
}

ProgramBuilder &
ProgramBuilder::emitBranch(Opcode op, RegId a, RegId b,
                           const std::string &target)
{
    ctcp_assert(activeStrand_ < 0, "branches are not allowed in strands");
    fixups_.emplace_back(code_.size(), target);
    return emit({op, invalidReg, a, b, 0});
}

ProgramBuilder &
ProgramBuilder::beq(RegId a, RegId b, const std::string &target)
{
    return emitBranch(Opcode::Beq, a, b, target);
}

ProgramBuilder &
ProgramBuilder::bne(RegId a, RegId b, const std::string &target)
{
    return emitBranch(Opcode::Bne, a, b, target);
}

ProgramBuilder &
ProgramBuilder::blt(RegId a, RegId b, const std::string &target)
{
    return emitBranch(Opcode::Blt, a, b, target);
}

ProgramBuilder &
ProgramBuilder::bge(RegId a, RegId b, const std::string &target)
{
    return emitBranch(Opcode::Bge, a, b, target);
}

ProgramBuilder &
ProgramBuilder::jump(const std::string &target)
{
    ctcp_assert(activeStrand_ < 0, "branches are not allowed in strands");
    fixups_.emplace_back(code_.size(), target);
    return emit({Opcode::Jump, invalidReg, invalidReg, invalidReg, 0});
}

ProgramBuilder &
ProgramBuilder::jumpReg(RegId a)
{
    ctcp_assert(activeStrand_ < 0, "branches are not allowed in strands");
    return emit({Opcode::JumpReg, invalidReg, a, invalidReg, 0});
}

ProgramBuilder &
ProgramBuilder::call(const std::string &target, RegId link)
{
    ctcp_assert(activeStrand_ < 0, "branches are not allowed in strands");
    fixups_.emplace_back(code_.size(), target);
    return emit({Opcode::Call, link, invalidReg, invalidReg, 0});
}

ProgramBuilder &
ProgramBuilder::ret(RegId link)
{
    ctcp_assert(activeStrand_ < 0, "branches are not allowed in strands");
    return emit({Opcode::Ret, invalidReg, link, invalidReg, 0});
}

ProgramBuilder &
ProgramBuilder::halt()
{
    return emit({Opcode::Halt, invalidReg, invalidReg, invalidReg, 0});
}

ProgramBuilder &
ProgramBuilder::data(Addr base, std::vector<std::int64_t> words)
{
    data_.push_back({base, std::move(words)});
    return *this;
}

Program
ProgramBuilder::build()
{
    ctcp_assert(!built_, "build() called twice");
    built_ = true;
    for (const auto &[index, target] : fixups_) {
        auto it = labels_.find(target);
        if (it == labels_.end())
            ctcp_fatal("undefined label '%s' in program '%s'",
                       target.c_str(), name_.c_str());
        code_[index].imm = static_cast<std::int64_t>(it->second);
    }
    if (code_.empty())
        ctcp_fatal("program '%s' has no instructions", name_.c_str());
    return Program(name_, std::move(code_), std::move(data_));
}

} // namespace ctcp
