/**
 * @file
 * Container for a complete synthetic program: code, initial data image
 * and entry point.
 *
 * PCs are instruction indices; the byte address of instruction i is
 * i * instBytes, which is what the I-cache and trace cache index by.
 */

#ifndef CTCPSIM_PROG_PROGRAM_HH
#define CTCPSIM_PROG_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "isa/instruction.hh"

namespace ctcp {

/** A contiguous block of initialized 64-bit data words. */
struct DataBlock
{
    /** Byte address of the first word (8-byte aligned by convention). */
    Addr base = 0;
    std::vector<std::int64_t> words;
};

/** An executable synthetic program. */
class Program
{
  public:
    Program(std::string name, std::vector<Instruction> code,
            std::vector<DataBlock> data, Addr entry = 0)
        : name_(std::move(name)), code_(std::move(code)),
          data_(std::move(data)), entry_(entry)
    {}

    const std::string &name() const { return name_; }
    Addr entry() const { return entry_; }
    std::size_t size() const { return code_.size(); }

    const Instruction &
    fetch(Addr pc) const
    {
        ctcp_assert(pc < code_.size(),
                    "fetch past program end: pc=%llu size=%zu",
                    static_cast<unsigned long long>(pc), code_.size());
        return code_[pc];
    }

    const std::vector<Instruction> &code() const { return code_; }
    const std::vector<DataBlock> &data() const { return data_; }

    /** Byte address of the instruction at word PC @p pc. */
    static Addr byteAddr(Addr pc) { return pc * instBytes; }

  private:
    std::string name_;
    std::vector<Instruction> code_;
    std::vector<DataBlock> data_;
    Addr entry_;
};

} // namespace ctcp

#endif // CTCPSIM_PROG_PROGRAM_HH
