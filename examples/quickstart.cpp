/**
 * @file
 * Quickstart: simulate one benchmark on the baseline CTCP with the
 * FDRT cluster-assignment strategy and print the headline numbers.
 *
 * Usage: quickstart [benchmark] [instructions]
 *   benchmark     any registered workload (default: gzip)
 *   instructions  instruction budget (default: 500000)
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "config/presets.hh"
#include "core/simulator.hh"
#include "workload/workload.hh"

int
main(int argc, char **argv)
{
    using namespace ctcp;

    const std::string bench = argc > 1 ? argv[1] : "gzip";
    const std::uint64_t insts =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 500'000;

    if (!workloads::exists(bench)) {
        std::fprintf(stderr, "unknown benchmark '%s'; available:\n",
                     bench.c_str());
        for (const auto &info : workloads::all())
            std::fprintf(stderr, "  %-12s %s\n", info.name.c_str(),
                         info.description.c_str());
        return 1;
    }

    // Baseline machine (paper Table 7) with the paper's FDRT strategy.
    SimConfig cfg = baseConfig();
    cfg.assign.strategy = AssignStrategy::Fdrt;
    cfg.instructionLimit = insts;

    Program prog = workloads::build(bench);
    CtcpSimulator sim(cfg, prog);
    SimResult r = sim.run();

    std::printf("benchmark     : %s\n", r.benchmark.c_str());
    std::printf("strategy      : %s\n", r.strategy.c_str());
    std::printf("instructions  : %llu\n",
                static_cast<unsigned long long>(r.instructions));
    std::printf("cycles        : %llu\n",
                static_cast<unsigned long long>(r.cycles));
    std::printf("IPC           : %.3f\n", r.ipc());
    std::printf("%% from TC     : %.2f\n", r.pctFromTraceCache);
    std::printf("trace size    : %.2f\n", r.meanTraceSize);
    std::printf("intra-cluster : %.2f%%\n", r.pctIntraClusterFwd);
    std::printf("fwd distance  : %.3f\n", r.meanFwdDistance);
    std::printf("bpred accuracy: %.2f%%\n", r.bpredAccuracy);
    std::printf("\nFull statistics:\n%s", r.statsText.c_str());
    return 0;
}
