/**
 * @file
 * Authoring a custom workload with the ProgramBuilder DSL and running
 * it through the CTCP simulator under two assignment strategies.
 *
 * The kernel is a banked histogram: four independent update strands
 * woven together (the way a trace scheduler emits them), a pattern
 * whose inter-strand independence clustered machines exploit well.
 */

#include <cstdio>

#include "common/random.hh"
#include "config/presets.hh"
#include "core/simulator.hh"
#include "prog/builder.hh"

namespace {

ctcp::Program
buildHistogram()
{
    using namespace ctcp;

    constexpr Addr data_base = 0x10000;
    constexpr Addr hist_base = 0x40000;
    constexpr std::int64_t items = 4096;

    // Deterministic input data.
    Rng rng(0xc0ffee);
    std::vector<std::int64_t> words(items);
    for (auto &w : words)
        w = static_cast<std::int64_t>(rng.below(256));

    ProgramBuilder b("histogram");
    b.data(data_base, std::move(words));

    const RegId iter = intReg(1);
    const RegId i = intReg(2);
    const RegId db = intReg(3);
    const RegId hb = intReg(4);

    b.movi(iter, 1'000'000'000);
    b.movi(i, 0);
    b.movi(db, data_base);
    b.movi(hb, hist_base);

    b.label("loop");
    // Four independent bucket updates per pass, interleaved.
    b.beginStrands(4);
    for (unsigned k = 0; k < 4; ++k) {
        const RegId a = intReg(6 + k);
        const RegId v = intReg(10 + k);
        b.strand(k);
        b.addi(a, i, static_cast<std::int64_t>(k) * 1024);
        b.slli(a, a, 3);
        b.add(a, a, db);
        b.load(v, a, 0);            // item
        b.slli(a, v, 3);
        b.add(a, a, hb);
        b.load(v, a, 0);            // bucket
        b.addi(v, v, 1);
        b.store(v, a, 0);
    }
    b.weave();
    b.addi(i, i, 1);
    b.andi(i, i, 1023);
    b.addi(iter, iter, -1);
    b.bne(iter, zeroReg, "loop");
    b.halt();
    return b.build();
}

} // namespace

int
main()
{
    using namespace ctcp;

    Program prog = buildHistogram();
    std::printf("custom workload '%s': %zu static instructions\n\n",
                prog.name().c_str(), prog.size());

    for (AssignStrategy s : {AssignStrategy::BaseSlotOrder,
                             AssignStrategy::Fdrt}) {
        SimConfig cfg = baseConfig();
        cfg.assign.strategy = s;
        cfg.instructionLimit = 200'000;
        CtcpSimulator sim(cfg, prog);
        SimResult r = sim.run();
        std::printf("%-6s  cycles %8llu  IPC %.3f  intra-cluster %.1f%%  "
                    "distance %.3f\n",
                    assignStrategyName(s),
                    static_cast<unsigned long long>(r.cycles), r.ipc(),
                    r.pctIntraClusterFwd, r.meanFwdDistance);
    }
    return 0;
}
