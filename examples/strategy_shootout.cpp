/**
 * @file
 * Strategy shootout: run one benchmark under every cluster-assignment
 * strategy the paper evaluates and print a speedup table relative to
 * the base slot-order machine (the experiment behind Figure 6).
 *
 * Usage: strategy_shootout [benchmark] [instructions]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "config/presets.hh"
#include "core/simulator.hh"
#include "stats/table.hh"
#include "workload/workload.hh"

namespace {

struct StrategyRun
{
    const char *label;
    ctcp::AssignStrategy strategy;
    unsigned issueLatency;   // only for IssueTime
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace ctcp;

    const std::string bench = argc > 1 ? argv[1] : "gzip";
    const std::uint64_t insts =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 500'000;

    if (!workloads::exists(bench)) {
        std::fprintf(stderr, "unknown benchmark '%s'\n", bench.c_str());
        return 1;
    }

    const std::vector<StrategyRun> runs = {
        {"base", AssignStrategy::BaseSlotOrder, 0},
        {"friendly", AssignStrategy::Friendly, 0},
        {"fdrt", AssignStrategy::Fdrt, 0},
        {"issue-0lat", AssignStrategy::IssueTime, 0},
        {"issue-4lat", AssignStrategy::IssueTime, 4},
    };

    Program prog = workloads::build(bench);
    double base_cycles = 0.0;

    TextTable table({"strategy", "cycles", "IPC", "speedup",
                     "intra-fwd", "distance"});
    for (const StrategyRun &run : runs) {
        SimConfig cfg = baseConfig();
        cfg.assign.strategy = run.strategy;
        cfg.assign.issueTimeLatency = run.issueLatency;
        cfg.instructionLimit = insts;
        CtcpSimulator sim(cfg, prog);
        SimResult r = sim.run();
        if (run.strategy == AssignStrategy::BaseSlotOrder)
            base_cycles = static_cast<double>(r.cycles);
        table.row(run.label)
            .cell(std::to_string(r.cycles))
            .cell(r.ipc(), 3)
            .cell(base_cycles / static_cast<double>(r.cycles), 3)
            .percentCell(r.pctIntraClusterFwd)
            .cell(r.meanFwdDistance, 3);
    }

    std::printf("benchmark: %s, %llu instructions\n\n%s", bench.c_str(),
                static_cast<unsigned long long>(insts),
                table.render().c_str());
    return 0;
}
