/**
 * @file
 * Scaling study: how the cluster-assignment strategies behave as the
 * machine grows from two to eight four-wide clusters.
 *
 * The paper's motivation (Section 1) is that issue-time dependency
 * analysis scales poorly with width while retire-time assignment
 * scales for free; this example makes that concrete by modelling the
 * issue-time analysis latency as one extra front-end stage per four
 * analyzed instructions and watching the strategies diverge with
 * width.
 *
 * All twelve runs (three machine widths x four assignment modes) are
 * submitted as one campaign and executed concurrently; aggregation is
 * deterministic, so the printed table is identical for any worker
 * count.
 *
 * Usage: scaling_study [benchmark] [instructions] [jobs]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "config/presets.hh"
#include "stats/table.hh"
#include "workload/workload.hh"

int
main(int argc, char **argv)
{
    using namespace ctcp;

    const std::string bench = argc > 1 ? argv[1] : "gzip";
    const std::uint64_t insts =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200'000;
    const unsigned jobs =
        argc > 3 ? static_cast<unsigned>(std::strtoul(argv[3], nullptr, 10))
                 : 0;
    if (!workloads::exists(bench)) {
        std::fprintf(stderr, "unknown benchmark '%s'\n", bench.c_str());
        return 1;
    }

    auto machine = [&](unsigned clusters) {
        SimConfig cfg;
        switch (clusters) {
          case 2: cfg = twoClusterConfig(); break;
          case 8: cfg = eightClusterConfig(); break;
          default: cfg = baseConfig(); break;
        }
        cfg.instructionLimit = insts;
        return cfg;
    };

    const std::vector<unsigned> widths = {2u, 4u, 8u};
    std::vector<campaign::Job> queue;
    auto enqueue = [&](unsigned clusters, const std::string &tag,
                       AssignStrategy s, unsigned issue_lat) {
        SimConfig cfg = machine(clusters);
        cfg.assign.strategy = s;
        cfg.assign.issueTimeLatency = issue_lat;
        queue.push_back(campaign::makeJob(
            std::to_string(clusters) + "/" + tag, bench, cfg));
    };
    for (unsigned clusters : widths) {
        // Issue-time analysis latency grows with the number of
        // instructions analyzed per cycle: one stage per four.
        const unsigned issue_lat = machine(clusters).machineWidth() / 4;
        enqueue(clusters, "base", AssignStrategy::BaseSlotOrder, 4);
        enqueue(clusters, "fdrt", AssignStrategy::Fdrt, 0);
        enqueue(clusters, "friendly", AssignStrategy::Friendly, 0);
        enqueue(clusters, "issue-time", AssignStrategy::IssueTime,
                issue_lat);
    }

    campaign::Options options;
    options.jobs = jobs;
    const campaign::Report report = campaign::runCampaign(queue, options);
    if (report.failed() > 0) {
        for (const campaign::JobOutcome &out : report.jobs)
            if (!out.ok())
                std::fprintf(stderr, "job '%s' failed: %s\n",
                             out.label.c_str(), out.error.c_str());
        return 1;
    }

    std::printf("scaling study on '%s'\n\n", bench.c_str());
    TextTable table({"clusters", "width", "base IPC", "FDRT", "Friendly",
                     "issue-time (scaled lat)"});
    for (unsigned clusters : widths) {
        const std::string prefix = std::to_string(clusters) + "/";
        const double base_cycles = static_cast<double>(
            report.at(prefix + "base").result.cycles);
        auto speedup = [&](const std::string &tag) {
            return base_cycles /
                static_cast<double>(report.at(prefix + tag).result.cycles);
        };
        table.row(std::to_string(clusters))
            .cell(std::to_string(machine(clusters).machineWidth()))
            .cell(static_cast<double>(insts) / base_cycles, 3)
            .cell(speedup("fdrt"), 3)
            .cell(speedup("friendly"), 3)
            .cell(speedup("issue-time"), 3);
    }
    std::printf("%s", table.render().c_str());
    return 0;
}
