/**
 * @file
 * Scaling study: how the cluster-assignment strategies behave as the
 * machine grows from two to eight four-wide clusters.
 *
 * The paper's motivation (Section 1) is that issue-time dependency
 * analysis scales poorly with width while retire-time assignment
 * scales for free; this example makes that concrete by modelling the
 * issue-time analysis latency as one extra front-end stage per four
 * analyzed instructions and watching the strategies diverge with
 * width.
 *
 * Usage: scaling_study [benchmark] [instructions]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "config/presets.hh"
#include "core/simulator.hh"
#include "stats/table.hh"
#include "workload/workload.hh"

int
main(int argc, char **argv)
{
    using namespace ctcp;

    const std::string bench = argc > 1 ? argv[1] : "gzip";
    const std::uint64_t insts =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200'000;
    if (!workloads::exists(bench)) {
        std::fprintf(stderr, "unknown benchmark '%s'\n", bench.c_str());
        return 1;
    }
    Program prog = workloads::build(bench);

    auto machine = [&](unsigned clusters) {
        SimConfig cfg;
        switch (clusters) {
          case 2: cfg = twoClusterConfig(); break;
          case 8: cfg = eightClusterConfig(); break;
          default: cfg = baseConfig(); break;
        }
        cfg.instructionLimit = insts;
        return cfg;
    };

    std::printf("scaling study on '%s'\n\n", bench.c_str());
    TextTable table({"clusters", "width", "base IPC", "FDRT", "Friendly",
                     "issue-time (scaled lat)"});
    for (unsigned clusters : {2u, 4u, 8u}) {
        SimConfig base = machine(clusters);
        const double base_cycles =
            static_cast<double>(CtcpSimulator(base, prog).run().cycles);

        auto speedup = [&](AssignStrategy s, unsigned issue_lat) {
            SimConfig cfg = machine(clusters);
            cfg.assign.strategy = s;
            cfg.assign.issueTimeLatency = issue_lat;
            return base_cycles /
                static_cast<double>(CtcpSimulator(cfg, prog).run().cycles);
        };

        // Issue-time analysis latency grows with the number of
        // instructions analyzed per cycle: one stage per four.
        const unsigned issue_lat = machine(clusters).machineWidth() / 4;
        table.row(std::to_string(clusters))
            .cell(std::to_string(machine(clusters).machineWidth()))
            .cell(static_cast<double>(insts) / base_cycles, 3)
            .cell(speedup(AssignStrategy::Fdrt, 0), 3)
            .cell(speedup(AssignStrategy::Friendly, 0), 3)
            .cell(speedup(AssignStrategy::IssueTime, issue_lat), 3);
    }
    std::printf("%s", table.render().c_str());
    return 0;
}
