/**
 * @file
 * Design-space exploration: sweep the inter-cluster hop latency and
 * the interconnect topology for one benchmark, and report how much
 * each cluster-assignment strategy recovers of the gap to a machine
 * with free forwarding.
 *
 * This reproduces the paper's robustness argument (Section 5.6) as a
 * sweep rather than three fixed points.
 *
 * Usage: design_space [benchmark] [instructions]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "config/presets.hh"
#include "core/simulator.hh"
#include "stats/table.hh"
#include "workload/workload.hh"

int
main(int argc, char **argv)
{
    using namespace ctcp;

    const std::string bench = argc > 1 ? argv[1] : "twolf";
    const std::uint64_t insts =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200'000;
    if (!workloads::exists(bench)) {
        std::fprintf(stderr, "unknown benchmark '%s'\n", bench.c_str());
        return 1;
    }
    Program prog = workloads::build(bench);

    auto cycles = [&](SimConfig cfg) {
        cfg.instructionLimit = insts;
        CtcpSimulator sim(cfg, prog);
        return static_cast<double>(sim.run().cycles);
    };

    std::printf("design-space sweep on '%s' (%llu instructions/run)\n\n",
                bench.c_str(), static_cast<unsigned long long>(insts));

    TextTable table({"topology", "hop", "base IPC", "fdrt speedup",
                     "friendly speedup", "free-fwd ceiling"});
    for (bool mesh : {false, true}) {
        for (unsigned hop : {1u, 2u, 3u}) {
            SimConfig base = baseConfig();
            base.cluster.mesh = mesh;
            base.cluster.hopLatency = hop;

            const double base_cycles = cycles(base);

            SimConfig fdrt = base;
            fdrt.assign.strategy = AssignStrategy::Fdrt;
            SimConfig friendly = base;
            friendly.assign.strategy = AssignStrategy::Friendly;
            SimConfig free_fwd = base;
            free_fwd.ablation.zeroAllForwardLatency = true;

            table.row(mesh ? "mesh" : "linear")
                .cell(std::to_string(hop))
                .cell(static_cast<double>(insts) / base_cycles, 3)
                .cell(base_cycles / cycles(fdrt), 3)
                .cell(base_cycles / cycles(friendly), 3)
                .cell(base_cycles / cycles(free_fwd), 3);
        }
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nThe 'free-fwd ceiling' column is the speedup with all "
                "inter-cluster forwarding latency removed —\nthe headroom "
                "retire-time assignment competes for. Gains grow with hop "
                "latency and shrink on a mesh,\nmatching the paper's "
                "robustness discussion.\n");
    return 0;
}
