/**
 * @file
 * Unit tests for the trace cache and fill unit: path-associative
 * lookup, overwrite-on-reconstruction, LRU eviction, profile updates,
 * and trace construction rules.
 */

#include <gtest/gtest.h>

#include "assign/base_assignment.hh"
#include "tracecache/fill_unit.hh"
#include "tracecache/trace_cache.hh"

namespace ctcp {
namespace {

TraceLine
makeLine(Addr start, std::uint32_t dirs, unsigned num_cond,
         std::vector<Addr> pcs, std::vector<Addr> branch_pcs = {})
{
    TraceLine line;
    line.key.startPc = start;
    line.key.condDirs = dirs;
    line.key.numCondBranches = static_cast<std::uint8_t>(num_cond);
    for (std::size_t i = 0; i < pcs.size(); ++i) {
        TraceSlot slot;
        slot.pc = pcs[i];
        slot.physSlot = static_cast<std::uint8_t>(i);
        line.insts.push_back(slot);
    }
    line.condBranchPcs = std::move(branch_pcs);
    return line;
}

TraceCacheConfig
smallTc()
{
    TraceCacheConfig cfg;
    cfg.entries = 8;
    cfg.assoc = 2;
    return cfg;
}

TEST(TraceCache, MissThenHit)
{
    TraceCache tc(smallTc());
    auto always = [](Addr, unsigned) { return true; };
    EXPECT_EQ(tc.lookup(100, always), nullptr);
    tc.insert(makeLine(100, 0, 0, {100, 101, 102}));
    const TraceLine *line = tc.lookup(100, always);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->insts.size(), 3u);
}

TEST(TraceCache, PathAssociativity)
{
    TraceCache tc(smallTc());
    // Two lines with the same start PC but different embedded paths.
    tc.insert(makeLine(100, 0b1, 1, {100, 101, 200}, {101}));
    tc.insert(makeLine(100, 0b0, 1, {100, 101, 102}, {101}));

    auto predict_taken = [](Addr, unsigned) { return true; };
    auto predict_not = [](Addr, unsigned) { return false; };

    const TraceLine *taken = tc.lookup(100, predict_taken);
    ASSERT_NE(taken, nullptr);
    EXPECT_EQ(taken->key.condDirs, 0b1u);

    const TraceLine *not_taken = tc.lookup(100, predict_not);
    ASSERT_NE(not_taken, nullptr);
    EXPECT_EQ(not_taken->key.condDirs, 0b0u);
}

TEST(TraceCache, ReconstructionOverwritesInPlace)
{
    TraceCache tc(smallTc());
    tc.insert(makeLine(100, 0, 0, {100, 101}));
    TraceLine updated = makeLine(100, 0, 0, {100, 101});
    updated.insts[0].profile.role = ChainRole::Leader;
    updated.insts[0].profile.chainCluster = 3;
    tc.insert(updated);

    auto always = [](Addr, unsigned) { return true; };
    const TraceLine *line = tc.lookup(100, always);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->insts[0].profile.role, ChainRole::Leader);
    EXPECT_EQ(tc.evictions(), 0u);
}

TEST(TraceCache, LruEvictionWithinSet)
{
    TraceCacheConfig cfg;
    cfg.entries = 2;   // one set, two ways
    cfg.assoc = 2;
    TraceCache tc(cfg);
    auto always = [](Addr, unsigned) { return true; };

    tc.insert(makeLine(0, 0, 0, {0}));
    tc.insert(makeLine(16, 0, 0, {16}));
    tc.lookup(0, always);               // refresh line 0
    tc.insert(makeLine(32, 0, 0, {32}));   // evicts line 16

    EXPECT_NE(tc.lookup(0, always), nullptr);
    EXPECT_EQ(tc.lookup(16, always), nullptr);
    EXPECT_NE(tc.lookup(32, always), nullptr);
    EXPECT_EQ(tc.evictions(), 1u);
}

TEST(TraceCache, UpdateProfilePromotesResidentSlots)
{
    TraceCache tc(smallTc());
    TraceLine line = makeLine(100, 0, 0, {100, 101, 100});
    tc.insert(line);
    const std::uint64_t key = line.key.hash();

    ChainProfile prof;
    prof.role = ChainRole::Leader;
    prof.chainCluster = 1;
    EXPECT_TRUE(tc.updateProfile(key, 100, prof));

    const TraceLine *got = tc.findByHash(key);
    ASSERT_NE(got, nullptr);
    // Both slots holding PC 100 were promoted; PC 101 untouched.
    EXPECT_EQ(got->insts[0].profile.role, ChainRole::Leader);
    EXPECT_EQ(got->insts[2].profile.role, ChainRole::Leader);
    EXPECT_EQ(got->insts[1].profile.role, ChainRole::None);
}

TEST(TraceCache, UpdateProfileDoesNotOverwriteMembers)
{
    TraceCache tc(smallTc());
    TraceLine line = makeLine(100, 0, 0, {100});
    line.insts[0].profile.role = ChainRole::Follower;
    line.insts[0].profile.chainCluster = 2;
    tc.insert(line);

    ChainProfile prof;
    prof.role = ChainRole::Leader;
    prof.chainCluster = 0;
    EXPECT_FALSE(tc.updateProfile(line.key.hash(), 100, prof));
    EXPECT_EQ(tc.findByHash(line.key.hash())->insts[0].profile.chainCluster,
              2);
}

TEST(TraceCache, UpdateProfileMissesReplacedLines)
{
    TraceCache tc(smallTc());
    ChainProfile prof;
    prof.role = ChainRole::Leader;
    prof.chainCluster = 0;
    EXPECT_FALSE(tc.updateProfile(0, 100, prof));       // I-cache key
    EXPECT_FALSE(tc.updateProfile(12345, 100, prof));   // absent line
}

// ---------------------------------------------------------------------
// Fill unit
// ---------------------------------------------------------------------

class FillUnitTest : public ::testing::Test
{
  protected:
    FillUnitTest()
        : tc_(cfg()), fill_(cfg(), 4, 4, tc_, policy_)
    {}

    static TraceCacheConfig
    cfg()
    {
        TraceCacheConfig c;
        c.entries = 64;
        c.assoc = 2;
        c.maxInsts = 16;
        c.maxBlocks = 3;
        return c;
    }

    OwnedTimedInst
    inst(Addr pc, Opcode op, bool taken = false, Addr target = 0)
    {
        OwnedTimedInst t;
        t.dyn.pc = pc;
        t.dyn.op = op;
        t.dyn.taken = taken;
        t.dyn.targetPc = target;
        t.dyn.nextPc = taken ? target : pc + 1;
        if (op == Opcode::Add) {
            t.dyn.dst = intReg(1);
            t.dyn.src1 = intReg(1);
            t.dyn.src2 = intReg(2);
        }
        return t;
    }

    TraceCache tc_;
    BaseSlotOrderAssignment policy_;
    FillUnit fill_;
};

TEST_F(FillUnitTest, SixteenInstructionLimit)
{
    for (Addr pc = 0; pc < 20; ++pc)
        fill_.retire(inst(pc, Opcode::Add));
    EXPECT_EQ(fill_.tracesBuilt(), 1u);
    fill_.flush();
    EXPECT_EQ(fill_.tracesBuilt(), 2u);
    EXPECT_NE(tc_.findByHash(TraceKey{0, 0, 0}.hash()), nullptr);
}

TEST_F(FillUnitTest, ThreeBlockLimit)
{
    // Three forward not-taken conditionals end the trace.
    fill_.retire(inst(0, Opcode::Add));
    fill_.retire(inst(1, Opcode::Beq, false, 50));
    fill_.retire(inst(2, Opcode::Add));
    fill_.retire(inst(3, Opcode::Beq, false, 50));
    fill_.retire(inst(4, Opcode::Add));
    EXPECT_EQ(fill_.tracesBuilt(), 0u);
    fill_.retire(inst(5, Opcode::Beq, false, 50));
    EXPECT_EQ(fill_.tracesBuilt(), 1u);

    const TraceLine *line = tc_.findByHash(TraceKey{0, 0, 3}.hash());
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->numBlocks, 3);
    EXPECT_EQ(line->key.numCondBranches, 3);
    EXPECT_EQ(line->key.condDirs, 0u);
    EXPECT_EQ(line->successorPc, 6u);
}

TEST_F(FillUnitTest, IndirectEndsTrace)
{
    fill_.retire(inst(0, Opcode::Add));
    fill_.retire(inst(1, Opcode::JumpReg, true, 99));
    EXPECT_EQ(fill_.tracesBuilt(), 1u);
    const TraceLine *line = tc_.findByHash(TraceKey{0, 0, 0}.hash());
    ASSERT_NE(line, nullptr);
    EXPECT_TRUE(line->endsWithIndirect);
}

TEST_F(FillUnitTest, BackwardTakenBranchEndsTrace)
{
    fill_.retire(inst(10, Opcode::Add));
    fill_.retire(inst(11, Opcode::Bne, true, 10));   // loop back
    EXPECT_EQ(fill_.tracesBuilt(), 1u);
    const TraceLine *line = tc_.findByHash(TraceKey{10, 1, 1}.hash());
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->key.condDirs, 1u);
    EXPECT_EQ(line->successorPc, 10u);
}

TEST_F(FillUnitTest, ForwardTakenBranchContinuesTrace)
{
    fill_.retire(inst(10, Opcode::Add));
    fill_.retire(inst(11, Opcode::Beq, true, 40));   // forward taken
    EXPECT_EQ(fill_.tracesBuilt(), 0u);              // block 2 continues
    fill_.retire(inst(40, Opcode::Add));
    fill_.flush();
    const TraceLine *line = tc_.findByHash(TraceKey{10, 1, 1}.hash());
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->insts.size(), 3u);
    EXPECT_EQ(line->insts[2].pc, 40u);
}

TEST_F(FillUnitTest, MeanTraceSize)
{
    for (int round = 0; round < 4; ++round) {
        for (Addr pc = 0; pc < 8; ++pc)
            fill_.retire(inst(pc, Opcode::Add));
        fill_.retire(inst(8, Opcode::Bne, true, 0));
    }
    EXPECT_EQ(fill_.tracesBuilt(), 4u);
    EXPECT_DOUBLE_EQ(fill_.meanTraceSize(), 9.0);
}

TEST_F(FillUnitTest, HaltFinalizes)
{
    fill_.retire(inst(0, Opcode::Add));
    fill_.retire(inst(1, Opcode::Halt));
    EXPECT_EQ(fill_.tracesBuilt(), 1u);
}

TEST_F(FillUnitTest, ObserverSeesDraftAndLine)
{
    struct Obs : FillUnitObserver
    {
        unsigned calls = 0;
        void
        onTraceConstructed(const TraceDraft &draft,
                           const TraceLine &line) override
        {
            ++calls;
            EXPECT_EQ(draft.insts.size(), line.insts.size());
        }
    } obs;
    fill_.setObserver(&obs);
    fill_.retire(inst(0, Opcode::Add));
    fill_.retire(inst(1, Opcode::JumpReg, true, 0));
    EXPECT_EQ(obs.calls, 1u);
}

TEST(TraceCache, FillLatencyDelaysAvailability)
{
    TraceCache tc(smallTc());
    TraceLine line = makeLine(100, 0, 0, {100, 101});
    tc.insert(line, 500);   // available at cycle 500
    auto always = [](Addr, unsigned) { return true; };
    EXPECT_EQ(tc.lookup(100, always, 499), nullptr);
    EXPECT_NE(tc.lookup(100, always, 500), nullptr);
    // Lookups with no cycle context see everything (test convenience).
    EXPECT_NE(tc.lookup(100, always), nullptr);
}

TEST(TraceKey, HashDistinguishesPaths)
{
    TraceKey a{100, 0b01, 2};
    TraceKey b{100, 0b10, 2};
    TraceKey c{100, 0b01, 2};
    EXPECT_NE(a.hash(), b.hash());
    EXPECT_EQ(a.hash(), c.hash());
    EXPECT_NE(a.hash(), 0u);
}

} // namespace
} // namespace ctcp
