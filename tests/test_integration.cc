/**
 * @file
 * Integration tests: full benchmark runs across assignment strategies
 * and machine variants, checking the cross-cutting properties the
 * paper's evaluation relies on.
 */

#include <gtest/gtest.h>

#include "config/presets.hh"
#include "core/simulator.hh"
#include "workload/workload.hh"

namespace ctcp {
namespace {

constexpr std::uint64_t budget = 60000;

SimResult
run(const std::string &bench, AssignStrategy strategy,
    unsigned issue_latency = 4, bool pinning = true)
{
    SimConfig cfg = baseConfig();
    cfg.assign.strategy = strategy;
    cfg.assign.issueTimeLatency = issue_latency;
    cfg.assign.fdrtPinning = pinning;
    cfg.instructionLimit = budget;
    Program p = workloads::build(bench);
    CtcpSimulator sim(cfg, p);
    return sim.run();
}

TEST(Integration, RetireTimeReorderingPreservesInstructionStream)
{
    // Physical reordering must not change *what* retires: every
    // strategy commits the same number of instructions for the same
    // budget, and the architectural effects (committed stream) come
    // from the same functional execution by construction.
    for (const char *bench : {"gzip", "twolf"}) {
        const SimResult base = run(bench, AssignStrategy::BaseSlotOrder);
        const SimResult fdrt = run(bench, AssignStrategy::Fdrt);
        const SimResult friendly = run(bench, AssignStrategy::Friendly);
        // Runs stop at the first retire cycle that reaches the budget,
        // so counts agree up to one retire group.
        const auto width = baseConfig().core.retireWidth;
        EXPECT_NEAR(base.instructions, fdrt.instructions, width) << bench;
        EXPECT_NEAR(base.instructions, friendly.instructions, width)
            << bench;
    }
}

TEST(Integration, FdrtImprovesForwardingLocalityOnGzip)
{
    const SimResult base = run("gzip", AssignStrategy::BaseSlotOrder);
    const SimResult fdrt = run("gzip", AssignStrategy::Fdrt);
    // The paper's headline mechanism: more intra-cluster forwarding,
    // shorter distances, better performance.
    EXPECT_GT(fdrt.pctIntraClusterFwd, base.pctIntraClusterFwd);
    EXPECT_LT(fdrt.meanFwdDistance, base.meanFwdDistance);
    EXPECT_LT(fdrt.cycles, base.cycles);
}

TEST(Integration, RetireTimeStrategiesShortenDistances)
{
    for (const char *bench : {"gzip", "twolf", "vpr"}) {
        const SimResult base = run(bench, AssignStrategy::BaseSlotOrder);
        const SimResult friendly = run(bench, AssignStrategy::Friendly);
        const SimResult fdrt = run(bench, AssignStrategy::Fdrt);
        EXPECT_LT(friendly.meanFwdDistance, base.meanFwdDistance) << bench;
        EXPECT_LT(fdrt.meanFwdDistance, base.meanFwdDistance) << bench;
    }
}

TEST(Integration, IssueTimeLatencyHurts)
{
    for (const char *bench : {"gzip", "perlbmk"}) {
        const SimResult ideal = run(bench, AssignStrategy::IssueTime, 0);
        const SimResult real = run(bench, AssignStrategy::IssueTime, 4);
        EXPECT_LE(ideal.cycles, real.cycles) << bench;
    }
}

TEST(Integration, FdrtOptionMixIsSane)
{
    const SimResult r = run("gzip", AssignStrategy::Fdrt);
    // Options A-C (identified producers) should cover a majority of
    // instructions on a dependence-dense benchmark, and raw skips
    // must stay a modest fraction (the paper reports <1%; capacity
    // pressure in the synthetic kernels makes ours a bit larger).
    EXPECT_GT(r.pctOptionA + r.pctOptionB + r.pctOptionC, 40.0);
    EXPECT_LT(r.pctSkipped, 25.0);
}

TEST(Integration, PinningReducesChainMigration)
{
    const SimResult pinned = run("gzip", AssignStrategy::Fdrt, 4, true);
    const SimResult unpinned = run("gzip", AssignStrategy::Fdrt, 4, false);
    // Table 9's effect: pinning lowers chain-instruction migration.
    EXPECT_LT(pinned.migrationChainPct, unpinned.migrationChainPct);
}

TEST(Integration, InterTraceProducersRepeat)
{
    // Table 3's enabling observation: inter-trace critical producers
    // are highly repetitive.
    const SimResult r = run("gzip", AssignStrategy::BaseSlotOrder);
    EXPECT_GT(r.repeatRs1CritInter, 80.0);
}

TEST(Integration, MostDependenciesAreCritical)
{
    // Table 2: the large majority of forwarded dependencies are the
    // consumer's last-arriving input.
    for (const char *bench : {"gzip", "twolf", "vpr"}) {
        const SimResult r = run(bench, AssignStrategy::BaseSlotOrder);
        EXPECT_GT(r.pctDepsCritical, 50.0) << bench;
        EXPECT_GT(r.pctCritInterTrace, 5.0) << bench;
        EXPECT_LT(r.pctCritInterTrace, 70.0) << bench;
    }
}

TEST(Integration, MeshHelpsOrMatchesDistance)
{
    Program p = workloads::build("gzip");
    SimConfig lin = baseConfig();
    lin.instructionLimit = budget;
    SimConfig mesh = meshConfig();
    mesh.instructionLimit = budget;
    const SimResult rl = CtcpSimulator(lin, p).run();
    const SimResult rm = CtcpSimulator(mesh, p).run();
    EXPECT_LE(rm.meanFwdDistance, rl.meanFwdDistance + 0.05);
    // No 3-hop trips exist in a 4-cluster mesh.
    EXPECT_LE(rm.meanFwdDistance, 2.0);
}

TEST(Integration, OneCycleForwardingImprovesBase)
{
    Program p = workloads::build("twolf");
    SimConfig two = baseConfig();
    two.instructionLimit = budget;
    SimConfig one = oneCycleForwardConfig();
    one.instructionLimit = budget;
    const SimResult r2 = CtcpSimulator(two, p).run();
    const SimResult r1 = CtcpSimulator(one, p).run();
    EXPECT_LT(r1.cycles, r2.cycles);
}

TEST(Integration, TwoClusterMachineRunsEveryStrategy)
{
    Program p = workloads::build("gzip");
    for (AssignStrategy s : {AssignStrategy::BaseSlotOrder,
                             AssignStrategy::Friendly, AssignStrategy::Fdrt,
                             AssignStrategy::IssueTime}) {
        SimConfig cfg = twoClusterConfig();
        cfg.assign.strategy = s;
        cfg.instructionLimit = budget;
        const SimResult r = CtcpSimulator(cfg, p).run();
        EXPECT_GE(r.instructions, budget) << assignStrategyName(s);
        EXPECT_LE(r.meanFwdDistance, 1.0);   // two clusters: 0 or 1 hop
    }
}

TEST(Integration, FdrtChainMechanismConvergesEndToEnd)
{
    // Drive the full pipeline and verify the paper's feedback loop
    // actually closes: consumers observe critical inter-trace
    // forwards, producers get promoted to leaders (pins appear), the
    // trace cache's profile fields are written, and the chain options
    // (B/C) fire during assignment.
    const SimResult r = run("gzip", AssignStrategy::Fdrt);
    EXPECT_GT(r.pctOptionB, 1.0);   // followers were classified
    EXPECT_GT(r.pctOptionC, 0.1);
    // With chains disabled the same run classifies nothing as B/C.
    SimConfig cfg = baseConfig();
    cfg.assign.strategy = AssignStrategy::Fdrt;
    cfg.assign.fdrtChains = false;
    cfg.instructionLimit = budget;
    Program p = workloads::build("gzip");
    const SimResult nc = CtcpSimulator(cfg, p).run();
    EXPECT_DOUBLE_EQ(nc.pctOptionB, 0.0);
    EXPECT_DOUBLE_EQ(nc.pctOptionC, 0.0);
    // And chains raise the share of inter-trace critical inputs that
    // are satisfied intra-cluster versus the slot-order baseline.
    const SimResult base = run("gzip", AssignStrategy::BaseSlotOrder);
    EXPECT_GT(r.pctIntraClusterFwd, base.pctIntraClusterFwd);
}

TEST(Integration, FillLatencyBarelyMattersOnRealWorkloads)
{
    // Section 4's quantitative claim at workload scale.
    Program p = workloads::build("twolf");
    SimConfig fast = baseConfig();
    fast.assign.strategy = AssignStrategy::Fdrt;
    fast.instructionLimit = budget;
    SimConfig slow = fast;
    slow.frontEnd.traceCache.fillLatency = 1000;
    const SimResult rf = CtcpSimulator(fast, p).run();
    const SimResult rs = CtcpSimulator(slow, p).run();
    EXPECT_LT(static_cast<double>(rs.cycles),
              static_cast<double>(rf.cycles) * 1.08);
}

// Every benchmark must complete a timing run under every strategy
// without wedging (watchdog inside run()) — a broad smoke matrix.
class StrategyMatrix
    : public ::testing::TestWithParam<std::tuple<std::string, int>>
{};

TEST_P(StrategyMatrix, CompletesAndRetiresBudget)
{
    const auto &[bench, strat] = GetParam();
    SimConfig cfg = baseConfig();
    cfg.assign.strategy = static_cast<AssignStrategy>(strat);
    cfg.instructionLimit = 20000;
    Program p = workloads::build(bench);
    const SimResult r = CtcpSimulator(cfg, p).run();
    EXPECT_GE(r.instructions, 20000u);
    EXPECT_GT(r.ipc(), 0.05);
    EXPECT_LT(r.ipc(), 16.0);
}

INSTANTIATE_TEST_SUITE_P(
    SelectedSix, StrategyMatrix,
    ::testing::Combine(
        ::testing::Values("bzip2", "eon", "gzip", "perlbmk", "twolf", "vpr",
                          "mcf", "adpcm_enc", "jpeg_dec", "pegwit_enc"),
        ::testing::Range(0, 4)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, int>> &info) {
        std::string name = std::get<0>(info.param) + "_" +
            assignStrategyName(
                static_cast<AssignStrategy>(std::get<1>(info.param)));
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

} // namespace
} // namespace ctcp
