/**
 * @file
 * Golden-stats regression test: the headline metrics of the four
 * assignment strategies on two workloads at a fixed instruction budget
 * must match the checked-in golden JSON byte-for-byte.
 *
 * The golden matrix is small on purpose — two workloads, 50k
 * instructions — so the suite stays fast while still covering every
 * strategy's end-to-end statistics path.
 *
 * To regenerate after an intentional behaviour change:
 *
 *   CTCP_REGEN_GOLDEN=1 ./build/tests/test_golden_stats
 *
 * then commit the updated tests/golden/golden_stats.json together with
 * the change that moved the numbers.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "campaign/matrix.hh"

#ifndef CTCP_GOLDEN_STATS_PATH
#error "CTCP_GOLDEN_STATS_PATH must point at tests/golden/golden_stats.json"
#endif
#ifndef CTCP_GOLDEN_TOPOLOGY_PATH
#error "CTCP_GOLDEN_TOPOLOGY_PATH must point at tests/golden/golden_topology.json"
#endif
#ifndef CTCP_GOLDEN_ADAPTIVE_PATH
#error "CTCP_GOLDEN_ADAPTIVE_PATH must point at tests/golden/golden_adaptive.json"
#endif

namespace ctcp {
namespace {

constexpr const char *goldenMatrix =
    "bench=gzip,twolf;strategy=base,friendly,fdrt,issue-time;"
    "budget=50000";

/**
 * The non-default interconnects get their own golden so a topology
 * regression cannot hide behind the (unchanged) linear-chain file.
 * Kept separate from goldenMatrix on purpose: that file predates the
 * topology axis and must stay byte-identical.
 */
constexpr const char *goldenTopologyMatrix =
    "bench=gzip;strategy=base,fdrt;preset=ring,crossbar;budget=50000";

/**
 * The adaptive chooser completes the five-strategy coverage: its
 * interval sampling, hysteresis, and mid-run policy switches all sit
 * on top of the memoized dispatch plans and pooled TimedInst storage,
 * so byte-identity here is what certifies those caches stay invisible
 * under the most stateful strategy.
 */
constexpr const char *goldenAdaptiveMatrix =
    "bench=gzip,twolf;strategy=adaptive;budget=50000";

std::string
generateGolden(const char *matrix)
{
    const std::vector<campaign::Job> jobs =
        campaign::parseMatrix(matrix);
    const campaign::Report report = campaign::runCampaign(jobs);
    EXPECT_EQ(report.failed(), 0u);
    return report.toJson();
}

bool
readFile(const std::string &path, std::string &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return true;
}

std::vector<std::string>
lines(const std::string &text)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t end = text.find('\n', start);
        if (end == std::string::npos) {
            out.push_back(text.substr(start));
            break;
        }
        out.push_back(text.substr(start, end - start));
        start = end + 1;
    }
    return out;
}

void
checkAgainstGolden(const std::string &path, const char *matrix)
{
    const std::string fresh = generateGolden(matrix);

    if (const char *regen = std::getenv("CTCP_REGEN_GOLDEN");
        regen && *regen) {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr) << "cannot write " << path;
        std::fwrite(fresh.data(), 1, fresh.size(), f);
        std::fclose(f);
        GTEST_SKIP() << "regenerated golden stats at " << path;
    }

    std::string golden;
    ASSERT_TRUE(readFile(path, golden))
        << "missing golden file " << path
        << " — run with CTCP_REGEN_GOLDEN=1 to create it";

    if (fresh == golden) {
        SUCCEED();
        return;
    }

    // Byte-level mismatch: report the first differing line so the
    // regression is actionable without manual diffing.
    const std::vector<std::string> fresh_lines = lines(fresh);
    const std::vector<std::string> golden_lines = lines(golden);
    const std::size_t n =
        std::min(fresh_lines.size(), golden_lines.size());
    for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(fresh_lines[i], golden_lines[i])
            << "first difference at line " << (i + 1)
            << " (golden above, measured below); if the change is "
               "intentional, regenerate with CTCP_REGEN_GOLDEN=1";
    }
    FAIL() << "golden stats line count changed: golden has "
           << golden_lines.size() << " lines, measured has "
           << fresh_lines.size()
           << "; regenerate with CTCP_REGEN_GOLDEN=1 if intentional";
}

TEST(GoldenStats, HeadlineMetricsMatchGoldenFile)
{
    checkAgainstGolden(CTCP_GOLDEN_STATS_PATH, goldenMatrix);
}

TEST(GoldenStats, TopologyMetricsMatchGoldenFile)
{
    checkAgainstGolden(CTCP_GOLDEN_TOPOLOGY_PATH, goldenTopologyMatrix);
}

TEST(GoldenStats, AdaptiveMetricsMatchGoldenFile)
{
    checkAgainstGolden(CTCP_GOLDEN_ADAPTIVE_PATH, goldenAdaptiveMatrix);
}

TEST(GoldenStats, GoldenFileCoversTheFullMatrix)
{
    std::string golden;
    if (!readFile(CTCP_GOLDEN_STATS_PATH, golden))
        GTEST_SKIP() << "golden file not generated yet";
    for (const char *label :
         {"gzip/base/base", "gzip/base/friendly", "gzip/base/fdrt",
          "gzip/base/issue-time", "twolf/base/base",
          "twolf/base/friendly", "twolf/base/fdrt",
          "twolf/base/issue-time"})
        EXPECT_NE(golden.find(std::string("\"label\": \"") + label +
                              "\""),
                  std::string::npos)
            << label;
    EXPECT_EQ(golden.find("\"status\": \"failed\""), std::string::npos);
}

TEST(GoldenStats, TopologyGoldenCoversTheFullMatrix)
{
    std::string golden;
    if (!readFile(CTCP_GOLDEN_TOPOLOGY_PATH, golden))
        GTEST_SKIP() << "topology golden file not generated yet";
    for (const char *label :
         {"gzip/ring/base", "gzip/ring/fdrt", "gzip/crossbar/base",
          "gzip/crossbar/fdrt"})
        EXPECT_NE(golden.find(std::string("\"label\": \"") + label +
                              "\""),
                  std::string::npos)
            << label;
    EXPECT_EQ(golden.find("\"status\": \"failed\""), std::string::npos);
}

} // namespace
} // namespace ctcp
