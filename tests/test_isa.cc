/**
 * @file
 * Unit tests for the ISA layer: opcode metadata, predicates, register
 * helpers and the disassembler.
 */

#include <gtest/gtest.h>

#include "isa/instruction.hh"
#include "isa/opcodes.hh"

namespace ctcp {
namespace {

TEST(OpcodeInfo, SimpleIntegerLatencies)
{
    // Table 7: simple integer 1/1.
    for (Opcode op : {Opcode::Add, Opcode::Sub, Opcode::And, Opcode::Or,
                      Opcode::Xor, Opcode::Sll, Opcode::Slt}) {
        EXPECT_EQ(opcodeInfo(op).execLatency, 1) << opcodeInfo(op).mnemonic;
        EXPECT_EQ(opcodeInfo(op).issueLatency, 1);
        EXPECT_EQ(opcodeInfo(op).fu, FuKind::IntAlu);
    }
}

TEST(OpcodeInfo, ComplexIntegerLatencies)
{
    // Table 7: mul 3/1, div 20/19.
    EXPECT_EQ(opcodeInfo(Opcode::Mul).execLatency, 3);
    EXPECT_EQ(opcodeInfo(Opcode::Mul).issueLatency, 1);
    EXPECT_EQ(opcodeInfo(Opcode::Div).execLatency, 20);
    EXPECT_EQ(opcodeInfo(Opcode::Div).issueLatency, 19);
    EXPECT_EQ(opcodeInfo(Opcode::Div).fu, FuKind::IntComplex);
}

TEST(OpcodeInfo, FpLatencies)
{
    // Table 7: FP mul 3/1, div 12/12, sqrt 24/24.
    EXPECT_EQ(opcodeInfo(Opcode::FMul).execLatency, 3);
    EXPECT_EQ(opcodeInfo(Opcode::FDiv).execLatency, 12);
    EXPECT_EQ(opcodeInfo(Opcode::FDiv).issueLatency, 12);
    EXPECT_EQ(opcodeInfo(Opcode::FSqrt).execLatency, 24);
    EXPECT_EQ(opcodeInfo(Opcode::FSqrt).issueLatency, 24);
    EXPECT_EQ(opcodeInfo(Opcode::FSqrt).fu, FuKind::FpComplex);
}

TEST(OpcodeInfo, OperandFlags)
{
    EXPECT_TRUE(opcodeInfo(Opcode::Add).readsSrc1);
    EXPECT_TRUE(opcodeInfo(Opcode::Add).readsSrc2);
    EXPECT_TRUE(opcodeInfo(Opcode::Add).writesDst);
    EXPECT_FALSE(opcodeInfo(Opcode::Add).hasImmediate);

    EXPECT_TRUE(opcodeInfo(Opcode::AddI).hasImmediate);
    EXPECT_FALSE(opcodeInfo(Opcode::AddI).readsSrc2);

    EXPECT_FALSE(opcodeInfo(Opcode::MovI).readsSrc1);
    EXPECT_FALSE(opcodeInfo(Opcode::Store).writesDst);
    EXPECT_TRUE(opcodeInfo(Opcode::Store).readsSrc2);   // store data
    EXPECT_FALSE(opcodeInfo(Opcode::Beq).writesDst);
    EXPECT_TRUE(opcodeInfo(Opcode::Call).writesDst);    // link register
}

TEST(OpcodePredicates, BranchClassification)
{
    EXPECT_TRUE(isBranch(Opcode::Beq));
    EXPECT_TRUE(isBranch(Opcode::Jump));
    EXPECT_TRUE(isBranch(Opcode::JumpReg));
    EXPECT_TRUE(isBranch(Opcode::Call));
    EXPECT_TRUE(isBranch(Opcode::Ret));
    EXPECT_FALSE(isBranch(Opcode::Add));

    EXPECT_TRUE(isConditionalBranch(Opcode::Bne));
    EXPECT_FALSE(isConditionalBranch(Opcode::Jump));

    EXPECT_TRUE(isIndirect(Opcode::JumpReg));
    EXPECT_TRUE(isIndirect(Opcode::Ret));
    EXPECT_FALSE(isIndirect(Opcode::Call));

    EXPECT_TRUE(isCall(Opcode::Call));
    EXPECT_TRUE(isReturn(Opcode::Ret));
}

TEST(OpcodePredicates, MemoryClassification)
{
    EXPECT_TRUE(isLoad(Opcode::Load));
    EXPECT_TRUE(isLoad(Opcode::FLoad));
    EXPECT_TRUE(isStore(Opcode::Store));
    EXPECT_TRUE(isStore(Opcode::FStore));
    EXPECT_TRUE(isMemOp(Opcode::Load));
    EXPECT_TRUE(isMemOp(Opcode::FStore));
    EXPECT_FALSE(isMemOp(Opcode::Add));
    EXPECT_EQ(opcodeInfo(Opcode::Load).fu, FuKind::IntMem);
    EXPECT_EQ(opcodeInfo(Opcode::FLoad).fu, FuKind::FpMem);
}

TEST(OpcodeInfo, EveryOpcodeHasAName)
{
    for (unsigned i = 0; i < static_cast<unsigned>(Opcode::NumOpcodes); ++i) {
        const OpcodeInfo &info = opcodeInfo(static_cast<Opcode>(i));
        EXPECT_FALSE(info.mnemonic.empty());
    }
}

TEST(FuKindName, AllNamed)
{
    for (unsigned i = 0; i < static_cast<unsigned>(FuKind::NumKinds); ++i)
        EXPECT_FALSE(fuKindName(static_cast<FuKind>(i)).empty());
}

TEST(Registers, FlatIdSpace)
{
    EXPECT_EQ(intReg(0), zeroReg);
    EXPECT_EQ(intReg(31), linkReg);
    EXPECT_EQ(fpReg(0), numIntRegs);
    EXPECT_EQ(fpReg(31), numArchRegs - 1);
}

TEST(Instruction, SourcePredicatesIgnoreZeroAndInvalid)
{
    Instruction inst;
    inst.op = Opcode::Add;
    inst.dst = zeroReg;
    inst.src1 = intReg(1);
    inst.src2 = invalidReg;
    EXPECT_FALSE(inst.hasDst());     // writes to r0 are discarded
    EXPECT_TRUE(inst.hasSrc1());
    EXPECT_FALSE(inst.hasSrc2());
}

TEST(Disassemble, Formats)
{
    Instruction add{Opcode::Add, intReg(3), intReg(1), intReg(2), 0};
    EXPECT_EQ(disassemble(add), "add r3, r1, r2");

    Instruction ld{Opcode::Load, intReg(4), intReg(5), invalidReg, 16};
    EXPECT_EQ(disassemble(ld), "ld r4, r5, 16");

    Instruction fml{Opcode::FMul, fpReg(1), fpReg(2), fpReg(3), 0};
    EXPECT_EQ(disassemble(fml), "fmul f1, f2, f3");

    Instruction j{Opcode::Jump, invalidReg, invalidReg, invalidReg, 42};
    EXPECT_EQ(disassemble(j), "j 42");
}

} // namespace
} // namespace ctcp
