/**
 * @file
 * Unit tests for the functional simulator: arithmetic semantics,
 * memory, control flow and the emitted DynInst stream.
 */

#include <bit>

#include <gtest/gtest.h>

#include "func/executor.hh"
#include "prog/builder.hh"

namespace ctcp {
namespace {

/** Run @p program to Halt, returning all committed records. */
std::vector<DynInst>
runAll(const Program &program)
{
    Executor exec(program);
    std::vector<DynInst> out;
    DynInst d;
    bool more = true;
    while (more && out.size() < 100000) {
        more = exec.step(d);
        out.push_back(d);
    }
    EXPECT_LT(out.size(), 100000u) << "program failed to halt";
    return out;
}

TEST(Executor, IntegerArithmetic)
{
    ProgramBuilder b("arith");
    b.movi(intReg(1), 7);
    b.movi(intReg(2), 3);
    b.add(intReg(3), intReg(1), intReg(2));
    b.sub(intReg(4), intReg(1), intReg(2));
    b.mul(intReg(5), intReg(1), intReg(2));
    b.div(intReg(6), intReg(1), intReg(2));
    b.rem(intReg(7), intReg(1), intReg(2));
    b.halt();
    Program p = b.build();
    Executor exec(p);
    DynInst d;
    while (exec.step(d)) {}
    EXPECT_EQ(exec.readReg(intReg(3)), 10);
    EXPECT_EQ(exec.readReg(intReg(4)), 4);
    EXPECT_EQ(exec.readReg(intReg(5)), 21);
    EXPECT_EQ(exec.readReg(intReg(6)), 2);
    EXPECT_EQ(exec.readReg(intReg(7)), 1);
}

TEST(Executor, DivideByZeroYieldsZero)
{
    ProgramBuilder b("div0");
    b.movi(intReg(1), 5);
    b.div(intReg(2), intReg(1), zeroReg);
    b.rem(intReg(3), intReg(1), zeroReg);
    b.halt();
    Program p = b.build();
    Executor exec(p);
    DynInst d;
    while (exec.step(d)) {}
    EXPECT_EQ(exec.readReg(intReg(2)), 0);
    EXPECT_EQ(exec.readReg(intReg(3)), 0);
}

TEST(Executor, ShiftsAndLogic)
{
    ProgramBuilder b("shifts");
    b.movi(intReg(1), -8);
    b.srli(intReg(2), intReg(1), 1);     // logical
    b.movi(intReg(3), 1);
    b.sra(intReg(4), intReg(1), intReg(3));   // arithmetic
    b.slli(intReg(5), intReg(3), 4);
    b.halt();
    Program p = b.build();
    Executor exec(p);
    DynInst d;
    while (exec.step(d)) {}
    EXPECT_EQ(exec.readReg(intReg(2)),
              static_cast<std::int64_t>(static_cast<std::uint64_t>(-8) >> 1));
    EXPECT_EQ(exec.readReg(intReg(4)), -4);
    EXPECT_EQ(exec.readReg(intReg(5)), 16);
}

TEST(Executor, ZeroRegisterIsHardwired)
{
    ProgramBuilder b("zero");
    b.movi(zeroReg, 99);   // discarded
    b.add(intReg(1), zeroReg, zeroReg);
    b.halt();
    Program p = b.build();
    Executor exec(p);
    DynInst d;
    while (exec.step(d)) {}
    EXPECT_EQ(exec.readReg(zeroReg), 0);
    EXPECT_EQ(exec.readReg(intReg(1)), 0);
}

TEST(Executor, LoadStoreRoundTrip)
{
    ProgramBuilder b("mem");
    b.movi(intReg(1), 0x1000);
    b.movi(intReg(2), 1234);
    b.store(intReg(2), intReg(1), 8);
    b.load(intReg(3), intReg(1), 8);
    b.halt();
    Program p = b.build();
    auto stream = runAll(p);
    Executor exec(p);
    DynInst d;
    while (exec.step(d)) {}
    EXPECT_EQ(exec.readReg(intReg(3)), 1234);
    EXPECT_EQ(stream[2].effAddr, 0x1008u);
    EXPECT_EQ(stream[3].effAddr, 0x1008u);
}

TEST(Executor, DataBlocksInstalled)
{
    ProgramBuilder b("init");
    b.data(0x2000, {5, 6, 7});
    b.movi(intReg(1), 0x2000);
    b.load(intReg(2), intReg(1), 16);
    b.halt();
    Program p = b.build();
    Executor exec(p);
    DynInst d;
    while (exec.step(d)) {}
    EXPECT_EQ(exec.readReg(intReg(2)), 7);
}

TEST(Executor, ConditionalBranchOutcomes)
{
    ProgramBuilder b("branches");
    b.movi(intReg(1), 1);
    b.movi(intReg(2), 2);
    b.blt(intReg(1), intReg(2), "taken");   // taken
    b.movi(intReg(3), 111);                  // skipped
    b.label("taken");
    b.bge(intReg(1), intReg(2), "nottaken"); // not taken
    b.movi(intReg(4), 222);
    b.label("nottaken");
    b.halt();
    Program p = b.build();
    auto stream = runAll(p);

    EXPECT_TRUE(stream[2].taken);
    EXPECT_EQ(stream[2].nextPc, stream[2].targetPc);
    EXPECT_FALSE(stream[3].taken);
    EXPECT_EQ(stream[3].nextPc, stream[3].pc + 1);

    Executor exec(p);
    DynInst d;
    while (exec.step(d)) {}
    EXPECT_EQ(exec.readReg(intReg(3)), 0);     // skipped
    EXPECT_EQ(exec.readReg(intReg(4)), 222);   // executed
}

TEST(Executor, CallAndReturn)
{
    ProgramBuilder b("callret");
    b.jump("main");
    b.label("fn");
    b.movi(intReg(2), 55);
    b.ret();
    b.label("main");
    b.call("fn");
    b.movi(intReg(3), 66);
    b.halt();
    Program p = b.build();
    auto stream = runAll(p);

    Executor exec(p);
    DynInst d;
    while (exec.step(d)) {}
    EXPECT_EQ(exec.readReg(intReg(2)), 55);
    EXPECT_EQ(exec.readReg(intReg(3)), 66);

    // The call's record carries the taken target and the return lands
    // back at call + 1.
    const DynInst &call = stream[1];
    EXPECT_TRUE(call.isCallOp());
    EXPECT_EQ(call.targetPc, 1u);
    const DynInst &ret = stream[3];
    EXPECT_TRUE(ret.isReturnOp());
    EXPECT_EQ(ret.targetPc, call.pc + 1);
}

TEST(Executor, FloatingPoint)
{
    ProgramBuilder b("fp");
    b.movi(intReg(1), 9);
    b.fcvtif(fpReg(1), intReg(1));      // 9.0
    b.fsqrt(fpReg(2), fpReg(1));        // 3.0
    b.fcvtif(fpReg(3), intReg(1));
    b.fmul(fpReg(4), fpReg(2), fpReg(3));   // 27.0
    b.fcvtfi(intReg(2), fpReg(4));
    b.fcmplt(intReg(3), fpReg(2), fpReg(4));   // 3 < 27
    b.halt();
    Program p = b.build();
    Executor exec(p);
    DynInst d;
    while (exec.step(d)) {}
    EXPECT_EQ(exec.readReg(intReg(2)), 27);
    EXPECT_EQ(exec.readReg(intReg(3)), 1);
    EXPECT_DOUBLE_EQ(std::bit_cast<double>(exec.readReg(fpReg(2))), 3.0);
}

TEST(Executor, StreamSequencing)
{
    ProgramBuilder b("seq");
    b.movi(intReg(1), 0);
    b.label("top");
    b.addi(intReg(1), intReg(1), 1);
    b.slti(intReg(2), intReg(1), 3);
    b.bne(intReg(2), zeroReg, "top");
    b.halt();
    Program p = b.build();
    auto stream = runAll(p);

    for (std::size_t i = 0; i < stream.size(); ++i)
        EXPECT_EQ(stream[i].seq, i);
    // 1 movi + 3 * (addi, slti, bne) + halt.
    EXPECT_EQ(stream.size(), 11u);
    EXPECT_EQ(stream.back().op, Opcode::Halt);
}

TEST(Executor, ResetRestoresInitialState)
{
    ProgramBuilder b("reset");
    b.data(0x3000, {10});
    b.movi(intReg(1), 0x3000);
    b.load(intReg(2), intReg(1), 0);
    b.addi(intReg(2), intReg(2), 1);
    b.store(intReg(2), intReg(1), 0);
    b.halt();
    Program p = b.build();

    Executor exec(p);
    DynInst d;
    while (exec.step(d)) {}
    EXPECT_EQ(exec.memory().read(0x3000), 11);

    exec.reset();
    EXPECT_EQ(exec.memory().read(0x3000), 10);
    EXPECT_EQ(exec.readReg(intReg(2)), 0);
    EXPECT_FALSE(exec.halted());
    while (exec.step(d)) {}
    EXPECT_EQ(exec.memory().read(0x3000), 11);
}

TEST(SparseMemory, ZeroFillAndPages)
{
    SparseMemory mem;
    EXPECT_EQ(mem.read(0xdeadbeef), 0);
    EXPECT_EQ(mem.residentPages(), 0u);
    mem.write(0x0, 1);
    mem.write(0xfff, 2);     // same 4 KiB page
    mem.write(0x1000, 3);    // next page
    EXPECT_EQ(mem.residentPages(), 2u);
    EXPECT_EQ(mem.read(0x1000), 3);
}

TEST(SparseMemory, WordGranularity)
{
    SparseMemory mem;
    mem.write(0x100, 42);
    // Any byte address within the word reads the same value.
    EXPECT_EQ(mem.read(0x101), 42);
    EXPECT_EQ(mem.read(0x107), 42);
    EXPECT_EQ(mem.read(0x108), 0);
}

} // namespace
} // namespace ctcp
