/**
 * @file
 * End-to-end contract of the ctcpd daemon and ctcpctl client, driven
 * through the real binaries (paths injected at configure time):
 *
 *  - submit a campaign over the socket, stream its events, and verify
 *    the final report is byte-identical to `ctcpsim --campaign` with
 *    the same spec — the service's core promise;
 *  - SIGKILL the daemon mid-campaign, corrupt the journal tail the way
 *    a kill mid-append would, restart, and verify the resumed run
 *    still produces the byte-identical report;
 *  - SIGTERM performs a graceful shutdown with exit status 0;
 *  - --workers shares ctcpsim's --jobs validation (exit 2 + message).
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "service/client.hh"
#include "service/http.hh"
#include "verify/fault.hh"

namespace {

struct CommandResult
{
    int status = -1;
    std::string output; // stdout only
};

/** Run a shell command, capturing exit status and stdout. */
CommandResult
run(const std::string &cmd)
{
    CommandResult result;
    FILE *pipe = ::popen((cmd + " 2>/dev/null").c_str(), "r");
    if (!pipe)
        return result;
    char buffer[4096];
    std::size_t n;
    while ((n = std::fread(buffer, 1, sizeof(buffer), pipe)) > 0)
        result.output.append(buffer, n);
    const int rc = ::pclose(pipe);
    result.status = WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
    return result;
}

/** Run a command and capture stderr (for diagnostics assertions). */
std::string
runStderr(const std::string &cmd)
{
    std::string output;
    FILE *pipe = ::popen((cmd + " 2>&1 1>/dev/null").c_str(), "r");
    if (!pipe)
        return output;
    char buffer[4096];
    std::size_t n;
    while ((n = std::fread(buffer, 1, sizeof(buffer), pipe)) > 0)
        output.append(buffer, n);
    ::pclose(pipe);
    return output;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

std::string
chomp(std::string text)
{
    while (!text.empty() &&
           (text.back() == '\n' || text.back() == '\r'))
        text.pop_back();
    return text;
}

/** One daemon instance on a private socket + state dir. */
class Daemon
{
  public:
    explicit Daemon(const std::string &tag, unsigned workers = 2)
        : dir_(::testing::TempDir() + "ctcp_e2e_" + tag),
          socket_(dir_ + "/d.sock"), state_(dir_ + "/state")
    {
        // State from a previous suite invocation would resume into
        // this daemon and trivialize the crash/resume scenarios.
        std::filesystem::remove_all(dir_);
        ::mkdir(dir_.c_str(), 0755);
        start(workers);
    }

    ~Daemon() { kill(); }

    void start(unsigned workers = 2)
    {
        pid_ = ::fork();
        ASSERT_GE(pid_, 0);
        if (pid_ == 0) {
            // Quiet child: the test asserts over the API, not logs.
            ::freopen("/dev/null", "w", stdout);
            ::freopen("/dev/null", "w", stderr);
            ::execl(CTCP_CTCPD_PATH, CTCP_CTCPD_PATH, "--socket",
                    socket_.c_str(), "--state-dir", state_.c_str(),
                    "--workers", std::to_string(workers).c_str(),
                    (char *)nullptr);
            ::_exit(127);
        }
        waitReady();
    }

    /** Block until the daemon answers /v1/ping (bounded). */
    void waitReady()
    {
        for (int i = 0; i < 100; ++i) {
            ctcp::service::HttpResponse resp;
            std::string error;
            if (ctcp::service::httpRequest(socket_, "GET", "/v1/ping",
                                           "", resp, error) &&
                resp.status == 200)
                return;
            ::usleep(100 * 1000);
        }
        FAIL() << "daemon never became ready on " << socket_;
    }

    /** SIGKILL (simulated crash); reap the child. */
    void kill()
    {
        if (pid_ <= 0)
            return;
        ::kill(pid_, SIGKILL);
        int status = 0;
        ::waitpid(pid_, &status, 0);
        pid_ = -1;
    }

    /** SIGTERM (graceful); @return the daemon's exit status. */
    int terminate()
    {
        if (pid_ <= 0)
            return -1;
        ::kill(pid_, SIGTERM);
        int status = 0;
        ::waitpid(pid_, &status, 0);
        pid_ = -1;
        return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    }

    /** ctcpctl against this daemon. */
    CommandResult ctl(const std::string &args) const
    {
        return run(std::string(CTCP_CTCPCTL_PATH) + " --socket " +
                   socket_ + " " + args);
    }

    const std::string &dir() const { return dir_; }
    const std::string &statePath() const { return state_; }

  private:
    std::string dir_;
    std::string socket_;
    std::string state_;
    pid_t pid_ = -1;
};

/** Write a spec file and return its path. */
std::string
writeSpec(const Daemon &daemon, const std::string &spec)
{
    const std::string path = daemon.dir() + "/spec.txt";
    std::ofstream out(path, std::ios::binary);
    out << spec;
    return path;
}

// The figure-6 style matrix both identity tests use: two benchmarks
// by two strategies, small budgets so the suite stays fast.
const char *const kMatrix =
    "bench=gzip,adpcm_enc;strategy=base,fdrt;budget=60000";

std::string
batchReport(const std::string &dir)
{
    const std::string out = dir + "/batch.json";
    const CommandResult batch =
        run(std::string(CTCP_CTCPSIM_PATH) + " --campaign '" +
            std::string(kMatrix) + "' --jobs 2 --out " + out);
    EXPECT_EQ(batch.status, 0);
    return slurp(out);
}

TEST(ServiceE2E, StreamedRunMatchesBatchByteForByte)
{
    Daemon daemon("identity");

    const std::string spec = writeSpec(daemon, kMatrix);
    const CommandResult submitted = daemon.ctl("submit " + spec);
    ASSERT_EQ(submitted.status, 0) << submitted.output;
    const std::string id = chomp(submitted.output);
    ASSERT_FALSE(id.empty());

    // Follow the event stream to completion: one journal record per
    // job, each a complete JSON line.
    const CommandResult events =
        daemon.ctl("events " + id + " --follow");
    EXPECT_EQ(events.status, 0);
    int lines = 0;
    std::istringstream stream(events.output);
    for (std::string line; std::getline(stream, line);) {
        ++lines;
        EXPECT_EQ(line.front(), '{') << line;
        EXPECT_EQ(line.back(), '}') << line;
    }
    EXPECT_EQ(lines, 4);

    const std::string daemon_json = daemon.dir() + "/daemon.json";
    EXPECT_EQ(daemon.ctl("report " + id + " --out " + daemon_json)
                  .status,
              0);
    EXPECT_EQ(slurp(daemon_json), batchReport(daemon.dir()));

    // The live HTML report also serves after completion.
    const std::string html = daemon.dir() + "/live.html";
    EXPECT_EQ(daemon.ctl("html " + id + " --out " + html).status, 0);
    EXPECT_NE(slurp(html).find("<!DOCTYPE html>"), std::string::npos);

    // Both benchmarks appeared twice: the workload cache hit once per
    // (benchmark, budget) pair.
    const CommandResult stats = daemon.ctl("stats");
    EXPECT_EQ(stats.status, 0);
    EXPECT_NE(stats.output.find("\"hits\":2"), std::string::npos)
        << stats.output;
}

TEST(ServiceE2E, KilledDaemonResumesFromJournalByteForByte)
{
    Daemon daemon("resume");

    const std::string spec = writeSpec(daemon, kMatrix);
    const CommandResult submitted = daemon.ctl("submit " + spec);
    ASSERT_EQ(submitted.status, 0) << submitted.output;
    const std::string id = chomp(submitted.output);

    // Let at least one record land in the journal, then pull the plug.
    const std::string journal =
        daemon.statePath() + "/" + id + ".journal.jsonl";
    for (int i = 0; i < 600 && slurp(journal).empty(); ++i)
        ::usleep(100 * 1000);
    daemon.kill();

    // A SIGKILL can land mid-append; make the surviving journal end in
    // a torn record to prove resume tolerates exactly that.
    const std::string before = slurp(journal);
    if (!before.empty())
        ctcp::verify::FaultInjector::truncateFileTail(journal, 3);

    daemon.start();
    const CommandResult waited =
        daemon.ctl("wait " + id + " --timeout 120");
    EXPECT_EQ(waited.status, 0) << waited.output;

    const std::string resumed_json = daemon.dir() + "/resumed.json";
    EXPECT_EQ(daemon.ctl("report " + id + " --out " + resumed_json)
                  .status,
              0);
    EXPECT_EQ(slurp(resumed_json), batchReport(daemon.dir()));
}

TEST(ServiceE2E, SigtermIsAGracefulExitZero)
{
    Daemon daemon("term");
    EXPECT_EQ(daemon.ctl("ping").status, 0);
    EXPECT_EQ(daemon.terminate(), 0);
}

TEST(ServiceE2E, CancelEndsARunWithoutKillingTheDaemon)
{
    Daemon daemon("cancel");
    const std::string spec = writeSpec(
        daemon,
        "bench=gzip;strategy=base,fdrt,friendly;budget=2000000");
    const CommandResult submitted = daemon.ctl("submit " + spec);
    ASSERT_EQ(submitted.status, 0);
    const std::string id = chomp(submitted.output);

    EXPECT_EQ(daemon.ctl("cancel " + id).status, 0);
    // wait exits 1 for a cancelled run but must terminate promptly.
    const CommandResult waited =
        daemon.ctl("wait " + id + " --timeout 120");
    EXPECT_NE(waited.output.find("\"state\""), std::string::npos);
    // The daemon survives and accepts new work afterwards.
    EXPECT_EQ(daemon.ctl("ping").status, 0);
}

TEST(ServiceE2E, WorkerValidationIsSharedWithCtcpsim)
{
    // Both binaries run the same parseWorkerCount: junk exits 2 with
    // the same diagnostic, from the daemon and the batch runner alike.
    const std::string sock = ::testing::TempDir() + "ctcp_wv.sock";
    const CommandResult daemon_junk =
        run(std::string(CTCP_CTCPD_PATH) + " --socket " + sock +
            " --workers junk");
    EXPECT_EQ(daemon_junk.status, 2);
    const CommandResult sim_junk = run(std::string(CTCP_CTCPSIM_PATH) +
                                       " --bench gzip --jobs junk");
    EXPECT_EQ(sim_junk.status, 2);

    const std::string daemon_msg = runStderr(
        std::string(CTCP_CTCPD_PATH) + " --socket " + sock +
        " --workers -4");
    const std::string sim_msg =
        runStderr(std::string(CTCP_CTCPSIM_PATH) +
                  " --campaign 'bench=gzip;budget=1000' --jobs -4");
    EXPECT_NE(daemon_msg.find("worker count"), std::string::npos)
        << daemon_msg;
    EXPECT_NE(sim_msg.find("worker count"), std::string::npos)
        << sim_msg;

    // Out-of-range counts are rejected, not clamped.
    EXPECT_EQ(run(std::string(CTCP_CTCPD_PATH) + " --socket " + sock +
                  " --workers 100000")
                  .status,
              2);
}

TEST(ServiceE2E, SubmittingAgainstADeadSocketFailsCleanly)
{
    const CommandResult result =
        run(std::string(CTCP_CTCPCTL_PATH) +
            " --socket /nonexistent/ctcp.sock ping");
    EXPECT_EQ(result.status, 2);
}

} // namespace
