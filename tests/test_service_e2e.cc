/**
 * @file
 * End-to-end contract of the ctcpd daemon and ctcpctl client, driven
 * through the real binaries (paths injected at configure time):
 *
 *  - submit a campaign over the socket, stream its events, and verify
 *    the final report is byte-identical to `ctcpsim --campaign` with
 *    the same spec — the service's core promise;
 *  - SIGKILL the daemon mid-campaign, corrupt the journal tail the way
 *    a kill mid-append would, restart, and verify the resumed run
 *    still produces the byte-identical report;
 *  - SIGTERM performs a graceful shutdown with exit status 0;
 *  - --workers shares ctcpsim's --jobs validation (exit 2 + message).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "e2e_util.hh"
#include "verify/fault.hh"

namespace {

using namespace e2e;

/** Write a spec file and return its path. */
std::string
writeSpec(const Daemon &daemon, const std::string &spec)
{
    return e2e::writeSpec(daemon.dir(), spec);
}

// The figure-6 style matrix both identity tests use: two benchmarks
// by two strategies, small budgets so the suite stays fast.
const char *const kMatrix =
    "bench=gzip,adpcm_enc;strategy=base,fdrt;budget=60000";

std::string
batchReport(const std::string &dir)
{
    return e2e::batchReport(dir, kMatrix);
}

TEST(ServiceE2E, StreamedRunMatchesBatchByteForByte)
{
    Daemon daemon("identity");

    const std::string spec = writeSpec(daemon, kMatrix);
    const CommandResult submitted = daemon.ctl("submit " + spec);
    ASSERT_EQ(submitted.status, 0) << submitted.output;
    const std::string id = chomp(submitted.output);
    ASSERT_FALSE(id.empty());

    // Follow the event stream to completion: one journal record per
    // job, each a complete JSON line.
    const CommandResult events =
        daemon.ctl("events " + id + " --follow");
    EXPECT_EQ(events.status, 0);
    int lines = 0;
    std::istringstream stream(events.output);
    for (std::string line; std::getline(stream, line);) {
        ++lines;
        EXPECT_EQ(line.front(), '{') << line;
        EXPECT_EQ(line.back(), '}') << line;
    }
    EXPECT_EQ(lines, 4);

    const std::string daemon_json = daemon.dir() + "/daemon.json";
    EXPECT_EQ(daemon.ctl("report " + id + " --out " + daemon_json)
                  .status,
              0);
    EXPECT_EQ(slurp(daemon_json), batchReport(daemon.dir()));

    // The live HTML report also serves after completion.
    const std::string html = daemon.dir() + "/live.html";
    EXPECT_EQ(daemon.ctl("html " + id + " --out " + html).status, 0);
    EXPECT_NE(slurp(html).find("<!DOCTYPE html>"), std::string::npos);

    // Both benchmarks appeared twice: the workload cache hit once per
    // (benchmark, budget) pair.
    const CommandResult stats = daemon.ctl("stats --json");
    EXPECT_EQ(stats.status, 0);
    EXPECT_NE(stats.output.find("\"hits\":2"), std::string::npos)
        << stats.output;

    // The default rendering is an aligned table of the same counters.
    const CommandResult table = daemon.ctl("stats");
    EXPECT_EQ(table.status, 0);
    EXPECT_NE(table.output.find("cache hits"), std::string::npos)
        << table.output;
}

TEST(ServiceE2E, KilledDaemonResumesFromJournalByteForByte)
{
    Daemon daemon("resume");

    const std::string spec = writeSpec(daemon, kMatrix);
    const CommandResult submitted = daemon.ctl("submit " + spec);
    ASSERT_EQ(submitted.status, 0) << submitted.output;
    const std::string id = chomp(submitted.output);

    // Let at least one record land in the journal, then pull the plug.
    const std::string journal =
        daemon.statePath() + "/" + id + ".journal.jsonl";
    for (int i = 0; i < 600 && slurp(journal).empty(); ++i)
        ::usleep(100 * 1000);
    daemon.kill();

    // A SIGKILL can land mid-append; make the surviving journal end in
    // a torn record to prove resume tolerates exactly that.
    const std::string before = slurp(journal);
    if (!before.empty())
        ctcp::verify::FaultInjector::truncateFileTail(journal, 3);

    daemon.start();
    const CommandResult waited =
        daemon.ctl("wait " + id + " --timeout 120");
    EXPECT_EQ(waited.status, 0) << waited.output;

    const std::string resumed_json = daemon.dir() + "/resumed.json";
    EXPECT_EQ(daemon.ctl("report " + id + " --out " + resumed_json)
                  .status,
              0);
    EXPECT_EQ(slurp(resumed_json), batchReport(daemon.dir()));
}

TEST(ServiceE2E, SigtermIsAGracefulExitZero)
{
    Daemon daemon("term");
    EXPECT_EQ(daemon.ctl("ping").status, 0);
    EXPECT_EQ(daemon.terminate(), 0);
}

TEST(ServiceE2E, CancelEndsARunWithoutKillingTheDaemon)
{
    Daemon daemon("cancel");
    const std::string spec = writeSpec(
        daemon,
        "bench=gzip;strategy=base,fdrt,friendly;budget=2000000");
    const CommandResult submitted = daemon.ctl("submit " + spec);
    ASSERT_EQ(submitted.status, 0);
    const std::string id = chomp(submitted.output);

    EXPECT_EQ(daemon.ctl("cancel " + id).status, 0);
    // wait exits 1 for a cancelled run but must terminate promptly.
    const CommandResult waited =
        daemon.ctl("wait " + id + " --timeout 120");
    EXPECT_NE(waited.output.find("\"state\""), std::string::npos);
    // The daemon survives and accepts new work afterwards.
    EXPECT_EQ(daemon.ctl("ping").status, 0);
}

TEST(ServiceE2E, WorkerValidationIsSharedWithCtcpsim)
{
    // Both binaries run the same parseWorkerCount: junk exits 2 with
    // the same diagnostic, from the daemon and the batch runner alike.
    const std::string sock = ::testing::TempDir() + "ctcp_wv.sock";
    const CommandResult daemon_junk =
        run(std::string(CTCP_CTCPD_PATH) + " --socket " + sock +
            " --workers junk");
    EXPECT_EQ(daemon_junk.status, 2);
    const CommandResult sim_junk = run(std::string(CTCP_CTCPSIM_PATH) +
                                       " --bench gzip --jobs junk");
    EXPECT_EQ(sim_junk.status, 2);

    const std::string daemon_msg = runStderr(
        std::string(CTCP_CTCPD_PATH) + " --socket " + sock +
        " --workers -4");
    const std::string sim_msg =
        runStderr(std::string(CTCP_CTCPSIM_PATH) +
                  " --campaign 'bench=gzip;budget=1000' --jobs -4");
    EXPECT_NE(daemon_msg.find("worker count"), std::string::npos)
        << daemon_msg;
    EXPECT_NE(sim_msg.find("worker count"), std::string::npos)
        << sim_msg;

    // Out-of-range counts are rejected, not clamped.
    EXPECT_EQ(run(std::string(CTCP_CTCPD_PATH) + " --socket " + sock +
                  " --workers 100000")
                  .status,
              2);
}

TEST(ServiceE2E, SubmittingAgainstADeadSocketFailsCleanly)
{
    const CommandResult result =
        run(std::string(CTCP_CTCPCTL_PATH) +
            " --socket /nonexistent/ctcp.sock ping");
    EXPECT_EQ(result.status, 2);
}

} // namespace
