/**
 * @file
 * Unit tests for src/common: bit utilities, RNG determinism, the
 * circular queue, and the stats helpers.
 */

#include <gtest/gtest.h>

#include "common/bitutil.hh"
#include "common/circular_queue.hh"
#include "common/random.hh"
#include "common/small_vec.hh"
#include "stats/stats.hh"
#include "stats/table.hh"

namespace ctcp {
namespace {

TEST(BitUtil, PowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(1ull << 40));
    EXPECT_FALSE(isPowerOfTwo((1ull << 40) + 1));
}

TEST(BitUtil, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(floorLog2(1ull << 63), 63u);
}

TEST(BitUtil, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(1023), 10u);
    EXPECT_EQ(ceilLog2(1024), 10u);
}

TEST(BitUtil, Bits)
{
    EXPECT_EQ(bits(0xff00, 8, 8), 0xffull);
    EXPECT_EQ(bits(0xabcd, 0, 4), 0xdull);
    EXPECT_EQ(bits(~0ull, 0, 64), ~0ull);
}

TEST(BitUtil, FoldAddress)
{
    // Folding is XOR of fixed-width chunks.
    EXPECT_EQ(foldAddress(0x1234, 16), 0x1234ull);
    EXPECT_EQ(foldAddress(0x0001'0001, 16), 0ull);
    EXPECT_EQ(foldAddress(0x0003'0001, 16), 2ull);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = r.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double v = r.uniform();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(CircularQueue, FifoOrder)
{
    CircularQueue<int> q(4);
    q.pushBack(1);
    q.pushBack(2);
    q.pushBack(3);
    EXPECT_EQ(q.front(), 1);
    q.popFront();
    EXPECT_EQ(q.front(), 2);
    q.pushBack(4);
    q.pushBack(5);
    EXPECT_TRUE(q.full());
    EXPECT_EQ(q.back(), 5);
    EXPECT_EQ(q.at(0), 2);
    EXPECT_EQ(q.at(3), 5);
}

TEST(CircularQueue, WrapsAround)
{
    CircularQueue<int> q(3);
    for (int round = 0; round < 10; ++round) {
        q.pushBack(round);
        EXPECT_EQ(q.front(), round);
        q.popFront();
        EXPECT_TRUE(q.empty());
    }
}

TEST(CircularQueue, PopBackSquashes)
{
    CircularQueue<int> q(8);
    for (int i = 0; i < 6; ++i)
        q.pushBack(i);
    q.popBack(4);
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.back(), 1);
}

TEST(SmallVec, StaysInlineUpToN)
{
    SmallVec<int, 4> v;
    EXPECT_TRUE(v.empty());
    for (int i = 0; i < 4; ++i)
        v.push_back(i);
    EXPECT_EQ(v.size(), 4u);
    EXPECT_TRUE(v.inlined());
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(v[static_cast<unsigned>(i)], i);
}

TEST(SmallVec, SpillsToHeapAndKeepsContents)
{
    SmallVec<int, 2> v;
    for (int i = 0; i < 9; ++i)
        v.push_back(i * 10);
    EXPECT_EQ(v.size(), 9u);
    EXPECT_FALSE(v.inlined());
    for (int i = 0; i < 9; ++i)
        EXPECT_EQ(v[static_cast<unsigned>(i)], i * 10);
}

TEST(SmallVec, ClearKeepsCapacityForReuse)
{
    SmallVec<int, 2> v;
    for (int i = 0; i < 8; ++i)
        v.push_back(i);
    const unsigned cap = v.capacity();
    EXPECT_GE(cap, 8u);
    v.clear();
    EXPECT_TRUE(v.empty());
    EXPECT_EQ(v.capacity(), cap);   // no reallocation on refill
    for (int i = 0; i < 8; ++i)
        v.push_back(i + 100);
    EXPECT_EQ(v.capacity(), cap);
    EXPECT_EQ(v[7], 107);
}

TEST(SmallVec, CopyAndMovePreserveElements)
{
    SmallVec<int, 2> heap;
    for (int i = 0; i < 5; ++i)
        heap.push_back(i);

    SmallVec<int, 2> copy(heap);
    ASSERT_EQ(copy.size(), 5u);
    EXPECT_EQ(copy[4], 4);
    copy.push_back(99);
    EXPECT_EQ(heap.size(), 5u);   // copies are independent

    SmallVec<int, 2> moved(std::move(heap));
    ASSERT_EQ(moved.size(), 5u);
    EXPECT_EQ(moved[0], 0);
    EXPECT_TRUE(heap.empty());    // moved-from is reusable
    heap.push_back(7);
    EXPECT_EQ(heap[0], 7);

    SmallVec<int, 2> inline_src;
    inline_src.push_back(42);
    SmallVec<int, 2> inline_moved(std::move(inline_src));
    ASSERT_EQ(inline_moved.size(), 1u);
    EXPECT_EQ(inline_moved[0], 42);

    SmallVec<int, 2> assigned;
    assigned = inline_moved;
    ASSERT_EQ(assigned.size(), 1u);
    EXPECT_EQ(assigned[0], 42);
}

TEST(SmallVec, RangeForIteration)
{
    SmallVec<int, 3> v;
    for (int i = 1; i <= 6; ++i)
        v.push_back(i);
    int sum = 0;
    for (int x : v)
        sum += x;
    EXPECT_EQ(sum, 21);
}

TEST(Stats, Percent)
{
    EXPECT_DOUBLE_EQ(percent(1, 4), 25.0);
    EXPECT_DOUBLE_EQ(percent(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(percent(5, 5), 100.0);
}

TEST(Stats, HarmonicMean)
{
    EXPECT_DOUBLE_EQ(harmonicMean({1.0, 1.0}), 1.0);
    EXPECT_NEAR(harmonicMean({1.0, 2.0}), 4.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(harmonicMean({}), 0.0);
}

TEST(Stats, HistogramBuckets)
{
    Histogram h(4, 10);
    h.sample(0);
    h.sample(9);
    h.sample(10);
    h.sample(39);
    h.sample(40);    // overflow bucket
    h.sample(1000);  // overflow bucket
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.samples(), 6u);
}

TEST(Stats, HistogramMean)
{
    Histogram h(4, 10);
    h.sample(10, 3);
    h.sample(20, 1);
    EXPECT_DOUBLE_EQ(h.mean(), 12.5);
}

TEST(Table, RendersAligned)
{
    TextTable t({"bench", "value"});
    t.row("gzip").cell(1.5, 1);
    t.row("a-very-long-name").percentCell(33.333, 2);
    const std::string out = t.render();
    EXPECT_NE(out.find("gzip"), std::string::npos);
    EXPECT_NE(out.find("1.5"), std::string::npos);
    EXPECT_NE(out.find("33.33%"), std::string::npos);
    // Header separator line present.
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Counter, Accumulates)
{
    Counter c;
    ++c;
    c += 4;
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

} // namespace
} // namespace ctcp
