/**
 * @file
 * Unit tests for src/common: bit utilities, RNG determinism, the
 * circular queue, and the stats helpers.
 */

#include <gtest/gtest.h>

#include "common/bitutil.hh"
#include "common/circular_queue.hh"
#include "common/random.hh"
#include "stats/stats.hh"
#include "stats/table.hh"

namespace ctcp {
namespace {

TEST(BitUtil, PowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(1ull << 40));
    EXPECT_FALSE(isPowerOfTwo((1ull << 40) + 1));
}

TEST(BitUtil, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(floorLog2(1ull << 63), 63u);
}

TEST(BitUtil, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(1023), 10u);
    EXPECT_EQ(ceilLog2(1024), 10u);
}

TEST(BitUtil, Bits)
{
    EXPECT_EQ(bits(0xff00, 8, 8), 0xffull);
    EXPECT_EQ(bits(0xabcd, 0, 4), 0xdull);
    EXPECT_EQ(bits(~0ull, 0, 64), ~0ull);
}

TEST(BitUtil, FoldAddress)
{
    // Folding is XOR of fixed-width chunks.
    EXPECT_EQ(foldAddress(0x1234, 16), 0x1234ull);
    EXPECT_EQ(foldAddress(0x0001'0001, 16), 0ull);
    EXPECT_EQ(foldAddress(0x0003'0001, 16), 2ull);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = r.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double v = r.uniform();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(CircularQueue, FifoOrder)
{
    CircularQueue<int> q(4);
    q.pushBack(1);
    q.pushBack(2);
    q.pushBack(3);
    EXPECT_EQ(q.front(), 1);
    q.popFront();
    EXPECT_EQ(q.front(), 2);
    q.pushBack(4);
    q.pushBack(5);
    EXPECT_TRUE(q.full());
    EXPECT_EQ(q.back(), 5);
    EXPECT_EQ(q.at(0), 2);
    EXPECT_EQ(q.at(3), 5);
}

TEST(CircularQueue, WrapsAround)
{
    CircularQueue<int> q(3);
    for (int round = 0; round < 10; ++round) {
        q.pushBack(round);
        EXPECT_EQ(q.front(), round);
        q.popFront();
        EXPECT_TRUE(q.empty());
    }
}

TEST(CircularQueue, PopBackSquashes)
{
    CircularQueue<int> q(8);
    for (int i = 0; i < 6; ++i)
        q.pushBack(i);
    q.popBack(4);
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.back(), 1);
}

TEST(Stats, Percent)
{
    EXPECT_DOUBLE_EQ(percent(1, 4), 25.0);
    EXPECT_DOUBLE_EQ(percent(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(percent(5, 5), 100.0);
}

TEST(Stats, HarmonicMean)
{
    EXPECT_DOUBLE_EQ(harmonicMean({1.0, 1.0}), 1.0);
    EXPECT_NEAR(harmonicMean({1.0, 2.0}), 4.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(harmonicMean({}), 0.0);
}

TEST(Stats, HistogramBuckets)
{
    Histogram h(4, 10);
    h.sample(0);
    h.sample(9);
    h.sample(10);
    h.sample(39);
    h.sample(40);    // overflow bucket
    h.sample(1000);  // overflow bucket
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.samples(), 6u);
}

TEST(Stats, HistogramMean)
{
    Histogram h(4, 10);
    h.sample(10, 3);
    h.sample(20, 1);
    EXPECT_DOUBLE_EQ(h.mean(), 12.5);
}

TEST(Table, RendersAligned)
{
    TextTable t({"bench", "value"});
    t.row("gzip").cell(1.5, 1);
    t.row("a-very-long-name").percentCell(33.333, 2);
    const std::string out = t.render();
    EXPECT_NE(out.find("gzip"), std::string::npos);
    EXPECT_NE(out.find("1.5"), std::string::npos);
    EXPECT_NE(out.find("33.33%"), std::string::npos);
    // Header separator line present.
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Counter, Accumulates)
{
    Counter c;
    ++c;
    c += 4;
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

} // namespace
} // namespace ctcp
