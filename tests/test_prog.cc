/**
 * @file
 * Unit tests for the program builder: label resolution, emission
 * helpers, data blocks, and strand weaving.
 */

#include <gtest/gtest.h>

#include "prog/builder.hh"
#include "prog/program.hh"

namespace ctcp {
namespace {

TEST(Builder, ForwardAndBackwardLabels)
{
    ProgramBuilder b("labels");
    b.movi(intReg(1), 0);               // 0
    b.label("top");                      // index 1
    b.addi(intReg(1), intReg(1), 1);     // 1
    b.beq(intReg(1), zeroReg, "done");   // 2 -> forward
    b.jump("top");                       // 3 -> backward
    b.label("done");
    b.halt();                            // 4
    Program p = b.build();

    EXPECT_EQ(p.size(), 5u);
    EXPECT_EQ(p.fetch(2).imm, 4);   // "done"
    EXPECT_EQ(p.fetch(3).imm, 1);   // "top"
}

TEST(Builder, CallEncodesLinkAndTarget)
{
    ProgramBuilder b("calls");
    b.jump("main");
    b.label("fn");
    b.ret();
    b.label("main");
    b.call("fn");
    b.halt();
    Program p = b.build();

    const Instruction &call = p.fetch(2);
    EXPECT_EQ(call.op, Opcode::Call);
    EXPECT_EQ(call.dst, linkReg);
    EXPECT_EQ(call.imm, 1);   // "fn"
    const Instruction &ret = p.fetch(1);
    EXPECT_EQ(ret.op, Opcode::Ret);
    EXPECT_EQ(ret.src1, linkReg);
}

TEST(Builder, StoreOperandLayout)
{
    ProgramBuilder b("stores");
    b.store(intReg(5), intReg(6), 24);
    b.halt();
    Program p = b.build();
    const Instruction &st = p.fetch(0);
    EXPECT_EQ(st.src1, intReg(6));   // address base
    EXPECT_EQ(st.src2, intReg(5));   // data
    EXPECT_EQ(st.imm, 24);
}

TEST(Builder, DataBlocksCarried)
{
    ProgramBuilder b("data");
    b.data(0x1000, {1, 2, 3});
    b.data(0x2000, {42});
    b.halt();
    Program p = b.build();
    ASSERT_EQ(p.data().size(), 2u);
    EXPECT_EQ(p.data()[0].base, 0x1000u);
    EXPECT_EQ(p.data()[0].words.size(), 3u);
    EXPECT_EQ(p.data()[1].words[0], 42);
}

TEST(Builder, HereTracksPosition)
{
    ProgramBuilder b("here");
    EXPECT_EQ(b.here(), 0u);
    b.nop();
    b.nop();
    EXPECT_EQ(b.here(), 2u);
}

TEST(Builder, WeaveInterleavesRoundRobin)
{
    ProgramBuilder b("weave");
    b.beginStrands(2);
    b.strand(0);
    b.movi(intReg(1), 10);
    b.movi(intReg(2), 11);
    b.strand(1);
    b.movi(intReg(3), 20);
    b.movi(intReg(4), 21);
    b.movi(intReg(5), 22);
    b.weave();
    b.halt();
    Program p = b.build();

    // Round robin: s0[0], s1[0], s0[1], s1[1], s1[2].
    ASSERT_EQ(p.size(), 6u);
    EXPECT_EQ(p.fetch(0).dst, intReg(1));
    EXPECT_EQ(p.fetch(1).dst, intReg(3));
    EXPECT_EQ(p.fetch(2).dst, intReg(2));
    EXPECT_EQ(p.fetch(3).dst, intReg(4));
    EXPECT_EQ(p.fetch(4).dst, intReg(5));
}

TEST(Builder, WeaveUnevenStrands)
{
    ProgramBuilder b("uneven");
    b.beginStrands(3);
    b.strand(0).movi(intReg(1), 1);
    b.strand(2).movi(intReg(3), 3).movi(intReg(4), 4);
    b.weave();
    b.halt();
    Program p = b.build();
    ASSERT_EQ(p.size(), 4u);
    EXPECT_EQ(p.fetch(0).dst, intReg(1));
    EXPECT_EQ(p.fetch(1).dst, intReg(3));
    EXPECT_EQ(p.fetch(2).dst, intReg(4));
}

TEST(Builder, BranchTargetsResolveAcrossWeave)
{
    ProgramBuilder b("mix");
    b.label("top");
    b.beginStrands(2);
    b.strand(0).addi(intReg(1), intReg(1), 1);
    b.strand(1).addi(intReg(2), intReg(2), 1);
    b.weave();
    b.bne(intReg(1), intReg(2), "top");
    b.halt();
    Program p = b.build();
    EXPECT_EQ(p.fetch(2).imm, 0);
}

using BuilderDeath = ::testing::Test;

TEST(BuilderDeath, BranchInStrandAborts)
{
    ProgramBuilder b("bad");
    b.beginStrands(2);
    EXPECT_DEATH(b.jump("x"), "strand");
}

TEST(BuilderDeath, LabelInStrandAborts)
{
    ProgramBuilder b("bad2");
    b.beginStrands(2);
    EXPECT_DEATH(b.label("x"), "strand");
}

TEST(Program, FetchBoundsChecked)
{
    ProgramBuilder b("bounds");
    b.halt();
    Program p = b.build();
    EXPECT_DEATH(p.fetch(1), "fetch past program end");
}

TEST(Program, ByteAddr)
{
    EXPECT_EQ(Program::byteAddr(0), 0u);
    EXPECT_EQ(Program::byteAddr(3), 12u);
}

} // namespace
} // namespace ctcp
